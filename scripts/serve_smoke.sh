#!/bin/sh
# Serve-daemon smoke check: start `datamaran serve` over the fixture
# lake (testdata/lake) with fresh state, crawl it once, and verify the
# HTTP surface against the committed goldens:
#
#   GET /v1/formats                    == testdata/lake_golden/serve/formats.json
#   GET /formats (deprecated alias)    == the same bytes
#   GET /v1/lake/extract (csv)         == the indexer's committed per-file CSV
#   POST /v1/extract (uploaded body)   == the same committed CSV
#   POST /v1/reindex (all unchanged)   == testdata/lake_golden/serve/reindex.json
#   GET /v1/query (group-by, csv)      == testdata/lake_golden/query/groupby.csv
#   a failing route                    == the {"error":{code,message}} envelope
#
# Run with -update to regenerate the serve goldens after an intentional
# change (the CSV goldens belong to scripts/golden_lake.sh, the query
# goldens to scripts/golden_query.sh).
set -eu
cd "$(dirname "$0")/.."
command -v curl >/dev/null 2>&1 || { echo "serve-smoke: curl is required" >&2; exit 1; }

golden=testdata/lake_golden/serve
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/datamaran" ./cmd/datamaran

# Fresh state in the temp dir: the fixture lake itself stays pristine.
"$tmp/datamaran" serve -addr 127.0.0.1:0 -workers 1 \
    -registry "$tmp/registry.json" -checkpoints "$tmp/checkpoints.json" \
    -store "$tmp/store" \
    -reindex testdata/lake > "$tmp/serve.out" 2> "$tmp/serve.err" &
pid=$!

url=""
i=0
while [ $i -lt 120 ]; do
    url=$(sed -n 's/^listening on //p' "$tmp/serve.out")
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "daemon exited early:"; cat "$tmp/serve.err"; exit 1; }
    sleep 0.25
    i=$((i + 1))
done
[ -n "$url" ] || { echo "daemon did not start listening:"; cat "$tmp/serve.err"; exit 1; }

curl -fsS "$url/healthz" > /dev/null
curl -fsS "$url/v1/formats" > "$tmp/formats.json"
curl -fsS "$url/formats" > "$tmp/formats_alias.json"
curl -fsS "$url/v1/lake/extract?path=web/requests-1.log&output=csv&table=type0" > "$tmp/lake_extract.csv"
curl -fsS -X POST --data-binary @testdata/lake/jobs/job-1.log \
    "$url/v1/extract?format=42f99400cddeb649&output=csv&table=type0" > "$tmp/body_extract.csv"
# The record store is populated; a group-by query must reproduce the
# committed golden (the same bytes the CLI and in-process engine emit).
curl -fsS --get --data-urlencode \
    "q=SELECT f3, count(*), avg(f2) FROM 570eebfb5b600688 GROUP BY f3 ORDER BY f3" \
    --data-urlencode "output=csv" "$url/v1/query" > "$tmp/query_groupby.csv"
# The second crawl sees nothing new: every file must report unchanged.
curl -fsS -X POST "$url/v1/reindex" > "$tmp/reindex.json"
# Failures carry the JSON error envelope.
curl -sS "$url/v1/lake/extract?path=../escape" > "$tmp/error.json"

if [ "${1:-}" = "-update" ]; then
    mkdir -p "$golden"
    cp "$tmp/formats.json" "$golden/formats.json"
    cp "$tmp/reindex.json" "$golden/reindex.json"
    echo "serve goldens regenerated under $golden"
    exit 0
fi

diff -u "$golden/formats.json" "$tmp/formats.json"
diff -u "$tmp/formats.json" "$tmp/formats_alias.json"
diff -u "$golden/reindex.json" "$tmp/reindex.json"
diff -u testdata/lake_golden/csv/web__requests-1.log.type0.csv "$tmp/lake_extract.csv"
diff -u testdata/lake_golden/csv/jobs__job-1.log.type0.csv "$tmp/body_extract.csv"
diff -u testdata/lake_golden/query/groupby.csv "$tmp/query_groupby.csv"
grep -q '"error"' "$tmp/error.json" && grep -q '"code":"bad_request"' "$tmp/error.json" \
    || { echo "error envelope missing:"; cat "$tmp/error.json"; exit 1; }
echo "serve smoke passed: /v1 routes, the deprecated alias, /v1/query and the error envelope all match the goldens"
