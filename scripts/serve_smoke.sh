#!/bin/sh
# Serve-daemon smoke check: start `datamaran serve` over the fixture
# lake (testdata/lake) with fresh state, crawl it once, and verify the
# HTTP surface against the committed goldens:
#
#   GET /formats                    == testdata/lake_golden/serve/formats.json
#   GET /lake/extract (csv)         == the indexer's committed per-file CSV
#   POST /extract (uploaded body)   == the same committed CSV
#   POST /reindex (all unchanged)   == testdata/lake_golden/serve/reindex.json
#
# Run with -update to regenerate the serve goldens after an intentional
# change (the CSV goldens belong to scripts/golden_lake.sh).
set -eu
cd "$(dirname "$0")/.."
command -v curl >/dev/null 2>&1 || { echo "serve-smoke: curl is required" >&2; exit 1; }

golden=testdata/lake_golden/serve
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/datamaran" ./cmd/datamaran

# Fresh state in the temp dir: the fixture lake itself stays pristine.
"$tmp/datamaran" serve -addr 127.0.0.1:0 -workers 1 \
    -registry "$tmp/registry.json" -checkpoints "$tmp/checkpoints.json" \
    -reindex testdata/lake > "$tmp/serve.out" 2> "$tmp/serve.err" &
pid=$!

url=""
i=0
while [ $i -lt 120 ]; do
    url=$(sed -n 's/^listening on //p' "$tmp/serve.out")
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "daemon exited early:"; cat "$tmp/serve.err"; exit 1; }
    sleep 0.25
    i=$((i + 1))
done
[ -n "$url" ] || { echo "daemon did not start listening:"; cat "$tmp/serve.err"; exit 1; }

curl -fsS "$url/healthz" > /dev/null
curl -fsS "$url/formats" > "$tmp/formats.json"
curl -fsS "$url/lake/extract?path=web/requests-1.log&output=csv&table=type0" > "$tmp/lake_extract.csv"
curl -fsS -X POST --data-binary @testdata/lake/jobs/job-1.log \
    "$url/extract?format=42f99400cddeb649&output=csv&table=type0" > "$tmp/body_extract.csv"
# The second crawl sees nothing new: every file must report unchanged.
curl -fsS -X POST "$url/reindex" > "$tmp/reindex.json"

if [ "${1:-}" = "-update" ]; then
    mkdir -p "$golden"
    cp "$tmp/formats.json" "$golden/formats.json"
    cp "$tmp/reindex.json" "$golden/reindex.json"
    echo "serve goldens regenerated under $golden"
    exit 0
fi

diff -u "$golden/formats.json" "$tmp/formats.json"
diff -u "$golden/reindex.json" "$tmp/reindex.json"
diff -u testdata/lake_golden/csv/web__requests-1.log.type0.csv "$tmp/lake_extract.csv"
diff -u testdata/lake_golden/csv/jobs__job-1.log.type0.csv "$tmp/body_extract.csv"
echo "serve smoke passed: /formats, /reindex and both extract paths are byte-identical to the goldens"
