#!/bin/sh
# Serve-daemon smoke check: start `datamaran serve` over the fixture
# lake (testdata/lake) with fresh state, crawl it once, and verify the
# HTTP surface against the committed goldens:
#
#   GET /v1/formats                    == testdata/lake_golden/serve/formats.json
#   GET /formats (deprecated alias)    == the same bytes
#   GET /v1/lake/extract (csv)         == the indexer's committed per-file CSV
#   POST /v1/extract (uploaded body)   == the same committed CSV
#   POST /v1/reindex (all unchanged)   == testdata/lake_golden/serve/reindex.json
#   POST /v1/reindex?format={fp}       scoped crawl: tagged summary, 404 unknown
#   GET /v1/query (group-by, csv)      == testdata/lake_golden/query/groupby.csv
#   GET /v1/query (top-k, csv)         == testdata/lake_golden/query/topk.csv
#   GET /v1/query?explain=plan         == testdata/lake_golden/query/explain_topk.csv
#   GET /v1/query?explain=analyze      per-operator stats + total line
#   GET /metrics                       Prometheus families, non-zero counters
#   GET /v1/status                     lists the store's tables
#   a failing route                    == the {"error":{code,message}} envelope
#
# A second daemon with tight limits then proves the production bounds
# over real HTTP: 429 + Retry-After under saturation (probes exempt)
# and 504 deadline_exceeded on a stalled request.
#
# Run with -update to regenerate the serve goldens after an intentional
# change (the CSV goldens belong to scripts/golden_lake.sh, the query
# goldens to scripts/golden_query.sh).
set -eu
# dash (the usual /bin/sh) has no pipefail; enable it where the shell
# supports it so a failing producer can't vanish behind a pipe.
(set -o pipefail) 2>/dev/null && set -o pipefail || true
cd "$(dirname "$0")/.."
command -v curl >/dev/null 2>&1 || { echo "serve-smoke: curl is required" >&2; exit 1; }

golden=testdata/lake_golden/serve
tmp=$(mktemp -d)
pid=""
pid2=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

# fail prints the reason plus the daemon's captured stderr — the "why"
# of a dead or misbehaving server, not just the symptom.
fail() {
    echo "serve-smoke: $1" >&2
    for log in "$tmp/serve.err" "$tmp/serve2.err"; do
        if [ -s "$log" ]; then
            echo "--- daemon stderr ($log):" >&2
            cat "$log" >&2
        fi
    done
    exit 1
}

# wait_listening PIDVARNAME OUTFILE: poll for the "listening on" line,
# failing fast with the daemon's stderr if the process dies first.
wait_listening() {
    wpid=$1; wout=$2; url=""
    i=0
    while [ $i -lt 120 ]; do
        url=$(sed -n 's/^listening on //p' "$wout")
        [ -n "$url" ] && break
        kill -0 "$wpid" 2>/dev/null || fail "daemon exited during startup"
        sleep 0.25
        i=$((i + 1))
    done
    [ -n "$url" ] || fail "daemon did not start listening within 30s"
}

go build -o "$tmp/datamaran" ./cmd/datamaran

# Fresh state in the temp dir: the fixture lake itself stays pristine.
"$tmp/datamaran" serve -addr 127.0.0.1:0 -workers 1 \
    -registry "$tmp/registry.json" -checkpoints "$tmp/checkpoints.json" \
    -store "$tmp/store" \
    -reindex testdata/lake > "$tmp/serve.out" 2> "$tmp/serve.err" &
pid=$!
wait_listening "$pid" "$tmp/serve.out"

curl -fsS "$url/healthz" > /dev/null || fail "healthz probe failed"
curl -fsS "$url/v1/formats" > "$tmp/formats.json" || fail "GET /v1/formats failed"
curl -fsS "$url/formats" > "$tmp/formats_alias.json" || fail "GET /formats failed"
curl -fsS "$url/v1/lake/extract?path=web/requests-1.log&output=csv&table=type0" > "$tmp/lake_extract.csv" \
    || fail "lake extract failed"
curl -fsS -X POST --data-binary @testdata/lake/jobs/job-1.log \
    "$url/v1/extract?format=42f99400cddeb649&output=csv&table=type0" > "$tmp/body_extract.csv" \
    || fail "body extract failed"
# The record store is populated; a group-by query must reproduce the
# committed golden (the same bytes the CLI and in-process engine emit).
curl -fsS --get --data-urlencode \
    "q=SELECT f3, count(*), avg(f2) FROM 570eebfb5b600688 GROUP BY f3 ORDER BY f3" \
    --data-urlencode "output=csv" "$url/v1/query" > "$tmp/query_groupby.csv" \
    || fail "query failed"
# Top-k (ORDER BY + LIMIT) runs the bounded-heap path; the served bytes
# must still match the committed golden.
curl -fsS --get --data-urlencode \
    "q=SELECT f1, f2, f3 FROM 570eebfb5b600688 ORDER BY f2 DESC, f1 LIMIT 5" \
    --data-urlencode "output=csv" "$url/v1/query" > "$tmp/query_topk.csv" \
    || fail "top-k query failed"
# EXPLAIN over HTTP: plan-only output is deterministic and must match
# the committed golden (the same bytes the CLI's -explain plan emits);
# analyze executes and reports per-operator rows plus a total line.
curl -fsS --get --data-urlencode \
    "q=SELECT f1, f2, f3 FROM 570eebfb5b600688 ORDER BY f2 DESC, f1 LIMIT 5" \
    --data-urlencode "output=csv" --data-urlencode "explain=plan" \
    "$url/v1/query" > "$tmp/explain_topk.csv" || fail "explain=plan query failed"
curl -fsS --get --data-urlencode \
    "q=SELECT f1, f2 FROM 570eebfb5b600688 WHERE f2 > 90 AND f2 <= 99" \
    --data-urlencode "output=csv" --data-urlencode "explain=analyze" \
    "$url/v1/query" > "$tmp/explain_analyze.csv" || fail "explain=analyze query failed"
grep -q 'total: rows=' "$tmp/explain_analyze.csv" \
    || fail "explain=analyze missing the total line: $(cat "$tmp/explain_analyze.csv")"
grep -q 'pruned=' "$tmp/explain_analyze.csv" \
    || fail "explain=analyze missing scan block counters: $(cat "$tmp/explain_analyze.csv")"
# /metrics serves the Prometheus text form with the request, query and
# crawl families populated — a family absent or an empty scrape fails.
curl -fsS "$url/metrics" > "$tmp/metrics.txt" || fail "GET /metrics failed"
[ -s "$tmp/metrics.txt" ] || fail "/metrics scrape is empty"
for family in datamaran_http_requests_total datamaran_http_request_seconds \
    datamaran_queries_total datamaran_query_blocks_decoded_total \
    datamaran_reindex_total datamaran_crawl_stage_seconds \
    datamaran_crawl_files_total; do
    grep -q "^# TYPE $family " "$tmp/metrics.txt" \
        || fail "/metrics missing family $family"
done
grep -q '^datamaran_reindex_total [1-9]' "$tmp/metrics.txt" \
    || fail "/metrics reindex counter still zero after the startup crawl"
grep -q '^datamaran_queries_total [1-9]' "$tmp/metrics.txt" \
    || fail "/metrics query counter still zero after served queries"
# /v1/status reports the store's tables (manifest counts, no scan).
curl -fsS "$url/v1/status" > "$tmp/status_tables.json" || fail "status failed"
grep -q '"name": "570eebfb5b600688"' "$tmp/status_tables.json" \
    || fail "status does not list store tables: $(cat "$tmp/status_tables.json")"
# The second crawl sees nothing new: every file must report unchanged.
curl -fsS -X POST "$url/v1/reindex" > "$tmp/reindex.json" || fail "reindex failed"
# A scoped crawl touches one format and tags its summary; a fingerprint
# the registry does not know is 404.
curl -fsS -X POST "$url/v1/reindex?format=42f99400cddeb649" > "$tmp/reindex_scoped.json" \
    || fail "scoped reindex failed"
grep -q '"format": "42f99400cddeb649"' "$tmp/reindex_scoped.json" \
    || fail "scoped reindex summary is not tagged with its format: $(cat "$tmp/reindex_scoped.json")"
code=$(curl -sS -o "$tmp/reindex_unknown.json" -w '%{http_code}' -X POST "$url/v1/reindex?format=ffffffffffffffff")
[ "$code" = "404" ] || fail "unknown-format reindex returned $code, want 404"
# Failures carry the JSON error envelope.
curl -sS "$url/v1/lake/extract?path=../escape" > "$tmp/error.json" || fail "error-route request failed"

if [ "${1:-}" = "-update" ]; then
    mkdir -p "$golden"
    cp "$tmp/formats.json" "$golden/formats.json"
    cp "$tmp/reindex.json" "$golden/reindex.json"
    echo "serve goldens regenerated under $golden"
    exit 0
fi

diff -u "$golden/formats.json" "$tmp/formats.json"
diff -u "$tmp/formats.json" "$tmp/formats_alias.json"
diff -u "$golden/reindex.json" "$tmp/reindex.json"
diff -u testdata/lake_golden/csv/web__requests-1.log.type0.csv "$tmp/lake_extract.csv"
diff -u testdata/lake_golden/csv/jobs__job-1.log.type0.csv "$tmp/body_extract.csv"
diff -u testdata/lake_golden/query/groupby.csv "$tmp/query_groupby.csv"
diff -u testdata/lake_golden/query/topk.csv "$tmp/query_topk.csv"
diff -u testdata/lake_golden/query/explain_topk.csv "$tmp/explain_topk.csv"
grep -q '"error"' "$tmp/error.json" && grep -q '"code":"bad_request"' "$tmp/error.json" \
    || fail "error envelope missing: $(cat "$tmp/error.json")"

# --- Production limits over real HTTP -------------------------------
# A second daemon, same state, with a one-request in-flight bound and a
# three-second deadline.
"$tmp/datamaran" serve -addr 127.0.0.1:0 -workers 1 \
    -registry "$tmp/registry.json" -checkpoints "$tmp/checkpoints.json" \
    -store "$tmp/store2" \
    -max-inflight 1 -request-timeout 3s \
    testdata/lake > "$tmp/serve2.out" 2> "$tmp/serve2.err" &
pid2=$!
saved_url=$url
wait_listening "$pid2" "$tmp/serve2.out"
url2=$url
url=$saved_url

# Park one request in the single in-flight slot: a streamed POST (-T -
# sends chunked without buffering stdin) that delivers a few bytes, then
# stalls past the deadline.
{ printf 'JOB '; sleep 5; } | curl -sS -o "$tmp/held.out" -T - -X POST \
    "$url2/v1/extract?format=42f99400cddeb649" &
holder=$!
i=0
while [ $i -lt 25 ]; do
    curl -fsS "$url2/v1/status" > "$tmp/status.json" || fail "status probe failed"
    grep -q '"inFlight": 1' "$tmp/status.json" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q '"inFlight": 1' "$tmp/status.json" || fail "held request never occupied the in-flight slot"

# Saturated: the next request is shed with 429 + Retry-After, while the
# liveness and status probes stay exempt.
code=$(curl -sS -o "$tmp/shed.json" -w '%{http_code}' -D "$tmp/shed.hdr" "$url2/v1/formats")
[ "$code" = "429" ] || fail "request under saturation returned $code, want 429"
grep -qi '^Retry-After:' "$tmp/shed.hdr" || fail "429 response missing Retry-After"
grep -q '"code":"saturated"' "$tmp/shed.json" || fail "429 body is not the saturated envelope: $(cat "$tmp/shed.json")"
curl -fsS "$url2/healthz" > /dev/null || fail "healthz must stay exempt under saturation"
curl -fsS "$url2/v1/status" > /dev/null || fail "status must stay exempt under saturation"

# The held request overruns its 3s deadline: the daemon answers 504
# deadline_exceeded (the stalled upload is cut, the envelope still
# flushes within the write grace) and frees the slot.
wait "$holder" || true
grep -q '"code":"deadline_exceeded"' "$tmp/held.out" \
    || fail "stalled request did not fail with deadline_exceeded: $(cat "$tmp/held.out")"
curl -fsS "$url2/v1/formats" > /dev/null || fail "slot not freed after the deadline fired"

echo "serve smoke passed: /v1 routes, the deprecated alias, /v1/query (+explain), /metrics, scoped reindex, the error envelope, 429-on-saturation and deadline-exceeded all behave"
