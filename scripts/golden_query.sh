#!/bin/sh
# Golden-query check for the lake query engine: build the record store
# fresh from the checked-in fixture lake (testdata/lake), run the query
# suite (selection, projection, a two-format equi-join, group-by,
# ORDER BY+LIMIT top-k, range-WHERE) with
# `datamaran query`, and diff every result against the committed
# goldens — at two worker counts, since neither the store bytes nor any
# query result may depend on crawl parallelism. The same goldens are
# checked by TestQueryGoldens (in-process engine) and serve_smoke.sh
# (served /v1/query), so all three surfaces stay byte-identical. Run
# with -update to regenerate after an intentional change.
set -eu
# dash (the usual /bin/sh) has no pipefail; enable it where the shell
# supports it so a failing producer can't vanish behind a pipe.
(set -o pipefail) 2>/dev/null && set -o pipefail || true
cd "$(dirname "$0")/.."
golden=testdata/lake_golden/query
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/datamaran" ./cmd/datamaran

# The query suite. Keep in sync with query_golden_test.go and the
# serve-smoke query check. Fields: <name>.<output form>|<query>.
suite() {
    cat <<'EOF'
selection.csv|SELECT f1, f2, f3 FROM 570eebfb5b600688 WHERE f2 > 99
projection.ndjson|SELECT f1, f6 FROM 94d88dc2a33387cc WHERE f5 = '500' LIMIT 15
join.csv|SELECT m.f1, m.f2, h.f3, h.f5 FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 AND m.f2 > 99 ORDER BY m.f2 DESC, m.f1
groupby.csv|SELECT f3, count(*), avg(f2) FROM 570eebfb5b600688 GROUP BY f3 ORDER BY f3
topk.csv|SELECT f1, f2, f3 FROM 570eebfb5b600688 ORDER BY f2 DESC, f1 LIMIT 5
range.ndjson|SELECT f1, f2 FROM 570eebfb5b600688 WHERE f2 > 90 AND f2 <= 99
joingroup.ndjson|SELECT h.f5, count(*) FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 GROUP BY h.f5 ORDER BY h.f5
EOF
}

# The EXPLAIN-plan suite: the same join, group-by and top-k queries
# rendered as plan trees via -explain plan. Plan-only output carries no
# timings, so it pins byte-for-byte like the results. Keep in sync with
# goldenExplains in query_golden_test.go.
explain_suite() {
    cat <<'EOF'
explain_join.csv|SELECT m.f1, m.f2, h.f3, h.f5 FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 AND m.f2 > 99 ORDER BY m.f2 DESC, m.f1
explain_groupby.csv|SELECT f3, count(*), avg(f2) FROM 570eebfb5b600688 GROUP BY f3 ORDER BY f3
explain_topk.csv|SELECT f1, f2, f3 FROM 570eebfb5b600688 ORDER BY f2 DESC, f1 LIMIT 5
EOF
}

run_suite() {
    workers=$1 out=$2
    mkdir -p "$out"
    "$tmp/datamaran" index -q -workers "$workers" -registry "$out/registry.json" \
        -store "$out/store" testdata/lake > /dev/null
    suite | while IFS='|' read -r file q; do
        "$tmp/datamaran" query -store "$out/store" -output "${file##*.}" \
            -o "$out/${file}" "$q"
    done
    explain_suite | while IFS='|' read -r file q; do
        "$tmp/datamaran" query -store "$out/store" -output csv -explain plan \
            -o "$out/${file}" "$q"
    done
}

if [ "${1:-}" = "-update" ]; then
    run_suite 1 "$tmp/w1"
    rm -rf "$golden"
    mkdir -p "$golden"
    { suite; explain_suite; } | while IFS='|' read -r file q; do
        cp "$tmp/w1/$file" "$golden/$file"
    done
    echo "golden query results regenerated under $golden"
    exit 0
fi

for w in 1 8; do
    run_suite "$w" "$tmp/w$w"
    { suite; explain_suite; } | while IFS='|' read -r file q; do
        diff -u "$golden/$file" "$tmp/w$w/$file"
    done
done
echo "golden query suite reproduced byte-for-byte (workers 1 and 8)"
