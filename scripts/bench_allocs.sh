#!/bin/sh
# Allocation gate over the steady-state hot paths: runs the pinned
# benchmarks with -benchmem and fails when their allocs/op exceed the
# ceilings. The two-phase matcher's contract is that noise-line
# rejection and arena-reuse scanning never touch the heap, and the
# generation engine's contract is that a warm genST trial — pure
# transition-table and chain-cache traversal — never does either; a
# regression here silently re-introduces the per-candidate allocation
# costs the evaluation and generation engines were rebuilt to remove.
#
# Usage: sh scripts/bench_allocs.sh
set -eu
# dash (the usual /bin/sh) has no pipefail; enable it where the shell
# supports it so a failing producer can't vanish behind a pipe.
(set -o pipefail) 2>/dev/null && set -o pipefail || true

out=$(go test -run '^$' -bench 'BenchmarkScanNoiseReject|BenchmarkScanArenaReuse' \
	-benchmem -benchtime 100x ./internal/parser)
out="$out
$(go test -run '^$' -bench 'BenchmarkGenSTSteadyState' \
	-benchmem -benchtime 100x ./internal/generation)"
echo "$out"

fail=0
# check <benchmark-name> <max-allocs-per-op>
check() {
	line=$(echo "$out" | grep "^Benchmark$1\b" || true)
	if [ -z "$line" ]; then
		echo "bench-allocs: benchmark Benchmark$1 missing from output" >&2
		fail=1
		return
	fi
	# go test -benchmem line: name N ns/op [MB/s] B/op allocs/op
	allocs=$(echo "$line" | awk '{print $(NF-1)}')
	if [ "$allocs" -gt "$2" ]; then
		echo "bench-allocs: Benchmark$1 = $allocs allocs/op, ceiling $2" >&2
		fail=1
	else
		echo "bench-allocs: Benchmark$1 = $allocs allocs/op (ceiling $2): ok"
	fi
}

check ScanNoiseReject 0
check ScanArenaReuse 0
check GenSTSteadyState 0

exit $fail
