#!/bin/sh
# Golden-corpus check for the data-lake indexer: `datamaran index` over
# the checked-in fixture lake (testdata/lake — 3 formats x several
# files plus one unstructured file) must reproduce the committed
# report, registry and CSV outputs byte-for-byte, at several worker
# counts. Run with -update to regenerate the golden files after an
# intentional change.
set -eu
cd "$(dirname "$0")/.."
golden=testdata/lake_golden
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/datamaran" ./cmd/datamaran

if [ "${1:-}" = "-update" ]; then
    # Only this script's outputs: serve/ and query/ goldens belong to
    # serve_smoke.sh and golden_query.sh.
    rm -rf "$golden/csv" "$golden/report.txt" "$golden/registry.json"
    mkdir -p "$golden/csv"
    "$tmp/datamaran" index -q -workers 1 -registry "$golden/registry.json" \
        -o "$golden/csv" testdata/lake > "$golden/report.txt"
    echo "golden lake files regenerated under $golden"
    exit 0
fi

for w in 1 8; do
    out="$tmp/w$w"
    mkdir -p "$out/csv"
    "$tmp/datamaran" index -q -workers "$w" -registry "$out/registry.json" \
        -o "$out/csv" testdata/lake > "$out/report.txt"
    diff -u "$golden/report.txt" "$out/report.txt"
    diff -u "$golden/registry.json" "$out/registry.json"
    diff -r "$golden/csv" "$out/csv"
done
echo "golden lake corpus reproduced byte-for-byte (workers 1 and 8)"
