// The serve subcommand: a long-running daemon over a data-lake
// directory. It exposes the profile registry and the extraction engine
// over HTTP and re-crawls the lake incrementally on demand, so the
// structure discovered once keeps serving every later request.
//
// Usage:
//
//	datamaran serve [flags] <dir>
//
// Endpoints (see internal/serve; unversioned aliases remain for one
// release):
//
//	GET  /healthz                     liveness
//	GET  /v1/status                   serving stats
//	GET  /v1/formats                  registry listing
//	GET  /v1/formats/{fp}             one profile (feed it back via -profile)
//	POST /v1/extract?format={fp}      extract the request body (ndjson/csv)
//	GET  /v1/lake/extract?path=...    extract a lake file
//	POST /v1/reindex[?format={fp}]    incremental crawl + persist (optionally
//	                                  scoped to one format; scoped crawls of
//	                                  different formats run concurrently)
//	GET  /v1/query?q=...              relational query over the record store
//	                                  (&explain=plan|analyze for the plan)
//	GET  /metrics                     Prometheus text metrics
//
// Registry, checkpoints and the record store default to
// <dir>/.datamaran/ — a hidden directory the crawler skips, so the
// daemon's state never indexes itself.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"datamaran/internal/core"
	"datamaran/internal/serve"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8473", "listen address (port 0 picks a free port)")
	registry := fs.String("registry", "", "profile registry path (default <dir>/.datamaran/registry.json)")
	checkpoints := fs.String("checkpoints", "", "checkpoint store path (default <dir>/.datamaran/checkpoints.json)")
	store := fs.String("store", "", "record store directory for /v1/query (default <dir>/.datamaran/store)")
	workers := fs.Int("workers", 0, "extraction parallelism (0 = all cores; never changes output)")
	alpha := fs.Float64("alpha", 0.10, "minimum coverage threshold α for discovery (fraction)")
	reindex := fs.Bool("reindex", false, "run one incremental crawl before accepting requests")
	maxBodyMB := fs.Int("max-body-mb", 0, "request body cap in MiB (0 = unlimited; overruns get 413)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline (0 = unlimited; overruns get 504)")
	maxInFlight := fs.Int("max-inflight", 0, "in-flight request bound (0 = unlimited; excess load gets 429 + Retry-After)")
	profileCache := fs.Int("profile-cache", 0, "hot compiled-profile LRU capacity (0 = default, negative disables)")
	logFormat := fs.String("log-format", "text", "structured log form on stderr: text or json")
	pprofAddr := fs.String("pprof", "", "also serve net/http/pprof on this address (e.g. 127.0.0.1:6060); separate listener, never exposed on -addr")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: datamaran serve [flags] <dir>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	dir := fs.Arg(0)

	// All diagnostics are structured slog events on stderr; stdout stays
	// reserved for the machine-read "listening on" line.
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fatalf("serve: unknown log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	if *registry == "" || *checkpoints == "" || *store == "" {
		state := filepath.Join(dir, ".datamaran")
		if err := os.MkdirAll(state, 0o755); err != nil {
			fatalf("serve: %v", err)
		}
		if *registry == "" {
			*registry = filepath.Join(state, "registry.json")
		}
		if *checkpoints == "" {
			*checkpoints = filepath.Join(state, "checkpoints.json")
		}
		if *store == "" {
			*store = filepath.Join(state, "store")
		}
	}

	srv, err := serve.New(serve.Config{
		Root:             dir,
		RegistryPath:     *registry,
		CheckpointPath:   *checkpoints,
		StorePath:        *store,
		Workers:          *workers,
		Core:             core.Options{Alpha: *alpha},
		MaxBodyBytes:     int64(*maxBodyMB) << 20,
		RequestTimeout:   *requestTimeout,
		MaxInFlight:      *maxInFlight,
		ProfileCacheSize: *profileCache,
		Logger:           logger,
	})
	if err != nil {
		fatalf("serve: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *reindex {
		t0 := time.Now()
		res, err := srv.Reindex(ctx, "")
		if err != nil {
			fatalf("serve: initial reindex: %v", err)
		}
		s := res.Summary
		logger.Info("initial reindex",
			"files", s.Files,
			"formats", s.FormatsKnown,
			"resumed", s.Resumed,
			"unchanged", s.Unchanged,
			"duration", time.Since(t0).Round(time.Millisecond).String())
	}

	// The profiling listener is separate from the API listener on
	// purpose: pprof exposes stacks and heap contents, so it binds only
	// where explicitly asked and never rides along on -addr.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatalf("serve: pprof: %v", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := http.Serve(pln, pmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "err", err.Error())
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("serve: %v", err)
	}
	// The resolved address goes to stdout so scripts binding port 0 can
	// read where we actually landed.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			hs.Close()
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datamaran "+format+"\n", args...)
	os.Exit(1)
}
