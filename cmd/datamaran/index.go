// The index subcommand: crawl a directory tree of heterogeneous log
// files, discover each format's structure exactly once, and cluster the
// files by profile via a persistent registry.
//
// Usage:
//
//	datamaran index [flags] <dir>
//
// The report on stdout (formats, per-file assignments, summary) is
// deterministic: byte-identical across runs and worker counts. With
// -o DIR, the extracted tables of every structured file are written as
// CSVs there, one file per table, named <path>.<table>.csv with path
// separators flattened to "__".
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"datamaran"
)

func runIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	registry := fs.String("registry", "", "persistent profile registry (JSON); loaded before the crawl, updated after")
	workers := fs.Int("workers", 0, "files extracted concurrently (0 = all cores; never changes output)")
	sample := fs.Int("sample", 0, "per-file classification sample in bytes (0 = 256 KiB)")
	threshold := fs.Float64("threshold", 0, "min sample coverage for a cached profile to claim a file (0 = 0.5)")
	alpha := fs.Float64("alpha", 0.10, "minimum coverage threshold α for discovery (fraction)")
	outDir := fs.String("o", "", "directory for per-file CSV output")
	incremental := fs.Bool("incremental", false, "resume extraction from per-file checkpoints (requires -registry)")
	checkpoints := fs.String("checkpoints", "", "checkpoint store path (default: checkpoints.json next to the registry)")
	store := fs.String("store", "", "record store directory for later `datamaran query` runs")
	quiet := fs.Bool("q", false, "suppress the progress note on stderr")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: datamaran index [flags] <dir>")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	cpPath := ""
	if *incremental {
		if *registry == "" {
			fmt.Fprintln(os.Stderr, "datamaran index: -incremental requires -registry (checkpoints refer to registered profiles)")
			os.Exit(2)
		}
		cpPath = *checkpoints
		if cpPath == "" {
			cpPath = filepath.Join(filepath.Dir(*registry), "checkpoints.json")
		}
	} else if *checkpoints != "" {
		fmt.Fprintln(os.Stderr, "datamaran index: -checkpoints only applies with -incremental")
		os.Exit(2)
	}

	t0 := time.Now()
	res, err := datamaran.IndexDir(fs.Arg(0), datamaran.IndexOptions{
		Extract:        datamaran.Options{Alpha: *alpha},
		RegistryPath:   *registry,
		Workers:        *workers,
		SampleBytes:    *sample,
		MatchThreshold: *threshold,
		CheckpointPath: cpPath,
		StorePath:      *store,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datamaran index: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "indexed %d file(s) in %v\n",
			res.Summary.Files, time.Since(t0).Round(time.Millisecond))
	}

	printIndexReport(res, *incremental)

	if *outDir != "" {
		if err := writeIndexCSVs(res, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "datamaran index: %v\n", err)
			os.Exit(1)
		}
	}
	if res.Summary.Failed > 0 {
		os.Exit(1)
	}
}

// printIndexReport writes the deterministic crawl report: formats in
// registry order, files in sorted path order, then the summary line.
// The incremental form adds resume annotations and whole-file totals;
// the plain form is byte-stable against the committed goldens.
func printIndexReport(res *datamaran.IndexResult, incremental bool) {
	fmt.Printf("formats (%d):\n", len(res.Formats))
	for _, f := range res.Formats {
		origin := "cached"
		if f.Discovered {
			origin = "discovered"
		}
		fmt.Printf("  format %s  files=%d  %s\n", f.Fingerprint, f.Files, origin)
		for i, t := range f.Templates {
			fmt.Printf("    type %d: %s\n", i, t)
		}
	}
	fmt.Printf("files (%d):\n", len(res.Files))
	for _, f := range res.Files {
		switch {
		case f.Err != nil:
			fmt.Printf("  %s  failed: %v\n", f.Path, f.Err)
		case f.Unstructured:
			fmt.Printf("  %s  unstructured\n", f.Path)
		case incremental:
			// Totals span the whole file even when this run only
			// extracted the grown tail (or, for unchanged files,
			// nothing at all).
			fmt.Printf("  %s  format=%s  records=%d  noise=%d  %s\n",
				f.Path, f.Fingerprint, f.TotalRecords, f.TotalNoise, incVia(f))
		default:
			via := "cached"
			if f.Discovered {
				via = "discovered"
			}
			fmt.Printf("  %s  format=%s  records=%d  noise=%d  %s\n",
				f.Path, f.Fingerprint, len(f.Result.Records), len(f.Result.NoiseLines), via)
		}
	}
	s := res.Summary
	fmt.Printf("summary: files=%d structured=%d unstructured=%d failed=%d formats=%d discovered=%d cache-hits=%d",
		s.Files, s.Structured, s.Unstructured, s.Failed, s.FormatsKnown, s.FormatsDiscovered, s.CacheHits)
	if incremental {
		fmt.Printf(" resumed=%d unchanged=%d", s.Resumed, s.Unchanged)
	}
	fmt.Println()
}

// incVia renders the incremental handling column: how the file was
// classified plus how its bytes were (re)extracted.
func incVia(f datamaran.IndexedFile) string {
	switch f.Resume {
	case "resumed", "unchanged":
		return f.Resume
	}
	via := "cached"
	if f.Discovered {
		via = "discovered"
	}
	if f.Resume != "" {
		via += " (" + f.Resume + ")"
	}
	return via
}

// writeIndexCSVs writes every structured file's tables under dir.
func writeIndexCSVs(res *datamaran.IndexResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	used := map[string]bool{}
	for _, f := range res.Files {
		if f.Result == nil {
			continue
		}
		base := strings.ReplaceAll(f.Path, "/", "__")
		// Flattening can collide (a/b.log vs a literal a__b.log);
		// disambiguate deterministically — files arrive path-sorted.
		if used[base] {
			base += "-" + fmt.Sprintf("%x", sha256.Sum256([]byte(f.Path)))[:8]
		}
		used[base] = true
		for _, t := range f.Result.TablesWith(datamaran.TablesOptions{}) {
			path := filepath.Join(dir, base+"."+t.Name+".csv")
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := t.WriteCSV(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
