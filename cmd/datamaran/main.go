// Command datamaran extracts structure from a log file with no
// supervision and writes the discovered templates plus the extracted
// relational tables.
//
// Usage:
//
//	datamaran [flags] <logfile>
//	datamaran index [flags] <dir>
//	datamaran serve [flags] <dir>
//	datamaran query [flags] <query>
//
// With -o DIR, one CSV file per extracted table is written there;
// otherwise tables go to stdout. The index subcommand crawls a
// directory tree (a data lake), discovering each log format once and
// applying cached profiles to every other file — see index.go. The
// serve subcommand runs the lake as a long-lived HTTP daemon with
// checkpointed incremental re-crawls — see serve.go. The query
// subcommand runs relational queries over the record store those
// crawls populate — see query.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"datamaran"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "index" {
		runIndex(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "query" {
		runQuery(os.Args[2:])
		return
	}
	alpha := flag.Float64("alpha", 0.10, "minimum coverage threshold α (fraction)")
	maxSpan := flag.Int("L", 10, "maximum record span in lines")
	topM := flag.Int("M", 50, "templates retained after pruning")
	greedy := flag.Bool("greedy", false, "use greedy charset search instead of exhaustive")
	maxTypes := flag.Int("types", 8, "maximum number of record types to extract")
	outDir := flag.String("o", "", "directory for CSV output (default: stdout)")
	denorm := flag.Bool("denormalized", false, "emit the denormalized single-table form")
	typed := flag.Bool("typed", false, "emit denormalized tables with semantic type merging (IPs, times, ...)")
	saveProfile := flag.String("save-profile", "", "write the learned structure profile (JSON) to this file")
	useProfile := flag.String("profile", "", "skip discovery: apply a previously saved profile")
	stream := flag.Bool("stream", false, "use the streaming sharded engine (bounded memory; discovery on a prefix)")
	workers := flag.Int("workers", 0, "extraction parallelism (0 = all cores for -stream, sequential otherwise)")
	shardSize := flag.Int("shard-size", 0, "streaming shard size in bytes (0 = 1 MiB)")
	quiet := flag.Bool("q", false, "suppress the structure summary")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: datamaran [flags] <logfile>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := datamaran.Options{
		Alpha:          *alpha,
		MaxSpan:        *maxSpan,
		TopM:           *topM,
		MaxRecordTypes: *maxTypes,
		Workers:        *workers,
		ShardSize:      *shardSize,
	}
	if *greedy {
		opts.Search = datamaran.Greedy
	}

	t0 := time.Now()
	var res *datamaran.Result
	var err error
	switch {
	case *useProfile != "" && *stream:
		res, err = streamWithSavedProfile(flag.Arg(0), *useProfile, opts)
	case *useProfile != "":
		res, err = extractWithSavedProfile(flag.Arg(0), *useProfile, opts)
	case *stream:
		res, err = streamFile(flag.Arg(0), opts)
	default:
		res, err = datamaran.ExtractFile(flag.Arg(0), opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datamaran: %v\n", err)
		os.Exit(1)
	}
	if *saveProfile != "" {
		if err := writeProfile(res, *saveProfile); err != nil {
			fmt.Fprintf(os.Stderr, "datamaran: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "profile saved to %s\n", *saveProfile)
		}
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "extracted %d record type(s) in %v (%d noise lines)\n",
			len(res.Structures), time.Since(t0).Round(time.Millisecond), len(res.NoiseLines))
		for _, s := range res.Structures {
			kind := "single-line"
			if s.MultiLine {
				kind = "multi-line"
			}
			fmt.Fprintf(os.Stderr, "  type %d (%s, %d records, %d columns): %s\n",
				s.Type, kind, s.Records, s.Columns, s.Template)
		}
	}

	tables := res.TablesWith(datamaran.TablesOptions{Denormalized: *denorm, Typed: *typed})
	for _, t := range tables {
		if *outDir == "" {
			fmt.Printf("-- table %s --\n", t.Name)
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "datamaran: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		path := filepath.Join(*outDir, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datamaran: %v\n", err)
			os.Exit(1)
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "datamaran: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "datamaran: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  wrote %s (%d rows)\n", path, len(t.Rows))
		}
	}
}

// streamFile extracts through the streaming sharded engine: the file is
// consumed shard by shard instead of being read whole.
func streamFile(path string, opts datamaran.Options) (*datamaran.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return datamaran.ExtractReader(f, opts)
}

// streamWithSavedProfile applies a saved profile over the file as a
// single-pass stream: no discovery and no whole-file buffering.
func streamWithSavedProfile(logPath, profilePath string, opts datamaran.Options) (*datamaran.Result, error) {
	p, err := loadProfile(profilePath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(logPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return datamaran.ExtractReaderWithProfile(f, p, opts)
}

// loadProfile reads a saved profile from disk.
func loadProfile(path string) (*datamaran.Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p datamaran.Profile
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// writeProfile saves the learned structure profile as JSON.
func writeProfile(res *datamaran.Result, path string) error {
	raw, err := json.MarshalIndent(res.Profile(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// extractWithSavedProfile applies a saved profile, skipping discovery.
func extractWithSavedProfile(logPath, profilePath string, opts datamaran.Options) (*datamaran.Result, error) {
	p, err := loadProfile(profilePath)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		return nil, err
	}
	return datamaran.ExtractWithProfileParallel(data, p, opts.Workers)
}
