// The query subcommand: run a relational query over a lake's record
// store — the per-format columnar segments `datamaran index -store` and
// `datamaran serve` write during their crawls.
//
// Usage:
//
//	datamaran query [flags] <query>
//
// The query source is one of:
//
//	-lake DIR     a lake directory (store under DIR/.datamaran/store,
//	              built by crawling the lake if absent)
//	-store DIR    an explicit record-store directory
//	-server URL   a running daemon's /v1/query endpoint
//
// All three produce byte-identical output for the same store and query
// — the daemon streams through the same writers this command uses.
//
// The query form (see datamaran.Query):
//
//	SELECT cols | aggregates | * FROM table [AS alias], ...
//	[WHERE pred AND ...] [GROUP BY cols] [ORDER BY expr [DESC], ...] [LIMIT n]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"datamaran"
)

func runQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "lake directory (record store under <dir>/.datamaran/store, built if absent)")
	storeDir := fs.String("store", "", "record store directory (overrides -lake)")
	server := fs.String("server", "", "base URL of a running datamaran serve daemon (e.g. http://127.0.0.1:8473)")
	outFile := fs.String("o", "", "output file (default stdout)")
	output := fs.String("output", "ndjson", "output form: ndjson or csv")
	tables := fs.Bool("tables", false, "list the store's tables (name, columns, rows, segments) from the manifest — no scan — instead of running a query")
	explain := fs.String("explain", "", "instead of results, emit the query plan: \"plan\" (no execution, deterministic) or \"analyze\" (executes; adds per-operator rows, timings and blocks decoded/pruned)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: datamaran query [flags] <query>")
		fmt.Fprintln(os.Stderr, "       datamaran query [flags] -tables")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	want := 1
	if *tables {
		want = 0
	}
	if fs.NArg() != want {
		fs.Usage()
		os.Exit(2)
	}
	text := ""
	if !*tables {
		text = fs.Arg(0)
	}
	if *output != "ndjson" && *output != "csv" {
		fatalf("query: unknown output %q (want ndjson or csv)", *output)
	}
	switch *explain {
	case "", "plan", "analyze":
	default:
		fatalf("query: unknown explain mode %q (want plan or analyze)", *explain)
	}
	sources := 0
	for _, s := range []string{*lakeDir, *storeDir, *server} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fatalf("query: exactly one of -lake, -store or -server is required")
	}

	w := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatalf("query: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("query: %v", err)
			}
		}()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *server != "" {
		var err error
		if *tables {
			err = tablesServer(ctx, w, *server, *output)
		} else {
			err = queryServer(ctx, w, *server, text, *output, *explain)
		}
		if err != nil {
			fatalf("query: %v", err)
		}
		return
	}
	store := *storeDir
	if store == "" {
		// Lake mode shares the daemon's default state layout under
		// <dir>/.datamaran/, so a store built here is the one a later
		// `datamaran serve` (or incremental index) run extends. A lake
		// nobody has crawled with a store yet gets one now.
		state := filepath.Join(*lakeDir, ".datamaran")
		store = filepath.Join(state, "store")
		if _, err := os.Stat(filepath.Join(store, "manifest.json")); os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "datamaran query: no record store under %s; crawling the lake to build one\n", state)
			if _, err := datamaran.IndexDirContext(ctx, *lakeDir, datamaran.IndexOptions{
				RegistryPath:   filepath.Join(state, "registry.json"),
				CheckpointPath: filepath.Join(state, "checkpoints.json"),
				StorePath:      store,
			}); err != nil {
				fatalf("query: building record store: %v", err)
			}
		}
	}
	if *tables {
		stats, err := datamaran.StoreTables(store)
		if err != nil {
			fatalf("query: %v", err)
		}
		if err := writeTables(w, stats, *output); err != nil {
			fatalf("query: %v", err)
		}
		return
	}
	rows, err := datamaran.Query(ctx, text, datamaran.QueryOptions{StorePath: store, Explain: *explain})
	if err != nil {
		fatalf("query: %v", err)
	}
	defer rows.Close()
	if *output == "csv" {
		err = rows.WriteCSV(w)
	} else {
		err = rows.WriteNDJSON(w)
	}
	if err != nil {
		fatalf("query: %v", err)
	}
}

// writeTables renders the table listing. CSV is a fixed four-column
// header plus one line per table; NDJSON is one object per table. Table
// names are hex fingerprints, so no quoting is ever needed.
func writeTables(w io.Writer, stats []datamaran.TableStat, output string) error {
	if output == "csv" {
		if _, err := fmt.Fprintln(w, "table,columns,rows,segments"); err != nil {
			return err
		}
		for _, t := range stats {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d\n", t.Name, t.Columns, t.Rows, t.Segments); err != nil {
				return err
			}
		}
		return nil
	}
	enc := json.NewEncoder(w)
	for _, t := range stats {
		if err := enc.Encode(struct {
			Name     string `json:"name"`
			Columns  int    `json:"columns"`
			Rows     int    `json:"rows"`
			Segments int    `json:"segments"`
		}{t.Name, t.Columns, t.Rows, t.Segments}); err != nil {
			return err
		}
	}
	return nil
}

// tablesServer lists tables from a daemon's /v1/status, which carries
// the same manifest-held counts, then renders them exactly like the
// local path.
func tablesServer(ctx context.Context, w io.Writer, server, output string) error {
	u := strings.TrimSuffix(server, "/") + "/v1/status"
	req, err := http.NewRequestWithContext(ctx, "GET", u, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var status struct {
		Tables []datamaran.TableStat `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return err
	}
	return writeTables(w, status.Tables, output)
}

// queryServer streams /v1/query from a daemon — the bytes on the wire
// are already the canonical writer output, so they pass through
// untouched.
func queryServer(ctx context.Context, w io.Writer, server, text, output, explain string) error {
	u := strings.TrimSuffix(server, "/") + "/v1/query?q=" + url.QueryEscape(text) + "&output=" + url.QueryEscape(output)
	if explain != "" {
		u += "&explain=" + url.QueryEscape(explain)
	}
	req, err := http.NewRequestWithContext(ctx, "GET", u, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
