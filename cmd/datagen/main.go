// Command datagen emits the synthetic datasets used throughout the
// benchmarks: the 25 Table-5 analogs, the 100-file GitHub-style corpus,
// or one named dataset.
//
// Usage:
//
//	datagen -list
//	datagen -name "web server log" -rows 1000 > web.log
//	datagen -corpus -dir corpus/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"datamaran/internal/datagen"
)

func main() {
	list := flag.Bool("list", false, "list the 25 manual dataset analogs")
	name := flag.String("name", "", "emit the named manual dataset to stdout")
	rows := flag.Int("rows", 0, "row count override for -name")
	seed := flag.Int64("seed", 1, "generator seed")
	corpus := flag.Bool("corpus", false, "write the 100-file corpus")
	dir := flag.String("dir", "corpus", "output directory for -corpus")
	scale := flag.Float64("scale", 1.0, "size scale for -list datasets")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-28s %10s %12s %14s %8s\n", "name", "size (MB)", "# rec types", "max rec span", "label")
		for _, d := range datagen.ManualDatasets(*scale) {
			fmt.Printf("%-28s %10.3f %12d %14d %8s\n", d.Name, d.SizeMB(), d.NumRecTypes, d.MaxRecSpan, d.Label)
		}
	case *name != "":
		for _, d := range datagen.ManualDatasets(*scale) {
			if d.Name != *name {
				continue
			}
			data := d.Data
			if *rows > 0 {
				// Regenerate at the requested size by scaling.
				data = regenerate(*name, *rows, *seed)
			}
			if _, err := os.Stdout.Write(data); err != nil {
				fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (try -list)\n", *name)
		os.Exit(2)
	case *corpus:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		for _, d := range datagen.GitHubCorpus(*seed) {
			path := filepath.Join(*dir, strings.ReplaceAll(d.Name, "/", "_")+".log")
			if err := os.WriteFile(path, d.Data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote 100 datasets to %s\n", *dir)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// regenerate rebuilds a manual dataset at a custom row count.
func regenerate(name string, rows int, seed int64) []byte {
	gens := map[string]func(int, int64) *datagen.Dataset{
		"transaction records":    datagen.TransactionRecords,
		"comma-sep records":      datagen.CommaSepRecords,
		"web server log":         datagen.WebServerLog,
		"vcf genetic format":     datagen.VCFGenetic,
		"fastq genetic format":   datagen.FastqGenetic,
		"Thailand district info": datagen.ThailandDistricts,
		"stackexchange xml data": datagen.StackexchangeXML,
	}
	if g, ok := gens[name]; ok {
		return g(rows, seed).Data
	}
	fmt.Fprintf(os.Stderr, "datagen: -rows not supported for %q\n", name)
	os.Exit(2)
	return nil
}
