// Command experiments regenerates the paper's tables and figures on the
// synthetic substrate. Select an experiment with -exp, or run everything
// with -exp all. -quick shrinks workloads for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"

	"datamaran/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table3|table5|accuracy25|fig14a|fig14b|fig15|fig16|fig17a|fig17b|userstudy|ablation|all")
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	flag.Parse()

	w := os.Stdout
	scale := 0.5
	sizes := []float64{0.25, 0.5, 1, 2, 4}
	complexities := []int{1, 2, 3, 4, 5, 6}
	rowsPerType := 400
	ms := []int{1, 5, 10, 50, 200, 1000}
	perLabel := 0
	if *quick {
		scale = 0.1
		sizes = []float64{0.1, 0.25, 0.5}
		complexities = []int{1, 2, 3}
		rowsPerType = 150
		ms = []int{1, 10, 50}
		perLabel = 3
	}

	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
		}
	}
	run("table1", func() { experiments.Table1(w) })
	run("table5", func() { experiments.Table5(scale, w) })
	run("accuracy25", func() { experiments.Accuracy25(scale, w) })
	run("table3", func() { experiments.Table3Complexity(w) })
	run("fig14a", func() { experiments.Fig14aSize(sizes, w) })
	run("fig14b", func() { experiments.Fig14bComplexity(complexities, rowsPerType, w) })
	run("fig15", func() { experiments.Fig15Params(w) })
	run("fig16", func() { experiments.Fig16Sensitivity(scale/2, ms, w) })
	run("fig17a", func() { experiments.Fig17a(w) })
	run("fig17b", func() { experiments.Fig17b(perLabel, w) })
	run("userstudy", func() { experiments.UserStudy(w) })
	run("ablation", func() { experiments.AblationAssimilation(w) })

	switch *exp {
	case "table1", "table3", "table5", "accuracy25", "fig14a", "fig14b",
		"fig15", "fig16", "fig17a", "fig17b", "userstudy", "ablation", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
