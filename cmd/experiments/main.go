// Command experiments regenerates the paper's tables and figures on the
// synthetic substrate. Select an experiment with -exp, or run everything
// with -exp all. -quick shrinks workloads for a fast smoke run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"datamaran"
	"datamaran/internal/datagen"
	"datamaran/internal/experiments"
	"datamaran/internal/generation"
	"datamaran/internal/textio"
)

func main() {
	// The body lives in run so deferred profile writers fire before the
	// process exits (os.Exit skips defers).
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment: table1|table3|table5|accuracy25|fig14a|fig14b|fig15|fig16|fig17a|fig17b|userstudy|ablation|all")
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	benchExtract := flag.String("bench-extract", "", "run the streaming-engine benchmark and write the JSON report to this file")
	benchMB := flag.Int("bench-mb", 0, "input size in MiB for -bench-extract (0 = 32, or 8 with -quick)")
	benchBaseline := flag.String("bench-baseline", "", "with -bench-extract: compare against this baseline report and fail on a >20% throughput regression")
	benchServe := flag.String("bench-serve", "", "run the serving-path load benchmark and write the JSON report to this file")
	benchServeSecs := flag.Float64("bench-serve-seconds", 0, "seconds per (mode, in-flight) cell for -bench-serve (0 = 2, or 0.5 with -quick)")
	benchServeBaseline := flag.String("bench-serve-baseline", "", "with -bench-serve: compare against this baseline report and fail on a >20% QPS or p99 regression")
	benchQuery := flag.String("bench-query", "", "run the query-engine benchmark over the amplified fixture lake and write the JSON report to this file")
	benchQuerySecs := flag.Float64("bench-query-seconds", 0, "seconds per query shape for -bench-query (0 = 2, or 0.5 with -quick)")
	benchQueryBaseline := flag.String("bench-query-baseline", "", "with -bench-query: compare against this baseline report and fail on a >20% QPS regression or a pushdown ratio under 3x")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected run (experiments or benchmark) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // material allocations only, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			}
		}()
	}

	if *benchExtract != "" {
		if *benchMB <= 0 {
			*benchMB = 32
			if *quick {
				*benchMB = 8
			}
		}
		if err := runBenchExtract(*benchExtract, *benchMB); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if *benchBaseline != "" {
			if err := gateBench(*benchBaseline, *benchExtract); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench gate: %v\n", err)
				return 1
			}
		}
		return 0
	}

	if *benchServe != "" {
		if *benchServeSecs <= 0 {
			*benchServeSecs = 2
			if *quick {
				*benchServeSecs = 0.5
			}
		}
		if err := runBenchServe(*benchServe, *benchServeSecs); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if *benchServeBaseline != "" {
			if err := gateServeBench(*benchServeBaseline, *benchServe); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: serve gate: %v\n", err)
				return 1
			}
		}
		return 0
	}

	if *benchQuery != "" {
		if *benchQuerySecs <= 0 {
			*benchQuerySecs = 2
			if *quick {
				*benchQuerySecs = 0.5
			}
		}
		if err := runBenchQuery(*benchQuery, *benchQuerySecs); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if *benchQueryBaseline != "" {
			if err := gateQueryBench(*benchQueryBaseline, *benchQuery); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: query gate: %v\n", err)
				return 1
			}
		}
		return 0
	}

	w := os.Stdout
	scale := 0.5
	sizes := []float64{0.25, 0.5, 1, 2, 4}
	complexities := []int{1, 2, 3, 4, 5, 6}
	rowsPerType := 400
	ms := []int{1, 5, 10, 50, 200, 1000}
	perLabel := 0
	if *quick {
		scale = 0.1
		sizes = []float64{0.1, 0.25, 0.5}
		complexities = []int{1, 2, 3}
		rowsPerType = 150
		ms = []int{1, 10, 50}
		perLabel = 3
	}

	runExp := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
		}
	}
	runExp("table1", func() { experiments.Table1(w) })
	runExp("table5", func() { experiments.Table5(scale, w) })
	runExp("accuracy25", func() { experiments.Accuracy25(scale, w) })
	runExp("table3", func() { experiments.Table3Complexity(w) })
	runExp("fig14a", func() { experiments.Fig14aSize(sizes, w) })
	runExp("fig14b", func() { experiments.Fig14bComplexity(complexities, rowsPerType, w) })
	runExp("fig15", func() { experiments.Fig15Params(w) })
	runExp("fig16", func() { experiments.Fig16Sensitivity(scale/2, ms, w) })
	runExp("fig17a", func() { experiments.Fig17a(w) })
	runExp("fig17b", func() { experiments.Fig17b(perLabel, w) })
	runExp("userstudy", func() { experiments.UserStudy(w) })
	runExp("ablation", func() { experiments.AblationAssimilation(w) })

	switch *exp {
	case "table1", "table3", "table5", "accuracy25", "fig14a", "fig14b",
		"fig15", "fig16", "fig17a", "fig17b", "userstudy", "ablation", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

// benchRun is one timed configuration of the extraction benchmark.
type benchRun struct {
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	MBPerSec  float64 `json:"mb_per_s"`
	SpeedupW1 float64 `json:"speedup_vs_workers1"`
}

// benchReport is the BENCH_extract.json schema.
type benchReport struct {
	InputBytes int        `json:"input_bytes"`
	NumCPU     int        `json:"num_cpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Note       string     `json:"note"`
	Runs       []benchRun `json:"runs"`
}

// runBenchExtract measures the streaming engine: full discovery+extract
// runs, then the discovery-free profile-apply path (the parallelizable
// extraction pass in isolation) at increasing worker counts.
func runBenchExtract(path string, mb int) error {
	block := datagen.WebServerLog(4000, 7).Data
	data := make([]byte, 0, mb<<20)
	for len(data) < mb<<20 {
		data = append(data, block...)
	}
	learned, err := datamaran.Extract(block, datamaran.Options{})
	if err != nil {
		return err
	}
	profile := learned.Profile()

	rep := benchReport{
		InputBytes: len(data),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "apply-profile isolates the parallel extraction pass; discovery cost is " +
			"sample-bounded and input-size independent. Worker speedups require NumCPU > 1.",
	}
	time1 := map[string]float64{}
	record := func(mode string, workers int, fn func() error) error {
		t0 := time.Now()
		if err := fn(); err != nil {
			return err
		}
		sec := time.Since(t0).Seconds()
		r := benchRun{Mode: mode, Workers: workers, Seconds: sec,
			MBPerSec: float64(len(data)) / (1 << 20) / sec}
		if workers == 1 {
			time1[mode] = sec
		}
		if base, ok := time1[mode]; ok && sec > 0 {
			r.SpeedupW1 = base / sec
		}
		rep.Runs = append(rep.Runs, r)
		fmt.Fprintf(os.Stderr, "%-16s workers=%d: %.2fs (%.1f MiB/s)\n", mode, workers, sec, r.MBPerSec)
		return nil
	}

	if err := record("extract-mem", 1, func() error {
		_, err := datamaran.Extract(data, datamaran.Options{})
		return err
	}); err != nil {
		return err
	}
	// gen isolates the generation step — the dominant discovery cost —
	// on the 512 KiB sample the discovery pipeline draws from this
	// corpus (core's default SampleBudget), repeated to cover the full
	// input size so MiB/s reads as generation throughput over the
	// benchmark corpus.
	sample := textio.Sampler{Budget: 512 << 10, Seed: 7}.Sample(data)
	genLines := textio.NewLines(sample)
	genReps := (len(data) + len(sample) - 1) / len(sample)
	if err := record("gen", 1, func() error {
		for r := 0; r < genReps; r++ {
			generation.Generate(genLines, generation.Config{})
		}
		return nil
	}); err != nil {
		return err
	}
	discard := func(datamaran.Record) error { return nil }
	for _, w := range []int{1, 2, 4} {
		w := w
		if err := record("stream-discover", w, func() error {
			_, err := datamaran.ExtractStream(bytes.NewReader(data), datamaran.Options{Workers: w}, discard)
			return err
		}); err != nil {
			return err
		}
	}
	for _, w := range []int{1, 2, 4} {
		w := w
		if err := record("apply-profile", w, func() error {
			_, err := datamaran.ExtractStreamWithProfile(bytes.NewReader(data), profile,
				datamaran.Options{Workers: w}, discard)
			return err
		}); err != nil {
			return err
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// gateRegression is the throughput drop the bench gate tolerates before
// failing (CI hosts are noisy; real regressions are usually larger).
const gateRegression = 0.20

// gateMinSpeedRatio is a hardware-independent floor on apply-profile
// throughput relative to extract-mem. The committed report shows the
// profile fast path ~13x the discovery path; a fast-path regression
// large enough to matter drags the ratio under this floor on any
// machine — so the gate catches it even when the absolute comparison
// is slack because the runner outclasses the baseline host.
const gateMinSpeedRatio = 5.0

// gatedModes are the benchmark modes the gate protects with the absolute
// throughput floor: the in-memory discovery+extraction path, the isolated
// generation step, the streaming discovery path, and the registry fast
// path.
var gatedModes = []string{"extract-mem", "gen", "stream-discover", "apply-profile"}

// gateBench compares a fresh benchmark report against the committed
// baseline, failing when a gated mode's workers=1 throughput regressed
// more than gateRegression, when the candidate's apply-profile /
// extract-mem ratio falls below gateMinSpeedRatio, or when any mode the
// baseline measured is missing from the candidate report (a silently
// dropped mode would otherwise pass the gate unexamined forever). The
// absolute check is only meaningful when the baseline was measured on
// the gate's hardware class — refresh it from the CI artifact in the
// same PR when a change is intentional; the ratio check holds
// everywhere.
func gateBench(baselinePath, candidatePath string) error {
	baseline, err := loadBenchReport(baselinePath)
	if err != nil {
		return err
	}
	candidate, err := loadBenchReport(candidatePath)
	if err != nil {
		return err
	}
	// Every mode the baseline measured must appear in the fresh report:
	// a missing mode is a hard failure, not a silent pass.
	candModes := map[string]bool{}
	for _, r := range candidate.Runs {
		candModes[r.Mode] = true
	}
	var missing []string
	seen := map[string]bool{}
	for _, r := range baseline.Runs {
		if !seen[r.Mode] && !candModes[r.Mode] {
			missing = append(missing, r.Mode)
		}
		seen[r.Mode] = true
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("baseline modes %v missing from candidate %s — the benchmark no longer measures them", missing, candidatePath)
	}
	failed := false
	candW1 := map[string]float64{}
	for _, mode := range gatedModes {
		base, ok := throughputW1(baseline, mode)
		if !ok {
			return fmt.Errorf("baseline %s has no %q runs", baselinePath, mode)
		}
		cand, ok := throughputW1(candidate, mode)
		if !ok {
			return fmt.Errorf("candidate %s has no %q runs", candidatePath, mode)
		}
		candW1[mode] = cand
		ratio := cand / base
		verdict := "ok"
		if ratio < 1-gateRegression {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "bench-gate %-16s baseline %6.2f MiB/s, candidate %6.2f MiB/s (%.0f%%): %s\n",
			mode, base, cand, ratio*100, verdict)
	}
	speedRatio := candW1["apply-profile"] / candW1["extract-mem"]
	verdict := "ok"
	if speedRatio < gateMinSpeedRatio {
		verdict = "REGRESSED"
		failed = true
	}
	fmt.Fprintf(os.Stderr, "bench-gate apply/extract speed ratio %.1fx (floor %.1fx): %s\n",
		speedRatio, gateMinSpeedRatio, verdict)
	if failed {
		return fmt.Errorf("throughput regressed >%.0f%% vs %s or fast-path ratio under %.1fx (regenerate the baseline if intentional: make bench-extract)",
			gateRegression*100, baselinePath, gateMinSpeedRatio)
	}
	return nil
}

// loadBenchReport reads a BENCH_extract.json report.
func loadBenchReport(path string) (*benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// throughputW1 returns a mode's workers=1 MiB/s — the one configuration
// whose meaning does not depend on the host's core count. A report
// without a workers=1 run falls back to the mode's best.
func throughputW1(rep *benchReport, mode string) (float64, bool) {
	best, found := 0.0, false
	for _, r := range rep.Runs {
		if r.Mode != mode {
			continue
		}
		if r.Workers == 1 {
			return r.MBPerSec, true
		}
		if !found || r.MBPerSec > best {
			best, found = r.MBPerSec, true
		}
	}
	return best, found
}
