package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeServeReport(t *testing.T, dir, name string, runs []serveRun) string {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := json.Marshal(serveReport{BodyBytes: 1, NumCPU: 1, GoMaxProcs: 1, Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func serveRuns(qps, p99 float64) []serveRun {
	var runs []serveRun
	for _, mode := range []string{"extract", "query"} {
		for _, inFlight := range serveInFlights {
			runs = append(runs, serveRun{Mode: mode, InFlight: inFlight,
				Requests: 100, Seconds: 1, QPS: qps, P50Ms: p99 / 2, P99Ms: p99})
		}
	}
	return runs
}

func TestGateServeBenchPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveRuns(100, 10))
	cand := writeServeReport(t, dir, "cand.json", serveRuns(100, 10))
	if err := gateServeBench(base, cand); err != nil {
		t.Fatalf("identical reports must pass: %v", err)
	}
	// Improvements pass too.
	cand = writeServeReport(t, dir, "cand2.json", serveRuns(200, 5))
	if err := gateServeBench(base, cand); err != nil {
		t.Fatalf("improved report must pass: %v", err)
	}
}

func TestGateServeBenchFailsOnQPSRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveRuns(100, 10))
	cand := writeServeReport(t, dir, "cand.json", serveRuns(50, 10))
	if err := gateServeBench(base, cand); err == nil {
		t.Fatal("2x QPS regression must fail the gate")
	}
}

func TestGateServeBenchFailsOnP99Regression(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveRuns(100, 10))
	// QPS holds, but tail latency doubled.
	cand := writeServeReport(t, dir, "cand.json", serveRuns(100, 20))
	if err := gateServeBench(base, cand); err == nil {
		t.Fatal("2x p99 regression must fail the gate")
	}
}

// TestGateServeBenchFailsOnMissingCell: a (mode, in_flight) cell present
// in the committed baseline but absent from the fresh report is a hard
// failure, not a silent pass — same policy as the extract gate.
func TestGateServeBenchFailsOnMissingCell(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveRuns(100, 10))
	var truncated []serveRun
	for _, r := range serveRuns(100, 10) {
		if r.Mode == "query" && r.InFlight == 16 {
			continue
		}
		truncated = append(truncated, r)
	}
	cand := writeServeReport(t, dir, "cand.json", truncated)
	err := gateServeBench(base, cand)
	if err == nil {
		t.Fatal("baseline cell missing from candidate must fail the gate")
	}
	if !strings.Contains(err.Error(), "query/in_flight=16") {
		t.Fatalf("error must name the missing cell: %v", err)
	}
}

// TestGateServeBenchWithinTolerance: a drop inside the 20% margin passes
// — CI hosts are noisy; the gate is for real regressions.
func TestGateServeBenchWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveRuns(100, 10))
	cand := writeServeReport(t, dir, "cand.json", serveRuns(85, 11.5))
	if err := gateServeBench(base, cand); err != nil {
		t.Fatalf("15%% drops must stay inside the tolerance: %v", err)
	}
}

// TestBenchServeSmoke runs the real benchmark briefly end to end: the
// report must carry every (mode, in_flight) cell with sane numbers, and
// must gate cleanly against itself.
func TestBenchServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load benchmark")
	}
	path := filepath.Join(t.TempDir(), "serve.json")
	if err := runBenchServe(path, 0.2); err != nil {
		t.Fatal(err)
	}
	rep, err := loadServeReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2*len(serveInFlights) {
		t.Fatalf("report has %d runs, want %d", len(rep.Runs), 2*len(serveInFlights))
	}
	for _, r := range rep.Runs {
		if r.Requests <= 0 || r.QPS <= 0 || r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Fatalf("implausible run: %+v", r)
		}
	}
	if err := gateServeBench(path, path); err != nil {
		t.Fatalf("report must gate against itself: %v", err)
	}
}
