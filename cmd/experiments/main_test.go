package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, runs []benchRun) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var b strings.Builder
	b.WriteString(`{"input_bytes":1,"num_cpu":1,"gomaxprocs":1,"note":"","runs":[`)
	for i, r := range runs {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"mode":"` + r.Mode + `","workers":` + strconv.Itoa(r.Workers) +
			`,"seconds":1,"mb_per_s":` + strconv.FormatFloat(r.MBPerSec, 'g', -1, 64) +
			`,"speedup_vs_workers1":1}`)
	}
	b.WriteString(`]}`)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fullRuns(extract, stream, apply float64) []benchRun {
	return []benchRun{
		{Mode: "extract-mem", Workers: 1, MBPerSec: extract},
		{Mode: "gen", Workers: 1, MBPerSec: extract},
		{Mode: "stream-discover", Workers: 1, MBPerSec: stream},
		{Mode: "apply-profile", Workers: 1, MBPerSec: apply},
	}
}

func TestGateBenchPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", fullRuns(1, 1, 10))
	cand := writeReport(t, dir, "cand.json", fullRuns(1, 1, 10))
	if err := gateBench(base, cand); err != nil {
		t.Fatalf("identical reports must pass: %v", err)
	}
}

func TestGateBenchFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", fullRuns(10, 10, 100))
	cand := writeReport(t, dir, "cand.json", fullRuns(1, 10, 100))
	if err := gateBench(base, cand); err == nil {
		t.Fatal("10x extract-mem regression must fail the gate")
	}
}

func TestGateBenchFailsOnRatioFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", fullRuns(10, 10, 100))
	// No absolute regression, but apply/extract ratio 1x < 5x floor.
	cand := writeReport(t, dir, "cand.json", fullRuns(100, 10, 100))
	if err := gateBench(base, cand); err == nil {
		t.Fatal("apply/extract ratio below the floor must fail the gate")
	}
}

// TestGateBenchFailsOnMissingMode pins the bug fixed in this revision: a
// mode present in the committed baseline but absent from the fresh report
// must be a hard failure, not a silent pass.
func TestGateBenchFailsOnMissingMode(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", fullRuns(1, 1, 10))
	cand := writeReport(t, dir, "cand.json", []benchRun{
		{Mode: "extract-mem", Workers: 1, MBPerSec: 1},
		{Mode: "apply-profile", Workers: 1, MBPerSec: 10},
	})
	err := gateBench(base, cand)
	if err == nil {
		t.Fatal("baseline mode missing from candidate must fail the gate")
	}
	if !strings.Contains(err.Error(), "stream-discover") {
		t.Fatalf("error must name the missing mode: %v", err)
	}
}

// TestGateBenchFailsOnGenRegression pins the generation-throughput gate
// added with the shape-interned engine: a >20% drop of the isolated
// generation mode fails the gate even when the end-to-end modes hold.
func TestGateBenchFailsOnGenRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", fullRuns(10, 10, 100))
	runs := fullRuns(10, 10, 100)
	runs[1].MBPerSec = 1 // gen regressed 10x
	cand := writeReport(t, dir, "cand.json", runs)
	err := gateBench(base, cand)
	if err == nil {
		t.Fatal("gen-mode regression must fail the gate")
	}
}
