// The serving-path load benchmark behind -bench-serve: an in-process
// `datamaran serve` daemon over a synthetic lake, driven with extract
// and query load at increasing client concurrency over real loopback
// HTTP. The report (BENCH_serve.json) carries QPS and latency
// percentiles per (mode, in-flight) cell; gateServeBench compares a
// fresh report against the committed baseline the same way the extract
// gate does.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"datamaran/internal/datagen"
	"datamaran/internal/serve"
)

// serveRun is one timed (mode, in-flight) cell of the serving bench.
type serveRun struct {
	Mode     string  `json:"mode"`
	InFlight int     `json:"in_flight"`
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	BodyBytes  int        `json:"body_bytes"`
	NumCPU     int        `json:"num_cpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Note       string     `json:"note"`
	Runs       []serveRun `json:"runs"`
}

// serveInFlights are the client concurrency levels each mode is
// measured at.
var serveInFlights = []int{1, 4, 16}

// runBenchServe stands up the daemon over a generated lake and measures
// the two serving paths — POST /v1/extract (per-request extraction
// through the hot-profile cache) and GET /v1/query (relational scans
// over the record store) — at each concurrency level for secs seconds.
func runBenchServe(path string, secs float64) error {
	root, err := os.MkdirTemp("", "datamaran-bench-serve-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Two lake files of one web-log format: enough rows that a query
	// does real scan work, small enough that a cell turns over many
	// requests.
	block := datagen.WebServerLog(4000, 7).Data
	for i := 1; i <= 2; i++ {
		if err := os.WriteFile(filepath.Join(root, fmt.Sprintf("web-%d.log", i)), block, 0o644); err != nil {
			return err
		}
	}
	srv, err := serve.New(serve.Config{
		Root:      root,
		StorePath: filepath.Join(root, ".store"),
		// One extraction worker per request: the bench varies client
		// concurrency, so per-request parallelism would only oversubscribe
		// the host and blur the cells.
		Workers: 1,
	})
	if err != nil {
		return err
	}
	if _, err := srv.Reindex(context.Background(), ""); err != nil {
		return err
	}
	entries := srv.Registry().Entries()
	if len(entries) != 1 {
		return fmt.Errorf("bench-serve lake discovered %d formats, want 1", len(entries))
	}
	fp := entries[0].Fingerprint

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}

	// A ~64 KiB extract body: large enough that the pipeline dominates
	// the HTTP round trip, small enough for high request turnover.
	body := block
	for len(body) < 64<<10 {
		body = append(body, block...)
	}
	body = body[:64<<10]
	// Trim to whole lines so every request extracts identical records.
	if i := bytes.LastIndexByte(body, '\n'); i >= 0 {
		body = body[:i+1]
	}

	queryURL := hs.URL + "/v1/query?q=" + url.QueryEscape(
		"SELECT f0, count(*) FROM "+fp+" GROUP BY f0 ORDER BY count(*) DESC, f0 LIMIT 5") + "&output=csv"
	modes := []struct {
		name string
		do   func() error
	}{
		{"extract", func() error {
			return drainRequest(client, "POST", hs.URL+"/v1/extract?format="+fp+"&output=csv", body)
		}},
		{"query", func() error {
			return drainRequest(client, "GET", queryURL, nil)
		}},
	}

	rep := serveReport{
		BodyBytes:  len(body),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "in-process daemon over loopback HTTP; extraction workers=1 per request. " +
			"QPS scaling with in_flight requires NumCPU > 1; on a single-core host higher " +
			"concurrency holds QPS roughly flat while p99 grows with queue depth.",
	}
	for _, mode := range modes {
		for _, inFlight := range serveInFlights {
			run, err := measureServe(mode.name, inFlight, secs, mode.do)
			if err != nil {
				return err
			}
			rep.Runs = append(rep.Runs, run)
			fmt.Fprintf(os.Stderr, "%-8s in_flight=%-2d: %6.1f qps, p50 %6.2fms, p99 %6.2fms (%d reqs)\n",
				run.Mode, run.InFlight, run.QPS, run.P50Ms, run.P99Ms, run.Requests)
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// measureServe drives one request kind with inFlight concurrent clients
// for secs seconds and reduces the per-request latencies.
func measureServe(mode string, inFlight int, secs float64, do func() error) (serveRun, error) {
	var (
		mu        sync.Mutex
		latencies []float64
		firstErr  error
		wg        sync.WaitGroup
	)
	t0 := time.Now()
	deadline := t0.Add(time.Duration(secs * float64(time.Second)))
	for w := 0; w < inFlight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				r0 := time.Now()
				err := do()
				lat := time.Since(r0).Seconds() * 1000
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				latencies = append(latencies, lat)
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if firstErr != nil {
		return serveRun{}, fmt.Errorf("bench-serve %s in_flight=%d: %w", mode, inFlight, firstErr)
	}
	if len(latencies) == 0 {
		return serveRun{}, fmt.Errorf("bench-serve %s in_flight=%d: no requests completed", mode, inFlight)
	}
	sort.Float64s(latencies)
	return serveRun{
		Mode:     mode,
		InFlight: inFlight,
		Requests: len(latencies),
		Seconds:  elapsed,
		QPS:      float64(len(latencies)) / elapsed,
		P50Ms:    percentile(latencies, 0.50),
		P99Ms:    percentile(latencies, 0.99),
	}, nil
}

// percentile reads the q-quantile from sorted latencies (nearest rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// drainRequest issues one request and fully consumes the response —
// streamed bodies count toward latency, exactly as a client sees it.
func drainRequest(client *http.Client, method, target string, body []byte) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, target, rd)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", method, target, resp.StatusCode)
	}
	return nil
}

// serveGateRegression mirrors gateRegression for the serving bench: the
// QPS drop tolerated before the gate fails.
const serveGateRegression = 0.20

// serveGateP99Regression is the p99 growth tolerated. Tail percentiles
// at deep queues are a handful of worst samples per cell and jitter
// run-to-run far more than throughput on a shared CI runner, so the
// margin is wider: a real tail regression (a lock serializing the
// serving path multiplies p99 at in_flight=16) still lands far past it.
const serveGateP99Regression = 0.50

// gateServeBench compares a fresh serving report against the committed
// baseline: every (mode, in_flight) cell the baseline measured must be
// present (a silently dropped cell is a hard failure, like the extract
// gate), QPS must hold within serveGateRegression, and p99 latency must
// not grow past serveGateP99Regression. Absolute comparisons assume the
// baseline's hardware class — refresh BENCH_serve.json from the CI
// artifact in the same PR when a change is intentional.
func gateServeBench(baselinePath, candidatePath string) error {
	baseline, err := loadServeReport(baselinePath)
	if err != nil {
		return err
	}
	candidate, err := loadServeReport(candidatePath)
	if err != nil {
		return err
	}
	type cell struct {
		mode     string
		inFlight int
	}
	cand := map[cell]serveRun{}
	for _, r := range candidate.Runs {
		cand[cell{r.Mode, r.InFlight}] = r
	}
	var missing []string
	failed := false
	for _, b := range baseline.Runs {
		c, ok := cand[cell{b.Mode, b.InFlight}]
		if !ok {
			missing = append(missing, fmt.Sprintf("%s/in_flight=%d", b.Mode, b.InFlight))
			continue
		}
		qpsRatio := c.QPS / b.QPS
		p99Ratio := c.P99Ms / b.P99Ms
		verdict := "ok"
		if qpsRatio < 1-serveGateRegression || p99Ratio > 1+serveGateP99Regression {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "serve-gate %-8s in_flight=%-2d qps %6.1f -> %6.1f (%.0f%%), p99 %6.2fms -> %6.2fms (%.0f%%): %s\n",
			b.Mode, b.InFlight, b.QPS, c.QPS, qpsRatio*100, b.P99Ms, c.P99Ms, p99Ratio*100, verdict)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("baseline cells %s missing from candidate %s — the benchmark no longer measures them",
			strings.Join(missing, ", "), candidatePath)
	}
	if failed {
		return fmt.Errorf("serving QPS regressed >%.0f%% or p99 grew >%.0f%% vs %s (regenerate the baseline if intentional: make bench-serve)",
			serveGateRegression*100, serveGateP99Regression*100, baselinePath)
	}
	return nil
}

// loadServeReport reads a BENCH_serve.json report.
func loadServeReport(path string) (*serveReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep serveReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
