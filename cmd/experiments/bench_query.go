// The query-engine benchmark behind -bench-query: the fixture lake
// (testdata/lake), amplified by copying its structured files, is crawled
// into a record store — compaction included — and the relational engine
// is driven with the store pinned open, the way the serving daemon holds
// it (a one-shot datamaran.Query pays a store open per call, which on
// this fixture costs more than the scan and would swamp the engine
// numbers). The report (BENCH_query.json) carries QPS per query shape;
// gateQueryBench compares a fresh report against the committed baseline
// like the extract and serve gates, plus a hardware-independent floor on
// the pushdown win: the selective scan must stay ≥3x the same query run
// with pushdown disabled (the pre-pushdown engine's full-decode path).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"datamaran"
	"datamaran/internal/lake"
	"datamaran/internal/query"
)

// queryBenchCopies is the amplification factor: every structured
// fixture file is written this many times, so tables reach tens of
// thousands of rows and scan cost dominates parse/plan overhead.
const queryBenchCopies = 200

// queryRun is one timed query shape.
type queryRun struct {
	Mode    string  `json:"mode"`
	Queries int     `json:"queries"`
	RowsOut int     `json:"rows_out"`
	Seconds float64 `json:"seconds"`
	QPS     float64 `json:"qps"`
}

// queryReport is the BENCH_query.json schema.
type queryReport struct {
	TableRows  map[string]int `json:"table_rows"`
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Note       string         `json:"note"`
	Runs       []queryRun     `json:"runs"`
}

// queryBenchModes are the measured query shapes over the amplified
// fixture lake. selective-scan-nopush is the reference cell: the same
// query as selective-scan with pushdown disabled, so the pair measures
// the pushdown win on identical bytes.
var queryBenchModes = []struct {
	name   string
	query  string
	nopush bool
}{
	{"selective-scan", "SELECT f1, f2 FROM 570eebfb5b600688 WHERE f2 > 99", false},
	{"selective-scan-nopush", "SELECT f1, f2 FROM 570eebfb5b600688 WHERE f2 > 99", true},
	{"wide-projection", "SELECT * FROM 570eebfb5b600688", false},
	{"join", "SELECT m.f1, m.f2, h.f3, h.f5 FROM 570eebfb5b600688 AS m, 3065c6f04a84699c AS h WHERE m.f3 = h.f1 AND m.f2 > 99", false},
	{"top-k", "SELECT f1, f2, f3 FROM 570eebfb5b600688 ORDER BY f2 DESC, f1 LIMIT 10", false},
}

// buildQueryBenchStore amplifies testdata/lake into root and crawls it
// into a record store (the crawl compacts, so the store is the shape a
// long-lived daemon serves). Returns the store path.
func buildQueryBenchStore(root string) (string, error) {
	src := "testdata/lake"
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		dst := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			return err
		}
		ext := filepath.Ext(rel)
		base := rel[:len(rel)-len(ext)]
		for i := 1; i < queryBenchCopies; i++ {
			if err := os.WriteFile(filepath.Join(root, fmt.Sprintf("%s.copy%d%s", base, i, ext)), data, 0o644); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	store := filepath.Join(root, ".store")
	if _, err := datamaran.IndexDir(root, datamaran.IndexOptions{StorePath: store}); err != nil {
		return "", err
	}
	return store, nil
}

// runBenchQuery builds the amplified store and measures each query
// shape for secs seconds.
func runBenchQuery(path string, secs float64) error {
	root, err := os.MkdirTemp("", "datamaran-bench-query-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	store, err := buildQueryBenchStore(root)
	if err != nil {
		return err
	}
	st, err := lake.OpenSegmentStore(store)
	if err != nil {
		return err
	}

	rep := queryReport{
		TableRows:  map[string]int{},
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: fmt.Sprintf("testdata/lake amplified x%d, crawled + compacted, store pinned open "+
			"across queries as the serving daemon holds it. "+
			"selective-scan-nopush disables pushdown on the same query — the pair's ratio "+
			"is the pushdown win and is gated at >=%.1fx.", queryBenchCopies, queryGateMinPushRatio),
	}
	tables, err := datamaran.StoreTables(store)
	if err != nil {
		return err
	}
	for _, t := range tables {
		rep.TableRows[t.Name] = t.Rows
	}

	for _, mode := range queryBenchModes {
		run, err := measureQuery(st, mode.name, mode.query, mode.nopush, secs)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Fprintf(os.Stderr, "%-22s %6.1f qps (%d queries, %d rows out)\n",
			run.Mode, run.QPS, run.Queries, run.RowsOut)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// measureQuery runs one query shape back-to-back for secs seconds
// against an already-open store, the serving daemon's steady state.
func measureQuery(st *lake.SegmentStore, mode, text string, nopush bool, secs float64) (queryRun, error) {
	q, err := query.Parse(text)
	if err != nil {
		return queryRun{}, fmt.Errorf("bench-query %s: %w", mode, err)
	}
	cat := query.StoreCatalog(st)
	if nopush {
		cat = query.NoPushdown(cat)
	}
	runOnce := func() (int, error) {
		rows, err := query.Run(context.Background(), cat, q)
		if err != nil {
			return 0, err
		}
		defer rows.Close()
		n := 0
		for {
			if _, err := rows.Next(); err != nil {
				if err == io.EOF {
					return n, nil
				}
				return 0, err
			}
			n++
		}
	}
	// One warm run pins the per-query row count and primes the page
	// cache before the clock starts.
	rowsOut, err := runOnce()
	if err != nil {
		return queryRun{}, fmt.Errorf("bench-query %s: %w", mode, err)
	}
	t0 := time.Now()
	deadline := t0.Add(time.Duration(secs * float64(time.Second)))
	queries := 0
	for time.Now().Before(deadline) {
		n, err := runOnce()
		if err != nil {
			return queryRun{}, fmt.Errorf("bench-query %s: %w", mode, err)
		}
		if n != rowsOut {
			return queryRun{}, fmt.Errorf("bench-query %s: row count changed mid-run (%d vs %d)", mode, n, rowsOut)
		}
		queries++
	}
	elapsed := time.Since(t0).Seconds()
	if queries == 0 {
		return queryRun{}, fmt.Errorf("bench-query %s: no queries completed in %.1fs", mode, secs)
	}
	return queryRun{Mode: mode, Queries: queries, RowsOut: rowsOut,
		Seconds: elapsed, QPS: float64(queries) / elapsed}, nil
}

// queryGateMinPushRatio is the hardware-independent floor on the
// pushdown win: selective-scan QPS over selective-scan-nopush QPS. The
// committed report shows well above 3x; losing the edge means the scan
// is decoding columns (or rows) it was built to skip.
const queryGateMinPushRatio = 3.0

// gateQueryBench compares a fresh query report against the committed
// baseline: every baseline mode must be present (a dropped mode is a
// hard failure), QPS must hold within gateRegression, and the pushdown
// ratio must stay above queryGateMinPushRatio. As with the other gates,
// absolute comparisons assume the baseline's hardware class — refresh
// BENCH_query.json from the CI artifact when a change is intentional.
func gateQueryBench(baselinePath, candidatePath string) error {
	baseline, err := loadQueryReport(baselinePath)
	if err != nil {
		return err
	}
	candidate, err := loadQueryReport(candidatePath)
	if err != nil {
		return err
	}
	cand := map[string]queryRun{}
	for _, r := range candidate.Runs {
		cand[r.Mode] = r
	}
	var missing []string
	failed := false
	for _, b := range baseline.Runs {
		c, ok := cand[b.Mode]
		if !ok {
			missing = append(missing, b.Mode)
			continue
		}
		ratio := c.QPS / b.QPS
		verdict := "ok"
		if ratio < 1-gateRegression {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "query-gate %-22s baseline %7.1f qps, candidate %7.1f qps (%.0f%%): %s\n",
			b.Mode, b.QPS, c.QPS, ratio*100, verdict)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("baseline modes %v missing from candidate %s — the benchmark no longer measures them", missing, candidatePath)
	}
	push, havePush := cand["selective-scan"]
	nopush, haveNopush := cand["selective-scan-nopush"]
	if !havePush || !haveNopush {
		return fmt.Errorf("candidate %s lacks the selective-scan/selective-scan-nopush pair", candidatePath)
	}
	pushRatio := push.QPS / nopush.QPS
	verdict := "ok"
	if pushRatio < queryGateMinPushRatio {
		verdict = "REGRESSED"
		failed = true
	}
	fmt.Fprintf(os.Stderr, "query-gate pushdown ratio %.1fx (floor %.1fx): %s\n",
		pushRatio, queryGateMinPushRatio, verdict)
	if failed {
		return fmt.Errorf("query QPS regressed >%.0f%% vs %s or pushdown ratio under %.1fx (regenerate the baseline if intentional: make bench-query)",
			gateRegression*100, baselinePath, queryGateMinPushRatio)
	}
	return nil
}

// loadQueryReport reads a BENCH_query.json report.
func loadQueryReport(path string) (*queryReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep queryReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
