package datamaran

// Benchmarks regenerating each table and figure of the paper's evaluation
// (§5, §6), plus the ablation benches for the design choices listed in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Workloads are scaled down so the full suite completes in minutes on one
// core; cmd/experiments runs the full-size versions and prints paper-style
// rows.

import (
	"bytes"
	"io"
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/evaluate"
	"datamaran/internal/experiments"
	"datamaran/internal/generation"
	"datamaran/internal/parser"
	"datamaran/internal/recordbreaker"
	"datamaran/internal/score"
	"datamaran/internal/template"
	"datamaran/internal/textio"
	"datamaran/internal/wrangler"
)

// --- §5.2.1: the 25 manually collected datasets (E1) ---

func BenchmarkManualDatasets25(b *testing.B) {
	datasets := datagen.ManualDatasets(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok := 0
		for _, d := range datasets {
			res, err := core.Extract(d.Data, core.Options{})
			if err != nil {
				continue
			}
			if evaluate.Evaluate(d.Truth, evaluate.FromCore(res)).Success {
				ok++
			}
		}
		if ok < 20 {
			b.Fatalf("only %d/25 successful", ok)
		}
	}
}

// --- Fig 14a: running time vs dataset size ---

func benchSize(b *testing.B, rows int, mode generation.SearchMode) {
	d := datagen.VCFGenetic(rows, 77)
	b.SetBytes(int64(len(d.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(d.Data, core.Options{Search: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14aSizeQuarterMBExhaustive(b *testing.B) { benchSize(b, 5500, generation.Exhaustive) }
func BenchmarkFig14aSizeQuarterMBGreedy(b *testing.B)     { benchSize(b, 5500, generation.Greedy) }
func BenchmarkFig14aSizeOneMBExhaustive(b *testing.B)     { benchSize(b, 22000, generation.Exhaustive) }
func BenchmarkFig14aSizeOneMBGreedy(b *testing.B)         { benchSize(b, 22000, generation.Greedy) }

// --- Fig 14b: running time vs structural complexity ---

func benchComplexity(b *testing.B, k int, mode generation.SearchMode) {
	d := datagen.InterleavedTypes(k, 200, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(d.Data, core.Options{Search: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14bComplexity1Exhaustive(b *testing.B) { benchComplexity(b, 1, generation.Exhaustive) }
func BenchmarkFig14bComplexity3Exhaustive(b *testing.B) { benchComplexity(b, 3, generation.Exhaustive) }
func BenchmarkFig14bComplexity6Exhaustive(b *testing.B) { benchComplexity(b, 6, generation.Exhaustive) }
func BenchmarkFig14bComplexity6Greedy(b *testing.B)     { benchComplexity(b, 6, generation.Greedy) }

// --- Fig 15: running time vs parameters ---

func benchParams(b *testing.B, opts core.Options) {
	d := datagen.LogFile2(400, 91)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(d.Data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15M10(b *testing.B)  { benchParams(b, core.Options{TopM: 10}) }
func BenchmarkFig15M50(b *testing.B)  { benchParams(b, core.Options{TopM: 50}) }
func BenchmarkFig15M500(b *testing.B) { benchParams(b, core.Options{TopM: 500}) }
func BenchmarkFig15Alpha05L15(b *testing.B) {
	benchParams(b, core.Options{Alpha: 0.05, MaxSpan: 15})
}
func BenchmarkFig15Alpha20L5(b *testing.B) {
	benchParams(b, core.Options{Alpha: 0.20, MaxSpan: 5})
}

// BenchmarkNoPruning is §5.2.2's M=∞ observation (design choice 5): with
// pruning disabled every coverage-surviving candidate is evaluated.
func BenchmarkNoPruning(b *testing.B) { benchParams(b, core.Options{TopM: -1}) }

// --- Fig 16: parameter sensitivity (one representative combination) ---

func BenchmarkFig16Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig16Sensitivity(0.05, []int{1, 50}, io.Discard)
	}
}

// --- Fig 17: the GitHub corpus ---

func benchCorpus(b *testing.B, run func(d *datagen.Dataset)) {
	corpus := datagen.GitHubCorpus(42)
	// Two datasets per structured category keep the bench minutes-scale.
	perLabel := map[datagen.Label]int{}
	var picked []*datagen.Dataset
	for _, d := range corpus {
		if d.Label == datagen.NS || perLabel[d.Label] >= 2 {
			continue
		}
		perLabel[d.Label]++
		picked = append(picked, d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range picked {
			run(d)
		}
	}
}

func BenchmarkFig17CorpusExhaustive(b *testing.B) {
	benchCorpus(b, func(d *datagen.Dataset) {
		core.Extract(d.Data, core.Options{Search: generation.Exhaustive})
	})
}

func BenchmarkFig17CorpusGreedy(b *testing.B) {
	benchCorpus(b, func(d *datagen.Dataset) {
		core.Extract(d.Data, core.Options{Search: generation.Greedy})
	})
}

func BenchmarkFig17CorpusRecordBreaker(b *testing.B) {
	benchCorpus(b, func(d *datagen.Dataset) {
		recordbreaker.Extract(d.Data, recordbreaker.Config{})
	})
}

// --- Fig 18 / §6: the simulated user study ---

func BenchmarkUserStudy(b *testing.B) {
	d := datagen.LogFile5(80, 64)
	res, err := core.Extract(d.Data, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	exA := evaluate.FromCore(res)
	exB := recordbreaker.Extract(d.Data, recordbreaker.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wrangler.PlanDatamaran(d, exA)
		wrangler.PlanRecordBreaker(d, exB)
		wrangler.PlanRaw(d)
	}
}

// --- Table 3: per-step complexity (micro benches for each step) ---

func BenchmarkTable3GenerationStep(b *testing.B) {
	d := datagen.CommaSepRecords(2000, 5)
	lines := textio.NewLines(d.Data)
	b.SetBytes(int64(len(d.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		generation.Generate(lines, generation.Config{})
	}
}

func BenchmarkTable3PruningStep(b *testing.B) {
	d := datagen.LogFile1(150, 5)
	cands := generation.Generate(textio.NewLines(d.Data), generation.Config{MaxCandidates: 100000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := make([]generation.Candidate, len(cands))
		copy(c, cands)
		generation.Prune(c, 50)
	}
}

func BenchmarkTable3EvaluationStep(b *testing.B) {
	d := datagen.CommaSepRecords(2000, 5)
	lines := textio.NewLines(d.Data)
	tm := template.Array([]*template.Node{template.Field()}, ',', '\n')
	m := parser.NewMatcher(tm)
	b.SetBytes(int64(len(d.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		score.MDL{}.Score(m, lines)
	}
}

func BenchmarkTable3ExtractionStep(b *testing.B) {
	d := datagen.CommaSepRecords(5000, 5)
	lines := textio.NewLines(d.Data)
	tm := template.Struct(
		template.Field(), template.Lit(","), template.Field(), template.Lit(","),
		template.Field(), template.Lit(","), template.Field(), template.Lit("\n"),
	).Normalize()
	m := parser.NewMatcher(tm)
	b.SetBytes(int64(len(d.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(lines)
	}
}

// --- Ablation: assimilation score (design choice 1) ---

func BenchmarkAblationAssimilation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationAssimilation(io.Discard)
	}
}

// --- Micro benches on the hot paths ---

func BenchmarkReduceCSVRow(b *testing.B) {
	toks, _ := template.ExtractRecordTemplate(
		[]byte("1,2,3,4,5,6,7,8,9,10\n"), template.Lit(",").RTCharSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Reduce(toks)
	}
}

func BenchmarkReduceMultiLineWindow(b *testing.B) {
	d := datagen.ThailandDistricts(2, 3)
	toks, _ := template.ExtractRecordTemplate(d.Data, template.Lit("{}\":, ").RTCharSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Reduce(toks)
	}
}

func BenchmarkPublicExtract(b *testing.B) {
	d := datagen.WebServerLog(300, 7)
	b.SetBytes(int64(len(d.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(d.Data, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- The streaming sharded engine (§5.2.2's parallel extraction pass) ---

// streamBenchInput builds a multi-megabyte log by tiling a generated
// dataset, so extraction (not discovery) dominates the run.
func streamBenchInput(mb int) []byte {
	block := datagen.WebServerLog(4000, 7).Data
	out := make([]byte, 0, mb<<20)
	for len(out) < mb<<20 {
		out = append(out, block...)
	}
	return out
}

func benchStream(b *testing.B, data []byte, workers int) {
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ExtractStream(bytes.NewReader(data), Options{Workers: workers},
			func(Record) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Structures) == 0 {
			b.Fatal("no structures")
		}
	}
}

func BenchmarkStreamExtract16MBWorkers1(b *testing.B) { benchStream(b, streamBenchInput(16), 1) }
func BenchmarkStreamExtract16MBWorkers2(b *testing.B) { benchStream(b, streamBenchInput(16), 2) }
func BenchmarkStreamExtract16MBWorkers4(b *testing.B) { benchStream(b, streamBenchInput(16), 4) }

// BenchmarkStreamVsInMemory16MB is the sequential in-memory baseline for
// the worker-scaling benches above.
func BenchmarkStreamVsInMemory16MB(b *testing.B) {
	data := streamBenchInput(16)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(data, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
