package datamaran

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func sampleCSV(rows int) []byte {
	rng := rand.New(rand.NewSource(2))
	var b strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%s,%d\n", i, []string{"ok", "bad", "slow"}[rng.Intn(3)], rng.Intn(1000))
	}
	return []byte(b.String())
}

func TestExtractPublicAPI(t *testing.T) {
	res, err := Extract(sampleCSV(120), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) != 1 {
		t.Fatalf("structures = %d, want 1", len(res.Structures))
	}
	s := res.Structures[0]
	if s.Records != 120 {
		t.Fatalf("records = %d, want 120", s.Records)
	}
	if s.Columns != 3 {
		t.Fatalf("columns = %d, want 3", s.Columns)
	}
	if s.MultiLine {
		t.Fatal("single-line structure flagged multi-line")
	}
	if s.Template == "" || !strings.Contains(s.Template, "F") {
		t.Fatalf("template = %q", s.Template)
	}
	if len(res.Records) != 120 {
		t.Fatalf("record list = %d", len(res.Records))
	}
	if res.Timing.Total() <= 0 {
		t.Fatal("timing not recorded")
	}
}

func TestExtractEmptyInputError(t *testing.T) {
	if _, err := Extract(nil, Options{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestExtractReaderAndFile(t *testing.T) {
	data := sampleCSV(60)
	res, err := ExtractReader(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 60 {
		t.Fatalf("reader records = %d", len(res.Records))
	}
	path := t.TempDir() + "/x.log"
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	res2, err := ExtractFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != 60 {
		t.Fatalf("file records = %d", len(res2.Records))
	}
	if _, err := ExtractFile(path+".missing", Options{}); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestFieldSpansMatchValues(t *testing.T) {
	data := sampleCSV(80)
	res, err := Extract(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		for _, f := range r.Fields {
			if string(data[f.Start:f.End]) != f.Value {
				t.Fatalf("span/value mismatch: %q vs %q", data[f.Start:f.End], f.Value)
			}
		}
	}
}

func TestTablesNormalized(t *testing.T) {
	res, err := Extract(sampleCSV(50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tables := res.Tables()
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	root := tables[0]
	if root.Columns[0] != "id" {
		t.Fatalf("first column = %q, want id", root.Columns[0])
	}
	if len(root.Rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(root.Rows))
	}
}

func TestTablesWithLists(t *testing.T) {
	// Variable-length lists: normalized form must produce a child table.
	rng := rand.New(rand.NewSource(3))
	var b strings.Builder
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(5)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fmt.Sprintf("%d", rng.Intn(100))
		}
		fmt.Fprintf(&b, "row %s;\n", strings.Join(parts, ","))
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 {
		t.Fatal("no structure")
	}
	if !strings.Contains(res.Structures[0].Template, ")*") {
		t.Skipf("no array survived refinement: %s", res.Structures[0].Template)
	}
	tables := res.Tables()
	if len(tables) < 2 {
		t.Fatalf("tables = %d, want root + child", len(tables))
	}
	child := tables[1]
	if child.Parent == "" {
		t.Fatal("child table lacks parent reference")
	}
}

func TestDenormalizedTables(t *testing.T) {
	res, err := Extract(sampleCSV(40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tabs := res.DenormalizedTables()
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	if len(tabs[0].Rows) != 40 {
		t.Fatalf("rows = %d", len(tabs[0].Rows))
	}
}

func TestTableWriteCSV(t *testing.T) {
	res, err := Extract(sampleCSV(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Tables()[0].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 11 { // header + 10 rows
		t.Fatalf("CSV lines = %d, want 11", lines)
	}
}

func TestMultiLinePublic(t *testing.T) {
	var b strings.Builder
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "BEGIN %d\nval= %d;\nEND.\n", i, rng.Intn(1000))
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) != 1 || !res.Structures[0].MultiLine {
		t.Fatalf("expected one multi-line structure: %+v", res.Structures)
	}
	if res.Records[0].EndLine-res.Records[0].StartLine != 3 {
		t.Fatalf("record spans %d lines, want 3", res.Records[0].EndLine-res.Records[0].StartLine)
	}
}

func TestGreedyOption(t *testing.T) {
	res, err := Extract(sampleCSV(80), Options{Search: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 {
		t.Fatal("greedy found nothing")
	}
}

func TestTypedTablesMergeIP(t *testing.T) {
	// Web-log style lines: the fine-grained IP octet columns must come
	// back as one ip column.
	rng := rand.New(rand.NewSource(8))
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d.%d.%d.%d GET %d\n",
			1+rng.Intn(250), rng.Intn(256), rng.Intn(256), 1+rng.Intn(250), rng.Intn(1000))
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tabs := res.TypedTables()
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	hasIP := false
	for _, c := range tabs[0].Columns {
		if c == "ip" {
			hasIP = true
		}
	}
	if !hasIP {
		t.Fatalf("no ip column after typing: %v", tabs[0].Columns)
	}
	// First cell of the ip column must be a dotted quad.
	ipIdx := -1
	for i, c := range tabs[0].Columns {
		if c == "ip" {
			ipIdx = i
		}
	}
	if !strings.Contains(tabs[0].Rows[0][ipIdx], ".") {
		t.Fatalf("ip cell = %q", tabs[0].Rows[0][ipIdx])
	}
}

func TestTypedTablesNoSpuriousMerges(t *testing.T) {
	res, err := Extract(sampleCSV(60), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tabs := res.TypedTables()
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	if len(tabs[0].Columns) == 0 || len(tabs[0].Rows) != 60 {
		t.Fatalf("typed table malformed: %v rows=%d", tabs[0].Columns, len(tabs[0].Rows))
	}
}
