package datamaran

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureLake = "testdata/lake"

func TestIndexDirFixtureLake(t *testing.T) {
	regPath := filepath.Join(t.TempDir(), "registry.json")
	res, err := IndexDir(fixtureLake, IndexOptions{RegistryPath: regPath})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.FormatsKnown != 4 || s.FormatsDiscovered != 4 {
		t.Fatalf("fixture lake formats: %+v", s)
	}
	if s.Files != 12 || s.Structured != 11 || s.Unstructured != 1 || s.Failed != 0 {
		t.Fatalf("fixture lake files: %+v", s)
	}
	if s.CacheHits != 7 {
		t.Fatalf("fixture lake cache hits: %+v", s)
	}
	// Each format discovered exactly once — the acceptance criterion.
	perFP := map[string]int{}
	for _, f := range res.Files {
		if f.Discovered {
			perFP[f.Fingerprint]++
		}
	}
	if len(perFP) != 4 {
		t.Fatalf("discoveries per format: %v", perFP)
	}
	for fp, n := range perFP {
		if n != 1 {
			t.Fatalf("format %s discovered %d times", fp, n)
		}
	}
	// The registry persisted; a second run reuses every profile.
	if _, err := os.Stat(regPath); err != nil {
		t.Fatalf("registry not written: %v", err)
	}
	res2, err := IndexDir(fixtureLake, IndexOptions{RegistryPath: regPath})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.FormatsDiscovered != 0 || res2.Summary.CacheHits != 11 {
		t.Fatalf("second run should skip all discovery: %+v", res2.Summary)
	}
	for _, f := range res2.Formats {
		if f.Discovered {
			t.Fatalf("format %s marked discovered on second run", f.Fingerprint)
		}
		if f.Files != 2*filesOfFormat(res, f.Fingerprint) {
			t.Fatalf("format %s claim count %d after two runs", f.Fingerprint, f.Files)
		}
	}
}

func filesOfFormat(res *IndexResult, fp string) int {
	for _, f := range res.Formats {
		if f.Fingerprint == fp {
			return f.Files
		}
	}
	return 0
}

// indexDigest renders everything observable about an IndexDir run
// except timings.
func indexDigest(t *testing.T, res *IndexResult) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "summary %+v\n", res.Summary)
	for _, f := range res.Formats {
		fmt.Fprintf(&b, "format %s files=%d discovered=%v templates=%v\n",
			f.Fingerprint, f.Files, f.Discovered, f.Templates)
	}
	for _, f := range res.Files {
		fmt.Fprintf(&b, "file %s size=%d fp=%s disc=%v unstructured=%v err=%v\n",
			f.Path, f.Size, f.Fingerprint, f.Discovered, f.Unstructured, f.Err)
		if f.Result == nil {
			continue
		}
		for _, s := range f.Result.Structures {
			fmt.Fprintf(&b, "  structure %+v\n", s)
		}
		for _, r := range f.Result.Records {
			fmt.Fprintf(&b, "  record %+v\n", r)
		}
		fmt.Fprintf(&b, "  noise %v\n", f.Result.NoiseLines)
		for _, tb := range f.Result.Tables() {
			fmt.Fprintf(&b, "  table %s cols=%v rows=%d\n", tb.Name, tb.Columns, len(tb.Rows))
			var csv strings.Builder
			if err := tb.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			b.WriteString(csv.String())
		}
	}
	return b.String()
}

func TestIndexDirWorkerEquivalence(t *testing.T) {
	// workers=1 and workers=8 must agree byte-for-byte on every output,
	// including the persisted registry — the single-CPU-safe form of
	// the parallelism claim.
	var want, wantReg string
	for _, workers := range []int{1, 8} {
		regPath := filepath.Join(t.TempDir(), "registry.json")
		res, err := IndexDir(fixtureLake, IndexOptions{RegistryPath: regPath, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := indexDigest(t, res)
		raw, err := os.ReadFile(regPath)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want, wantReg = got, string(raw)
			continue
		}
		if string(raw) != wantReg {
			t.Fatalf("workers=%d registry differs from workers=1", workers)
		}
		if got != want {
			t.Fatalf("workers=%d results differ from workers=1", workers)
		}
	}
}

func TestIndexDirFormatsUsableAsProfiles(t *testing.T) {
	res, err := IndexDir(fixtureLake, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Formats {
		p := f.Profile()
		if p.Fingerprint() != f.Fingerprint {
			t.Fatalf("profile fingerprint %s != format %s", p.Fingerprint(), f.Fingerprint)
		}
	}
	// Applying a format's profile to one of its member files reproduces
	// the indexer's result for that file.
	var member IndexedFile
	for _, f := range res.Files {
		if !f.Discovered && !f.Unstructured && f.Err == nil {
			member = f
			break
		}
	}
	if member.Path == "" {
		t.Fatal("no cached member file in fixture lake")
	}
	data, err := os.ReadFile(filepath.Join(fixtureLake, member.Path))
	if err != nil {
		t.Fatal(err)
	}
	var prof *Profile
	for _, f := range res.Formats {
		if f.Fingerprint == member.Fingerprint {
			prof = f.Profile()
		}
	}
	direct, err := ExtractWithProfile(data, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Records) != len(member.Result.Records) {
		t.Fatalf("direct profile apply: %d records, indexer got %d",
			len(direct.Records), len(member.Result.Records))
	}
}

func TestIndexDirMissingDir(t *testing.T) {
	if _, err := IndexDir(filepath.Join(t.TempDir(), "absent"), IndexOptions{}); err == nil {
		t.Fatal("missing directory should error")
	}
}
