package datamaran_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/follow"
	"datamaran/internal/pipeline"
	"datamaran/internal/relational"
	"datamaran/internal/template"
)

// followInputs gathers the resume-equivalence corpus: one lake fixture
// file per format (single-line, pipe-separated, and the multi-line jobs
// stanzas) plus a generated 10-line-record dataset. The race build
// trims to the multi-line cases, where resume boundaries are hardest.
func followInputs(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{
		"blogxml": datagen.BlogXML(40, 21).Data,
	}
	lakeFiles := []string{
		"testdata/lake/jobs/job-1.log",
		"testdata/lake/metrics/metrics-1.log",
		"testdata/lake/web/requests-1.log",
	}
	if raceEnabled {
		lakeFiles = lakeFiles[:1]
	}
	for _, p := range lakeFiles {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// followTemplates learns the profile of data once.
func followTemplates(t *testing.T, data []byte) []*template.Node {
	t.Helper()
	disc, err := core.Extract(data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(disc.Structures) == 0 {
		t.Fatal("test is vacuous: no structure")
	}
	var tpls []*template.Node
	for _, s := range disc.Structures {
		tpls = append(tpls, s.Template)
	}
	return tpls
}

// tablesCSV renders a record stream as the indexer's CSV tables — the
// byte-level artifact the golden lake pins.
func tablesCSV(t *testing.T, tpls []*template.Node, records []core.RecordOut) []byte {
	t.Helper()
	var buf bytes.Buffer
	for typeID, tpl := range tpls {
		var recs [][]relational.FlatField
		for _, r := range records {
			if r.TypeID != typeID {
				continue
			}
			fields := make([]relational.FlatField, 0, len(r.Fields))
			for _, f := range r.Fields {
				fields = append(fields, relational.FlatField{Col: f.Col, Rep: f.Rep, Value: f.Value})
			}
			recs = append(recs, fields)
		}
		db := relational.BuildFlat(tpl, recs, fmt.Sprintf("type%d", typeID))
		for _, tbl := range db.Tables {
			if err := tbl.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

// TestFollowResumeEquivalence is the subsystem's acceptance property at
// the repository level: write ~55% of a file, index it, append the
// rest, resume from the checkpoint — the stitched records and their CSV
// tables must be byte-identical to one-shot extraction of the full
// file, at every worker count.
func TestFollowResumeEquivalence(t *testing.T) {
	workerSets := []int{1, 2, 8}
	if raceEnabled {
		workerSets = []int{1, 8}
	}
	for name, data := range followInputs(t) {
		t.Run(name, func(t *testing.T) {
			tpls := followTemplates(t, data)
			oracle, err := pipeline.Run(bytes.NewReader(data), pipeline.Config{Templates: tpls})
			if err != nil {
				t.Fatal(err)
			}
			oracleCSV := tablesCSV(t, tpls, oracle.Records)

			// Cut mid-byte (not line-aligned) to force the resume
			// machinery to cope with a dangling partial line.
			cut := len(data) * 55 / 100
			for _, workers := range workerSets {
				path := filepath.Join(t.TempDir(), "grow.log")
				cfg := follow.Config{ShardSize: 1 << 10, Workers: workers}

				if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				res1, cp1, err := follow.Extract(context.Background(), path, "grow.log", tpls, "fp", nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				plan, err := follow.PlanFile(path, cp1)
				if err != nil {
					t.Fatal(err)
				}
				if plan.Action != follow.ActionResume {
					t.Fatalf("plan after append = %v (%s), want resume", plan.Action, plan.Reason)
				}
				res2, cp2, err := follow.Extract(context.Background(), path, "grow.log", tpls, "fp", cp1, cfg)
				if err != nil {
					t.Fatal(err)
				}

				// Stitch: run 1's output below the checkpoint is final;
				// run 2 re-emits everything from the checkpoint on.
				var stitched []core.RecordOut
				for typeID := range tpls {
					for _, r := range res1.Records {
						if r.TypeID == typeID && r.StartLine < cp1.Line {
							stitched = append(stitched, r)
						}
					}
					for _, r := range res2.Records {
						if r.TypeID == typeID {
							stitched = append(stitched, r)
						}
					}
				}
				// The oracle groups records by type too, so direct
				// comparison is exact — offsets, line numbers, values.
				if !reflect.DeepEqual(stitched, oracle.Records) {
					t.Fatalf("workers=%d: stitched records (%d) != one-shot (%d)",
						workers, len(stitched), len(oracle.Records))
				}
				if got := tablesCSV(t, tpls, stitched); !bytes.Equal(got, oracleCSV) {
					t.Fatalf("workers=%d: stitched CSV differs from one-shot CSV", workers)
				}

				var noise []int
				for _, n := range res1.NoiseLines {
					if n < cp1.Line {
						noise = append(noise, n)
					}
				}
				noise = append(noise, res2.NoiseLines...)
				if !reflect.DeepEqual(noise, oracle.NoiseLines) {
					t.Fatalf("workers=%d: stitched noise %v != one-shot %v", workers, noise, oracle.NoiseLines)
				}
				if cp2.TotalRecords != len(oracle.Records) {
					t.Fatalf("workers=%d: checkpoint total %d, want %d",
						workers, cp2.TotalRecords, len(oracle.Records))
				}
			}
		})
	}
}
