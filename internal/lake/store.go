package lake

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"datamaran/internal/core"
	"datamaran/internal/relational"
	"datamaran/internal/semtype"
	"datamaran/internal/template"
)

// The record store: per-format columnar segments written next to the
// registry by the crawl, so the query engine can scan the lake's
// extracted records without re-extracting anything.
//
// Layout under the store directory:
//
//	manifest.json          table directory (versioned, atomic, deterministic)
//	<hash>.t<k>.seg        one segment per (source file, record type)
//
// A table is one (format fingerprint, record type) pair; its rows are
// the denormalized records (one row per record, columns f0..fN, array
// repetitions joined with the array separator) of every claimed file,
// concatenated in sorted path order. Segments are block-structured and
// column-major inside each block, so an incremental crawl extends a
// grown file's segment by appending blocks — the follow layer's resume
// never rewrites bytes that are already on disk.
//
// Mutations go through a StoreTxn: the crawl stages new segment bytes
// in the store directory and nothing becomes visible until Commit
// renames them in and swaps the manifest — the same
// only-completed-crawls-publish discipline the serve daemon applies to
// the registry and checkpoint store.

// manifestVersion is the on-disk manifest format this package reads and
// writes.
const manifestVersion = 1

// segMagicV1 opens every v1 segment file: blocks of
// uvarint-length-prefixed cells, terminated by EOF, no statistics.
var segMagicV1 = []byte("dmseg1\n")

// segMagicV2 opens every v2 segment file. v2 blocks carry per-column
// byte lengths after the row count, so a scan skips columns it does not
// read without decoding a single cell, and the file ends with a stats
// footer (per-block per-column zone maps plus per-column distinct
// estimates) found via a fixed-size length trailer at the end of the
// file. New segments always write v2; v1 stays readable.
var segMagicV2 = []byte("dmseg2\n")

// segBlockRows caps the rows per segment block: the unit of buffering
// for both the writer and the streaming reader.
const segBlockRows = 1024

// segDistinctCap bounds the per-column distinct-value tracking while a
// segment is written: counts are exact up to the cap, and a column that
// reaches it reports the cap itself ("at least this many") — plenty of
// resolution for join-order selectivity, bounded memory for the writer.
const segDistinctCap = 4096

// TableInfo describes one queryable table of the record store.
type TableInfo struct {
	// Name is the table's query name: the format fingerprint, with a
	// "_<k>" suffix for record types beyond the first.
	Name string
	// Fingerprint is the owning format.
	Fingerprint string
	// Type is the record type index within the format.
	Type int
	// Columns are the column names (f0..fN, the denormalized schema).
	Columns []string
	// Kinds are the per-column scalar kinds (semtype classification,
	// folded across segments).
	Kinds []semtype.Kind
	// Rows is the total row count across segments.
	Rows int
	// Segments counts the contributing source files.
	Segments int
	// Distincts are per-column distinct-count estimates, the max across
	// segments (exact per segment up to segDistinctCap). 0 means
	// unknown — v1-era segments carry no stats.
	Distincts []int
}

// tableName renders the query name of a (fingerprint, type) pair.
func tableName(fp string, typeID int) string {
	if typeID == 0 {
		return fp
	}
	return fmt.Sprintf("%s_%d", fp, typeID)
}

// manSeg is one source file's contribution to a table.
type manSeg struct {
	// Path is the source file, slash-separated relative to the lake root.
	Path string `json:"path"`
	// File is the segment filename inside the store directory.
	File string `json:"file"`
	// Rev is the write revision behind File. Every rewrite or append
	// publishes a fresh filename (rev+1), never mutating bytes a live
	// manifest can reference — a scan that opened its segments keeps
	// reading exactly the snapshot it resolved, across any number of
	// commits.
	Rev int `json:"rev,omitempty"`
	// Rows is the segment's row count.
	Rows int `json:"rows"`
	// Provisional counts the trailing rows whose records were not yet
	// finalized at the last crawl — an incremental resume re-emits
	// them, so Append truncates them before appending.
	Provisional int `json:"provisional,omitempty"`
	// Kinds are the column kinds observed over this segment's values.
	Kinds []semtype.Kind `json:"kinds"`
	// Distincts are per-column distinct estimates observed when the
	// segment's rows were written (capped at segDistinctCap); nil for
	// segments written before the stats footer existed.
	Distincts []int `json:"distincts,omitempty"`
	// RowOff is this span's starting row inside File. Zero for a
	// dedicated per-path segment file; a compacted table shares one
	// file across paths, each path's rows a block-aligned span starting
	// at RowOff.
	RowOff int `json:"rowOff,omitempty"`
}

// manTable is one table of the manifest.
type manTable struct {
	Fingerprint string   `json:"fingerprint"`
	Type        int      `json:"type"`
	Columns     []string `json:"columns"`
	Segments    []manSeg `json:"segments"`
}

// manifest is the store directory's table index.
type manifest struct {
	Tables []manTable
}

type manifestJSON struct {
	Version int        `json:"version"`
	Tables  []manTable `json:"tables"`
}

// clone deep-copies the manifest so a transaction can mutate freely.
func (m *manifest) clone() *manifest {
	out := &manifest{Tables: make([]manTable, len(m.Tables))}
	for i, t := range m.Tables {
		ct := t
		ct.Columns = append([]string(nil), t.Columns...)
		ct.Segments = make([]manSeg, len(t.Segments))
		for j, s := range t.Segments {
			cs := s
			cs.Kinds = append([]semtype.Kind(nil), s.Kinds...)
			cs.Distincts = append([]int(nil), s.Distincts...)
			ct.Segments[j] = cs
		}
		out.Tables[i] = ct
	}
	return out
}

// normalize sorts tables by (fingerprint, type) and segments by path,
// and drops tables with no segments — the canonical (deterministic)
// form both Commit and MarshalJSON rely on.
func (m *manifest) normalize() {
	tables := m.Tables[:0]
	for _, t := range m.Tables {
		if len(t.Segments) > 0 {
			sort.Slice(t.Segments, func(a, b int) bool { return t.Segments[a].Path < t.Segments[b].Path })
			tables = append(tables, t)
		}
	}
	m.Tables = tables
	sort.Slice(m.Tables, func(a, b int) bool {
		if m.Tables[a].Fingerprint != m.Tables[b].Fingerprint {
			return m.Tables[a].Fingerprint < m.Tables[b].Fingerprint
		}
		return m.Tables[a].Type < m.Tables[b].Type
	})
}

// table finds the (fingerprint, type) table, or nil.
func (m *manifest) table(fp string, typeID int) *manTable {
	for i := range m.Tables {
		if m.Tables[i].Fingerprint == fp && m.Tables[i].Type == typeID {
			return &m.Tables[i]
		}
	}
	return nil
}

// SegmentStore is the on-disk record store handle. It is safe for
// concurrent use: scans snapshot the manifest, and commits swap it
// whole.
type SegmentStore struct {
	dir string
	mu  sync.RWMutex
	man *manifest
}

// OpenSegmentStore opens (creating if needed) the record store rooted
// at dir. A missing manifest yields an empty store, so first runs need
// no setup.
func OpenSegmentStore(dir string) (*SegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &manifest{}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, err
	default:
		var mj manifestJSON
		if err := json.Unmarshal(raw, &mj); err != nil {
			return nil, fmt.Errorf("lake: bad store manifest: %w", err)
		}
		if mj.Version != manifestVersion {
			return nil, fmt.Errorf("lake: unsupported store manifest version %d (supported: %d)", mj.Version, manifestVersion)
		}
		man.Tables = mj.Tables
		man.normalize()
	}
	return &SegmentStore{dir: dir, man: man}, nil
}

// Dir returns the store directory.
func (s *SegmentStore) Dir() string { return s.dir }

// snapshot returns the current manifest pointer (immutable once
// published).
func (s *SegmentStore) snapshot() *manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man
}

// info converts a manifest table into its public form, folding segment
// kinds into table kinds.
func info(t *manTable) TableInfo {
	ti := TableInfo{
		Name:        tableName(t.Fingerprint, t.Type),
		Fingerprint: t.Fingerprint,
		Type:        t.Type,
		Columns:     append([]string(nil), t.Columns...),
		Segments:    len(t.Segments),
	}
	for i, seg := range t.Segments {
		ti.Rows += seg.Rows
		if len(seg.Distincts) > 0 {
			if ti.Distincts == nil {
				ti.Distincts = make([]int, len(t.Columns))
			}
			for c := 0; c < len(ti.Distincts) && c < len(seg.Distincts); c++ {
				if seg.Distincts[c] > ti.Distincts[c] {
					ti.Distincts[c] = seg.Distincts[c]
				}
			}
		}
		if i == 0 {
			ti.Kinds = append([]semtype.Kind(nil), seg.Kinds...)
			continue
		}
		for c := range ti.Kinds {
			if c < len(seg.Kinds) {
				ti.Kinds[c] = semtype.MergeKinds(ti.Kinds[c], seg.Kinds[c])
			}
		}
	}
	if ti.Kinds == nil {
		ti.Kinds = make([]semtype.Kind, len(ti.Columns))
		for i := range ti.Kinds {
			ti.Kinds[i] = semtype.KindString
		}
	}
	return ti
}

// Tables lists the store's tables in manifest (fingerprint, type)
// order.
func (s *SegmentStore) Tables() []TableInfo {
	return tablesIn(s.snapshot())
}

func tablesIn(man *manifest) []TableInfo {
	out := make([]TableInfo, 0, len(man.Tables))
	for i := range man.Tables {
		out = append(out, info(&man.Tables[i]))
	}
	return out
}

// Resolve finds a table by query name: an exact name, or a unique
// fingerprint prefix (with optional "_<k>" type suffix) — the
// git-style shorthand the query surfaces accept.
func (s *SegmentStore) Resolve(name string) (TableInfo, error) {
	return resolveIn(s.snapshot(), name)
}

func resolveIn(man *manifest, name string) (TableInfo, error) {
	base, typeID := name, 0
	if i := strings.LastIndexByte(name, '_'); i > 0 {
		if _, err := fmt.Sscanf(name[i+1:], "%d", &typeID); err == nil {
			base = name[:i]
		} else {
			typeID = 0
		}
	}
	var hits []*manTable
	for i := range man.Tables {
		t := &man.Tables[i]
		if tableName(t.Fingerprint, t.Type) == name {
			hits = []*manTable{t}
			break
		}
		if t.Type == typeID && strings.HasPrefix(t.Fingerprint, base) {
			hits = append(hits, t)
		}
	}
	switch len(hits) {
	case 1:
		return info(hits[0]), nil
	case 0:
		return TableInfo{}, fmt.Errorf("lake: no table %q in store (have %s)", name, storeTableNames(man))
	default:
		return TableInfo{}, fmt.Errorf("lake: table prefix %q is ambiguous", name)
	}
}

func storeTableNames(man *manifest) string {
	if len(man.Tables) == 0 {
		return "none"
	}
	names := make([]string, 0, len(man.Tables))
	for _, t := range man.Tables {
		names = append(names, tableName(t.Fingerprint, t.Type))
	}
	return strings.Join(names, ", ")
}

// ScanPred is one pushed single-column predicate: column Op literal,
// with the query comparison set (= != < <= > >=). Numeric mirrors the
// executor's comparison rule: when true (the column's kind is numeric),
// an ordering comparison is numeric whenever both sides parse as
// floats and lexicographic otherwise — exactly internal/query's
// compareVals, so a pushed scan selects the same rows the executor
// would have selected above it.
type ScanPred struct {
	Col     int
	Op      string
	Lit     string
	Numeric bool
}

// ScanOptions narrows a scan. Columns lists the column indexes the
// caller will actually read (nil means all); Preds are conjunctive row
// filters evaluated inside the scan, against raw cell bytes, before
// any row materializes. Rows still come back at full table width —
// columns outside the pushed set are empty strings, never decoded.
type ScanOptions struct {
	Columns []int
	Preds   []ScanPred
}

// scanPred is the compiled per-scan form of a ScanPred: the literal's
// float value is parsed once, not per cell.
type scanPred struct {
	op       string
	lit      string
	numeric  bool
	litF     float64
	litIsNum bool
}

// scanPlan is the normalized form of ScanOptions for one table width.
type scanPlan struct {
	width   int
	need    []bool // materialize into output rows
	read    []bool // need, or carries a predicate
	preds   [][]scanPred
	hasPred bool
}

func newScanPlan(ncols int, opts ScanOptions) (*scanPlan, error) {
	p := &scanPlan{width: ncols, need: make([]bool, ncols), read: make([]bool, ncols)}
	if opts.Columns == nil {
		for c := range p.need {
			p.need[c] = true
		}
	} else {
		for _, c := range opts.Columns {
			if c < 0 || c >= ncols {
				return nil, fmt.Errorf("lake: scan column %d out of range (table has %d)", c, ncols)
			}
			p.need[c] = true
		}
	}
	copy(p.read, p.need)
	p.preds = make([][]scanPred, ncols)
	for _, sp := range opts.Preds {
		if sp.Col < 0 || sp.Col >= ncols {
			return nil, fmt.Errorf("lake: scan predicate column %d out of range (table has %d)", sp.Col, ncols)
		}
		switch sp.Op {
		case "=", "!=", "<", "<=", ">", ">=":
		default:
			return nil, fmt.Errorf("lake: unsupported scan predicate op %q", sp.Op)
		}
		cp := scanPred{op: sp.Op, lit: sp.Lit, numeric: sp.Numeric}
		if f, err := strconv.ParseFloat(sp.Lit, 64); err == nil {
			cp.litF, cp.litIsNum = f, true
		}
		p.preds[sp.Col] = append(p.preds[sp.Col], cp)
		p.read[sp.Col] = true
		p.hasPred = true
	}
	return p, nil
}

// SegmentScan streams one table's rows across its segments in sorted
// path order, applying any pushed projection and predicates inside the
// block decode. Memory is bounded by one block (segBlockRows rows)
// plus one open descriptor per distinct segment file: Scan opens every
// file eagerly, so the scan owns its bytes for its whole lifetime — a
// concurrent commit that unlinks a superseded segment file cannot pull
// data out from under a reader that already resolved it.
type SegmentScan struct {
	columns []string
	segs    []manSeg
	// files pins one descriptor per distinct segment file (a compacted
	// table stores many paths' spans in one shared file); lastUse maps
	// each file to the last span index reading it, so descriptors
	// release as soon as no later span needs them.
	files   map[string]*os.File
	lastUse map[string]int
	readers map[string]*segReader
	plan    *scanPlan

	segIdx   int
	cur      *segReader
	rowsLeft int
	block    [][]string
	blockAt  int

	sel    []bool
	outIdx []int

	// Scan-lifetime observability counters (single-goroutine; read via
	// BlockStats after — or during — the scan).
	blocksDecoded int
	blocksPruned  int
	rowsScanned   int
}

// BlockStats reports how many blocks this scan decoded versus skipped
// outright on their zone maps, plus the rows consumed (pruned blocks
// included — their rows are accounted, just never decoded). The
// counters survive Close, so callers can drain, close, then report.
func (sc *SegmentScan) BlockStats() (decoded, pruned, rows int) {
	return sc.blocksDecoded, sc.blocksPruned, sc.rowsScanned
}

// segReader is the streaming state over one segment file. Several
// spans of a compacted table share a file, so the reader persists
// across the spans that reference it, tracking its absolute row
// position and block index (the footer's zone maps are block-indexed).
type segReader struct {
	file     string
	r        *bufio.Reader
	version  int
	ncols    int
	rowPos   int
	blockIdx int
	foot     *segFooter // v2 + pushed predicates only
	colBytes []uint64   // scratch: v2 block header
	bufs     [][]byte   // scratch: raw per-column cell bytes
}

// scanOpenRetries bounds how many times Scan re-resolves a table whose
// segment files vanished between snapshotting the manifest and opening
// them (a commit won the race); each retry sees a strictly newer
// manifest, so in practice one suffices.
const scanOpenRetries = 8

// Scan opens a streaming scan of the named table (exact name or unique
// fingerprint prefix). All segment files open up front: once Scan
// returns, the rows it will yield are pinned — commits publish new
// revisions under new filenames and only unlink old ones, and an open
// descriptor keeps its bytes past the unlink. If a commit lands in the
// narrow window between reading the manifest and opening the files,
// Scan retries against the fresh manifest.
func (s *SegmentStore) Scan(name string) (*SegmentScan, error) {
	return s.ScanWith(name, ScanOptions{})
}

// ScanWith opens a scan with pushed projection and predicates; see
// Scan for the pinning contract.
func (s *SegmentStore) ScanWith(name string, opts ScanOptions) (*SegmentScan, error) {
	var lastErr error
	for attempt := 0; attempt < scanOpenRetries; attempt++ {
		sc, err := openScan(s.dir, s.snapshot(), name, opts)
		if err != nil && errors.Is(err, os.ErrNotExist) {
			lastErr = err
			continue
		}
		return sc, err
	}
	return nil, fmt.Errorf("lake: table %q: segments kept vanishing across %d manifest snapshots: %w", name, scanOpenRetries, lastErr)
}

// openScan resolves name in man and opens every distinct segment file.
// An os.ErrNotExist from a vanished segment propagates to the caller,
// which owns the retry policy (fresh snapshot for the store, stale-view
// error for a pinned view).
func openScan(dir string, man *manifest, name string, opts ScanOptions) (*SegmentScan, error) {
	ti, err := resolveIn(man, name)
	if err != nil {
		return nil, err
	}
	t := man.table(ti.Fingerprint, ti.Type)
	if t == nil {
		return nil, fmt.Errorf("lake: no table %q in store", name)
	}
	plan, err := newScanPlan(len(t.Columns), opts)
	if err != nil {
		return nil, err
	}
	sc := &SegmentScan{
		columns: append([]string(nil), t.Columns...),
		segs:    append([]manSeg(nil), t.Segments...),
		files:   map[string]*os.File{},
		lastUse: map[string]int{},
		readers: map[string]*segReader{},
		plan:    plan,
	}
	for i, seg := range sc.segs {
		sc.lastUse[seg.File] = i
		if _, ok := sc.files[seg.File]; ok {
			continue
		}
		f, err := os.Open(filepath.Join(dir, seg.File))
		if err != nil {
			sc.Close()
			return nil, err
		}
		sc.files[seg.File] = f
	}
	return sc, nil
}

// ErrStaleView marks a StoreView whose manifest snapshot was superseded
// before all of its segments could be opened — the caller should take a
// fresh view and retry.
var ErrStaleView = errors.New("lake: store view superseded before its segments opened")

// StoreView is a pinned point-in-time view of the store: Tables,
// Resolve and Scan all answer from the one manifest snapshot taken by
// View, so a multi-table consumer (a relational query joining tables)
// sees a single consistent store state even while commits land. Each
// successful Scan pins its segment bytes via open descriptors; the only
// race left is a commit deleting a superseded segment between View and
// Scan, which surfaces as ErrStaleView (retry with a fresh view).
type StoreView struct {
	dir string
	man *manifest
}

// View pins the store's current state.
func (s *SegmentStore) View() *StoreView {
	return &StoreView{dir: s.dir, man: s.snapshot()}
}

// Tables lists the view's tables.
func (v *StoreView) Tables() []TableInfo { return tablesIn(v.man) }

// Resolve finds a table in the view by query name.
func (v *StoreView) Resolve(name string) (TableInfo, error) { return resolveIn(v.man, name) }

// Scan streams one of the view's tables. A vanished segment yields
// ErrStaleView.
func (v *StoreView) Scan(name string) (*SegmentScan, error) {
	return v.ScanWith(name, ScanOptions{})
}

// ScanWith streams one of the view's tables with pushed projection and
// predicates. A vanished segment yields ErrStaleView.
func (v *StoreView) ScanWith(name string, opts ScanOptions) (*SegmentScan, error) {
	sc, err := openScan(v.dir, v.man, name, opts)
	if err != nil && errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %v", ErrStaleView, err)
	}
	return sc, err
}

// Columns returns the scan's column names.
func (sc *SegmentScan) Columns() []string { return sc.columns }

// Next returns the next row passing the pushed predicates, or io.EOF
// after the last. Rows are full table width; columns outside the
// pushed set are empty strings. The returned slice is owned by the
// caller (rows are materialized per block).
func (sc *SegmentScan) Next() ([]string, error) {
	for {
		if sc.blockAt < len(sc.block) {
			row := sc.block[sc.blockAt]
			sc.blockAt++
			return row, nil
		}
		if sc.rowsLeft == 0 {
			// The current span is done: release its file unless a later
			// span continues in it, then position for the next span.
			if sc.cur != nil {
				if sc.lastUse[sc.cur.file] == sc.segIdx-1 {
					sc.files[sc.cur.file].Close()
					delete(sc.files, sc.cur.file)
					delete(sc.readers, sc.cur.file)
				}
				sc.cur = nil
			}
			if sc.segIdx >= len(sc.segs) {
				return nil, io.EOF
			}
			seg := sc.segs[sc.segIdx]
			sc.segIdx++
			sr, err := sc.reader(seg.File)
			if err != nil {
				return nil, fmt.Errorf("lake: segment %s: %w", seg.File, err)
			}
			sc.cur = sr
			if err := sr.skipTo(seg.RowOff); err != nil {
				return nil, fmt.Errorf("lake: segment %s: %w", seg.File, err)
			}
			sc.rowsLeft = seg.Rows
			continue
		}
		rows, consumed, err := sc.readBlock()
		if err != nil {
			return nil, fmt.Errorf("lake: segment %s: %w", sc.cur.file, err)
		}
		sc.rowsLeft -= consumed
		sc.block, sc.blockAt = rows, 0
	}
}

// reader returns (creating if needed) the streaming reader over one
// segment file, validating the magic and, when predicates are pushed
// against a v2 segment, loading the zone-map footer.
func (sc *SegmentScan) reader(file string) (*segReader, error) {
	if sr, ok := sc.readers[file]; ok {
		return sr, nil
	}
	f := sc.files[file]
	sr := &segReader{file: file, r: bufio.NewReader(f), ncols: len(sc.columns)}
	magic := make([]byte, len(segMagicV1))
	if _, err := io.ReadFull(sr.r, magic); err != nil {
		return nil, errors.New("bad magic")
	}
	switch {
	case bytes.Equal(magic, segMagicV1):
		sr.version = 1
	case bytes.Equal(magic, segMagicV2):
		sr.version = 2
	default:
		return nil, errors.New("bad magic")
	}
	if sc.plan.hasPred && sr.version >= 2 {
		foot, err := readFooter(f)
		if err != nil {
			return nil, fmt.Errorf("stats footer: %w", err)
		}
		sr.foot = foot
	}
	sr.bufs = make([][]byte, sr.ncols)
	sc.readers[file] = sr
	return sr, nil
}

// skipTo advances the reader to absolute row rowOff — the start of the
// next span — by skipping whole blocks. Spans are block-aligned (the
// compactor flushes at every path boundary), so landing inside a block
// means the file and manifest disagree.
func (sr *segReader) skipTo(rowOff int) error {
	for sr.rowPos < rowOff {
		nrows, err := sr.readBlockRows()
		if err != nil {
			return err
		}
		if nrows == 0 {
			return fmt.Errorf("ends at row %d, span starts at %d", sr.rowPos, rowOff)
		}
		if err := sr.skipBlockData(nrows); err != nil {
			return err
		}
		sr.rowPos += nrows
		sr.blockIdx++
	}
	if sr.rowPos != rowOff {
		return fmt.Errorf("span at row %d is not block-aligned (reader at row %d)", rowOff, sr.rowPos)
	}
	return nil
}

// readBlockRows reads a block's row-count header; 0 is the v2
// end-of-blocks sentinel (the stats footer follows).
func (sr *segReader) readBlockRows() (int, error) {
	nrows, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return 0, unexpectedEOF(err)
	}
	if nrows == 0 && sr.version < 2 {
		return 0, errors.New("bad block row count 0")
	}
	if nrows > segBlockRows {
		return 0, fmt.Errorf("bad block row count %d", nrows)
	}
	return int(nrows), nil
}

// readColBytes reads a v2 block's per-column byte-length header.
func (sr *segReader) readColBytes() error {
	if sr.colBytes == nil {
		sr.colBytes = make([]uint64, sr.ncols)
	}
	for c := 0; c < sr.ncols; c++ {
		n, err := binary.ReadUvarint(sr.r)
		if err != nil {
			return unexpectedEOF(err)
		}
		if n > 1<<31 {
			return fmt.Errorf("bad column byte length %d", n)
		}
		sr.colBytes[c] = n
	}
	return nil
}

// skipBlockData discards a block's payload (the row-count header is
// already consumed): byte-counted for v2, cell walk for v1.
func (sr *segReader) skipBlockData(nrows int) error {
	if sr.version >= 2 {
		if err := sr.readColBytes(); err != nil {
			return err
		}
		total := 0
		for _, n := range sr.colBytes {
			total += int(n)
		}
		_, err := sr.r.Discard(total)
		return unexpectedEOF(err)
	}
	for c := 0; c < sr.ncols; c++ {
		if err := sr.skipCells(nrows); err != nil {
			return err
		}
	}
	return nil
}

// skipCells discards nrows length-prefixed cells.
func (sr *segReader) skipCells(nrows int) error {
	for i := 0; i < nrows; i++ {
		n, err := binary.ReadUvarint(sr.r)
		if err != nil {
			return unexpectedEOF(err)
		}
		if n > 1<<30 {
			return fmt.Errorf("bad cell length %d", n)
		}
		if _, err := sr.r.Discard(int(n)); err != nil {
			return unexpectedEOF(err)
		}
	}
	return nil
}

// readColumn reads one column's raw cell bytes (uvarint-length-prefixed
// values) into the column's scratch buffer. v2 knows the byte count up
// front; v1 re-encodes cell by cell into the same shape, so the
// filter/materialize walkers see one format.
func (sr *segReader) readColumn(c, nrows int) ([]byte, error) {
	buf := sr.bufs[c][:0]
	if sr.version >= 2 {
		n := int(sr.colBytes[c])
		if cap(buf) < n {
			buf = make([]byte, 0, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(sr.r, buf); err != nil {
			return nil, unexpectedEOF(err)
		}
		sr.bufs[c] = buf
		return buf, nil
	}
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < nrows; i++ {
		n, err := binary.ReadUvarint(sr.r)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if n > 1<<30 {
			return nil, fmt.Errorf("bad cell length %d", n)
		}
		w := binary.PutUvarint(tmp[:], n)
		buf = append(buf, tmp[:w]...)
		start := len(buf)
		if need := start + int(n); need > cap(buf) {
			grown := make([]byte, start, 2*cap(buf)+need)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:start+int(n)]
		if _, err := io.ReadFull(sr.r, buf[start:]); err != nil {
			return nil, unexpectedEOF(err)
		}
	}
	sr.bufs[c] = buf
	return buf, nil
}

// readBlock reads the current span's next block, applying the pushed
// predicates and projection: a block whose zone map cannot match skips
// on its byte lengths alone, predicate columns decode first and an
// empty selection discards the rest of the block undecoded, and only
// surviving rows materialize (at full table width; unrequested columns
// stay ""). Returns the selected rows plus the input rows consumed.
func (sc *SegmentScan) readBlock() ([][]string, int, error) {
	sr, plan := sc.cur, sc.plan
	nrows, err := sr.readBlockRows()
	if err != nil {
		return nil, 0, err
	}
	if nrows == 0 || nrows > sc.rowsLeft {
		return nil, 0, fmt.Errorf("block of %d rows overruns span (%d rows expected)", nrows, sc.rowsLeft)
	}
	blockIdx := sr.blockIdx
	sr.blockIdx++
	sr.rowPos += nrows
	if sr.version >= 2 {
		if err := sr.readColBytes(); err != nil {
			return nil, 0, err
		}
	}
	sc.rowsScanned += nrows
	if sr.foot != nil && blockIdx < len(sr.foot.blocks) && zonePruned(&sr.foot.blocks[blockIdx], plan) {
		sc.blocksPruned++
		total := 0
		for _, n := range sr.colBytes {
			total += int(n)
		}
		if _, err := sr.r.Discard(total); err != nil {
			return nil, 0, unexpectedEOF(err)
		}
		return nil, nrows, nil
	}
	sc.blocksDecoded++
	if cap(sc.sel) < nrows {
		sc.sel = make([]bool, nrows)
		sc.outIdx = make([]int, nrows)
	}
	sel := sc.sel[:nrows]
	for i := range sel {
		sel[i] = true
	}
	selCount := nrows
	for c := 0; c < sr.ncols; c++ {
		if !plan.read[c] || selCount == 0 {
			if sr.version >= 2 {
				if _, err := sr.r.Discard(int(sr.colBytes[c])); err != nil {
					return nil, 0, unexpectedEOF(err)
				}
			} else if err := sr.skipCells(nrows); err != nil {
				return nil, 0, err
			}
			continue
		}
		buf, err := sr.readColumn(c, nrows)
		if err != nil {
			return nil, 0, err
		}
		if preds := plan.preds[c]; len(preds) > 0 {
			selCount, err = filterColumn(buf, nrows, preds, sel, selCount)
			if err != nil {
				return nil, 0, err
			}
		}
	}
	if selCount == 0 {
		return nil, nrows, nil
	}
	rows := make([][]string, selCount)
	cells := make([]string, selCount*plan.width)
	j := 0
	for i := 0; i < nrows; i++ {
		if !sel[i] {
			sc.outIdx[i] = -1
			continue
		}
		sc.outIdx[i] = j
		rows[j] = cells[j*plan.width : (j+1)*plan.width : (j+1)*plan.width]
		j++
	}
	for c := 0; c < plan.width; c++ {
		if !plan.need[c] {
			continue
		}
		err := eachCell(sr.bufs[c], nrows, func(i int, cell []byte) {
			if sel[i] {
				rows[sc.outIdx[i]][c] = string(cell)
			}
		})
		if err != nil {
			return nil, 0, err
		}
	}
	return rows, nrows, nil
}

// eachCell walks a raw column buffer (uvarint-length-prefixed cells),
// calling fn with each cell's bytes.
func eachCell(buf []byte, nrows int, fn func(i int, cell []byte)) error {
	off := 0
	for i := 0; i < nrows; i++ {
		n, w := binary.Uvarint(buf[off:])
		if w <= 0 || off+w+int(n) > len(buf) {
			return errors.New("corrupt column cells")
		}
		fn(i, buf[off+w:off+w+int(n)])
		off += w + int(n)
	}
	if off != len(buf) {
		return fmt.Errorf("column has %d trailing bytes", len(buf)-off)
	}
	return nil
}

// filterColumn evaluates one column's predicates over its raw cells,
// clearing selection bits for rows that fail.
func filterColumn(buf []byte, nrows int, preds []scanPred, sel []bool, selCount int) (int, error) {
	err := eachCell(buf, nrows, func(i int, cell []byte) {
		if !sel[i] {
			return
		}
		for j := range preds {
			if !predMatch(cell, &preds[j]) {
				sel[i] = false
				selCount--
				return
			}
		}
	})
	return selCount, err
}

// predMatch evaluates one predicate against a raw cell, mirroring the
// executor's compareVals: equality is exact bytes; ordering is numeric
// only when the column kind is numeric and both sides parse as floats,
// lexicographic otherwise.
func predMatch(cell []byte, p *scanPred) bool {
	switch p.op {
	case "=":
		return string(cell) == p.lit
	case "!=":
		return string(cell) != p.lit
	}
	if p.numeric && p.litIsNum {
		if f, err := strconv.ParseFloat(string(cell), 64); err == nil {
			c := 0
			switch {
			case f < p.litF:
				c = -1
			case f > p.litF:
				c = 1
			}
			return cmpHolds(c, p.op)
		}
	}
	return cmpHolds(compareBytesStr(cell, p.lit), p.op)
}

func cmpHolds(c int, op string) bool {
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// compareBytesStr is strings.Compare without materializing the cell.
func compareBytesStr(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// Close releases the scan's open segment files.
func (sc *SegmentScan) Close() error {
	var first error
	for name, f := range sc.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(sc.files, name)
	}
	sc.readers = map[string]*segReader{}
	sc.cur = nil
	return first
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// colZone is one column's zone map over one block: lexicographic
// min/max always, numeric min/max only when every cell in the block
// parses as a (non-NaN) float — a mixed block compares some rows
// lexicographically, which numeric bounds cannot speak for.
type colZone struct {
	allNumeric     bool
	lexMin, lexMax string
	numMin, numMax float64
}

// footBlock is one block's footer entry: its row count plus one zone
// per column.
type footBlock struct {
	rows int
	cols []colZone
}

// segFooter is a v2 segment's decoded stats footer.
type segFooter struct {
	blocks    []footBlock
	distincts []int
}

// zonePruned reports whether a block's zone maps prove that no row can
// pass the pushed predicates.
func zonePruned(fb *footBlock, plan *scanPlan) bool {
	for c, preds := range plan.preds {
		if len(preds) == 0 || c >= len(fb.cols) {
			continue
		}
		for j := range preds {
			if zoneExcludes(&fb.cols[c], &preds[j]) {
				return true
			}
		}
	}
	return false
}

// zoneExcludes mirrors predMatch block-wide: equality prunes on the
// lexicographic bounds; an ordering predicate on a numeric column
// prunes numerically only when the whole block parses (allNumeric),
// because a mixed block falls back to per-row lexicographic comparison
// that min/max in either order cannot bound; every other ordering
// comparison is lexicographic for every row, so the lex bounds decide.
func zoneExcludes(z *colZone, p *scanPred) bool {
	switch p.op {
	case "=":
		return p.lit < z.lexMin || p.lit > z.lexMax
	case "!=":
		return z.lexMin == z.lexMax && z.lexMin == p.lit
	}
	if p.numeric && p.litIsNum {
		if !z.allNumeric {
			return false
		}
		switch p.op {
		case "<":
			return z.numMin >= p.litF
		case "<=":
			return z.numMin > p.litF
		case ">":
			return z.numMax <= p.litF
		case ">=":
			return z.numMax < p.litF
		}
		return false
	}
	switch p.op {
	case "<":
		return z.lexMin >= p.lit
	case "<=":
		return z.lexMin > p.lit
	case ">":
		return z.lexMax <= p.lit
	case ">=":
		return z.lexMax < p.lit
	}
	return false
}

// encodeFooter renders the stats footer: uvarint block and column
// counts, then per block its row count and per column a flags byte,
// length-prefixed lexicographic min/max (full values, raw bytes — the
// footer is binary precisely so that non-UTF-8 cells round-trip), and,
// for allNumeric columns, little-endian float64 numeric bounds; then
// the per-column distinct estimates.
func encodeFooter(blocks []footBlock, distincts []int) []byte {
	var b []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		b = append(b, tmp[:n]...)
	}
	putS := func(s string) {
		putU(uint64(len(s)))
		b = append(b, s...)
	}
	putF := func(f float64) {
		var fb [8]byte
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(f))
		b = append(b, fb[:]...)
	}
	putU(uint64(len(blocks)))
	putU(uint64(len(distincts)))
	for _, fb := range blocks {
		putU(uint64(fb.rows))
		for _, z := range fb.cols {
			var flags byte
			if z.allNumeric {
				flags |= 1
			}
			b = append(b, flags)
			putS(z.lexMin)
			putS(z.lexMax)
			if z.allNumeric {
				putF(z.numMin)
				putF(z.numMax)
			}
		}
	}
	for _, d := range distincts {
		putU(uint64(d))
	}
	return b
}

// readFooter locates and decodes a v2 segment's stats footer via the
// 8-byte length trailer at the end of the file; ReadAt leaves the
// streaming reader's position untouched.
func readFooter(f *os.File) (*segFooter, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagicV2))+9 {
		return nil, errors.New("file too short")
	}
	var tr [8]byte
	if _, err := f.ReadAt(tr[:], size-8); err != nil {
		return nil, err
	}
	flen := int64(binary.LittleEndian.Uint64(tr[:]))
	if flen < 0 || flen > size-8-int64(len(segMagicV2)) {
		return nil, fmt.Errorf("bad footer length %d", flen)
	}
	blob := make([]byte, flen)
	if _, err := f.ReadAt(blob, size-8-flen); err != nil {
		return nil, err
	}
	return decodeFooter(blob)
}

func decodeFooter(blob []byte) (*segFooter, error) {
	r := bytes.NewReader(blob)
	readS := func() (string, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return "", unexpectedEOF(err)
		}
		if int64(n) > int64(r.Len()) {
			return "", fmt.Errorf("bad footer string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", unexpectedEOF(err)
		}
		return string(buf), nil
	}
	readF := func() (float64, error) {
		var fb [8]byte
		if _, err := io.ReadFull(r, fb[:]); err != nil {
			return 0, unexpectedEOF(err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(fb[:])), nil
	}
	nblocks, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	ncols, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if nblocks > 1<<24 || ncols > 1<<20 {
		return nil, fmt.Errorf("implausible footer shape (%d blocks, %d columns)", nblocks, ncols)
	}
	foot := &segFooter{blocks: make([]footBlock, nblocks)}
	for bi := range foot.blocks {
		rows, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		fb := footBlock{rows: int(rows), cols: make([]colZone, ncols)}
		for c := range fb.cols {
			flags, err := r.ReadByte()
			if err != nil {
				return nil, unexpectedEOF(err)
			}
			z := colZone{allNumeric: flags&1 != 0}
			if z.lexMin, err = readS(); err != nil {
				return nil, err
			}
			if z.lexMax, err = readS(); err != nil {
				return nil, err
			}
			if z.allNumeric {
				if z.numMin, err = readF(); err != nil {
					return nil, err
				}
				if z.numMax, err = readF(); err != nil {
					return nil, err
				}
			}
			fb.cols[c] = z
		}
		foot.blocks[bi] = fb
	}
	foot.distincts = make([]int, ncols)
	for c := range foot.distincts {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		foot.distincts[c] = int(d)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("footer has %d trailing bytes", r.Len())
	}
	return foot, nil
}

// segWriter streams denormalized rows into v2 column-major blocks,
// folding semtype classification over each block as it flushes — the
// derived kinds depend only on the row sequence, not on how callers
// batch their writes, so an incremental append that replays the kept
// rows re-derives exactly the kinds a from-scratch write would. It
// also collects the per-block zone maps and per-column distinct
// estimates that finish writes into the stats footer.
type segWriter struct {
	w        *bufio.Writer
	ncols    int
	cols     [][]string
	colBuf   [][]byte
	kinds    []semtype.Kind
	rows     int
	blocks   []footBlock
	distinct []map[string]struct{}
}

func newSegWriter(w *bufio.Writer, ncols int) *segWriter {
	return &segWriter{
		w:        w,
		ncols:    ncols,
		cols:     make([][]string, ncols),
		colBuf:   make([][]byte, ncols),
		distinct: make([]map[string]struct{}, ncols),
	}
}

func (sw *segWriter) putUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := sw.w.Write(buf[:n])
	return err
}

// add buffers one row, flushing a block when full.
func (sw *segWriter) add(row []string) error {
	for c := 0; c < sw.ncols; c++ {
		sw.cols[c] = append(sw.cols[c], row[c])
	}
	sw.rows++
	if sw.ncols > 0 && len(sw.cols[0]) >= segBlockRows {
		return sw.flushBlock()
	}
	return nil
}

// blockZones computes the zone maps of one buffered block.
func blockZones(cols [][]string) footBlock {
	fb := footBlock{rows: len(cols[0]), cols: make([]colZone, len(cols))}
	for c, vals := range cols {
		z := colZone{allNumeric: true}
		for i, v := range vals {
			if i == 0 || v < z.lexMin {
				z.lexMin = v
			}
			if i == 0 || v > z.lexMax {
				z.lexMax = v
			}
			if !z.allNumeric {
				continue
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) {
				z.allNumeric = false
				continue
			}
			if i == 0 || f < z.numMin {
				z.numMin = f
			}
			if i == 0 || f > z.numMax {
				z.numMax = f
			}
		}
		fb.cols[c] = z
	}
	return fb
}

func (sw *segWriter) flushBlock() error {
	n := 0
	if sw.ncols > 0 {
		n = len(sw.cols[0])
	}
	if n == 0 {
		return nil
	}
	sw.kinds = foldKinds(sw.kinds, sw.cols)
	sw.blocks = append(sw.blocks, blockZones(sw.cols))
	for c, vals := range sw.cols {
		m := sw.distinct[c]
		if m == nil {
			m = make(map[string]struct{})
			sw.distinct[c] = m
		}
		for _, v := range vals {
			if len(m) >= segDistinctCap {
				break
			}
			m[v] = struct{}{}
		}
	}
	if err := sw.putUvarint(uint64(n)); err != nil {
		return err
	}
	// Encode each column's cells up front so the block header can carry
	// their byte lengths — what lets a reader skip a column unread.
	var tmp [binary.MaxVarintLen64]byte
	for c := 0; c < sw.ncols; c++ {
		buf := sw.colBuf[c][:0]
		for _, v := range sw.cols[c] {
			w := binary.PutUvarint(tmp[:], uint64(len(v)))
			buf = append(buf, tmp[:w]...)
			buf = append(buf, v...)
		}
		sw.colBuf[c] = buf
		if err := sw.putUvarint(uint64(len(buf))); err != nil {
			return err
		}
	}
	for c := 0; c < sw.ncols; c++ {
		if _, err := sw.w.Write(sw.colBuf[c]); err != nil {
			return err
		}
		sw.cols[c] = sw.cols[c][:0]
	}
	return nil
}

// distincts snapshots the per-column distinct estimates.
func (sw *segWriter) distincts() []int {
	out := make([]int, sw.ncols)
	for c, m := range sw.distinct {
		out[c] = len(m)
	}
	return out
}

// finish flushes the residual block, writes the end-of-blocks sentinel
// plus the stats footer and its length trailer, and returns the folded
// kinds, the total row count and the distinct estimates.
func (sw *segWriter) finish() ([]semtype.Kind, int, []int, error) {
	if err := sw.flushBlock(); err != nil {
		return nil, 0, nil, err
	}
	dist := sw.distincts()
	if err := sw.putUvarint(0); err != nil {
		return nil, 0, nil, err
	}
	foot := encodeFooter(sw.blocks, dist)
	if _, err := sw.w.Write(foot); err != nil {
		return nil, 0, nil, err
	}
	var tr [8]byte
	binary.LittleEndian.PutUint64(tr[:], uint64(len(foot)))
	if _, err := sw.w.Write(tr[:]); err != nil {
		return nil, 0, nil, err
	}
	if err := sw.w.Flush(); err != nil {
		return nil, 0, nil, err
	}
	kinds := sw.kinds
	if kinds == nil {
		kinds = make([]semtype.Kind, sw.ncols)
		for i := range kinds {
			kinds[i] = semtype.KindString
		}
	}
	return kinds, sw.rows, dist, nil
}

// addRecords feeds recs' rows of one record type through the writer.
func addRecords(sw *segWriter, st *template.Node, recs []core.RecordOut, typeID int) error {
	seps := relational.ArraySeps(st)
	var fields []relational.FlatField
	var row []string
	for _, rec := range recs {
		if rec.TypeID != typeID {
			continue
		}
		fields = fields[:0]
		for _, f := range rec.Fields {
			fields = append(fields, relational.FlatField{Col: f.Col, Rep: f.Rep, Value: f.Value})
		}
		row = relational.DenormRow(st, seps, fields, row)
		if err := sw.add(row); err != nil {
			return err
		}
	}
	return nil
}

// provisionalByType counts, per record type, how many of the trailing
// k records each type contributes — the not-yet-finalized rows the
// next resume will re-emit, which Append truncates before appending.
func provisionalByType(recs []core.RecordOut, ntypes, k int) []int {
	counts := make([]int, ntypes)
	for i := len(recs) - k; i < len(recs); i++ {
		if i >= 0 && recs[i].TypeID >= 0 && recs[i].TypeID < ntypes {
			counts[recs[i].TypeID]++
		}
	}
	return counts
}

// foldKinds classifies the buffered column values and merges them into
// the running kinds.
func foldKinds(kinds []semtype.Kind, colVals [][]string) []semtype.Kind {
	if len(colVals) == 0 || len(colVals[0]) == 0 {
		return kinds
	}
	fresh := make([]semtype.Kind, len(colVals))
	for c, vals := range colVals {
		fresh[c] = semtype.ClassifyValues(vals)
	}
	if kinds == nil {
		return fresh
	}
	for c := range kinds {
		kinds[c] = semtype.MergeKinds(kinds[c], fresh[c])
	}
	return kinds
}

// segFileName derives the segment filename of one (source file, type,
// revision) triple — a hash, so arbitrary lake paths map onto flat
// store names. Revision 0 (the fresh-crawl case) keeps the historical
// unsuffixed name; later revisions are distinct files, so concurrent
// readers pinned to an older manifest never observe mutated bytes.
func segFileName(relPath string, typeID, rev int) string {
	sum := sha256.Sum256([]byte(relPath))
	if rev == 0 {
		return fmt.Sprintf("%x.t%d.seg", sum[:12], typeID)
	}
	return fmt.Sprintf("%x.t%d.r%d.seg", sum[:12], typeID, rev)
}

// StoreTxn stages one crawl's record-store mutations. Methods are safe
// to call from the crawl's worker pool; nothing is visible to readers
// (or survives a crash) until Commit. Commit rebases: the transaction
// is authoritative only for the source files it touched, so concurrent
// transactions over disjoint file sets (the serve daemon's per-format
// scoped reindexes) compose instead of clobbering each other.
type StoreTxn struct {
	s   *SegmentStore
	mu  sync.Mutex
	man *manifest
	// staged maps final segment filenames to their staged temp paths;
	// doomed lists segment files to delete at commit; touched records
	// the source paths this transaction rewrote, appended or dropped —
	// the paths its Commit is authoritative for.
	staged  map[string]string
	doomed  map[string]bool
	touched map[string]bool
	done    bool
}

// Begin opens a transaction over the store's current state.
func (s *SegmentStore) Begin() *StoreTxn {
	return &StoreTxn{
		s:       s,
		man:     s.snapshot().clone(),
		staged:  map[string]string{},
		doomed:  map[string]bool{},
		touched: map[string]bool{},
	}
}

// Rewrite replaces relPath's contribution with recs: one staged segment
// per record type of the format (empty segments included, so later
// appends and truncations have a base). provisional is the count of
// trailing records not yet finalized by the extraction's checkpoint (0
// outside incremental crawls).
func (t *StoreTxn) Rewrite(relPath, fp string, templates []*template.Node, recs []core.RecordOut, provisional int) error {
	t.mu.Lock()
	rev := t.nextRevLocked(relPath)
	t.dropLocked(relPath)
	t.mu.Unlock()
	prov := provisionalByType(recs, len(templates), provisional)
	for typeID, st := range templates {
		name := segFileName(relPath, typeID, rev)
		tmp, err := os.CreateTemp(t.s.dir, ".stage-*")
		if err != nil {
			return err
		}
		var kinds []semtype.Kind
		var dist []int
		rows := 0
		if _, err = tmp.Write(segMagicV2); err == nil {
			sw := newSegWriter(bufio.NewWriter(tmp), st.NumFields())
			if err = addRecords(sw, st, recs, typeID); err == nil {
				kinds, rows, dist, err = sw.finish()
			}
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Chmod(tmp.Name(), 0o644)
		}
		if err != nil {
			os.Remove(tmp.Name())
			return err
		}
		t.mu.Lock()
		t.staged[name] = tmp.Name()
		delete(t.doomed, name)
		tbl := t.man.table(fp, typeID)
		if tbl == nil {
			t.man.Tables = append(t.man.Tables, manTable{
				Fingerprint: fp,
				Type:        typeID,
				Columns:     columnNames(st.NumFields()),
			})
			tbl = &t.man.Tables[len(t.man.Tables)-1]
		}
		tbl.Segments = append(tbl.Segments, manSeg{
			Path: relPath, File: name, Rev: rev, Rows: rows, Provisional: prov[typeID], Kinds: kinds, Distincts: dist,
		})
		t.touched[relPath] = true
		t.mu.Unlock()
	}
	return nil
}

// nextRevLocked picks the write revision for relPath's next segment
// files: one past the highest revision any table holds for the path (0
// for a first write). Revisions are monotonic within the transaction,
// so repeated rewrites of one path never reuse a published filename.
func (t *StoreTxn) nextRevLocked(relPath string) int {
	rev := 0
	for i := range t.man.Tables {
		for _, seg := range t.man.Tables[i].Segments {
			if seg.Path == relPath && seg.Rev >= rev {
				rev = seg.Rev + 1
			}
		}
	}
	return rev
}

// Append extends relPath's existing segments with recs — the resume
// path of the incremental crawl, which extracts [checkpoint, EOF): the
// previously-provisional tail rows are truncated (the resume re-emits
// them) and the new rows appended, replaying the kept rows so the
// result is byte-identical to a from-scratch rewrite of the whole
// file. provisional is the trailing-record count not finalized by the
// new checkpoint. The crawl only plans a resume when Covers is true,
// so a missing base segment is an invariant violation, not a fallback.
func (t *StoreTxn) Append(relPath, fp string, templates []*template.Node, recs []core.RecordOut, provisional int) error {
	prov := provisionalByType(recs, len(templates), provisional)
	t.mu.Lock()
	rev := t.nextRevLocked(relPath)
	t.mu.Unlock()
	for typeID, st := range templates {
		name := segFileName(relPath, typeID, rev)
		t.mu.Lock()
		seg := segOf(t.man.table(fp, typeID), relPath)
		if seg == nil {
			t.mu.Unlock()
			return fmt.Errorf("lake: append to %s type %d: no base segment for %s", fp, typeID, relPath)
		}
		keep := seg.Rows - seg.Provisional
		skip := seg.RowOff
		oldName := seg.File
		src, isStaged := t.staged[oldName]
		t.mu.Unlock()
		if !isStaged {
			src = filepath.Join(t.s.dir, oldName)
		}
		tmp, err := os.CreateTemp(t.s.dir, ".stage-*")
		if err != nil {
			return err
		}
		var kinds []semtype.Kind
		var dist []int
		rows := 0
		err = func() error {
			in, err := os.Open(src)
			if err != nil {
				return err
			}
			defer in.Close()
			if _, err := tmp.Write(segMagicV2); err != nil {
				return err
			}
			sw := newSegWriter(bufio.NewWriter(tmp), st.NumFields())
			if err := copyRows(sw, in, st.NumFields(), skip, keep); err != nil {
				return err
			}
			if err := addRecords(sw, st, recs, typeID); err != nil {
				return err
			}
			kinds, rows, dist, err = sw.finish()
			return err
		}()
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Chmod(tmp.Name(), 0o644)
		}
		if err != nil {
			os.Remove(tmp.Name())
			return err
		}
		t.mu.Lock()
		// The appended result publishes under a fresh revision; the base
		// file is doomed (or its staged bytes discarded) — never
		// mutated, so pinned readers keep their snapshot.
		if old, ok := t.staged[oldName]; ok {
			os.Remove(old)
			delete(t.staged, oldName)
		} else {
			t.doomed[oldName] = true
		}
		t.staged[name] = tmp.Name()
		delete(t.doomed, name)
		seg = segOf(t.man.table(fp, typeID), relPath)
		seg.File = name
		seg.Rev = rev
		seg.Rows = rows
		seg.Provisional = prov[typeID]
		seg.Kinds = kinds
		seg.Distincts = dist
		seg.RowOff = 0
		t.touched[relPath] = true
		t.mu.Unlock()
	}
	return nil
}

// copyRows replays limit rows of a segment file (either format
// version) into the writer, skipping the first skip rows — the span
// offset of a source inside a compacted shared file.
func copyRows(sw *segWriter, in *os.File, ncols, skip, limit int) error {
	r := bufio.NewReader(in)
	magic := make([]byte, len(segMagicV1))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("bad segment magic in %s", in.Name())
	}
	var v2 bool
	switch {
	case bytes.Equal(magic, segMagicV1):
	case bytes.Equal(magic, segMagicV2):
		v2 = true
	default:
		return fmt.Errorf("bad segment magic in %s", in.Name())
	}
	copied := 0
	for copied < limit {
		block, err := readBlockAny(r, ncols, v2)
		if err == io.EOF {
			return fmt.Errorf("segment %s: %d rows, expected at least %d", in.Name(), copied, limit)
		}
		if err != nil {
			return err
		}
		for _, row := range block {
			if skip > 0 {
				skip--
				continue
			}
			if copied >= limit {
				break
			}
			if err := sw.add(row); err != nil {
				return err
			}
			copied++
		}
	}
	return nil
}

// readBlockAny fully decodes one block of either segment version:
// uvarint row count, the v2 per-column byte lengths if present, then
// per column, per row, a uvarint-length-prefixed value. io.EOF (clean)
// at end of file — for v2, at the end-of-blocks sentinel.
func readBlockAny(r *bufio.Reader, ncols int, v2 bool) ([][]string, error) {
	nrows, err := binary.ReadUvarint(r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	if nrows == 0 {
		if v2 {
			return nil, io.EOF
		}
		return nil, errors.New("bad block row count 0")
	}
	if nrows > segBlockRows {
		return nil, fmt.Errorf("bad block row count %d", nrows)
	}
	if v2 {
		for c := 0; c < ncols; c++ {
			if _, err := binary.ReadUvarint(r); err != nil {
				return nil, unexpectedEOF(err)
			}
		}
	}
	rows := make([][]string, nrows)
	cells := make([]string, int(nrows)*ncols)
	for i := range rows {
		rows[i] = cells[i*ncols : (i+1)*ncols : (i+1)*ncols]
	}
	var buf []byte
	for c := 0; c < ncols; c++ {
		for i := 0; i < int(nrows); i++ {
			n, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, unexpectedEOF(err)
			}
			if n > 1<<30 {
				return nil, fmt.Errorf("bad cell length %d", n)
			}
			if int(n) > cap(buf) {
				buf = make([]byte, n)
			}
			b := buf[:n]
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, unexpectedEOF(err)
			}
			rows[i][c] = string(b)
		}
	}
	return rows, nil
}

// Covers reports whether the transaction's view holds a segment of
// relPath for each of the format's ntypes record types — i.e. the
// store already has this file's rows, so a checkpointed skip or resume
// is sound.
func (t *StoreTxn) Covers(relPath, fp string, ntypes int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for typeID := 0; typeID < ntypes; typeID++ {
		if segOf(t.man.table(fp, typeID), relPath) == nil {
			return false
		}
	}
	return true
}

// Drop removes relPath's contribution from every table (the file is
// gone, unstructured, or reclassified).
func (t *StoreTxn) Drop(relPath string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropLocked(relPath)
}

func (t *StoreTxn) dropLocked(relPath string) {
	t.touched[relPath] = true
	for i := range t.man.Tables {
		tbl := &t.man.Tables[i]
		kept := tbl.Segments[:0]
		for _, seg := range tbl.Segments {
			if seg.Path == relPath {
				if tmp, ok := t.staged[seg.File]; ok {
					os.Remove(tmp)
					delete(t.staged, seg.File)
				}
				t.doomed[seg.File] = true
				continue
			}
			kept = append(kept, seg)
		}
		tbl.Segments = kept
	}
}

// Retain drops every source file the predicate rejects — the
// departed-file pruning mirror of follow.Store.Retain.
func (t *StoreTxn) Retain(keep func(path string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var gone []string
	seen := map[string]bool{}
	for i := range t.man.Tables {
		for _, seg := range t.man.Tables[i].Segments {
			if !seen[seg.Path] && !keep(seg.Path) {
				gone = append(gone, seg.Path)
			}
			seen[seg.Path] = true
		}
	}
	for _, p := range gone {
		t.dropLocked(p)
	}
}

// Commit publishes the transaction: staged segments rename to their
// final names, the transaction's outcome is rebased onto the store's
// current manifest (see mergeManifest) and saved atomically, the
// in-memory store swaps to the merged state, and doomed segment files
// are deleted only after the swap — readers that opened their segments
// keep their bytes (open descriptors survive the unlink), and every
// rewrite publishes fresh filenames, so a concurrent scan always reads
// exactly the manifest snapshot it resolved. A failed commit leaves
// staged temp files cleaned up and the store unchanged (a torn rename
// set can leave orphan segment bytes on disk, but the manifest — the
// source of truth — still names only complete files).
func (t *StoreTxn) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return errors.New("lake: store transaction already finished")
	}
	t.done = true
	t.man.normalize()
	for name, tmp := range t.staged {
		if err := os.Rename(tmp, filepath.Join(t.s.dir, name)); err != nil {
			t.abortLocked()
			return err
		}
		delete(t.staged, name)
	}
	// Merge and publish under the store lock: concurrent commits
	// serialize here, each rebasing its touched paths onto whatever the
	// other already published.
	t.s.mu.Lock()
	merged := mergeManifest(t.s.man, t.man, t.touched)
	err := saveManifest(t.s.dir, merged)
	if err == nil {
		t.s.man = merged
	}
	t.s.mu.Unlock()
	if err != nil {
		return err
	}
	// A doomed file can still back spans of the published manifest: a
	// compacted file is shared by several paths, and this transaction
	// dooms it when it rewrites or drops just one of them. Keep any
	// file the published manifest still references.
	live := referencedFiles(merged)
	for name := range t.doomed {
		if !live[name] {
			os.Remove(filepath.Join(t.s.dir, name))
		}
	}
	return nil
}

// referencedFiles collects every segment filename a manifest points at.
func referencedFiles(man *manifest) map[string]bool {
	out := map[string]bool{}
	for i := range man.Tables {
		for _, seg := range man.Tables[i].Segments {
			out[seg.File] = true
		}
	}
	return out
}

// mergeManifest rebases a transaction's outcome onto the store's
// current manifest: for every source path the transaction touched, the
// transaction is authoritative (its segments replace whatever the
// current manifest holds — including absence, for drops); untouched
// paths keep their current segments. Transactions over disjoint path
// sets therefore compose — a per-format scoped reindex committing
// mid-flight of another never loses its work.
func mergeManifest(cur, txn *manifest, touched map[string]bool) *manifest {
	out := cur.clone()
	for i := range out.Tables {
		tbl := &out.Tables[i]
		kept := tbl.Segments[:0]
		for _, seg := range tbl.Segments {
			if !touched[seg.Path] {
				kept = append(kept, seg)
			}
		}
		tbl.Segments = kept
	}
	for _, tt := range txn.Tables {
		for _, seg := range tt.Segments {
			if !touched[seg.Path] {
				continue
			}
			tbl := out.table(tt.Fingerprint, tt.Type)
			if tbl == nil {
				out.Tables = append(out.Tables, manTable{
					Fingerprint: tt.Fingerprint,
					Type:        tt.Type,
					Columns:     append([]string(nil), tt.Columns...),
				})
				tbl = &out.Tables[len(out.Tables)-1]
			}
			tbl.Segments = append(tbl.Segments, seg)
		}
	}
	out.normalize()
	return out
}

// DefaultCompactFiles is the per-table segment-file bound the crawl
// passes to Compact: a table spread over more files than this is
// rewritten into one shared file.
const DefaultCompactFiles = 2

// compactFileName names a table's compacted shared segment file. gen
// rises past every revision the table has published (and the spans it
// writes carry Rev=gen), so repeated compactions and interleaved
// appends never reuse a live filename.
func compactFileName(fp string, typeID, gen int) string {
	sum := sha256.Sum256([]byte("compact\x00" + fp))
	return fmt.Sprintf("%x.t%d.c%d.seg", sum[:12], typeID, gen)
}

// Compact rewrites every table whose rows are spread across more than
// maxFiles segment files into one fresh shared v2 file per table: the
// paths' spans are copied in sorted path order, the block buffer
// flushing at each path boundary so every span stays block-aligned
// (zone maps never mix paths), and each span keeps its original row
// count, provisional tail, kinds and distinct estimates under a new
// (File, Rev, RowOff). Logical table contents are untouched — only the
// file layout changes — so Compact is an optimization the crawl runs
// after committing: it publishes via compare-and-swap against the
// manifest it read and simply skips (returning 0) if a concurrent
// commit got there first; the next crawl retries. Superseded segment
// files are deleted once the new manifest is published. Returns the
// number of tables rewritten.
func (s *SegmentStore) Compact(maxFiles int) (int, error) {
	if maxFiles < 1 {
		maxFiles = 1
	}
	base := s.snapshot()
	var targets []int
	for i := range base.Tables {
		files := map[string]bool{}
		for _, seg := range base.Tables[i].Segments {
			files[seg.File] = true
		}
		if len(files) > maxFiles {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		return 0, nil
	}
	next := base.clone()
	type stagedFile struct{ tmp, final string }
	var staged []stagedFile
	cleanup := func() {
		for _, sf := range staged {
			os.Remove(sf.tmp)
		}
	}
	for _, ti := range targets {
		tbl := &next.Tables[ti]
		gen := 0
		for _, seg := range tbl.Segments {
			if seg.Rev >= gen {
				gen = seg.Rev + 1
			}
		}
		final := compactFileName(tbl.Fingerprint, tbl.Type, gen)
		tmp, err := os.CreateTemp(s.dir, ".stage-*")
		if err != nil {
			cleanup()
			return 0, err
		}
		err = func() error {
			if _, err := tmp.Write(segMagicV2); err != nil {
				return err
			}
			sw := newSegWriter(bufio.NewWriter(tmp), len(tbl.Columns))
			rowOff := 0
			for si := range tbl.Segments {
				seg := &tbl.Segments[si]
				in, err := os.Open(filepath.Join(s.dir, seg.File))
				if err != nil {
					return err
				}
				err = copyRows(sw, in, len(tbl.Columns), seg.RowOff, seg.Rows)
				in.Close()
				if err != nil {
					return err
				}
				if err := sw.flushBlock(); err != nil {
					return err
				}
				seg.File, seg.Rev, seg.RowOff = final, gen, rowOff
				rowOff += seg.Rows
			}
			_, rows, _, err := sw.finish()
			if err != nil {
				return err
			}
			if rows != rowOff {
				return fmt.Errorf("lake: compaction wrote %d rows, manifest names %d", rows, rowOff)
			}
			return nil
		}()
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Chmod(tmp.Name(), 0o644)
		}
		if err != nil {
			os.Remove(tmp.Name())
			cleanup()
			return 0, err
		}
		staged = append(staged, stagedFile{tmp: tmp.Name(), final: final})
	}
	next.normalize()
	s.mu.Lock()
	if s.man != base {
		// A commit published while we were rewriting; our inputs are
		// stale. Drop the work — the next crawl re-triggers compaction.
		s.mu.Unlock()
		cleanup()
		return 0, nil
	}
	for i, sf := range staged {
		if err := os.Rename(sf.tmp, filepath.Join(s.dir, sf.final)); err != nil {
			s.mu.Unlock()
			for _, rest := range staged[i:] {
				os.Remove(rest.tmp)
			}
			return 0, err
		}
	}
	err := saveManifest(s.dir, next)
	if err == nil {
		s.man = next
	}
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	live := referencedFiles(next)
	for name := range referencedFiles(base) {
		if !live[name] {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	return len(targets), nil
}

// Abort discards the transaction's staged files; the store is
// untouched.
func (t *StoreTxn) Abort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.abortLocked()
}

func (t *StoreTxn) abortLocked() {
	for _, tmp := range t.staged {
		os.Remove(tmp)
	}
	t.staged = map[string]string{}
}

// saveManifest writes the manifest atomically (temp + rename),
// indented, 0644 — the same discipline as the registry.
func saveManifest(dir string, man *manifest) error {
	mj := manifestJSON{Version: manifestVersion, Tables: man.Tables}
	if mj.Tables == nil {
		mj.Tables = []manTable{}
	}
	raw, err := json.MarshalIndent(mj, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	path := filepath.Join(dir, "manifest.json")
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err == nil {
		_, err = tmp.Write(raw)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// segOf finds relPath's segment in a table, or nil.
func segOf(tbl *manTable, relPath string) *manSeg {
	if tbl == nil {
		return nil
	}
	for i := range tbl.Segments {
		if tbl.Segments[i].Path == relPath {
			return &tbl.Segments[i]
		}
	}
	return nil
}

// columnNames renders the denormalized header f0..fN.
func columnNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("f%d", i)
	}
	return out
}
