package lake

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"datamaran/internal/core"
	"datamaran/internal/relational"
	"datamaran/internal/semtype"
	"datamaran/internal/template"
)

// The record store: per-format columnar segments written next to the
// registry by the crawl, so the query engine can scan the lake's
// extracted records without re-extracting anything.
//
// Layout under the store directory:
//
//	manifest.json          table directory (versioned, atomic, deterministic)
//	<hash>.t<k>.seg        one segment per (source file, record type)
//
// A table is one (format fingerprint, record type) pair; its rows are
// the denormalized records (one row per record, columns f0..fN, array
// repetitions joined with the array separator) of every claimed file,
// concatenated in sorted path order. Segments are block-structured and
// column-major inside each block, so an incremental crawl extends a
// grown file's segment by appending blocks — the follow layer's resume
// never rewrites bytes that are already on disk.
//
// Mutations go through a StoreTxn: the crawl stages new segment bytes
// in the store directory and nothing becomes visible until Commit
// renames them in and swaps the manifest — the same
// only-completed-crawls-publish discipline the serve daemon applies to
// the registry and checkpoint store.

// manifestVersion is the on-disk manifest format this package reads and
// writes.
const manifestVersion = 1

// segMagic opens every segment file.
var segMagic = []byte("dmseg1\n")

// segBlockRows caps the rows per segment block: the unit of buffering
// for both the writer and the streaming reader.
const segBlockRows = 1024

// TableInfo describes one queryable table of the record store.
type TableInfo struct {
	// Name is the table's query name: the format fingerprint, with a
	// "_<k>" suffix for record types beyond the first.
	Name string
	// Fingerprint is the owning format.
	Fingerprint string
	// Type is the record type index within the format.
	Type int
	// Columns are the column names (f0..fN, the denormalized schema).
	Columns []string
	// Kinds are the per-column scalar kinds (semtype classification,
	// folded across segments).
	Kinds []semtype.Kind
	// Rows is the total row count across segments.
	Rows int
	// Segments counts the contributing source files.
	Segments int
}

// tableName renders the query name of a (fingerprint, type) pair.
func tableName(fp string, typeID int) string {
	if typeID == 0 {
		return fp
	}
	return fmt.Sprintf("%s_%d", fp, typeID)
}

// manSeg is one source file's contribution to a table.
type manSeg struct {
	// Path is the source file, slash-separated relative to the lake root.
	Path string `json:"path"`
	// File is the segment filename inside the store directory.
	File string `json:"file"`
	// Rev is the write revision behind File. Every rewrite or append
	// publishes a fresh filename (rev+1), never mutating bytes a live
	// manifest can reference — a scan that opened its segments keeps
	// reading exactly the snapshot it resolved, across any number of
	// commits.
	Rev int `json:"rev,omitempty"`
	// Rows is the segment's row count.
	Rows int `json:"rows"`
	// Provisional counts the trailing rows whose records were not yet
	// finalized at the last crawl — an incremental resume re-emits
	// them, so Append truncates them before appending.
	Provisional int `json:"provisional,omitempty"`
	// Kinds are the column kinds observed over this segment's values.
	Kinds []semtype.Kind `json:"kinds"`
}

// manTable is one table of the manifest.
type manTable struct {
	Fingerprint string   `json:"fingerprint"`
	Type        int      `json:"type"`
	Columns     []string `json:"columns"`
	Segments    []manSeg `json:"segments"`
}

// manifest is the store directory's table index.
type manifest struct {
	Tables []manTable
}

type manifestJSON struct {
	Version int        `json:"version"`
	Tables  []manTable `json:"tables"`
}

// clone deep-copies the manifest so a transaction can mutate freely.
func (m *manifest) clone() *manifest {
	out := &manifest{Tables: make([]manTable, len(m.Tables))}
	for i, t := range m.Tables {
		ct := t
		ct.Columns = append([]string(nil), t.Columns...)
		ct.Segments = make([]manSeg, len(t.Segments))
		for j, s := range t.Segments {
			cs := s
			cs.Kinds = append([]semtype.Kind(nil), s.Kinds...)
			ct.Segments[j] = cs
		}
		out.Tables[i] = ct
	}
	return out
}

// normalize sorts tables by (fingerprint, type) and segments by path,
// and drops tables with no segments — the canonical (deterministic)
// form both Commit and MarshalJSON rely on.
func (m *manifest) normalize() {
	tables := m.Tables[:0]
	for _, t := range m.Tables {
		if len(t.Segments) > 0 {
			sort.Slice(t.Segments, func(a, b int) bool { return t.Segments[a].Path < t.Segments[b].Path })
			tables = append(tables, t)
		}
	}
	m.Tables = tables
	sort.Slice(m.Tables, func(a, b int) bool {
		if m.Tables[a].Fingerprint != m.Tables[b].Fingerprint {
			return m.Tables[a].Fingerprint < m.Tables[b].Fingerprint
		}
		return m.Tables[a].Type < m.Tables[b].Type
	})
}

// table finds the (fingerprint, type) table, or nil.
func (m *manifest) table(fp string, typeID int) *manTable {
	for i := range m.Tables {
		if m.Tables[i].Fingerprint == fp && m.Tables[i].Type == typeID {
			return &m.Tables[i]
		}
	}
	return nil
}

// SegmentStore is the on-disk record store handle. It is safe for
// concurrent use: scans snapshot the manifest, and commits swap it
// whole.
type SegmentStore struct {
	dir string
	mu  sync.RWMutex
	man *manifest
}

// OpenSegmentStore opens (creating if needed) the record store rooted
// at dir. A missing manifest yields an empty store, so first runs need
// no setup.
func OpenSegmentStore(dir string) (*SegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &manifest{}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, err
	default:
		var mj manifestJSON
		if err := json.Unmarshal(raw, &mj); err != nil {
			return nil, fmt.Errorf("lake: bad store manifest: %w", err)
		}
		if mj.Version != manifestVersion {
			return nil, fmt.Errorf("lake: unsupported store manifest version %d (supported: %d)", mj.Version, manifestVersion)
		}
		man.Tables = mj.Tables
		man.normalize()
	}
	return &SegmentStore{dir: dir, man: man}, nil
}

// Dir returns the store directory.
func (s *SegmentStore) Dir() string { return s.dir }

// snapshot returns the current manifest pointer (immutable once
// published).
func (s *SegmentStore) snapshot() *manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man
}

// info converts a manifest table into its public form, folding segment
// kinds into table kinds.
func info(t *manTable) TableInfo {
	ti := TableInfo{
		Name:        tableName(t.Fingerprint, t.Type),
		Fingerprint: t.Fingerprint,
		Type:        t.Type,
		Columns:     append([]string(nil), t.Columns...),
		Segments:    len(t.Segments),
	}
	for i, seg := range t.Segments {
		ti.Rows += seg.Rows
		if i == 0 {
			ti.Kinds = append([]semtype.Kind(nil), seg.Kinds...)
			continue
		}
		for c := range ti.Kinds {
			if c < len(seg.Kinds) {
				ti.Kinds[c] = semtype.MergeKinds(ti.Kinds[c], seg.Kinds[c])
			}
		}
	}
	if ti.Kinds == nil {
		ti.Kinds = make([]semtype.Kind, len(ti.Columns))
		for i := range ti.Kinds {
			ti.Kinds[i] = semtype.KindString
		}
	}
	return ti
}

// Tables lists the store's tables in manifest (fingerprint, type)
// order.
func (s *SegmentStore) Tables() []TableInfo {
	return tablesIn(s.snapshot())
}

func tablesIn(man *manifest) []TableInfo {
	out := make([]TableInfo, 0, len(man.Tables))
	for i := range man.Tables {
		out = append(out, info(&man.Tables[i]))
	}
	return out
}

// Resolve finds a table by query name: an exact name, or a unique
// fingerprint prefix (with optional "_<k>" type suffix) — the
// git-style shorthand the query surfaces accept.
func (s *SegmentStore) Resolve(name string) (TableInfo, error) {
	return resolveIn(s.snapshot(), name)
}

func resolveIn(man *manifest, name string) (TableInfo, error) {
	base, typeID := name, 0
	if i := strings.LastIndexByte(name, '_'); i > 0 {
		if _, err := fmt.Sscanf(name[i+1:], "%d", &typeID); err == nil {
			base = name[:i]
		} else {
			typeID = 0
		}
	}
	var hits []*manTable
	for i := range man.Tables {
		t := &man.Tables[i]
		if tableName(t.Fingerprint, t.Type) == name {
			hits = []*manTable{t}
			break
		}
		if t.Type == typeID && strings.HasPrefix(t.Fingerprint, base) {
			hits = append(hits, t)
		}
	}
	switch len(hits) {
	case 1:
		return info(hits[0]), nil
	case 0:
		return TableInfo{}, fmt.Errorf("lake: no table %q in store (have %s)", name, storeTableNames(man))
	default:
		return TableInfo{}, fmt.Errorf("lake: table prefix %q is ambiguous", name)
	}
}

func storeTableNames(man *manifest) string {
	if len(man.Tables) == 0 {
		return "none"
	}
	names := make([]string, 0, len(man.Tables))
	for _, t := range man.Tables {
		names = append(names, tableName(t.Fingerprint, t.Type))
	}
	return strings.Join(names, ", ")
}

// SegmentScan streams one table's rows across its segments in sorted
// path order. Memory is bounded by one block (segBlockRows rows) plus
// one open descriptor per segment: Scan opens every segment eagerly,
// so the scan owns its bytes for its whole lifetime — a concurrent
// commit that unlinks a superseded segment file cannot pull data out
// from under a reader that already resolved it.
type SegmentScan struct {
	columns []string
	segs    []manSeg
	files   []*os.File
	segIdx  int
	r       *bufio.Reader
	block   [][]string
	blockAt int
}

// scanOpenRetries bounds how many times Scan re-resolves a table whose
// segment files vanished between snapshotting the manifest and opening
// them (a commit won the race); each retry sees a strictly newer
// manifest, so in practice one suffices.
const scanOpenRetries = 8

// Scan opens a streaming scan of the named table (exact name or unique
// fingerprint prefix). All segment files open up front: once Scan
// returns, the rows it will yield are pinned — commits publish new
// revisions under new filenames and only unlink old ones, and an open
// descriptor keeps its bytes past the unlink. If a commit lands in the
// narrow window between reading the manifest and opening the files,
// Scan retries against the fresh manifest.
func (s *SegmentStore) Scan(name string) (*SegmentScan, error) {
	var lastErr error
	for attempt := 0; attempt < scanOpenRetries; attempt++ {
		sc, err := openScan(s.dir, s.snapshot(), name)
		if err != nil && errors.Is(err, os.ErrNotExist) {
			lastErr = err
			continue
		}
		return sc, err
	}
	return nil, fmt.Errorf("lake: table %q: segments kept vanishing across %d manifest snapshots: %w", name, scanOpenRetries, lastErr)
}

// openScan resolves name in man and opens every segment file. An
// os.ErrNotExist from a vanished segment propagates to the caller,
// which owns the retry policy (fresh snapshot for the store, stale-view
// error for a pinned view).
func openScan(dir string, man *manifest, name string) (*SegmentScan, error) {
	ti, err := resolveIn(man, name)
	if err != nil {
		return nil, err
	}
	t := man.table(ti.Fingerprint, ti.Type)
	if t == nil {
		return nil, fmt.Errorf("lake: no table %q in store", name)
	}
	sc := &SegmentScan{
		columns: append([]string(nil), t.Columns...),
		segs:    append([]manSeg(nil), t.Segments...),
		files:   make([]*os.File, len(t.Segments)),
	}
	for i, seg := range sc.segs {
		f, err := os.Open(filepath.Join(dir, seg.File))
		if err != nil {
			sc.Close()
			return nil, err
		}
		sc.files[i] = f
	}
	return sc, nil
}

// ErrStaleView marks a StoreView whose manifest snapshot was superseded
// before all of its segments could be opened — the caller should take a
// fresh view and retry.
var ErrStaleView = errors.New("lake: store view superseded before its segments opened")

// StoreView is a pinned point-in-time view of the store: Tables,
// Resolve and Scan all answer from the one manifest snapshot taken by
// View, so a multi-table consumer (a relational query joining tables)
// sees a single consistent store state even while commits land. Each
// successful Scan pins its segment bytes via open descriptors; the only
// race left is a commit deleting a superseded segment between View and
// Scan, which surfaces as ErrStaleView (retry with a fresh view).
type StoreView struct {
	dir string
	man *manifest
}

// View pins the store's current state.
func (s *SegmentStore) View() *StoreView {
	return &StoreView{dir: s.dir, man: s.snapshot()}
}

// Tables lists the view's tables.
func (v *StoreView) Tables() []TableInfo { return tablesIn(v.man) }

// Resolve finds a table in the view by query name.
func (v *StoreView) Resolve(name string) (TableInfo, error) { return resolveIn(v.man, name) }

// Scan streams one of the view's tables. A vanished segment yields
// ErrStaleView.
func (v *StoreView) Scan(name string) (*SegmentScan, error) {
	sc, err := openScan(v.dir, v.man, name)
	if err != nil && errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %v", ErrStaleView, err)
	}
	return sc, err
}

// Columns returns the scan's column names.
func (sc *SegmentScan) Columns() []string { return sc.columns }

// Next returns the next row, or io.EOF after the last. The returned
// slice is owned by the caller (rows are materialized per block).
func (sc *SegmentScan) Next() ([]string, error) {
	for {
		if sc.blockAt < len(sc.block) {
			row := sc.block[sc.blockAt]
			sc.blockAt++
			return row, nil
		}
		if sc.r == nil {
			if sc.segIdx >= len(sc.segs) {
				return nil, io.EOF
			}
			sc.r = bufio.NewReader(sc.files[sc.segIdx])
			magic := make([]byte, len(segMagic))
			if _, err := io.ReadFull(sc.r, magic); err != nil || !bytes.Equal(magic, segMagic) {
				return nil, fmt.Errorf("lake: segment %s: bad magic", sc.segs[sc.segIdx].File)
			}
		}
		block, err := readBlock(sc.r, len(sc.columns))
		if err == io.EOF {
			sc.files[sc.segIdx].Close()
			sc.files[sc.segIdx] = nil
			sc.r = nil
			sc.segIdx++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("lake: segment %s: %w", sc.segs[sc.segIdx].File, err)
		}
		sc.block, sc.blockAt = block, 0
	}
}

// Close releases the scan's open segment files.
func (sc *SegmentScan) Close() error {
	var first error
	for i, f := range sc.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		sc.files[i] = nil
	}
	sc.r = nil
	return first
}

// readBlock reads one column-major block: uvarint row count, then per
// column, per row, a uvarint-length-prefixed value. io.EOF (clean) at
// end of file.
func readBlock(r *bufio.Reader, ncols int) ([][]string, error) {
	nrows, err := binary.ReadUvarint(r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	if nrows == 0 || nrows > segBlockRows {
		return nil, fmt.Errorf("bad block row count %d", nrows)
	}
	rows := make([][]string, nrows)
	cells := make([]string, int(nrows)*ncols)
	for i := range rows {
		rows[i] = cells[i*ncols : (i+1)*ncols : (i+1)*ncols]
	}
	var buf []byte
	for c := 0; c < ncols; c++ {
		for i := 0; i < int(nrows); i++ {
			n, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, unexpectedEOF(err)
			}
			if n > 1<<30 {
				return nil, fmt.Errorf("bad cell length %d", n)
			}
			if int(n) > cap(buf) {
				buf = make([]byte, n)
			}
			b := buf[:n]
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, unexpectedEOF(err)
			}
			rows[i][c] = string(b)
		}
	}
	return rows, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// segWriter streams denormalized rows into column-major blocks,
// folding semtype classification over each block as it flushes — the
// derived kinds depend only on the row sequence, not on how callers
// batch their writes, so an incremental append that replays the kept
// rows re-derives exactly the kinds a from-scratch write would.
type segWriter struct {
	w     *bufio.Writer
	ncols int
	cols  [][]string
	kinds []semtype.Kind
	rows  int
}

func newSegWriter(w *bufio.Writer, ncols int) *segWriter {
	return &segWriter{w: w, ncols: ncols, cols: make([][]string, ncols)}
}

func (sw *segWriter) putUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := sw.w.Write(buf[:n])
	return err
}

// add buffers one row, flushing a block when full.
func (sw *segWriter) add(row []string) error {
	for c := 0; c < sw.ncols; c++ {
		sw.cols[c] = append(sw.cols[c], row[c])
	}
	sw.rows++
	if sw.ncols > 0 && len(sw.cols[0]) >= segBlockRows {
		return sw.flushBlock()
	}
	return nil
}

func (sw *segWriter) flushBlock() error {
	n := 0
	if sw.ncols > 0 {
		n = len(sw.cols[0])
	}
	if n == 0 {
		return nil
	}
	sw.kinds = foldKinds(sw.kinds, sw.cols)
	if err := sw.putUvarint(uint64(n)); err != nil {
		return err
	}
	for c := 0; c < sw.ncols; c++ {
		for _, v := range sw.cols[c] {
			if err := sw.putUvarint(uint64(len(v))); err != nil {
				return err
			}
			if _, err := sw.w.WriteString(v); err != nil {
				return err
			}
		}
		sw.cols[c] = sw.cols[c][:0]
	}
	return nil
}

// finish flushes the residual block and returns the folded kinds plus
// the total row count.
func (sw *segWriter) finish() ([]semtype.Kind, int, error) {
	if err := sw.flushBlock(); err != nil {
		return nil, 0, err
	}
	if err := sw.w.Flush(); err != nil {
		return nil, 0, err
	}
	kinds := sw.kinds
	if kinds == nil {
		kinds = make([]semtype.Kind, sw.ncols)
		for i := range kinds {
			kinds[i] = semtype.KindString
		}
	}
	return kinds, sw.rows, nil
}

// addRecords feeds recs' rows of one record type through the writer.
func addRecords(sw *segWriter, st *template.Node, recs []core.RecordOut, typeID int) error {
	seps := relational.ArraySeps(st)
	var fields []relational.FlatField
	var row []string
	for _, rec := range recs {
		if rec.TypeID != typeID {
			continue
		}
		fields = fields[:0]
		for _, f := range rec.Fields {
			fields = append(fields, relational.FlatField{Col: f.Col, Rep: f.Rep, Value: f.Value})
		}
		row = relational.DenormRow(st, seps, fields, row)
		if err := sw.add(row); err != nil {
			return err
		}
	}
	return nil
}

// provisionalByType counts, per record type, how many of the trailing
// k records each type contributes — the not-yet-finalized rows the
// next resume will re-emit, which Append truncates before appending.
func provisionalByType(recs []core.RecordOut, ntypes, k int) []int {
	counts := make([]int, ntypes)
	for i := len(recs) - k; i < len(recs); i++ {
		if i >= 0 && recs[i].TypeID >= 0 && recs[i].TypeID < ntypes {
			counts[recs[i].TypeID]++
		}
	}
	return counts
}

// foldKinds classifies the buffered column values and merges them into
// the running kinds.
func foldKinds(kinds []semtype.Kind, colVals [][]string) []semtype.Kind {
	if len(colVals) == 0 || len(colVals[0]) == 0 {
		return kinds
	}
	fresh := make([]semtype.Kind, len(colVals))
	for c, vals := range colVals {
		fresh[c] = semtype.ClassifyValues(vals)
	}
	if kinds == nil {
		return fresh
	}
	for c := range kinds {
		kinds[c] = semtype.MergeKinds(kinds[c], fresh[c])
	}
	return kinds
}

// segFileName derives the segment filename of one (source file, type,
// revision) triple — a hash, so arbitrary lake paths map onto flat
// store names. Revision 0 (the fresh-crawl case) keeps the historical
// unsuffixed name; later revisions are distinct files, so concurrent
// readers pinned to an older manifest never observe mutated bytes.
func segFileName(relPath string, typeID, rev int) string {
	sum := sha256.Sum256([]byte(relPath))
	if rev == 0 {
		return fmt.Sprintf("%x.t%d.seg", sum[:12], typeID)
	}
	return fmt.Sprintf("%x.t%d.r%d.seg", sum[:12], typeID, rev)
}

// StoreTxn stages one crawl's record-store mutations. Methods are safe
// to call from the crawl's worker pool; nothing is visible to readers
// (or survives a crash) until Commit. Commit rebases: the transaction
// is authoritative only for the source files it touched, so concurrent
// transactions over disjoint file sets (the serve daemon's per-format
// scoped reindexes) compose instead of clobbering each other.
type StoreTxn struct {
	s   *SegmentStore
	mu  sync.Mutex
	man *manifest
	// staged maps final segment filenames to their staged temp paths;
	// doomed lists segment files to delete at commit; touched records
	// the source paths this transaction rewrote, appended or dropped —
	// the paths its Commit is authoritative for.
	staged  map[string]string
	doomed  map[string]bool
	touched map[string]bool
	done    bool
}

// Begin opens a transaction over the store's current state.
func (s *SegmentStore) Begin() *StoreTxn {
	return &StoreTxn{
		s:       s,
		man:     s.snapshot().clone(),
		staged:  map[string]string{},
		doomed:  map[string]bool{},
		touched: map[string]bool{},
	}
}

// Rewrite replaces relPath's contribution with recs: one staged segment
// per record type of the format (empty segments included, so later
// appends and truncations have a base). provisional is the count of
// trailing records not yet finalized by the extraction's checkpoint (0
// outside incremental crawls).
func (t *StoreTxn) Rewrite(relPath, fp string, templates []*template.Node, recs []core.RecordOut, provisional int) error {
	t.mu.Lock()
	rev := t.nextRevLocked(relPath)
	t.dropLocked(relPath)
	t.mu.Unlock()
	prov := provisionalByType(recs, len(templates), provisional)
	for typeID, st := range templates {
		name := segFileName(relPath, typeID, rev)
		tmp, err := os.CreateTemp(t.s.dir, ".stage-*")
		if err != nil {
			return err
		}
		var kinds []semtype.Kind
		rows := 0
		if _, err = tmp.Write(segMagic); err == nil {
			sw := newSegWriter(bufio.NewWriter(tmp), st.NumFields())
			if err = addRecords(sw, st, recs, typeID); err == nil {
				kinds, rows, err = sw.finish()
			}
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Chmod(tmp.Name(), 0o644)
		}
		if err != nil {
			os.Remove(tmp.Name())
			return err
		}
		t.mu.Lock()
		t.staged[name] = tmp.Name()
		delete(t.doomed, name)
		tbl := t.man.table(fp, typeID)
		if tbl == nil {
			t.man.Tables = append(t.man.Tables, manTable{
				Fingerprint: fp,
				Type:        typeID,
				Columns:     columnNames(st.NumFields()),
			})
			tbl = &t.man.Tables[len(t.man.Tables)-1]
		}
		tbl.Segments = append(tbl.Segments, manSeg{
			Path: relPath, File: name, Rev: rev, Rows: rows, Provisional: prov[typeID], Kinds: kinds,
		})
		t.touched[relPath] = true
		t.mu.Unlock()
	}
	return nil
}

// nextRevLocked picks the write revision for relPath's next segment
// files: one past the highest revision any table holds for the path (0
// for a first write). Revisions are monotonic within the transaction,
// so repeated rewrites of one path never reuse a published filename.
func (t *StoreTxn) nextRevLocked(relPath string) int {
	rev := 0
	for i := range t.man.Tables {
		for _, seg := range t.man.Tables[i].Segments {
			if seg.Path == relPath && seg.Rev >= rev {
				rev = seg.Rev + 1
			}
		}
	}
	return rev
}

// Append extends relPath's existing segments with recs — the resume
// path of the incremental crawl, which extracts [checkpoint, EOF): the
// previously-provisional tail rows are truncated (the resume re-emits
// them) and the new rows appended, replaying the kept rows so the
// result is byte-identical to a from-scratch rewrite of the whole
// file. provisional is the trailing-record count not finalized by the
// new checkpoint. The crawl only plans a resume when Covers is true,
// so a missing base segment is an invariant violation, not a fallback.
func (t *StoreTxn) Append(relPath, fp string, templates []*template.Node, recs []core.RecordOut, provisional int) error {
	prov := provisionalByType(recs, len(templates), provisional)
	t.mu.Lock()
	rev := t.nextRevLocked(relPath)
	t.mu.Unlock()
	for typeID, st := range templates {
		name := segFileName(relPath, typeID, rev)
		t.mu.Lock()
		seg := segOf(t.man.table(fp, typeID), relPath)
		if seg == nil {
			t.mu.Unlock()
			return fmt.Errorf("lake: append to %s type %d: no base segment for %s", fp, typeID, relPath)
		}
		keep := seg.Rows - seg.Provisional
		oldName := seg.File
		src, isStaged := t.staged[oldName]
		t.mu.Unlock()
		if !isStaged {
			src = filepath.Join(t.s.dir, oldName)
		}
		tmp, err := os.CreateTemp(t.s.dir, ".stage-*")
		if err != nil {
			return err
		}
		var kinds []semtype.Kind
		rows := 0
		err = func() error {
			in, err := os.Open(src)
			if err != nil {
				return err
			}
			defer in.Close()
			if _, err := tmp.Write(segMagic); err != nil {
				return err
			}
			sw := newSegWriter(bufio.NewWriter(tmp), st.NumFields())
			if err := copyRows(sw, in, st.NumFields(), keep); err != nil {
				return err
			}
			if err := addRecords(sw, st, recs, typeID); err != nil {
				return err
			}
			kinds, rows, err = sw.finish()
			return err
		}()
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Chmod(tmp.Name(), 0o644)
		}
		if err != nil {
			os.Remove(tmp.Name())
			return err
		}
		t.mu.Lock()
		// The appended result publishes under a fresh revision; the base
		// file is doomed (or its staged bytes discarded) — never
		// mutated, so pinned readers keep their snapshot.
		if old, ok := t.staged[oldName]; ok {
			os.Remove(old)
			delete(t.staged, oldName)
		} else {
			t.doomed[oldName] = true
		}
		t.staged[name] = tmp.Name()
		delete(t.doomed, name)
		seg = segOf(t.man.table(fp, typeID), relPath)
		seg.File = name
		seg.Rev = rev
		seg.Rows = rows
		seg.Provisional = prov[typeID]
		seg.Kinds = kinds
		t.touched[relPath] = true
		t.mu.Unlock()
	}
	return nil
}

// copyRows replays up to limit rows of a segment file into the writer.
func copyRows(sw *segWriter, in *os.File, ncols, limit int) error {
	r := bufio.NewReader(in)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, segMagic) {
		return fmt.Errorf("bad segment magic in %s", in.Name())
	}
	copied := 0
	for copied < limit {
		block, err := readBlock(r, ncols)
		if err == io.EOF {
			return fmt.Errorf("segment %s: %d rows, expected at least %d", in.Name(), copied, limit)
		}
		if err != nil {
			return err
		}
		for _, row := range block {
			if copied >= limit {
				break
			}
			if err := sw.add(row); err != nil {
				return err
			}
			copied++
		}
	}
	return nil
}

// Covers reports whether the transaction's view holds a segment of
// relPath for each of the format's ntypes record types — i.e. the
// store already has this file's rows, so a checkpointed skip or resume
// is sound.
func (t *StoreTxn) Covers(relPath, fp string, ntypes int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for typeID := 0; typeID < ntypes; typeID++ {
		if segOf(t.man.table(fp, typeID), relPath) == nil {
			return false
		}
	}
	return true
}

// Drop removes relPath's contribution from every table (the file is
// gone, unstructured, or reclassified).
func (t *StoreTxn) Drop(relPath string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropLocked(relPath)
}

func (t *StoreTxn) dropLocked(relPath string) {
	t.touched[relPath] = true
	for i := range t.man.Tables {
		tbl := &t.man.Tables[i]
		kept := tbl.Segments[:0]
		for _, seg := range tbl.Segments {
			if seg.Path == relPath {
				if tmp, ok := t.staged[seg.File]; ok {
					os.Remove(tmp)
					delete(t.staged, seg.File)
				}
				t.doomed[seg.File] = true
				continue
			}
			kept = append(kept, seg)
		}
		tbl.Segments = kept
	}
}

// Retain drops every source file the predicate rejects — the
// departed-file pruning mirror of follow.Store.Retain.
func (t *StoreTxn) Retain(keep func(path string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var gone []string
	seen := map[string]bool{}
	for i := range t.man.Tables {
		for _, seg := range t.man.Tables[i].Segments {
			if !seen[seg.Path] && !keep(seg.Path) {
				gone = append(gone, seg.Path)
			}
			seen[seg.Path] = true
		}
	}
	for _, p := range gone {
		t.dropLocked(p)
	}
}

// Commit publishes the transaction: staged segments rename to their
// final names, the transaction's outcome is rebased onto the store's
// current manifest (see mergeManifest) and saved atomically, the
// in-memory store swaps to the merged state, and doomed segment files
// are deleted only after the swap — readers that opened their segments
// keep their bytes (open descriptors survive the unlink), and every
// rewrite publishes fresh filenames, so a concurrent scan always reads
// exactly the manifest snapshot it resolved. A failed commit leaves
// staged temp files cleaned up and the store unchanged (a torn rename
// set can leave orphan segment bytes on disk, but the manifest — the
// source of truth — still names only complete files).
func (t *StoreTxn) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return errors.New("lake: store transaction already finished")
	}
	t.done = true
	t.man.normalize()
	for name, tmp := range t.staged {
		if err := os.Rename(tmp, filepath.Join(t.s.dir, name)); err != nil {
			t.abortLocked()
			return err
		}
		delete(t.staged, name)
	}
	// Merge and publish under the store lock: concurrent commits
	// serialize here, each rebasing its touched paths onto whatever the
	// other already published.
	t.s.mu.Lock()
	merged := mergeManifest(t.s.man, t.man, t.touched)
	err := saveManifest(t.s.dir, merged)
	if err == nil {
		t.s.man = merged
	}
	t.s.mu.Unlock()
	if err != nil {
		return err
	}
	for name := range t.doomed {
		os.Remove(filepath.Join(t.s.dir, name))
	}
	return nil
}

// mergeManifest rebases a transaction's outcome onto the store's
// current manifest: for every source path the transaction touched, the
// transaction is authoritative (its segments replace whatever the
// current manifest holds — including absence, for drops); untouched
// paths keep their current segments. Transactions over disjoint path
// sets therefore compose — a per-format scoped reindex committing
// mid-flight of another never loses its work.
func mergeManifest(cur, txn *manifest, touched map[string]bool) *manifest {
	out := cur.clone()
	for i := range out.Tables {
		tbl := &out.Tables[i]
		kept := tbl.Segments[:0]
		for _, seg := range tbl.Segments {
			if !touched[seg.Path] {
				kept = append(kept, seg)
			}
		}
		tbl.Segments = kept
	}
	for _, tt := range txn.Tables {
		for _, seg := range tt.Segments {
			if !touched[seg.Path] {
				continue
			}
			tbl := out.table(tt.Fingerprint, tt.Type)
			if tbl == nil {
				out.Tables = append(out.Tables, manTable{
					Fingerprint: tt.Fingerprint,
					Type:        tt.Type,
					Columns:     append([]string(nil), tt.Columns...),
				})
				tbl = &out.Tables[len(out.Tables)-1]
			}
			tbl.Segments = append(tbl.Segments, seg)
		}
	}
	out.normalize()
	return out
}

// Abort discards the transaction's staged files; the store is
// untouched.
func (t *StoreTxn) Abort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.abortLocked()
}

func (t *StoreTxn) abortLocked() {
	for _, tmp := range t.staged {
		os.Remove(tmp)
	}
	t.staged = map[string]string{}
}

// saveManifest writes the manifest atomically (temp + rename),
// indented, 0644 — the same discipline as the registry.
func saveManifest(dir string, man *manifest) error {
	mj := manifestJSON{Version: manifestVersion, Tables: man.Tables}
	if mj.Tables == nil {
		mj.Tables = []manTable{}
	}
	raw, err := json.MarshalIndent(mj, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	path := filepath.Join(dir, "manifest.json")
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err == nil {
		_, err = tmp.Write(raw)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// segOf finds relPath's segment in a table, or nil.
func segOf(tbl *manTable, relPath string) *manSeg {
	if tbl == nil {
		return nil
	}
	for i := range tbl.Segments {
		if tbl.Segments[i].Path == relPath {
			return &tbl.Segments[i]
		}
	}
	return nil
}

// columnNames renders the denormalized header f0..fN.
func columnNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("f%d", i)
	}
	return out
}
