package lake

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datamaran/internal/follow"
)

// scopeFor builds the Filter of a per-format scoped crawl: accept
// exactly the checkpointed paths claimed by fp — the same scope the
// serve daemon computes for a scoped /reindex.
func scopeFor(cps *follow.Store, fp string) func(string) bool {
	in := map[string]bool{}
	for _, p := range cps.Paths() {
		if cp := cps.Get(p); cp != nil && cp.Fingerprint == fp {
			in[p] = true
		}
	}
	return func(rel string) bool { return in[rel] }
}

func TestScopedCrawlLeavesOutOfScopeStateUntouched(t *testing.T) {
	root := buildLake(t)
	reg := NewRegistry()
	cps := follow.NewStore()
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)
	before := storeRows(t, s)
	beforeCps := map[string]*follow.Checkpoint{}
	for _, p := range cps.Paths() {
		beforeCps[p] = cps.Get(p)
	}

	// Scope to the metrics format, grow one of its files, and mutate an
	// out-of-scope file too: the scoped crawl must pick up the former
	// and be blind to the latter.
	metricsFP := ""
	for _, e := range reg.Entries() {
		if cp := cps.Get("c/metrics-1.log"); cp != nil && cp.Fingerprint == e.Fingerprint {
			metricsFP = e.Fingerprint
		}
	}
	if metricsFP == "" {
		t.Fatal("no fingerprint claims c/metrics-1.log")
	}
	appendTo(t, root, "c/metrics-1.log", "metric|cpu7|99.99|\n")
	appendTo(t, root, "a/jobs-1.log", "JOB <777>\n  queue= q9;\n  state= DONE;\n")
	if err := os.Remove(filepath.Join(root, "b", "req-3.log")); err != nil {
		t.Fatal(err)
	}

	txn := s.Begin()
	res, err := Index(root, reg, Config{
		Workers: 2, Checkpoints: cps, Segments: txn,
		Filter: scopeFor(cps, metricsFP),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Only the two metrics files were visible.
	if res.Summary.Files != 2 {
		t.Fatalf("scoped crawl saw %d files, want 2: %+v", res.Summary.Files, res.Summary)
	}
	for _, f := range res.Files {
		if !strings.HasPrefix(f.Path, "c/metrics-") {
			t.Fatalf("scoped crawl touched out-of-scope %s", f.Path)
		}
	}
	if res.Summary.Resumed != 1 {
		t.Fatalf("grown metrics file did not resume: %+v", res.Summary)
	}

	// Out-of-scope checkpoints are byte-for-byte what they were — the
	// grown jobs file and the deleted req file included (no pruning
	// outside the scope).
	for p, cp := range beforeCps {
		if strings.HasPrefix(p, "c/metrics-") {
			continue
		}
		got := cps.Get(p)
		if got == nil {
			t.Fatalf("out-of-scope checkpoint %s pruned by scoped crawl", p)
		}
		if *got != *cp {
			t.Fatalf("out-of-scope checkpoint %s changed: %+v -> %+v", p, cp, got)
		}
	}

	// The store gained exactly the new metrics row; every other table's
	// rows (including the deleted req-3's) are unchanged.
	after := storeRows(t, s)
	if after == before {
		t.Fatal("scoped crawl did not pick up the grown metrics file")
	}
	for _, line := range strings.Split(before, "\n") {
		if strings.Contains(line, "req") || strings.Contains(line, "JOB") {
			if !strings.Contains(after, line) {
				t.Fatalf("out-of-scope store line lost: %s", line)
			}
		}
	}
	if !strings.Contains(after, `"99.99"`) {
		t.Fatal("appended metrics row missing from scoped store")
	}

	// A follow-up unscoped crawl converges on the from-scratch state.
	crawlWithStore(t, root, reg, cps, s)
	scratch, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, NewRegistry(), follow.NewStore(), scratch)
	if got, want := storeRows(t, s), storeRows(t, scratch); got != want {
		t.Fatalf("post-scoped store differs from scratch:\n%s\n--- vs ---\n%s", got, want)
	}
}

func TestStoreTxnDisjointCommitsCompose(t *testing.T) {
	root := buildLake(t)
	reg := NewRegistry()
	cps := follow.NewStore()
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)
	before := storeRows(t, s)

	// Two transactions over disjoint scopes, opened before either
	// commits: the second commit must not clobber the first's work.
	metricsFP := cps.Get("c/metrics-1.log").Fingerprint
	jobsFP := cps.Get("a/jobs-1.log").Fingerprint
	if metricsFP == jobsFP {
		t.Fatal("fixture formats collapsed")
	}
	appendTo(t, root, "c/metrics-2.log", "metric|cpu3|11.11|\n")
	appendTo(t, root, "a/jobs-2.log", "JOB <42>\n  queue= q0;\n  state= FAILED;\n")

	txnA := s.Begin()
	txnB := s.Begin()
	if _, err := Index(root, reg, Config{Workers: 2, Checkpoints: cps, Segments: txnA, Filter: scopeFor(cps, metricsFP)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Index(root, reg, Config{Workers: 2, Checkpoints: cps, Segments: txnB, Filter: scopeFor(cps, jobsFP)}); err != nil {
		t.Fatal(err)
	}
	if err := txnA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txnB.Commit(); err != nil {
		t.Fatal(err)
	}

	after := storeRows(t, s)
	if !strings.Contains(after, `"11.11"`) {
		t.Fatal("first commit's rows lost after second commit")
	}
	if !strings.Contains(after, `"42"`) {
		t.Fatal("second commit's rows missing")
	}
	if after == before {
		t.Fatal("store unchanged after two commits")
	}

	// The reopened (on-disk) store agrees with the live handle.
	reopened, err := OpenSegmentStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got := storeRows(t, reopened); got != after {
		t.Fatalf("on-disk manifest diverged from live handle:\n%s\n--- vs ---\n%s", got, after)
	}
}

func TestScanPinnedAcrossCommit(t *testing.T) {
	root := buildLake(t)
	reg := NewRegistry()
	cps := follow.NewStore()
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)

	var metricsTable string
	for _, ti := range s.Tables() {
		if ti.Fingerprint == cps.Get("c/metrics-1.log").Fingerprint {
			metricsTable = ti.Name
		}
	}
	wantRows := dumpScan(t, s, metricsTable)

	// Open the scan, then rewrite the table's files twice via full
	// crawls before reading a single row: the scan must stream exactly
	// the snapshot it resolved, not the new bytes, and never error on a
	// vanished file.
	sc, err := s.Scan(metricsTable)
	if err != nil {
		t.Fatal(err)
	}
	appendTo(t, root, "c/metrics-1.log", "metric|cpu0|1.23|\n")
	crawlWithStore(t, root, reg, cps, s)
	appendTo(t, root, "c/metrics-1.log", "metric|cpu0|4.56|\n")
	crawlWithStore(t, root, reg, cps, s)

	var got []string
	for {
		row, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("pinned scan errored after commits: %v", err)
		}
		got = append(got, strings.Join(row, "|"))
	}
	sc.Close()
	if strings.Join(got, "\n") != strings.Join(wantRows, "\n") {
		t.Fatalf("pinned scan drifted: %d rows vs %d at open time", len(got), len(wantRows))
	}

	// A fresh scan sees both appended rows.
	fresh := dumpScan(t, s, metricsTable)
	if len(fresh) != len(wantRows)+2 {
		t.Fatalf("fresh scan has %d rows, want %d", len(fresh), len(wantRows)+2)
	}
}

// dumpScan reads a whole table into joined-row strings.
func dumpScan(t *testing.T, s *SegmentStore, name string) []string {
	t.Helper()
	sc, err := s.Scan(name)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var out []string
	for {
		row, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, strings.Join(row, "|"))
	}
}

func TestRewriteRevisionsNeverReuseFilenames(t *testing.T) {
	// Every rewrite of one path publishes a fresh segment filename, so
	// a manifest snapshot's files are immutable for its lifetime.
	if a, b := segFileName("x.log", 0, 0), segFileName("x.log", 0, 1); a == b {
		t.Fatalf("rev 0 and rev 1 share filename %s", a)
	}
	root := buildLake(t)
	reg := NewRegistry()
	cps := follow.NewStore()
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)
	fileOf := func(rel string) string {
		t.Helper()
		for _, tbl := range s.snapshot().Tables {
			for _, seg := range tbl.Segments {
				if seg.Path == rel {
					return seg.File
				}
			}
		}
		t.Fatalf("no segment for %s", rel)
		return ""
	}
	first := fileOf("b/req-1.log")

	// Rotate the file (same length class, new inode content) to force a
	// full rewrite rather than an append.
	p := filepath.Join(root, "b", "req-1.log")
	if err := os.Remove(p); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("GET /api/v1/item/1 200\nPUT /api/v2/item/2 404\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)
	second := fileOf("b/req-1.log")
	if first == second {
		t.Fatalf("rewrite reused segment filename %s", first)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), first)); !os.IsNotExist(err) {
		t.Fatalf("superseded segment %s not deleted (err=%v)", first, err)
	}
}

func TestRegistryAdjust(t *testing.T) {
	reg := NewRegistry()
	root := buildLake(t)
	if _, err := Index(root, reg, Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	e := reg.Entries()[0]
	before := reg.FilesClaimed(e)
	reg.Adjust(e.Fingerprint, 3)
	if got := reg.FilesClaimed(e); got != before+3 {
		t.Fatalf("Adjust(+3): %d -> %d", before, got)
	}
	reg.Adjust(e.Fingerprint, -3)
	if got := reg.FilesClaimed(e); got != before {
		t.Fatalf("Adjust(-3): want %d, got %d", before, got)
	}
	reg.Adjust("no-such-fingerprint", 100) // no-op, no panic
}
