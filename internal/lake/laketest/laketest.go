// Package laketest is the single source of the fixture-lake corpus: the
// three synthetic log formats (multi-line job stanzas, one-line HTTP
// request records, pipe-delimited metrics) and the prose notes file used
// by the lake, serve and example fixtures. The format strings used to be
// copy-pasted per package, so an edit in one place silently skewed the
// corpora apart; every builder of a jobs/requests/metrics lake goes
// through here now.
//
// The package is deliberately testing-free so examples can import it,
// and deterministic: each builder draws from the caller's *rand.Rand (or
// a seed) in a fixed call order, so a (seed, parameters) pair names one
// exact byte sequence.
package laketest

import (
	"fmt"
	"math/rand"
	"strings"
)

// AppendJob appends one multi-line job stanza ("JOB <id>" plus indented
// queue/state lines, ';'-terminated — the multi-line format of the
// fixture lake).
func AppendJob(b *strings.Builder, rng *rand.Rand, jobMod, queueMod int, states []string) {
	fmt.Fprintf(b, "JOB <%d>\n  queue= q%d;\n  state= %s;\n",
		rng.Intn(jobMod), rng.Intn(queueMod), states[rng.Intn(len(states))])
}

// AppendRequest appends one HTTP-access-style request line
// ("VERB /api/vN/item/N CODE").
func AppendRequest(b *strings.Builder, rng *rand.Rand, verbs []string, itemMod int, codes []int) {
	fmt.Fprintf(b, "%s /api/v%d/item/%d %d\n",
		verbs[rng.Intn(len(verbs))], 1+rng.Intn(2), rng.Intn(itemMod),
		codes[rng.Intn(len(codes))])
}

// AppendMetric appends one pipe-delimited gauge reading
// ("metric|cpuN|N.NN|").
func AppendMetric(b *strings.Builder, rng *rand.Rand) {
	fmt.Fprintf(b, "metric|cpu%d|%d.%02d|\n",
		rng.Intn(8), rng.Intn(100), rng.Intn(100))
}

// JobsLog builds a whole job-stanza file from its own seeded stream.
func JobsLog(seed int64, n, jobMod, queueMod int, states []string) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		AppendJob(&b, rng, jobMod, queueMod, states)
	}
	return b.String()
}

// RequestsLog builds a whole request-line file from its own seeded stream.
func RequestsLog(seed int64, n int, verbs []string, itemMod int, codes []int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		AppendRequest(&b, rng, verbs, itemMod, codes)
	}
	return b.String()
}

// MetricsLog builds a whole metrics file from its own seeded stream.
func MetricsLog(seed int64, n int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		AppendMetric(&b, rng)
	}
	return b.String()
}

// Prose is the unstructured notes file every fixture lake carries (the
// crawl must classify it as unstructured, not force a template onto it).
// tier names which tier "moved to pull-based scraping"; dir1 and dir2
// are the two directory-description lines, which vary per fixture.
func Prose(tier, dir1, dir2 string) string {
	return "These logs were collected from the staging cluster.\n" +
		"Rotate anything older than thirty days; ask Dana first!\n" +
		"(The " + tier + " tier moved to pull-based scraping in March.)\n" +
		dir1 + "\n" +
		dir2 + "\n" +
		"TODO: fold the db01 host metrics into their own directory?\n"
}
