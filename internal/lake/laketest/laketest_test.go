package laketest

import (
	"strings"
	"testing"
)

// The builders are shared by the lake, store, serve and example
// fixtures precisely so the corpus cannot skew per package; these pins
// freeze the literal byte forms so an accidental format-string edit
// fails here instead of surfacing as a mysterious digest change in a
// downstream suite.

func TestJobsLogPinned(t *testing.T) {
	got := JobsLog(11, 1, 90000, 6, []string{"DONE", "FAILED", "RUNNING"})
	want := "JOB <66360>\n  queue= q5;\n  state= RUNNING;\n"
	if got != want {
		t.Fatalf("JobsLog = %q, want %q", got, want)
	}
}

func TestRequestsLogPinned(t *testing.T) {
	got := RequestsLog(21, 1, []string{"GET", "PUT", "POST"}, 10000, []int{200, 404, 500})
	want := "POST /api/v2/item/5555 500\n"
	if got != want {
		t.Fatalf("RequestsLog = %q, want %q", got, want)
	}
}

func TestMetricsLogPinned(t *testing.T) {
	got := MetricsLog(31, 1)
	if !strings.HasPrefix(got, "metric|cpu") || strings.Count(got, "|") != 3 {
		t.Fatalf("MetricsLog = %q, want metric|cpuN|N.NN| form", got)
	}
}

func TestProsePinned(t *testing.T) {
	got := Prose("metrics", "d1", "d2")
	want := "These logs were collected from the staging cluster.\n" +
		"Rotate anything older than thirty days; ask Dana first!\n" +
		"(The metrics tier moved to pull-based scraping in March.)\n" +
		"d1\nd2\n" +
		"TODO: fold the db01 host metrics into their own directory?\n"
	if got != want {
		t.Fatalf("Prose = %q, want %q", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	if JobsLog(7, 20, 90000, 6, []string{"A", "B"}) != JobsLog(7, 20, 90000, 6, []string{"A", "B"}) {
		t.Fatal("JobsLog is not deterministic for a fixed seed")
	}
}
