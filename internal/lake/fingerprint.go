// Package lake implements the data-lake indexer: a directory crawl that
// discovers the structure of each *new* log format exactly once — on a
// bounded sample of the first file exhibiting it — and clusters every
// other file under an already-known format via a persistent profile
// registry, so the bulk of the lake runs the discovery-free one-pass
// extraction path.
//
// The crawl is two-phase. Phase 1 walks the files in sorted path order
// and, strictly sequentially, matches a line-aligned sample of each file
// against the registry (best coverage wins); samples no known profile
// claims go through full template discovery, and the learned profile is
// registered under its fingerprint. Phase 2 fans the full-file
// extraction of every claimed file out over a worker pool. Only phase 2
// is concurrent and it carries no cross-file state, so the registry, the
// per-file results and every derived output are byte-identical
// regardless of worker count — the equivalence the package's property
// tests pin down.
package lake

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"datamaran/internal/template"
)

// Fingerprint returns a stable identifier for an ordered set of
// structure templates: the truncated SHA-256 of their canonical
// structural JSON serialization. Two template sets fingerprint equal iff
// they serialize equal, so a fingerprint names a format across runs,
// machines and registry files.
func Fingerprint(templates []*template.Node) string {
	h := sha256.New()
	for _, t := range templates {
		raw, err := json.Marshal(t)
		if err != nil {
			// Template trees are plain data; Marshal cannot fail on
			// them. Keep the signature error-free.
			panic("lake: template marshal: " + err.Error())
		}
		h.Write(raw)
		h.Write([]byte{0}) // unambiguous joint between templates
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
