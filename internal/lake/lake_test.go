package lake

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/lake/laketest"
)

// noiseProse is the lake's unstructured notes file (store_test also
// rewrites a structured file with it to test structure loss).
var noiseProse = laketest.Prose("metrics",
	"jobs/ holds the scheduler dumps -- multi-line, one stanza per job",
	"web/ is the edge tier; latency units are milliseconds")

// buildLake writes a small heterogeneous lake: three formats spread
// over eight files, one prose file, one empty file, and hidden entries
// that the crawl must skip. The file contents come from the shared
// laketest corpus.
func buildLake(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	states := []string{"DONE", "FAILED", "RUNNING"}
	verbs := []string{"GET", "PUT", "POST"}
	for f := 1; f <= 3; f++ {
		write(fmt.Sprintf("a/jobs-%d.log", f),
			laketest.JobsLog(int64(10+f), 60, 90000, 6, states))
	}
	for f := 1; f <= 3; f++ {
		write(fmt.Sprintf("b/req-%d.log", f),
			laketest.RequestsLog(int64(20+f), 150, verbs, 10000, []int{200, 404, 500}))
	}
	for f := 1; f <= 2; f++ {
		write(fmt.Sprintf("c/metrics-%d.log", f),
			laketest.MetricsLog(int64(30+f), 140))
	}
	write("noise.txt", noiseProse)
	write("empty.log", "")
	write(".hidden/skip.log", "GET /api/v1/item/1 200\n")
	write(".hiddenfile", "metric|cpu0|1.00|\n")
	return root
}

// digest renders an Index result and registry into a canonical string:
// every byte of observable output except timings, so two runs compare
// equal iff they agree on everything the user can see.
func digest(t *testing.T, res *Result, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	raw, err := json.Marshal(reg)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(raw)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "summary %+v\n", res.Summary)
	for _, f := range res.Files {
		fmt.Fprintf(&b, "file %s size=%d fp=%s status=%s err=%v\n",
			f.Path, f.Size, f.Fingerprint, f.Status, f.Err)
		if f.Res == nil {
			continue
		}
		for _, s := range f.Res.Structures {
			fmt.Fprintf(&b, "  structure %d %s records=%d coverage=%d\n",
				s.TypeID, s.Template, s.Records, s.Coverage)
		}
		for _, r := range f.Res.Records {
			fmt.Fprintf(&b, "  record %d [%d,%d)", r.TypeID, r.StartLine, r.EndLine)
			for _, fv := range r.Fields {
				fmt.Fprintf(&b, " %d.%d@%d-%d=%q", fv.Col, fv.Rep, fv.Start, fv.End, fv.Value)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  noise %v\n", f.Res.NoiseLines)
	}
	return b.String()
}

func TestIndexDiscoversOncePerFormat(t *testing.T) {
	root := buildLake(t)
	reg := NewRegistry()
	res, err := Index(root, reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Files != 10 {
		t.Fatalf("crawled %d files (hidden entries not skipped?): %+v", s.Files, res.Files)
	}
	if s.FormatsDiscovered != 3 || s.FormatsKnown != 3 {
		t.Fatalf("formats: %+v", s)
	}
	if s.Structured != 8 || s.CacheHits != 5 {
		t.Fatalf("clustering: %+v", s)
	}
	if s.Unstructured != 2 || s.Failed != 0 {
		t.Fatalf("unstructured/failed: %+v", s)
	}
	// Exactly one discovery per format.
	perFP := map[string]int{}
	for _, f := range res.Files {
		if f.Status == StatusDiscovered {
			perFP[f.Fingerprint]++
		}
	}
	for fp, n := range perFP {
		if n != 1 {
			t.Fatalf("format %s discovered %d times", fp, n)
		}
	}
	// Cached files carry full extraction results.
	for _, f := range res.Files {
		if f.Status == StatusMatched && (f.Res == nil || len(f.Res.Records) == 0) {
			t.Fatalf("matched file %s has no records", f.Path)
		}
	}
}

func TestIndexWorkerEquivalence(t *testing.T) {
	// The acceptance property: worker count must not change one byte of
	// the registry or the per-file records. Single-CPU-safe — it checks
	// outputs, not wall clock.
	root := buildLake(t)
	var want string
	for _, workers := range []int{1, 2, 8} {
		reg := NewRegistry()
		res, err := Index(root, reg, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := digest(t, res, reg)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d output differs from workers=1:\n%s\n--- vs ---\n%s", workers, got, want)
		}
	}
}

func TestIndexRegistryReuseAcrossRuns(t *testing.T) {
	root := buildLake(t)
	regPath := filepath.Join(t.TempDir(), "registry.json")

	reg, err := LoadRegistry(regPath) // missing file: empty registry
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Index(root, reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Save(regPath); err != nil {
		t.Fatal(err)
	}

	reg2, err := LoadRegistry(regPath)
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Len() != reg.Len() {
		t.Fatalf("registry round trip lost formats: %d vs %d", reg2.Len(), reg.Len())
	}
	res2, err := Index(root, reg2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.FormatsDiscovered != 0 {
		t.Fatalf("second run re-discovered formats: %+v", res2.Summary)
	}
	if res2.Summary.CacheHits != res2.Summary.Structured {
		t.Fatalf("second run should be all cache hits: %+v", res2.Summary)
	}
	if res2.Summary.Structured != res1.Summary.Structured {
		t.Fatalf("runs disagree on structured files: %+v vs %+v", res2.Summary, res1.Summary)
	}
	// Per-file claim counts accumulate across runs.
	for _, e := range reg2.Entries() {
		if first := reg.Lookup(e.Fingerprint); first == nil || e.Files != 2*first.Files {
			t.Fatalf("entry %s files=%d after two runs (first run %v)", e.Fingerprint, e.Files, first)
		}
	}
}

func TestIndexAppliesCoreOptions(t *testing.T) {
	// An unsatisfiable alpha (no template can cover more than the whole
	// file) turns every file unstructured — the Core options must flow
	// through to discovery.
	root := buildLake(t)
	reg := NewRegistry()
	res, err := Index(root, reg, Config{Core: core.Options{Alpha: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Structured != 0 || reg.Len() != 0 {
		t.Fatalf("alpha=2 still structured files: %+v", res.Summary)
	}
}

func TestIndexMissingRoot(t *testing.T) {
	if _, err := Index(filepath.Join(t.TempDir(), "nope"), NewRegistry(), Config{}); err == nil {
		t.Fatal("missing root should error")
	}
}

func TestReadSampleTrimsToLine(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f.log")
	if err := os.WriteFile(p, []byte("aaaa\nbbbb\ncccc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sample, _, err := ReadSample(p, 7) // cuts inside the second line
	if err != nil {
		t.Fatal(err)
	}
	if string(sample) != "aaaa\n" {
		t.Fatalf("sample = %q, want first complete line only", sample)
	}
	whole, size, err := ReadSample(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if string(whole) != "aaaa\nbbbb\ncccc\n" {
		t.Fatalf("whole-file sample = %q", whole)
	}
	if size != int64(len("aaaa\nbbbb\ncccc\n")) {
		t.Fatalf("reported size = %d", size)
	}

	// A first line longer than the limit yields an empty sample (the
	// file classifies unstructured) instead of a truncated-line format.
	long := filepath.Join(dir, "long.log")
	if err := os.WriteFile(long, []byte(strings.Repeat("x", 64)+"\nshort\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err := ReadSample(long, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 0 {
		t.Fatalf("oversized first line produced sample %q", s)
	}
}
