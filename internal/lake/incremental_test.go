package lake

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/follow"
	"datamaran/internal/template"
)

// incrementalIndex runs one incremental crawl over root.
func incrementalIndex(t *testing.T, root string, reg *Registry, cps *follow.Store) *Result {
	t.Helper()
	res, err := Index(root, reg, Config{Workers: 2, Checkpoints: cps})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fileByPath finds one file result.
func fileByPath(t *testing.T, res *Result, rel string) *FileResult {
	t.Helper()
	for i := range res.Files {
		if res.Files[i].Path == rel {
			return &res.Files[i]
		}
	}
	t.Fatalf("file %s not in result", rel)
	return nil
}

// appendTo appends content to a lake file.
func appendTo(t *testing.T, root, rel, content string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(root, filepath.FromSlash(rel)),
		os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCrawl walks the subsystem through its lifecycle on one
// lake: initial index, no-op re-index, append, rotation, truncation and
// file deletion — checking at every step that whole-file totals agree
// with a from-scratch index of the same tree.
func TestIncrementalCrawl(t *testing.T) {
	root := buildLake(t)
	reg := NewRegistry()
	cps := follow.NewStore()

	// Initial incremental run behaves like a fresh index, plus it
	// checkpoints every file (structured and unstructured).
	res1 := incrementalIndex(t, root, reg, cps)
	if res1.Summary.Resumed != 0 || res1.Summary.Unchanged != 0 {
		t.Fatalf("first run: summary %+v", res1.Summary)
	}
	if got, want := cps.Len(), res1.Summary.Structured+res1.Summary.Unstructured; got != want {
		t.Fatalf("checkpoints = %d, want %d", got, want)
	}
	jobs1 := fileByPath(t, res1, "a/jobs-1.log")
	if jobs1.Inc == nil || jobs1.Inc.Action != follow.ActionFull ||
		jobs1.Inc.TotalRecords != len(jobs1.Res.Records) {
		t.Fatalf("first run jobs-1: %+v", jobs1.Inc)
	}

	// Re-index with nothing changed: every file skips extraction.
	res2 := incrementalIndex(t, root, reg, cps)
	if res2.Summary.Unchanged != res2.Summary.Files || res2.Summary.Resumed != 0 {
		t.Fatalf("no-op run: summary %+v", res2.Summary)
	}
	for i := range res2.Files {
		f := &res2.Files[i]
		if f.Res != nil {
			t.Fatalf("no-op run extracted %s", f.Path)
		}
	}
	if fileByPath(t, res2, "a/jobs-1.log").Inc.TotalRecords != jobs1.Inc.TotalRecords {
		t.Fatal("no-op run lost the record totals")
	}

	// Append whole records plus a dangling partial stanza: the next
	// run must resume, and totals must match a from-scratch index.
	appendTo(t, root, "a/jobs-1.log", "JOB <123>\n  queue= q1;\n  state= DONE;\nJOB <77>\n  queue= q2;\n")
	res3 := incrementalIndex(t, root, reg, cps)
	if res3.Summary.Resumed != 1 || res3.Summary.Unchanged != res3.Summary.Files-1 {
		t.Fatalf("append run: summary %+v", res3.Summary)
	}
	jobs3 := fileByPath(t, res3, "a/jobs-1.log")
	if jobs3.Inc.Action != follow.ActionResume {
		t.Fatalf("append run jobs-1: %+v", jobs3.Inc)
	}
	if jobs3.Inc.BaseRecords+len(jobs3.Res.Records) != jobs3.Inc.TotalRecords {
		t.Fatalf("append run totals inconsistent: %+v (+%d)", jobs3.Inc, len(jobs3.Res.Records))
	}
	assertTotalsMatchScratch(t, root, reg, res3)

	// Rotation: replace content wholesale at a size no smaller than
	// the checkpointed size — caught by the prefix hash, reclassified.
	webRel := "b/req-1.log"
	info, err := os.Stat(filepath.Join(root, filepath.FromSlash(webRel)))
	if err != nil {
		t.Fatal(err)
	}
	var rotated []byte
	for int64(len(rotated)) <= info.Size() {
		rotated = append(rotated, []byte("metric|cpu1|10.00|\n")...)
	}
	if err := os.WriteFile(filepath.Join(root, filepath.FromSlash(webRel)), rotated, 0o644); err != nil {
		t.Fatal(err)
	}
	res4 := incrementalIndex(t, root, reg, cps)
	web4 := fileByPath(t, res4, webRel)
	if web4.Inc.Action != follow.ActionFull || web4.Inc.Reason != "rotated" {
		t.Fatalf("rotated file: %+v", web4.Inc)
	}
	if web4.Status != StatusMatched && web4.Status != StatusDiscovered {
		t.Fatalf("rotated file not reclassified: %v", web4.Status)
	}
	assertTotalsMatchScratch(t, root, reg, res4)

	// Truncation: shrink a file below its checkpoint.
	metricsRel := "c/metrics-1.log"
	mp := filepath.Join(root, filepath.FromSlash(metricsRel))
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	res5 := incrementalIndex(t, root, reg, cps)
	m5 := fileByPath(t, res5, metricsRel)
	if m5.Inc.Action != follow.ActionFull || m5.Inc.Reason != "truncated" {
		t.Fatalf("truncated file: %+v", m5.Inc)
	}
	assertTotalsMatchScratch(t, root, reg, res5)

	// Deletion: the stale checkpoint is pruned.
	if err := os.Remove(filepath.Join(root, "empty.log")); err != nil {
		t.Fatal(err)
	}
	incrementalIndex(t, root, reg, cps)
	if cps.Get("empty.log") != nil {
		t.Fatal("stale checkpoint for deleted file survived the prune")
	}
}

// assertTotalsMatchScratch indexes the same tree from scratch (fresh
// registry, no checkpoints) and checks every structured file's
// whole-file totals agree with the incremental run's bookkeeping.
func assertTotalsMatchScratch(t *testing.T, root string, reg *Registry, inc *Result) {
	t.Helper()
	scratch, err := Index(root, NewRegistry(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scratch.Files {
		sf := &scratch.Files[i]
		if sf.Res == nil {
			continue
		}
		f := fileByPath(t, inc, sf.Path)
		if f.Inc == nil {
			t.Fatalf("%s: no incremental info", sf.Path)
		}
		if f.Inc.TotalRecords != len(sf.Res.Records) || f.Inc.TotalNoise != len(sf.Res.NoiseLines) {
			t.Errorf("%s: incremental totals %d/%d, from-scratch %d/%d",
				sf.Path, f.Inc.TotalRecords, f.Inc.TotalNoise,
				len(sf.Res.Records), len(sf.Res.NoiseLines))
		}
	}
}

// TestIncrementalWorkerEquivalence pins worker-count invariance of the
// incremental path: the digests of a resumed crawl must be identical at
// any worker count.
func TestIncrementalWorkerEquivalence(t *testing.T) {
	root := buildLake(t)
	seedReg := NewRegistry()
	seedCps := follow.NewStore()
	incrementalIndex(t, root, seedReg, seedCps)
	appendTo(t, root, "a/jobs-2.log", "JOB <5>\n  queue= q9;\n  state= DONE;\n")
	appendTo(t, root, "c/metrics-2.log", "metric|cpu7|1.23|\n")

	var want string
	for _, workers := range []int{1, 2, 8} {
		reg := cloneRegistry(t, seedReg)
		cps := cloneStore(t, seedCps)
		res, err := Index(root, reg, Config{Workers: workers, Checkpoints: cps})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Resumed != 2 {
			t.Fatalf("workers=%d: resumed %d, want 2", workers, res.Summary.Resumed)
		}
		got := digest(t, res, reg) + storeDigest(t, cps)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d: digest differs from workers=1", workers)
		}
	}
}

func cloneRegistry(t *testing.T, reg *Registry) *Registry {
	t.Helper()
	raw, err := reg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	out := NewRegistry()
	if err := out.UnmarshalJSON(raw); err != nil {
		t.Fatal(err)
	}
	return out
}

func cloneStore(t *testing.T, s *follow.Store) *follow.Store {
	t.Helper()
	raw, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	out := follow.NewStore()
	if err := out.UnmarshalJSON(raw); err != nil {
		t.Fatal(err)
	}
	return out
}

func storeDigest(t *testing.T, s *follow.Store) string {
	t.Helper()
	raw, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestIndexContextCancelled: a cancelled context aborts the crawl with
// its error instead of producing a partial result.
func TestIndexContextCancelled(t *testing.T) {
	root := buildLake(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := IndexContext(ctx, root, NewRegistry(), Config{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRegistryConcurrentUse exercises the shared-handle contract under
// the race detector: readers (Snapshot, Lookup, Entries, MarshalJSON)
// race claim mutations and Adds without corruption.
func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	tpl := template.Struct(template.Field(), template.Lit(",\n")).Normalize()
	base, _ := reg.Add([]*template.Node{tpl})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					reg.Claim(base)
				case 1:
					for _, fi := range reg.Snapshot() {
						_ = fi.Files
					}
				case 2:
					variant := template.Struct(template.Lit(fmt.Sprintf("w%d-%d ", w, i)),
						template.Field(), template.Lit("\n")).Normalize()
					if e, _ := reg.Add([]*template.Node{variant}); e != nil {
						reg.Claim(e)
					}
				case 3:
					if _, err := reg.MarshalJSON(); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if reg.FilesClaimed(base) != 4*50 {
		t.Fatalf("claims = %d, want %d", reg.FilesClaimed(base), 4*50)
	}
	if _, err := core.ApplyTemplatesParallel([]byte("x,\n"), reg.Entries()[0].Templates, 1); err != nil {
		t.Fatalf("entry unusable after concurrent churn: %v", err)
	}
}
