package lake

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datamaran/internal/follow"
	"datamaran/internal/semtype"
)

// storeRows renders every table of the store — schema line plus each
// row — into one canonical string.
func storeRows(t *testing.T, s *SegmentStore) string {
	t.Helper()
	var b strings.Builder
	for _, ti := range s.Tables() {
		fmt.Fprintf(&b, "table %s cols=%v rows=%d segs=%d\n", ti.Name, ti.Columns, ti.Rows, ti.Segments)
		sc, err := s.Scan(ti.Name)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			row, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "  %q\n", row)
			n++
		}
		sc.Close()
		if n != ti.Rows {
			t.Fatalf("table %s: scanned %d rows, manifest says %d", ti.Name, n, ti.Rows)
		}
	}
	return b.String()
}

// crawlWithStore runs one crawl with a store transaction and commits
// it.
func crawlWithStore(t *testing.T, root string, reg *Registry, cps *follow.Store, s *SegmentStore) *Result {
	t.Helper()
	txn := s.Begin()
	res, err := Index(root, reg, Config{Workers: 2, Checkpoints: cps, Segments: txn})
	if err != nil {
		txn.Abort()
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSegmentStoreRoundTrip(t *testing.T) {
	root := buildLake(t)
	reg := NewRegistry()
	dir := t.TempDir()
	s, err := OpenSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := crawlWithStore(t, root, reg, follow.NewStore(), s)

	tables := s.Tables()
	if len(tables) == 0 {
		t.Fatal("no tables after crawl")
	}
	// Every structured file contributes a segment; rows equal the
	// extracted record counts.
	wantRows := map[string]int{}
	for _, f := range res.Files {
		if f.Res == nil {
			continue
		}
		for _, rec := range f.Res.Records {
			wantRows[tableName(f.Fingerprint, rec.TypeID)]++
		}
	}
	gotRows := map[string]int{}
	for _, ti := range tables {
		gotRows[ti.Name] = ti.Rows
		if len(ti.Columns) == 0 {
			t.Fatalf("table %s has no columns", ti.Name)
		}
		if len(ti.Kinds) != len(ti.Columns) {
			t.Fatalf("table %s: %d kinds for %d columns", ti.Name, len(ti.Kinds), len(ti.Columns))
		}
	}
	for name, want := range wantRows {
		if gotRows[name] != want {
			t.Fatalf("table %s: %d rows, want %d (all: %v)", name, gotRows[name], want, gotRows)
		}
	}

	// A fresh handle over the same directory sees identical bytes.
	dump := storeRows(t, s)
	s2, err := OpenSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dump2 := storeRows(t, s2); dump2 != dump {
		t.Fatalf("reopened store differs:\n%s\n--- vs ---\n%s", dump2, dump)
	}

	// The metrics format (metric|cpuN|X.YY|) must classify its numeric
	// column as numeric.
	numeric := false
	for _, ti := range tables {
		for _, k := range ti.Kinds {
			if k.Numeric() {
				numeric = true
			}
		}
	}
	if !numeric {
		t.Fatalf("no numeric column classified across %v", tables)
	}
}

func TestSegmentStoreIncrementalMatchesScratch(t *testing.T) {
	root := buildLake(t)

	// Grow the store incrementally: crawl, append to one file, crawl
	// again (resume path), delete another file, crawl again (prune).
	reg := NewRegistry()
	cps := follow.NewStore()
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)
	appendTo(t, root, "a/jobs-1.log", "JOB <123>\n  queue= q1;\n  state= DONE;\n")
	res := crawlWithStore(t, root, reg, cps, s)
	if res.Summary.Resumed != 1 {
		t.Fatalf("append run: %+v", res.Summary)
	}
	if err := os.Remove(filepath.Join(root, "b", "req-2.log")); err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)

	// A from-scratch crawl of the same tree must yield identical rows.
	scratch, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, NewRegistry(), follow.NewStore(), scratch)
	got, want := storeRows(t, s), storeRows(t, scratch)
	if got != want {
		t.Fatalf("incremental store differs from scratch:\n%s\n--- vs ---\n%s", got, want)
	}
}

func TestSegmentStoreStoreEnabledAfterCheckpoints(t *testing.T) {
	// A lake checkpointed before the store existed: the next crawl must
	// take the full path once so every file's rows land in the store.
	root := buildLake(t)
	reg := NewRegistry()
	cps := follow.NewStore()
	if _, err := Index(root, reg, Config{Workers: 2, Checkpoints: cps}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := crawlWithStore(t, root, reg, cps, s)
	// Unstructured files have no rows, so their checkpointed skip is
	// still sound; every structured file must take the full path.
	for _, f := range res.Files {
		if f.Fingerprint != "" && f.Inc != nil && f.Inc.Action == follow.ActionUnchanged {
			t.Fatalf("structured %s skipped despite empty store: %+v", f.Path, res.Summary)
		}
	}

	scratch, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, NewRegistry(), follow.NewStore(), scratch)
	if got, want := storeRows(t, s), storeRows(t, scratch); got != want {
		t.Fatalf("migrated store differs from scratch:\n%s\n--- vs ---\n%s", got, want)
	}
}

func TestSegmentStoreAbortLeavesStoreUntouched(t *testing.T) {
	root := buildLake(t)
	reg := NewRegistry()
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, follow.NewStore(), s)
	before := storeRows(t, s)

	// A second crawl whose transaction aborts must leave both the
	// directory contents and the open handle's view unchanged.
	txn := s.Begin()
	if _, err := Index(root, reg, Config{Workers: 2, Segments: txn}); err != nil {
		t.Fatal(err)
	}
	txn.Abort()
	if got := storeRows(t, s); got != before {
		t.Fatalf("abort changed the store:\n%s\n--- vs ---\n%s", got, before)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".stage-") {
			t.Fatalf("stage file %s survived abort", e.Name())
		}
	}
	reopened, err := OpenSegmentStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got := storeRows(t, reopened); got != before {
		t.Fatal("abort changed the on-disk store")
	}
}

func TestSegmentStoreResolve(t *testing.T) {
	root := buildLake(t)
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, NewRegistry(), follow.NewStore(), s)
	tables := s.Tables()
	for _, ti := range tables {
		got, err := s.Resolve(ti.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != ti.Name {
			t.Fatalf("Resolve(%s) = %s", ti.Name, got.Name)
		}
		// A short unique prefix of the fingerprint also resolves.
		prefix := ti.Fingerprint[:6]
		unique := true
		for _, other := range tables {
			if other.Name != ti.Name && other.Type == ti.Type && strings.HasPrefix(other.Fingerprint, prefix) {
				unique = false
			}
		}
		if unique && ti.Type == 0 {
			got, err := s.Resolve(prefix)
			if err != nil {
				t.Fatalf("Resolve(%s): %v", prefix, err)
			}
			if got.Name != ti.Name {
				t.Fatalf("Resolve(%s) = %s, want %s", prefix, got.Name, ti.Name)
			}
		}
	}
	if _, err := s.Resolve("nope"); err == nil {
		t.Fatal("Resolve of unknown table succeeded")
	}
}

func TestSegmentStoreUnstructuredFileDropped(t *testing.T) {
	// A file that loses its structure (rewritten as prose) loses its
	// rows on the next crawl.
	root := buildLake(t)
	reg := NewRegistry()
	cps := follow.NewStore()
	s, err := OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)
	hasSeg := func(rel string) bool {
		for _, ti := range s.Tables() {
			sc, err := s.Scan(ti.Name)
			if err != nil {
				t.Fatal(err)
			}
			sc.Close()
		}
		man := s.snapshot()
		for _, tbl := range man.Tables {
			for _, seg := range tbl.Segments {
				if seg.Path == rel {
					return true
				}
			}
		}
		return false
	}
	if !hasSeg("c/metrics-1.log") {
		t.Fatal("metrics-1 has no segment after first crawl")
	}
	if err := os.WriteFile(filepath.Join(root, "c", "metrics-1.log"), []byte(noiseProse), 0o644); err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, reg, cps, s)
	if hasSeg("c/metrics-1.log") {
		t.Fatal("unstructured rewrite kept its rows")
	}
}

func TestMergeKindsAndClassify(t *testing.T) {
	if k := semtype.ClassifyValues([]string{"1", "2", "300"}); k != semtype.KindInt {
		t.Fatalf("ints classified as %s", k)
	}
	if k := semtype.ClassifyValues([]string{"1.5", "2", "3"}); k != semtype.KindFloat {
		t.Fatalf("mixed numbers classified as %s", k)
	}
	if k := semtype.ClassifyValues([]string{"a", "2"}); k != semtype.KindString {
		t.Fatalf("mixed text classified as %s", k)
	}
	if k := semtype.MergeKinds(semtype.KindInt, semtype.KindFloat); k != semtype.KindFloat {
		t.Fatalf("int+float merged to %s", k)
	}
	if k := semtype.MergeKinds(semtype.KindInt, semtype.KindString); k != semtype.KindString {
		t.Fatalf("int+string merged to %s", k)
	}
}
