package lake

import (
	"bytes"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"datamaran/internal/core"
	"datamaran/internal/pipeline"
	"datamaran/internal/template"
)

// DefaultSampleBytes is the per-file prefix examined to classify a file
// (profile matching, and template discovery for new formats).
const DefaultSampleBytes = 256 << 10

// DefaultMatchThreshold is the minimum fraction of a file's sample that
// a known profile must cover to claim the file.
const DefaultMatchThreshold = 0.5

// Config parameterizes an Index run.
type Config struct {
	// Core holds the discovery/extraction options applied per file.
	Core core.Options
	// Workers is the file-level fan-out of the extraction phase
	// (<= 0 means GOMAXPROCS). Worker count never changes any output.
	Workers int
	// SampleBytes caps the per-file prefix used for classification
	// (<= 0 means DefaultSampleBytes). Samples are trimmed to the last
	// complete line.
	SampleBytes int
	// MatchThreshold is the minimum sample coverage fraction for a
	// known profile to claim a file (<= 0 means DefaultMatchThreshold).
	MatchThreshold float64
}

func (c Config) withDefaults() Config {
	if c.SampleBytes <= 0 {
		c.SampleBytes = DefaultSampleBytes
	}
	if c.MatchThreshold <= 0 {
		c.MatchThreshold = DefaultMatchThreshold
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Status classifies how the indexer handled one file.
type Status int

const (
	// StatusDiscovered marks a file that went through full template
	// discovery because no registered profile claimed its sample.
	StatusDiscovered Status = iota
	// StatusMatched marks a file claimed by an already-registered
	// profile, extracted with no discovery.
	StatusMatched
	// StatusUnstructured marks a file in which discovery found no
	// record structure (or an empty file).
	StatusUnstructured
	// StatusFailed marks a file the indexer could not process.
	StatusFailed
)

// String names the status for human-readable summaries.
func (s Status) String() string {
	switch s {
	case StatusDiscovered:
		return "discovered"
	case StatusMatched:
		return "matched"
	case StatusUnstructured:
		return "unstructured"
	case StatusFailed:
		return "failed"
	}
	return "unknown"
}

// FileResult is the indexing outcome of one file.
type FileResult struct {
	// Path is the file's slash-separated path relative to the indexed
	// root.
	Path string
	// Size is the file size in bytes.
	Size int64
	// Fingerprint names the format that claimed the file ("" for
	// unstructured or failed files).
	Fingerprint string
	// Status reports how the file was handled.
	Status Status
	// Res holds the full-file extraction result (nil for unstructured
	// or failed files).
	Res *core.Result
	// Err is the failure for StatusFailed files.
	Err error
}

// Summary aggregates one Index run.
type Summary struct {
	// Files is the number of regular files crawled.
	Files int
	// Structured counts files extracted under some format.
	Structured int
	// Unstructured counts files with no discoverable structure.
	Unstructured int
	// Failed counts files that errored.
	Failed int
	// FormatsKnown is the registry size after the run.
	FormatsKnown int
	// FormatsDiscovered counts formats first registered by this run.
	FormatsDiscovered int
	// CacheHits counts files claimed by a profile without discovery.
	CacheHits int
}

// Result is a completed Index run.
type Result struct {
	// Files lists every crawled file in sorted path order.
	Files []FileResult
	// NewFormats holds the fingerprints first registered by this run —
	// the authoritative "discovered this run" set (a file can go
	// through discovery yet re-derive an already-known format).
	NewFormats map[string]bool
	// Summary aggregates the run.
	Summary Summary
}

// Index crawls the tree rooted at root, classifies every regular file
// against reg (discovering and registering new formats as needed), and
// extracts each structured file with its format's profile. reg is
// updated in place; persisting it is the caller's concern.
//
// Hidden files and directories (name starting with ".") are skipped.
// The classification phase runs sequentially in sorted path order, so
// reg and all results are independent of cfg.Workers.
func Index(root string, reg *Registry, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	paths, walkFails, err := crawl(root)
	if err != nil {
		return nil, err
	}

	// Phase 1 — sequential classify/discover on bounded samples.
	files := make([]FileResult, len(paths))
	entries := make([]*Entry, len(paths))
	newFPs := map[string]bool{}
	for i, rel := range paths {
		files[i] = FileResult{Path: rel}
		full := filepath.Join(root, filepath.FromSlash(rel))
		sample, size, err := readSample(full, cfg.SampleBytes)
		files[i].Size = size
		if err != nil {
			files[i].Status = StatusFailed
			files[i].Err = err
			continue
		}
		if len(sample) == 0 {
			files[i].Status = StatusUnstructured
			continue
		}
		if e := matchSample(sample, reg, cfg.MatchThreshold); e != nil {
			e.Files++
			entries[i] = e
			files[i].Status = StatusMatched
			files[i].Fingerprint = e.Fingerprint
			continue
		}
		e, isNew, err := discoverSample(sample, reg, cfg.Core)
		if err != nil {
			files[i].Status = StatusFailed
			files[i].Err = err
			continue
		}
		if e == nil {
			files[i].Status = StatusUnstructured
			continue
		}
		e.Files++
		entries[i] = e
		files[i].Status = StatusDiscovered
		files[i].Fingerprint = e.Fingerprint
		if isNew {
			newFPs[e.Fingerprint] = true
		}
	}

	// Entries the walk itself could not reach surface as failed files
	// rather than aborting the crawl.
	for _, wf := range walkFails {
		files = append(files, FileResult{Path: wf.rel, Status: StatusFailed, Err: wf.err})
		entries = append(entries, nil)
	}
	sortByPath(files, entries)

	// Phase 2 — parallel full-file extraction of every claimed file.
	// Each file is independent and its in-file pipeline runs with
	// Workers=1, so scheduling cannot reorder or change anything.
	extractAll(root, files, entries, cfg)

	// A file that classified in phase 1 but failed extraction in phase
	// 2 (rotated away, truncated mid-read) holds no format claim:
	// release it so the registry and the result agree. Sequential, so
	// no contention with the just-finished pool.
	for i := range files {
		if files[i].Status == StatusFailed && entries[i] != nil {
			entries[i].Files--
			files[i].Fingerprint = ""
		}
	}

	res := &Result{Files: files, NewFormats: newFPs}
	res.Summary = summarize(files, reg, len(newFPs))
	return res, nil
}

// walkFailure is a directory entry the crawl could not reach.
type walkFailure struct {
	rel string
	err error
}

// crawl lists the regular files under root as sorted slash-separated
// relative paths, skipping hidden files and directories. Unreachable
// entries are reported, not fatal — only a broken root aborts.
func crawl(root string) ([]string, []walkFailure, error) {
	var paths []string
	var fails []walkFailure
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == root {
				return err
			}
			rel, rerr := filepath.Rel(root, path)
			if rerr != nil {
				rel = path
			}
			fails = append(fails, walkFailure{rel: filepath.ToSlash(rel), err: err})
			if d != nil && d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") && path != root {
			if d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if !d.Type().IsRegular() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		paths = append(paths, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	return paths, fails, nil
}

// sortByPath co-sorts the file results and their registry entries.
func sortByPath(files []FileResult, entries []*Entry) {
	order := make([]int, len(files))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return files[order[a]].Path < files[order[b]].Path })
	sortedF := make([]FileResult, len(files))
	sortedE := make([]*Entry, len(entries))
	for dst, src := range order {
		sortedF[dst] = files[src]
		sortedE[dst] = entries[src]
	}
	copy(files, sortedF)
	copy(entries, sortedE)
}

// readSample reads up to limit bytes of the file, trimmed back to the
// last complete line when the file continues past the sample (a partial
// trailing line would distort both matching and discovery). A file
// whose first line alone exceeds the limit yields an empty sample — the
// file classifies as unstructured rather than a format being invented
// from a truncated line. The returned size is the file size observed by
// the same open handle that produced the sample.
func readSample(path string, limit int) ([]byte, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	size := int64(0)
	bufSize := limit + 1
	if info, err := f.Stat(); err == nil {
		size = info.Size()
		if size < int64(limit) {
			bufSize = int(size) + 1 // small file: skip the full-budget alloc
		}
	}
	buf := make([]byte, bufSize)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, size, err
	}
	if n < len(buf) {
		return buf[:n], size, nil // whole file
	}
	sample := buf[:min(n, limit)]
	i := bytes.LastIndexByte(sample, '\n')
	return sample[:i+1], size, nil // i == -1: no complete line, empty sample
}

// matchSample returns the registered profile with the best sample
// coverage at or above the threshold (ties keep the earlier entry), or
// nil when no profile claims the sample.
func matchSample(sample []byte, reg *Registry, threshold float64) *Entry {
	var best *Entry
	bestCov := 0.0
	for _, e := range reg.Entries() {
		res, err := core.ApplyTemplatesParallel(sample, e.Templates, 1)
		if err != nil {
			continue
		}
		covered := 0
		for _, s := range res.Structures {
			covered += s.Coverage
		}
		cov := float64(covered) / float64(len(sample))
		if cov >= threshold && cov > bestCov {
			best, bestCov = e, cov
		}
	}
	return best
}

// discoverSample runs full template discovery on the sample and
// registers the learned profile. It returns (nil, false, nil) when the
// sample has no discoverable structure.
func discoverSample(sample []byte, reg *Registry, opts core.Options) (*Entry, bool, error) {
	opts.Workers = 1 // phase 1 is the strictly sequential phase
	res, err := core.Extract(sample, opts)
	if err != nil {
		if err == core.ErrEmptyInput {
			return nil, false, nil
		}
		return nil, false, err
	}
	if len(res.Structures) == 0 {
		return nil, false, nil
	}
	templates := make([]*template.Node, 0, len(res.Structures))
	for _, s := range res.Structures {
		templates = append(templates, s.Template)
	}
	e, isNew := reg.Add(templates)
	return e, isNew, nil
}

// extractAll runs the full-file profile extraction of every claimed
// file over the worker pool, writing results into files by index.
func extractAll(root string, files []FileResult, entries []*Entry, cfg Config) {
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				extractOne(root, &files[i], entries[i], cfg)
			}
		}()
	}
	for i := range files {
		if entries[i] != nil {
			indices <- i
		}
	}
	close(indices)
	wg.Wait()
}

// extractOne streams one claimed file through the discovery-free
// pipeline with its format's templates.
func extractOne(root string, fr *FileResult, e *Entry, cfg Config) {
	full := filepath.Join(root, filepath.FromSlash(fr.Path))
	f, err := os.Open(full)
	if err != nil {
		fr.Status = StatusFailed
		fr.Err = err
		return
	}
	defer f.Close()
	res, err := pipeline.Run(f, pipeline.Config{
		Core:      cfg.Core,
		Templates: e.Templates,
		Workers:   1, // parallelism lives at the file level
	})
	if err != nil {
		fr.Status = StatusFailed
		fr.Err = err
		return
	}
	fr.Res = res
}

// summarize aggregates the per-file outcomes.
func summarize(files []FileResult, reg *Registry, discovered int) Summary {
	s := Summary{Files: len(files), FormatsKnown: reg.Len(), FormatsDiscovered: discovered}
	for _, f := range files {
		switch f.Status {
		case StatusDiscovered:
			s.Structured++
		case StatusMatched:
			s.Structured++
			s.CacheHits++
		case StatusUnstructured:
			s.Unstructured++
		case StatusFailed:
			s.Failed++
		}
	}
	return s
}
