package lake

import (
	"bytes"
	"context"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"datamaran/internal/core"
	"datamaran/internal/follow"
	"datamaran/internal/obsv"
	"datamaran/internal/pipeline"
	"datamaran/internal/template"
)

// DefaultSampleBytes is the per-file prefix examined to classify a file
// (profile matching, and template discovery for new formats).
const DefaultSampleBytes = 256 << 10

// DefaultMatchThreshold is the minimum fraction of a file's sample that
// a known profile must cover to claim the file.
const DefaultMatchThreshold = 0.5

// Config parameterizes an Index run.
type Config struct {
	// Core holds the discovery/extraction options applied per file.
	Core core.Options
	// Workers is the file-level fan-out of the extraction phase
	// (<= 0 means GOMAXPROCS). Worker count never changes any output.
	Workers int
	// SampleBytes caps the per-file prefix used for classification
	// (<= 0 means DefaultSampleBytes). Samples are trimmed to the last
	// complete line.
	SampleBytes int
	// MatchThreshold is the minimum sample coverage fraction for a
	// known profile to claim a file (<= 0 means DefaultMatchThreshold).
	MatchThreshold float64
	// Checkpoints, when non-nil, enables the incremental crawl: files
	// whose checkpoint still matches the registry and the on-disk
	// identity heuristics skip classification entirely and resume
	// extraction at the checkpointed offset (unchanged files skip
	// extraction altogether). Rotated, truncated or reclassified files
	// fall back to the full path. The store is updated in place;
	// persisting it is the caller's concern.
	Checkpoints *follow.Store
	// Segments, when non-nil, records every structured file's extracted
	// rows into the columnar record store: full extractions rewrite the
	// file's segments, incremental resumes append, unchanged files are
	// untouched, and files that left the lake (or lost their structure)
	// are pruned. The transaction is staged — committing (or aborting)
	// it is the caller's concern, mirroring registry persistence.
	Segments *StoreTxn
	// Filter, when non-nil, restricts the crawl to the files it accepts
	// (slash-separated paths relative to root). Rejected files are not
	// classified, extracted or counted, and their checkpoints and
	// record-store segments are left exactly as they are — departed-file
	// pruning applies only to accepted paths. This is the scoped-crawl
	// hook of the serve daemon's per-format reindex.
	Filter func(rel string) bool
	// Metrics, when non-nil, receives the crawl's per-stage timings
	// (walk/classify/extract histograms) and file/record/byte counters,
	// labeled by status, incremental action and format fingerprint —
	// all bounded label sets. Nil records nothing.
	Metrics *obsv.Registry
	// Logger, when non-nil, receives one structured log/slog event per
	// crawl with the stage timings and the run summary.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.SampleBytes <= 0 {
		c.SampleBytes = DefaultSampleBytes
	}
	if c.MatchThreshold <= 0 {
		c.MatchThreshold = DefaultMatchThreshold
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Status classifies how the indexer handled one file.
type Status int

const (
	// StatusDiscovered marks a file that went through full template
	// discovery because no registered profile claimed its sample.
	StatusDiscovered Status = iota
	// StatusMatched marks a file claimed by an already-registered
	// profile, extracted with no discovery.
	StatusMatched
	// StatusUnstructured marks a file in which discovery found no
	// record structure (or an empty file).
	StatusUnstructured
	// StatusFailed marks a file the indexer could not process.
	StatusFailed
)

// String names the status for human-readable summaries.
func (s Status) String() string {
	switch s {
	case StatusDiscovered:
		return "discovered"
	case StatusMatched:
		return "matched"
	case StatusUnstructured:
		return "unstructured"
	case StatusFailed:
		return "failed"
	}
	return "unknown"
}

// FileResult is the indexing outcome of one file.
type FileResult struct {
	// Path is the file's slash-separated path relative to the indexed
	// root.
	Path string
	// Size is the file size in bytes.
	Size int64
	// Fingerprint names the format that claimed the file ("" for
	// unstructured or failed files).
	Fingerprint string
	// Status reports how the file was handled.
	Status Status
	// Res holds the extraction result (nil for unstructured, failed and
	// incrementally-unchanged files). In an incremental crawl of a
	// resumed file it covers only [checkpoint, EOF) — whole-file
	// coordinates, with Inc carrying the finalized-prefix counts.
	Res *core.Result
	// Err is the failure for StatusFailed files.
	Err error
	// Inc describes the incremental handling (nil outside incremental
	// crawls; set for structured files and for unchanged-unstructured
	// skips).
	Inc *IncInfo
}

// IncInfo is the incremental-crawl bookkeeping of one structured file.
type IncInfo struct {
	// Action says how the file was extracted (full, resumed,
	// unchanged).
	Action follow.Action
	// Reason explains a full extraction: "new", "rotated", "truncated",
	// "profile-gone" (checkpointed fingerprint no longer registered).
	Reason string
	// BaseRecords and BaseNoise count records and noise lines finalized
	// before the region Res covers (0 for full extractions).
	BaseRecords, BaseNoise int
	// TotalRecords and TotalNoise are whole-file counts: Base plus the
	// emitted region (for unchanged files, the checkpointed totals).
	TotalRecords, TotalNoise int
}

// Summary aggregates one Index run.
type Summary struct {
	// Files is the number of regular files crawled.
	Files int
	// Structured counts files extracted under some format.
	Structured int
	// Unstructured counts files with no discoverable structure.
	Unstructured int
	// Failed counts files that errored.
	Failed int
	// FormatsKnown is the registry size after the run.
	FormatsKnown int
	// FormatsDiscovered counts formats first registered by this run.
	FormatsDiscovered int
	// CacheHits counts files claimed by a profile without discovery.
	CacheHits int
	// Resumed counts files whose extraction resumed at a checkpoint
	// (incremental crawls only).
	Resumed int
	// Unchanged counts checkpointed files skipped entirely because
	// nothing changed (incremental crawls only).
	Unchanged int
}

// Result is a completed Index run.
type Result struct {
	// Files lists every crawled file in sorted path order.
	Files []FileResult
	// NewFormats holds the fingerprints first registered by this run —
	// the authoritative "discovered this run" set (a file can go
	// through discovery yet re-derive an already-known format).
	NewFormats map[string]bool
	// Summary aggregates the run.
	Summary Summary
}

// Index crawls the tree rooted at root, classifies every regular file
// against reg (discovering and registering new formats as needed), and
// extracts each structured file with its format's profile. reg is
// updated in place; persisting it is the caller's concern.
//
// Hidden files and directories (name starting with ".") are skipped.
// The classification phase runs sequentially in sorted path order, so
// reg and all results are independent of cfg.Workers.
func Index(root string, reg *Registry, cfg Config) (*Result, error) {
	return IndexContext(context.Background(), root, reg, cfg)
}

// IndexContext is Index with cancellation: ctx is checked between files
// in the classification phase and between files (and between shards, in
// the per-file pipeline) in the extraction phase, so the daemon can
// abort a long crawl within one shard of the cancel.
func IndexContext(ctx context.Context, root string, reg *Registry, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	walkStart := time.Now()
	paths, walkFails, err := crawl(root)
	if err != nil {
		return nil, err
	}
	walkDur := time.Since(walkStart)

	// A scoped crawl sees only the files its filter accepts; everything
	// else is invisible — untouched checkpoints, untouched segments,
	// absent from the result.
	if cfg.Filter != nil {
		kept := paths[:0]
		for _, rel := range paths {
			if cfg.Filter(rel) {
				kept = append(kept, rel)
			}
		}
		paths = kept
		keptFails := walkFails[:0]
		for _, wf := range walkFails {
			if cfg.Filter(wf.rel) {
				keptFails = append(keptFails, wf)
			}
		}
		walkFails = keptFails
	}

	// Phase 1 — sequential classify/discover on bounded samples.
	// Checkpointed files that still pass the identity heuristics skip
	// this entirely: their claim is the checkpointed fingerprint.
	classifyStart := time.Now()
	files := make([]FileResult, len(paths))
	entries := make([]*Entry, len(paths))
	resumes := make([]*follow.Checkpoint, len(paths))
	newFPs := map[string]bool{}
	for i, rel := range paths {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		files[i] = FileResult{Path: rel}
		full := filepath.Join(root, filepath.FromSlash(rel))
		fullReason := ""
		if cfg.Checkpoints != nil {
			done, reason := classifyFromCheckpoint(full, rel, reg, cfg, &files[i], &entries[i], &resumes[i])
			if done {
				continue
			}
			fullReason = reason
		}
		sample, size, err := ReadSample(full, cfg.SampleBytes)
		files[i].Size = size
		if err != nil {
			files[i].Status = StatusFailed
			files[i].Err = err
			continue
		}
		if len(sample) == 0 {
			files[i].Status = StatusUnstructured
			observeUnstructured(cfg, full, rel)
			continue
		}
		if e := MatchSample(sample, reg, cfg.MatchThreshold); e != nil {
			reg.Claim(e)
			entries[i] = e
			files[i].Status = StatusMatched
			files[i].Fingerprint = e.Fingerprint
			markFull(cfg, &files[i], fullReason)
			continue
		}
		e, isNew, err := discoverSample(sample, reg, cfg.Core)
		if err != nil {
			files[i].Status = StatusFailed
			files[i].Err = err
			continue
		}
		if e == nil {
			files[i].Status = StatusUnstructured
			observeUnstructured(cfg, full, rel)
			continue
		}
		reg.Claim(e)
		entries[i] = e
		files[i].Status = StatusDiscovered
		files[i].Fingerprint = e.Fingerprint
		markFull(cfg, &files[i], fullReason)
		if isNew {
			newFPs[e.Fingerprint] = true
		}
	}

	// Entries the walk itself could not reach surface as failed files
	// rather than aborting the crawl.
	for _, wf := range walkFails {
		files = append(files, FileResult{Path: wf.rel, Status: StatusFailed, Err: wf.err})
		entries = append(entries, nil)
		resumes = append(resumes, nil)
	}
	sortByPath(files, entries, resumes)
	classifyDur := time.Since(classifyStart)

	// Phase 2 — parallel full-file extraction of every claimed file.
	// Each file is independent and its in-file pipeline runs with
	// Workers=1, so scheduling cannot reorder or change anything.
	extractStart := time.Now()
	extractAll(ctx, root, files, entries, resumes, cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	extractDur := time.Since(extractStart)

	// A file that classified in phase 1 but failed extraction in phase
	// 2 (rotated away, truncated mid-read) holds no format claim:
	// release it so the registry and the result agree. Sequential, so
	// no contention with the just-finished pool.
	for i := range files {
		if files[i].Status == StatusFailed && entries[i] != nil {
			reg.Unclaim(entries[i])
			files[i].Fingerprint = ""
		}
	}

	// Checkpoints of files that left the lake are stale: prune them so
	// the store tracks the crawl (a failed file keeps its checkpoint —
	// it may be back next run). A scoped crawl prunes only within its
	// scope: paths its filter rejects were never examined, so their
	// checkpoints stay.
	keep := func(p string) bool { return cfg.Filter != nil && !cfg.Filter(p) }
	if cfg.Checkpoints != nil {
		crawled := make(map[string]bool, len(files))
		for i := range files {
			crawled[files[i].Path] = true
		}
		cfg.Checkpoints.Retain(func(p string) bool { return crawled[p] || keep(p) })
	}

	// The record store tracks the crawl the same way: files that lost
	// their structure lose their rows, departed files are pruned, and
	// failed files keep theirs (mirroring their kept checkpoints).
	if cfg.Segments != nil {
		crawled := make(map[string]bool, len(files))
		for i := range files {
			crawled[files[i].Path] = true
			if files[i].Status == StatusUnstructured {
				cfg.Segments.Drop(files[i].Path)
			}
		}
		cfg.Segments.Retain(func(p string) bool { return crawled[p] || keep(p) })
	}

	res := &Result{Files: files, NewFormats: newFPs}
	res.Summary = summarize(files, reg, len(newFPs))
	recordCrawl(cfg, res, walkDur, classifyDur, extractDur)
	return res, nil
}

// recordCrawl folds one finished crawl into the metrics registry and
// the structured log. Stage timings land in one histogram family
// labeled by stage; file counts are labeled by terminal status, and
// record/byte counters by format fingerprint (a bounded set — the
// lake's known formats). Both sinks are optional and independent.
func recordCrawl(cfg Config, res *Result, walk, classify, extract time.Duration) {
	if cfg.Metrics != nil {
		m := cfg.Metrics
		m.Histogram("datamaran_crawl_stage_seconds", obsv.DefBuckets, "stage", "walk").Observe(walk.Seconds())
		m.Histogram("datamaran_crawl_stage_seconds", obsv.DefBuckets, "stage", "classify").Observe(classify.Seconds())
		m.Histogram("datamaran_crawl_stage_seconds", obsv.DefBuckets, "stage", "extract").Observe(extract.Seconds())
		for _, f := range res.Files {
			m.Counter("datamaran_crawl_files_total", "status", f.Status.String()).Inc()
			if f.Fingerprint == "" {
				continue
			}
			m.Counter("datamaran_crawl_bytes_total", "format", f.Fingerprint).Add(uint64(f.Size))
			if f.Res != nil {
				m.Counter("datamaran_crawl_records_total", "format", f.Fingerprint).Add(uint64(len(f.Res.Records)))
			}
		}
	}
	if cfg.Logger != nil {
		s := res.Summary
		cfg.Logger.Info("crawl",
			"files", s.Files,
			"structured", s.Structured,
			"unstructured", s.Unstructured,
			"failed", s.Failed,
			"formats", s.FormatsKnown,
			"discovered", s.FormatsDiscovered,
			"cacheHits", s.CacheHits,
			"resumed", s.Resumed,
			"unchanged", s.Unchanged,
			"walk", walk.Round(time.Millisecond).String(),
			"classify", classify.Round(time.Millisecond).String(),
			"extract", extract.Round(time.Millisecond).String())
	}
}

// observeUnstructured checkpoints a file that classified unstructured,
// so the next incremental crawl can skip re-discovering it when it has
// not changed. Observation failures are ignored: the worst case is a
// repeated discovery attempt next run.
func observeUnstructured(cfg Config, full, rel string) {
	if cfg.Checkpoints == nil {
		return
	}
	if cp, err := follow.Observe(full, rel); err == nil {
		cfg.Checkpoints.Put(cp)
	}
}

// markFull annotates a structured file that went down the full
// classify/extract path during an incremental crawl.
func markFull(cfg Config, fr *FileResult, reason string) {
	if cfg.Checkpoints == nil {
		return
	}
	if reason == "" {
		reason = "new"
	}
	fr.Inc = &IncInfo{Action: follow.ActionFull, Reason: reason}
}

// classifyFromCheckpoint tries to claim one file through its checkpoint.
// It returns done=true when the file is fully classified (resumed,
// unchanged, or failed planning); otherwise the file takes the normal
// sample path and reason explains why ("new", "rotated", "truncated",
// "profile-gone").
func classifyFromCheckpoint(full, rel string, reg *Registry, cfg Config, fr *FileResult, entry **Entry, resume **follow.Checkpoint) (done bool, reason string) {
	cp := cfg.Checkpoints.Get(rel)
	if cp == nil {
		return false, "new"
	}
	if cp.Fingerprint == "" {
		// Identity-only checkpoint of an unstructured file: unchanged
		// means the (already failed) discovery attempt can be skipped;
		// any change means reclassifying from scratch.
		plan, err := follow.PlanFile(full, cp)
		if err != nil {
			fr.Status = StatusFailed
			fr.Err = err
			return true, ""
		}
		if plan.Action == follow.ActionUnchanged {
			fr.Size = plan.Size
			fr.Status = StatusUnstructured
			fr.Inc = &IncInfo{Action: follow.ActionUnchanged}
			return true, ""
		}
		cfg.Checkpoints.Delete(rel)
		if reason = plan.Reason; reason == "" {
			reason = "grown"
		}
		return false, reason
	}
	e := reg.Lookup(cp.Fingerprint)
	if e == nil {
		// The registry no longer knows the format (edited or replaced):
		// the checkpoint's coordinates mean nothing now.
		cfg.Checkpoints.Delete(rel)
		return false, "profile-gone"
	}
	plan, err := follow.PlanFile(full, cp)
	if err != nil {
		fr.Status = StatusFailed
		fr.Err = err
		return true, ""
	}
	fr.Size = plan.Size
	// A checkpointed skip or resume is only sound when the record store
	// already holds the file's finalized rows; a store enabled after the
	// checkpoint was taken has none, so take the full path once to
	// populate it.
	if cfg.Segments != nil && plan.Action != follow.ActionFull &&
		!cfg.Segments.Covers(rel, e.Fingerprint, len(e.Templates)) {
		return false, "store-new"
	}
	switch plan.Action {
	case follow.ActionUnchanged:
		reg.Claim(e)
		fr.Status = StatusMatched
		fr.Fingerprint = e.Fingerprint
		fr.Inc = &IncInfo{
			Action:       follow.ActionUnchanged,
			BaseRecords:  cp.Records,
			BaseNoise:    cp.Noise,
			TotalRecords: cp.TotalRecords,
			TotalNoise:   cp.TotalNoise,
		}
		return true, ""
	case follow.ActionResume:
		reg.Claim(e)
		*entry = e
		*resume = cp
		fr.Status = StatusMatched
		fr.Fingerprint = e.Fingerprint
		fr.Inc = &IncInfo{
			Action:      follow.ActionResume,
			BaseRecords: cp.Records,
			BaseNoise:   cp.Noise,
		}
		return true, ""
	default:
		// Rotation/truncation: the checkpoint is invalid; reclassify
		// from scratch (the content may even be a different format now).
		cfg.Checkpoints.Delete(rel)
		return false, plan.Reason
	}
}

// walkFailure is a directory entry the crawl could not reach.
type walkFailure struct {
	rel string
	err error
}

// crawl lists the regular files under root as sorted slash-separated
// relative paths, skipping hidden files and directories. Unreachable
// entries are reported, not fatal — only a broken root aborts.
func crawl(root string) ([]string, []walkFailure, error) {
	var paths []string
	var fails []walkFailure
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == root {
				return err
			}
			rel, rerr := filepath.Rel(root, path)
			if rerr != nil {
				rel = path
			}
			fails = append(fails, walkFailure{rel: filepath.ToSlash(rel), err: err})
			if d != nil && d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") && path != root {
			if d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if !d.Type().IsRegular() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		paths = append(paths, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	return paths, fails, nil
}

// sortByPath co-sorts the file results, their registry entries and their
// resume checkpoints.
func sortByPath(files []FileResult, entries []*Entry, resumes []*follow.Checkpoint) {
	order := make([]int, len(files))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return files[order[a]].Path < files[order[b]].Path })
	sortedF := make([]FileResult, len(files))
	sortedE := make([]*Entry, len(entries))
	sortedR := make([]*follow.Checkpoint, len(resumes))
	for dst, src := range order {
		sortedF[dst] = files[src]
		sortedE[dst] = entries[src]
		sortedR[dst] = resumes[src]
	}
	copy(files, sortedF)
	copy(entries, sortedE)
	copy(resumes, sortedR)
}

// ReadSample reads up to limit bytes of the file, trimmed back to the
// last complete line when the file continues past the sample (a partial
// trailing line would distort both matching and discovery). A file
// whose first line alone exceeds the limit yields an empty sample — the
// file classifies as unstructured rather than a format being invented
// from a truncated line. The returned size is the file size observed by
// the same open handle that produced the sample.
func ReadSample(path string, limit int) ([]byte, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	size := int64(0)
	bufSize := limit + 1
	if info, err := f.Stat(); err == nil {
		size = info.Size()
		if size < int64(limit) {
			bufSize = int(size) + 1 // small file: skip the full-budget alloc
		}
	}
	buf := make([]byte, bufSize)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, size, err
	}
	if n < len(buf) {
		return buf[:n], size, nil // whole file
	}
	sample := buf[:min(n, limit)]
	i := bytes.LastIndexByte(sample, '\n')
	return sample[:i+1], size, nil // i == -1: no complete line, empty sample
}

// MatchSample returns the registered profile with the best sample
// coverage at or above the threshold (ties keep the earlier entry), or
// nil when no profile claims the sample. It only reads the registry —
// safe to call concurrently with a crawl (the serve daemon classifies
// ad-hoc lake paths with it).
func MatchSample(sample []byte, reg *Registry, threshold float64) *Entry {
	var best *Entry
	bestCov := 0.0
	for _, e := range reg.Entries() {
		res, err := core.ApplyTemplatesParallel(sample, e.Templates, 1)
		if err != nil {
			continue
		}
		covered := 0
		for _, s := range res.Structures {
			covered += s.Coverage
		}
		cov := float64(covered) / float64(len(sample))
		if cov >= threshold && cov > bestCov {
			best, bestCov = e, cov
		}
	}
	return best
}

// discoverSample runs full template discovery on the sample and
// registers the learned profile. It returns (nil, false, nil) when the
// sample has no discoverable structure.
func discoverSample(sample []byte, reg *Registry, opts core.Options) (*Entry, bool, error) {
	opts.Workers = 1 // phase 1 is the strictly sequential phase
	res, err := core.Extract(sample, opts)
	if err != nil {
		if err == core.ErrEmptyInput {
			return nil, false, nil
		}
		return nil, false, err
	}
	if len(res.Structures) == 0 {
		return nil, false, nil
	}
	templates := make([]*template.Node, 0, len(res.Structures))
	for _, s := range res.Structures {
		templates = append(templates, s.Template)
	}
	e, isNew := reg.Add(templates)
	return e, isNew, nil
}

// extractAll runs the profile extraction of every claimed file over the
// worker pool, writing results into files by index.
func extractAll(ctx context.Context, root string, files []FileResult, entries []*Entry, resumes []*follow.Checkpoint, cfg Config) {
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				extractOne(ctx, root, &files[i], entries[i], resumes[i], cfg)
			}
		}()
	}
	for i := range files {
		if entries[i] != nil {
			if ctx.Err() != nil {
				break
			}
			indices <- i
		}
	}
	close(indices)
	wg.Wait()
}

// extractOne streams one claimed file through the discovery-free
// pipeline with its format's templates. In an incremental crawl the
// extraction goes through the follow layer, which resumes at the
// file's checkpoint (when one survived planning) and records the
// successor checkpoint.
func extractOne(ctx context.Context, root string, fr *FileResult, e *Entry, resume *follow.Checkpoint, cfg Config) {
	full := filepath.Join(root, filepath.FromSlash(fr.Path))
	if cfg.Checkpoints != nil {
		res, ncp, err := follow.Extract(ctx, full, fr.Path, e.Templates, e.Fingerprint, resume, follow.Config{Workers: 1})
		if err != nil {
			fr.Status = StatusFailed
			fr.Err = err
			return
		}
		// Rows past the new checkpoint's finalized boundary are
		// provisional: the next resume re-emits them, so the store
		// remembers how many to truncate before appending.
		prov := fr.Inc.BaseRecords + len(res.Records) - ncp.Records
		if err := storeRecords(cfg, fr, e, res, resume != nil, prov); err != nil {
			fr.Status = StatusFailed
			fr.Err = err
			return
		}
		cfg.Checkpoints.Put(ncp)
		fr.Res = res
		fr.Inc.TotalRecords = fr.Inc.BaseRecords + len(res.Records)
		fr.Inc.TotalNoise = fr.Inc.BaseNoise + len(res.NoiseLines)
		return
	}
	f, err := os.Open(full)
	if err != nil {
		fr.Status = StatusFailed
		fr.Err = err
		return
	}
	defer f.Close()
	res, err := pipeline.RunContext(ctx, f, pipeline.Config{
		Core:      cfg.Core,
		Templates: e.Templates,
		Workers:   1, // parallelism lives at the file level
	})
	if err != nil {
		fr.Status = StatusFailed
		fr.Err = err
		return
	}
	if err := storeRecords(cfg, fr, e, res, false, 0); err != nil {
		fr.Status = StatusFailed
		fr.Err = err
		return
	}
	fr.Res = res
}

// storeRecords stages one extracted file's rows into the record store:
// resumed extractions (which cover only [checkpoint, EOF)) append to
// the file's segments, full ones rewrite them. provisional counts the
// trailing records the new checkpoint did not finalize.
func storeRecords(cfg Config, fr *FileResult, e *Entry, res *core.Result, resumed bool, provisional int) error {
	if cfg.Segments == nil {
		return nil
	}
	if resumed {
		return cfg.Segments.Append(fr.Path, e.Fingerprint, e.Templates, res.Records, provisional)
	}
	return cfg.Segments.Rewrite(fr.Path, e.Fingerprint, e.Templates, res.Records, provisional)
}

// summarize aggregates the per-file outcomes.
func summarize(files []FileResult, reg *Registry, discovered int) Summary {
	s := Summary{Files: len(files), FormatsKnown: reg.Len(), FormatsDiscovered: discovered}
	for _, f := range files {
		switch f.Status {
		case StatusDiscovered:
			s.Structured++
		case StatusMatched:
			s.Structured++
			s.CacheHits++
		case StatusUnstructured:
			s.Unstructured++
		case StatusFailed:
			s.Failed++
		}
		if f.Inc != nil && f.Status != StatusFailed {
			switch f.Inc.Action {
			case follow.ActionResume:
				s.Resumed++
			case follow.ActionUnchanged:
				s.Unchanged++
			}
		}
	}
	return s
}
