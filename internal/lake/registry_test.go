package lake

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datamaran/internal/template"
)

// twoTemplates builds two distinct template sets for registry tests.
func twoTemplates() ([]*template.Node, []*template.Node) {
	a := template.Struct(template.Field(), template.Lit(","), template.Field(), template.Lit("\n"))
	b := template.Struct(template.Lit("hdr "), template.Field(), template.Lit("\n"))
	return []*template.Node{a}, []*template.Node{b}
}

func TestFingerprintStability(t *testing.T) {
	a, b := twoTemplates()
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("distinct templates share a fingerprint")
	}
	if Fingerprint(a) != Fingerprint([]*template.Node{a[0].Clone()}) {
		t.Fatal("clone changed the fingerprint")
	}
	if len(Fingerprint(a)) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", Fingerprint(a))
	}
	// Order matters: a profile is an ordered template list.
	ab := append(append([]*template.Node{}, a...), b...)
	ba := append(append([]*template.Node{}, b...), a...)
	if Fingerprint(ab) == Fingerprint(ba) {
		t.Fatal("template order should change the fingerprint")
	}
}

func TestRegistryAddDedupes(t *testing.T) {
	a, b := twoTemplates()
	reg := NewRegistry()
	e1, new1 := reg.Add(a)
	e2, new2 := reg.Add(a)
	if !new1 || new2 {
		t.Fatalf("dedupe: new1=%v new2=%v", new1, new2)
	}
	if e1 != e2 || reg.Len() != 1 {
		t.Fatal("same templates should map to one entry")
	}
	if _, newB := reg.Add(b); !newB || reg.Len() != 2 {
		t.Fatal("distinct templates should add a second entry")
	}
	if reg.Lookup(e1.Fingerprint) != e1 {
		t.Fatal("lookup by fingerprint failed")
	}
}

func TestRegistrySaveLoadRoundTrip(t *testing.T) {
	a, b := twoTemplates()
	reg := NewRegistry()
	ea, _ := reg.Add(a)
	ea.Files = 7
	reg.Add(b)

	path := filepath.Join(t.TempDir(), "registry.json")
	if err := reg.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost entries: %d", back.Len())
	}
	if got := back.Lookup(ea.Fingerprint); got == nil || got.Files != 7 {
		t.Fatalf("files count lost: %+v", got)
	}
	for i, e := range back.Entries() {
		if e.Fingerprint != reg.Entries()[i].Fingerprint {
			t.Fatal("entry order not preserved")
		}
		if !e.Templates[0].Equal(reg.Entries()[i].Templates[0]) {
			t.Fatal("templates changed in round trip")
		}
	}

	// Serialization is deterministic byte-for-byte.
	raw1, err := json.Marshal(reg)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw1) != string(raw2) {
		t.Fatal("registry serialization not deterministic")
	}
}

func TestLoadRegistryMissingFile(t *testing.T) {
	reg, err := LoadRegistry(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatal("missing file should load as empty registry")
	}
}

func TestRegistryRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"future version": `{"version": 2, "profiles": []}`,
		"no version":     `{"profiles": []}`,
		"zero version":   `{"version": 0, "profiles": []}`,
		"string version": `{"version": "1", "profiles": []}`,
		"bad fingerprint": `{"version":1,"profiles":[{"fingerprint":"0000000000000000","files":1,` +
			`"templates":[{"kind":"struct","children":[{"kind":"field"},{"kind":"lit","text":"\n"}]}]}]}`,
		"not json": `registry? no.`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadRegistry(p); err == nil {
			t.Fatalf("%s: expected load error", name)
		}
	}
}

func TestRegistryRejectsDuplicateFingerprints(t *testing.T) {
	tpl := `{"kind":"struct","children":[{"kind":"field"},{"kind":"lit","text":"\n"}]}`
	fp := Fingerprint([]*template.Node{template.Struct(template.Field(), template.Lit("\n")).Normalize()})
	doc := `{"version":1,"profiles":[` +
		`{"fingerprint":"` + fp + `","files":1,"templates":[` + tpl + `]},` +
		`{"fingerprint":"` + fp + `","files":2,"templates":[` + tpl + `]}]}`
	var reg Registry
	if err := json.Unmarshal([]byte(doc), &reg); err == nil {
		t.Fatal("duplicate fingerprints should be rejected")
	}
}
