package lake

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"datamaran/internal/template"
)

// registryVersion is the on-disk registry format version this package
// reads and writes.
const registryVersion = 1

// Entry is one known format: an ordered template set plus bookkeeping.
// Fingerprint and Templates are immutable once registered and safe to
// read from any goroutine; the claim counter is owned by the registry —
// use Claim/Unclaim to change it and Snapshot (or FilesClaimed) to read
// it while a crawl may be running.
type Entry struct {
	// Fingerprint identifies the template set (see Fingerprint).
	Fingerprint string
	// Templates are the format's structure templates in discovery order.
	Templates []*template.Node
	// Files counts the files this entry has claimed over the registry's
	// lifetime (accumulated across runs when the registry persists).
	Files int
}

// Registry is the persistent profile store: formats in first-registered
// order, addressable by fingerprint. The zero value is not usable; call
// NewRegistry or LoadRegistry.
//
// A Registry handle is safe for concurrent use: the serve daemon shares
// one handle between request handlers and the background incremental
// crawl, so every read and mutation goes through the registry's lock.
type Registry struct {
	mu      sync.RWMutex
	entries []*Entry
	byFP    map[string]*Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byFP: map[string]*Entry{}}
}

// Entries lists the registry's formats in first-registered order. The
// returned slice is a snapshot owned by the caller; the entries it points
// at are shared (their template sets are immutable).
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Len reports the number of known formats.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Lookup returns the entry with the given fingerprint, or nil.
func (r *Registry) Lookup(fp string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byFP[fp]
}

// Add registers a template set, returning its entry and whether it was
// new. An already-known fingerprint returns the existing entry.
func (r *Registry) Add(templates []*template.Node) (*Entry, bool) {
	fp := Fingerprint(templates)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byFP[fp]; ok {
		return e, false
	}
	cloned := make([]*template.Node, len(templates))
	for i, t := range templates {
		cloned[i] = t.Clone()
	}
	e := &Entry{Fingerprint: fp, Templates: cloned}
	r.entries = append(r.entries, e)
	r.byFP[fp] = e
	return e, true
}

// Claim counts one more file against e. Unclaim releases a claim (a file
// that classified but failed extraction holds no claim).
func (r *Registry) Claim(e *Entry) {
	r.mu.Lock()
	e.Files++
	r.mu.Unlock()
}

// Unclaim undoes one Claim.
func (r *Registry) Unclaim(e *Entry) {
	r.mu.Lock()
	e.Files--
	r.mu.Unlock()
}

// Adjust adds delta to the claim counter of the fingerprint's entry (a
// no-op for unknown fingerprints). This is the commit hook of the serve
// daemon's scoped reindex: a crawl restricted to one format runs on a
// cloned registry, and its claim deltas are rebased onto the latest
// served registry at swap time — claims over disjoint file sets compose
// additively, so concurrent per-format crawls never lose each other's
// counts.
func (r *Registry) Adjust(fp string, delta int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.byFP[fp]; e != nil {
		e.Files += delta
	}
}

// FilesClaimed reads e's claim counter under the registry lock.
func (r *Registry) FilesClaimed(e *Entry) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return e.Files
}

// FormatInfo is a point-in-time copy of one registry entry, safe to use
// without further locking.
type FormatInfo struct {
	// Fingerprint identifies the format.
	Fingerprint string
	// Files is the claim counter at snapshot time.
	Files int
	// Templates is the format's (immutable) template set.
	Templates []*template.Node
}

// Snapshot copies the registry's current contents — the consistent read
// used by the serve daemon while a crawl may be mutating claim counters.
func (r *Registry) Snapshot() []FormatInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FormatInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, FormatInfo{Fingerprint: e.Fingerprint, Files: e.Files, Templates: e.Templates})
	}
	return out
}

// registryJSON is the serialized registry.
type registryJSON struct {
	Version  int            `json:"version"`
	Profiles []registryProf `json:"profiles"`
}

// registryProf is one serialized entry. Templates use the same canonical
// structural serialization as the public Profile format.
type registryProf struct {
	Fingerprint string            `json:"fingerprint"`
	Files       int               `json:"files"`
	Templates   []json.RawMessage `json:"templates"`
}

// MarshalJSON serializes the registry deterministically: entries in
// first-registered order, no timestamps or host state, so the bytes are
// reproducible across runs and worker counts. (Compact — encoding/json
// re-compacts a Marshaler's output anyway; Save indents the file form.)
func (r *Registry) MarshalJSON() ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rj := registryJSON{Version: registryVersion, Profiles: []registryProf{}}
	for _, e := range r.entries {
		p := registryProf{Fingerprint: e.Fingerprint, Files: e.Files}
		for _, t := range e.Templates {
			raw, err := json.Marshal(t)
			if err != nil {
				return nil, err
			}
			p.Templates = append(p.Templates, raw)
		}
		rj.Profiles = append(rj.Profiles, p)
	}
	return json.Marshal(rj)
}

// UnmarshalJSON parses a registry serialized by MarshalJSON, rejecting
// missing, non-integer or unknown version values rather than guessing
// at future formats.
func (r *Registry) UnmarshalJSON(data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ver struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &ver); err != nil {
		return fmt.Errorf("lake: bad registry version field (supported: %d): %w", registryVersion, err)
	}
	if ver.Version == nil {
		return fmt.Errorf("lake: registry missing version field (supported: %d)", registryVersion)
	}
	if *ver.Version != registryVersion {
		return fmt.Errorf("lake: unsupported registry version %d (supported: %d)", *ver.Version, registryVersion)
	}
	var rj registryJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return fmt.Errorf("lake: bad registry: %w", err)
	}
	r.entries = nil
	r.byFP = map[string]*Entry{}
	for _, p := range rj.Profiles {
		var templates []*template.Node
		for _, raw := range p.Templates {
			n, err := template.UnmarshalNode(raw)
			if err != nil {
				return fmt.Errorf("lake: bad registry template: %w", err)
			}
			templates = append(templates, n.Normalize())
		}
		fp := Fingerprint(templates)
		if p.Fingerprint != "" && p.Fingerprint != fp {
			return fmt.Errorf("lake: registry fingerprint %s does not match its templates (recomputed %s)", p.Fingerprint, fp)
		}
		if _, ok := r.byFP[fp]; ok {
			return fmt.Errorf("lake: duplicate registry fingerprint %s", fp)
		}
		e := &Entry{Fingerprint: fp, Templates: templates, Files: p.Files}
		r.entries = append(r.entries, e)
		r.byFP[fp] = e
	}
	return nil
}

// LoadRegistry reads a registry file. A missing file yields an empty
// registry, so first runs need no setup.
func LoadRegistry(path string) (*Registry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewRegistry(), nil
	}
	if err != nil {
		return nil, err
	}
	r := NewRegistry()
	if err := json.Unmarshal(raw, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Save writes the registry atomically (temp file + rename in the target
// directory), indented for human inspection.
func (r *Registry) Save(path string) error {
	compact, err := json.Marshal(r)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, compact, "", "  "); err != nil {
		return err
	}
	raw := append(buf.Bytes(), '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".registry-*")
	if err != nil {
		return err
	}
	// CreateTemp's 0600 would make a shared registry unreadable to
	// other users; match the 0644 of every other artifact we write.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
