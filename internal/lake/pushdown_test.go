package lake

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"datamaran/internal/follow"
	"datamaran/internal/semtype"
)

// refMatch is an independent reimplementation of the scan's predicate
// semantics (mirroring the executor's compareVals): equality is exact
// string match; ordering compares numerically only when the predicate
// is flagged numeric and both sides parse, lexicographically otherwise.
// Kept deliberately separate from predMatch so the property test pins
// the two against each other.
func refMatch(cell string, p ScanPred) bool {
	switch p.Op {
	case "=":
		return cell == p.Lit
	case "!=":
		return cell != p.Lit
	}
	c := 0
	lv, lerr := strconv.ParseFloat(p.Lit, 64)
	cv, cerr := strconv.ParseFloat(cell, 64)
	if p.Numeric && lerr == nil && cerr == nil {
		switch {
		case cv < lv:
			c = -1
		case cv > lv:
			c = 1
		}
	} else {
		c = strings.Compare(cell, p.Lit)
	}
	switch p.Op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// refScan applies opts above a full-decode reference: every predicate
// evaluated on fully materialized rows, then unprojected columns blanked
// — exactly what ScanWith must produce from inside the block decode.
func refScan(rows [][]string, width int, opts ScanOptions) [][]string {
	var out [][]string
	for _, row := range rows {
		ok := true
		for _, p := range opts.Preds {
			if !refMatch(row[p.Col], p) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		masked := make([]string, width)
		if opts.Columns == nil {
			copy(masked, row)
		} else {
			for _, c := range opts.Columns {
				masked[c] = row[c]
			}
		}
		out = append(out, masked)
	}
	return out
}

// drainScan collects every row of a scan.
func drainScan(t *testing.T, sc *SegmentScan) [][]string {
	t.Helper()
	defer sc.Close()
	var out [][]string
	for {
		row, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]string(nil), row...))
	}
}

// randomScanOptions draws a random projection and conjunctive predicate
// set, with literals mostly sampled from live cell values so selections
// hit every selectivity regime (and zone maps both prune and pass).
func randomScanOptions(rng *rand.Rand, rows [][]string, width int) ScanOptions {
	var opts ScanOptions
	if rng.Intn(3) > 0 {
		opts.Columns = []int{}
		for c := 0; c < width; c++ {
			if rng.Intn(2) == 0 {
				opts.Columns = append(opts.Columns, c)
			}
		}
	}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for n := rng.Intn(3); n > 0 && len(rows) > 0; n-- {
		p := ScanPred{
			Col:     rng.Intn(width),
			Op:      ops[rng.Intn(len(ops))],
			Numeric: rng.Intn(2) == 0,
		}
		switch rng.Intn(4) {
		case 0:
			p.Lit = fmt.Sprintf("%d.%02d", rng.Intn(100), rng.Intn(100))
		case 1:
			p.Lit = fmt.Sprintf("x%d", rng.Intn(50))
		default:
			p.Lit = rows[rng.Intn(len(rows))][p.Col]
		}
		opts.Preds = append(opts.Preds, p)
	}
	return opts
}

func equalRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestScanPushdownMatchesReference: for every table of a crawled store,
// any combination of pushed projection and predicates yields exactly
// the rows a full-decode scan filtered above produces — before and
// after compaction folds the per-path segment files into shared spans.
func TestScanPushdownMatchesReference(t *testing.T) {
	root := buildLake(t)
	dir := t.TempDir()
	s, err := OpenSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	crawlWithStore(t, root, NewRegistry(), follow.NewStore(), s)

	check := func(label string) {
		t.Helper()
		rng := rand.New(rand.NewSource(7))
		for _, ti := range s.Tables() {
			full := drainScan(t, mustScan(t, s, ti.Name, ScanOptions{}))
			if len(full) != ti.Rows {
				t.Fatalf("%s/%s: full scan %d rows, manifest %d", label, ti.Name, len(full), ti.Rows)
			}
			for trial := 0; trial < 40; trial++ {
				opts := randomScanOptions(rng, full, len(ti.Columns))
				want := refScan(full, len(ti.Columns), opts)
				got := drainScan(t, mustScan(t, s, ti.Name, opts))
				if !equalRows(got, want) {
					t.Fatalf("%s/%s trial %d opts %+v: pushdown scan returned %d rows, reference %d\ngot:  %v\nwant: %v",
						label, ti.Name, trial, opts, len(got), len(want), got, want)
				}
				// The pinned-view path shares the scan machinery but
				// resolves against a snapshot; spot-check it too.
				if trial%8 == 0 {
					v := s.View()
					vsc, err := v.ScanWith(ti.Name, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got := drainScan(t, vsc); !equalRows(got, want) {
						t.Fatalf("%s/%s trial %d: view scan diverges from reference", label, ti.Name, trial)
					}
				}
			}
		}
	}
	check("fresh")

	// Compact every multi-file table into one shared file and re-check:
	// the same reference rows must survive span-based scanning with the
	// rewritten zone maps.
	if _, err := s.Compact(1); err != nil {
		t.Fatal(err)
	}
	check("compacted")
}

func mustScan(t *testing.T, s *SegmentStore, name string, opts ScanOptions) *SegmentScan {
	t.Helper()
	sc, err := s.ScanWith(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// writeV1Segment hand-writes a pre-stats segment file: the v1 magic,
// then blocks of uvarint row count followed by each column's
// uvarint-length-prefixed cells, ending at EOF with no footer.
func writeV1Segment(t *testing.T, path string, blocks [][][]string, ncols int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(segMagicV1); err != nil {
		t.Fatal(err)
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		if _, err := w.Write(tmp[:n]); err != nil {
			t.Fatal(err)
		}
	}
	for _, rows := range blocks {
		put(uint64(len(rows)))
		for c := 0; c < ncols; c++ {
			for _, row := range rows {
				put(uint64(len(row[c])))
				if _, err := w.Write([]byte(row[c])); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScanMixedV1V2Segments: a table spanning a hand-written v1 segment
// (no stats footer) and a v2 segment scans correctly — full, projected
// and predicated (zone maps prune only where they exist) — and
// compaction rewrites the mix into one v2 file without changing a row.
func TestScanMixedV1V2Segments(t *testing.T) {
	dir := t.TempDir()
	const fp = "feedfacecafebeef"
	const ncols = 3

	v1rows := [][][]string{
		{{"alpha", "1.50", "east"}, {"bravo", "2.25", "west"}, {"charlie", "9.75", "east"}},
		{{"delta", "0.10", "west"}, {"echo", "7.00", "east"}},
	}
	writeV1Segment(t, filepath.Join(dir, "v1.seg"), v1rows, ncols)

	v2rows := [][]string{
		{"foxtrot", "3.30", "west"},
		{"golf", "8.80", "east"},
		{"hotel", "0.05", "west"},
	}
	f, err := os.Create(filepath.Join(dir, "v2.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(segMagicV2); err != nil {
		t.Fatal(err)
	}
	sw := newSegWriter(bufio.NewWriter(f), ncols)
	for _, row := range v2rows {
		if err := sw.add(row); err != nil {
			t.Fatal(err)
		}
	}
	kinds, rows, dist, err := sw.finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	strKinds := make([]semtype.Kind, ncols)
	for i := range strKinds {
		strKinds[i] = semtype.KindString
	}
	man := &manifest{Tables: []manTable{{
		Fingerprint: fp,
		Type:        0,
		Columns:     []string{"f0", "f1", "f2"},
		Segments: []manSeg{
			{Path: "a.log", File: "v1.seg", Rows: 5, Kinds: strKinds},
			{Path: "b.log", File: "v2.seg", Rows: rows, Kinds: kinds, Distincts: dist},
		},
	}}}
	if err := saveManifest(dir, man); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var all [][]string
	for _, b := range v1rows {
		all = append(all, b...)
	}
	all = append(all, v2rows...)

	suite := []ScanOptions{
		{},
		{Columns: []int{0, 2}},
		{Preds: []ScanPred{{Col: 1, Op: ">", Lit: "2", Numeric: true}}},
		{Columns: []int{1}, Preds: []ScanPred{{Col: 2, Op: "=", Lit: "east"}}},
		// Nothing matches: v2 blocks zone-prune, v1 blocks decode and
		// filter to empty.
		{Preds: []ScanPred{{Col: 1, Op: ">", Lit: "99", Numeric: true}}},
	}
	verify := func(label string) {
		t.Helper()
		for i, opts := range suite {
			want := refScan(all, ncols, opts)
			got := drainScan(t, mustScan(t, s, fp, opts))
			if !equalRows(got, want) {
				t.Fatalf("%s case %d (%+v):\ngot:  %v\nwant: %v", label, i, opts, got, want)
			}
		}
	}
	verify("mixed")

	// Compaction reads the v1 segment through the compat path and
	// rewrites the whole table as one shared v2 file.
	n, err := s.Compact(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Compact rewrote %d tables, want 1", n)
	}
	ti, err := s.Resolve(fp)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Segments != 2 || ti.Rows != len(all) {
		t.Fatalf("compacted table: %d spans %d rows, want 2 spans %d rows", ti.Segments, ti.Rows, len(all))
	}
	files := map[string]bool{}
	for _, seg := range s.snapshot().table(fp, 0).Segments {
		files[seg.File] = true
	}
	if len(files) != 1 {
		t.Fatalf("compacted table spans %d files, want 1", len(files))
	}
	verify("compacted")
}
