// Package wrangler simulates the user study of §6: starting from the raw
// file (R), the Datamaran extraction (A), or the RecordBreaker extraction
// (B), how many spreadsheet operations — Concatenate, Split, FlashFill,
// Offset — does it take to reach the target table, and does the attempt
// fail outright?
//
// The simulator is a deterministic planner substituting for the six human
// participants. It reproduces the structure of Figure 18: A needs the
// fewest operations and never fails; B needs Offset gymnastics for
// multi-line records and fails when noise breaks row alignment; R costs
// the most and equally fails on noisy multi-line files. The §6.3
// difficulty ratings are proxied by a 1-10 score derived from operation
// count and failure.
package wrangler

import (
	"fmt"

	"datamaran/internal/datagen"
	"datamaran/internal/evaluate"
)

// Op is one spreadsheet operation kind from the study's tutorial.
type Op string

const (
	// Concatenate merges two columns.
	Concatenate Op = "Concatenate"
	// Split cuts a column at a delimiter.
	Split Op = "Split"
	// FlashFill autocompletes a column from examples.
	FlashFill Op = "FlashFill"
	// Offset copies content every K rows (multi-line reassembly).
	Offset Op = "Offset"
)

// Source identifies the starting artifact.
type Source string

const (
	// SourceRaw is the raw log file (R).
	SourceRaw Source = "R"
	// SourceDatamaran is Datamaran's extraction (A).
	SourceDatamaran Source = "A"
	// SourceRecordBreaker is RecordBreaker's extraction (B).
	SourceRecordBreaker Source = "B"
)

// Plan is the simulated transformation attempt.
type Plan struct {
	Source Source
	Ops    []Op
	Failed bool
	Reason string
}

// NumOps returns the operation count (0 for failed attempts, matching the
// study's truncated sequences ending in a black circle).
func (p Plan) NumOps() int { return len(p.Ops) }

// Difficulty proxies the §6.3 participant rating on a 1-10 scale.
func (p Plan) Difficulty() float64 {
	if p.Failed {
		return 10
	}
	d := 1 + float64(len(p.Ops))*0.45
	if d > 10 {
		d = 10
	}
	return d
}

// datasetShape summarizes the ground-truth properties the planner needs.
type datasetShape struct {
	span     int  // max record span in lines
	noisy    bool // noise or incomplete records present
	targets  int  // distinct target columns per record (max over types)
	perSpan  int  // lines per record (== span)
	multiRec bool
}

func shapeOf(d *datagen.Dataset) datasetShape {
	s := datasetShape{span: d.MaxRecSpan, perSpan: d.MaxRecSpan}
	s.multiRec = d.MaxRecSpan > 1
	covered := 0
	for _, tr := range d.Truth {
		covered += tr.EndLine - tr.StartLine
		if len(tr.Targets) > s.targets {
			s.targets = len(tr.Targets)
		}
	}
	totalLines := 0
	for _, b := range d.Data {
		if b == '\n' {
			totalLines++
		}
	}
	s.noisy = covered < totalLines
	return s
}

// PlanRaw simulates starting from the raw file.
func PlanRaw(d *datagen.Dataset) Plan {
	s := shapeOf(d)
	p := Plan{Source: SourceRaw}
	if s.multiRec && s.noisy {
		// No regular row period: Offset cannot reassemble records.
		p.Failed = true
		p.Reason = "no regular pattern: noise/incomplete records break Offset reassembly"
		return p
	}
	if s.multiRec {
		// One Offset formula per line of the record to fold the
		// K-line records into columns.
		for i := 0; i < s.perSpan; i++ {
			p.Ops = append(p.Ops, Offset)
		}
	} else {
		p.Ops = append(p.Ops, Split)
	}
	// One FlashFill per target column to isolate the value from its
	// formatting.
	for i := 0; i < s.targets; i++ {
		p.Ops = append(p.Ops, FlashFill)
	}
	return p
}

// PlanDatamaran simulates starting from Datamaran's extraction: one row
// per record, fine-grained fields. Targets split across k fields need k−1
// Concatenates.
func PlanDatamaran(d *datagen.Dataset, ex evaluate.Extraction) Plan {
	p := Plan{Source: SourceDatamaran}
	merges := targetMergeOps(d, ex)
	for i := 0; i < merges; i++ {
		p.Ops = append(p.Ops, Concatenate)
	}
	return p
}

// PlanRecordBreaker simulates starting from RecordBreaker's extraction:
// per-line records, possibly split across structure files.
func PlanRecordBreaker(d *datagen.Dataset, ex evaluate.Extraction) Plan {
	s := shapeOf(d)
	p := Plan{Source: SourceRecordBreaker}
	if s.multiRec && s.noisy {
		// Lines of one record land in different files with no stable
		// row correspondence — the study's participants gave up here.
		p.Failed = true
		p.Reason = "record lines scattered across files; noise destroys row alignment"
		return p
	}
	if s.multiRec {
		// Cross-file reassembly: one Offset per record line.
		for i := 0; i < s.perSpan; i++ {
			p.Ops = append(p.Ops, Offset)
		}
	}
	merges := targetMergeOps(d, ex)
	for i := 0; i < merges; i++ {
		p.Ops = append(p.Ops, FlashFill)
	}
	// Coarse tokens covering more than the target need Splits.
	for range straddledTargets(d, ex) {
		p.Ops = append(p.Ops, Split)
	}
	return p
}

// targetMergeOps counts, over one representative record per type, the
// concatenations needed: a target covered by k extracted fields costs k−1.
func targetMergeOps(d *datagen.Dataset, ex evaluate.Extraction) int {
	byStart := map[int]*evaluate.ExtractedRecord{}
	for i := range ex.Records {
		byStart[ex.Records[i].StartLine] = &ex.Records[i]
	}
	seenType := map[int]bool{}
	ops := 0
	for _, tr := range d.Truth {
		if seenType[tr.Type] {
			continue
		}
		er, ok := byStart[tr.StartLine]
		if !ok {
			continue
		}
		seenType[tr.Type] = true
		for _, tgt := range tr.Targets {
			k := 0
			for _, f := range er.Fields {
				if f.Start >= tgt.Start && f.End <= tgt.End {
					k++
				}
			}
			if k > 1 {
				ops += k - 1
			}
		}
	}
	return ops
}

// straddledTargets lists targets (one representative record per type)
// where an extracted field crosses the target boundary.
func straddledTargets(d *datagen.Dataset, ex evaluate.Extraction) []evaluate.Span {
	byStart := map[int]*evaluate.ExtractedRecord{}
	for i := range ex.Records {
		byStart[ex.Records[i].StartLine] = &ex.Records[i]
	}
	seenType := map[int]bool{}
	var out []evaluate.Span
	for _, tr := range d.Truth {
		if seenType[tr.Type] {
			continue
		}
		er, ok := byStart[tr.StartLine]
		if !ok {
			continue
		}
		seenType[tr.Type] = true
		for _, tgt := range tr.Targets {
			for _, f := range er.Fields {
				if f.Start < tgt.End && f.End > tgt.Start &&
					(f.Start < tgt.Start || f.End > tgt.End) {
					out = append(out, tgt)
					break
				}
			}
		}
	}
	return out
}

// StudyRow is one dataset × source cell of Figure 18.
type StudyRow struct {
	Dataset string
	Plan    Plan
}

// String renders the row like the figure's op sequences.
func (r StudyRow) String() string {
	if r.Plan.Failed {
		return fmt.Sprintf("%-22s %s: FAILED (%s)", r.Dataset, r.Plan.Source, r.Plan.Reason)
	}
	return fmt.Sprintf("%-22s %s: %d ops %v", r.Dataset, r.Plan.Source, r.Plan.NumOps(), r.Plan.Ops)
}
