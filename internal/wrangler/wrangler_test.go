package wrangler

import (
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/evaluate"
	"datamaran/internal/recordbreaker"
)

// studySets builds the five §6 datasets: one single-line, two regular
// multi-line, two noisy multi-line.
func studySets() []*datagen.Dataset {
	return []*datagen.Dataset{
		datagen.WebServerLog(120, 61),     // dataset 1: single line
		datagen.ThailandDistricts(60, 62), // dataset 2-3: regular multi-line
		datagen.BlogXML(50, 63),           //
		datagen.LogFile5(80, 64),          // dataset 4-5: noisy multi-line
		datagen.LogFile2(100, 65),         //
	}
}

func TestPlanRawSingleLine(t *testing.T) {
	p := PlanRaw(studySets()[0])
	if p.Failed {
		t.Fatal("raw single-line should be transformable")
	}
	if p.NumOps() == 0 {
		t.Fatal("raw transformation should need operations")
	}
}

func TestPlanRawNoisyMultiLineFails(t *testing.T) {
	p := PlanRaw(studySets()[3])
	if !p.Failed {
		t.Fatal("raw noisy multi-line should fail (no Offset period)")
	}
}

func TestPlanRawRegularMultiLineUsesOffset(t *testing.T) {
	p := PlanRaw(studySets()[1])
	if p.Failed {
		t.Fatal("regular multi-line from raw should succeed")
	}
	offsets := 0
	for _, op := range p.Ops {
		if op == Offset {
			offsets++
		}
	}
	if offsets == 0 {
		t.Fatal("expected Offset operations for multi-line reassembly")
	}
}

func TestPlanDatamaranFewestOpsNeverFails(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over the five study datasets")
	}
	for _, d := range studySets() {
		res, err := core.Extract(d.Data, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exA := evaluate.FromCore(res)
		pA := PlanDatamaran(d, exA)
		if pA.Failed {
			t.Fatalf("%s: Datamaran plan failed", d.Name)
		}
		// §6.2 notes A can still need many repeated Concatenates (its
		// output is fine-grained); the guarantee is that it never
		// fails, and only merge-type ops are required.
		for _, op := range pA.Ops {
			if op != Concatenate && op != FlashFill {
				t.Fatalf("%s: A plan uses %v; only merges expected", d.Name, op)
			}
		}
	}
}

func TestPlanRecordBreakerFailsOnNoisyMultiLine(t *testing.T) {
	d := studySets()[3]
	ex := recordbreaker.Extract(d.Data, recordbreaker.Config{})
	p := PlanRecordBreaker(d, ex)
	if !p.Failed {
		t.Fatal("RecordBreaker plan should fail on noisy multi-line data")
	}
}

func TestPlanRecordBreakerMultiLineNeedsOffsets(t *testing.T) {
	d := studySets()[1] // regular multi-line
	ex := recordbreaker.Extract(d.Data, recordbreaker.Config{})
	p := PlanRecordBreaker(d, ex)
	if p.Failed {
		t.Fatal("regular multi-line should be recoverable from B")
	}
	offsets := 0
	for _, op := range p.Ops {
		if op == Offset {
			offsets++
		}
	}
	if offsets == 0 {
		t.Fatal("B on multi-line should need Offset reassembly")
	}
}

func TestDifficultyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over the five study datasets")
	}
	// §6.3: average difficulty A < B < R.
	var sumA, sumB, sumR float64
	for _, d := range studySets() {
		res, err := core.Extract(d.Data, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exA := evaluate.FromCore(res)
		exB := recordbreaker.Extract(d.Data, recordbreaker.Config{})
		sumA += PlanDatamaran(d, exA).Difficulty()
		sumB += PlanRecordBreaker(d, exB).Difficulty()
		sumR += PlanRaw(d).Difficulty()
	}
	if !(sumA < sumB && sumB <= sumR) {
		t.Fatalf("difficulty ordering broken: A=%v B=%v R=%v", sumA/5, sumB/5, sumR/5)
	}
}

func TestDifficultyScale(t *testing.T) {
	ok := Plan{Ops: []Op{Concatenate, Concatenate}}
	if d := ok.Difficulty(); d < 1 || d > 3 {
		t.Fatalf("2-op difficulty = %v, want small", d)
	}
	fail := Plan{Failed: true}
	if fail.Difficulty() != 10 {
		t.Fatalf("failed difficulty = %v, want 10", fail.Difficulty())
	}
}

func TestStudyRowString(t *testing.T) {
	r := StudyRow{Dataset: "d1", Plan: Plan{Source: SourceDatamaran, Ops: []Op{Concatenate}}}
	if s := r.String(); s == "" {
		t.Fatal("empty row rendering")
	}
	f := StudyRow{Dataset: "d2", Plan: Plan{Source: SourceRaw, Failed: true, Reason: "x"}}
	if s := f.String(); s == "" {
		t.Fatal("empty failure rendering")
	}
}

func TestShapeOfDetectsNoise(t *testing.T) {
	noisy := datagen.LogFile5(60, 3)
	clean := datagen.ThailandDistricts(40, 3)
	if !shapeOf(noisy).noisy {
		t.Error("LogFile5 should be detected noisy")
	}
	if shapeOf(clean).noisy {
		t.Error("ThailandDistricts should be clean")
	}
}

func TestTargetMergeOpsCountsSplits(t *testing.T) {
	d := &datagen.Dataset{
		Truth: []evaluate.TruthRecord{{
			Type: 0, StartLine: 0, EndLine: 1,
			Targets: []evaluate.Span{{Start: 0, End: 10}},
		}},
	}
	ex := evaluate.Extraction{Records: []evaluate.ExtractedRecord{{
		Type: 0, StartLine: 0, EndLine: 1,
		Fields: []evaluate.Span{{Start: 0, End: 3}, {Start: 4, End: 7}, {Start: 8, End: 10}},
	}}}
	if got := targetMergeOps(d, ex); got != 2 {
		t.Fatalf("merge ops = %d, want 2 (3 fields → 2 concats)", got)
	}
}

func TestStraddledTargetsDetected(t *testing.T) {
	d := &datagen.Dataset{
		Truth: []evaluate.TruthRecord{{
			Type: 0, StartLine: 0, EndLine: 1,
			Targets: []evaluate.Span{{Start: 5, End: 10}},
		}},
	}
	ex := evaluate.Extraction{Records: []evaluate.ExtractedRecord{{
		Type: 0, StartLine: 0, EndLine: 1,
		Fields: []evaluate.Span{{Start: 3, End: 12}},
	}}}
	if got := straddledTargets(d, ex); len(got) != 1 {
		t.Fatalf("straddled = %d, want 1", len(got))
	}
}
