package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"datamaran/internal/generation"
)

func TestExtractEmptyInput(t *testing.T) {
	if _, err := Extract(nil, Options{}); err != ErrEmptyInput {
		t.Fatalf("err = %v, want ErrEmptyInput", err)
	}
}

func TestExtractCSV(t *testing.T) {
	// Aperiodic values: periodic columns would make a multi-row stack
	// template genuinely cheaper under MDL.
	rng := rand.New(rand.NewSource(5))
	var b strings.Builder
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&b, "%d,%d.%d,tag%d\n", i, rng.Intn(9), rng.Intn(7), rng.Intn(3))
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) != 1 {
		t.Fatalf("structures = %d, want 1", len(res.Structures))
	}
	if res.Structures[0].Records != 150 {
		t.Fatalf("records = %d, want 150", res.Structures[0].Records)
	}
	if len(res.NoiseLines) != 0 {
		t.Fatalf("noise = %v, want none", res.NoiseLines)
	}
	// Refinement should have unfolded the CSV into a 3-column struct.
	if res.Structures[0].Template.HasArray() {
		t.Errorf("template %v still an array; unfolding failed", res.Structures[0].Template)
	}
	// Either F,F,F\n (the real number as one field) or F,F.F,F\n (the
	// '.' structural) is a valid unfolding.
	if got := len(res.Records[0].Fields); got != 3 && got != 4 {
		t.Errorf("record 0 has %d fields, want 3 or 4", got)
	}
}

func TestExtractFieldPositionsPointIntoOriginal(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%03d|%03d\n", i, i*2)
	}
	data := []byte(b.String())
	res, err := Extract(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		for _, f := range rec.Fields {
			if got := string(data[f.Start:f.End]); got != f.Value {
				t.Fatalf("field span [%d,%d) = %q, value = %q", f.Start, f.End, got, f.Value)
			}
		}
	}
}

func TestExtractMultiLineRecordsWithNoise(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&b, "id: %d\nval= %d.%d\n", i, i%5, i%9)
		if i%10 == 0 {
			b.WriteString("### noise noise noise\n")
		}
	}
	data := []byte(b.String())
	res, err := Extract(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 {
		t.Fatal("no structures found")
	}
	s0 := res.Structures[0]
	if s0.Records < 70 {
		t.Fatalf("records = %d, want >= 70 two-line records", s0.Records)
	}
	// Every two-line record must span exactly 2 original lines.
	for _, rec := range res.Records {
		if rec.TypeID == 0 && rec.EndLine-rec.StartLine != 2 {
			t.Fatalf("record spans %d lines, want 2", rec.EndLine-rec.StartLine)
		}
	}
}

func TestExtractInterleavedTwoTypes(t *testing.T) {
	// Example 2 of the paper: two record types randomly interleaved
	// (truly aperiodic, so no stacked template can describe the mix).
	rng := rand.New(rand.NewSource(9))
	var b strings.Builder
	for i := 0; i < 120; i++ {
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "B|%d|%d\n", i, rng.Intn(10000))
		} else {
			fmt.Fprintf(&b, "A;%d;%d.%d\n", i, rng.Intn(7), rng.Intn(3))
		}
	}
	data := []byte(b.String())
	res, err := Extract(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) < 2 {
		t.Fatalf("structures = %d, want 2 (interleaved types)", len(res.Structures))
	}
	counts := map[int]int{}
	total := 0
	for _, r := range res.Records {
		counts[r.TypeID]++
		total++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("type counts = %v, want both types populated", counts)
	}
	if total != 120 {
		t.Fatalf("total records = %d, want 120", total)
	}
	if len(res.NoiseLines) != 0 {
		t.Fatalf("noise = %d lines, want 0", len(res.NoiseLines))
	}
}

func TestExtractPureNoiseFindsNothing(t *testing.T) {
	// Unstructured text (the NS category): no structure should be
	// extracted, everything is noise.
	var b strings.Builder
	words := []string{"lorem", "ipsum", "dolor", "sit", "amet", "consectetur"}
	for i := 0; i < 60; i++ {
		// Vary word counts and punctuation so no template reaches
		// the coverage threshold.
		b.WriteString(words[i%len(words)])
		for j := 0; j < i%5; j++ {
			b.WriteString(" " + words[(i+j*3)%len(words)] + strings.Repeat("!", j%3))
		}
		b.WriteString("\n")
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Structures {
		// Any surviving structure must at least not be the trivial
		// line-splitter.
		if s.Template.String() == `F\n` {
			t.Fatalf("trivial template extracted: %v", s.Template)
		}
	}
}

func TestExtractNoiseLineIndicesAreOriginal(t *testing.T) {
	// Junk must stay below the α=10% coverage threshold, otherwise it
	// legitimately qualifies as a record type under Assumption 1.
	var b strings.Builder
	b.WriteString("&&& leading junk &&&\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i*3)
	}
	b.WriteString("~~~ trailing junk ~~~\n")
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, n := range res.NoiseLines {
		found[n] = true
	}
	if !found[0] || !found[201] {
		t.Fatalf("noise lines = %v, want 0 and 201 included", res.NoiseLines)
	}
}

func TestExtractGreedyMode(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "[%d] status=%d\n", i, i%4)
	}
	res, err := Extract([]byte(b.String()), Options{Search: generation.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records != 100 {
		t.Fatalf("greedy extraction failed: %+v", res.Structures)
	}
}

func TestExtractTimingPopulated(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i)
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Generation <= 0 || res.Timing.Evaluation <= 0 {
		t.Fatalf("timing not populated: %+v", res.Timing)
	}
	if res.Timing.Total() < res.Timing.Generation {
		t.Fatal("Total < Generation")
	}
}

func TestExtractMaxRecordTypesBounds(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "A;%d\nB|%d\nC:%d\n", i, i, i)
	}
	res, err := Extract([]byte(b.String()), Options{MaxRecordTypes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) > 1 {
		t.Fatalf("structures = %d, want <= 1", len(res.Structures))
	}
}

func TestExtractRespectsMaxSpanFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second full-pipeline case")
	}
	// Records of 12 lines with L=10 and structurally distinct lines
	// (no fold, so unfolding cannot re-expand past L): the paper's
	// "long records" failure cause — the full record template cannot
	// be found.
	seps := []byte{':', '=', '|', ';', '+', '.', '!', '?', '<', '>', '&'}
	var b strings.Builder
	for i := 0; i < 40; i++ {
		for j := 0; j < 11; j++ {
			fmt.Fprintf(&b, "k%d%c %d\n", j, seps[j], i*j)
		}
		b.WriteString("#end#\n")
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Structures {
		if n := strings.Count(s.Template.String(), `\n`); n > 10 {
			t.Fatalf("template spans %d lines, beyond L=10", n)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&b, "%d|%d|%d\n", i, i*2, i*3)
	}
	r1, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Structures) != len(r2.Structures) {
		t.Fatal("non-deterministic structure count")
	}
	for i := range r1.Structures {
		if !r1.Structures[i].Template.Equal(r2.Structures[i].Template) {
			t.Fatal("non-deterministic template")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.10 || o.MaxSpan != 10 || o.TopM != 50 {
		t.Fatalf("defaults = %+v", o)
	}
	if o.Scorer == nil {
		t.Fatal("nil scorer after defaults")
	}
	noPrune := Options{TopM: -1}.withDefaults()
	if noPrune.TopM != 0 {
		t.Fatalf("TopM=-1 should map to 0 (keep all), got %d", noPrune.TopM)
	}
}

func TestExtractDisableRefinement(t *testing.T) {
	// Ablation knob: without refinement the CSV stays in array form.
	rng := rand.New(rand.NewSource(6))
	var b strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", rng.Intn(100), rng.Intn(100), rng.Intn(100))
	}
	res, err := Extract([]byte(b.String()), Options{DisableRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 {
		t.Fatal("no structure")
	}
	if !res.Structures[0].Template.HasArray() {
		t.Fatalf("expected the minimal array form without refinement, got %v",
			res.Structures[0].Template)
	}
}

func TestExtractRefineTopCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d;%d\n", rng.Intn(100), rng.Intn(100))
	}
	res, err := Extract([]byte(b.String()), Options{RefineTop: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records != 100 {
		t.Fatalf("RefineTop=2 extraction failed: %+v", res.Structures)
	}
}

func TestExtractSamplingBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var b strings.Builder
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, "%d|%s|%d\n", rng.Intn(100000), []string{"a", "bb", "ccc"}[rng.Intn(3)], rng.Intn(999))
	}
	res, err := Extract([]byte(b.String()), Options{SampleBudget: 8 << 10, EvalBudget: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Sampling must not hurt extraction: records found on the FULL data.
	if len(res.Structures) == 0 || res.Structures[0].Records != 3000 {
		t.Fatalf("sampled run extracted %+v", res.Structures)
	}
}

func TestExtractCRLFTolerance(t *testing.T) {
	// '\r' is a special character candidate: CRLF data still extracts
	// (the '\r' becomes part of the template's formatting).
	var b strings.Builder
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&b, "%d,%d\r\n", i, i*2)
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records != 80 {
		t.Fatalf("CRLF extraction: %+v", res.Structures)
	}
}

func TestExtractSingleLineFile(t *testing.T) {
	res, err := Extract([]byte("only one line, no structure\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One line cannot meet a sensible coverage story twice; whatever is
	// returned must not crash and noise+records must cover the line.
	covered := len(res.NoiseLines)
	for _, r := range res.Records {
		covered += r.EndLine - r.StartLine
	}
	if covered != 1 {
		t.Fatalf("line accounting wrong: %d", covered)
	}
}

func TestExtractRecordsAndNoisePartitionLines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second full-pipeline case")
	}
	// Invariant: every input line is either part of exactly one record
	// or listed as noise.
	rng := rand.New(rand.NewSource(10))
	var b strings.Builder
	lines := 0
	for i := 0; i < 150; i++ {
		if rng.Intn(7) == 0 {
			b.WriteString("@@@ junk @@@\n")
			lines++
		}
		fmt.Fprintf(&b, "x=%d y=%d\n", rng.Intn(100), rng.Intn(100))
		lines++
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, lines)
	for _, r := range res.Records {
		for l := r.StartLine; l < r.EndLine; l++ {
			seen[l]++
		}
	}
	for _, l := range res.NoiseLines {
		seen[l]++
	}
	for l, c := range seen {
		if c != 1 {
			t.Fatalf("line %d covered %d times", l, c)
		}
	}
}
