// Package core orchestrates the Datamaran pipeline (§4, Figure 9):
// generation → pruning → evaluation (with structure refinement), followed
// by the linear-time extraction pass, and the multi-record-type loop of
// §9.1 that re-runs the pipeline on the unexplained residue until no
// structure template reaches the coverage threshold.
package core

import (
	"errors"
	"sort"
	"time"

	"datamaran/internal/chars"
	"datamaran/internal/generation"
	"datamaran/internal/parser"
	"datamaran/internal/refine"
	"datamaran/internal/score"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// Options are the user-facing parameters of the pipeline. The zero value
// selects the paper's defaults: α=10%, L=10, M=50, exhaustive search.
type Options struct {
	// Alpha is the minimum coverage threshold as a fraction (α).
	Alpha float64
	// MaxSpan is the maximum record span in lines (L).
	MaxSpan int
	// TopM is the number of structure templates retained after pruning
	// (M). TopM < 0 disables pruning (the M=∞ setting of §5.2.2).
	TopM int
	// Search selects exhaustive or greedy RT-CharSet enumeration.
	Search generation.SearchMode
	// MaxRecordTypes bounds the multi-record-type loop. Default 8.
	MaxRecordTypes int
	// SampleBudget caps the bytes examined by the generation step
	// (§9.1 sampling); extraction always runs on the full dataset.
	// 0 means the default of 512 KiB; negative disables sampling.
	SampleBudget int
	// EvalBudget caps the bytes used to score and refine candidates in
	// the evaluation step. 0 means 128 KiB; negative disables sampling.
	EvalBudget int
	// Scorer is the regularity score; nil means score.MDL{}.
	Scorer score.Scorer
	// Candidates overrides RT-CharSet-Candidate when non-empty.
	Candidates chars.Set
	// MaxExhaustive caps exhaustive charset enumeration (see
	// generation.Config).
	MaxExhaustive int
	// MaxRecordBytes skips potential records longer than this many
	// bytes during generation (guards pathological spans; see
	// generation.Config). 0 means the generation default (16 KiB).
	MaxRecordBytes int
	// DisableRefinement turns off array unfolding and structure
	// shifting (for ablation experiments).
	DisableRefinement bool
	// RefineTop bounds how many of the top-M candidates receive full
	// structure refinement. 0 (the default) refines all M, as in the
	// paper; a positive value refines only the RefineTop best by plain
	// score plus the RefineTop best by assimilation rank (an ablation
	// knob).
	RefineTop int
	// Workers sets the goroutine parallelism of the extraction scans
	// (the "eminently parallelizable" pass of §5.2.2). 0 or 1 keeps the
	// sequential scan; negative means GOMAXPROCS.
	Workers int
}

// scan partitions lines with the template, in parallel when opts.Workers
// asks for it. ScanParallel is output-identical to Scan.
func (o Options) scan(m *parser.Matcher, lines *textio.Lines) *parser.ScanResult {
	if o.Workers == 0 || o.Workers == 1 {
		return m.Scan(lines)
	}
	return m.ScanParallel(lines, o.Workers)
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.10
	}
	if o.MaxSpan == 0 {
		o.MaxSpan = 10
	}
	if o.TopM == 0 {
		o.TopM = 50
	}
	if o.TopM < 0 {
		o.TopM = 0 // generation.Prune treats 0 as "keep all"
	}
	if o.MaxRecordTypes == 0 {
		o.MaxRecordTypes = 8
	}
	if o.SampleBudget == 0 {
		o.SampleBudget = 512 << 10
	}
	if o.EvalBudget == 0 {
		o.EvalBudget = 128 << 10
	}
	if o.Scorer == nil {
		o.Scorer = score.MDL{}
	}
	if o.RefineTop <= 0 {
		o.RefineTop = int(^uint(0) >> 1)
	}
	return o
}

// cachingScorer memoizes scores by template key for one residue round:
// refinement re-scores the same variant trees many times across
// candidates (most candidates refine toward the same few templates). It
// also carries the round's scan cache, so every consumer of scan results
// — the scorer itself, repetition statistics, structure shifting — scans
// each unique template at most once per round instead of once per use.
type cachingScorer struct {
	inner score.Scorer
	cache map[string]score.Result
	scans *score.ScanCache
}

// newCachingScorer wraps inner for one evaluation round. When inner is
// the default MDL scorer without its own cache, it is rebound onto the
// round's shared scan cache so scoring and refinement share scans.
func newCachingScorer(inner score.Scorer) *cachingScorer {
	scans := score.NewScanCache()
	if mdl, ok := inner.(score.MDL); ok && mdl.Cache == nil {
		mdl.Cache = scans
		inner = mdl
	}
	return &cachingScorer{inner: inner, cache: map[string]score.Result{}, scans: scans}
}

func (c *cachingScorer) Score(m *parser.Matcher, lines *textio.Lines) score.Result {
	key := m.Template().Key()
	if r, ok := c.cache[key]; ok {
		return r
	}
	r := c.inner.Score(m, lines)
	c.cache[key] = r
	return r
}

// ScanCache exposes the round's shared scan memo (see refine's use).
func (c *cachingScorer) ScanCache() *score.ScanCache { return c.scans }

// FieldValue is one extracted field occurrence.
type FieldValue struct {
	// Col is the template column; Rep the repetition ordinal inside an
	// array (0 outside arrays).
	Col, Rep int
	// Start and End are byte offsets into the original dataset.
	Start, End int
	// Value is the extracted text.
	Value string
}

// RecordOut is one extracted record, located in the original dataset.
type RecordOut struct {
	// TypeID identifies which discovered structure produced the record.
	TypeID int
	// StartLine and EndLine delimit the record's lines in the original
	// dataset, [StartLine, EndLine).
	StartLine, EndLine int
	// Fields lists the record's field values in template order.
	Fields []FieldValue
}

// Structure is one discovered record type.
type Structure struct {
	// TypeID is the structure's index in discovery order.
	TypeID int
	// Template is the refined structure template.
	Template *template.Node
	// Score is the regularity score on the (sampled) residue the
	// structure was discovered in.
	Score score.Result
	// Records is the number of records extracted on the full dataset.
	Records int
	// Coverage is the byte coverage on the full dataset.
	Coverage int
	// CandidatesGenerated is K, the number of coverage-surviving
	// candidates in this round's generation step.
	CandidatesGenerated int
}

// Timing breaks the run into the steps of Table 3.
type Timing struct {
	Generation time.Duration
	Pruning    time.Duration
	Evaluation time.Duration
	Extraction time.Duration
}

// Total returns the summed step time.
func (t Timing) Total() time.Duration {
	return t.Generation + t.Pruning + t.Evaluation + t.Extraction
}

// Result is the outcome of a full extraction.
type Result struct {
	Structures []Structure
	Records    []RecordOut
	// NoiseLines lists original line indices not covered by any record.
	NoiseLines []int
	Timing     Timing
}

// ErrEmptyInput is returned when the dataset has no lines.
var ErrEmptyInput = errors.New("core: empty input")

// Extract runs the full Datamaran pipeline on data.
func Extract(data []byte, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	lines := textio.NewLines(data)
	if lines.N() == 0 {
		return nil, ErrEmptyInput
	}

	res := &Result{}
	// residual maps the still-unexplained lines to original indices.
	residLines := make([]int, lines.N())
	for i := range residLines {
		residLines[i] = i
	}
	residData := data

	for typeID := 0; typeID < opts.MaxRecordTypes && len(residLines) > 0; typeID++ {
		// Assumption 1's threshold is α% of the *dataset*, not of the
		// shrinking residue: rescale α so leftover junk lines cannot
		// qualify as a record type once they dominate the residue.
		effAlpha := opts.Alpha * float64(len(data)) / float64(len(residData))
		if effAlpha > 1 {
			break
		}
		st, stats, ok := discoverOne(residData, opts, effAlpha, res)
		if !ok {
			break
		}

		// Extraction step: scan the full residue with the chosen
		// template.
		t0 := time.Now()
		rl := textio.NewLines(residData)
		m := parser.NewMatcher(st)
		scan := opts.scan(m, rl)
		res.Timing.Extraction += time.Since(t0)

		if scan.Coverage < int(opts.Alpha*float64(len(data))) {
			break // sampling artifact: template does not hold up on the full residue
		}

		stats.TypeID = typeID
		stats.Records = len(scan.Records)
		stats.Coverage = scan.Coverage
		res.Structures = append(res.Structures, stats)

		// Translate records to original coordinates and build the
		// next residue from the noise lines.
		origOf := residLines
		byteShift := makeByteShift(rl, origOf, lines)
		for ri, rec := range scan.Records {
			out := RecordOut{
				TypeID:    typeID,
				StartLine: origOf[rec.StartLine],
				EndLine:   origOf[rec.EndLine-1] + 1,
			}
			for _, f := range scan.Fields(ri) {
				os, oe := byteShift(f.Start), byteShift(f.End)
				out.Fields = append(out.Fields, FieldValue{
					Col: f.Col, Rep: f.Rep,
					Start: os, End: oe,
					Value: string(residData[f.Start:f.End]),
				})
			}
			res.Records = append(res.Records, out)
		}

		var nextLines []int
		var nextData []byte
		for _, li := range scan.NoiseLines {
			nextLines = append(nextLines, origOf[li])
			nextData = append(nextData, rl.Line(li)...)
		}
		residLines = nextLines
		residData = nextData
	}

	res.NoiseLines = residLines
	return res, nil
}

// discoverOne runs generation, pruning and evaluation over one residue and
// returns the best refined template.
func discoverOne(residData []byte, opts Options, effAlpha float64, res *Result) (*template.Node, Structure, bool) {
	sampler := textio.Sampler{Budget: opts.SampleBudget, Seed: 7}
	if opts.SampleBudget < 0 {
		sampler.Budget = 0
	}
	sample := sampler.Sample(residData)
	sampleLines := textio.NewLines(sample)
	evalSampler := textio.Sampler{Budget: opts.EvalBudget, Seed: 11}
	if opts.EvalBudget < 0 {
		evalSampler.Budget = 0
	}
	evalLines := textio.NewLines(evalSampler.Sample(residData))

	t0 := time.Now()
	cands := generation.Generate(sampleLines, generation.Config{
		Alpha:          effAlpha,
		MaxSpan:        opts.MaxSpan,
		Search:         opts.Search,
		Candidates:     opts.Candidates,
		MaxExhaustive:  opts.MaxExhaustive,
		MaxRecordBytes: opts.MaxRecordBytes,
	})
	res.Timing.Generation += time.Since(t0)
	cands = filterTrivial(cands)
	if len(cands) == 0 {
		return nil, Structure{}, false
	}

	t0 = time.Now()
	top := generation.Prune(cands, opts.TopM)
	res.Timing.Pruning += time.Since(t0)

	t0 = time.Now()
	scorer := newCachingScorer(opts.Scorer)
	// Plain-score every retained candidate, then refine the RefineTop
	// most promising (refinement costs many scoring passes each).
	type scored struct {
		tpl *template.Node
		res score.Result
	}
	plain := make([]scored, 0, len(top))
	for _, cand := range top {
		r := scorer.Score(parser.NewMatcher(cand.Template), evalLines)
		if r.Records == 0 {
			continue
		}
		plain = append(plain, scored{cand.Template, r})
	}
	// Refine the union of the best candidates by plain score and by
	// assimilation rank: plain scoring favors partially-unfolded k-line
	// variants, while the folded minimal template (which refinement
	// would turn into the true winner) ranks high on assimilation.
	refineSet := map[string]bool{}
	for i := 0; i < opts.RefineTop && i < len(plain); i++ {
		refineSet[plain[i].tpl.Key()] = true // assimilation order (pre-sort)
	}
	sort.SliceStable(plain, func(i, j int) bool { return plain[i].res.Bits < plain[j].res.Bits })
	for i := 0; i < opts.RefineTop && i < len(plain); i++ {
		refineSet[plain[i].tpl.Key()] = true
	}
	var best *template.Node
	var bestRes score.Result
	for _, s := range plain {
		tpl, r := s.tpl, s.res
		if !opts.DisableRefinement && refineSet[tpl.Key()] {
			tpl, r = refine.Refine(s.tpl, evalLines, scorer)
		}
		// A template that is (or refined into) a k-fold stack of a
		// shorter template describes the same data with wrong record
		// boundaries; its 1-period form is evaluated separately.
		if template.IsPeriodicStack(tpl) {
			continue
		}
		if best == nil || r.Bits < bestRes.Bits {
			best, bestRes = tpl, r
		}
	}
	res.Timing.Evaluation += time.Since(t0)
	if best == nil {
		return nil, Structure{}, false
	}
	return best, Structure{
		Template:            best,
		Score:               bestRes,
		CandidatesGenerated: len(cands),
	}, true
}

// filterTrivial drops templates that impose no real structure: templates
// whose only formatting character is the newline (F\n and its stacks) and
// templates containing a free-line array (F\n)* — both can absorb
// arbitrary lines, including noise and the other record types of an
// interleaved dataset.
func filterTrivial(cands []generation.Candidate) []generation.Candidate {
	out := cands[:0]
	var nl chars.Set
	nl.Add('\n')
	for _, c := range cands {
		if c.Template.RTCharSet().Minus(nl).Empty() {
			continue
		}
		if template.HasFreeLineArray(c.Template) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// makeByteShift returns a function translating byte offsets in the residue
// buffer to offsets in the original dataset. Field spans never cross line
// boundaries, so a per-line delta suffices; offsets at a line's end
// (exclusive) translate with the same line's delta.
func makeByteShift(resid *textio.Lines, origOf []int, orig *textio.Lines) func(int) int {
	return func(off int) int {
		// Binary search for the line containing off (or ending at it).
		lo, hi := 0, resid.N()-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if resid.Start(mid) <= off {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		// Field spans end strictly before their line's trailing
		// newline, so off always lies within line lo (or at the very
		// end of the buffer, still inside the last line).
		return orig.Start(origOf[lo]) + (off - resid.Start(lo))
	}
}

// ApplyTemplates runs only the extraction pass with an already-known set
// of structure templates — the learn-once, apply-many workflow of a data
// lake where many files share one format. Templates are applied in order;
// each consumes its matching records from the residue left by the
// previous ones, exactly as the discovery loop would have.
func ApplyTemplates(data []byte, templates []*template.Node) (*Result, error) {
	return ApplyTemplatesParallel(data, templates, 0)
}

// ApplyTemplatesParallel is ApplyTemplates with the extraction scans fanned
// out over workers goroutines (0 or 1 sequential, negative GOMAXPROCS).
// Output is identical to ApplyTemplates.
func ApplyTemplatesParallel(data []byte, templates []*template.Node, workers int) (*Result, error) {
	opts := Options{Workers: workers}.withDefaults()
	lines := textio.NewLines(data)
	if lines.N() == 0 {
		return nil, ErrEmptyInput
	}
	res := &Result{}
	residLines := make([]int, lines.N())
	for i := range residLines {
		residLines[i] = i
	}
	residData := data
	for typeID, st := range templates {
		t0 := time.Now()
		rl := textio.NewLines(residData)
		m := parser.NewMatcher(st)
		scan := opts.scan(m, rl)
		res.Timing.Extraction += time.Since(t0)
		res.Structures = append(res.Structures, Structure{
			TypeID:   typeID,
			Template: st,
			Records:  len(scan.Records),
			Coverage: scan.Coverage,
		})
		origOf := residLines
		byteShift := makeByteShift(rl, origOf, lines)
		for ri, rec := range scan.Records {
			out := RecordOut{
				TypeID:    typeID,
				StartLine: origOf[rec.StartLine],
				EndLine:   origOf[rec.EndLine-1] + 1,
			}
			for _, f := range scan.Fields(ri) {
				out.Fields = append(out.Fields, FieldValue{
					Col: f.Col, Rep: f.Rep,
					Start: byteShift(f.Start), End: byteShift(f.End),
					Value: string(residData[f.Start:f.End]),
				})
			}
			res.Records = append(res.Records, out)
		}
		var nextLines []int
		var nextData []byte
		for _, li := range scan.NoiseLines {
			nextLines = append(nextLines, origOf[li])
			nextData = append(nextData, rl.Line(li)...)
		}
		residLines = nextLines
		residData = nextData
		if len(residLines) == 0 {
			break
		}
	}
	res.NoiseLines = residLines
	return res, nil
}
