package core

// Failure-injection tests: corrupted records, truncation, binary bytes
// and adversarial shapes must degrade gracefully (records lost become
// noise), never panic or mis-span.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func cleanCSV(rows int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%s,%d\n", rng.Intn(100000), []string{"ok", "warn", "err"}[rng.Intn(3)], rng.Intn(1000))
	}
	return []byte(b.String())
}

func TestCorruptedRecordsBecomeNoise(t *testing.T) {
	data := cleanCSV(200, 1)
	// Corrupt ~5% of lines by deleting their commas.
	lines := strings.Split(string(data), "\n")
	rng := rand.New(rand.NewSource(2))
	corrupted := 0
	for i := range lines {
		if lines[i] != "" && rng.Intn(20) == 0 {
			lines[i] = strings.ReplaceAll(lines[i], ",", " CORRUPT ")
			corrupted++
		}
	}
	res, err := Extract([]byte(strings.Join(lines, "\n")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 {
		t.Fatal("corruption destroyed extraction entirely")
	}
	if res.Structures[0].Records < 200-corrupted-5 {
		t.Fatalf("records = %d, want about %d", res.Structures[0].Records, 200-corrupted)
	}
}

func TestTruncatedFinalRecord(t *testing.T) {
	data := cleanCSV(100, 3)
	// Truncate mid-way through the last line (no trailing newline).
	data = data[:len(data)-4]
	res, err := Extract(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records < 99 {
		t.Fatalf("truncation broke extraction: %+v", res.Structures)
	}
}

func TestBinaryGarbageLines(t *testing.T) {
	data := cleanCSV(150, 4)
	garbage := []byte{0x00, 0x01, 0xFF, 0xFE, 0x80, 0x7F, '\n'}
	mixed := append(append(append([]byte{}, garbage...), data...), garbage...)
	res, err := Extract(mixed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records < 150 {
		t.Fatalf("binary garbage broke extraction: %+v", res.Structures)
	}
	// Field spans must stay within bounds.
	for _, r := range res.Records {
		for _, f := range r.Fields {
			if f.Start < 0 || f.End > len(mixed) || f.Start > f.End {
				t.Fatalf("field span out of bounds: %+v", f)
			}
		}
	}
}

func TestVeryLongSingleLine(t *testing.T) {
	// An 8 KB single line among normal records must not blow up the
	// window enumeration (MaxRecordBytes guard). The junk line must stay
	// below (1-α) of the bytes or the records honestly fall under the
	// coverage threshold (coverage is defined over total dataset bytes).
	var b strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i*7)
	}
	b.WriteString(strings.Repeat("x", 8<<10) + "\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i*3)
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records < 600 {
		t.Fatalf("long line broke extraction: %+v", res.Structures)
	}
}

func TestAllIdenticalLines(t *testing.T) {
	// Zero-entropy data: the enum typing collapses every column to one
	// value; extraction must still identify per-line records.
	data := strings.Repeat("a,b,c\n", 200)
	res, err := Extract([]byte(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Structures {
		total += s.Records
	}
	if total == 0 {
		t.Fatal("no records from identical lines")
	}
}

func TestEmptyLinesInterspersed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second full-pipeline case")
	}
	var b strings.Builder
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		if rng.Intn(10) == 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "k=%d v=%d\n", rng.Intn(100), rng.Intn(100))
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records < 140 {
		t.Fatalf("empty lines broke extraction: %+v", res.Structures)
	}
}

func TestRecordsWithEmptyFields(t *testing.T) {
	// CSV with frequently empty cells.
	rng := rand.New(rand.NewSource(6))
	var b strings.Builder
	for i := 0; i < 150; i++ {
		a, c := fmt.Sprintf("%d", rng.Intn(100)), fmt.Sprintf("%d", rng.Intn(100))
		if rng.Intn(4) == 0 {
			a = ""
		}
		if rng.Intn(4) == 0 {
			c = ""
		}
		fmt.Fprintf(&b, "%s,%s,%d\n", a, c, rng.Intn(10))
	}
	res, err := Extract([]byte(b.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structures) == 0 || res.Structures[0].Records != 150 {
		t.Fatalf("empty fields broke extraction: %+v", res.Structures)
	}
}

func TestAlphaExtremes(t *testing.T) {
	data := cleanCSV(100, 7)
	// α so high nothing qualifies: no structures, all noise.
	res, err := Extract(data, Options{Alpha: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	// α=0.999 still admits a 100%-coverage template; α beyond 1 cannot.
	res2, err := Extract(data, Options{Alpha: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Structures) != 0 {
		t.Fatalf("alpha > 1 should extract nothing, got %d structures", len(res2.Structures))
	}
	_ = res
}
