package score

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"datamaran/internal/parser"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

func fld() *template.Node         { return template.Field() }
func lit(s string) *template.Node { return template.Lit(s) }
func st(c ...*template.Node) *template.Node {
	return template.Struct(c...).Normalize()
}

func scoreOf(tm *template.Node, data string) Result {
	return MDL{}.Score(parser.NewMatcher(tm), textio.NewLines([]byte(data)))
}

func TestAssimilation(t *testing.T) {
	if got := Assimilation(100, 60); got != 100*40 {
		t.Fatalf("Assimilation = %v, want 4000", got)
	}
	if got := Assimilation(0, 0); got != 0 {
		t.Fatalf("Assimilation(0,0) = %v", got)
	}
	if got := Assimilation(10, 20); got != 0 {
		t.Fatalf("negative non-field coverage should clamp to 0, got %v", got)
	}
}

func TestAssimilationDistinguishesRedundancySources(t *testing.T) {
	// Source 2 of Figure 11: a template that treats formatting chars as
	// field content has the same coverage but lower non-field coverage,
	// so its assimilation score must be lower.
	full := Assimilation(1000, 700)    // true template: 300 formatting bytes
	demoted := Assimilation(1000, 950) // delimiters swallowed into fields
	if demoted >= full {
		t.Fatalf("demoted template scored %v >= true template %v", demoted, full)
	}
}

func TestParseInt(t *testing.T) {
	cases := []struct {
		in string
		v  int64
		ok bool
	}{
		{"0", 0, true}, {"42", 42, true}, {"-7", -7, true}, {"+9", 9, true},
		{"", 0, false}, {"x", 0, false}, {"4.2", 0, false}, {"-", 0, false},
		{"007", 7, true}, {"123456789012345678901", 0, false},
	}
	for _, c := range cases {
		v, ok := parseInt([]byte(c.in))
		if ok != c.ok || (ok && v != c.v) {
			t.Errorf("parseInt(%q) = %d,%v want %d,%v", c.in, v, ok, c.v, c.ok)
		}
	}
}

func TestParseReal(t *testing.T) {
	cases := []struct {
		in  string
		v   float64
		exp int
		ok  bool
	}{
		{"1.5", 1.5, 1, true},
		{"-2.25", -2.25, 2, true},
		{"3", 3, 0, true},
		{".", 0, 0, false},
		{"1.2.3", 0, 0, false},
		{"abc", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		v, exp, ok := parseReal([]byte(c.in))
		if ok != c.ok {
			t.Errorf("parseReal(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (abs(v-c.v) > 1e-9 || exp != c.exp) {
			t.Errorf("parseReal(%q) = %v,%d want %v,%d", c.in, v, exp, c.v, c.exp)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestColumnTypingInt(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	var b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "%d,%s\n", i, []string{"OK", "FAIL"}[i%2])
	}
	res := scoreOf(tm, b.String())
	if res.ColumnTypes[0] != TInt {
		t.Errorf("col 0 = %v, want int", res.ColumnTypes[0])
	}
	if res.ColumnTypes[1] != TEnum {
		t.Errorf("col 1 = %v, want enum", res.ColumnTypes[1])
	}
}

func TestColumnTypingRealAndString(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d.%02d,free_text_value_%d\n", i, i%7, i*i)
	}
	res := scoreOf(tm, b.String())
	if res.ColumnTypes[0] != TReal {
		t.Errorf("col 0 = %v, want real", res.ColumnTypes[0])
	}
	if res.ColumnTypes[1] != TString {
		t.Errorf("col 1 = %v, want string", res.ColumnTypes[1])
	}
}

func TestMDLPrefersTrueTemplateOverTrivial(t *testing.T) {
	// Structured CSV: the true template F,F,F\n (as struct) must beat
	// the trivial template F\n which swallows each line as one string.
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d,%s\n", i, i*2, []string{"GET", "POST"}[i%2])
	}
	data := b.String()
	true3 := st(fld(), lit(","), fld(), lit(","), fld(), lit("\n"))
	trivial := st(fld(), lit("\n"))
	sTrue := scoreOf(true3, data)
	sTriv := scoreOf(trivial, data)
	if sTrue.Bits >= sTriv.Bits {
		t.Fatalf("true template %v bits >= trivial %v bits", sTrue.Bits, sTriv.Bits)
	}
}

func TestMDLPrefersStructOverArrayForTypedCSV(t *testing.T) {
	// §4.3.1: for CSV with heterogeneous column types the unfolded
	// struct form scores better than the array form, because per-column
	// typing (int columns) beats one shared string/enum column.
	var b strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "%d,%d.%d,label%d\n", i, i%10, i%7, i%3)
	}
	data := b.String()
	arr := template.Array([]*template.Node{fld()}, ',', '\n')
	structForm := st(fld(), lit(","), fld(), lit(","), fld(), lit("\n"))
	sArr := scoreOf(arr, data)
	sStruct := scoreOf(structForm, data)
	if sStruct.Bits >= sArr.Bits {
		t.Fatalf("struct form %v bits >= array form %v bits", sStruct.Bits, sArr.Bits)
	}
}

func TestMDLNoiseCostsFullBytes(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	clean := scoreOf(tm, "a,b\nc,d\n")
	noisy := scoreOf(tm, "a,b\nc,d\nTHISNOISE\n")
	if noisy.Bits-clean.Bits < float64(len("THISNOISE\n"))*8-16 {
		t.Fatalf("noise undercharged: clean=%v noisy=%v", clean.Bits, noisy.Bits)
	}
	if noisy.NoiseLines != 1 {
		t.Fatalf("NoiseLines = %d, want 1", noisy.NoiseLines)
	}
}

func TestMDLRecordsCounted(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	res := scoreOf(tm, "a,b\nc,d\ne,f\n")
	if res.Records != 3 {
		t.Fatalf("Records = %d, want 3", res.Records)
	}
	if res.Coverage != 12 {
		t.Fatalf("Coverage = %d, want 12", res.Coverage)
	}
}

func TestMDLEnumCheaperThanString(t *testing.T) {
	// A column with 2 long distinct values repeated: enum typing should
	// make it far cheaper than string typing would be. Compare against
	// a column of unique long values (forced string).
	tmA := st(lit("x "), fld(), lit("\n"))
	var enumData, strData strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&enumData, "x %s\n", []string{"LONGVALUE_AAAA", "LONGVALUE_BBBB"}[i%2])
		fmt.Fprintf(&strData, "x unique_value_number_%09d\n", i)
	}
	sEnum := scoreOf(tmA, enumData.String())
	sStr := scoreOf(tmA, strData.String())
	if sEnum.ColumnTypes[0] != TEnum {
		t.Fatalf("enum column typed %v", sEnum.ColumnTypes[0])
	}
	if sStr.ColumnTypes[0] != TString {
		t.Fatalf("string column typed %v", sStr.ColumnTypes[0])
	}
	if sEnum.Bits >= sStr.Bits {
		t.Fatalf("enum data %v bits >= string data %v bits", sEnum.Bits, sStr.Bits)
	}
}

func TestMDLArrayRepetitionCost(t *testing.T) {
	// Same data scored under (F,)*F\n: repetition counts must be
	// described, so more variable rows cost more than uniform rows of
	// equal byte size.
	arr := template.Array([]*template.Node{fld()}, ',', '\n')
	uniform := strings.Repeat("1,2,3,4\n", 100)
	res := scoreOf(arr, uniform)
	if res.Records != 100 {
		t.Fatalf("Records = %d, want 100", res.Records)
	}
	if res.Bits <= 0 {
		t.Fatal("Bits must be positive")
	}
}

func TestScorerInterface(t *testing.T) {
	var s Scorer = MDL{}
	res := s.Score(parser.NewMatcher(st(fld(), lit("\n"))), textio.NewLines([]byte("a\n")))
	if res.Records != 1 {
		t.Fatalf("Records = %d, want 1", res.Records)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {0.5, 0}}
	for _, c := range cases {
		if got := ceilLog2(c.in); got != c.want {
			t.Errorf("ceilLog2(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: assimilation is monotone in coverage for fixed field share.
func TestQuickAssimilationMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		small, big := int(a), int(a)+int(b)
		return Assimilation(big, big/2) >= Assimilation(small, small/2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MDL bits are non-negative and grow with appended noise.
func TestQuickMDLNoiseMonotone(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	f := func(n uint8) bool {
		base := "a,b\nc,d\n"
		noisy := base + strings.Repeat("!!noise!!\n", int(n%8)+1)
		return scoreOf(tm, noisy).Bits > scoreOf(tm, base).Bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageScorerBasics(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	data := strings.Repeat("a,b\nc,d\n", 25) + "noise line\n"
	var s Scorer = CoverageScorer{}
	res := s.Score(parser.NewMatcher(tm), textio.NewLines([]byte(data)))
	if res.Records != 50 {
		t.Fatalf("Records = %d", res.Records)
	}
	if res.Bits <= 0 {
		t.Fatal("Bits must be positive")
	}
	// Full-coverage template must beat a partial one.
	partial := st(lit("a,"), fld(), lit("\n"))
	pres := s.Score(parser.NewMatcher(partial), textio.NewLines([]byte(data)))
	if res.Bits >= pres.Bits {
		t.Fatalf("full-coverage template %v >= partial %v", res.Bits, pres.Bits)
	}
}

func TestCoverageScorerColumnPenalty(t *testing.T) {
	data := strings.Repeat("1,2,3\n", 50)
	wide := st(fld(), lit(","), fld(), lit(","), fld(), lit("\n"))
	// A degenerate 6-column split (every char its own field) should be
	// punished by the column penalty relative to the clean 3-column
	// form when both cover everything. Build an artificial wide
	// template with extra columns via empty-field patterns is awkward;
	// instead verify the penalty is monotone in Columns by comparing
	// scorers with different penalties.
	low := CoverageScorer{ColumnPenalty: 1}.Score(parser.NewMatcher(wide), textio.NewLines([]byte(data)))
	high := CoverageScorer{ColumnPenalty: 100}.Score(parser.NewMatcher(wide), textio.NewLines([]byte(data)))
	if high.Bits <= low.Bits {
		t.Fatal("column penalty not applied")
	}
}

func TestPipelineWithAlternativeScorer(t *testing.T) {
	// The pipeline must run end to end with a non-MDL scorer plugged in
	// (the paper's pluggability claim).
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d|%d|%d\n", i, i*2, i*3)
	}
	_ = b
	// Scoring interface compatibility is verified at compile time:
	var _ Scorer = CoverageScorer{}
	var _ Scorer = MDL{}
}
