package score

import (
	"datamaran/internal/parser"
	"datamaran/internal/textio"
)

// CoverageScorer is an alternative regularity score demonstrating the
// pluggable-scorer design (§4: "we can plug in any reasonable scoring
// function into Datamaran"). It ignores description length entirely and
// scores a template by how much of the dataset it fails to explain plus a
// small per-column complexity charge. Lower is better, like MDL.
//
// It is deliberately cruder than MDL: it cannot distinguish array from
// struct forms of equal coverage, so refinement decisions degrade — the
// ablation experiments use it to show why the MDL design matters.
type CoverageScorer struct {
	// ColumnPenalty is the per-column charge in noise-byte equivalents
	// (default 16 when zero).
	ColumnPenalty float64
}

// Score implements Scorer.
func (c CoverageScorer) Score(m *parser.Matcher, lines *textio.Lines) Result {
	penalty := c.ColumnPenalty
	if penalty == 0 {
		penalty = 16
	}
	scan := m.Scan(lines)
	uncovered := len(lines.Data()) - scan.Coverage
	bits := float64(uncovered)*8 + penalty*8*float64(m.Columns()) + float64(m.Template().Len())*8
	return Result{
		Bits:       bits,
		Records:    len(scan.Records),
		Coverage:   scan.Coverage,
		NoiseLines: len(scan.NoiseLines),
	}
}
