// Package score implements Datamaran's two scoring functions:
//
//   - the assimilation score G(T,S) = Cov(T,S) × Non_Field_Cov(T,S) used
//     by the pruning step (§4.2), and
//   - the default regularity score F(T,S): a minimum-description-length
//     measure of the dataset under a structure template (§9.2, Alg 2),
//     where a lower bit count means a more plausible structure.
//
// The regularity score is pluggable by design (the paper stresses that
// Datamaran works with any reasonable scoring modality); the pipeline
// accepts any Scorer.
package score

import (
	"math"

	"datamaran/internal/parser"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// Assimilation computes G(T,S) from a template's byte coverage and the
// byte total of its field values. It distinguishes both redundancy
// sources of Figure 11: sub-templates of multi-line templates lose
// coverage, and templates that demote formatting characters to field
// values lose non-field coverage.
func Assimilation(coverage, fieldBytes int) float64 {
	nonField := coverage - fieldBytes
	if nonField < 0 {
		nonField = 0
	}
	return float64(coverage) * float64(nonField)
}

// FieldType is the value type assigned to a field column when computing
// the description length (§9.2).
type FieldType uint8

const (
	// TInt is an integer column: values cost ⌈log2(max−min+1)⌉ bits.
	TInt FieldType = iota
	// TReal is a fixed-point real column: values cost
	// ⌈log2((max−min)·10^exp+1)⌉ bits.
	TReal
	// TEnum is an enumerated column: values cost ⌈log2 n_distinct⌉ bits.
	TEnum
	// TString is a free string column: values cost (len+1)·8 bits.
	TString
)

func (t FieldType) String() string {
	switch t {
	case TInt:
		return "int"
	case TReal:
		return "real"
	case TEnum:
		return "enum"
	case TString:
		return "string"
	}
	return "?"
}

// enumMaxDistinct caps the number of distinct values a column may have and
// still be typed as enumerated.
const enumMaxDistinct = 64

// colStats accumulates per-column statistics during the scan pass.
type colStats struct {
	count      int
	totalBytes int
	allInt     bool
	allReal    bool
	minI, maxI int64
	minR, maxR float64
	maxExp     int
	distinct   map[string]struct{}
	overflow   bool // too many distinct values to be an enum
}

func newColStats() *colStats {
	return &colStats{allInt: true, allReal: true, distinct: make(map[string]struct{})}
}

func (c *colStats) add(val []byte) {
	c.count++
	c.totalBytes += len(val)
	if !c.overflow {
		c.distinct[string(val)] = struct{}{}
		if len(c.distinct) > enumMaxDistinct {
			c.overflow = true
			c.distinct = nil
		}
	}
	if c.allInt {
		if v, ok := parseInt(val); ok {
			if c.count == 1 || v < c.minI {
				c.minI = v
			}
			if c.count == 1 || v > c.maxI {
				c.maxI = v
			}
		} else {
			c.allInt = false
		}
	}
	if c.allReal {
		if v, exp, ok := parseReal(val); ok {
			if c.count == 1 || v < c.minR {
				c.minR = v
			}
			if c.count == 1 || v > c.maxR {
				c.maxR = v
			}
			if exp > c.maxExp {
				c.maxExp = exp
			}
		} else {
			c.allReal = false
		}
	}
}

// resolve picks the column type by analyzing the accumulated values:
// integer if every value is an integer, else real if every value is a
// fixed-point number, else enumerated if the distinct-value count is
// small, else string.
func (c *colStats) resolve() FieldType {
	switch {
	case c.count == 0:
		return TString
	case c.allInt:
		return TInt
	case c.allReal:
		return TReal
	case !c.overflow && len(c.distinct) <= enumMaxDistinct:
		return TEnum
	default:
		return TString
	}
}

// bitsPerValue returns the per-value description cost for resolved type t,
// plus a one-time model cost (the enum dictionary).
func (c *colStats) bits(t FieldType) (perValue float64, model float64) {
	switch t {
	case TInt:
		return ceilLog2(float64(c.maxI-c.minI) + 1), 0
	case TReal:
		span := (c.maxR - c.minR) * math.Pow(10, float64(c.maxExp))
		return ceilLog2(span + 1), 0
	case TEnum:
		n := len(c.distinct)
		var dict float64
		for v := range c.distinct {
			dict += float64(len(v)+1) * 8
		}
		return ceilLog2(float64(n)), dict
	default: // TString: cost depends on each value's length.
		return 0, 0
	}
}

func ceilLog2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(x))
}

func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	i := 0
	neg := false
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var v int64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		v = v*10 + int64(b[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseReal accepts optional sign, digits, optional '.digits'. It returns
// the value and the number of digits after the decimal point.
func parseReal(b []byte) (float64, int, bool) {
	if len(b) == 0 || len(b) > 24 {
		return 0, 0, false
	}
	i := 0
	neg := false
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
	}
	digits := 0
	var v float64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			break
		}
		v = v*10 + float64(b[i]-'0')
		digits++
	}
	exp := 0
	if i < len(b) && b[i] == '.' {
		i++
		for ; i < len(b); i++ {
			if b[i] < '0' || b[i] > '9' {
				return 0, 0, false
			}
			exp++
			v += float64(b[i]-'0') * math.Pow(10, -float64(exp))
			digits++
		}
	}
	if i != len(b) || digits == 0 {
		return 0, 0, false
	}
	if neg {
		v = -v
	}
	return v, exp, true
}

// Result holds the outcome of scoring one template against a dataset.
type Result struct {
	// Bits is the total description length F(T,S); lower is better.
	Bits float64
	// Records is the number of matched records.
	Records int
	// Coverage is the total byte length of matched records.
	Coverage int
	// NoiseLines is the number of uncovered lines.
	NoiseLines int
	// ColumnTypes lists the resolved type of each field column.
	ColumnTypes []FieldType
}

// Scorer evaluates the regularity of a template over a dataset. Datamaran
// treats this as a black box (§4, "The Regularity Scoring Function").
type Scorer interface {
	Score(m *parser.Matcher, lines *textio.Lines) Result
}

// MDL is the default minimum-description-length Scorer (§9.2).
type MDL struct{}

// Score parses the dataset with the template and computes the total
// description length:
//
//	len(ST)·8 + 32 + m  (structure template, block count, record/noise flags)
//	+ Σ_noise len·8
//	+ Σ_records D(RT|ST) + D(record|RT)
//
// where D(RT|ST) describes array repetition counts and D(record|RT)
// describes field values under per-column types.
func (MDL) Score(m *parser.Matcher, lines *textio.Lines) Result {
	scan := m.Scan(lines)
	data := lines.Data()
	st := m.Template()

	// Pass 1: per-column stats and per-array repetition stats.
	cols := make([]*colStats, m.Columns())
	for i := range cols {
		cols[i] = newColStats()
	}
	arrayMax := map[*template.Node]int{}
	var arrayInstances []arrayInst
	for _, rec := range scan.Records {
		for _, f := range m.Flatten(rec.Value) {
			cols[f.Col].add(data[f.Start:f.End])
		}
		collectArrays(rec.Value, arrayMax, &arrayInstances)
	}
	types := make([]FieldType, len(cols))
	perVal := make([]float64, len(cols))
	var modelBits float64
	for i, c := range cols {
		types[i] = c.resolve()
		pv, mb := c.bits(types[i])
		perVal[i] = pv
		modelBits += mb
	}

	// Pass 2: total description length.
	blocks := len(scan.Records) + len(scan.NoiseLines)
	bits := float64(st.Len())*8 + 32 + float64(blocks) + modelBits
	for _, li := range scan.NoiseLines {
		bits += float64(len(lines.Line(li))) * 8
	}
	// D(RT|ST): repetition counts per array instance.
	for _, inst := range arrayInstances {
		bits += ceilLog2(float64(arrayMax[inst.node]) + 1)
	}
	// D(record|RT): field values.
	for _, rec := range scan.Records {
		for _, f := range m.Flatten(rec.Value) {
			switch types[f.Col] {
			case TString:
				bits += float64(f.End-f.Start+1) * 8
			default:
				bits += perVal[f.Col]
			}
		}
	}
	return Result{
		Bits:        bits,
		Records:     len(scan.Records),
		Coverage:    scan.Coverage,
		NoiseLines:  len(scan.NoiseLines),
		ColumnTypes: types,
	}
}

type arrayInst struct {
	node *template.Node
	reps int
}

func collectArrays(v *parser.Value, maxReps map[*template.Node]int, out *[]arrayInst) {
	if v.Node.Kind == template.KArray {
		reps := len(v.Children)
		if reps > maxReps[v.Node] {
			maxReps[v.Node] = reps
		}
		*out = append(*out, arrayInst{node: v.Node, reps: reps})
	}
	for _, c := range v.Children {
		collectArrays(c, maxReps, out)
	}
}
