// Package score implements Datamaran's two scoring functions:
//
//   - the assimilation score G(T,S) = Cov(T,S) × Non_Field_Cov(T,S) used
//     by the pruning step (§4.2), and
//   - the default regularity score F(T,S): a minimum-description-length
//     measure of the dataset under a structure template (§9.2, Alg 2),
//     where a lower bit count means a more plausible structure.
//
// The regularity score is pluggable by design (the paper stresses that
// Datamaran works with any reasonable scoring modality); the pipeline
// accepts any Scorer.
package score

import (
	"math"

	"datamaran/internal/parser"
	"datamaran/internal/textio"
)

// Assimilation computes G(T,S) from a template's byte coverage and the
// byte total of its field values. It distinguishes both redundancy
// sources of Figure 11: sub-templates of multi-line templates lose
// coverage, and templates that demote formatting characters to field
// values lose non-field coverage.
func Assimilation(coverage, fieldBytes int) float64 {
	nonField := coverage - fieldBytes
	if nonField < 0 {
		nonField = 0
	}
	return float64(coverage) * float64(nonField)
}

// FieldType is the value type assigned to a field column when computing
// the description length (§9.2).
type FieldType uint8

const (
	// TInt is an integer column: values cost ⌈log2(max−min+1)⌉ bits.
	TInt FieldType = iota
	// TReal is a fixed-point real column: values cost
	// ⌈log2((max−min)·10^exp+1)⌉ bits.
	TReal
	// TEnum is an enumerated column: values cost ⌈log2 n_distinct⌉ bits.
	TEnum
	// TString is a free string column: values cost (len+1)·8 bits.
	TString
)

func (t FieldType) String() string {
	switch t {
	case TInt:
		return "int"
	case TReal:
		return "real"
	case TEnum:
		return "enum"
	case TString:
		return "string"
	}
	return "?"
}

// enumMaxDistinct caps the number of distinct values a column may have and
// still be typed as enumerated.
const enumMaxDistinct = 64

// enumHashSlots sizes the open-addressed distinct-value set: a power of
// two with at most 50% load at the enum cap, so probes stay short and the
// table never fills.
const enumHashSlots = 128

// colStats accumulates per-column statistics during the scan pass. The
// distinct-value set is a fixed open-addressed table of 64-bit FNV-1a
// hashes — no per-value string allocation, no map — sized for the
// enumMaxDistinct cap (a 2⁻⁶⁴-scale hash collision can at worst merge two
// distinct values in a heuristic score).
type colStats struct {
	count         int
	allInt        bool
	allReal       bool
	minI, maxI    int64
	minR, maxR    float64
	maxExp        int
	distinct      int  // number of distinct values inserted
	distinctBytes int  // total byte length of the distinct values
	overflow      bool // too many distinct values to be an enum
	hashes        [enumHashSlots]uint64
}

func (c *colStats) init() {
	c.allInt, c.allReal = true, true
}

func hashValue(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range b {
		h ^= uint64(x)
		h *= prime64
	}
	if h == 0 {
		h = offset64 // reserve 0 as the empty-slot marker
	}
	return h
}

func (c *colStats) add(val []byte) {
	c.count++
	if !c.overflow {
		h := hashValue(val)
		i := h & (enumHashSlots - 1)
		for c.hashes[i] != 0 && c.hashes[i] != h {
			i = (i + 1) & (enumHashSlots - 1)
		}
		if c.hashes[i] == 0 {
			c.hashes[i] = h
			c.distinct++
			c.distinctBytes += len(val)
			if c.distinct > enumMaxDistinct {
				c.overflow = true
			}
		}
	}
	if c.allInt {
		if v, ok := parseInt(val); ok {
			if c.count == 1 || v < c.minI {
				c.minI = v
			}
			if c.count == 1 || v > c.maxI {
				c.maxI = v
			}
		} else {
			c.allInt = false
		}
	}
	if c.allReal {
		if v, exp, ok := parseReal(val); ok {
			if c.count == 1 || v < c.minR {
				c.minR = v
			}
			if c.count == 1 || v > c.maxR {
				c.maxR = v
			}
			if exp > c.maxExp {
				c.maxExp = exp
			}
		} else {
			c.allReal = false
		}
	}
}

// resolve picks the column type by analyzing the accumulated values:
// integer if every value is an integer, else real if every value is a
// fixed-point number, else enumerated if the distinct-value count is
// small, else string.
func (c *colStats) resolve() FieldType {
	switch {
	case c.count == 0:
		return TString
	case c.allInt:
		return TInt
	case c.allReal:
		return TReal
	case !c.overflow:
		return TEnum
	default:
		return TString
	}
}

// bits returns the per-value description cost for resolved type t,
// plus a one-time model cost (the enum dictionary).
func (c *colStats) bits(t FieldType) (perValue float64, model float64) {
	switch t {
	case TInt:
		return ceilLog2(float64(c.maxI-c.minI) + 1), 0
	case TReal:
		span := (c.maxR - c.minR) * math.Pow(10, float64(c.maxExp))
		return ceilLog2(span + 1), 0
	case TEnum:
		// Dictionary: each distinct value costs (len+1)·8 bits.
		dict := float64(c.distinctBytes+c.distinct) * 8
		return ceilLog2(float64(c.distinct)), dict
	default: // TString: cost depends on each value's length.
		return 0, 0
	}
}

func ceilLog2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(x))
}

func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	i := 0
	neg := false
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var v int64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		v = v*10 + int64(b[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseReal accepts optional sign, digits, optional '.digits'. It returns
// the value and the number of digits after the decimal point.
func parseReal(b []byte) (float64, int, bool) {
	if len(b) == 0 || len(b) > 24 {
		return 0, 0, false
	}
	i := 0
	neg := false
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
	}
	digits := 0
	var v float64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			break
		}
		v = v*10 + float64(b[i]-'0')
		digits++
	}
	exp := 0
	if i < len(b) && b[i] == '.' {
		i++
		for ; i < len(b); i++ {
			if b[i] < '0' || b[i] > '9' {
				return 0, 0, false
			}
			exp++
			v += float64(b[i]-'0') * math.Pow(10, -float64(exp))
			digits++
		}
	}
	if i != len(b) || digits == 0 {
		return 0, 0, false
	}
	if neg {
		v = -v
	}
	return v, exp, true
}

// Result holds the outcome of scoring one template against a dataset.
type Result struct {
	// Bits is the total description length F(T,S); lower is better.
	Bits float64
	// Records is the number of matched records.
	Records int
	// Coverage is the total byte length of matched records.
	Coverage int
	// NoiseLines is the number of uncovered lines.
	NoiseLines int
	// ColumnTypes lists the resolved type of each field column.
	ColumnTypes []FieldType
}

// Scorer evaluates the regularity of a template over a dataset. Datamaran
// treats this as a black box (§4, "The Regularity Scoring Function").
type Scorer interface {
	Score(m *parser.Matcher, lines *textio.Lines) Result
}

// ScanCache memoizes full scan results by template key over one dataset,
// so the many overlapping evaluation passes of a discovery round —
// plain scoring, refinement variants, repetition statistics — each scan a
// given template exactly once. Scan results are positional (byte offsets
// and dense array indices), so a cached result is valid for any Matcher
// whose template has the same key. A nil *ScanCache is valid and simply
// scans every time.
type ScanCache struct {
	lines *textio.Lines
	byKey map[string]*parser.ScanResult
}

// NewScanCache returns an empty cache.
func NewScanCache() *ScanCache {
	return &ScanCache{byKey: map[string]*parser.ScanResult{}}
}

// Scan returns the (possibly memoized) scan of m's template over lines.
// Callers must treat the result as immutable. Changing datasets resets
// the cache.
func (c *ScanCache) Scan(m *parser.Matcher, lines *textio.Lines) *parser.ScanResult {
	if c == nil {
		return m.Scan(lines)
	}
	if c.lines != lines {
		c.lines = lines
		if len(c.byKey) > 0 {
			c.byKey = map[string]*parser.ScanResult{}
		}
	}
	key := m.Template().Key()
	if r, ok := c.byKey[key]; ok {
		return r
	}
	r := m.Scan(lines)
	c.byKey[key] = r
	return r
}

// MDL is the default minimum-description-length Scorer (§9.2). The zero
// value scans directly; set Cache to share scan results across the
// templates of one evaluation round.
type MDL struct {
	// Cache, when non-nil, memoizes scans by template key (see ScanCache).
	Cache *ScanCache
}

// Score parses the dataset with the template and computes the total
// description length:
//
//	len(ST)·8 + 32 + m  (structure template, block count, record/noise flags)
//	+ Σ_noise len·8
//	+ Σ_records D(RT|ST) + D(record|RT)
//
// where D(RT|ST) describes array repetition counts and D(record|RT)
// describes field values under per-column types. It consumes the scan's
// flat occurrence arenas directly — no parse trees are walked.
func (s MDL) Score(m *parser.Matcher, lines *textio.Lines) Result {
	scan := s.Cache.Scan(m, lines)
	data := lines.Data()
	st := m.Template()

	// Pass 1: per-column stats and per-array repetition stats.
	cols := make([]colStats, m.Columns())
	for i := range cols {
		cols[i].init()
	}
	for _, f := range scan.AllFields() {
		cols[f.Col].add(data[f.Start:f.End])
	}
	arrayMax := make([]int, m.NumArrays())
	for _, a := range scan.AllArrays() {
		if a.Reps > arrayMax[a.Arr] {
			arrayMax[a.Arr] = a.Reps
		}
	}
	types := make([]FieldType, len(cols))
	perVal := make([]float64, len(cols))
	var modelBits float64
	for i := range cols {
		types[i] = cols[i].resolve()
		pv, mb := cols[i].bits(types[i])
		perVal[i] = pv
		modelBits += mb
	}

	// Pass 2: total description length.
	blocks := len(scan.Records) + len(scan.NoiseLines)
	bits := float64(st.Len())*8 + 32 + float64(blocks) + modelBits
	for _, li := range scan.NoiseLines {
		bits += float64(len(lines.Line(li))) * 8
	}
	// D(RT|ST): repetition counts per array instance.
	for _, a := range scan.AllArrays() {
		bits += ceilLog2(float64(arrayMax[a.Arr]) + 1)
	}
	// D(record|RT): field values.
	for _, f := range scan.AllFields() {
		switch types[f.Col] {
		case TString:
			bits += float64(f.End-f.Start+1) * 8
		default:
			bits += perVal[f.Col]
		}
	}
	return Result{
		Bits:        bits,
		Records:     len(scan.Records),
		Coverage:    scan.Coverage,
		NoiseLines:  len(scan.NoiseLines),
		ColumnTypes: types,
	}
}
