package refine

import (
	"fmt"
	"strings"
	"testing"

	"datamaran/internal/parser"
	"datamaran/internal/score"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

func fld() *template.Node         { return template.Field() }
func lit(s string) *template.Node { return template.Lit(s) }
func stc(c ...*template.Node) *template.Node {
	return template.Struct(c...).Normalize()
}
func linesOf(s string) *textio.Lines { return textio.NewLines([]byte(s)) }

func TestFullUnfold(t *testing.T) {
	arr := template.Array([]*template.Node{fld()}, ',', '\n')
	got := fullUnfold(arr, 3)
	want := stc(fld(), lit(","), fld(), lit(","), fld(), lit("\n"))
	if !got.Equal(want) {
		t.Fatalf("fullUnfold = %v, want %v", got, want)
	}
}

func TestFullUnfoldSingle(t *testing.T) {
	arr := template.Array([]*template.Node{fld()}, ',', '\n')
	got := fullUnfold(arr, 1)
	want := stc(fld(), lit("\n"))
	if !got.Equal(want) {
		t.Fatalf("fullUnfold(1) = %v, want %v", got, want)
	}
}

func TestPartialUnfold(t *testing.T) {
	arr := template.Array([]*template.Node{fld()}, ' ', '\n')
	got := partialUnfold(arr, 4)
	// F F F F (F )*F\n
	want := stc(fld(), lit(" "), fld(), lit(" "), fld(), lit(" "), fld(), lit(" "),
		template.Array([]*template.Node{fld()}, ' ', '\n'))
	if !got.Equal(want) {
		t.Fatalf("partialUnfold = %v, want %v", got, want)
	}
}

func TestArrayPathsAndReplace(t *testing.T) {
	inner := template.Array([]*template.Node{fld()}, ',', '"')
	tm := stc(fld(), lit(`,"`), inner, lit(","), fld(), lit("\n"))
	paths := arrayPaths(tm)
	if len(paths) != 1 {
		t.Fatalf("arrayPaths = %v, want 1 path", paths)
	}
	if nodeAt(tm, paths[0]).Kind != template.KArray {
		t.Fatal("path does not lead to the array")
	}
	repl := replaceAt(tm, paths[0], stc(fld(), lit(","), fld(), lit(`"`)))
	if repl.HasArray() {
		t.Fatalf("replaceAt left an array: %v", repl)
	}
	if !tm.HasArray() {
		t.Fatal("replaceAt mutated the original")
	}
}

func TestRefineCSVUnfoldsToStruct(t *testing.T) {
	// §4.3.1: CSV with typed columns — (F,)*F\n should unfold to
	// F,F,F\n because the struct form scores better.
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d.%d,name%d\n", i, i%9, i%7, i%4)
	}
	lines := linesOf(b.String())
	min := template.Array([]*template.Node{fld()}, ',', '\n')
	got, res := Refine(min, lines, score.MDL{})
	want := stc(fld(), lit(","), fld(), lit(","), fld(), lit("\n"))
	if !got.Equal(want) {
		t.Fatalf("Refine = %v, want %v", got, want)
	}
	if res.Records != 200 {
		t.Fatalf("refined template matches %d records, want 200", res.Records)
	}
}

func TestRefinePartialUnfoldForSyslog(t *testing.T) {
	// §4.3.1's example: fixed fields followed by free text. The ideal
	// template is F F F F (F )*F\n obtained by partial unfolding.
	data := "" +
		"Apr 24 04:02:24 srv7 snort shutdown succeeded\n" +
		"Apr 24 04:02:24 srv7 snort startup succeeded\n" +
		"Apr 24 14:44:28 srv7 Disabling nightly yum update check\n"
	var b strings.Builder
	for i := 0; i < 50; i++ {
		b.WriteString(data)
	}
	lines := linesOf(b.String())
	min := template.Array([]*template.Node{fld()}, ' ', '\n')
	got, _ := Refine(min, lines, score.MDL{})
	// The refined template must keep an array suffix (free text length
	// varies) but may unfold a fixed prefix.
	if !got.HasArray() {
		t.Fatalf("Refine removed the array entirely: %v", got)
	}
	if got.Equal(min) {
		t.Logf("note: no partial unfold accepted; template stayed %v", got)
	}
	// Whatever the outcome, it must still match every line.
	res := score.MDL{}.Score(parser.NewMatcher(got), lines)
	if res.NoiseLines != 0 {
		t.Fatalf("refined template loses %d lines as noise", res.NoiseLines)
	}
}

func TestRefineKeepsArrayForUniformUntypedList(t *testing.T) {
	// All-identical string fields with varying counts: the array form
	// must survive (full unfold impossible, counts vary).
	var b strings.Builder
	for i := 0; i < 100; i++ {
		n := 2 + i%5
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fmt.Sprintf("w%d", j)
		}
		fmt.Fprintf(&b, "%s\n", strings.Join(parts, ","))
	}
	lines := linesOf(b.String())
	min := template.Array([]*template.Node{fld()}, ',', '\n')
	got, _ := Refine(min, lines, score.MDL{})
	if !got.HasArray() {
		t.Fatalf("Refine dropped the array for variable-length lists: %v", got)
	}
}

func TestLineSegments(t *testing.T) {
	tm := stc(lit("A "), fld(), lit("\nB "), fld(), lit("\n"))
	segs := lineSegments(tm)
	if len(segs) != 2 {
		t.Fatalf("lineSegments = %d segments, want 2", len(segs))
	}
}

func TestLineSegmentsArrayTerminatedLine(t *testing.T) {
	// (F,)*F\nF;\n — the array ends line 1.
	tm := stc(template.Array([]*template.Node{fld()}, ',', '\n'), fld(), lit(";\n"))
	segs := lineSegments(tm)
	if len(segs) != 2 {
		t.Fatalf("lineSegments = %d segments, want 2", len(segs))
	}
}

func TestShiftRecoversTruePhase(t *testing.T) {
	// Records are (header, value) line pairs. The shifted template
	// (value, header) matches starting at line 1; the true phase
	// matches at line 0 and must win.
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "H: %d\nV= %d\n", i, i*3)
	}
	lines := linesOf(b.String())
	trueTpl := stc(fld(), lit(": "), fld(), lit("\n"), fld(), lit("= "), fld(), lit("\n"))
	shifted := stc(fld(), lit("= "), fld(), lit("\n"), fld(), lit(": "), fld(), lit("\n"))
	if got := Shift(shifted, lines); !got.Equal(trueTpl) {
		t.Fatalf("Shift = %v, want %v", got, trueTpl)
	}
	// The true phase is a fixpoint.
	if got := Shift(trueTpl, lines); !got.Equal(trueTpl) {
		t.Fatalf("Shift moved the true template to %v", got)
	}
}

func TestShiftSingleLineNoop(t *testing.T) {
	tm := stc(fld(), lit(","), fld(), lit("\n"))
	lines := linesOf("a,b\nc,d\n")
	if got := Shift(tm, lines); !got.Equal(tm) {
		t.Fatalf("Shift changed a single-line template: %v", got)
	}
}

func TestShiftNoMatchAnywhere(t *testing.T) {
	tm := stc(lit("@@"), fld(), lit("\n@@"), fld(), lit("\n"))
	lines := linesOf("x\ny\nz\n")
	if got := Shift(tm, lines); !got.Equal(tm) {
		t.Fatalf("Shift changed an unmatched template: %v", got)
	}
}

func TestShiftedVariantsScoreApproxEqual(t *testing.T) {
	// §4.3.2's premise: cyclic shifts have nearly equal regularity
	// scores, so a score-based rule cannot distinguish them.
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "H: %d\nV= %d\n", i, i*3)
	}
	lines := linesOf(b.String())
	trueTpl := stc(fld(), lit(": "), fld(), lit("\n"), fld(), lit("= "), fld(), lit("\n"))
	shifted := stc(fld(), lit("= "), fld(), lit("\n"), fld(), lit(": "), fld(), lit("\n"))
	a := score.MDL{}.Score(parser.NewMatcher(trueTpl), lines)
	bRes := score.MDL{}.Score(parser.NewMatcher(shifted), lines)
	ratio := a.Bits / bRes.Bits
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("shift score ratio %v outside [0.9,1.1]: %v vs %v", ratio, a.Bits, bRes.Bits)
	}
}

func TestUnfoldVariantsForNestedArray(t *testing.T) {
	// Nested arrays: variants must be generated for the inner array
	// without panicking on value-tree navigation.
	data := strings.Repeat("1,2|3,4|5,6;\n", 50)
	lines := linesOf(data)
	inner := template.Array([]*template.Node{fld()}, ',', '|')
	// ((F,)*F|)*(F,)*F;\n is hard to build exactly; use outer over
	// groups: (F,F|)*F,F;\n via struct body.
	outer := template.Array([]*template.Node{fld(), lit(","), fld()}, '|', ';')
	tm := stc(outer, lit("\n"))
	_ = inner
	paths := arrayPaths(tm)
	if len(paths) == 0 {
		t.Fatal("no array paths found")
	}
	for _, p := range paths {
		UnfoldVariants(tm, p, lines) // must not panic
	}
}

func TestRefineImprovesOrKeepsScore(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, "%d,%d,%d,%d\n", i, i+1, i+2, i+3)
	}
	lines := linesOf(b.String())
	min := template.Array([]*template.Node{fld()}, ',', '\n')
	before := score.MDL{}.Score(parser.NewMatcher(min), lines)
	_, after := Refine(min, lines, score.MDL{})
	if after.Bits > before.Bits {
		t.Fatalf("Refine worsened the score: %v -> %v", before.Bits, after.Bits)
	}
}
