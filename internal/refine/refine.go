// Package refine implements Datamaran's two structure-refinement
// techniques, applied to the surviving candidates during the evaluation
// step (§4.3):
//
//   - Array unfolding expands an array-type regular expression into a
//     struct-type (full unfolding) or a fixed prefix followed by an array
//     suffix (partial unfolding), accepting the revision when the
//     regularity score improves. This recovers e.g. the plain CSV
//     template F,F,F\n from the minimal form (F,)*F\n, and the syslog
//     template F F F F (F )*F\n from (F )*F\n.
//
//   - Structure shifting resolves the cyclic-shift ambiguity of multi-line
//     templates (all shifts score approximately equally) by picking the
//     variant whose first occurrence in the dataset is earliest.
package refine

import (
	"datamaran/internal/parser"
	"datamaran/internal/score"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// maxPartialPrefix caps the partial-unfolding prefix length tried per
// array node.
const maxPartialPrefix = 8

// scanCacher is implemented by scorers that share a round-level scan
// cache (core's caching scorer, score.MDL with a Cache). Refinement uses
// it so repetition statistics reuse the scan the scorer just performed
// instead of re-scanning per round.
type scanCacher interface {
	ScanCache() *score.ScanCache
}

// cacheOf extracts the shared scan cache from a scorer, when it has one.
func cacheOf(scorer score.Scorer) *score.ScanCache {
	if sc, ok := scorer.(scanCacher); ok {
		return sc.ScanCache()
	}
	if mdl, ok := scorer.(score.MDL); ok {
		return mdl.Cache
	}
	return nil
}

// Refine applies array unfolding to a fixpoint and then structure
// shifting, returning the refined template and its score. It mirrors
// Algorithm 2's RefineST.
func Refine(st *template.Node, lines *textio.Lines, scorer score.Scorer) (*template.Node, score.Result) {
	cache := cacheOf(scorer)
	best := st
	bestRes := scorer.Score(parser.NewMatcher(best), lines)
	for {
		// Steepest descent: score every unfold variant of every array
		// and adopt the best improvement. First-improvement would
		// commit to a full unfold even when a partial unfold (which
		// keeps the array's flexibility for irregular records) scores
		// far better.
		var roundBest *template.Node
		roundRes := bestRes
		stats := allRepStats(best, lines, cache)
		for _, path := range arrayPaths(best) {
			for _, variant := range unfoldVariantsWithStats(best, path, stats) {
				res := scorer.Score(parser.NewMatcher(variant), lines)
				if res.Bits < roundRes.Bits {
					roundBest, roundRes = variant, res
				}
			}
		}
		if roundBest == nil {
			break
		}
		best, bestRes = roundBest, roundRes
	}
	shifted := Shift(best, lines)
	if !shifted.Equal(best) {
		best = shifted
		bestRes = scorer.Score(parser.NewMatcher(best), lines)
	}
	return best, bestRes
}

// arrayPaths lists the child-index paths of every array node in st
// (DFS order; a path navigates Children at each step).
func arrayPaths(st *template.Node) [][]int {
	var out [][]int
	var walk func(n *template.Node, path []int)
	walk = func(n *template.Node, path []int) {
		if n.Kind == template.KArray {
			out = append(out, append([]int(nil), path...))
		}
		for i, c := range n.Children {
			walk(c, append(path, i))
		}
	}
	walk(st, nil)
	return out
}

// nodeAt returns the node at path.
func nodeAt(st *template.Node, path []int) *template.Node {
	n := st
	for _, i := range path {
		n = n.Children[i]
	}
	return n
}

// replaceAt returns a copy of st with the node at path replaced.
func replaceAt(st *template.Node, path []int, repl *template.Node) *template.Node {
	if len(path) == 0 {
		return repl
	}
	c := st.Clone()
	n := c
	for _, i := range path[:len(path)-1] {
		n = n.Children[i]
	}
	n.Children[path[len(path)-1]] = repl
	return c.Normalize()
}

// repStat summarizes the repetition counts observed for one array node.
type repStat struct {
	modal   int
	min     int
	uniform bool
	any     bool
}

// allRepStats scans lines once with st (through the shared cache when one
// is available) and collects the repetition-count distribution of every
// array node in the tree, read off the scan's flat ArrayOcc arena — no
// parse trees are built or walked.
func allRepStats(st *template.Node, lines *textio.Lines, cache *score.ScanCache) map[*template.Node]repStat {
	m := parser.NewMatcher(st)
	scan := cache.Scan(m, lines)
	counts := make([]map[int]int, m.NumArrays())
	for _, a := range scan.AllArrays() {
		cm := counts[a.Arr]
		if cm == nil {
			cm = map[int]int{}
			counts[a.Arr] = cm
		}
		cm[a.Reps]++
	}
	out := make(map[*template.Node]repStat, len(counts))
	for idx, cm := range counts {
		if cm == nil {
			continue
		}
		s := repStat{min: -1, any: true, uniform: len(cm) == 1}
		bestN := -1
		for c, n := range cm {
			if n > bestN || (n == bestN && c < s.modal) {
				bestN, s.modal = n, c
			}
			if s.min < 0 || c < s.min {
				s.min = c
			}
		}
		out[m.ArrayNode(idx)] = s
	}
	return out
}

// repStats returns the stats for one array node (kept for tests and the
// public UnfoldVariants entry point).
func repStats(st, target *template.Node, lines *textio.Lines) (modal, min int, uniform, any bool) {
	s := allRepStats(st, lines, nil)[target]
	return s.modal, s.min, s.uniform, s.any
}

// UnfoldVariants builds the unfolding candidates for the array node at
// path: a full struct expansion at the uniform repetition count, and
// partial expansions with prefixes up to min−1 units (§4.3.1, Fig 12a).
func UnfoldVariants(st *template.Node, path []int, lines *textio.Lines) []*template.Node {
	return unfoldVariantsWithStats(st, path, allRepStats(st, lines, nil))
}

// unfoldVariantsWithStats builds the variants from precomputed stats.
func unfoldVariantsWithStats(st *template.Node, path []int, stats map[*template.Node]repStat) []*template.Node {
	arr := nodeAt(st, path)
	if arr.Kind != template.KArray {
		return nil
	}
	s := stats[arr]
	if !s.any {
		return nil
	}
	// Full unfold at the modal repetition count even when counts vary:
	// records with other counts become noise and the regularity score
	// arbitrates. (Noise matching the array with a stray count — e.g. a
	// junk line parsing as a 1-element list — must not veto unfolding.)
	var out []*template.Node
	if s.modal >= 1 {
		out = append(out, replaceAt(st, path, fullUnfold(arr, s.modal)))
	}
	if s.uniform {
		// Every record agrees on the count: the full unfold matches
		// everything a partial unfold would, with strictly finer
		// typing. Skip the dominated partial variants.
		return out
	}
	maxP := s.modal - 1
	if maxP > maxPartialPrefix {
		maxP = maxPartialPrefix
	}
	for p := 1; p <= maxP; p++ {
		out = append(out, replaceAt(st, path, partialUnfold(arr, p)))
	}
	return out
}

// fullUnfold expands Array(U,sep)*U term into U sep U sep ... U term with
// k copies of U.
func fullUnfold(arr *template.Node, k int) *template.Node {
	var children []*template.Node
	for i := 0; i < k; i++ {
		if i > 0 {
			children = append(children, template.Lit(string(arr.Sep)))
		}
		for _, c := range arr.Children {
			children = append(children, c.Clone())
		}
	}
	children = append(children, template.Lit(string(arr.Term)))
	return template.Struct(children...).Normalize()
}

// partialUnfold expands the first p units: U sep U sep ... (U sep)*U term.
func partialUnfold(arr *template.Node, p int) *template.Node {
	var children []*template.Node
	for i := 0; i < p; i++ {
		for _, c := range arr.Children {
			children = append(children, c.Clone())
		}
		children = append(children, template.Lit(string(arr.Sep)))
	}
	children = append(children, arr.Clone())
	return template.Struct(children...).Normalize()
}

// Shift resolves the cyclic-shift ambiguity (§4.3.2, Fig 12b): among all
// cyclic rotations of the template's line segments, it returns the one
// whose first occurrence in the dataset is earliest. Single-line templates
// are returned unchanged.
func Shift(st *template.Node, lines *textio.Lines) *template.Node {
	segs := lineSegments(st)
	if len(segs) < 2 {
		return st
	}
	bestTpl := st
	bestLine := firstOccurrence(st, lines)
	if bestLine < 0 {
		bestLine = lines.N() + 1
	}
	for r := 1; r < len(segs); r++ {
		rotated := make([]*template.Node, 0, 16)
		for k := 0; k < len(segs); k++ {
			rotated = append(rotated, segs[(r+k)%len(segs)]...)
		}
		cand := template.Struct(rotated...).Normalize()
		line := firstOccurrence(cand, lines)
		if line >= 0 && line < bestLine {
			bestLine = line
			bestTpl = cand
		}
	}
	return bestTpl
}

// lineSegments splits the template's token sequence at newline boundaries:
// after a '\n' literal or an array terminated by '\n'.
func lineSegments(st *template.Node) [][]*template.Node {
	toks := template.Tokens(st)
	var segs [][]*template.Node
	var cur []*template.Node
	for _, t := range toks {
		cur = append(cur, t)
		endsNL := (t.Kind == template.KLiteral && t.Lit == "\n") ||
			(t.Kind == template.KArray && t.Term == '\n')
		if endsNL {
			segs = append(segs, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		// Trailing tokens without a newline: not a well-formed
		// block template; treat as one segment so rotation is a
		// no-op for the remainder.
		segs = append(segs, cur)
	}
	return segs
}

// firstOccurrence returns the line index of the template's first matched
// record, or -1. It runs on the allocation-free validate pass: no parse
// trees are built for an early-exit existence probe.
func firstOccurrence(st *template.Node, lines *textio.Lines) int {
	m := parser.NewMatcher(st)
	data := lines.Data()
	n := lines.N()
	for i := 0; i < n; i++ {
		if end, ok, _ := m.MatchEnds(data, lines.Start(i)); ok {
			// Must end at a later line boundary to be a record.
			if j, aligned := lines.AlignedLine(end); aligned && j > i {
				return i
			}
		}
	}
	return -1
}
