// Package relational converts parsed records into relational datasets
// (§3.3, Figure 7 of the paper). Two representations are produced:
//
//   - a normalized form: one root table plus one child table per
//     array-type node, linked by foreign-key references, and
//   - a denormalized form: a single table where array repetitions are
//     folded into one cell per column.
//
// It also implements the relational operations of the formal evaluation
// standard (§9.3): Concat, GroupConcat, Trim, Append, DeleteCol and
// DeleteTable, used to decide whether a target dataset is reconstructible
// from an extraction result.
package relational

import (
	"fmt"
	"io"
	"strings"

	"datamaran/internal/parser"
	"datamaran/internal/template"
)

// Table is a named relation with string-valued cells.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
	// Parent names the table this one references via its parent_id
	// column ("" for the root).
	Parent string
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Col returns the index of the named column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// WriteCSV writes the table in a minimal CSV form (quoting cells that
// contain commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	if err := WriteCSVRow(w, t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := WriteCSVRow(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVRow writes one CSV line with the package's quoting rules —
// shared with the query engine's CSV output so table dumps and query
// results quote identically.
func WriteCSVRow(w io.Writer, cells []string) error {
	for i, c := range cells {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		if _, err := io.WriteString(w, c); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Database is a set of tables; Tables[0] is the root.
type Database struct {
	Tables []*Table
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// schema maps template nodes to table/column slots.
type schema struct {
	// tableOf[arrayNode] is the table index for the array's rows; the
	// root scope is table 0.
	tableOf map[*template.Node]int
	// fieldSlot[fieldNode] is the (table, column) of a field.
	fieldSlot map[*template.Node][2]int
	tables    []*Table
}

// buildSchema assigns every field of st a column in the root table or in a
// per-array child table (Figure 7's normalized representation).
func buildSchema(st *template.Node, rootName string) *schema {
	s := &schema{
		tableOf:   map[*template.Node]int{},
		fieldSlot: map[*template.Node][2]int{},
	}
	root := &Table{Name: rootName, Columns: []string{"id"}}
	s.tables = []*Table{root}
	var walk func(n *template.Node, tableIdx int)
	walk = func(n *template.Node, tableIdx int) {
		switch n.Kind {
		case template.KField:
			t := s.tables[tableIdx]
			col := len(t.Columns)
			t.Columns = append(t.Columns, fmt.Sprintf("f%d", col-s.metaCols(tableIdx)))
			s.fieldSlot[n] = [2]int{tableIdx, col}
		case template.KStruct:
			for _, c := range n.Children {
				walk(c, tableIdx)
			}
		case template.KArray:
			childIdx := len(s.tables)
			child := &Table{
				Name:    fmt.Sprintf("%s_list%d", rootName, childIdx),
				Columns: []string{"id", "parent_id"},
				Parent:  s.tables[tableIdx].Name,
			}
			s.tables = append(s.tables, child)
			s.tableOf[n] = childIdx
			for _, c := range n.Children {
				walk(c, childIdx)
			}
		}
	}
	walk(st, 0)
	return s
}

// metaCols returns the number of leading bookkeeping columns of a table.
func (s *schema) metaCols(tableIdx int) int {
	if tableIdx == 0 {
		return 1 // id
	}
	return 2 // id, parent_id
}

// Build converts a scan result into the normalized relational form: each
// field placeholder becomes a column, each array a child table whose rows
// reference their parent record (Figure 7 left).
func Build(m *parser.Matcher, data []byte, scan *parser.ScanResult, rootName string) *Database {
	if rootName == "" {
		rootName = "records"
	}
	s := buildSchema(m.Template(), rootName)
	for _, rec := range scan.Records {
		s.addRecord(m.Template(), rec.Value, data)
	}
	return &Database{Tables: s.tables}
}

// addRecord appends one parsed record to the schema's tables.
func (s *schema) addRecord(st *template.Node, v *parser.Value, data []byte) {
	rowOf := make([]int, len(s.tables)) // current row index per table, -1 below
	for i := range rowOf {
		rowOf[i] = -1
	}
	newRow := func(tableIdx, parentRow int) int {
		t := s.tables[tableIdx]
		row := make([]string, len(t.Columns))
		row[0] = fmt.Sprintf("%d", len(t.Rows)+1)
		if tableIdx != 0 {
			row[1] = fmt.Sprintf("%d", parentRow+1)
		}
		t.Rows = append(t.Rows, row)
		return len(t.Rows) - 1
	}
	rowOf[0] = newRow(0, -1)
	var walk func(n *template.Node, v *parser.Value, tableIdx int)
	walk = func(n *template.Node, v *parser.Value, tableIdx int) {
		switch n.Kind {
		case template.KField:
			slot := s.fieldSlot[n]
			s.tables[slot[0]].Rows[rowOf[slot[0]]][slot[1]] = string(data[v.Start:v.End])
		case template.KStruct:
			for i, c := range n.Children {
				walk(c, v.Children[i], tableIdx)
			}
		case template.KArray:
			childIdx := s.tableOf[n]
			for _, group := range v.Children {
				rowOf[childIdx] = newRow(childIdx, rowOf[tableIdx])
				for i, c := range n.Children {
					walk(c, group.Children[i], childIdx)
				}
			}
		}
	}
	walk(st, v, 0)
}

// BuildDenormalized converts a scan result into the single-table form
// (Figure 7 right): one row per record, one column per field column of the
// template; array repetitions are joined with the array's separator
// character.
func BuildDenormalized(m *parser.Matcher, data []byte, scan *parser.ScanResult, name string) *Table {
	if name == "" {
		name = "records"
	}
	cols := m.Columns()
	t := &Table{Name: name}
	for i := 0; i < cols; i++ {
		t.Columns = append(t.Columns, fmt.Sprintf("f%d", i))
	}
	for _, rec := range scan.Records {
		row := make([]string, cols)
		joined := make([]bool, cols)
		sep := arraySepByCol(m.Template())
		for _, f := range m.Flatten(rec.Value) {
			val := string(data[f.Start:f.End])
			if row[f.Col] == "" && !joined[f.Col] {
				row[f.Col] = val
				joined[f.Col] = true
			} else {
				row[f.Col] += string(sep[f.Col]) + val
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// arraySepByCol maps each field column to the separator of its enclosing
// array (or ';' outside arrays, unused since such columns never join).
func arraySepByCol(st *template.Node) []byte {
	seps := make([]byte, 0, st.NumFields())
	var walk func(n *template.Node, sep byte)
	walk = func(n *template.Node, sep byte) {
		switch n.Kind {
		case template.KField:
			seps = append(seps, sep)
		case template.KStruct:
			for _, c := range n.Children {
				walk(c, sep)
			}
		case template.KArray:
			for _, c := range n.Children {
				walk(c, n.Sep)
			}
		}
	}
	walk(st, ';')
	return seps
}
