package relational

import (
	"fmt"

	"datamaran/internal/template"
)

// FlatField is one field occurrence carrying its text — the information a
// streamed extraction retains once the original buffer is gone. Col and
// Rep follow parser.FieldOcc: template column in DFS order, repetition
// ordinal inside arrays.
type FlatField struct {
	Col, Rep int
	Value    string
}

// flatSchema augments the template schema with the column→slot table and
// per-child-table parent indices needed to rebuild rows from flattened
// fields rather than parse trees.
type flatSchema struct {
	*schema
	// slots[col] is the (table, column) of template field column col.
	slots [][2]int
	// parentOf[tableIdx] is the parent table index (0 for the root's
	// children; unused for table 0).
	parentOf []int
}

func newFlatSchema(st *template.Node, rootName string) *flatSchema {
	if rootName == "" {
		rootName = "records"
	}
	s := buildSchema(st, rootName)
	fs := &flatSchema{schema: s, parentOf: make([]int, len(s.tables))}
	var walk func(n *template.Node, tableIdx int)
	walk = func(n *template.Node, tableIdx int) {
		switch n.Kind {
		case template.KField:
			fs.slots = append(fs.slots, s.fieldSlot[n])
		case template.KStruct:
			for _, c := range n.Children {
				walk(c, tableIdx)
			}
		case template.KArray:
			childIdx := s.tableOf[n]
			fs.parentOf[childIdx] = tableIdx
			for _, c := range n.Children {
				walk(c, childIdx)
			}
		}
	}
	walk(st, 0)
	return fs
}

// BuildFlat converts flattened records into the normalized relational
// form, mirroring Build without needing the original byte buffer or parse
// trees. Fields of one record must be in flatten (left-to-right) order.
// Array repetitions are recovered from the Rep ordinals; for the
// (unusual) nested-array case repetition grouping degrades to the
// innermost level, the same information Flatten retains.
func BuildFlat(st *template.Node, records [][]FlatField, rootName string) *Database {
	fs := newFlatSchema(st, rootName)
	for _, fields := range records {
		fs.addFlatRecord(fields)
	}
	return &Database{Tables: fs.tables}
}

// addFlatRecord appends one flattened record to the schema's tables.
func (fs *flatSchema) addFlatRecord(fields []FlatField) {
	rowOf := make([]int, len(fs.tables))
	curRep := make([]int, len(fs.tables))
	lastCol := make([]int, len(fs.tables))
	for i := range rowOf {
		rowOf[i] = -1
		curRep[i] = -1
		lastCol[i] = -1
	}
	newRow := func(tableIdx, parentRow int) int {
		t := fs.tables[tableIdx]
		row := make([]string, len(t.Columns))
		row[0] = fmt.Sprintf("%d", len(t.Rows)+1)
		if tableIdx != 0 {
			row[1] = fmt.Sprintf("%d", parentRow+1)
		}
		t.Rows = append(t.Rows, row)
		return len(t.Rows) - 1
	}
	rowOf[0] = newRow(0, -1)
	for _, f := range fields {
		if f.Col < 0 || f.Col >= len(fs.slots) {
			continue
		}
		slot := fs.slots[f.Col]
		ti := slot[0]
		// A new repetition group starts when the ordinal changes — or
		// when the column index wraps back (fields of one group arrive
		// in ascending column order, so a non-greater column means a
		// fresh group rather than an overwrite).
		wrap := rowOf[ti] >= 0 && f.Col <= lastCol[ti]
		if ti != 0 && (rowOf[ti] < 0 || curRep[ti] != f.Rep || wrap) {
			parent := fs.parentOf[ti]
			// A wrap without a rep advance is a fresh *instance* of
			// this array — the enclosing group advanced too, so open
			// a new parent row (one nesting level; deeper chains
			// degrade to merged groups, the information Flatten's
			// innermost-only Rep retains).
			if wrap && f.Rep <= curRep[ti] && parent != 0 {
				rowOf[parent] = newRow(parent, rowOf[fs.parentOf[parent]])
			}
			if rowOf[parent] < 0 {
				// Nested array whose parent group was never
				// materialized: anchor to a fresh parent row.
				rowOf[parent] = newRow(parent, rowOf[fs.parentOf[parent]])
			}
			rowOf[ti] = newRow(ti, rowOf[parent])
			curRep[ti] = f.Rep
		}
		fs.tables[ti].Rows[rowOf[ti]][slot[1]] = f.Value
		lastCol[ti] = f.Col
	}
}

// ArraySeps maps each field column of st to its enclosing array's
// separator — the join character DenormRow uses when a column repeats.
// Exported for the record store, whose segment rows are denormalized
// one record at a time instead of through a Table.
func ArraySeps(st *template.Node) []byte { return arraySepByCol(st) }

// DenormRow converts one flattened record into its denormalized row:
// one cell per template field column, repetitions joined with the
// column's array separator (seps from ArraySeps). row is reused when it
// has the right length, so a streaming writer can avoid per-record
// allocation; the returned slice is row (or a fresh one).
func DenormRow(st *template.Node, seps []byte, fields []FlatField, row []string) []string {
	cols := st.NumFields()
	if len(row) != cols {
		row = make([]string, cols)
	}
	joined := make([]bool, cols)
	for i := range row {
		row[i] = ""
	}
	for _, f := range fields {
		if f.Col < 0 || f.Col >= cols {
			continue
		}
		if row[f.Col] == "" && !joined[f.Col] {
			row[f.Col] = f.Value
			joined[f.Col] = true
		} else {
			row[f.Col] += string(seps[f.Col]) + f.Value
		}
	}
	return row
}

// BuildDenormalizedFlat converts flattened records into the single-table
// form, mirroring BuildDenormalized without the original buffer.
func BuildDenormalizedFlat(st *template.Node, records [][]FlatField, name string) *Table {
	if name == "" {
		name = "records"
	}
	cols := st.NumFields()
	t := &Table{Name: name}
	for i := 0; i < cols; i++ {
		t.Columns = append(t.Columns, fmt.Sprintf("f%d", i))
	}
	sep := arraySepByCol(st)
	for _, fields := range records {
		t.Rows = append(t.Rows, DenormRow(st, sep, fields, nil))
	}
	return t
}
