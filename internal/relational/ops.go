package relational

import (
	"errors"
	"fmt"
	"strings"
)

// The operations below are the vocabulary of the formal evaluation
// standard (§9.3): an extraction is successful iff the target relation can
// be reconstructed from the extracted relation using only these.

// Concat creates a new column named newCol in t whose value is the
// concatenation of columns c1 and c2 for each row.
func Concat(t *Table, c1, c2, newCol string) error {
	i1, i2 := t.Col(c1), t.Col(c2)
	if i1 < 0 || i2 < 0 {
		return fmt.Errorf("relational: Concat: no column %q or %q in %s", c1, c2, t.Name)
	}
	t.Columns = append(t.Columns, newCol)
	for r, row := range t.Rows {
		t.Rows[r] = append(row, row[i1]+row[i2])
	}
	return nil
}

// GroupConcat creates a new column in parent: for each parent row, the
// concatenation of column c of the child rows whose foreign-key column fk
// references it (in child row order).
func GroupConcat(parent, child *Table, fk, c, newCol string) error {
	fkIdx, cIdx := child.Col(fk), child.Col(c)
	idIdx := parent.Col("id")
	if fkIdx < 0 || cIdx < 0 {
		return fmt.Errorf("relational: GroupConcat: missing column %q or %q in %s", fk, c, child.Name)
	}
	if idIdx < 0 {
		return errors.New("relational: GroupConcat: parent has no id column")
	}
	groups := map[string]*strings.Builder{}
	for _, row := range child.Rows {
		b, ok := groups[row[fkIdx]]
		if !ok {
			b = &strings.Builder{}
			groups[row[fkIdx]] = b
		}
		b.WriteString(row[cIdx])
	}
	parent.Columns = append(parent.Columns, newCol)
	for r, row := range parent.Rows {
		val := ""
		if b, ok := groups[row[idIdx]]; ok {
			val = b.String()
		}
		parent.Rows[r] = append(row, val)
	}
	return nil
}

// Trim removes the first pre and last suf characters of every value in
// column c (values shorter than pre+suf become empty).
func Trim(t *Table, c string, pre, suf int) error {
	i := t.Col(c)
	if i < 0 {
		return fmt.Errorf("relational: Trim: no column %q in %s", c, t.Name)
	}
	for _, row := range t.Rows {
		v := row[i]
		if len(v) <= pre+suf {
			row[i] = ""
			continue
		}
		row[i] = v[pre : len(v)-suf]
	}
	return nil
}

// Append adds constant prefix and suffix strings to every value of column
// c.
func Append(t *Table, c, prefix, suffix string) error {
	i := t.Col(c)
	if i < 0 {
		return fmt.Errorf("relational: Append: no column %q in %s", c, t.Name)
	}
	for _, row := range t.Rows {
		row[i] = prefix + row[i] + suffix
	}
	return nil
}

// DeleteCol removes column c from t.
func DeleteCol(t *Table, c string) error {
	i := t.Col(c)
	if i < 0 {
		return fmt.Errorf("relational: DeleteCol: no column %q in %s", c, t.Name)
	}
	t.Columns = append(t.Columns[:i], t.Columns[i+1:]...)
	for r, row := range t.Rows {
		t.Rows[r] = append(row[:i], row[i+1:]...)
	}
	return nil
}

// DeleteTable removes the named table from d.
func DeleteTable(d *Database, name string) error {
	for i, t := range d.Tables {
		if t.Name == name {
			d.Tables = append(d.Tables[:i], d.Tables[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("relational: DeleteTable: no table %q", name)
}
