package relational

import (
	"bytes"
	"strings"
	"testing"

	"datamaran/internal/parser"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

func fld() *template.Node         { return template.Field() }
func lit(s string) *template.Node { return template.Lit(s) }
func stc(c ...*template.Node) *template.Node {
	return template.Struct(c...).Normalize()
}

// attachTrees re-parses each scanned record through the tree API: the
// arena-based Scan leaves Record.Value nil, while Build/BuildDenormalized
// walk parse trees (their production callers rebuild trees the same way).
func attachTrees(m *parser.Matcher, b []byte, scan *parser.ScanResult) *parser.ScanResult {
	for i := range scan.Records {
		v, _, ok := m.Match(b, scan.Records[i].Start)
		if !ok {
			panic("attachTrees: record no longer matches")
		}
		scan.Records[i].Value = v
	}
	return scan
}

func scanOf(tm *template.Node, data string) (*parser.Matcher, []byte, *parser.ScanResult) {
	m := parser.NewMatcher(tm)
	b := []byte(data)
	return m, b, attachTrees(m, b, m.Scan(textio.NewLines(b)))
}

func TestBuildFlatTemplate(t *testing.T) {
	tm := stc(fld(), lit(","), fld(), lit("\n"))
	m, data, scan := scanOf(tm, "a,b\nc,d\n")
	db := Build(m, data, scan, "recs")
	if len(db.Tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(db.Tables))
	}
	root := db.Tables[0]
	if root.Name != "recs" {
		t.Fatalf("root name = %q", root.Name)
	}
	wantCols := []string{"id", "f0", "f1"}
	if strings.Join(root.Columns, "|") != strings.Join(wantCols, "|") {
		t.Fatalf("columns = %v, want %v", root.Columns, wantCols)
	}
	if root.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", root.NumRows())
	}
	if root.Rows[0][1] != "a" || root.Rows[1][2] != "d" {
		t.Fatalf("cell values wrong: %v", root.Rows)
	}
}

func TestBuildNormalizedArrayChildTable(t *testing.T) {
	// Figure 7: F,F,"(F,)*F",F\n → root + one child list table with FK.
	inner := template.Array([]*template.Node{fld()}, ',', '"')
	tm := stc(fld(), lit(","), fld(), lit(`,"`), inner, lit(","), fld(), lit("\n"))
	m, data, scan := scanOf(tm, "a,b,\"1,2,3\",z\nc,d,\"4\",w\n")
	db := Build(m, data, scan, "recs")
	if len(db.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(db.Tables))
	}
	root, child := db.Tables[0], db.Tables[1]
	if root.NumRows() != 2 {
		t.Fatalf("root rows = %d, want 2", root.NumRows())
	}
	if child.NumRows() != 4 {
		t.Fatalf("child rows = %d, want 4 (3 + 1)", child.NumRows())
	}
	if child.Parent != "recs" {
		t.Fatalf("child parent = %q", child.Parent)
	}
	// First three child rows reference record 1, last references 2.
	for i := 0; i < 3; i++ {
		if child.Rows[i][1] != "1" {
			t.Errorf("child row %d parent_id = %q, want 1", i, child.Rows[i][1])
		}
	}
	if child.Rows[3][1] != "2" {
		t.Errorf("child row 3 parent_id = %q, want 2", child.Rows[3][1])
	}
	if child.Rows[0][2] != "1" || child.Rows[2][2] != "3" || child.Rows[3][2] != "4" {
		t.Fatalf("child values wrong: %v", child.Rows)
	}
}

func TestBuildNestedArrays(t *testing.T) {
	// (F,F|)*F,F;\n over groups: outer array → child table of pairs.
	outer := template.Array([]*template.Node{fld(), lit(","), fld()}, '|', ';')
	tm := stc(outer, lit("\n"))
	m, data, scan := scanOf(tm, "1,2|3,4;\n5,6;\n")
	db := Build(m, data, scan, "recs")
	if len(db.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(db.Tables))
	}
	child := db.Tables[1]
	if child.NumRows() != 3 {
		t.Fatalf("child rows = %d, want 3", child.NumRows())
	}
	if child.Rows[0][2] != "1" || child.Rows[0][3] != "2" || child.Rows[2][2] != "5" {
		t.Fatalf("child cells wrong: %v", child.Rows)
	}
}

func TestBuildDenormalized(t *testing.T) {
	inner := template.Array([]*template.Node{fld()}, ',', '"')
	tm := stc(fld(), lit(`,"`), inner, lit("\n"))
	m, data, scan := scanOf(tm, "a,\"1,2,3\"\nb,\"4,5\"\n")
	tab := BuildDenormalized(m, data, scan, "recs")
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tab.NumRows())
	}
	if tab.Rows[0][0] != "a" || tab.Rows[0][1] != "1,2,3" {
		t.Fatalf("row 0 = %v", tab.Rows[0])
	}
	if tab.Rows[1][1] != "4,5" {
		t.Fatalf("row 1 = %v", tab.Rows[1])
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{
		Name:    "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x", "y,z"}, {"q\"r", "s"}},
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,\"y,z\"\n\"q\"\"r\",s\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestDatabaseTableLookup(t *testing.T) {
	db := &Database{Tables: []*Table{{Name: "x"}, {Name: "y"}}}
	if db.Table("y") == nil || db.Table("z") != nil {
		t.Fatal("Table lookup broken")
	}
}

func TestConcat(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"x", "y"}}}
	if err := Concat(tab, "a", "b", "ab"); err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][2] != "12" || tab.Rows[1][2] != "xy" {
		t.Fatalf("Concat rows = %v", tab.Rows)
	}
	if err := Concat(tab, "a", "nope", "x"); err == nil {
		t.Fatal("expected error for missing column")
	}
}

func TestGroupConcat(t *testing.T) {
	parent := &Table{Columns: []string{"id"}, Rows: [][]string{{"1"}, {"2"}}}
	child := &Table{
		Columns: []string{"id", "parent_id", "v"},
		Rows: [][]string{
			{"1", "1", "a"}, {"2", "1", "b"}, {"3", "2", "c"},
		},
	}
	if err := GroupConcat(parent, child, "parent_id", "v", "vs"); err != nil {
		t.Fatal(err)
	}
	if parent.Rows[0][1] != "ab" || parent.Rows[1][1] != "c" {
		t.Fatalf("GroupConcat rows = %v", parent.Rows)
	}
}

func TestGroupConcatEmptyGroup(t *testing.T) {
	parent := &Table{Columns: []string{"id"}, Rows: [][]string{{"1"}}}
	child := &Table{Columns: []string{"id", "parent_id", "v"}}
	if err := GroupConcat(parent, child, "parent_id", "v", "vs"); err != nil {
		t.Fatal(err)
	}
	if parent.Rows[0][1] != "" {
		t.Fatalf("empty group should give empty string, got %q", parent.Rows[0][1])
	}
}

func TestTrim(t *testing.T) {
	tab := &Table{Columns: []string{"a"}, Rows: [][]string{{"[abc]"}, {"[]"}, {"x"}}}
	if err := Trim(tab, "a", 1, 1); err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][0] != "abc" || tab.Rows[1][0] != "" || tab.Rows[2][0] != "" {
		t.Fatalf("Trim rows = %v", tab.Rows)
	}
}

func TestAppendOp(t *testing.T) {
	tab := &Table{Columns: []string{"a"}, Rows: [][]string{{"x"}}}
	if err := Append(tab, "a", "<", ">"); err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][0] != "<x>" {
		t.Fatalf("Append row = %v", tab.Rows[0])
	}
}

func TestDeleteCol(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b", "c"}, Rows: [][]string{{"1", "2", "3"}}}
	if err := DeleteCol(tab, "b"); err != nil {
		t.Fatal(err)
	}
	if strings.Join(tab.Columns, "") != "ac" || strings.Join(tab.Rows[0], "") != "13" {
		t.Fatalf("DeleteCol = %v %v", tab.Columns, tab.Rows)
	}
}

func TestDeleteTable(t *testing.T) {
	db := &Database{Tables: []*Table{{Name: "a"}, {Name: "b"}}}
	if err := DeleteTable(db, "a"); err != nil {
		t.Fatal(err)
	}
	if len(db.Tables) != 1 || db.Tables[0].Name != "b" {
		t.Fatalf("DeleteTable left %v", db.Tables)
	}
	if err := DeleteTable(db, "zzz"); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestReconstructTargetViaOps(t *testing.T) {
	// End-to-end §9.3 scenario: extract [F:F:F] F\n, then rebuild the
	// time target "01:05:02" via Append + Concat.
	tm := stc(lit("["), fld(), lit(":"), fld(), lit(":"), fld(), lit("] "), fld(), lit("\n"))
	m, data, scan := scanOf(tm, "[01:05:02] 1.2.3.4\n[23:59:59] 5.6.7.8\n")
	db := Build(m, data, scan, "recs")
	root := db.Tables[0]
	if err := Append(root, "f0", "", ":"); err != nil {
		t.Fatal(err)
	}
	if err := Append(root, "f1", "", ":"); err != nil {
		t.Fatal(err)
	}
	if err := Concat(root, "f0", "f1", "t1"); err != nil {
		t.Fatal(err)
	}
	if err := Concat(root, "t1", "f2", "time"); err != nil {
		t.Fatal(err)
	}
	i := root.Col("time")
	if root.Rows[0][i] != "01:05:02" || root.Rows[1][i] != "23:59:59" {
		t.Fatalf("reconstructed times = %q, %q", root.Rows[0][i], root.Rows[1][i])
	}
}

// Property: the normalized and denormalized forms contain the same field
// values for flat templates.
func TestQuickFormsAgreeOnFlatTemplates(t *testing.T) {
	tm := stc(fld(), lit("|"), fld(), lit("\n"))
	data := "a|b\nc|d\ne|f\n"
	m, bts, scan := scanOf(tm, data)
	db := Build(m, bts, scan, "r")
	den := BuildDenormalized(m, bts, scan, "r")
	root := db.Tables[0]
	if root.NumRows() != den.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", root.NumRows(), den.NumRows())
	}
	for r := range den.Rows {
		for c := range den.Rows[r] {
			if den.Rows[r][c] != root.Rows[r][c+1] { // +1 skips id
				t.Fatalf("cell (%d,%d) differs: %q vs %q", r, c, den.Rows[r][c], root.Rows[r][c+1])
			}
		}
	}
}

// Property: every child row's parent_id references an existing parent id.
func TestChildForeignKeysValid(t *testing.T) {
	inner := template.Array([]*template.Node{fld()}, ';', '"')
	tm := stc(fld(), lit(` "`), inner, lit("\n"))
	m, bts, scan := scanOf(tm, "a \"1;2\"\nb \"3\"\nc \"4;5;6\"\n")
	db := Build(m, bts, scan, "r")
	parents := map[string]bool{}
	for _, row := range db.Tables[0].Rows {
		parents[row[0]] = true
	}
	for _, row := range db.Tables[1].Rows {
		if !parents[row[1]] {
			t.Fatalf("dangling parent_id %q", row[1])
		}
	}
}

func TestGroupConcatAfterBuildReconstructsList(t *testing.T) {
	// §9.3's GroupConcat over a built child table restores the list.
	inner := template.Array([]*template.Node{fld()}, ',', ';')
	tm := stc(lit("x "), inner, lit("\n"))
	m, bts, scan := scanOf(tm, "x 1,2,3;\nx 9;\n")
	db := Build(m, bts, scan, "r")
	root, child := db.Tables[0], db.Tables[1]
	if err := GroupConcat(root, child, "parent_id", "f0", "joined"); err != nil {
		t.Fatal(err)
	}
	i := root.Col("joined")
	if root.Rows[0][i] != "123" || root.Rows[1][i] != "9" {
		t.Fatalf("joined = %q, %q", root.Rows[0][i], root.Rows[1][i])
	}
}

func TestBuildEmptyScan(t *testing.T) {
	tm := stc(fld(), lit("\n"))
	m := parser.NewMatcher(tm)
	db := Build(m, nil, &parser.ScanResult{}, "empty")
	if len(db.Tables) != 1 || db.Tables[0].NumRows() != 0 {
		t.Fatalf("empty build = %+v", db.Tables)
	}
}

func TestDenormalizedEmptyFieldCells(t *testing.T) {
	tm := stc(fld(), lit(","), fld(), lit("\n"))
	m, bts, scan := scanOf(tm, ",x\ny,\n")
	den := BuildDenormalized(m, bts, scan, "r")
	if den.Rows[0][0] != "" || den.Rows[0][1] != "x" {
		t.Fatalf("row 0 = %v", den.Rows[0])
	}
	if den.Rows[1][0] != "y" || den.Rows[1][1] != "" {
		t.Fatalf("row 1 = %v", den.Rows[1])
	}
}

// TestBuildFlatNestedArrayEqualReps pins the nested-array case where
// innermost Rep ordinals repeat across outer groups: the flat builder
// must open a new row (column wrap detection) instead of overwriting.
func TestBuildFlatNestedArrayEqualReps(t *testing.T) {
	inner := template.Array([]*template.Node{template.Field()}, ',', ';')
	outer := template.Array([]*template.Node{inner}, ' ', '\n')
	m := parser.NewMatcher(outer)
	data := []byte("a; b;\n")
	lines := textio.NewLines(data)
	scan := attachTrees(m, data, m.Scan(lines))
	if len(scan.Records) != 1 {
		t.Fatalf("records = %d", len(scan.Records))
	}
	want := Build(m, data, scan, "t")

	var flat [][]FlatField
	for _, rec := range scan.Records {
		var fs []FlatField
		for _, f := range m.Flatten(rec.Value) {
			fs = append(fs, FlatField{Col: f.Col, Rep: f.Rep, Value: string(data[f.Start:f.End])})
		}
		flat = append(flat, fs)
	}
	got := BuildFlat(outer, flat, "t")
	if len(got.Tables) != len(want.Tables) {
		t.Fatalf("tables = %d, want %d", len(got.Tables), len(want.Tables))
	}
	for i := range want.Tables {
		w, g := want.Tables[i], got.Tables[i]
		if len(g.Rows) != len(w.Rows) {
			t.Fatalf("table %s: rows = %d, want %d (%v vs %v)", w.Name, len(g.Rows), len(w.Rows), g.Rows, w.Rows)
		}
		// Both "a" and "b" must survive in the innermost table.
		for r := range w.Rows {
			for c := range w.Rows[r] {
				if g.Rows[r][c] != w.Rows[r][c] {
					t.Errorf("table %s row %d col %d = %q, want %q", w.Name, r, c, g.Rows[r][c], w.Rows[r][c])
				}
			}
		}
	}
}
