// Package textio provides the text-layer substrate for Datamaran: line
// indexing over a byte buffer, block slicing between end-of-line
// characters, and the cache-aware chunk sampling used by the generation
// and evaluation steps on large datasets (§9.1 of the paper).
package textio

import (
	"bytes"
	"math/rand"
)

// Lines indexes the line structure of a dataset. Per Definition 2.4,
// blocks are separated by '\n'; a candidate record is the content between
// two line boundaries at most L lines apart.
type Lines struct {
	data []byte
	// starts[i] is the byte offset of the first byte of line i.
	// A sentinel entry equal to len(data) is appended so that
	// starts[i+1] is always valid for line i.
	starts []int
}

// NewLines builds a line index for data. A trailing line without a final
// '\n' is still counted as a line.
func NewLines(data []byte) *Lines {
	starts := make([]int, 0, bytes.Count(data, []byte{'\n'})+2)
	if len(data) > 0 {
		starts = append(starts, 0)
		for i := 0; i < len(data)-1; i++ {
			if data[i] == '\n' {
				starts = append(starts, i+1)
			}
		}
	}
	starts = append(starts, len(data))
	l := &Lines{data: data, starts: starts}
	return l
}

// N returns the number of lines.
func (l *Lines) N() int { return len(l.starts) - 1 }

// Data returns the underlying buffer.
func (l *Lines) Data() []byte { return l.data }

// Line returns the content of line i including its trailing '\n' when
// present.
func (l *Lines) Line(i int) []byte {
	return l.data[l.starts[i]:l.starts[i+1]]
}

// Start returns the byte offset of line i. Start(N()) is len(data).
func (l *Lines) Start(i int) int { return l.starts[i] }

// Slice returns the contents of lines [from, to) including trailing
// newlines.
func (l *Lines) Slice(from, to int) []byte {
	return l.data[l.starts[from]:l.starts[to]]
}

// AlignedLine returns the index of the line starting at byte offset off,
// and whether off is a line boundary. Offset len(data) counts as the
// boundary of the sentinel line N(). It is the shared offset→line index
// of the scanners — a binary search over the sorted starts, so concurrent
// matchers share one index instead of each building an offset map.
func (l *Lines) AlignedLine(off int) (int, bool) {
	lo, hi := 0, len(l.starts)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if l.starts[mid] < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.starts) && l.starts[lo] == off {
		return lo, true
	}
	return 0, false
}

// Sampler extracts a bounded, cache-friendly sample of a dataset: a few
// large contiguous chunks, concatenated at line boundaries. Per §9.1 this
// caps Sdata so the generation and evaluation steps run in time
// independent of the total dataset size.
type Sampler struct {
	// Budget is the maximum number of bytes in the sample. Zero means
	// no sampling (the whole dataset is the sample).
	Budget int
	// Chunks is the number of contiguous chunks to cut. Zero means 8.
	Chunks int
	// Seed makes sampling deterministic.
	Seed int64
}

// Sample returns a sample of data no larger than s.Budget (when Budget>0)
// cut at line boundaries. If the dataset fits in the budget it is returned
// unchanged (no copy).
func (s Sampler) Sample(data []byte) []byte {
	if s.Budget <= 0 || len(data) <= s.Budget {
		return data
	}
	nChunks := s.Chunks
	if nChunks <= 0 {
		nChunks = 8
	}
	lines := NewLines(data)
	n := lines.N()
	if n == 0 {
		return data[:s.Budget]
	}
	perChunk := s.Budget / nChunks
	if perChunk <= 0 {
		perChunk = s.Budget
		nChunks = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]byte, 0, s.Budget)
	// Cut nChunks chunks starting at random line offsets spread over
	// the file; each chunk extends whole lines until its byte share is
	// exhausted.
	for c := 0; c < nChunks && len(out) < s.Budget; c++ {
		// Stratified start: chunk c starts in the c-th n/nChunks
		// stripe so samples cover the whole file.
		lo := c * n / nChunks
		hi := (c + 1) * n / nChunks
		if hi <= lo {
			hi = lo + 1
		}
		start := lo + rng.Intn(hi-lo)
		budget := perChunk
		if c == nChunks-1 {
			budget = s.Budget - len(out)
		}
		for i := start; i < n && budget > 0; i++ {
			line := lines.Line(i)
			if len(line) > budget && len(out) > 0 {
				break
			}
			out = append(out, line...)
			budget -= len(line)
		}
	}
	if len(out) == 0 {
		return data[:s.Budget]
	}
	return out
}
