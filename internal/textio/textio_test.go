package textio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinesBasic(t *testing.T) {
	l := NewLines([]byte("a\nbb\nccc\n"))
	if got := l.N(); got != 3 {
		t.Fatalf("N() = %d, want 3", got)
	}
	if got := string(l.Line(0)); got != "a\n" {
		t.Errorf("Line(0) = %q", got)
	}
	if got := string(l.Line(1)); got != "bb\n" {
		t.Errorf("Line(1) = %q", got)
	}
	if got := string(l.Line(2)); got != "ccc\n" {
		t.Errorf("Line(2) = %q", got)
	}
}

func TestLinesNoTrailingNewline(t *testing.T) {
	l := NewLines([]byte("a\nb"))
	if got := l.N(); got != 2 {
		t.Fatalf("N() = %d, want 2", got)
	}
	if got := string(l.Line(1)); got != "b" {
		t.Errorf("Line(1) = %q, want \"b\"", got)
	}
}

func TestLinesEmpty(t *testing.T) {
	l := NewLines(nil)
	if got := l.N(); got != 0 {
		t.Fatalf("N() = %d, want 0", got)
	}
}

func TestLinesSingleNewline(t *testing.T) {
	l := NewLines([]byte("\n"))
	if got := l.N(); got != 1 {
		t.Fatalf("N() = %d, want 1", got)
	}
	if got := string(l.Line(0)); got != "\n" {
		t.Errorf("Line(0) = %q", got)
	}
}

func TestLinesEmptyLines(t *testing.T) {
	l := NewLines([]byte("\n\nx\n\n"))
	if got := l.N(); got != 4 {
		t.Fatalf("N() = %d, want 4", got)
	}
	if got := string(l.Line(2)); got != "x\n" {
		t.Errorf("Line(2) = %q", got)
	}
	if got := string(l.Line(3)); got != "\n" {
		t.Errorf("Line(3) = %q", got)
	}
}

func TestLinesSlice(t *testing.T) {
	l := NewLines([]byte("a\nbb\nccc\ndddd\n"))
	if got := string(l.Slice(1, 3)); got != "bb\nccc\n" {
		t.Fatalf("Slice(1,3) = %q", got)
	}
	if got := string(l.Slice(0, l.N())); got != "a\nbb\nccc\ndddd\n" {
		t.Fatalf("full Slice = %q", got)
	}
	if got := string(l.Slice(2, 2)); got != "" {
		t.Fatalf("empty Slice = %q", got)
	}
}

func TestLinesStart(t *testing.T) {
	data := []byte("ab\ncd\n")
	l := NewLines(data)
	if got := l.Start(0); got != 0 {
		t.Errorf("Start(0) = %d", got)
	}
	if got := l.Start(1); got != 3 {
		t.Errorf("Start(1) = %d", got)
	}
	if got := l.Start(2); got != len(data) {
		t.Errorf("Start(N) = %d, want %d", got, len(data))
	}
}

// Property: concatenating all lines reproduces the input exactly.
func TestQuickLinesRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		l := NewLines(raw)
		var buf bytes.Buffer
		for i := 0; i < l.N(); i++ {
			buf.Write(l.Line(i))
		}
		return bytes.Equal(buf.Bytes(), raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every line except possibly the last ends in '\n', and no line
// contains an interior '\n'.
func TestQuickLinesShape(t *testing.T) {
	f := func(raw []byte) bool {
		l := NewLines(raw)
		for i := 0; i < l.N(); i++ {
			line := l.Line(i)
			if len(line) == 0 {
				return false
			}
			interior := line[:len(line)-1]
			if bytes.IndexByte(interior, '\n') >= 0 {
				return false
			}
			if i < l.N()-1 && line[len(line)-1] != '\n' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerSmallDataUnchanged(t *testing.T) {
	data := []byte("a\nb\nc\n")
	s := Sampler{Budget: 100}
	got := s.Sample(data)
	if !bytes.Equal(got, data) {
		t.Fatalf("Sample of small data = %q, want unchanged", got)
	}
}

func TestSamplerZeroBudgetUnchanged(t *testing.T) {
	data := []byte(strings.Repeat("line\n", 1000))
	s := Sampler{}
	if got := s.Sample(data); !bytes.Equal(got, data) {
		t.Fatal("zero budget should disable sampling")
	}
}

func TestSamplerRespectsBudget(t *testing.T) {
	data := []byte(strings.Repeat("0123456789\n", 10000))
	s := Sampler{Budget: 4096, Seed: 7}
	got := s.Sample(data)
	if len(got) > 4096+11 {
		t.Fatalf("sample size %d exceeds budget 4096 (+1 line slack)", len(got))
	}
	if len(got) == 0 {
		t.Fatal("sample should not be empty")
	}
}

func TestSamplerCutsAtLineBoundaries(t *testing.T) {
	data := []byte(strings.Repeat("alpha,beta,gamma\n", 5000))
	s := Sampler{Budget: 2048, Seed: 3}
	got := s.Sample(data)
	for _, ln := range bytes.SplitAfter(got, []byte{'\n'}) {
		if len(ln) == 0 {
			continue
		}
		if !bytes.HasSuffix(ln, []byte{'\n'}) && !bytes.Equal(ln, []byte("alpha,beta,gamma")) {
			t.Fatalf("sample contains partial line %q", ln)
		}
		if bytes.HasSuffix(ln, []byte{'\n'}) && string(ln) != "alpha,beta,gamma\n" {
			t.Fatalf("sample contains mangled line %q", ln)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	data := []byte(strings.Repeat("0123456789\n", 10000))
	a := Sampler{Budget: 4096, Seed: 42}.Sample(data)
	b := Sampler{Budget: 4096, Seed: 42}.Sample(data)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed should give same sample")
	}
}

func TestSamplerCoversFile(t *testing.T) {
	// Lines in the second half of the file must appear in the sample:
	// chunks are stratified across the file.
	var sb strings.Builder
	for i := 0; i < 10000; i++ {
		if i < 5000 {
			sb.WriteString("first\n")
		} else {
			sb.WriteString("second\n")
		}
	}
	got := Sampler{Budget: 8192, Seed: 1}.Sample([]byte(sb.String()))
	if !bytes.Contains(got, []byte("second")) {
		t.Fatal("sample never reached the second half of the file")
	}
	if !bytes.Contains(got, []byte("first")) {
		t.Fatal("sample never covered the first half of the file")
	}
}

func TestLinesLastLineOnlyNewlines(t *testing.T) {
	l := NewLines([]byte("\n\n\n"))
	if l.N() != 3 {
		t.Fatalf("N = %d", l.N())
	}
	for i := 0; i < 3; i++ {
		if string(l.Line(i)) != "\n" {
			t.Fatalf("line %d = %q", i, l.Line(i))
		}
	}
}

func TestSamplerBudgetLargerThanData(t *testing.T) {
	data := []byte("one\ntwo\n")
	got := Sampler{Budget: 1 << 20}.Sample(data)
	if &got[0] != &data[0] {
		t.Fatal("sample should alias the input when it fits the budget")
	}
}

func TestSamplerSingleChunk(t *testing.T) {
	data := []byte(strings.Repeat("abcdefgh\n", 2000))
	got := Sampler{Budget: 512, Chunks: 1, Seed: 5}.Sample(data)
	if len(got) == 0 || len(got) > 512+9 {
		t.Fatalf("sample size %d", len(got))
	}
}

func TestSamplerNoNewlines(t *testing.T) {
	data := bytes.Repeat([]byte{'x'}, 10000)
	got := Sampler{Budget: 128, Seed: 1}.Sample(data)
	if len(got) == 0 {
		t.Fatal("sample empty for newline-free data")
	}
}
