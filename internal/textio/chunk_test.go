package textio

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// readAllChunks drains a ChunkReader, asserting chunk-local invariants.
func readAllChunks(t *testing.T, cr *ChunkReader) [][]byte {
	t.Helper()
	var chunks [][]byte
	for {
		c, err := cr.Next()
		if len(c) > 0 {
			chunks = append(chunks, c)
		}
		if err == io.EOF {
			return chunks
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
}

func TestChunkReaderReassembles(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "line %d with some padding text\n", i)
	}
	want := b.String()
	for _, size := range []int{1, 7, 64, 300, 1 << 20} {
		cr := NewChunkReader(strings.NewReader(want), size)
		chunks := readAllChunks(t, cr)
		var got []byte
		for i, c := range chunks {
			if i < len(chunks)-1 && (len(c) == 0 || c[len(c)-1] != '\n') {
				t.Fatalf("size %d: chunk %d not line-aligned (%q...)", size, i, c[max(0, len(c)-10):])
			}
			got = append(got, c...)
		}
		if string(got) != want {
			t.Fatalf("size %d: reassembly differs (%d vs %d bytes)", size, len(got), len(want))
		}
	}
}

func TestChunkReaderNoTrailingNewline(t *testing.T) {
	in := "a,b\nc,d\nunterminated tail"
	cr := NewChunkReader(strings.NewReader(in), 4)
	chunks := readAllChunks(t, cr)
	var got []byte
	for _, c := range chunks {
		got = append(got, c...)
	}
	if string(got) != in {
		t.Fatalf("got %q, want %q", got, in)
	}
	last := chunks[len(chunks)-1]
	if !bytes.HasSuffix(last, []byte("unterminated tail")) {
		t.Fatalf("tail chunk = %q", last)
	}
}

func TestChunkReaderOversizedLine(t *testing.T) {
	long := strings.Repeat("x", 10_000)
	in := "short\n" + long + "\nshort2\n"
	cr := NewChunkReader(strings.NewReader(in), 16)
	chunks := readAllChunks(t, cr)
	var got []byte
	for i, c := range chunks {
		if c[len(c)-1] != '\n' && i != len(chunks)-1 {
			t.Fatalf("chunk %d not line-aligned", i)
		}
		got = append(got, c...)
	}
	if string(got) != in {
		t.Fatal("reassembly differs")
	}
}

func TestChunkReaderEmpty(t *testing.T) {
	cr := NewChunkReader(strings.NewReader(""), 16)
	if c, err := cr.Next(); err != io.EOF || len(c) != 0 {
		t.Fatalf("Next = %q, %v; want nil, EOF", c, err)
	}
}

// errReader fails after serving its payload.
type errReader struct {
	data []byte
	err  error
}

func (e *errReader) Read(p []byte) (int, error) {
	if len(e.data) == 0 {
		return 0, e.err
	}
	n := copy(p, e.data)
	e.data = e.data[n:]
	return n, nil
}

func TestChunkReaderSurfacesBytesBeforeError(t *testing.T) {
	boom := fmt.Errorf("boom")
	cr := NewChunkReader(&errReader{data: []byte("a\nb\nc"), err: boom}, 1<<20)
	c, err := cr.Next()
	if string(c) != "a\nb\nc" || err != nil {
		t.Fatalf("Next = %q, %v; want all bytes, nil", c, err)
	}
	if _, err := cr.Next(); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestAlignedLine(t *testing.T) {
	l := NewLines([]byte("ab\ncd\nef"))
	cases := []struct {
		off     int
		line    int
		aligned bool
	}{
		{0, 0, true}, {3, 1, true}, {6, 2, true}, {8, 3, true},
		{1, 0, false}, {2, 0, false}, {7, 0, false},
	}
	for _, c := range cases {
		line, ok := l.AlignedLine(c.off)
		if ok != c.aligned || (ok && line != c.line) {
			t.Errorf("AlignedLine(%d) = %d, %v; want %d, %v", c.off, line, ok, c.line, c.aligned)
		}
	}
}
