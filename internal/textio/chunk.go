package textio

import (
	"bytes"
	"io"
)

// ChunkReader slices a byte stream into line-aligned chunks of roughly a
// target size. Every chunk but the last ends exactly after a '\n'; bytes
// of a line straddling the target boundary are carried over into the next
// chunk, so no line is ever split across chunks. It is the shard source of
// the streaming extraction engine (internal/pipeline): shards can be
// matched independently because each holds whole lines.
//
// A line longer than the target size is returned as one oversized chunk
// rather than being split.
type ChunkReader struct {
	r    io.Reader
	size int
	// carry holds the partial trailing line of the previous read.
	carry []byte
	err   error
}

// DefaultChunkSize is the shard granularity used when no size is given.
const DefaultChunkSize = 1 << 20

// NewChunkReader returns a ChunkReader emitting chunks of about size
// bytes. size <= 0 selects DefaultChunkSize.
func NewChunkReader(r io.Reader, size int) *ChunkReader {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &ChunkReader{r: r, size: size}
}

// Next returns the next line-aligned chunk. The returned slice is owned by
// the caller (it is never reused). At end of stream it returns the final
// bytes (possibly without a trailing '\n') and then (nil, io.EOF); any
// other error is returned as-is, after surfacing the bytes read so far.
func (c *ChunkReader) Next() ([]byte, error) {
	if c.err != nil && len(c.carry) == 0 {
		return nil, c.err
	}
	buf := make([]byte, 0, c.size+len(c.carry))
	buf = append(buf, c.carry...)
	c.carry = nil
	// scanned marks the prefix already known to contain no '\n', so an
	// oversized line costs one linear scan rather than one per round.
	scanned := 0
	for c.err == nil {
		// Fill up to the target size, then keep extending until the
		// buffer ends in a complete line.
		need := c.size - len(buf)
		if need <= 0 {
			if cut := lastNewline(buf[scanned:]); cut >= 0 {
				cut += scanned
				c.carry = append(c.carry, buf[cut+1:]...)
				return buf[:cut+1], nil
			}
			// Oversized line: extend by another round.
			scanned = len(buf)
			need = c.size
		}
		off := len(buf)
		buf = append(buf, make([]byte, need)...)
		n, err := c.r.Read(buf[off : off+need])
		buf = buf[:off+n]
		if err != nil {
			c.err = err
		}
	}
	if len(buf) == 0 {
		return nil, c.err
	}
	return buf, nil
}

// lastNewline returns the index of the last '\n' in b, or -1.
func lastNewline(b []byte) int {
	return bytes.LastIndexByte(b, '\n')
}
