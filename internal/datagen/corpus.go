package datagen

import (
	"fmt"
	"math/rand"
)

// This file generates the 100-file corpus standing in for the GitHub
// crawl of §5.3. The category counts are exactly those recoverable from
// the paper's percentages and accuracy denominators (Figure 17):
//
//	S(NI)=44  S(I)=14  M(NI)=13  M(I)=18  NS=11
//
// which reproduce: 31% multi-line, 32% interleaved, 89% satisfying the
// structural assumptions. The corpus includes the two §9.4 failure causes
// as deliberate hard cases: records longer than L=10 lines, and
// interleaved types whose union template can win ("union-trap").

// CorpusCounts is the category mix of the generated corpus.
var CorpusCounts = map[Label]int{SNI: 44, SI: 14, MNI: 13, MI: 18, NS: 11}

// GitHubCorpus generates the 100-dataset corpus deterministically from
// seed. Datasets are returned grouped by category in a fixed order.
func GitHubCorpus(seed int64) []*Dataset {
	rng := rand.New(rand.NewSource(seed))
	var out []*Dataset
	for i := 0; i < CorpusCounts[SNI]; i++ {
		out = append(out, corpusSNI(i, rng.Int63()))
	}
	for i := 0; i < CorpusCounts[SI]; i++ {
		out = append(out, corpusSI(i, rng.Int63()))
	}
	for i := 0; i < CorpusCounts[MNI]; i++ {
		out = append(out, corpusMNI(i, rng.Int63()))
	}
	for i := 0; i < CorpusCounts[MI]; i++ {
		out = append(out, corpusMI(i, rng.Int63()))
	}
	for i := 0; i < CorpusCounts[NS]; i++ {
		out = append(out, corpusNS(i, rng.Int63()))
	}
	return out
}

// corpusSNI: single-line, one record type. Roughly half the shapes have
// variable-length free-text tails or noise, which is where fixed-lexer
// line-by-line systems struggle.
func corpusSNI(i int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := 250 + rng.Intn(250)
	var d *Dataset
	switch i % 8 {
	case 0: // clean CSV
		d = CommaSepRecords(rows, seed)
	case 1: // access log
		d = WebServerLog(rows, seed)
	case 2: // pipe-separated
		d = PersonalIncomeRecords(rows, seed)
	case 3: // bracketed k-v
		d = MacASLLog(rows, seed)
	case 4: // syslog with free tail (variable token count)
		d = MacBootLog(rows, seed)
	case 5: // k-v with '=' and free tail
		d = kvFreeTail(rows, seed)
	case 6: // CSV with noise lines
		d = noisySingleLine(rows, seed)
	case 7: // timestamped metric line
		d = metricLog(rows, seed)
	}
	d.Name = fmt.Sprintf("github/S-NI-%02d-%s", i, d.Name)
	d.Label = SNI
	return d
}

// kvFreeTail: "ts=... level=... msg: free text words\n".
func kvFreeTail(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("ts=").target(clock(rng))
		r.lit(" level=" + pick(rng, statuses) + " msg: ")
		r.lit(freeText(rng, 2+rng.Intn(5)))
		r.lit("\n")
		r.end()
	}
	return b.dataset("kv free tail", SNI, 1, 1)
}

// noisySingleLine: CSV with ~8% irregular noise lines.
func noisySingleLine(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(12) == 0 {
			b.noise(noiseLine(rng))
		}
		r := b.record(0)
		r.target(fmt.Sprintf("%d", rng.Intn(100000)))
		r.lit("," + pick(rng, hosts) + ",")
		r.target(fmt.Sprintf("%d", rng.Intn(1000)))
		r.lit("," + pick(rng, statuses) + "\n")
		r.end()
	}
	return b.dataset("noisy csv", SNI, 1, 1)
}

// metricLog: "[ts] name.space value unit\n".
func metricLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("[").target(clock(rng))
		r.lit("] " + pick(rng, nouns) + "." + pick(rng, verbs) + " ")
		r.target(fmt.Sprintf("%d.%03d", rng.Intn(1000), rng.Intn(1000)))
		r.lit(" ms\n")
		r.end()
	}
	return b.dataset("metric log", SNI, 1, 1)
}

// corpusSI: single-line interleaved types. The last two are union traps
// (§9.4): both types share one charset and differ only in field count, so
// the generic array template can merge them.
func corpusSI(i int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := 300 + rng.Intn(200)
	if i >= 12 {
		d := unionTrap(rows, seed)
		d.Name = fmt.Sprintf("github/S-I-%02d-union-trap", i)
		return d
	}
	var d *Dataset
	switch i % 4 {
	case 0:
		d = NetstatOutput(rows, seed)
	case 1:
		d = LogFile3(rows, seed)
	case 2:
		d = threeTypeLog(rows, seed)
	case 3:
		d = requestErrorLog(rows, seed)
	}
	d.Name = fmt.Sprintf("github/S-I-%02d-%s", i, d.Name)
	d.Label = SI
	return d
}

// unionTrap: two types over one charset {':',' '} differing only in word
// count (3-4 vs 6-8 words). The generic template "F: (F )*F\n" merges
// them — the paper's greedy-interleaved failure cause.
func unionTrap(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(2) == 0 {
			r := b.record(0)
			r.lit(pick(rng, nouns) + ": ")
			r.target(pick(rng, verbs))
			r.lit(" " + freeText(rng, 1+rng.Intn(2)))
			r.lit("\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit(pick(rng, hosts) + ": ")
			r.target(pick(rng, verbs))
			r.lit(" " + freeText(rng, 4+rng.Intn(3)))
			r.lit("\n")
			r.end()
		}
	}
	d := b.dataset("union trap", SI, 2, 1)
	d.Hard = "union-trap"
	return d
}

// threeTypeLog: three clearly-delimited single-line types.
func threeTypeLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		switch rng.Intn(3) {
		case 0:
			r := b.record(0)
			r.lit("GET /").target(pick(rng, nouns) + "/" + pick(rng, files))
			r.lit(fmt.Sprintf(" %d\n", []int{200, 404}[rng.Intn(2)]))
			r.end()
		case 1:
			r := b.record(1)
			r.lit("user=").target(pick(rng, users))
			r.lit(fmt.Sprintf("; session=%d;\n", rng.Intn(100000)))
			r.end()
		case 2:
			r := b.record(2)
			r.lit("metric|").target(pick(rng, nouns))
			r.lit("|").target(fmt.Sprintf("%d.%02d", rng.Intn(100), rng.Intn(100)))
			r.lit("|\n")
			r.end()
		}
	}
	return b.dataset("three types", SI, 3, 1)
}

// requestErrorLog: request lines interleaved with error lines + noise.
func requestErrorLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(15) == 0 {
			b.noise(noiseLine(rng))
		}
		if rng.Intn(4) > 0 {
			r := b.record(0)
			r.target(ip(rng))
			r.lit(" -> /" + pick(rng, nouns) + " [")
			r.target(fmt.Sprintf("%d", rng.Intn(1000)))
			r.lit("ms]\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit("E").target(fmt.Sprintf("%04d", rng.Intn(10000)))
			r.lit(": " + pick(rng, nouns) + "=" + pick(rng, verbs) + "; retry=" +
				fmt.Sprintf("%d", rng.Intn(5)) + ";\n")
			r.end()
		}
	}
	return b.dataset("request+error", SI, 2, 1)
}

// corpusMNI: multi-line, one type. Index 12 is the long-records hard case
// (records span 12 lines > L=10).
func corpusMNI(i int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := 120 + rng.Intn(120)
	if i == 12 {
		d := longRecords(rows, seed, false)
		d.Name = fmt.Sprintf("github/M-NI-%02d-long-records", i)
		return d
	}
	var d *Dataset
	switch i % 5 {
	case 0:
		d = CrashLog(rows, seed)
	case 1:
		d = ThailandDistricts(rows, seed)
	case 2:
		d = FastqGenetic(rows, seed)
	case 3:
		d = LogFile2(rows, seed)
	case 4:
		d = LogFile5(rows, seed)
	}
	d.Name = fmt.Sprintf("github/M-NI-%02d-%s", i, d.Name)
	d.Label = MNI
	return d
}

// longRecords: records of 12 structurally distinct lines — beyond the
// default L=10, the §9.4 "long records" failure cause. If interleaved,
// a second, regular single-line type is mixed in.
func longRecords(rows int, seed int64, interleaved bool) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	seps := []byte{':', '=', '|', ';', '+', '.', '!', '?', '<', '>', '&'}
	for i := 0; i < rows; i++ {
		if interleaved && rng.Intn(2) == 0 {
			r := b.record(1)
			r.lit("tick,").target(fmt.Sprintf("%d", rng.Intn(100000)))
			r.lit("," + pick(rng, statuses) + "\n")
			r.end()
		}
		r := b.record(0)
		for j := 0; j < 11; j++ {
			r.lit(fmt.Sprintf("k%d%c %d\n", j, seps[j], rng.Intn(10000)))
		}
		r.lit("#end#\n")
		r.end()
	}
	types := 1
	lbl := MNI
	if interleaved {
		types = 2
		lbl = MI
	}
	d := b.dataset("long records", lbl, types, 12)
	d.Hard = "long-records"
	return d
}

// corpusMI: multi-line interleaved. Index 17 is the interleaved
// long-records hard case.
func corpusMI(i int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := 100 + rng.Intn(100)
	if i == 17 {
		d := longRecords(rows, seed, true)
		d.Name = fmt.Sprintf("github/M-I-%02d-long-records", i)
		return d
	}
	var d *Dataset
	switch i % 4 {
	case 0:
		d = LogFile1(rows, seed)
	case 1:
		d = LogFile4(rows, seed)
	case 2:
		d = figure2Log(rows, seed)
	case 3:
		d = multiPlusSingle(rows, seed)
	}
	d.Name = fmt.Sprintf("github/M-I-%02d-%s", i, d.Name)
	d.Label = MI
	return d
}

// figure2Log: the paper's Figure 2 shape — 7-line and 9-line record types
// randomly interleaved.
func figure2Log(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(2) == 0 {
			r := b.record(0)
			r.lit("REQ {\n")
			r.lit("  id: ").target(fmt.Sprintf("%d", rng.Intn(1000000))).lit(",\n")
			r.lit("  src: ").target(ip(rng)).lit(",\n")
			r.lit("  verb: " + []string{"GET", "PUT", "POST"}[rng.Intn(3)] + ",\n")
			r.lit(fmt.Sprintf("  code: %d,\n", []int{200, 404, 500}[rng.Intn(3)]))
			r.lit(fmt.Sprintf("  ms: %d,\n", rng.Intn(4000)))
			r.lit("}\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit("JOB [\n")
			r.lit("  name= ").target(pick(rng, nouns) + "_" + pick(rng, users)).lit(";\n")
			r.lit("  queue= " + pick(rng, nouns) + ";\n")
			r.lit(fmt.Sprintf("  prio= %d;\n", rng.Intn(10)))
			r.lit(fmt.Sprintf("  mem= %d;\n", rng.Intn(64000)))
			r.lit(fmt.Sprintf("  cpu= %d;\n", rng.Intn(100)))
			r.lit("  state= " + pick(rng, statuses) + ";\n")
			r.lit(fmt.Sprintf("  exit= %d;\n", rng.Intn(3)))
			r.lit("]\n")
			r.end()
		}
	}
	return b.dataset("figure2", MI, 2, 9)
}

// multiPlusSingle: a 4-line type interleaved with a single-line type and
// occasional noise.
func multiPlusSingle(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(10) == 0 {
			b.noise(noiseLine(rng))
		}
		if rng.Intn(3) > 0 {
			r := b.record(0)
			r.lit("@task ").target(fmt.Sprintf("%d", rng.Intn(100000)))
			r.lit("\n  cmd= " + pick(rng, verbs) + "_" + pick(rng, nouns))
			r.lit("\n  took= ").target(fmt.Sprintf("%d", rng.Intn(9000)))
			r.lit("ms\n@done\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit("hb;").target(clock(rng))
			r.lit(fmt.Sprintf(";%d;\n", rng.Intn(100)))
			r.end()
		}
	}
	return b.dataset("multi+single", MI, 2, 4)
}

// corpusNS: datasets with no extractable structure — prose, word salads,
// and irregular fragments.
func corpusNS(i int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	n := 200 + rng.Intn(200)
	switch i % 3 {
	case 0: // prose paragraphs with varying punctuation
		for j := 0; j < n; j++ {
			b.noise(freeText(rng, 3+rng.Intn(12)) + []string{".", "!", "?", "...", ";", ""}[rng.Intn(6)] + "\n")
		}
	case 1: // word salad with random punctuation density
		for j := 0; j < n; j++ {
			b.noise(noiseLine(rng))
		}
	case 2: // irregular indented fragments
		for j := 0; j < n; j++ {
			indent := rng.Intn(6)
			line := ""
			for k := 0; k < indent; k++ {
				line += " "
			}
			line += freeText(rng, 1+rng.Intn(7))
			if rng.Intn(3) == 0 {
				line += []string{" {", " }", " (", " )", ":", " ->"}[rng.Intn(6)]
			}
			b.noise(line + "\n")
		}
	}
	d := b.dataset(fmt.Sprintf("github/NS-%02d", i), NS, 0, 0)
	return d
}

// InterleavedTypes builds a dataset with k distinct single-line record
// types aperiodically interleaved — the structural-complexity workload of
// Figure 14b (k = number of structure templates with ≥10% coverage when
// rows are balanced, for k ≤ 6).
func InterleavedTypes(k, rowsPerType int, seed int64) *Dataset {
	if k < 1 {
		k = 1
	}
	if k > 6 {
		k = 6
	}
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	total := k * rowsPerType
	for i := 0; i < total; i++ {
		typ := rng.Intn(k)
		r := b.record(typ)
		switch typ {
		case 0:
			r.target(fmt.Sprintf("%d", rng.Intn(100000))).lit("," + pick(rng, statuses) + ",").
				target(fmt.Sprintf("%d", rng.Intn(1000))).lit("\n")
		case 1:
			r.lit("k;").target(pick(rng, users)).lit(fmt.Sprintf(";%d;\n", rng.Intn(5000)))
		case 2:
			r.lit("m|").target(pick(rng, nouns)).lit("|").
				target(fmt.Sprintf("%d.%02d", rng.Intn(100), rng.Intn(100))).lit("|\n")
		case 3:
			r.lit("t:").target(clock(rng)).lit(fmt.Sprintf(":%d\n", rng.Intn(100)))
		case 4:
			r.lit("e=").target(pick(rng, verbs)).lit(fmt.Sprintf("=%d=\n", rng.Intn(10)))
		case 5:
			r.lit("p/").target(pick(rng, files)).lit(fmt.Sprintf("/%d\n", rng.Intn(100000)))
		}
		r.end()
	}
	lbl := SNI
	if k > 1 {
		lbl = SI
	}
	return b.dataset(fmt.Sprintf("interleaved-%d", k), lbl, k, 1)
}
