// Package datagen generates the synthetic datasets that stand in for the
// paper's evaluation data (§5): analogs of the 25 manually collected
// datasets of Table 5, and a 100-file corpus with the category mix of the
// GitHub crawl (Figure 17a). Every dataset carries exact ground truth —
// record boundaries, record types, and intended extraction-target spans —
// so the §5.1 success criteria can be checked mechanically.
//
// Generators are deterministic given their seed. Values are drawn
// aperiodically: periodic columns would create genuine higher-order
// structure (a k-line stack template) that a correct MDL scorer prefers,
// which is not the intent of the original datasets.
package datagen

import (
	"bytes"
	"fmt"
	"math/rand"

	"datamaran/internal/evaluate"
)

// Label is the GitHub-corpus category of a dataset (Table 4).
type Label string

const (
	// SNI is single-line, non-interleaved.
	SNI Label = "S(NI)"
	// SI is single-line, interleaved record types.
	SI Label = "S(I)"
	// MNI is multi-line, non-interleaved.
	MNI Label = "M(NI)"
	// MI is multi-line, interleaved.
	MI Label = "M(I)"
	// NS has no (extractable) structure.
	NS Label = "NS"
)

// Dataset is a synthetic dataset with ground truth.
type Dataset struct {
	Name string
	Data []byte
	// Truth lists every true record; empty for NS datasets.
	Truth []evaluate.TruthRecord
	// Label is the Table 4 category.
	Label Label
	// NumRecTypes and MaxRecSpan are the Table 5 characteristics.
	NumRecTypes int
	MaxRecSpan  int
	// Hard tags datasets constructed to trip a particular system:
	// "long-records", "greedy-trap", "union-trap", or "".
	Hard string
}

// SizeMB returns the dataset size in megabytes.
func (d *Dataset) SizeMB() float64 { return float64(len(d.Data)) / (1 << 20) }

// builder assembles a dataset while tracking line numbers and byte
// offsets for exact ground truth.
type builder struct {
	buf   bytes.Buffer
	line  int
	truth []evaluate.TruthRecord
}

// rec is one record under construction.
type rec struct {
	b         *builder
	typ       int
	startLine int
	targets   []evaluate.Span
}

// record starts a record of the given type.
func (b *builder) record(typ int) *rec {
	return &rec{b: b, typ: typ, startLine: b.line}
}

// lit appends constant or non-target text to the record. Newlines advance
// the line counter.
func (r *rec) lit(s string) *rec {
	r.b.write(s)
	return r
}

// target appends text that is an intended extraction target (§5.1) and
// records its span.
func (r *rec) target(s string) *rec {
	start := r.b.buf.Len()
	r.b.write(s)
	r.targets = append(r.targets, evaluate.Span{Start: start, End: r.b.buf.Len()})
	return r
}

// end finalizes the record. The record text must end with a newline.
func (r *rec) end() {
	r.b.truth = append(r.b.truth, evaluate.TruthRecord{
		Type:      r.typ,
		StartLine: r.startLine,
		EndLine:   r.b.line,
		Targets:   r.targets,
	})
}

// noise appends a noise line (must end with '\n').
func (b *builder) noise(s string) {
	b.write(s)
}

func (b *builder) write(s string) {
	b.buf.WriteString(s)
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			b.line++
		}
	}
}

func (b *builder) dataset(name string, label Label, types, span int) *Dataset {
	return &Dataset{
		Name:        name,
		Data:        b.buf.Bytes(),
		Truth:       b.truth,
		Label:       label,
		NumRecTypes: types,
		MaxRecSpan:  span,
	}
}

// word pools for realistic field values.
var (
	verbs    = []string{"started", "stopped", "failed", "accepted", "rejected", "retried", "flushed", "rotated", "loaded", "saved"}
	nouns    = []string{"session", "worker", "query", "cache", "index", "shard", "socket", "bundle", "packet", "token"}
	hosts    = []string{"srv1", "srv2", "db-master", "db-replica", "cache01", "edge7", "worker12", "gateway"}
	users    = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	files    = []string{"main.go", "index.html", "data.bin", "README.md", "config.yaml", "report.pdf", "notes.txt"}
	statuses = []string{"OK", "FAIL", "WARN", "INFO", "DEBUG", "ERROR"}
	months   = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
)

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func ip(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(254), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}

func clock(rng *rand.Rand) string {
	return fmt.Sprintf("%02d:%02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(60))
}

func date(rng *rand.Rand) string {
	return fmt.Sprintf("2016-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
}

// freeText emits a space-separated phrase of n words with no special
// characters.
func freeText(rng *rand.Rand, n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		if rng.Intn(2) == 0 {
			b.WriteString(pick(rng, verbs))
		} else {
			b.WriteString(pick(rng, nouns))
		}
	}
	return b.String()
}

// noiseLine emits an irregular line unlikely to align with any template:
// random words, random punctuation, varying shape.
func noiseLine(rng *rand.Rand) string {
	puncts := []string{"~", "##", "%%", "@@", "^^", "...", "???"}
	var b bytes.Buffer
	b.WriteString(pick(rng, puncts))
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		b.WriteByte(' ')
		b.WriteString(pick(rng, nouns))
		if rng.Intn(3) == 0 {
			b.WriteString(pick(rng, puncts))
		}
	}
	b.WriteString("\n")
	return b.String()
}
