package datagen

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBuilderTracksSpans(t *testing.T) {
	b := &builder{}
	b.noise("junk\n")
	r := b.record(0)
	r.lit("id=").target("123").lit(" done\n")
	r.end()
	d := b.dataset("x", SNI, 1, 1)
	if len(d.Truth) != 1 {
		t.Fatalf("truth = %d records", len(d.Truth))
	}
	tr := d.Truth[0]
	if tr.StartLine != 1 || tr.EndLine != 2 {
		t.Fatalf("record lines [%d,%d), want [1,2)", tr.StartLine, tr.EndLine)
	}
	if len(tr.Targets) != 1 {
		t.Fatalf("targets = %d", len(tr.Targets))
	}
	got := string(d.Data[tr.Targets[0].Start:tr.Targets[0].End])
	if got != "123" {
		t.Fatalf("target span = %q, want 123", got)
	}
}

func TestBuilderMultiLineRecord(t *testing.T) {
	b := &builder{}
	r := b.record(2)
	r.lit("a\nb\nc\n")
	r.end()
	d := b.dataset("x", MNI, 1, 3)
	tr := d.Truth[0]
	if tr.StartLine != 0 || tr.EndLine != 3 || tr.Type != 2 {
		t.Fatalf("truth = %+v", tr)
	}
}

func TestManualDatasetsInventory(t *testing.T) {
	ds := ManualDatasets(0.25)
	if len(ds) != 25 {
		t.Fatalf("datasets = %d, want 25", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Errorf("duplicate dataset name %q", d.Name)
		}
		names[d.Name] = true
		if len(d.Data) == 0 {
			t.Errorf("%s: empty data", d.Name)
		}
		if len(d.Truth) == 0 {
			t.Errorf("%s: no ground truth", d.Name)
		}
		if d.MaxRecSpan < 1 {
			t.Errorf("%s: bad MaxRecSpan %d", d.Name, d.MaxRecSpan)
		}
	}
}

func TestManualDatasetsTable5Characteristics(t *testing.T) {
	ds := ManualDatasets(0.25)
	// Spot-check the Table 5 rows we mirror.
	byName := map[string]*Dataset{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	checks := []struct {
		name  string
		types int
		span  int
	}{
		{"transaction records", 1, 1},
		{"netstat output", 2, 1},
		{"Thailand district info", 1, 8},
		{"fastq genetic format", 1, 4},
		{"blog xml data", 1, 10},
		{"log file (1)", 2, 9},
		{"log file (3)", 2, 1},
		{"log file (4)", 2, 10},
	}
	for _, c := range checks {
		d := byName[c.name]
		if d == nil {
			t.Errorf("missing dataset %q", c.name)
			continue
		}
		if d.NumRecTypes != c.types || d.MaxRecSpan != c.span {
			t.Errorf("%s: types=%d span=%d, want types=%d span=%d",
				c.name, d.NumRecTypes, d.MaxRecSpan, c.types, c.span)
		}
	}
}

func TestTruthRecordsConsistent(t *testing.T) {
	for _, d := range ManualDatasets(0.25) {
		lines := bytes.Count(d.Data, []byte{'\n'})
		seen := map[int]bool{}
		for _, tr := range d.Truth {
			if tr.StartLine >= tr.EndLine {
				t.Fatalf("%s: empty record span [%d,%d)", d.Name, tr.StartLine, tr.EndLine)
			}
			if tr.EndLine > lines {
				t.Fatalf("%s: record end %d beyond %d lines", d.Name, tr.EndLine, lines)
			}
			for l := tr.StartLine; l < tr.EndLine; l++ {
				if seen[l] {
					t.Fatalf("%s: overlapping truth records at line %d", d.Name, l)
				}
				seen[l] = true
			}
			for _, tg := range tr.Targets {
				if tg.Start >= tg.End || tg.End > len(d.Data) {
					t.Fatalf("%s: bad target span %+v", d.Name, tg)
				}
				if bytes.IndexByte(d.Data[tg.Start:tg.End], '\n') >= 0 {
					t.Fatalf("%s: target spans a newline", d.Name)
				}
			}
		}
	}
}

func TestTruthTypesMatchNumRecTypes(t *testing.T) {
	for _, d := range ManualDatasets(0.25) {
		types := map[int]bool{}
		for _, tr := range d.Truth {
			types[tr.Type] = true
		}
		if len(types) != d.NumRecTypes {
			t.Errorf("%s: %d truth types, NumRecTypes=%d", d.Name, len(types), d.NumRecTypes)
		}
	}
}

func TestGitHubCorpusCounts(t *testing.T) {
	corpus := GitHubCorpus(42)
	if len(corpus) != 100 {
		t.Fatalf("corpus = %d datasets, want 100", len(corpus))
	}
	counts := map[Label]int{}
	for _, d := range corpus {
		counts[d.Label]++
	}
	for lbl, want := range CorpusCounts {
		if counts[lbl] != want {
			t.Errorf("%s: %d datasets, want %d", lbl, counts[lbl], want)
		}
	}
	// Paper's headline percentages.
	multi := counts[MNI] + counts[MI]
	inter := counts[SI] + counts[MI]
	if multi != 31 {
		t.Errorf("multi-line = %d%%, want 31%%", multi)
	}
	if inter != 32 {
		t.Errorf("interleaved = %d%%, want 32%%", inter)
	}
	if 100-counts[NS] != 89 {
		t.Errorf("structured = %d%%, want 89%%", 100-counts[NS])
	}
}

func TestGitHubCorpusDeterministic(t *testing.T) {
	a := GitHubCorpus(42)
	b := GitHubCorpus(42)
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("dataset %d (%s) not deterministic", i, a[i].Name)
		}
	}
}

func TestGitHubCorpusHardCases(t *testing.T) {
	corpus := GitHubCorpus(42)
	hard := map[string]int{}
	for _, d := range corpus {
		if d.Hard != "" {
			hard[d.Hard]++
		}
	}
	if hard["union-trap"] != 2 {
		t.Errorf("union traps = %d, want 2", hard["union-trap"])
	}
	if hard["long-records"] != 2 {
		t.Errorf("long-record datasets = %d, want 2", hard["long-records"])
	}
}

func TestGitHubCorpusNSHasNoTruth(t *testing.T) {
	for _, d := range GitHubCorpus(42) {
		if d.Label == NS && len(d.Truth) != 0 {
			t.Fatalf("%s: NS dataset has truth records", d.Name)
		}
		if d.Label != NS && len(d.Truth) == 0 {
			t.Fatalf("%s: structured dataset lacks truth", d.Name)
		}
	}
}

func TestDatasetSizeScaling(t *testing.T) {
	small := TransactionRecords(100, 1)
	big := TransactionRecords(1000, 1)
	if len(big.Data) < 8*len(small.Data) {
		t.Fatalf("scaling broken: %d vs %d bytes", len(small.Data), len(big.Data))
	}
}

func TestSizeMB(t *testing.T) {
	d := &Dataset{Data: make([]byte, 1<<20)}
	if d.SizeMB() != 1.0 {
		t.Fatalf("SizeMB = %v", d.SizeMB())
	}
}

func TestNoiseLinesVaryInShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		seen[noiseLine(rng)] = true
	}
	if len(seen) < 30 {
		t.Fatalf("noise lines too repetitive: %d distinct of 50", len(seen))
	}
}
