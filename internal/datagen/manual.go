package datagen

import (
	"fmt"
	"math/rand"
)

// This file generates analogs of the 25 manually collected datasets of
// Table 5: the 15 Fisher et al. datasets plus the 10 larger/more complex
// ones. Each generator reproduces the row of Table 5 it stands in for:
// the record-template shape, the number of record types, and the maximum
// record span. Sizes are scaled down by default and grow linearly with
// the rows parameter.

// TransactionRecords: single-line, space-separated numeric records.
func TransactionRecords(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("TXN ").target(fmt.Sprintf("%06d", rng.Intn(1000000)))
		r.lit(" " + date(rng) + " ")
		r.target(fmt.Sprintf("%d.%02d", rng.Intn(2000), rng.Intn(100)))
		r.lit(" " + pick(rng, statuses) + "\n")
		r.end()
	}
	return b.dataset("transaction records", SNI, 1, 1)
}

// CommaSepRecords: plain CSV.
func CommaSepRecords(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.target(fmt.Sprintf("%d", rng.Intn(100000)))
		r.lit(",").lit(pick(rng, users))
		r.lit(",").target(fmt.Sprintf("%d.%d", rng.Intn(100), rng.Intn(10)))
		r.lit("," + pick(rng, statuses) + "\n")
		r.end()
	}
	return b.dataset("comma-sep records", SNI, 1, 1)
}

// WebServerLog: Apache-combined-style access log.
func WebServerLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.target(ip(rng))
		r.lit(" - - [")
		r.lit(fmt.Sprintf("%02d/%s/2016:", 1+rng.Intn(28), pick(rng, months)))
		r.target(clock(rng))
		r.lit("] \"" + []string{"GET", "POST", "PUT"}[rng.Intn(3)] + " /")
		r.target(pick(rng, nouns) + "/" + pick(rng, files))
		r.lit(" HTTP/1.0\" ")
		r.target(fmt.Sprintf("%d", []int{200, 200, 200, 304, 404, 500}[rng.Intn(6)]))
		r.lit(fmt.Sprintf(" %d\n", rng.Intn(100000)))
		r.end()
	}
	return b.dataset("web server log", SNI, 1, 1)
}

// MacASLLog: bracketed key-value log lines.
func MacASLLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("[Time ").target(date(rng) + " " + clock(rng))
		r.lit("] [Facility auth] [Sender ").target(pick(rng, nouns))
		r.lit(fmt.Sprintf("] [PID %d] [Level %d] [UID %d] [Message ",
			rng.Intn(30000), rng.Intn(8), rng.Intn(1000)))
		r.lit(freeText(rng, 2+rng.Intn(3)))
		r.lit("]\n")
		r.end()
	}
	return b.dataset("log file of Mac ASL", SNI, 1, 1)
}

// MacBootLog: syslog-shaped lines with a free-text tail.
func MacBootLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit(pick(rng, months) + fmt.Sprintf(" %2d ", 1+rng.Intn(28)))
		r.target(clock(rng))
		r.lit(" " + pick(rng, hosts) + " kernel[0]: ")
		r.lit(freeText(rng, 3+rng.Intn(4)))
		r.lit("\n")
		r.end()
	}
	return b.dataset("Mac OS boot log", SNI, 1, 1)
}

// CrashLog: three-line records (Table 5 footnote: two valid structures
// with spans 1 and 3; ground truth uses span 3).
func CrashLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("Process: ").target(pick(rng, nouns))
		r.lit(fmt.Sprintf(" [%d]\nDate: ", rng.Intn(30000)))
		r.target(date(rng) + " " + clock(rng))
		r.lit("\nException: SIG").lit([]string{"SEGV", "ABRT", "BUS", "ILL"}[rng.Intn(4)])
		r.lit(fmt.Sprintf(" at 0x%08x\n", rng.Uint32()))
		r.end()
	}
	return b.dataset("crash log", MNI, 1, 3)
}

// CrashLogModified: the Fisher-modified variant with an extra
// thread-state line.
func CrashLogModified(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("Process: ").target(pick(rng, nouns))
		r.lit(fmt.Sprintf(" [%d]\nDate: ", rng.Intn(30000)))
		r.target(date(rng) + " " + clock(rng))
		r.lit(fmt.Sprintf("\nThread: %d; state= %s\n", rng.Intn(64), pick(rng, statuses)))
		r.end()
	}
	return b.dataset("crash log (modified)", MNI, 1, 3)
}

// LsOutput: ls -l style listing.
func LsOutput(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		perms := []string{"-rw-r--r--", "-rwxr-xr-x", "drwxr-xr-x", "-rw-------"}[rng.Intn(4)]
		r.lit(perms + fmt.Sprintf(" %d ", 1+rng.Intn(8)))
		r.lit(pick(rng, users) + " " + pick(rng, users) + " ")
		r.target(fmt.Sprintf("%d", rng.Intn(10000000)))
		r.lit(" " + pick(rng, months) + fmt.Sprintf(" %2d %s ", 1+rng.Intn(28), clock(rng)[:5]))
		r.target(pick(rng, files))
		r.lit("\n")
		r.end()
	}
	return b.dataset("ls -l output", SNI, 1, 1)
}

// NetstatOutput: two single-line record types (connections and interface
// counters) plus a couple of header noise lines.
func NetstatOutput(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	b.noise("Active Internet connections\n")
	b.noise("Proto RecvQ SendQ Local Foreign State\n")
	for i := 0; i < rows; i++ {
		if rng.Intn(3) > 0 {
			r := b.record(0)
			r.lit("tcp4 ").lit(fmt.Sprintf("%d %d ", rng.Intn(100), rng.Intn(100)))
			r.target(ip(rng))
			r.lit(fmt.Sprintf(":%d ", rng.Intn(65536)))
			r.target(ip(rng))
			r.lit(fmt.Sprintf(":%d ", rng.Intn(65536)))
			r.lit([]string{"ESTABLISHED", "TIMEWAIT", "LISTEN", "CLOSED"}[rng.Intn(4)] + "\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit("if=").target(pick(rng, hosts))
			r.lit(fmt.Sprintf(": packets=%d; errors=%d; drops=%d\n",
				rng.Intn(1000000), rng.Intn(100), rng.Intn(100)))
			r.end()
		}
	}
	return b.dataset("netstat output", SI, 2, 1)
}

// PrinterLogs: queue events.
func PrinterLogs(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("lp0-").target(fmt.Sprintf("%d", rng.Intn(100000)))
		r.lit(" " + pick(rng, users) + " ")
		r.target(fmt.Sprintf("%d", rng.Intn(5000)))
		r.lit(" bytes [" + pick(rng, statuses) + "]\n")
		r.end()
	}
	return b.dataset("printer logs", SNI, 1, 1)
}

// PersonalIncomeRecords: fixed-width-ish numeric rows.
func PersonalIncomeRecords(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.target(pick(rng, users))
		r.lit("|" + fmt.Sprintf("%d|", 18+rng.Intn(60)))
		r.target(fmt.Sprintf("%d.%02d", rng.Intn(200000), rng.Intn(100)))
		r.lit(fmt.Sprintf("|%d\n", rng.Intn(100)))
		r.end()
	}
	return b.dataset("personal income records", SNI, 1, 1)
}

// USRailroadInfo: station listing.
func USRailroadInfo(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("station;").target(pick(rng, nouns) + "_" + pick(rng, hosts))
		r.lit(";").target(fmt.Sprintf("%d.%04d", 25+rng.Intn(24), rng.Intn(10000)))
		r.lit(";").target(fmt.Sprintf("-%d.%04d", 70+rng.Intn(50), rng.Intn(10000)))
		r.lit(fmt.Sprintf(";%d\n", rng.Intn(10)))
		r.end()
	}
	return b.dataset("US railroad info", SNI, 1, 1)
}

// ApplicationLog: level-tagged app log.
func ApplicationLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit(fmt.Sprintf("%s [", pick(rng, statuses)))
		r.target(date(rng) + " " + clock(rng))
		r.lit("] " + pick(rng, nouns) + "." + pick(rng, verbs) + ": ")
		r.target(fmt.Sprintf("%d", rng.Intn(1000)))
		r.lit(" ms\n")
		r.end()
	}
	return b.dataset("application log", SNI, 1, 1)
}

// LoginWindowLog: timestamped session messages.
func LoginWindowLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit(pick(rng, months) + fmt.Sprintf(" %2d ", 1+rng.Intn(28)))
		r.target(clock(rng))
		r.lit(" loginwindow[")
		r.target(fmt.Sprintf("%d", rng.Intn(30000)))
		r.lit("]: user=" + pick(rng, users) + " action=" + pick(rng, verbs) + "\n")
		r.end()
	}
	return b.dataset("LoginWindow server log", SNI, 1, 1)
}

// PkgInstallLog: package install events.
func PkgInstallLog(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("installed: ").target(pick(rng, nouns) + "-" + fmt.Sprintf("%d.%d.%d", rng.Intn(10), rng.Intn(20), rng.Intn(20)))
		r.lit(" (" + pick(rng, statuses) + ")\n")
		r.end()
	}
	return b.dataset("pkg install log", SNI, 1, 1)
}

// ThailandDistricts: 8-line JSON-ish records (the Figure 1 dataset).
func ThailandDistricts(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("{\n")
		r.lit("  \"id\": ").target(fmt.Sprintf("%d", 100000+rng.Intn(900000)))
		r.lit(",\n  \"zip\": ").target(fmt.Sprintf("%d", 10000+rng.Intn(90000)))
		r.lit(",\n  \"district\": " + pick(rng, nouns) + pick(rng, hosts))
		r.lit(fmt.Sprintf(",\n  \"amphoe\": %d", rng.Intn(100)))
		r.lit(fmt.Sprintf(",\n  \"province\": %d", rng.Intn(77)))
		r.lit(fmt.Sprintf(",\n  \"lat\": %d.%04d,\n", 5+rng.Intn(15), rng.Intn(10000)))
		r.lit("}\n")
		r.end()
	}
	return b.dataset("Thailand district info", MNI, 1, 8)
}

// StackexchangeXML: single-line XML rows (the large single-line dataset).
func StackexchangeXML(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("  <row Id=\"").target(fmt.Sprintf("%d", i+1))
		r.lit("\" PostTypeId=\"" + fmt.Sprintf("%d", 1+rng.Intn(2)))
		r.lit("\" Score=\"").target(fmt.Sprintf("%d", rng.Intn(500)))
		r.lit("\" ViewCount=\"" + fmt.Sprintf("%d", rng.Intn(100000)))
		r.lit("\" OwnerUserId=\"" + fmt.Sprintf("%d", rng.Intn(100000)))
		r.lit("\" />\n")
		r.end()
	}
	return b.dataset("stackexchange xml data", SNI, 1, 1)
}

// VCFGenetic: VCF-style variant rows with '##' header noise (the largest
// dataset of Table 5; size scales with rows).
func VCFGenetic(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	b.noise("##fileformat=VCFv4\n")
	b.noise("##source=datamaran synthetic\n")
	bases := []string{"A", "C", "G", "T"}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit(fmt.Sprintf("chr%d;", 1+rng.Intn(22)))
		r.target(fmt.Sprintf("%d", rng.Intn(250000000)))
		r.lit(";rs" + fmt.Sprintf("%d;", rng.Intn(10000000)))
		r.target(pick(rng, bases))
		r.lit(";").target(pick(rng, bases))
		r.lit(fmt.Sprintf(";%d.%d;PASS;AF=0.%02d;DP=%d\n", rng.Intn(100), rng.Intn(10), rng.Intn(100), rng.Intn(200)))
		r.end()
	}
	return b.dataset("vcf genetic format", SNI, 1, 1)
}

// FastqGenetic: 4-line fastq records.
func FastqGenetic(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	letters := "ACGT"
	qual := "ABCDEFGHIJ"
	for i := 0; i < rows; i++ {
		n := 20 + rng.Intn(20)
		seqb := make([]byte, n)
		qb := make([]byte, n)
		for j := range seqb {
			seqb[j] = letters[rng.Intn(4)]
			qb[j] = qual[rng.Intn(10)]
		}
		r := b.record(0)
		r.lit("@SEQ.").target(fmt.Sprintf("%d", i+1))
		r.lit(fmt.Sprintf(" len=%d\n", n))
		r.target(string(seqb))
		r.lit("\n+\n")
		r.lit(string(qb))
		r.lit("\n")
		r.end()
	}
	return b.dataset("fastq genetic format", MNI, 1, 4)
}

// BlogXML: 10-line XML records.
func BlogXML(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		r := b.record(0)
		r.lit("<post>\n")
		r.lit("  <id>").target(fmt.Sprintf("%d", i+1)).lit("</id>\n")
		r.lit("  <author>").target(pick(rng, users)).lit("</author>\n")
		r.lit("  <date>" + date(rng) + "</date>\n")
		r.lit("  <title>" + freeText(rng, 2+rng.Intn(3)) + "</title>\n")
		r.lit(fmt.Sprintf("  <score>%d</score>\n", rng.Intn(100)))
		r.lit(fmt.Sprintf("  <views>%d</views>\n", rng.Intn(10000)))
		r.lit("  <tag>" + pick(rng, nouns) + "</tag>\n")
		r.lit("  <status>" + pick(rng, statuses) + "</status>\n")
		r.lit("</post>\n")
		r.end()
	}
	return b.dataset("blog xml data", MNI, 1, 10)
}

// LogFile1: two record types, max span 9, with noise (GitHub-style).
func LogFile1(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(10) == 0 {
			b.noise(noiseLine(rng))
		}
		if rng.Intn(2) == 0 {
			r := b.record(0)
			r.lit("== request ==\nid: ").target(fmt.Sprintf("%d", rng.Intn(1000000)))
			r.lit("\nsrc: ").target(ip(rng))
			r.lit("\npath: /" + pick(rng, nouns) + "/" + pick(rng, files))
			r.lit(fmt.Sprintf("\ncode: %d", []int{200, 404, 500}[rng.Intn(3)]))
			r.lit(fmt.Sprintf("\nms: %d", rng.Intn(5000)))
			r.lit("\nagent: " + pick(rng, nouns) + "-" + pick(rng, hosts))
			r.lit(fmt.Sprintf("\nbytes: %d", rng.Intn(100000)))
			r.lit("\n== done ==\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit("* event ").target(pick(rng, verbs))
			r.lit(" at ").target(clock(rng))
			r.lit(";\n")
			r.end()
		}
	}
	return b.dataset("log file (1)", MI, 2, 9)
}

// LogFile2: one 3-line record type plus noise.
func LogFile2(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(8) == 0 {
			b.noise(noiseLine(rng))
		}
		r := b.record(0)
		r.lit("BEGIN ").target(fmt.Sprintf("%d", rng.Intn(100000)))
		r.lit("\n  result= " + pick(rng, statuses) + "; t= ")
		r.target(fmt.Sprintf("%d", rng.Intn(10000)))
		r.lit("\nEND;\n")
		r.end()
	}
	return b.dataset("log file (2)", MNI, 1, 3)
}

// LogFile3: two single-line record types.
func LogFile3(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(5) < 3 {
			r := b.record(0)
			r.lit("Q|").target(fmt.Sprintf("%d", rng.Intn(100000)))
			r.lit("|" + pick(rng, users) + "|")
			r.target(fmt.Sprintf("%dms", rng.Intn(2000)))
			r.lit("\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit("TX:").target(fmt.Sprintf("%d", rng.Intn(100000)))
			r.lit(":" + pick(rng, statuses) + ":")
			r.target(fmt.Sprintf("%d.%02d", rng.Intn(100), rng.Intn(100)))
			r.lit("\n")
			r.end()
		}
	}
	return b.dataset("log file (3)", SI, 2, 1)
}

// LogFile4: two multi-line record types (spans 10 and 3) with noise.
func LogFile4(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(12) == 0 {
			b.noise(noiseLine(rng))
		}
		if rng.Intn(2) == 0 {
			r := b.record(0)
			r.lit("<<job>>\n")
			r.lit("name: ").target(pick(rng, nouns) + "_" + pick(rng, hosts)).lit("\n")
			r.lit("queue: " + pick(rng, nouns) + "\n")
			r.lit("user: ").target(pick(rng, users)).lit("\n")
			r.lit(fmt.Sprintf("prio: %d\n", rng.Intn(10)))
			r.lit(fmt.Sprintf("mem: %dmb\n", rng.Intn(64000)))
			r.lit(fmt.Sprintf("cpu: %d.%02d\n", rng.Intn(100), rng.Intn(100)))
			r.lit("state: " + pick(rng, statuses) + "\n")
			r.lit(fmt.Sprintf("exit: %d\n", rng.Intn(3)))
			r.lit("<<end>>\n")
			r.end()
		} else {
			r := b.record(1)
			r.lit("signal {\n  kind= ").target(pick(rng, verbs))
			r.lit(fmt.Sprintf("; level= %d\n}\n", rng.Intn(8)))
			r.end()
		}
	}
	return b.dataset("log file (4)", MI, 2, 10)
}

// LogFile5: 4-line records with noise and incomplete records (the user
// study's noisy multi-line dataset).
func LogFile5(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := &builder{}
	for i := 0; i < rows; i++ {
		if rng.Intn(6) == 0 {
			b.noise(noiseLine(rng))
		}
		if rng.Intn(10) == 0 {
			// Incomplete record: first line only — noise per truth.
			b.noise(fmt.Sprintf("-- report %d --\n", rng.Intn(100000)))
			continue
		}
		r := b.record(0)
		r.lit("-- report ").target(fmt.Sprintf("%d", rng.Intn(100000)))
		r.lit(" --\nhost= ").target(pick(rng, hosts))
		r.lit("\nload= ").target(fmt.Sprintf("%d.%02d", rng.Intn(16), rng.Intn(100)))
		r.lit(fmt.Sprintf("\nuptime= %d;\n", rng.Intn(10000000)))
		r.end()
	}
	return b.dataset("log file (5)", MNI, 1, 4)
}

// manualEntry describes one Table 5 analog for the collection builder.
type manualEntry struct {
	gen      func(rows int, seed int64) *Dataset
	baseRows int
}

var manualEntries = []manualEntry{
	{TransactionRecords, 300},
	{CommaSepRecords, 300},
	{WebServerLog, 400},
	{MacASLLog, 300},
	{MacBootLog, 300},
	{CrashLog, 150},
	{CrashLogModified, 150},
	{LsOutput, 250},
	{NetstatOutput, 300},
	{PrinterLogs, 250},
	{PersonalIncomeRecords, 250},
	{USRailroadInfo, 250},
	{ApplicationLog, 300},
	{LoginWindowLog, 300},
	{PkgInstallLog, 250},
	{ThailandDistricts, 120},
	{StackexchangeXML, 500},
	{VCFGenetic, 600},
	{FastqGenetic, 200},
	{BlogXML, 100},
	{LogFile1, 120},
	{LogFile2, 200},
	{LogFile3, 300},
	{LogFile4, 100},
	{LogFile5, 150},
}

// ManualDatasets generates all 25 Table-5 analogs at the given scale
// (scale 1.0 ≈ a few tens of KB each; larger scales grow linearly).
func ManualDatasets(scale float64) []*Dataset {
	out := make([]*Dataset, 0, len(manualEntries))
	for i, e := range manualEntries {
		rows := int(float64(e.baseRows) * scale)
		if rows < 20 {
			rows = 20
		}
		out = append(out, e.gen(rows, int64(1000+i)))
	}
	return out
}
