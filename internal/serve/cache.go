package serve

import (
	"container/list"
	"sync"

	"datamaran/internal/parser"
	"datamaran/internal/template"
)

// DefaultProfileCacheSize is the hot-profile LRU capacity when the
// config leaves it zero.
const DefaultProfileCacheSize = 64

// profileKey identifies one compiled profile: the format fingerprint
// plus the registry generation it was compiled under. Keying on the
// generation makes invalidation free — a reindex swap bumps the
// generation, so stale matchers simply stop being requested and age
// out of the LRU.
type profileKey struct {
	fp  string
	gen uint64
}

// cacheEntry is one resident compiled profile.
type cacheEntry struct {
	key      profileKey
	matchers []*parser.Matcher
}

// profileCache is the hot-profile LRU: fingerprint+generation →
// compiled matchers. A parser.Matcher is immutable and safe for
// concurrent use, so one cached set backs any number of simultaneous
// extractions — steady-state /extract touches neither disk nor the
// template compiler.
type profileCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent
	entries map[profileKey]*list.Element
	hits    uint64
	misses  uint64
}

// newProfileCache builds an LRU holding up to capacity compiled
// profiles (nil when capacity < 0: caching disabled).
func newProfileCache(capacity int) *profileCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultProfileCacheSize
	}
	return &profileCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[profileKey]*list.Element{},
	}
}

// compileMatchers builds the matcher set of one template list.
func compileMatchers(templates []*template.Node) []*parser.Matcher {
	out := make([]*parser.Matcher, len(templates))
	for i, tpl := range templates {
		out[i] = parser.NewMatcher(tpl)
	}
	return out
}

// get returns the cached matcher set for key, or nil.
func (c *profileCache) get(key profileKey) []*parser.Matcher {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).matchers
}

// put inserts a compiled set, evicting the least-recently-used entry
// past capacity.
func (c *profileCache) put(key profileKey, matchers []*parser.Matcher) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).matchers = matchers
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, matchers: matchers})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
	}
}

// stats reports size, hits and misses for /v1/status.
func (c *profileCache) stats() (size int, hits, misses uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses
}
