// Package serve exposes a data lake's profile registry and extraction
// engine over HTTP — the query half of the incremental ingestion
// subsystem (internal/follow provides the write half). A Server owns a
// lake directory plus an immutable registry/checkpoint snapshot;
// request handlers stream extraction output (NDJSON or CSV) against
// the snapshot they started on, while POST /reindex crawls on clones
// and atomically swaps a new snapshot in — so discovery keeps
// amortizing across requests the way the paper's learn-once,
// apply-many workflow intends, and a crawl never blocks (or tears) a
// concurrent read.
//
// Endpoints (the /v1/ prefix is the canonical surface; the unversioned
// paths predate it and remain as deprecated aliases for one release):
//
//	GET  /healthz                    liveness probe
//	GET  /v1/status                  serving stats (generation, cache, in-flight)
//	GET  /v1/formats                 registry listing (JSON)
//	GET  /v1/formats/{fp}            one profile (JSON, loadable by the CLI's -profile)
//	POST /v1/extract?format={fp}     extract the request body with a profile
//	GET  /v1/lake/extract?path=...   extract a lake file (format inferred)
//	POST /v1/reindex[?format={fp}]   run the incremental crawl (optionally scoped
//	                                 to one format), persist, report
//	GET  /v1/query?q=...             run a relational query over the record store
//
// Every failure body is the JSON envelope {"error": {"code", "message"}}.
//
// Concurrency model. The served state (registry + checkpoints) is a
// copy-on-write snapshot: handlers take it once per request and the
// snapshot is immutable, so an in-flight request finishes against the
// exact state it started on no matter how many reindexes land
// meanwhile. Reindexes lock per format — POST /v1/reindex?format=fp
// crawls only fp's files and runs concurrently with scoped reindexes
// of other formats (and with all reads); only crawls of the same
// format, or a global crawl, conflict (409). Hot compiled profiles
// live in an LRU keyed by fingerprint + snapshot generation, so
// steady-state /extract touches neither disk nor the template
// compiler. Per-request limits (body cap, deadline, bounded in-flight
// gauge with 429 + Retry-After) keep overload failures crisp.
//
// Extraction and query responses are deterministic: worker counts never
// change output, so served bytes are byte-identical to the CLI's for
// the same input and profile.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"datamaran/internal/core"
	"datamaran/internal/follow"
	"datamaran/internal/lake"
	"datamaran/internal/obsv"
	"datamaran/internal/parser"
	"datamaran/internal/pipeline"
	"datamaran/internal/query"
	"datamaran/internal/relational"
)

// Config parameterizes a Server.
type Config struct {
	// Root is the lake directory served and crawled.
	Root string
	// RegistryPath is the persistent profile registry. Empty keeps the
	// registry in memory only (lost on restart).
	RegistryPath string
	// CheckpointPath is the persistent checkpoint store of the
	// incremental crawl. Empty keeps checkpoints in memory only.
	CheckpointPath string
	// Workers is the extraction parallelism for requests and crawls
	// (0 means all cores). Worker count never changes any output.
	Workers int
	// Core holds the discovery options used when /reindex meets a new
	// format.
	Core core.Options
	// SampleBytes and MatchThreshold parameterize classification, as in
	// lake.Config.
	SampleBytes    int
	MatchThreshold float64
	// StorePath is the record-store directory: the per-format columnar
	// segments /reindex writes and /v1/query reads. Empty disables the
	// store (and with it /v1/query).
	StorePath string
	// MaxBodyBytes caps a request body; a longer POST /extract body
	// fails with 413. 0 means unlimited.
	MaxBodyBytes int64
	// RequestTimeout bounds each request end to end (handler compute,
	// body reads, response writes); an overrun fails with 504. 0 means
	// unlimited. /healthz and /v1/status are exempt.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served requests; excess load is
	// shed with 429 + Retry-After instead of queueing. 0 means
	// unlimited. /healthz and /v1/status are exempt, so a saturated
	// daemon stays observable.
	MaxInFlight int
	// ProfileCacheSize is the hot compiled-profile LRU capacity
	// (0 means DefaultProfileCacheSize, < 0 disables caching).
	ProfileCacheSize int
	// Metrics is the observability registry backing GET /metrics; the
	// crawl and query paths record into it too. Nil gets the server a
	// fresh private registry (metrics still served, just not shared).
	Metrics *obsv.Registry
	// Logger receives structured access-log and crawl events via
	// log/slog. Nil disables logging (metrics still record).
	Logger *slog.Logger
}

// state is one immutable served snapshot: handlers take it once per
// request, reindexes build the next one on clones and swap. gen counts
// swaps — it versions the profile cache, so matchers compiled under an
// old snapshot can never serve a new one.
type state struct {
	gen uint64
	reg *lake.Registry
	cps *follow.Store
}

// Server is the long-running daemon state: an immutable served
// snapshot, the per-format crawl locks, the hot-profile cache and the
// request limiter.
type Server struct {
	cfg Config
	// mu guards only the snapshot pointer. The snapshot itself is
	// immutable once published — a crawl builds the next one on clones
	// and swaps, so an aborted /reindex (client disconnect mid-crawl)
	// can never leave the served state partially mutated, and an
	// in-flight request keeps reading its old snapshot across any
	// number of swaps.
	mu  sync.RWMutex
	cur *state
	// store is the record store handle (nil without a StorePath). It
	// needs no guarding here: scans pin a manifest snapshot and commits
	// merge-and-swap it whole.
	store *lake.SegmentStore
	// locks coordinates crawls per format (see formatLocks); swapMu
	// serializes snapshot swaps, so a scoped crawl rebases its deltas
	// onto whatever concurrent crawls already published; persistMu
	// serializes saves of the registry/checkpoint files.
	locks     formatLocks
	swapMu    sync.Mutex
	persistMu sync.Mutex
	// cache holds hot compiled profiles (nil when disabled).
	cache *profileCache
	// limits enforces the per-request bounds around every handler.
	limits *limiter
	// obs is the metrics registry plus the serving-path handles; logger
	// is the structured event sink (nil disables logging); started
	// anchors /v1/status uptime.
	obs     *serveMetrics
	logger  *slog.Logger
	started time.Time
}

// New loads the registry and checkpoint store and returns a Server.
func New(cfg Config) (*Server, error) {
	info, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("serve: root %s is not a directory", cfg.Root)
	}
	reg := lake.NewRegistry()
	if cfg.RegistryPath != "" {
		if reg, err = lake.LoadRegistry(cfg.RegistryPath); err != nil {
			return nil, err
		}
	}
	cps := follow.NewStore()
	if cfg.CheckpointPath != "" {
		if cps, err = follow.LoadStore(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	var store *lake.SegmentStore
	if cfg.StorePath != "" {
		if store, err = lake.OpenSegmentStore(cfg.StorePath); err != nil {
			return nil, err
		}
	}
	obs := newServeMetrics(cfg.Metrics)
	return &Server{
		cfg:   cfg,
		cur:   &state{gen: 1, reg: reg, cps: cps},
		store: store,
		cache: newProfileCache(cfg.ProfileCacheSize),
		limits: &limiter{
			maxInFlight: int64(cfg.MaxInFlight),
			maxBody:     cfg.MaxBodyBytes,
			timeout:     cfg.RequestTimeout,
			shedCtr:     obs.shed,
		},
		obs:     obs,
		logger:  cfg.Logger,
		started: time.Now(),
	}, nil
}

// Registry exposes the current registry snapshot (for tests and
// embedding).
func (s *Server) Registry() *lake.Registry { return s.state().reg }

// state takes the current served snapshot. The snapshot is immutable;
// take it once per request and every read within the request is
// consistent.
func (s *Server) state() *state {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur
}

// matchersFor returns the compiled matcher set of one format under one
// snapshot, from the hot-profile LRU when resident.
func (s *Server) matchersFor(st *state, e *lake.Entry) []*parser.Matcher {
	key := profileKey{fp: e.Fingerprint, gen: st.gen}
	if m := s.cache.get(key); m != nil {
		return m
	}
	m := compileMatchers(e.Templates)
	s.cache.put(key, m)
	return m
}

// Handler returns the daemon's HTTP handler: every endpoint wrapped
// with the metrics/access-log middleware (route-labeled, bounded
// cardinality), then the per-request limits around the whole mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	}))
	mux.HandleFunc("GET /v1/status", s.instrument("/v1/status", s.handleStatus))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	// /v1/ is the canonical surface; the unversioned routes are
	// deprecated aliases kept for one release.
	for _, p := range []string{"/v1", ""} {
		mux.HandleFunc("GET "+p+"/formats", s.instrument(p+"/formats", s.handleFormats))
		mux.HandleFunc("GET "+p+"/formats/{fp}", s.instrument(p+"/formats/{fp}", s.handleFormat))
		mux.HandleFunc("POST "+p+"/extract", s.instrument(p+"/extract", s.handleExtractBody))
		mux.HandleFunc("GET "+p+"/lake/extract", s.instrument(p+"/lake/extract", s.handleExtractLake))
		mux.HandleFunc("POST "+p+"/reindex", s.instrument(p+"/reindex", s.handleReindex))
	}
	mux.HandleFunc("GET /v1/query", s.instrument("/v1/query", s.handleQuery))
	return s.limits.wrap(mux)
}

// statusJSON is the /v1/status body: the serving-path gauges an
// operator (or the load bench) reads to see the daemon's health.
type statusJSON struct {
	Generation     uint64 `json:"generation"`
	Formats        int    `json:"formats"`
	InFlight       int64  `json:"inFlight"`
	MaxInFlight    int    `json:"maxInFlight"`
	Shed           uint64 `json:"shed"`
	ActiveReindex  int    `json:"activeReindexes"`
	CacheSize      int    `json:"profileCacheSize"`
	CacheHits      uint64 `json:"profileCacheHits"`
	CacheMisses    uint64 `json:"profileCacheMisses"`
	MaxBodyBytes   int64  `json:"maxBodyBytes"`
	RequestTimeout string `json:"requestTimeout"`
	// StartedAt/UptimeSeconds date the process; Version and Revision
	// come from the binary's embedded build info (absent when the
	// build carries none, e.g. test binaries). Reindexes counts
	// completed crawls since start, from the metrics registry.
	StartedAt     string  `json:"startedAt"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Version       string  `json:"version,omitempty"`
	Revision      string  `json:"revision,omitempty"`
	Reindexes     uint64  `json:"reindexes"`
	// Tables lists the record store's tables with their manifest-held
	// sizes (absent without a store). The counts come straight from the
	// manifest — reporting them never scans a segment.
	Tables []statusTable `json:"tables,omitempty"`
}

// statusTable is one record-store table in /v1/status.
type statusTable struct {
	Name     string `json:"name"`
	Columns  int    `json:"columns"`
	Rows     int    `json:"rows"`
	Segments int    `json:"segments"`
}

// handleStatus reports the serving gauges. Exempt from the in-flight
// bound, so it answers even under saturation.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	size, hits, misses := s.cache.stats()
	var tables []statusTable
	if s.store != nil {
		for _, ti := range s.store.Tables() {
			tables = append(tables, statusTable{Name: ti.Name, Columns: len(ti.Columns), Rows: ti.Rows, Segments: ti.Segments})
		}
	}
	version, revision := buildInfo()
	writeJSON(w, http.StatusOK, statusJSON{
		Generation:     st.gen,
		Formats:        st.reg.Len(),
		InFlight:       s.limits.inFlight.Load(),
		MaxInFlight:    s.cfg.MaxInFlight,
		Shed:           s.limits.shed.Load(),
		ActiveReindex:  s.locks.active(),
		CacheSize:      size,
		CacheHits:      hits,
		CacheMisses:    misses,
		MaxBodyBytes:   s.cfg.MaxBodyBytes,
		RequestTimeout: s.cfg.RequestTimeout.String(),
		StartedAt:      s.started.UTC().Format(time.RFC3339),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Version:        version,
		Revision:       revision,
		Reindexes:      s.obs.reindexes.Value(),
		Tables:         tables,
	})
}

// handleQuery runs one relational query over the record store and
// streams the result — NDJSON (schema line, then one object per row) or
// CSV, the same writers the CLI uses, so served bytes match the CLI's
// for the same store and query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no record store configured (restart serve with a store path)")
		return
	}
	text := r.URL.Query().Get("q")
	if text == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	output := r.URL.Query().Get("output")
	if output == "" {
		output = "ndjson"
	}
	if output != "ndjson" && output != "csv" {
		httpError(w, http.StatusBadRequest, "unknown output %q (want ndjson or csv)", output)
		return
	}
	explain, err := query.ParseExplainMode(r.URL.Query().Get("explain"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := query.Parse(text)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Plan against a pinned store view so a multi-table query sees one
	// consistent store state across concurrent reindex commits. Run
	// opens every scan before returning; a commit deleting a superseded
	// segment inside that window surfaces as ErrStaleView — nothing has
	// streamed yet, so re-pin and re-plan.
	var rows *query.Rows
	for attempt := 0; ; attempt++ {
		rows, err = query.RunWith(r.Context(), query.ViewCatalog(s.store.View()), q, query.Options{Explain: explain})
		if err == nil || !errors.Is(err, lake.ErrStaleView) || attempt >= 8 {
			break
		}
	}
	if err != nil {
		// Planning failures (unknown tables, unresolved columns) are
		// client errors; nothing has streamed yet.
		httpError(w, queryStatus(r.Context(), err), "%v", err)
		return
	}
	defer rows.Close()
	// Fold the scan counters into /metrics once the stream finishes
	// (explain-analyze drained inside RunWith, so its stats are already
	// on the Rows; plan-only explains report zero scan work).
	defer func() { s.obs.recordQuery(rows.Stats()) }()
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if output == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = query.WriteCSV(w, rows, flush)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		err = query.WriteNDJSON(w, rows, flush)
	}
	if err != nil {
		// Headers are gone once results streamed; a mid-stream failure
		// (or client cancellation) can only cut the connection.
		panic(http.ErrAbortHandler)
	}
}

// queryStatus maps query execution errors onto HTTP statuses.
func queryStatus(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return canceledStatus(ctx)
	case errors.Is(err, lake.ErrStaleView):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// formatJSON is one /formats entry.
type formatJSON struct {
	Fingerprint string   `json:"fingerprint"`
	Files       int      `json:"files"`
	Templates   []string `json:"templates"`
}

// handleFormats lists the registry: fingerprints in first-registered
// order with claim counts and templates in the paper's notation. The
// output is deterministic (no timestamps, stable order), so it diffs
// cleanly against goldens.
func (s *Server) handleFormats(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Formats []formatJSON `json:"formats"`
	}{Formats: []formatJSON{}}
	for _, fi := range s.state().reg.Snapshot() {
		fj := formatJSON{Fingerprint: fi.Fingerprint, Files: fi.Files, Templates: []string{}}
		for _, t := range fi.Templates {
			fj.Templates = append(fj.Templates, t.String())
		}
		out.Formats = append(out.Formats, fj)
	}
	writeJSON(w, http.StatusOK, out)
}

// profileJSON mirrors the public datamaran.Profile serialization
// (version 1), so a fetched profile feeds straight into
// `datamaran -profile`.
type profileJSON struct {
	Version   int               `json:"version"`
	Templates []json.RawMessage `json:"templates"`
}

// handleFormat serves one profile by fingerprint.
func (s *Server) handleFormat(w http.ResponseWriter, r *http.Request) {
	e := s.state().reg.Lookup(r.PathValue("fp"))
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown format %s", r.PathValue("fp"))
		return
	}
	pj := profileJSON{Version: 1}
	for _, t := range e.Templates {
		raw, err := json.Marshal(t)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "marshal profile: %v", err)
			return
		}
		pj.Templates = append(pj.Templates, raw)
	}
	writeJSON(w, http.StatusOK, pj)
}

// handleExtractBody extracts the request body with the named profile.
func (s *Server) handleExtractBody(w http.ResponseWriter, r *http.Request) {
	fp := r.URL.Query().Get("format")
	if fp == "" {
		httpError(w, http.StatusBadRequest, "missing format parameter")
		return
	}
	st := s.state()
	e := st.reg.Lookup(fp)
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown format %s", fp)
		return
	}
	s.extract(w, r, st, e, r.Body)
}

// handleExtractLake extracts one lake file. The format comes from (in
// order) the explicit format parameter, the file's checkpoint, or
// sample classification against the registry.
func (s *Server) handleExtractLake(w http.ResponseWriter, r *http.Request) {
	rel, ok := cleanLakePath(r.URL.Query().Get("path"))
	if !ok {
		httpError(w, http.StatusBadRequest, "bad path parameter")
		return
	}
	full := filepath.Join(s.cfg.Root, filepath.FromSlash(rel))
	f, err := os.Open(full)
	if err != nil {
		if os.IsNotExist(err) {
			httpError(w, http.StatusNotFound, "no such lake file %s", rel)
		} else {
			httpError(w, http.StatusInternalServerError, "open %s: %v", rel, err)
		}
		return
	}
	defer f.Close()

	// One snapshot for the whole request: the registry lookup and the
	// checkpoint lookup can never mix two reindex generations.
	st := s.state()
	var e *lake.Entry
	if fp := r.URL.Query().Get("format"); fp != "" {
		if e = st.reg.Lookup(fp); e == nil {
			httpError(w, http.StatusNotFound, "unknown format %s", fp)
			return
		}
	} else if cp := st.cps.Get(rel); cp != nil && cp.Fingerprint != "" {
		e = st.reg.Lookup(cp.Fingerprint)
	}
	if e == nil {
		sampleBytes := s.cfg.SampleBytes
		if sampleBytes <= 0 {
			sampleBytes = lake.DefaultSampleBytes
		}
		threshold := s.cfg.MatchThreshold
		if threshold <= 0 {
			threshold = lake.DefaultMatchThreshold
		}
		sample, _, err := lake.ReadSample(full, sampleBytes)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "sample %s: %v", rel, err)
			return
		}
		if e = lake.MatchSample(sample, st.reg, threshold); e == nil {
			httpError(w, http.StatusUnprocessableEntity,
				"no registered format claims %s (reindex first, or pass format=)", rel)
			return
		}
	}
	s.extract(w, r, st, e, f)
}

// extract streams src through the profile pipeline in the requested
// output form, using the snapshot's cached compiled matchers. NDJSON
// streams record by record; CSV buffers the result to build relational
// tables.
func (s *Server) extract(w http.ResponseWriter, r *http.Request, st *state, e *lake.Entry, src io.Reader) {
	output := r.URL.Query().Get("output")
	if output == "" {
		output = "ndjson"
	}
	cfg := pipeline.Config{
		Templates: e.Templates,
		Matchers:  s.matchersFor(st, e),
		Workers:   s.cfg.Workers,
	}
	switch output {
	case "ndjson":
		s.extractNDJSON(w, r, cfg, src)
	case "csv":
		s.extractCSV(w, r, cfg, src)
	default:
		httpError(w, http.StatusBadRequest, "unknown output %q (want ndjson or csv)", output)
	}
}

// recordJSON is the NDJSON wire form of one record.
type recordJSON struct {
	Type      int         `json:"type"`
	StartLine int         `json:"startLine"`
	EndLine   int         `json:"endLine"`
	Fields    []fieldJSON `json:"fields"`
}

// fieldJSON is one field value with whole-file coordinates.
type fieldJSON struct {
	Col   int    `json:"col"`
	Rep   int    `json:"rep"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	Value string `json:"value"`
}

// extractNDJSON streams one JSON object per record as shards finalize —
// bounded memory end to end. Records of one type arrive in input order;
// types interleave at shard granularity (deterministically).
func (s *Server) extractNDJSON(w http.ResponseWriter, r *http.Request, cfg pipeline.Config, src io.Reader) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	var writeErr error
	cfg.OnRecord = func(ro core.RecordOut) error {
		rj := recordJSON{Type: ro.TypeID, StartLine: ro.StartLine, EndLine: ro.EndLine, Fields: []fieldJSON{}}
		for _, f := range ro.Fields {
			rj.Fields = append(rj.Fields, fieldJSON{Col: f.Col, Rep: f.Rep, Start: f.Start, End: f.End, Value: f.Value})
		}
		if err := enc.Encode(&rj); err != nil {
			writeErr = err
			return err
		}
		if n++; n%64 == 0 && flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	cfg.OnNoise = func(int) error { return nil }
	if _, err := pipeline.RunContext(r.Context(), src, cfg); err != nil && writeErr == nil {
		// Headers are gone once records streamed; all we can do for a
		// mid-stream failure is cut the connection. An upfront failure
		// (empty input) still reports cleanly.
		if n == 0 {
			httpError(w, statusFor(r.Context(), err), "extract: %v", err)
			return
		}
		panic(http.ErrAbortHandler)
	}
}

// extractCSV runs the extraction to completion and writes the
// relational tables as CSV: all tables (each preceded by a "# table"
// line), or exactly one bare table with table=NAME — the form that is
// byte-identical to the CLI's per-table CSV files.
func (s *Server) extractCSV(w http.ResponseWriter, r *http.Request, cfg pipeline.Config, src io.Reader) {
	res, err := pipeline.RunContext(r.Context(), src, cfg)
	if err != nil {
		httpError(w, statusFor(r.Context(), err), "extract: %v", err)
		return
	}
	// This mirrors the flat-record table path of datamaran.Result.Tables
	// (tables.go), which serve cannot call: datamaran.Result is built
	// only by the root package's own entry points. Byte-equality of the
	// two paths is pinned by TestServedExtractionMatchesPublicAPI and
	// the serve-smoke golden diff against the CLI's CSVs.
	var tables []*relational.Table
	for typeID, st := range res.Structures {
		var records [][]relational.FlatField
		for _, rec := range res.Records {
			if rec.TypeID != typeID {
				continue
			}
			fields := make([]relational.FlatField, 0, len(rec.Fields))
			for _, f := range rec.Fields {
				fields = append(fields, relational.FlatField{Col: f.Col, Rep: f.Rep, Value: f.Value})
			}
			records = append(records, fields)
		}
		db := relational.BuildFlat(st.Template, records, fmt.Sprintf("type%d", typeID))
		tables = append(tables, db.Tables...)
	}
	want := r.URL.Query().Get("table")
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if want != "" {
		for _, t := range tables {
			if t.Name == want {
				t.WriteCSV(w)
				return
			}
		}
		httpError(w, http.StatusNotFound, "no table %q in extraction (have %s)", want, tableNames(tables))
		return
	}
	for _, t := range tables {
		fmt.Fprintf(w, "# table %s\n", t.Name)
		t.WriteCSV(w)
	}
}

func tableNames(tables []*relational.Table) string {
	names := make([]string, 0, len(tables))
	for _, t := range tables {
		names = append(names, t.Name)
	}
	return strings.Join(names, ", ")
}

// reindexJSON is the /reindex response. Format appears only on scoped
// runs, so global responses keep their historical bytes.
type reindexJSON struct {
	Format            string `json:"format,omitempty"`
	Files             int    `json:"files"`
	Structured        int    `json:"structured"`
	Unstructured      int    `json:"unstructured"`
	Failed            int    `json:"failed"`
	FormatsKnown      int    `json:"formatsKnown"`
	FormatsDiscovered int    `json:"formatsDiscovered"`
	CacheHits         int    `json:"cacheHits"`
	Resumed           int    `json:"resumed"`
	Unchanged         int    `json:"unchanged"`
}

// ErrBusy reports that a conflicting crawl is already running: the same
// format is being reindexed, or a global crawl is (or wants to be) in
// flight.
var ErrBusy = errors.New("serve: a conflicting reindex is already running")

// ErrUnknownFormat reports a scoped reindex of a fingerprint the
// registry does not know.
var ErrUnknownFormat = errors.New("serve: unknown format")

// Reindex runs one incremental crawl over the lake and persists the
// outcome. format empty crawls everything; a fingerprint restricts the
// crawl to that format's checkpointed files — scoped crawls of
// different formats run concurrently, and neither ever blocks a read
// (reads serve the previous snapshot until the swap).
//
// The crawl works on clones of the snapshot it started from; only a
// completed crawl publishes, so a cancelled or failed crawl leaves both
// the served state and the on-disk state exactly as the last completed
// run left them. A scoped crawl's commit rebases its deltas — its
// files' checkpoints, claim-count changes, record-store segments — onto
// whatever snapshot is current by then, so concurrent scoped crawls
// compose instead of clobbering each other. Conflicting calls (same
// format, or anything against a global crawl) return ErrBusy rather
// than queueing unbounded work.
func (s *Server) Reindex(ctx context.Context, format string) (*lake.Result, error) {
	if !s.locks.tryLock(format) {
		return nil, ErrBusy
	}
	defer s.locks.unlock(format)
	hist := s.obs.reindexGlobal
	if format != "" {
		hist = s.obs.reindexScoped
	}
	span := obsv.StartSpan(hist)

	base := s.state()
	var scope map[string]bool
	if format != "" {
		if base.reg.Lookup(format) == nil {
			return nil, fmt.Errorf("%w: %s", ErrUnknownFormat, format)
		}
		// The scope is the format's current claim set: every checkpointed
		// path the fingerprint owns. Files that rotated into a different
		// format since their checkpoint reclassify within the scoped
		// crawl (possibly discovering a new format); brand-new files wait
		// for a global crawl.
		scope = map[string]bool{}
		for _, p := range base.cps.Paths() {
			if cp := base.cps.Get(p); cp != nil && cp.Fingerprint == format {
				scope[p] = true
			}
		}
	}

	reg, err := cloneRegistry(base.reg)
	if err != nil {
		return nil, err
	}
	cps, err := cloneStore(base.cps)
	if err != nil {
		return nil, err
	}
	// The record store follows the same discipline as the snapshot: the
	// crawl stages segments in a transaction, and only a completed crawl
	// commits them (the commit itself rebases by touched path).
	var txn *lake.StoreTxn
	if s.store != nil {
		txn = s.store.Begin()
	}
	cfg := lake.Config{
		Core:           s.cfg.Core,
		Workers:        s.cfg.Workers,
		SampleBytes:    s.cfg.SampleBytes,
		MatchThreshold: s.cfg.MatchThreshold,
		Checkpoints:    cps,
		Segments:       txn,
		Metrics:        s.obs.reg,
		Logger:         s.logger,
	}
	if scope != nil {
		cfg.Filter = func(rel string) bool { return scope[rel] }
	}
	res, err := lake.IndexContext(ctx, s.cfg.Root, reg, cfg)
	if err != nil {
		if txn != nil {
			txn.Abort()
		}
		return nil, err
	}

	// Publish: rebase the crawl's outcome onto the current snapshot and
	// swap. swapMu serializes the rebase-and-swap windows of concurrent
	// scoped crawls, so each sees the other's published state.
	s.swapMu.Lock()
	next, err := s.rebase(base, reg, cps, scope)
	if err != nil {
		s.swapMu.Unlock()
		if txn != nil {
			txn.Abort()
		}
		return nil, err
	}
	if txn != nil {
		if err := txn.Commit(); err != nil {
			s.swapMu.Unlock()
			return nil, err
		}
	}
	s.mu.Lock()
	s.cur = next
	s.mu.Unlock()
	s.swapMu.Unlock()
	if s.store != nil {
		// Compaction after publish keeps per-table segment-file counts
		// bounded across repeated reindexes. A commit racing the
		// compaction makes it a harmless no-op (it CASes the manifest),
		// never a conflict.
		if _, err := s.store.Compact(lake.DefaultCompactFiles); err != nil {
			return nil, err
		}
	}
	if err := s.Persist(); err != nil {
		return nil, err
	}
	s.obs.reindexes.Inc()
	elapsed := span.End()
	if s.logger != nil {
		scope := format
		if scope == "" {
			scope = "all"
		}
		s.logger.Info("reindex",
			"scope", scope,
			"files", res.Summary.Files,
			"structured", res.Summary.Structured,
			"failed", res.Summary.Failed,
			"formats", res.Summary.FormatsKnown,
			"discovered", res.Summary.FormatsDiscovered,
			"resumed", res.Summary.Resumed,
			"unchanged", res.Summary.Unchanged,
			"duration", elapsed.Round(time.Millisecond).String())
	}
	return res, nil
}

// rebase builds the next served snapshot from a finished crawl. A
// global crawl (scope nil) excludes every other crawl by lock, so its
// clones are the next snapshot wholesale — as they are when nothing
// was published since the crawl began. A scoped crawl may find the
// snapshot advanced by other formats' crawls: its deltas (checkpoints
// of its scope paths, per-fingerprint claim changes, newly discovered
// formats) are applied to fresh clones of the current snapshot. Scopes
// are disjoint — each path's checkpoint names one owning fingerprint —
// so the deltas of concurrent scoped crawls compose. Callers hold
// swapMu.
func (s *Server) rebase(base *state, reg *lake.Registry, cps *follow.Store, scope map[string]bool) (*state, error) {
	cur := s.state()
	if scope == nil || cur == base {
		return &state{gen: cur.gen + 1, reg: reg, cps: cps}, nil
	}
	nreg, err := cloneRegistry(cur.reg)
	if err != nil {
		return nil, err
	}
	ncps, err := cloneStore(cur.cps)
	if err != nil {
		return nil, err
	}
	// Checkpoint deltas: the crawl was authoritative for exactly the
	// scope paths (departed files lost their checkpoints, everything
	// else in scope re-checkpointed).
	for p := range scope {
		if cp := cps.Get(p); cp != nil {
			ncps.Put(cp)
		} else {
			ncps.Delete(p)
		}
	}
	// Registry deltas: per-fingerprint claim-count changes, plus any
	// format first discovered by this crawl (a scoped file rotated into
	// a brand-new structure). Claims count disjoint file sets across
	// scopes, so addition composes.
	for _, fi := range reg.Snapshot() {
		baseFiles := 0
		if e := base.reg.Lookup(fi.Fingerprint); e != nil {
			baseFiles = base.reg.FilesClaimed(e)
		}
		if delta := fi.Files - baseFiles; delta != 0 || nreg.Lookup(fi.Fingerprint) == nil {
			nreg.Add(fi.Templates) // no-op for known fingerprints
			nreg.Adjust(fi.Fingerprint, delta)
		}
	}
	return &state{gen: cur.gen + 1, reg: nreg, cps: ncps}, nil
}

// cloneRegistry deep-copies a registry through its canonical
// serialization.
func cloneRegistry(reg *lake.Registry) (*lake.Registry, error) {
	raw, err := json.Marshal(reg)
	if err != nil {
		return nil, err
	}
	out := lake.NewRegistry()
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// cloneStore deep-copies a checkpoint store.
func cloneStore(cps *follow.Store) (*follow.Store, error) {
	raw, err := json.Marshal(cps)
	if err != nil {
		return nil, err
	}
	out := follow.NewStore()
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// handleReindex is Reindex over HTTP, reporting the run summary. An
// optional format={fp} parameter scopes the crawl to one format.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	res, err := s.Reindex(r.Context(), format)
	if errors.Is(err, ErrBusy) {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if errors.Is(err, ErrUnknownFormat) {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err != nil {
		httpError(w, statusFor(r.Context(), err), "reindex: %v", err)
		return
	}
	sum := res.Summary
	writeJSON(w, http.StatusOK, reindexJSON{
		Format:            format,
		Files:             sum.Files,
		Structured:        sum.Structured,
		Unstructured:      sum.Unstructured,
		Failed:            sum.Failed,
		FormatsKnown:      sum.FormatsKnown,
		FormatsDiscovered: sum.FormatsDiscovered,
		CacheHits:         sum.CacheHits,
		Resumed:           sum.Resumed,
		Unchanged:         sum.Unchanged,
	})
}

// Persist writes the current snapshot's registry and checkpoint store
// back to their configured paths (no-ops for in-memory handles).
func (s *Server) Persist() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	st := s.state()
	if s.cfg.RegistryPath != "" {
		if err := st.reg.Save(s.cfg.RegistryPath); err != nil {
			return err
		}
	}
	if s.cfg.CheckpointPath != "" {
		if err := st.cps.Save(s.cfg.CheckpointPath); err != nil {
			return err
		}
	}
	return nil
}

// cleanLakePath normalizes a client-supplied relative path and rejects
// anything escaping the lake root (absolute paths, ".." traversal) or
// reaching into hidden entries the crawler skips.
func cleanLakePath(p string) (string, bool) {
	if p == "" || strings.Contains(p, "\x00") || strings.HasPrefix(p, "/") {
		return "", false
	}
	cleaned := path.Clean(p)
	if cleaned == "" || cleaned == "." {
		return "", false
	}
	for _, seg := range strings.Split(cleaned, "/") {
		// "." segments cover both hidden entries and "..".
		if strings.HasPrefix(seg, ".") {
			return "", false
		}
	}
	return cleaned, true
}

// statusFor maps extraction errors onto HTTP statuses.
func statusFor(ctx context.Context, err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, core.ErrEmptyInput):
		return http.StatusBadRequest
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		// The per-request deadline: the context expiring mid-compute, or
		// the connection read/write deadline firing on a stalled client.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return canceledStatus(ctx)
	default:
		return http.StatusInternalServerError
	}
}

// canceledStatus disambiguates a context cancellation. When the
// connection read deadline cuts a stalled client, net/http cancels the
// request context as it aborts the connection reader — racing with the
// handler observing the i/o timeout itself — so a cancellation at or
// past the request deadline is the deadline firing, not the client
// hanging up.
func canceledStatus(ctx context.Context) int {
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return http.StatusGatewayTimeout
	}
	return 499 // client closed request (nginx convention)
}

// writeJSON writes v indented with a trailing newline — stable bytes
// for goldens and shell pipelines.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "marshal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}

// errorJSON is the error envelope every failure body carries.
type errorJSON struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode names a status class for programmatic handling.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "busy"
	case http.StatusUnprocessableEntity:
		return "unclaimed"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusTooManyRequests:
		return "saturated"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case 499:
		return "canceled"
	default:
		return "internal"
	}
}

// httpError writes the JSON error envelope.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	raw, err := json.Marshal(errorJSON{Error: errorBody{
		Code:    errorCode(status),
		Message: fmt.Sprintf(format, args...),
	}})
	if err != nil { // unreachable: the envelope always marshals
		http.Error(w, fmt.Sprintf(format, args...), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}
