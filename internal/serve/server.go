// Package serve exposes a data lake's profile registry and extraction
// engine over HTTP — the query half of the incremental ingestion
// subsystem (internal/follow provides the write half). A Server owns a
// lake directory plus one shared registry/checkpoint handle; request
// handlers stream extraction output (NDJSON or CSV) while POST /reindex
// runs the incremental crawl on the same handles, so discovery keeps
// amortizing across requests the way the paper's learn-once,
// apply-many workflow intends.
//
// Endpoints (the /v1/ prefix is the canonical surface; the unversioned
// paths predate it and remain as deprecated aliases for one release):
//
//	GET  /healthz                    liveness probe
//	GET  /v1/formats                 registry listing (JSON)
//	GET  /v1/formats/{fp}            one profile (JSON, loadable by the CLI's -profile)
//	POST /v1/extract?format={fp}     extract the request body with a profile
//	GET  /v1/lake/extract?path=...   extract a lake file (format inferred)
//	POST /v1/reindex                 run the incremental crawl, persist, report
//	GET  /v1/query?q=...             run a relational query over the record store
//
// Every failure body is the JSON envelope {"error": {"code", "message"}}.
//
// Extraction and query responses are deterministic: worker counts never
// change output, so served bytes are byte-identical to the CLI's for
// the same input and profile.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"

	"datamaran/internal/core"
	"datamaran/internal/follow"
	"datamaran/internal/lake"
	"datamaran/internal/pipeline"
	"datamaran/internal/query"
	"datamaran/internal/relational"
	"datamaran/internal/template"
)

// Config parameterizes a Server.
type Config struct {
	// Root is the lake directory served and crawled.
	Root string
	// RegistryPath is the persistent profile registry. Empty keeps the
	// registry in memory only (lost on restart).
	RegistryPath string
	// CheckpointPath is the persistent checkpoint store of the
	// incremental crawl. Empty keeps checkpoints in memory only.
	CheckpointPath string
	// Workers is the extraction parallelism for requests and crawls
	// (0 means all cores). Worker count never changes any output.
	Workers int
	// Core holds the discovery options used when /reindex meets a new
	// format.
	Core core.Options
	// SampleBytes and MatchThreshold parameterize classification, as in
	// lake.Config.
	SampleBytes    int
	MatchThreshold float64
	// StorePath is the record-store directory: the per-format columnar
	// segments /reindex writes and /v1/query reads. Empty disables the
	// store (and with it /v1/query).
	StorePath string
}

// Server is the long-running daemon state: the shared registry and
// checkpoint handles, guarded for concurrent use by request handlers
// and the crawl.
type Server struct {
	cfg Config
	// mu guards the handle pointers: a crawl runs on clones and swaps
	// them in only on success, so an aborted /reindex (client
	// disconnect mid-crawl) can never leave the served state partially
	// mutated. Handlers snapshot a handle once per request; an
	// in-flight request keeps reading its (internally consistent) old
	// handle across a swap.
	mu  sync.RWMutex
	reg *lake.Registry
	cps *follow.Store
	// store is the record store handle (nil without a StorePath). It
	// needs no guarding here: scans snapshot its manifest and commits
	// swap it whole.
	store *lake.SegmentStore
	// reindexMu serializes crawls; persistMu serializes saves of the
	// registry/checkpoint files.
	reindexMu sync.Mutex
	persistMu sync.Mutex
}

// New loads the registry and checkpoint store and returns a Server.
func New(cfg Config) (*Server, error) {
	info, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("serve: root %s is not a directory", cfg.Root)
	}
	reg := lake.NewRegistry()
	if cfg.RegistryPath != "" {
		if reg, err = lake.LoadRegistry(cfg.RegistryPath); err != nil {
			return nil, err
		}
	}
	cps := follow.NewStore()
	if cfg.CheckpointPath != "" {
		if cps, err = follow.LoadStore(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	var store *lake.SegmentStore
	if cfg.StorePath != "" {
		if store, err = lake.OpenSegmentStore(cfg.StorePath); err != nil {
			return nil, err
		}
	}
	return &Server{cfg: cfg, reg: reg, cps: cps, store: store}, nil
}

// Registry exposes the shared registry handle (for tests and embedding).
func (s *Server) Registry() *lake.Registry { return s.registry() }

// registry and checkpoints snapshot the current handles.
func (s *Server) registry() *lake.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reg
}

func (s *Server) checkpoints() *follow.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cps
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	// /v1/ is the canonical surface; the unversioned routes are
	// deprecated aliases kept for one release.
	for _, p := range []string{"/v1", ""} {
		mux.HandleFunc("GET "+p+"/formats", s.handleFormats)
		mux.HandleFunc("GET "+p+"/formats/{fp}", s.handleFormat)
		mux.HandleFunc("POST "+p+"/extract", s.handleExtractBody)
		mux.HandleFunc("GET "+p+"/lake/extract", s.handleExtractLake)
		mux.HandleFunc("POST "+p+"/reindex", s.handleReindex)
	}
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	return mux
}

// handleQuery runs one relational query over the record store and
// streams the result — NDJSON (schema line, then one object per row) or
// CSV, the same writers the CLI uses, so served bytes match the CLI's
// for the same store and query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no record store configured (restart serve with a store path)")
		return
	}
	text := r.URL.Query().Get("q")
	if text == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	output := r.URL.Query().Get("output")
	if output == "" {
		output = "ndjson"
	}
	if output != "ndjson" && output != "csv" {
		httpError(w, http.StatusBadRequest, "unknown output %q (want ndjson or csv)", output)
		return
	}
	q, err := query.Parse(text)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rows, err := query.Run(r.Context(), query.StoreCatalog(s.store), q)
	if err != nil {
		// Planning failures (unknown tables, unresolved columns) are
		// client errors; nothing has streamed yet.
		httpError(w, queryStatus(err), "%v", err)
		return
	}
	defer rows.Close()
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if output == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = query.WriteCSV(w, rows, flush)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		err = query.WriteNDJSON(w, rows, flush)
	}
	if err != nil {
		// Headers are gone once results streamed; a mid-stream failure
		// (or client cancellation) can only cut the connection.
		panic(http.ErrAbortHandler)
	}
}

// queryStatus maps query execution errors onto HTTP statuses.
func queryStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	return http.StatusBadRequest
}

// formatJSON is one /formats entry.
type formatJSON struct {
	Fingerprint string   `json:"fingerprint"`
	Files       int      `json:"files"`
	Templates   []string `json:"templates"`
}

// handleFormats lists the registry: fingerprints in first-registered
// order with claim counts and templates in the paper's notation. The
// output is deterministic (no timestamps, stable order), so it diffs
// cleanly against goldens.
func (s *Server) handleFormats(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Formats []formatJSON `json:"formats"`
	}{Formats: []formatJSON{}}
	for _, fi := range s.registry().Snapshot() {
		fj := formatJSON{Fingerprint: fi.Fingerprint, Files: fi.Files, Templates: []string{}}
		for _, t := range fi.Templates {
			fj.Templates = append(fj.Templates, t.String())
		}
		out.Formats = append(out.Formats, fj)
	}
	writeJSON(w, http.StatusOK, out)
}

// profileJSON mirrors the public datamaran.Profile serialization
// (version 1), so a fetched profile feeds straight into
// `datamaran -profile`.
type profileJSON struct {
	Version   int               `json:"version"`
	Templates []json.RawMessage `json:"templates"`
}

// handleFormat serves one profile by fingerprint.
func (s *Server) handleFormat(w http.ResponseWriter, r *http.Request) {
	e := s.registry().Lookup(r.PathValue("fp"))
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown format %s", r.PathValue("fp"))
		return
	}
	pj := profileJSON{Version: 1}
	for _, t := range e.Templates {
		raw, err := json.Marshal(t)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "marshal profile: %v", err)
			return
		}
		pj.Templates = append(pj.Templates, raw)
	}
	writeJSON(w, http.StatusOK, pj)
}

// handleExtractBody extracts the request body with the named profile.
func (s *Server) handleExtractBody(w http.ResponseWriter, r *http.Request) {
	fp := r.URL.Query().Get("format")
	if fp == "" {
		httpError(w, http.StatusBadRequest, "missing format parameter")
		return
	}
	e := s.registry().Lookup(fp)
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown format %s", fp)
		return
	}
	s.extract(w, r, e.Templates, r.Body)
}

// handleExtractLake extracts one lake file. The format comes from (in
// order) the explicit format parameter, the file's checkpoint, or
// sample classification against the registry.
func (s *Server) handleExtractLake(w http.ResponseWriter, r *http.Request) {
	rel, ok := cleanLakePath(r.URL.Query().Get("path"))
	if !ok {
		httpError(w, http.StatusBadRequest, "bad path parameter")
		return
	}
	full := filepath.Join(s.cfg.Root, filepath.FromSlash(rel))
	f, err := os.Open(full)
	if err != nil {
		if os.IsNotExist(err) {
			httpError(w, http.StatusNotFound, "no such lake file %s", rel)
		} else {
			httpError(w, http.StatusInternalServerError, "open %s: %v", rel, err)
		}
		return
	}
	defer f.Close()

	reg := s.registry()
	var e *lake.Entry
	if fp := r.URL.Query().Get("format"); fp != "" {
		if e = reg.Lookup(fp); e == nil {
			httpError(w, http.StatusNotFound, "unknown format %s", fp)
			return
		}
	} else if cp := s.checkpoints().Get(rel); cp != nil && cp.Fingerprint != "" {
		e = reg.Lookup(cp.Fingerprint)
	}
	if e == nil {
		sampleBytes := s.cfg.SampleBytes
		if sampleBytes <= 0 {
			sampleBytes = lake.DefaultSampleBytes
		}
		threshold := s.cfg.MatchThreshold
		if threshold <= 0 {
			threshold = lake.DefaultMatchThreshold
		}
		sample, _, err := lake.ReadSample(full, sampleBytes)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "sample %s: %v", rel, err)
			return
		}
		if e = lake.MatchSample(sample, reg, threshold); e == nil {
			httpError(w, http.StatusUnprocessableEntity,
				"no registered format claims %s (reindex first, or pass format=)", rel)
			return
		}
	}
	s.extract(w, r, e.Templates, f)
}

// extract streams src through the profile pipeline in the requested
// output form. NDJSON streams record by record; CSV buffers the result
// to build relational tables.
func (s *Server) extract(w http.ResponseWriter, r *http.Request, templates []*template.Node, src io.Reader) {
	output := r.URL.Query().Get("output")
	if output == "" {
		output = "ndjson"
	}
	cfg := pipeline.Config{
		Templates: templates,
		Workers:   s.cfg.Workers,
	}
	switch output {
	case "ndjson":
		s.extractNDJSON(w, r, cfg, src)
	case "csv":
		s.extractCSV(w, r, cfg, src)
	default:
		httpError(w, http.StatusBadRequest, "unknown output %q (want ndjson or csv)", output)
	}
}

// recordJSON is the NDJSON wire form of one record.
type recordJSON struct {
	Type      int         `json:"type"`
	StartLine int         `json:"startLine"`
	EndLine   int         `json:"endLine"`
	Fields    []fieldJSON `json:"fields"`
}

// fieldJSON is one field value with whole-file coordinates.
type fieldJSON struct {
	Col   int    `json:"col"`
	Rep   int    `json:"rep"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	Value string `json:"value"`
}

// extractNDJSON streams one JSON object per record as shards finalize —
// bounded memory end to end. Records of one type arrive in input order;
// types interleave at shard granularity (deterministically).
func (s *Server) extractNDJSON(w http.ResponseWriter, r *http.Request, cfg pipeline.Config, src io.Reader) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	var writeErr error
	cfg.OnRecord = func(ro core.RecordOut) error {
		rj := recordJSON{Type: ro.TypeID, StartLine: ro.StartLine, EndLine: ro.EndLine, Fields: []fieldJSON{}}
		for _, f := range ro.Fields {
			rj.Fields = append(rj.Fields, fieldJSON{Col: f.Col, Rep: f.Rep, Start: f.Start, End: f.End, Value: f.Value})
		}
		if err := enc.Encode(&rj); err != nil {
			writeErr = err
			return err
		}
		if n++; n%64 == 0 && flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	cfg.OnNoise = func(int) error { return nil }
	if _, err := pipeline.RunContext(r.Context(), src, cfg); err != nil && writeErr == nil {
		// Headers are gone once records streamed; all we can do for a
		// mid-stream failure is cut the connection. An upfront failure
		// (empty input) still reports cleanly.
		if n == 0 {
			httpError(w, statusFor(err), "extract: %v", err)
			return
		}
		panic(http.ErrAbortHandler)
	}
}

// extractCSV runs the extraction to completion and writes the
// relational tables as CSV: all tables (each preceded by a "# table"
// line), or exactly one bare table with table=NAME — the form that is
// byte-identical to the CLI's per-table CSV files.
func (s *Server) extractCSV(w http.ResponseWriter, r *http.Request, cfg pipeline.Config, src io.Reader) {
	res, err := pipeline.RunContext(r.Context(), src, cfg)
	if err != nil {
		httpError(w, statusFor(err), "extract: %v", err)
		return
	}
	// This mirrors the flat-record table path of datamaran.Result.Tables
	// (tables.go), which serve cannot call: datamaran.Result is built
	// only by the root package's own entry points. Byte-equality of the
	// two paths is pinned by TestServedExtractionMatchesPublicAPI and
	// the serve-smoke golden diff against the CLI's CSVs.
	var tables []*relational.Table
	for typeID, st := range res.Structures {
		var records [][]relational.FlatField
		for _, rec := range res.Records {
			if rec.TypeID != typeID {
				continue
			}
			fields := make([]relational.FlatField, 0, len(rec.Fields))
			for _, f := range rec.Fields {
				fields = append(fields, relational.FlatField{Col: f.Col, Rep: f.Rep, Value: f.Value})
			}
			records = append(records, fields)
		}
		db := relational.BuildFlat(st.Template, records, fmt.Sprintf("type%d", typeID))
		tables = append(tables, db.Tables...)
	}
	want := r.URL.Query().Get("table")
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if want != "" {
		for _, t := range tables {
			if t.Name == want {
				t.WriteCSV(w)
				return
			}
		}
		httpError(w, http.StatusNotFound, "no table %q in extraction (have %s)", want, tableNames(tables))
		return
	}
	for _, t := range tables {
		fmt.Fprintf(w, "# table %s\n", t.Name)
		t.WriteCSV(w)
	}
}

func tableNames(tables []*relational.Table) string {
	names := make([]string, 0, len(tables))
	for _, t := range tables {
		names = append(names, t.Name)
	}
	return strings.Join(names, ", ")
}

// reindexJSON is the /reindex response.
type reindexJSON struct {
	Files             int `json:"files"`
	Structured        int `json:"structured"`
	Unstructured      int `json:"unstructured"`
	Failed            int `json:"failed"`
	FormatsKnown      int `json:"formatsKnown"`
	FormatsDiscovered int `json:"formatsDiscovered"`
	CacheHits         int `json:"cacheHits"`
	Resumed           int `json:"resumed"`
	Unchanged         int `json:"unchanged"`
}

// ErrBusy reports that a crawl is already running.
var ErrBusy = errors.New("serve: a reindex is already running")

// Reindex runs one incremental crawl over the lake and persists the
// outcome. The crawl works on clones of the registry and checkpoint
// store; only a completed crawl swaps them in, so a cancelled or
// failed crawl leaves both the served state and the on-disk state
// exactly as the last completed run left them. Crawls are serialized;
// a concurrent call returns ErrBusy rather than queueing unbounded
// work.
func (s *Server) Reindex(ctx context.Context) (*lake.Result, error) {
	if !s.reindexMu.TryLock() {
		return nil, ErrBusy
	}
	defer s.reindexMu.Unlock()
	reg, err := cloneRegistry(s.registry())
	if err != nil {
		return nil, err
	}
	cps, err := cloneStore(s.checkpoints())
	if err != nil {
		return nil, err
	}
	// The record store follows the same discipline as the handles: the
	// crawl stages segments in a transaction, and only a completed crawl
	// commits them.
	var txn *lake.StoreTxn
	if s.store != nil {
		txn = s.store.Begin()
	}
	res, err := lake.IndexContext(ctx, s.cfg.Root, reg, lake.Config{
		Core:           s.cfg.Core,
		Workers:        s.cfg.Workers,
		SampleBytes:    s.cfg.SampleBytes,
		MatchThreshold: s.cfg.MatchThreshold,
		Checkpoints:    cps,
		Segments:       txn,
	})
	if err != nil {
		if txn != nil {
			txn.Abort()
		}
		return nil, err
	}
	if txn != nil {
		if err := txn.Commit(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.reg, s.cps = reg, cps
	s.mu.Unlock()
	if err := s.Persist(); err != nil {
		return nil, err
	}
	return res, nil
}

// cloneRegistry deep-copies a registry through its canonical
// serialization.
func cloneRegistry(reg *lake.Registry) (*lake.Registry, error) {
	raw, err := json.Marshal(reg)
	if err != nil {
		return nil, err
	}
	out := lake.NewRegistry()
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// cloneStore deep-copies a checkpoint store.
func cloneStore(cps *follow.Store) (*follow.Store, error) {
	raw, err := json.Marshal(cps)
	if err != nil {
		return nil, err
	}
	out := follow.NewStore()
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// handleReindex is Reindex over HTTP, reporting the run summary.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	res, err := s.Reindex(r.Context())
	if errors.Is(err, ErrBusy) {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if err != nil {
		httpError(w, statusFor(err), "reindex: %v", err)
		return
	}
	sum := res.Summary
	writeJSON(w, http.StatusOK, reindexJSON{
		Files:             sum.Files,
		Structured:        sum.Structured,
		Unstructured:      sum.Unstructured,
		Failed:            sum.Failed,
		FormatsKnown:      sum.FormatsKnown,
		FormatsDiscovered: sum.FormatsDiscovered,
		CacheHits:         sum.CacheHits,
		Resumed:           sum.Resumed,
		Unchanged:         sum.Unchanged,
	})
}

// Persist writes the registry and checkpoint store back to their
// configured paths (no-ops for in-memory handles).
func (s *Server) Persist() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.cfg.RegistryPath != "" {
		if err := s.registry().Save(s.cfg.RegistryPath); err != nil {
			return err
		}
	}
	if s.cfg.CheckpointPath != "" {
		if err := s.checkpoints().Save(s.cfg.CheckpointPath); err != nil {
			return err
		}
	}
	return nil
}

// cleanLakePath normalizes a client-supplied relative path and rejects
// anything escaping the lake root (absolute paths, ".." traversal) or
// reaching into hidden entries the crawler skips.
func cleanLakePath(p string) (string, bool) {
	if p == "" || strings.Contains(p, "\x00") || strings.HasPrefix(p, "/") {
		return "", false
	}
	cleaned := path.Clean(p)
	if cleaned == "" || cleaned == "." {
		return "", false
	}
	for _, seg := range strings.Split(cleaned, "/") {
		// "." segments cover both hidden entries and "..".
		if strings.HasPrefix(seg, ".") {
			return "", false
		}
	}
	return cleaned, true
}

// statusFor maps extraction errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrEmptyInput):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes v indented with a trailing newline — stable bytes
// for goldens and shell pipelines.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "marshal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}

// errorJSON is the error envelope every failure body carries.
type errorJSON struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode names a status class for programmatic handling.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "busy"
	case http.StatusUnprocessableEntity:
		return "unclaimed"
	case 499:
		return "canceled"
	default:
		return "internal"
	}
}

// httpError writes the JSON error envelope.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	raw, err := json.Marshal(errorJSON{Error: errorBody{
		Code:    errorCode(status),
		Message: fmt.Sprintf(format, args...),
	}})
	if err != nil { // unreachable: the envelope always marshals
		http.Error(w, fmt.Sprintf(format, args...), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}
