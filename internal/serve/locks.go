package serve

import "sync"

// formatLocks coordinates crawls without ever blocking: a scoped
// reindex holds its format's lock, a global reindex holds the whole
// table. Scoped crawls of different formats run concurrently; two
// crawls of the same format — or a global crawl against anything —
// conflict and fail fast (the HTTP surface turns that into 409, so
// clients retry instead of queueing unbounded work).
type formatLocks struct {
	mu     sync.Mutex
	global bool
	held   map[string]bool
}

// tryLock acquires the lock for one format fingerprint, or the global
// lock when fp is empty. It never blocks: false means a conflicting
// crawl is running.
func (l *formatLocks) tryLock(fp string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.global {
		return false
	}
	if fp == "" {
		if len(l.held) > 0 {
			return false
		}
		l.global = true
		return true
	}
	if l.held[fp] {
		return false
	}
	if l.held == nil {
		l.held = map[string]bool{}
	}
	l.held[fp] = true
	return true
}

// unlock releases what tryLock acquired.
func (l *formatLocks) unlock(fp string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if fp == "" {
		l.global = false
		return
	}
	delete(l.held, fp)
}

// active reports how many crawls hold locks right now (a global crawl
// counts as one).
func (l *formatLocks) active() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.held)
	if l.global {
		n++
	}
	return n
}
