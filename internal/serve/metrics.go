// Serving-path observability: the per-route HTTP middleware, the
// /metrics exposition handler, and the query/reindex counters the
// handlers feed. All metrics live in one obsv.Registry (shared with
// the lake crawl via lake.Config.Metrics), so a single scrape shows
// request latencies next to crawl stage timings and query pruning.
//
// Label discipline: route labels are the registered mux patterns,
// status labels are collapsed to classes (2xx/4xx/...), crawl labels
// are stages and registry fingerprints — all bounded sets. Never label
// by file path, query text or any other request-controlled value; the
// cardinality guard test pins the families and label keys.
package serve

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"datamaran/internal/obsv"
	"datamaran/internal/query"
)

// serveMetrics bundles the registry and the pre-registered handles the
// serving path records into. Handles are created once (at New / at
// Handler build), so request hot paths never look up a metric.
type serveMetrics struct {
	reg      *obsv.Registry
	inFlight *obsv.Gauge
	shed     *obsv.Counter

	// query-engine counters, recorded per served /v1/query
	queries       *obsv.Counter
	rowsScanned   *obsv.Counter
	blocksDecoded *obsv.Counter
	blocksPruned  *obsv.Counter

	// reindex counters; the histogram is labeled by scope kind
	// ("all" or "format"), never by fingerprint
	reindexes     *obsv.Counter
	reindexGlobal *obsv.Histogram
	reindexScoped *obsv.Histogram
}

// newServeMetrics pre-registers the serving-path families on reg (a
// fresh private registry when nil), so /metrics reports them — at
// zero — before the first query or crawl.
func newServeMetrics(reg *obsv.Registry) *serveMetrics {
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	return &serveMetrics{
		reg:           reg,
		inFlight:      reg.Gauge("datamaran_http_in_flight"),
		shed:          reg.Counter("datamaran_http_shed_total"),
		queries:       reg.Counter("datamaran_queries_total"),
		rowsScanned:   reg.Counter("datamaran_query_rows_scanned_total"),
		blocksDecoded: reg.Counter("datamaran_query_blocks_decoded_total"),
		blocksPruned:  reg.Counter("datamaran_query_blocks_pruned_total"),
		reindexes:     reg.Counter("datamaran_reindex_total"),
		reindexGlobal: reg.Histogram("datamaran_reindex_seconds", obsv.DefBuckets, "scope", "all"),
		reindexScoped: reg.Histogram("datamaran_reindex_seconds", obsv.DefBuckets, "scope", "format"),
	}
}

// recordQuery folds one finished query's scan-side stats into the
// registry (called on every served query — the counters are plain
// per-scan ints, so always-on costs nothing).
func (m *serveMetrics) recordQuery(st query.ExecStats) {
	m.queries.Inc()
	m.rowsScanned.Add(uint64(st.RowsScanned))
	m.blocksDecoded.Add(uint64(st.BlocksDecoded))
	m.blocksPruned.Add(uint64(st.BlocksPruned))
}

// statusRecorder captures the response status for the middleware while
// staying flushable (the query and extract handlers stream) and
// unwrappable (the limiter's ResponseController needs the underlying
// connection for its deadlines).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the real connection.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps one route's handler with request counting, an
// in-flight gauge, a latency histogram and structured access logging.
// The route label is the registered pattern (bounded cardinality —
// never the raw URL). Recording runs in a defer, so a streaming abort
// (panic(http.ErrAbortHandler)) still counts before unwinding.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.obs.reg.Histogram("datamaran_http_request_seconds", obsv.DefBuckets, "route", route)
	// Pre-register the classes this server can emit, so scrapes show
	// zeroes rather than absent families.
	classes := map[int]*obsv.Counter{}
	for _, c := range []int{2, 4, 5} {
		classes[c] = s.obs.reg.Counter("datamaran_http_requests_total",
			"route", route, "class", fmt.Sprintf("%dxx", c))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.obs.inFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			s.obs.inFlight.Add(-1)
			d := time.Since(t0)
			hist.Observe(d.Seconds())
			status := rec.status
			if status == 0 {
				// Nothing written: a streaming abort cut the connection.
				status = http.StatusInternalServerError
			}
			ctr, ok := classes[status/100]
			if !ok {
				ctr = s.obs.reg.Counter("datamaran_http_requests_total",
					"route", route, "class", fmt.Sprintf("%dxx", status/100))
			}
			ctr.Inc()
			if s.logger != nil {
				s.logger.Info("request",
					"method", r.Method,
					"path", r.URL.Path,
					"route", route,
					"status", status,
					"duration", d.Round(time.Microsecond).String(),
					"remote", r.RemoteAddr)
			}
		}()
		h(rec, r)
	}
}

// handleMetrics serves the registry in the Prometheus text format.
// Exempt from the request limits, like /healthz and /v1/status.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obsv.ContentType)
	s.obs.reg.WritePrometheus(w)
}

// buildInfo reports the binary's module version and VCS revision from
// the embedded build metadata, computed once.
var buildInfo = sync.OnceValues(func() (version, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	version = bi.Main.Version
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return version, revision
})
