package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datamaran"
	"datamaran/internal/lake"
	"datamaran/internal/lake/laketest"
	"datamaran/internal/query"
)

// buildLake writes a small two-format lake plus noise.
func buildLake(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for f := 1; f <= 2; f++ {
		write(fmt.Sprintf("metrics/m-%d.log", f), laketest.MetricsLog(int64(f), 150))
	}
	for f := 1; f <= 2; f++ {
		write(fmt.Sprintf("web/r-%d.log", f),
			laketest.RequestsLog(int64(10+f), 150, []string{"GET", "PUT"}, 9999, []int{200, 404}))
	}
	write("znotes.txt", laketest.Prose("metrics",
		"metrics/ holds the gauge dumps, one reading per line",
		"web/ is the edge tier; latency units are milliseconds"))
	return root
}

// newServer builds a Server over a fresh lake and runs the initial
// reindex through the HTTP surface.
func newServer(t *testing.T) (*Server, string) {
	t.Helper()
	root := buildLake(t)
	state := t.TempDir()
	s, err := New(Config{
		Root:           root,
		RegistryPath:   filepath.Join(state, "registry.json"),
		CheckpointPath: filepath.Join(state, "checkpoints.json"),
		StorePath:      filepath.Join(state, "store"),
		Workers:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, "POST", "/reindex", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("initial reindex: %d %s", rec.Code, rec.Body)
	}
	return s, root
}

// do runs one request through the handler.
func do(t *testing.T, s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// formats fetches and parses /formats.
func formats(t *testing.T, s *Server) []formatJSON {
	t.Helper()
	rec := do(t, s, "GET", "/formats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/formats: %d %s", rec.Code, rec.Body)
	}
	var out struct {
		Formats []formatJSON `json:"formats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out.Formats
}

// TestReindexAndFormats drives the daemon lifecycle: crawl, list,
// no-op recrawl (all unchanged), state persisted to disk.
func TestReindexAndFormats(t *testing.T) {
	s, _ := newServer(t)
	fs := formats(t, s)
	if len(fs) != 2 {
		t.Fatalf("formats = %d, want 2", len(fs))
	}
	for _, f := range fs {
		if f.Files != 2 || len(f.Templates) == 0 || len(f.Fingerprint) != 16 {
			t.Fatalf("bad format entry: %+v", f)
		}
	}

	rec := do(t, s, "POST", "/reindex", nil)
	var sum reindexJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Files != 5 || sum.Unchanged != 5 || sum.Resumed != 0 || sum.Failed != 0 {
		t.Fatalf("no-op reindex summary: %+v", sum)
	}

	// Both stores must exist on disk after a reindex.
	for _, p := range []string{s.cfg.RegistryPath, s.cfg.CheckpointPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("state not persisted: %v", err)
		}
	}
}

// TestServedExtractionMatchesPublicAPI is the served-vs-CLI oracle: the
// profile fetched from /formats/{fp} must load as a datamaran.Profile,
// and the served CSV and NDJSON of a lake file must agree byte-for-byte
// (CSV) and record-for-record (NDJSON) with the public API applying
// that same profile.
func TestServedExtractionMatchesPublicAPI(t *testing.T) {
	s, root := newServer(t)
	var metricsFP string
	for _, f := range formats(t, s) {
		if strings.Contains(f.Templates[0], "|") {
			metricsFP = f.Fingerprint
		}
	}
	if metricsFP == "" {
		t.Fatal("metrics format not registered")
	}

	rec := do(t, s, "GET", "/formats/"+metricsFP, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/formats/{fp}: %d %s", rec.Code, rec.Body)
	}
	var p datamaran.Profile
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("served profile does not load as datamaran.Profile: %v", err)
	}
	if p.Fingerprint() != metricsFP {
		t.Fatalf("served profile fingerprint %s, want %s", p.Fingerprint(), metricsFP)
	}

	data, err := os.ReadFile(filepath.Join(root, "metrics/m-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := datamaran.ExtractWithProfile(data, &p)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.TablesWith(datamaran.TablesOptions{})[0].WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	// CSV via uploaded body and via lake path must both match the
	// public API bytes.
	for _, target := range []string{
		"/extract?format=" + metricsFP + "&output=csv&table=type0",
		"/lake/extract?path=metrics/m-1.log&output=csv&table=type0",
	} {
		method, body := "GET", []byte(nil)
		if strings.HasPrefix(target, "/extract") {
			method, body = "POST", data
		}
		rec := do(t, s, method, target, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", target, rec.Code, rec.Body)
		}
		if !bytes.Equal(rec.Body.Bytes(), wantCSV.Bytes()) {
			t.Fatalf("%s: served CSV differs from public API CSV", target)
		}
	}

	// NDJSON record stream must carry the same records.
	rec = do(t, s, "POST", "/extract?format="+metricsFP+"&output=ndjson", data)
	if rec.Code != http.StatusOK {
		t.Fatalf("ndjson: %d %s", rec.Code, rec.Body)
	}
	lines := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n")
	if len(lines) != len(want.Records) {
		t.Fatalf("ndjson records = %d, want %d", len(lines), len(want.Records))
	}
	for i, line := range lines {
		var rj recordJSON
		if err := json.Unmarshal([]byte(line), &rj); err != nil {
			t.Fatalf("ndjson line %d: %v", i, err)
		}
		w := want.Records[i]
		if rj.StartLine != w.StartLine || rj.EndLine != w.EndLine || len(rj.Fields) != len(w.Fields) {
			t.Fatalf("ndjson record %d = %+v, want %+v", i, rj, w)
		}
		for j, f := range rj.Fields {
			if f.Value != w.Fields[j].Value || f.Start != w.Fields[j].Start {
				t.Fatalf("ndjson record %d field %d = %+v, want %+v", i, j, f, w.Fields[j])
			}
		}
	}
}

// envelope asserts an error response carries the v1 JSON envelope and
// returns its code.
func envelope(t *testing.T, target string, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var ej struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ej); err != nil {
		t.Errorf("%s: error body is not the JSON envelope: %v (%s)", target, err, rec.Body)
		return ""
	}
	if ej.Error.Code == "" || ej.Error.Message == "" {
		t.Errorf("%s: incomplete error envelope: %s", target, rec.Body)
	}
	return ej.Error.Code
}

// TestLakeExtractGuards covers path traversal, hidden entries, missing
// files, unknown formats and malformed queries — on both the /v1 and
// the deprecated unversioned routes — and asserts every failure body is
// the JSON error envelope.
func TestLakeExtractGuards(t *testing.T) {
	s, _ := newServer(t)
	cases := map[string]int{
		"/lake/extract?path=../secret":                                      http.StatusBadRequest,
		"/lake/extract?path=/etc/passwd":                                    http.StatusBadRequest,
		"/lake/extract?path=.hidden/x.log":                                  http.StatusBadRequest,
		"/lake/extract?path=":                                               http.StatusBadRequest,
		"/lake/extract?path=metrics/nope.log":                               http.StatusNotFound,
		"/lake/extract?path=znotes.txt":                                     http.StatusUnprocessableEntity,
		"/extract?format=0123456789abcdef":                                  http.StatusNotFound,
		"/formats/ffffffffffffffff":                                         http.StatusNotFound,
		"/lake/extract?path=metrics/m-1.log&format=ffffffffffffffff":        http.StatusNotFound,
		"/v1/lake/extract?path=../secret":                                   http.StatusBadRequest,
		"/v1/formats/ffffffffffffffff":                                      http.StatusNotFound,
		"/v1/extract?format=0123456789abcdef":                               http.StatusNotFound,
		"/v1/query":                                                         http.StatusBadRequest,
		"/v1/query?q=not+a+query":                                           http.StatusBadRequest,
		"/v1/query?q=" + url.QueryEscape("SELECT * FROM nope"):              http.StatusBadRequest,
		"/v1/query?q=" + url.QueryEscape("SELECT * FROM t") + "&output=xml": http.StatusBadRequest,
	}
	codes := map[int]string{
		http.StatusBadRequest:          "bad_request",
		http.StatusNotFound:            "not_found",
		http.StatusUnprocessableEntity: "unclaimed",
	}
	for target, want := range cases {
		method := "GET"
		var body []byte
		if strings.HasPrefix(strings.TrimPrefix(target, "/v1"), "/extract") {
			method, body = "POST", []byte("x\n")
		}
		rec := do(t, s, method, target, body)
		if rec.Code != want {
			t.Errorf("%s: status %d, want %d", target, rec.Code, want)
			continue
		}
		if code := envelope(t, target, rec); code != codes[want] {
			t.Errorf("%s: error code %q, want %q", target, code, codes[want])
		}
	}
}

// TestV1Aliases: the unversioned routes are aliases — same handlers,
// byte-identical bodies.
func TestV1Aliases(t *testing.T) {
	s, _ := newServer(t)
	fp := formats(t, s)[0].Fingerprint
	for _, pair := range [][2]string{
		{"/formats", "/v1/formats"},
		{"/formats/" + fp, "/v1/formats/" + fp},
		{"/lake/extract?path=metrics/m-1.log", "/v1/lake/extract?path=metrics/m-1.log"},
	} {
		old := do(t, s, "GET", pair[0], nil)
		v1 := do(t, s, "GET", pair[1], nil)
		if old.Code != http.StatusOK || v1.Code != http.StatusOK {
			t.Fatalf("%v: status %d / %d", pair, old.Code, v1.Code)
		}
		if !bytes.Equal(old.Body.Bytes(), v1.Body.Bytes()) {
			t.Errorf("%v: alias bodies differ", pair)
		}
	}
}

// TestServedQueryMatchesEngine: /v1/query output (both forms) is
// byte-identical to the in-process engine reading the same store — the
// served surface adds transport, never bytes.
func TestServedQueryMatchesEngine(t *testing.T) {
	s, _ := newServer(t)
	var metricsFP string
	for _, f := range formats(t, s) {
		if strings.Contains(f.Templates[0], "|") {
			metricsFP = f.Fingerprint
		}
	}
	qtext := "SELECT f1, count(*) FROM " + metricsFP + " GROUP BY f1 ORDER BY count(*) DESC, f1 LIMIT 5"

	store, err := lake.OpenSegmentStore(s.cfg.StorePath)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*bytes.Buffer{"ndjson": {}, "csv": {}}
	for output, buf := range want {
		q, err := query.Parse(qtext)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := query.Run(context.Background(), query.StoreCatalog(store), q)
		if err != nil {
			t.Fatal(err)
		}
		if output == "csv" {
			err = query.WriteCSV(buf, rows, nil)
		} else {
			err = query.WriteNDJSON(buf, rows, nil)
		}
		rows.Close()
		if err != nil {
			t.Fatal(err)
		}
	}

	for output, buf := range want {
		rec := do(t, s, "GET", "/v1/query?q="+url.QueryEscape(qtext)+"&output="+output, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("/v1/query (%s): %d %s", output, rec.Code, rec.Body)
		}
		if buf.Len() == 0 {
			t.Fatalf("engine produced no %s output", output)
		}
		if !bytes.Equal(rec.Body.Bytes(), buf.Bytes()) {
			t.Errorf("served %s differs from engine:\nserved: %s\nengine: %s", output, rec.Body, buf)
		}
	}

	// A two-table self-join through the store exercises the join path
	// end to end over HTTP.
	joinQ := "SELECT count(*) FROM " + metricsFP + " AS a, " + metricsFP + " AS b WHERE a.f0 = b.f0 AND a.f1 = '7'"
	rec := do(t, s, "GET", "/v1/query?q="+url.QueryEscape(joinQ)+"&output=csv", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("join query: %d %s", rec.Code, rec.Body)
	}
	if !strings.HasPrefix(rec.Body.String(), "count(*)\n") {
		t.Errorf("join query output: %s", rec.Body)
	}
}

// TestQueryWithoutStore: a daemon with no record store reports cleanly.
func TestQueryWithoutStore(t *testing.T) {
	root := buildLake(t)
	s, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, "GET", "/v1/query?q=SELECT+*+FROM+x", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("query without store: %d %s", rec.Code, rec.Body)
	}
	envelope(t, "/v1/query (no store)", rec)
}

// TestReindexCancellation: a cancelled request context aborts the crawl
// and reports it, and the aborted crawl leaves the served state exactly
// as the last completed run left it (crawls mutate clones, not the
// shared handles).
func TestReindexCancellation(t *testing.T) {
	s, _ := newServer(t)
	before := do(t, s, "GET", "/formats", nil).Body.String()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/reindex", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("cancelled reindex: %d %s", rec.Code, rec.Body)
	}

	if after := do(t, s, "GET", "/formats", nil).Body.String(); after != before {
		t.Fatalf("aborted reindex mutated served state:\nbefore: %s\nafter: %s", before, after)
	}
	// A clean reindex afterwards must still report every file unchanged
	// — no orphaned claims, no lost checkpoints.
	var sum reindexJSON
	if err := json.Unmarshal(do(t, s, "POST", "/reindex", nil).Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Unchanged != sum.Files || sum.Failed != 0 {
		t.Fatalf("reindex after abort: %+v", sum)
	}
}

// TestEmptyBodyExtract reports cleanly instead of hanging or panicking.
func TestEmptyBodyExtract(t *testing.T) {
	s, _ := newServer(t)
	fp := formats(t, s)[0].Fingerprint
	if rec := do(t, s, "POST", "/extract?format="+fp, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body: %d %s", rec.Code, rec.Body)
	}
}

// TestReindexSeesGrowth: append to a lake file, reindex through the
// daemon, and the response reports one resumed file; the lake extract
// of that file then reflects the appended records.
func TestReindexSeesGrowth(t *testing.T) {
	s, root := newServer(t)
	path := filepath.Join(root, "metrics/m-1.log")
	before := do(t, s, "GET", "/lake/extract?path=metrics/m-1.log", nil)
	nBefore := strings.Count(before.Body.String(), "\n")

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "metric|cpu9|99.99|\nmetric|cpu8|11.11|\n")
	f.Close()

	rec := do(t, s, "POST", "/reindex", nil)
	var sum reindexJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != 1 || sum.Unchanged != sum.Files-1 {
		t.Fatalf("growth reindex summary: %+v", sum)
	}

	after := do(t, s, "GET", "/lake/extract?path=metrics/m-1.log", nil)
	if nAfter := strings.Count(after.Body.String(), "\n"); nAfter != nBefore+2 {
		t.Fatalf("records after growth = %d, want %d", nAfter, nBefore+2)
	}
}
