package serve

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"datamaran/internal/obsv"
)

// limiter enforces the daemon's per-request limits: a bounded
// in-flight gauge (saturation sheds load with 429 + Retry-After
// instead of queueing), a body size cap, and a per-request deadline
// that also unblocks stalled reads and writes on the connection.
// Liveness and status probes bypass the gauge so a saturated daemon
// stays observable.
type limiter struct {
	maxInFlight int64
	maxBody     int64
	timeout     time.Duration
	inFlight    atomic.Int64
	shed        atomic.Uint64 // requests rejected with 429
	// shedCtr mirrors shed into the metrics registry (nil when the
	// limiter is built bare, outside New).
	shedCtr *obsv.Counter
}

// writeGrace is how far the connection write deadline trails the
// request deadline (see wrap).
const writeGrace = 2 * time.Second

// exemptPaths lists the endpoints the in-flight gauge ignores, so a
// saturated daemon stays observable: liveness, status and the metrics
// scrape.
func exempt(path string) bool {
	return path == "/healthz" || path == "/v1/status" || path == "/metrics"
}

// wrap applies the limits around the daemon's mux.
func (l *limiter) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if l.maxInFlight > 0 {
			if n := l.inFlight.Add(1); n > l.maxInFlight {
				l.inFlight.Add(-1)
				l.shed.Add(1)
				if l.shedCtr != nil {
					l.shedCtr.Inc()
				}
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests,
					"server saturated (%d requests in flight); retry shortly", l.maxInFlight)
				return
			}
			defer l.inFlight.Add(-1)
		}
		if l.maxBody > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, l.maxBody)
		}
		if l.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), l.timeout)
			defer cancel()
			r = r.WithContext(ctx)
			// Also bound the connection itself: a client that stalls its
			// upload (or stops reading a streamed response) would otherwise
			// block the handler past the context deadline, holding an
			// in-flight slot forever. Not every ResponseWriter supports
			// deadlines (httptest recorders don't); the context still
			// bounds the compute in that case.
			rc := http.NewResponseController(w)
			deadline := time.Now().Add(l.timeout)
			rc.SetReadDeadline(deadline)
			// The write deadline trails by a grace so the 504 envelope
			// itself can still flush to a live client after the read or
			// compute deadline fires; a client that stops reading its
			// response is unblocked at most one grace later.
			rc.SetWriteDeadline(deadline.Add(writeGrace))
		}
		next.ServeHTTP(w, r)
	})
}
