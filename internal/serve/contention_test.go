package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"datamaran/internal/template"
)

// newServerCfg builds a Server over a fresh lake with extra Config
// knobs applied, and runs the initial reindex.
func newServerCfg(t *testing.T, mod func(*Config)) (*Server, string) {
	t.Helper()
	root := buildLake(t)
	state := t.TempDir()
	cfg := Config{
		Root:           root,
		RegistryPath:   filepath.Join(state, "registry.json"),
		CheckpointPath: filepath.Join(state, "checkpoints.json"),
		StorePath:      filepath.Join(state, "store"),
		Workers:        2,
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The initial crawl runs directly, not over HTTP: a test config may
	// set a request deadline or body cap far too tight for a full crawl.
	if _, err := s.Reindex(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	return s, root
}

// fingerprints returns the metrics and web fingerprints of the test
// lake's two formats.
func fingerprints(t *testing.T, s *Server) (metricsFP, webFP string) {
	t.Helper()
	for _, f := range formats(t, s) {
		if strings.Contains(f.Templates[0], "|") {
			metricsFP = f.Fingerprint
		} else {
			webFP = f.Fingerprint
		}
	}
	if metricsFP == "" || webFP == "" {
		t.Fatalf("test lake formats not registered (metrics=%q web=%q)", metricsFP, webFP)
	}
	return metricsFP, webFP
}

// appendLake appends content to one lake file.
func appendLake(t *testing.T, root, rel, content string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(root, filepath.FromSlash(rel)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, content); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestFormatLocks pins the lock table's semantics: scoped locks of
// different formats coexist, same-format and global locks conflict,
// and nothing ever blocks.
func TestFormatLocks(t *testing.T) {
	var l formatLocks
	if !l.tryLock("a") {
		t.Fatal("fresh table refused a scoped lock")
	}
	if !l.tryLock("b") {
		t.Fatal("different formats must lock concurrently")
	}
	if l.tryLock("a") {
		t.Fatal("same format double-locked")
	}
	if l.tryLock("") {
		t.Fatal("global lock granted over held scoped locks")
	}
	if n := l.active(); n != 2 {
		t.Fatalf("active = %d, want 2", n)
	}
	l.unlock("a")
	l.unlock("b")
	if !l.tryLock("") {
		t.Fatal("global lock refused on an empty table")
	}
	if l.tryLock("c") {
		t.Fatal("scoped lock granted under a global lock")
	}
	if l.tryLock("") {
		t.Fatal("global lock double-locked")
	}
	if n := l.active(); n != 1 {
		t.Fatalf("active under global = %d, want 1", n)
	}
	l.unlock("")
	if n := l.active(); n != 0 {
		t.Fatalf("active after unlock = %d, want 0", n)
	}
}

// TestProfileCacheLRU pins the cache's eviction and keying: capacity
// bounds residency with least-recently-used eviction, generations are
// distinct keys, and a disabled cache (capacity < 0) is nil-safe.
func TestProfileCacheLRU(t *testing.T) {
	tpl := []*template.Node{}
	c := newProfileCache(2)
	k1 := profileKey{fp: "a", gen: 1}
	k2 := profileKey{fp: "b", gen: 1}
	k3 := profileKey{fp: "a", gen: 2} // same format, later generation
	c.put(k1, compileMatchers(tpl))
	c.put(k2, compileMatchers(tpl))
	if c.get(k1) == nil {
		t.Fatal("k1 evicted before capacity reached")
	}
	c.put(k3, compileMatchers(tpl)) // evicts k2 (k1 was just touched)
	if c.get(k2) != nil {
		t.Fatal("LRU eviction kept the least-recently-used entry")
	}
	if c.get(k1) == nil || c.get(k3) == nil {
		t.Fatal("eviction dropped a live entry")
	}
	size, hits, misses := c.stats()
	if size != 2 || hits != 3 || misses != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 3, 1)", size, hits, misses)
	}

	var disabled *profileCache = newProfileCache(-1)
	if disabled != nil {
		t.Fatal("capacity < 0 must disable the cache")
	}
	disabled.put(k1, nil) // nil-safe
	if disabled.get(k1) != nil {
		t.Fatal("disabled cache returned an entry")
	}
	if s, h, m := disabled.stats(); s != 0 || h != 0 || m != 0 {
		t.Fatal("disabled cache reported non-zero stats")
	}
}

// statusOf fetches and parses /v1/status.
func statusOf(t *testing.T, s *Server) statusJSON {
	t.Helper()
	rec := do(t, s, "GET", "/v1/status", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/status: %d %s", rec.Code, rec.Body)
	}
	var sj statusJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &sj); err != nil {
		t.Fatal(err)
	}
	return sj
}

// TestProfileCacheServesExtracts drives the cache through the HTTP
// surface: the first extraction of a format compiles (miss), repeats
// hit, both extract routes share the entry, and a reindex swap bumps
// the generation so the old entry stops being requested.
func TestProfileCacheServesExtracts(t *testing.T) {
	s, root := newServer(t)
	fp, _ := fingerprints(t, s)
	data, err := os.ReadFile(filepath.Join(root, "metrics/m-1.log"))
	if err != nil {
		t.Fatal(err)
	}

	base := statusOf(t, s)
	if base.CacheHits != 0 || base.CacheMisses != 0 {
		t.Fatalf("fresh cache stats: %+v", base)
	}
	if base.Generation != 2 {
		t.Fatalf("generation after initial reindex = %d, want 2", base.Generation)
	}

	if rec := do(t, s, "POST", "/extract?format="+fp, data); rec.Code != http.StatusOK {
		t.Fatalf("extract: %d %s", rec.Code, rec.Body)
	}
	if st := statusOf(t, s); st.CacheMisses != 1 || st.CacheHits != 0 || st.CacheSize != 1 {
		t.Fatalf("after first extract: %+v", st)
	}
	// Second body extract and the lake route both hit the same entry.
	do(t, s, "POST", "/extract?format="+fp, data)
	do(t, s, "GET", "/lake/extract?path=metrics/m-1.log", nil)
	if st := statusOf(t, s); st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("after repeats: %+v", st)
	}

	// A reindex publishes a new generation; the same format recompiles
	// once under the new key.
	if rec := do(t, s, "POST", "/reindex", nil); rec.Code != http.StatusOK {
		t.Fatalf("reindex: %d %s", rec.Code, rec.Body)
	}
	do(t, s, "POST", "/extract?format="+fp, data)
	if st := statusOf(t, s); st.Generation != 3 || st.CacheMisses != 2 {
		t.Fatalf("after reindex swap: %+v", st)
	}
}

// TestScopedReindexHTTP drives the per-format reindex over HTTP: an
// unknown fingerprint is 404; a conflicting crawl (same format, or a
// global crawl against a held scope) is 409 busy; a different format
// proceeds while another's lock is held; and a scoped run reports only
// its scope's files, tagged with the format.
func TestScopedReindexHTTP(t *testing.T) {
	s, root := newServer(t)
	metricsFP, webFP := fingerprints(t, s)

	rec := do(t, s, "POST", "/reindex?format=ffffffffffffffff", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown format reindex: %d %s", rec.Code, rec.Body)
	}
	if code := envelope(t, "reindex unknown", rec); code != "not_found" {
		t.Fatalf("unknown format error code %q", code)
	}

	// Hold the metrics lock as a concurrent crawl would.
	if !s.locks.tryLock(metricsFP) {
		t.Fatal("could not take the metrics lock")
	}
	if rec := do(t, s, "POST", "/reindex?format="+metricsFP, nil); rec.Code != http.StatusConflict {
		t.Fatalf("same-format reindex under lock: %d %s", rec.Code, rec.Body)
	} else if code := envelope(t, "reindex conflict", rec); code != "busy" {
		t.Fatalf("conflict error code %q", code)
	}
	if rec := do(t, s, "POST", "/reindex", nil); rec.Code != http.StatusConflict {
		t.Fatalf("global reindex under scoped lock: %d %s", rec.Code, rec.Body)
	}
	// A different format is unaffected by the held lock.
	if rec := do(t, s, "POST", "/reindex?format="+webFP, nil); rec.Code != http.StatusOK {
		t.Fatalf("other-format reindex under lock: %d %s", rec.Code, rec.Body)
	}
	s.locks.unlock(metricsFP)

	// A scoped run crawls exactly the format's claim set and reports it.
	appendLake(t, root, "metrics/m-1.log", "metric|cpu9|99.99|\n")
	appendLake(t, root, "web/r-1.log", "GET /api/v9/item/1 200\n")
	rec = do(t, s, "POST", "/reindex?format="+metricsFP, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("scoped reindex: %d %s", rec.Code, rec.Body)
	}
	var sum reindexJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Format != metricsFP || sum.Files != 2 || sum.Resumed != 1 || sum.Unchanged != 1 {
		t.Fatalf("scoped reindex summary: %+v", sum)
	}

	// The out-of-scope web append is invisible until its own crawl runs.
	qWeb := "/v1/query?q=" + url.QueryEscape("SELECT count(*) FROM "+webFP) + "&output=csv"
	before := do(t, s, "GET", qWeb, nil).Body.String()
	rec = do(t, s, "POST", "/reindex?format="+webFP, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("web reindex: %d %s", rec.Code, rec.Body)
	}
	after := do(t, s, "GET", qWeb, nil).Body.String()
	if before == after {
		t.Fatalf("web crawl did not pick up the appended record: %q", after)
	}
}

// TestReindexContention is the serving-path torn-read check: while a
// per-format reindex crawls and commits, concurrent /v1/query,
// /formats and /lake/extract requests must each see a consistent
// snapshot — byte-identical to the state before or after the swap,
// never a mix. The self-join query is the sharpest probe: a torn pair
// of scans would produce a count that matches neither side.
func TestReindexContention(t *testing.T) {
	s, root := newServer(t)
	metricsFP, _ := fingerprints(t, s)

	groupQ := "/v1/query?q=" + url.QueryEscape(
		"SELECT f1, count(*) FROM "+metricsFP+" GROUP BY f1 ORDER BY count(*) DESC, f1") + "&output=csv"
	joinQ := "/v1/query?q=" + url.QueryEscape(
		"SELECT count(*) FROM "+metricsFP+" AS a, "+metricsFP+" AS b WHERE a.f1 = b.f1 AND a.f2 = '42.00'") + "&output=csv"
	targets := []string{groupQ, joinQ, "/formats", "/lake/extract?path=web/r-1.log&output=csv"}

	before := make([]string, len(targets))
	for i, target := range targets {
		rec := do(t, s, "GET", target, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s before: %d %s", target, rec.Code, rec.Body)
		}
		before[i] = rec.Body.String()
	}

	// Grow the scoped format so the reindex has real deltas to commit.
	appendLake(t, root, "metrics/m-1.log", "metric|cpu6|42.00|\nmetric|cpu7|43.00|\n")
	appendLake(t, root, "metrics/m-2.log", "metric|cpu6|44.00|\nmetric|cpu7|45.00|\n")

	type sample struct {
		target int
		code   int
		body   string
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
		done    = make(chan struct{})
	)
	for i := range targets {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					rec := do(t, s, "GET", targets[i], nil)
					mu.Lock()
					samples = append(samples, sample{target: i, code: rec.Code, body: rec.Body.String()})
					mu.Unlock()
				}
			}(i)
		}
	}

	rec := do(t, s, "POST", "/reindex?format="+metricsFP, nil)
	close(done)
	wg.Wait()
	if rec.Code != http.StatusOK {
		t.Fatalf("scoped reindex under load: %d %s", rec.Code, rec.Body)
	}

	after := make([]string, len(targets))
	for i, target := range targets {
		rec := do(t, s, "GET", target, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s after: %d %s", target, rec.Code, rec.Body)
		}
		after[i] = rec.Body.String()
	}
	// The query and registry probes must be able to tell the states
	// apart, or the torn check below proves nothing. (The /formats body
	// changes because claim counters accumulate across crawls.)
	for _, i := range []int{0, 1, 2} {
		if before[i] == after[i] {
			t.Fatalf("%s cannot distinguish the snapshots", targets[i])
		}
	}
	// The out-of-scope extract is invariant across this swap: neither
	// the web file nor its profile changed.
	if before[3] != after[3] {
		t.Fatalf("%s changed across a scoped metrics reindex", targets[3])
	}

	if len(samples) == 0 {
		t.Fatal("no concurrent samples collected")
	}
	for _, sm := range samples {
		if sm.code != http.StatusOK {
			t.Fatalf("%s during reindex: status %d (%s)", targets[sm.target], sm.code, sm.body)
		}
		if sm.body != before[sm.target] && sm.body != after[sm.target] {
			t.Fatalf("%s during reindex returned a torn snapshot:\ngot: %s\nbefore: %s\nafter: %s",
				targets[sm.target], sm.body, before[sm.target], after[sm.target])
		}
	}
}

// TestInFlightBound: with MaxInFlight=1, a second request arriving
// while one is served is shed with 429 + Retry-After — but the
// liveness and status probes stay exempt, so a saturated daemon is
// still observable. Draining the held request frees the slot.
func TestInFlightBound(t *testing.T) {
	s, _ := newServerCfg(t, func(c *Config) { c.MaxInFlight = 1 })
	fp, _ := fingerprints(t, s)

	// Park one request in a handler: an /extract whose body never
	// arrives until we say so.
	pr, pw := io.Pipe()
	held := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest("POST", "/extract?format="+fp, pr)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		held <- rec
	}()
	for deadline := time.Now().Add(5 * time.Second); s.limits.inFlight.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("held request never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}

	rec := do(t, s, "GET", "/formats", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request under saturation: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	if code := envelope(t, "saturated", rec); code != "saturated" {
		t.Fatalf("saturation error code %q", code)
	}
	if rec := do(t, s, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/healthz under saturation: %d", rec.Code)
	}
	st := statusOf(t, s) // also proves /v1/status is exempt
	if st.InFlight != 1 || st.Shed == 0 {
		t.Fatalf("status under saturation: %+v", st)
	}

	io.WriteString(pw, "metric|cpu1|1.00|\n")
	pw.Close()
	if rec := <-held; rec.Code != http.StatusOK {
		t.Fatalf("held extract: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "GET", "/formats", nil); rec.Code != http.StatusOK {
		t.Fatalf("request after drain: %d %s", rec.Code, rec.Body)
	}
}

// TestBodyCap: a POST /extract body over MaxBodyBytes fails with 413
// and the too_large envelope instead of consuming unbounded memory.
func TestBodyCap(t *testing.T) {
	s, _ := newServerCfg(t, func(c *Config) { c.MaxBodyBytes = 1 << 10 })
	fp, _ := fingerprints(t, s)
	big := bytes.Repeat([]byte("metric|cpu1|1.00|\n"), 1024) // 18 KiB
	rec := do(t, s, "POST", "/extract?format="+fp, big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s", rec.Code, rec.Body)
	}
	if code := envelope(t, "too large", rec); code != "too_large" {
		t.Fatalf("oversize error code %q", code)
	}
	// A body under the cap still extracts.
	small := bytes.Repeat([]byte("metric|cpu1|1.00|\n"), 8)
	if rec := do(t, s, "POST", "/extract?format="+fp, small); rec.Code != http.StatusOK {
		t.Fatalf("small body: %d %s", rec.Code, rec.Body)
	}
}

// slowReader delivers its payload only after a delay — a client whose
// upload stalls past the request deadline.
type slowReader struct {
	delay time.Duration
	data  []byte
	read  bool
}

func (r *slowReader) Read(p []byte) (int, error) {
	if r.read {
		return 0, io.EOF
	}
	time.Sleep(r.delay)
	r.read = true
	return copy(p, r.data), nil
}

// TestRequestDeadline: a request running past RequestTimeout fails
// with 504 deadline_exceeded.
func TestRequestDeadline(t *testing.T) {
	s, _ := newServerCfg(t, func(c *Config) { c.RequestTimeout = 30 * time.Millisecond })
	fp, _ := fingerprints(t, s)
	req := httptest.NewRequest("POST", "/extract?format="+fp,
		&slowReader{delay: 150 * time.Millisecond, data: []byte("metric|cpu1|1.00|\n")})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("stalled request: %d %s", rec.Code, rec.Body)
	}
	if code := envelope(t, "deadline", rec); code != "deadline_exceeded" {
		t.Fatalf("deadline error code %q", code)
	}
	// A prompt request under the same deadline still succeeds.
	if rec := do(t, s, "POST", "/extract?format="+fp, []byte("metric|cpu1|1.00|\n")); rec.Code != http.StatusOK {
		t.Fatalf("prompt request: %d %s", rec.Code, rec.Body)
	}
}
