package serve

import (
	"bufio"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"datamaran/internal/obsv"
)

// metricsFingerprint finds the pipe-delimited metrics format's
// fingerprint (the table the query tests use).
func metricsFingerprint(t *testing.T, s *Server) string {
	t.Helper()
	for _, f := range formats(t, s) {
		if strings.Contains(f.Templates[0], "|") {
			return f.Fingerprint
		}
	}
	t.Fatal("metrics format not found")
	return ""
}

// TestMetricsEndpoint: after a reindex and a served query, /metrics
// exposes the request, query and crawl families in Prometheus text
// form, with non-zero values where work happened.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := newServer(t)
	fp := metricsFingerprint(t, s)
	rec := do(t, s, "GET", "/v1/query?q="+url.QueryEscape("SELECT f1 FROM "+fp+" LIMIT 3"), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}

	rec = do(t, s, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obsv.ContentType {
		t.Errorf("content type %q, want %q", ct, obsv.ContentType)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"datamaran_http_requests_total",
		"datamaran_http_in_flight",
		"datamaran_http_shed_total",
		"datamaran_http_request_seconds",
		"datamaran_queries_total",
		"datamaran_query_rows_scanned_total",
		"datamaran_query_blocks_decoded_total",
		"datamaran_query_blocks_pruned_total",
		"datamaran_reindex_total",
		"datamaran_reindex_seconds",
		"datamaran_crawl_stage_seconds",
		"datamaran_crawl_files_total",
		"datamaran_crawl_records_total",
		"datamaran_crawl_bytes_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	for _, nonZero := range []string{
		"datamaran_reindex_total 1",
		"datamaran_queries_total 1",
		`datamaran_crawl_files_total{status="discovered"}`,
	} {
		if !strings.Contains(body, nonZero) {
			t.Errorf("expected %q in /metrics:\n%s", nonZero, body)
		}
	}
	// The served query scanned real rows through real blocks.
	if strings.Contains(body, "datamaran_query_rows_scanned_total 0\n") {
		t.Error("query rows_scanned stayed zero after a served query")
	}
	if strings.Contains(body, "datamaran_query_blocks_decoded_total 0\n") {
		t.Error("query blocks_decoded stayed zero after a served query")
	}
}

// TestStatusObservabilityFields: /v1/status reports process age, build
// identity and the cumulative reindex count alongside the table stats.
func TestStatusObservabilityFields(t *testing.T) {
	s, _ := newServer(t)
	st := statusOf(t, s)
	if st.Reindexes != 1 {
		t.Errorf("reindexes = %d, want 1", st.Reindexes)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("uptimeSeconds = %v, want >= 0", st.UptimeSeconds)
	}
	if _, err := time.Parse(time.RFC3339, st.StartedAt); err != nil {
		t.Errorf("startedAt %q: %v", st.StartedAt, err)
	}
}

// TestQueryExplainParam: explain=plan renders the plan without timings,
// explain=analyze appends per-operator stats and a total line, and an
// unknown mode is a 400. Both explain forms flow through the normal
// output writers.
func TestQueryExplainParam(t *testing.T) {
	s, _ := newServer(t)
	fp := metricsFingerprint(t, s)
	q := url.QueryEscape("SELECT f1, f2 FROM " + fp + " WHERE f2 > 90 LIMIT 5")

	rec := do(t, s, "GET", "/v1/query?q="+q+"&output=csv&explain=plan", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain=plan: %d %s", rec.Code, rec.Body)
	}
	plan := rec.Body.String()
	if !strings.HasPrefix(plan, "plan\n") {
		t.Errorf("plan output missing header:\n%s", plan)
	}
	if !strings.Contains(plan, "scan table="+fp) {
		t.Errorf("plan missing scan node:\n%s", plan)
	}
	if strings.Contains(plan, "time=") || strings.Contains(plan, "rows=") {
		t.Errorf("plan-only explain leaked timings:\n%s", plan)
	}
	// Deterministic: a second explain renders byte-identically.
	rec2 := do(t, s, "GET", "/v1/query?q="+q+"&output=csv&explain=plan", nil)
	if rec2.Body.String() != plan {
		t.Errorf("explain=plan not deterministic:\n%s\nvs:\n%s", plan, rec2.Body)
	}

	rec = do(t, s, "GET", "/v1/query?q="+q+"&output=csv&explain=analyze", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain=analyze: %d %s", rec.Code, rec.Body)
	}
	analyze := rec.Body.String()
	for _, want := range []string{"rows=", "time=", "blocks=", "pruned=", "total: rows="} {
		if !strings.Contains(analyze, want) {
			t.Errorf("explain=analyze missing %q:\n%s", want, analyze)
		}
	}

	rec = do(t, s, "GET", "/v1/query?q="+q+"&explain=bogus", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("explain=bogus: %d, want 400", rec.Code)
	}
	envelope(t, "/v1/query (bad explain)", rec)
}

// TestMetricsCardinalityGuard pins the full metric surface: after
// exercising every route plus a reindex and queries in all modes, the
// scrape must contain only the known families and known label keys.
// A new family or label key is a deliberate, reviewed change — extend
// the allowlists here when adding one. Request-controlled values
// (paths, query text) must never become labels.
func TestMetricsCardinalityGuard(t *testing.T) {
	s, _ := newServer(t)
	fp := metricsFingerprint(t, s)
	q := url.QueryEscape("SELECT f1 FROM " + fp + " LIMIT 2")
	for _, target := range []string{
		"/healthz",
		"/v1/status",
		"/v1/formats",
		"/v1/formats/" + fp,
		"/v1/query?q=" + q,
		"/v1/query?q=" + q + "&explain=plan",
		"/v1/query?q=" + q + "&explain=analyze",
		"/v1/query?q=bogus", // a 4xx class
		"/metrics",
	} {
		do(t, s, "GET", target, nil)
	}
	do(t, s, "POST", "/v1/reindex?format="+fp, nil)

	families := map[string]bool{
		"datamaran_http_requests_total":        true,
		"datamaran_http_in_flight":             true,
		"datamaran_http_shed_total":            true,
		"datamaran_http_request_seconds":       true,
		"datamaran_queries_total":              true,
		"datamaran_query_rows_scanned_total":   true,
		"datamaran_query_blocks_decoded_total": true,
		"datamaran_query_blocks_pruned_total":  true,
		"datamaran_reindex_total":              true,
		"datamaran_reindex_seconds":            true,
		"datamaran_crawl_stage_seconds":        true,
		"datamaran_crawl_files_total":          true,
		"datamaran_crawl_records_total":        true,
		"datamaran_crawl_bytes_total":          true,
	}
	labelKeys := map[string]bool{
		"route": true, "class": true, "le": true, "scope": true,
		"stage": true, "status": true, "format": true,
	}

	rec := do(t, s, "GET", "/metrics", nil)
	labelPair := regexp.MustCompile(`(?:^|,)([a-zA-Z_]+)="`)
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	for sc.Scan() {
		text := sc.Text()
		if strings.HasPrefix(text, "#") || text == "" {
			continue
		}
		// <name>[{labels}] <value> — label values may contain anything
		// but an unescaped quote, so split on the braces positionally.
		name, labels := text, ""
		if i := strings.IndexByte(text, '{'); i >= 0 {
			j := strings.LastIndexByte(text, '}')
			if j < i {
				t.Errorf("unparseable metrics line: %s", text)
				continue
			}
			name, labels = text[:i], text[i+1:j]
		} else if i := strings.IndexByte(text, ' '); i >= 0 {
			name = text[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && families[trimmed] {
				family = trimmed
			}
		}
		if !families[family] {
			t.Errorf("unknown metric family %q (line %q) — extend the guard if intentional", family, text)
		}
		for _, lm := range labelPair.FindAllStringSubmatch(labels, -1) {
			if !labelKeys[lm[1]] {
				t.Errorf("unknown label key %q in line %q — extend the guard if intentional", lm[1], text)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}
