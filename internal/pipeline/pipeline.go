// Package pipeline implements the streaming, sharded extraction engine —
// the production-scale form of the paper's observation that the
// extraction pass "is eminently parallelizable" (§1, §5.2.2). Input
// arrives as line-aligned shards from a textio.ChunkReader; structure
// discovery runs once on a bounded prefix reservoir; and extraction flows
// through one stage per discovered template, each stage fanning per-line
// template matching out over a worker pool and reproducing the in-memory
// greedy scan with a cheap sequential merge.
//
// Equivalence. Per-line matching is context-free, so a stage's sharded
// scan finalizes exactly the decisions the sequential scan would make:
// matches are deferred (not failed) when an attempt runs off the end of
// the resident window, and resume when the next shard arrives. Noise
// lines cascade into the next stage's window carrying their original
// line/byte coordinates, which reproduces core.Extract's residue
// construction. The result is byte-identical to core.Extract whenever the
// discovery prefix holds the whole input (inputs up to DiscoveryBudget);
// for larger inputs the only divergence is that templates are learned
// from the prefix rather than from stratified whole-file samples.
//
// Memory. Each stage retains at most about two shards of residue (plus
// any single record still being completed across a shard boundary), so
// the input streams through in bounded space. The outputs accumulate in
// the Result unless streamed away: use OnRecord for records and OnNoise
// for noise line indices to keep the whole run bounded.
package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"datamaran/internal/core"
	"datamaran/internal/parser"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// DefaultShardSize is the per-stage batch granularity of the engine.
const DefaultShardSize = 1 << 20

// DefaultDiscoveryBudget bounds the prefix buffered for template
// discovery. Inputs no larger than this extract identically to the
// in-memory core.Extract.
const DefaultDiscoveryBudget = 8 << 20

// Config parameterizes a streaming run.
type Config struct {
	// Core holds the discovery/extraction options, forwarded to the
	// template search on the discovery prefix.
	Core core.Options
	// ShardSize is the target shard size in bytes (default 1 MiB).
	ShardSize int
	// Workers is the matching/materialization parallelism per batch.
	// 0 means GOMAXPROCS, 1 is sequential.
	Workers int
	// DiscoveryBudget caps the bytes buffered for structure discovery
	// (default 8 MiB).
	DiscoveryBudget int
	// OnRecord, when non-nil, receives every record as its shard is
	// finalized instead of the record being accumulated into
	// Result.Records — the bounded-memory mode. Records of one type
	// arrive in input order; types interleave at shard granularity.
	// A non-nil error aborts the run.
	OnRecord func(core.RecordOut) error
	// OnNoise, when non-nil, receives each final noise line's original
	// index as it is decided instead of the index being accumulated
	// into Result.NoiseLines — without it, streaming memory grows with
	// the noise count even in OnRecord mode. A non-nil error aborts
	// the run.
	OnNoise func(origLine int) error
	// Templates, when non-empty, skips discovery entirely and applies
	// the given structure templates in order — the streaming form of
	// core.ApplyTemplates (the learn-once, apply-many data-lake
	// workflow). No prefix is buffered: the input streams through in
	// one pass from the first byte.
	Templates []*template.Node
	// Matchers, when non-empty, supplies precompiled matchers for
	// Templates (Matchers[i] compiled from Templates[i]) so a serving
	// hot path can reuse one compiled set across many runs instead of
	// recompiling per request. A parser.Matcher is safe for concurrent
	// use, so one set may back any number of simultaneous runs. Length
	// must equal len(Templates); only meaningful with Templates set.
	Matchers []*parser.Matcher
	// BaseLine and BaseByte shift every output coordinate (record
	// lines, field byte offsets, noise line indices) as if the stream
	// had been preceded by BaseLine lines spanning BaseByte bytes. This
	// is the resume-at-offset entry point of the incremental ingestion
	// layer (internal/follow): re-extracting only the grown suffix of a
	// file yields records in whole-file coordinates. The reader must
	// start at a line boundary. Only meaningful with Templates set
	// (discovery on a suffix would not see the file's structure).
	BaseLine int
	BaseByte int
	// Boundary, when non-nil, receives the stable checkpoint boundary:
	// the earliest original coordinate (line index and byte offset)
	// whose final classification could still change if the input grew
	// past its current end. Every record and noise line strictly below
	// the boundary is final: re-running extraction on [Boundary.Byte,
	// ∞) of a grown input reproduces, together with the already-final
	// prefix, exactly the one-shot extraction of the whole input. The
	// boundary always falls on a line start (or end of input) and never
	// splits a record of any stage.
	Boundary *Boundary
}

// Boundary is a stable resume point in original-stream coordinates (see
// Config.Boundary).
type Boundary struct {
	// Line is the original index of the first line whose outcome is not
	// yet stable (== the total line count when everything is stable).
	Line int
	// Byte is the original byte offset of that line's first byte (== the
	// total byte count when everything is stable).
	Byte int
}

func (c Config) withDefaults() Config {
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	if c.DiscoveryBudget <= 0 {
		c.DiscoveryBudget = DefaultDiscoveryBudget
	}
	if c.Workers == 0 {
		// Normalize the documented all-cores default so the discovery
		// pass (core.Options, where 0 means sequential) agrees with
		// the shard matchers.
		c.Workers = -1
	}
	return c
}

// lineMeta locates one resident line in the original stream.
type lineMeta struct {
	orig  int // original line index
	start int // original byte offset of the line's first byte
}

// stage applies one template to its residue stream. buf holds the
// resident window of still-undecided residue lines; meta maps each
// resident line back to original coordinates.
type stage struct {
	m        *parser.Matcher
	typeID   int
	buf      []byte
	meta     []lineMeta
	records  int
	coverage int
	recs     []core.RecordOut // collected when Config.OnRecord is nil
	// minRetry backs off re-processing while a record-in-progress spans
	// the whole window (a batch that finalized nothing): the window must
	// grow past it before matching is attempted again, keeping the
	// rework linear instead of quadratic.
	minRetry int
}

// engine drives the staged streaming scan.
type engine struct {
	cfg      Config
	stages   []*stage
	noise    []int
	nextLine int // original line counter of the input feed
	nextByte int // original byte counter of the input feed
}

// Run streams r through discovery and sharded extraction. With
// cfg.Templates set, discovery is skipped and the templates are applied
// directly (the streaming core.ApplyTemplates).
func Run(r io.Reader, cfg Config) (*core.Result, error) {
	return RunContext(context.Background(), r, cfg)
}

// RunContext is Run with cancellation: ctx is checked between shards and
// between per-stage batches, so a long crawl or a served extraction
// aborts within one shard of the cancel. The discovery pass on the
// bounded prefix is not interruptible mid-search.
func RunContext(ctx context.Context, r io.Reader, cfg Config) (*core.Result, error) {
	cfg = cfg.withDefaults()
	cr := textio.NewChunkReader(r, cfg.ShardSize)

	var structures []core.Structure
	var discTiming core.Timing
	var prefix []byte
	readErr := error(nil)
	if len(cfg.Templates) > 0 {
		if len(cfg.Matchers) > 0 && len(cfg.Matchers) != len(cfg.Templates) {
			return nil, fmt.Errorf("pipeline: %d precompiled matchers for %d templates", len(cfg.Matchers), len(cfg.Templates))
		}
		for i, tpl := range cfg.Templates {
			structures = append(structures, core.Structure{TypeID: i, Template: tpl})
		}
	} else {
		// Phase 1: buffer the discovery prefix (a reservoir of
		// leading shards, whole input when it fits the budget).
		for len(prefix) < cfg.DiscoveryBudget {
			chunk, err := cr.Next()
			prefix = append(prefix, chunk...)
			if err != nil {
				readErr = err
				break
			}
		}
		if readErr != nil && readErr != io.EOF {
			return nil, readErr
		}

		// Phase 2: template discovery on the prefix.
		discOpts := cfg.Core
		discOpts.Workers = cfg.Workers
		disc, err := core.Extract(prefix, discOpts)
		if err != nil {
			return nil, err
		}
		structures = disc.Structures
		discTiming = disc.Timing
	}

	// Phase 3: staged streaming extraction over prefix + remainder.
	e := &engine{cfg: cfg, nextLine: cfg.BaseLine, nextByte: cfg.BaseByte}
	for i, s := range structures {
		m := (*parser.Matcher)(nil)
		if i < len(cfg.Matchers) && len(cfg.Templates) > 0 {
			m = cfg.Matchers[i]
		}
		if m == nil {
			m = parser.NewMatcher(s.Template)
		}
		e.stages = append(e.stages, &stage{m: m, typeID: i})
	}

	t0 := time.Now()
	if len(prefix) > 0 {
		if err := e.feed(prefix); err != nil {
			return nil, err
		}
	}
	for readErr == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk, err := cr.Next()
		if err != nil {
			readErr = err
		}
		if len(chunk) > 0 {
			if err := e.feed(chunk); err != nil {
				return nil, err
			}
		}
	}
	if readErr != io.EOF {
		return nil, readErr
	}
	if e.nextLine == cfg.BaseLine {
		return nil, core.ErrEmptyInput
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Boundary != nil {
		// Checkpoint snapshot: drain every stage's decidable prefix
		// with non-final batches (in stage order, so cascaded residue
		// lands before the downstream stage runs), then read off the
		// earliest still-undecided coordinate. Everything the non-final
		// batches defer — truncated match attempts, matches flushing
		// against the window's end, the unterminated tail line — is
		// exactly what more input could change, so the minimum window
		// start over all stages is the stable resume point. The final
		// flush below still emits those deferred decisions, so the
		// result itself is unchanged by taking the snapshot.
		for t := range e.stages {
			if err := e.process(t, false); err != nil {
				return nil, err
			}
		}
		*cfg.Boundary = e.boundary()
	}
	// Final flush, in stage order so cascaded residue is complete.
	for t := range e.stages {
		if err := e.process(t, true); err != nil {
			return nil, err
		}
	}

	res := &core.Result{NoiseLines: e.noise, Timing: discTiming}
	res.Timing.Extraction = time.Since(t0)
	for i, s := range structures {
		st := e.stages[i]
		s.Records = st.records
		s.Coverage = st.coverage
		res.Structures = append(res.Structures, s)
		res.Records = append(res.Records, st.recs...)
	}
	return res, nil
}

// boundary returns the earliest original coordinate still held in any
// stage's residue window — the stable checkpoint boundary once every
// stage has drained its decidable prefix. With every window empty, the
// whole input is stable and the boundary is its end. A window's first
// line is always the earliest undecided line of its stage, and no
// finalized record of any stage spans across another stage's window
// start (cascade order delivers lines to each stage strictly in
// original order), so the minimum is a safe cut for all stages at once.
func (e *engine) boundary() Boundary {
	b := Boundary{Line: e.nextLine, Byte: e.nextByte}
	for _, st := range e.stages {
		if len(st.meta) > 0 && st.meta[0].orig < b.Line {
			b = Boundary{Line: st.meta[0].orig, Byte: st.meta[0].start}
		}
	}
	return b
}

// feed appends one line-aligned input block to stage 0 (or straight to
// noise when discovery found no structure) and lets ready stages run.
func (e *engine) feed(block []byte) error {
	if len(e.stages) == 0 {
		// No templates: every input line is noise.
		for off := 0; off < len(block); {
			if err := e.finalNoise(e.nextLine); err != nil {
				return err
			}
			e.nextLine++
			nl := lineLen(block[off:])
			e.nextByte += nl
			off += nl
		}
		return nil
	}
	s := e.stages[0]
	for off := 0; off < len(block); {
		nl := lineLen(block[off:])
		s.meta = append(s.meta, lineMeta{orig: e.nextLine, start: e.nextByte})
		e.nextLine++
		e.nextByte += nl
		off += nl
	}
	s.buf = append(s.buf, block...)
	for t := range e.stages {
		st := e.stages[t]
		if len(st.buf) >= e.cfg.ShardSize && len(st.buf) >= st.minRetry {
			if err := e.process(t, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// lineLen returns the length of the first line of b including its '\n'
// (or all of b when no '\n' remains — the unterminated final line).
func lineLen(b []byte) int {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return i + 1
	}
	return len(b)
}

// process runs one batch of stage t: parallel per-line candidates, the
// sequential greedy walk, parallel record materialization, then window
// compaction. final means no more input can arrive, so every decision is
// safe to finalize.
func (e *engine) process(t int, final bool) error {
	st := e.stages[t]
	ls := textio.NewLines(st.buf)
	n := ls.N()
	if n == 0 {
		return nil
	}
	cands := st.m.MatchCandidateEnds(ls, 0, n, e.cfg.Workers)

	// Greedy walk — identical decisions to the sequential Scan. Near
	// the window's end (when more input may arrive), decisions that
	// could change with more bytes are deferred to the next batch:
	// attempts that ran off the buffer, and matches that consumed the
	// buffer's unterminated tail.
	var accepted []parser.Record
	i := 0
	for i < n {
		c := cands[i]
		if c.EndLine == 0 {
			if !final && c.Truncated {
				break
			}
			if !final && i == n-1 && st.buf[len(st.buf)-1] != '\n' {
				break // unterminated tail line: defer
			}
			if err := e.emitNoise(t, ls.Line(i), st.meta[i]); err != nil {
				return err
			}
			i++
			continue
		}
		if !final && c.End == len(st.buf) {
			// A match flush against the window's end could extend
			// with more bytes when the template ends in a field
			// (legal in hand-written profiles); deferring is always
			// safe — '\n'-terminal matches merely finalize one
			// batch later.
			break
		}
		accepted = append(accepted, parser.Record{
			StartLine: i, EndLine: c.EndLine,
			Start: ls.Start(i), End: c.End,
		})
		st.coverage += c.End - ls.Start(i)
		i = c.EndLine
	}
	consumed := i

	if len(accepted) > 0 {
		st.records += len(accepted)
		recs := e.materialize(st, ls, accepted)
		if e.cfg.OnRecord != nil {
			for _, r := range recs {
				if err := e.cfg.OnRecord(r); err != nil {
					return err
				}
			}
		} else {
			st.recs = append(st.recs, recs...)
		}
	}

	// Compact: drop the finalized prefix, keep the deferred tail.
	if consumed > 0 {
		cut := ls.Start(consumed)
		st.buf = append(st.buf[:0], st.buf[cut:]...)
		st.meta = append(st.meta[:0], st.meta[consumed:]...)
	}
	// A deferred tail is re-matched from scratch next batch; when it is
	// already shard-sized (a record still completing across shards),
	// require a full extra shard of growth before retrying so the
	// rework stays proportional to the data, not quadratic in it.
	if !final && len(st.buf) >= e.cfg.ShardSize {
		st.minRetry = len(st.buf) + e.cfg.ShardSize
	} else {
		st.minRetry = 0
	}
	return nil
}

// emitNoise routes one noise line to the next stage's residue window, or
// to the final noise sink after the last stage.
func (e *engine) emitNoise(t int, line []byte, meta lineMeta) error {
	if t+1 < len(e.stages) {
		next := e.stages[t+1]
		next.buf = append(next.buf, line...)
		next.meta = append(next.meta, meta)
		return nil
	}
	return e.finalNoise(meta.orig)
}

// finalNoise records one line nothing matched: streamed to OnNoise when
// set, accumulated into the Result otherwise.
func (e *engine) finalNoise(origLine int) error {
	if e.cfg.OnNoise != nil {
		return e.cfg.OnNoise(origLine)
	}
	e.noise = append(e.noise, origLine)
	return nil
}

// materialize converts accepted window-local records into original-stream
// coordinates, fanning the field extraction and value copies out over the
// worker pool. Each worker re-parses its records through the arena-based
// extract pass into a private reusable scratch — the validate pass already
// vetted every accepted record, so extraction touches only record bytes
// and allocates nothing per record beyond the output values. Output order
// matches the accepted order.
func (e *engine) materialize(st *stage, ls *textio.Lines, accepted []parser.Record) []core.RecordOut {
	out := make([]core.RecordOut, len(accepted))
	fill := func(lo, hi int) {
		var scratch []parser.FieldOcc
		for idx := lo; idx < hi; idx++ {
			rec := accepted[idx]
			ro := core.RecordOut{
				TypeID:    st.typeID,
				StartLine: st.meta[rec.StartLine].orig,
				EndLine:   st.meta[rec.EndLine-1].orig + 1,
			}
			fields, _, ok := st.m.AppendFields(st.buf, rec.Start, scratch[:0])
			scratch = fields[:0]
			if !ok {
				// Unreachable: the candidate pass validated the match.
				continue
			}
			ro.Fields = make([]core.FieldValue, 0, len(fields))
			// Fields arrive left to right and never cross line
			// boundaries, so the containing line advances
			// monotonically from the record's first line and one
			// per-line delta translates both span ends.
			li := rec.StartLine
			for _, f := range fields {
				// li+1 < N() guards the sentinel: a zero-length
				// field at the very end of the window belongs to
				// the last line.
				for li+1 < ls.N() && ls.Start(li+1) <= f.Start {
					li++
				}
				shift := st.meta[li].start - ls.Start(li)
				ro.Fields = append(ro.Fields, core.FieldValue{
					Col: f.Col, Rep: f.Rep,
					Start: f.Start + shift, End: f.End + shift,
					Value: string(st.buf[f.Start:f.End]),
				})
			}
			out[idx] = ro
		}
	}
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(accepted) < workers*4 {
		fill(0, len(accepted))
		return out
	}
	chunk := (len(accepted) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(accepted) {
			break
		}
		hi := lo + chunk
		if hi > len(accepted) {
			hi = len(accepted)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}
