package pipeline

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/parser"
	"datamaran/internal/template"
)

// runBoth extracts d in memory and through the streaming engine (forcing
// many shards) and returns both results.
func runBoth(t *testing.T, data []byte, shardSize int, workers int) (*core.Result, *core.Result) {
	t.Helper()
	want, err := core.Extract(data, core.Options{})
	if err != nil {
		t.Fatalf("core.Extract: %v", err)
	}
	got, err := Run(bytes.NewReader(data), Config{
		ShardSize: shardSize,
		Workers:   workers,
	})
	if err != nil {
		t.Fatalf("pipeline.Run: %v", err)
	}
	return want, got
}

// assertEquivalent checks the streaming result is byte-identical to the
// in-memory one on everything but timing.
func assertEquivalent(t *testing.T, name string, want, got *core.Result) {
	t.Helper()
	if len(got.Structures) != len(want.Structures) {
		t.Fatalf("%s: structures = %d, want %d", name, len(got.Structures), len(want.Structures))
	}
	for i := range want.Structures {
		w, g := want.Structures[i], got.Structures[i]
		if w.Template.Key() != g.Template.Key() {
			t.Errorf("%s: type %d template = %s, want %s", name, i, g.Template, w.Template)
		}
		if w.Records != g.Records || w.Coverage != g.Coverage {
			t.Errorf("%s: type %d records/coverage = %d/%d, want %d/%d",
				name, i, g.Records, g.Coverage, w.Records, w.Coverage)
		}
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		if len(got.Records) != len(want.Records) {
			t.Fatalf("%s: records = %d, want %d", name, len(got.Records), len(want.Records))
		}
		for i := range want.Records {
			if !reflect.DeepEqual(got.Records[i], want.Records[i]) {
				t.Fatalf("%s: record %d = %+v, want %+v", name, i, got.Records[i], want.Records[i])
			}
		}
	}
	if !reflect.DeepEqual(got.NoiseLines, want.NoiseLines) {
		t.Errorf("%s: noise lines = %v, want %v", name, got.NoiseLines, want.NoiseLines)
	}
}

// TestStreamEquivalenceCorpus is the property test of the engine: on the
// datagen corpus, the sharded streaming extraction must produce the same
// structures, records and noise lines as the in-memory pipeline, even
// with shards far smaller than a record.
func TestStreamEquivalenceCorpus(t *testing.T) {
	// The 25 Table-5 analogs at reduced scale cover every structure
	// class (single/multi-line, interleaved, noisy) while keeping the
	// 2×(datasets×shards) full-extraction matrix inside CI budgets; the
	// full-size GitHub corpus adds minutes per dataset without new code
	// paths.
	datasets := datagen.ManualDatasets(0.05)
	shards := []int{512, 64 << 10}
	if testing.Short() {
		// Keep the -race CI job fast: a subset of datasets, one
		// adversarially small shard size.
		datasets = datasets[:8]
		shards = []int{512}
	}
	for _, d := range datasets {
		for _, shard := range shards {
			name := fmt.Sprintf("%s/shard%d", d.Name, shard)
			t.Run(name, func(t *testing.T) {
				want, got := runBoth(t, d.Data, shard, 4)
				assertEquivalent(t, name, want, got)
			})
		}
	}
}

// TestRecordSpansShardCut pins the boundary behavior directly: a
// multi-line record type with the shard size smaller than one record, so
// every record straddles at least one shard boundary.
func TestRecordSpansShardCut(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "begin %d\ndetailfieldvalue:%d\nchecksum %d end\n", i, i*7, i*13)
	}
	data := []byte(b.String())
	want, got := runBoth(t, data, 48, 2)
	assertEquivalent(t, "span", want, got)
	if len(want.Records) == 0 {
		t.Fatal("test is vacuous: no records extracted")
	}
	for _, r := range want.Records {
		if r.EndLine-r.StartLine < 2 {
			t.Fatalf("test is vacuous: single-line record %+v", r)
		}
	}
}

// TestNoiseAtShardEdges interleaves noise with records so shard cuts land
// on noise lines and on record boundaries alike.
func TestNoiseAtShardEdges(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d,%d,%d\n", i, i*3, i*5, i*7)
		if i%3 == 0 {
			fmt.Fprintf(&b, "### corrupted garbage %d @@\n", i)
		}
	}
	data := []byte(b.String())
	for _, shard := range []int{16, 57, 256, 4096} {
		want, got := runBoth(t, data, shard, 3)
		assertEquivalent(t, fmt.Sprintf("shard%d", shard), want, got)
	}
	if res, _ := core.Extract(data, core.Options{}); len(res.NoiseLines) == 0 {
		t.Fatal("test is vacuous: no noise lines")
	}
}

// TestNoTrailingNewline checks the unterminated final line is handled
// across the deferral logic.
func TestNoTrailingNewline(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", i, i*3, i*5)
	}
	b.WriteString("tail,without,newline")
	want, got := runBoth(t, []byte(b.String()), 32, 2)
	assertEquivalent(t, "notrailing", want, got)
}

// TestEmptyInput mirrors core.Extract's error.
func TestEmptyInput(t *testing.T) {
	if _, err := Run(bytes.NewReader(nil), Config{}); err != core.ErrEmptyInput {
		t.Fatalf("err = %v, want ErrEmptyInput", err)
	}
}

// TestOnRecordStreams checks the constant-memory callback mode yields
// every record exactly once, in order within a type, and that an error
// aborts the run.
func TestOnRecordStreams(t *testing.T) {
	d := datagen.CommaSepRecords(500, 3)
	want, err := core.Extract(d.Data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []core.RecordOut
	res, err := Run(bytes.NewReader(d.Data), Config{
		ShardSize: 256,
		OnRecord:  func(r core.RecordOut) error { got = append(got, r); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Errorf("Result.Records = %d, want 0 in callback mode", len(res.Records))
	}
	// Single-type data: callback order must equal the in-memory order.
	if !reflect.DeepEqual(got, want.Records) {
		t.Fatalf("streamed records differ: %d vs %d", len(got), len(want.Records))
	}

	stop := fmt.Errorf("stop")
	n := 0
	_, err = Run(bytes.NewReader(d.Data), Config{
		ShardSize: 256,
		OnRecord: func(core.RecordOut) error {
			n++
			if n == 3 {
				return stop
			}
			return nil
		},
	})
	if err != stop {
		t.Fatalf("err = %v, want callback error", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times after abort, want 3", n)
	}
}

// repeatReader serves count copies of block without materializing them —
// the synthetic large-log source for the bounded-memory check.
type repeatReader struct {
	block []byte
	count int
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.count == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.block[r.off:])
	r.off += n
	if r.off == len(r.block) {
		r.off = 0
		r.count--
	}
	return n, nil
}

// TestBoundedMemoryLargeInput streams a >100 MB synthetic log through the
// callback mode and checks the engine never buffers the input: heap usage
// stays far below the input size.
func TestBoundedMemoryLargeInput(t *testing.T) {
	if testing.Short() {
		t.Skip("streams >100 MB")
	}
	var b strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "10.0.%d.%d GET /api/v1/item/%d 200 %d\n", i%256, (i*7)%256, i, 1000+i)
	}
	block := []byte(b.String())
	count := (110 << 20) / len(block)
	total := int64(len(block)) * int64(count)
	if total < 100<<20 {
		t.Fatalf("input only %d bytes", total)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	records := 0
	res, err := Run(&repeatReader{block: block, count: count}, Config{
		OnRecord: func(core.RecordOut) error { records++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if records == 0 || len(res.Structures) == 0 {
		t.Fatalf("extracted nothing: %d records, %d structures", records, len(res.Structures))
	}
	// The discovery prefix (8 MiB) plus a few shards per stage must be
	// the high-water mark — nothing close to the 110 MiB input.
	if grew := int64(after.HeapInuse) - int64(before.HeapInuse); grew > 64<<20 {
		t.Errorf("heap grew %d MiB streaming a %d MiB input — input is being buffered",
			grew>>20, total>>20)
	}
	t.Logf("streamed %d MiB, %d records, %d structures", total>>20, records, len(res.Structures))
}

// TestTemplatesModeMatchesApplyTemplates checks the discovery-free
// streaming path against core.ApplyTemplates: same structures, records
// and noise, with no prefix buffering involved.
func TestTemplatesModeMatchesApplyTemplates(t *testing.T) {
	d := datagen.InterleavedTypes(2, 150, 11)
	disc, err := core.Extract(d.Data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(disc.Structures) < 2 {
		t.Fatalf("test is vacuous: %d structures", len(disc.Structures))
	}
	var tpls []*template.Node
	for _, s := range disc.Structures {
		tpls = append(tpls, s.Template)
	}
	want, err := core.ApplyTemplates(d.Data, tpls)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range []int{128, 8 << 10} {
		got, err := Run(bytes.NewReader(d.Data), Config{
			ShardSize: shard,
			Workers:   3,
			Templates: tpls,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, fmt.Sprintf("apply/shard%d", shard), want, got)
	}
}

// TestPrecompiledMatchersEquivalence runs the templates mode with a
// shared precompiled matcher set — the serve daemon's hot-profile cache
// path — concurrently, and checks every run is byte-identical to the
// per-run-compiled form. Also covers the length-mismatch rejection.
func TestPrecompiledMatchersEquivalence(t *testing.T) {
	d := datagen.InterleavedTypes(2, 150, 11)
	disc, err := core.Extract(d.Data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tpls []*template.Node
	for _, s := range disc.Structures {
		tpls = append(tpls, s.Template)
	}
	want, err := Run(bytes.NewReader(d.Data), Config{ShardSize: 8 << 10, Workers: 2, Templates: tpls})
	if err != nil {
		t.Fatal(err)
	}
	matchers := make([]*parser.Matcher, len(tpls))
	for i, tpl := range tpls {
		matchers[i] = parser.NewMatcher(tpl)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := Run(bytes.NewReader(d.Data), Config{
				ShardSize: 8 << 10,
				Workers:   2,
				Templates: tpls,
				Matchers:  matchers,
			})
			if err != nil {
				errs[g] = err
				return
			}
			assertEquivalent(t, fmt.Sprintf("precompiled/run%d", g), want, got)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(bytes.NewReader(d.Data), Config{Templates: tpls, Matchers: matchers[:1]}); err == nil {
		t.Fatal("matcher/template length mismatch accepted")
	}
}

// TestTemplatesModeEmptyInput mirrors ApplyTemplates' empty-input error.
func TestTemplatesModeEmptyInput(t *testing.T) {
	d := datagen.CommaSepRecords(10, 1)
	disc, err := core.Extract(d.Data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(bytes.NewReader(nil), Config{Templates: []*template.Node{disc.Structures[0].Template}})
	if err != core.ErrEmptyInput {
		t.Fatalf("err = %v, want ErrEmptyInput", err)
	}
}

// TestFieldTerminalProfileTemplate covers templates that do not end in
// '\n' — never produced by discovery, but legal in hand-written profiles
// (Profile.UnmarshalJSON does not require newline termination). The
// engine must neither panic on zero-length fields at the window end nor
// finalize boundary matches the sequential scan would decide differently.
func TestFieldTerminalProfileTemplate(t *testing.T) {
	tpl := template.Struct(template.Lit("x\n"), template.Field()).Normalize()
	inputs := []string{
		"x\n",                          // empty field at EOF
		"x\nx\nx\n",                    // stacked: field matches empty between records
		"x\nfield-value-line\nx\ntail", // field consuming a full line, unterminated tail
		strings.Repeat("x\nYY\n", 200), // shard boundaries land after "x\n" lines
	}
	for _, in := range inputs {
		want, err := core.ApplyTemplates([]byte(in), []*template.Node{tpl})
		if err != nil {
			t.Fatal(err)
		}
		for _, shard := range []int{2, 5, 64} {
			got, err := Run(strings.NewReader(in), Config{
				ShardSize: shard,
				Templates: []*template.Node{tpl},
			})
			if err != nil {
				t.Fatalf("shard %d: %v", shard, err)
			}
			assertEquivalent(t, fmt.Sprintf("fieldterm/%q/shard%d", in[:min(len(in), 12)], shard), want, got)
		}
	}
}

// TestOnNoiseStreams checks noise indices stream through the callback in
// order instead of accumulating, and that its error aborts the run.
func TestOnNoiseStreams(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", i, i*3, i*5)
		if i%3 == 0 {
			fmt.Fprintf(&b, "### corrupted garbage %d @@\n", i)
		}
	}
	data := []byte(b.String())
	want, err := core.Extract(data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.NoiseLines) == 0 {
		t.Fatal("test is vacuous: no noise")
	}
	var got []int
	res, err := Run(bytes.NewReader(data), Config{
		ShardSize: 256,
		OnRecord:  func(core.RecordOut) error { return nil },
		OnNoise:   func(line int) error { got = append(got, line); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NoiseLines) != 0 {
		t.Errorf("Result.NoiseLines = %d, want 0 in callback mode", len(res.NoiseLines))
	}
	if !reflect.DeepEqual(got, want.NoiseLines) {
		t.Fatalf("streamed noise = %v, want %v", got, want.NoiseLines)
	}

	stop := fmt.Errorf("stop")
	if _, err := Run(bytes.NewReader(data), Config{
		ShardSize: 256,
		OnNoise:   func(int) error { return stop },
	}); err != stop {
		t.Fatalf("err = %v, want callback error", err)
	}
}
