package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// discoverTemplates learns the template set of data once for the resume
// tests.
func discoverTemplates(t *testing.T, data []byte) []*template.Node {
	t.Helper()
	disc, err := core.Extract(data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(disc.Structures) == 0 {
		t.Fatal("test is vacuous: no structures")
	}
	var tpls []*template.Node
	for _, s := range disc.Structures {
		tpls = append(tpls, s.Template)
	}
	return tpls
}

// TestRunContextCancelled verifies a cancelled context aborts the run
// instead of extracting to EOF.
func TestRunContextCancelled(t *testing.T) {
	d := datagen.CommaSepRecords(500, 1)
	tpls := discoverTemplates(t, d.Data)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, bytes.NewReader(d.Data), Config{
		ShardSize: 64,
		Templates: tpls,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBaseOffsetsShiftCoordinates checks the resume-at-offset entry
// point: extracting a suffix with BaseLine/BaseByte set reproduces the
// whole-file run's records and noise for that suffix, in whole-file
// coordinates.
func TestBaseOffsetsShiftCoordinates(t *testing.T) {
	d := datagen.CommaSepRecords(200, 7)
	tpls := discoverTemplates(t, d.Data)
	full, err := Run(bytes.NewReader(d.Data), Config{ShardSize: 256, Templates: tpls})
	if err != nil {
		t.Fatal(err)
	}
	lines := textio.NewLines(d.Data)
	cutLine := lines.N() / 3
	cutByte := lines.Start(cutLine)
	got, err := Run(bytes.NewReader(d.Data[cutByte:]), Config{
		ShardSize: 256,
		Templates: tpls,
		BaseLine:  cutLine,
		BaseByte:  cutByte,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantRecs []core.RecordOut
	for _, r := range full.Records {
		if r.StartLine >= cutLine {
			wantRecs = append(wantRecs, r)
		}
	}
	if !reflect.DeepEqual(got.Records, wantRecs) {
		t.Fatalf("resumed records = %d, want %d (first diff: %+v)",
			len(got.Records), len(wantRecs), firstDiff(got.Records, wantRecs))
	}
	var wantNoise []int
	for _, n := range full.NoiseLines {
		if n >= cutLine {
			wantNoise = append(wantNoise, n)
		}
	}
	if !reflect.DeepEqual(got.NoiseLines, wantNoise) {
		t.Fatalf("resumed noise = %v, want %v", got.NoiseLines, wantNoise)
	}
}

func firstDiff(got, want []core.RecordOut) string {
	for i := range want {
		if i >= len(got) {
			return fmt.Sprintf("missing record %d: %+v", i, want[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Sprintf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	return "extra records"
}

// TestBoundarySnapshotInvariance: requesting the stable boundary must not
// change the extraction result, and the boundary must land on a line
// start with no record of any type straddling it.
func TestBoundarySnapshotInvariance(t *testing.T) {
	inputs := map[string][]byte{
		"interleaved": datagen.InterleavedTypes(2, 120, 3).Data,
		"noisy":       noisyCommaData(300),
		"unterminated": append(datagen.CommaSepRecords(50, 2).Data,
			[]byte("7,8")...), // no trailing newline
	}
	for name, data := range inputs {
		tpls := discoverTemplates(t, data)
		want, err := Run(bytes.NewReader(data), Config{ShardSize: 512, Templates: tpls})
		if err != nil {
			t.Fatal(err)
		}
		var b Boundary
		got, err := Run(bytes.NewReader(data), Config{
			ShardSize: 512,
			Templates: tpls,
			Boundary:  &b,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, name+"/with-boundary", want, got)

		lines := textio.NewLines(data)
		if b.Line < 0 || b.Line > lines.N() {
			t.Fatalf("%s: boundary line %d out of range [0,%d]", name, b.Line, lines.N())
		}
		if lines.Start(b.Line) != b.Byte {
			t.Fatalf("%s: boundary byte %d != start of line %d (%d)",
				name, b.Byte, b.Line, lines.Start(b.Line))
		}
		for _, r := range got.Records {
			if r.StartLine < b.Line && r.EndLine > b.Line {
				t.Fatalf("%s: record %+v straddles boundary line %d", name, r, b.Line)
			}
		}
	}
}

func noisyCommaData(rows int) []byte {
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d\n", i, i*3, i*7)
		if i%4 == 0 {
			fmt.Fprintf(&sb, "### garbage %d\n", i)
		}
	}
	return []byte(sb.String())
}
