package chars

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAddContains(t *testing.T) {
	var s Set
	if s.Contains('a') {
		t.Fatal("empty set should not contain 'a'")
	}
	s.Add('a')
	if !s.Contains('a') {
		t.Fatal("set should contain 'a' after Add")
	}
	if s.Contains('b') {
		t.Fatal("set should not contain 'b'")
	}
	s.Remove('a')
	if s.Contains('a') {
		t.Fatal("set should not contain 'a' after Remove")
	}
}

func TestSetLen(t *testing.T) {
	s := NewSet("abc")
	if got := s.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}
	s.Add('a') // duplicate
	if got := s.Len(); got != 3 {
		t.Fatalf("Len() after duplicate Add = %d, want 3", got)
	}
}

func TestSetEmpty(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Fatal("zero Set should be empty")
	}
	s.Add(0)
	if s.Empty() {
		t.Fatal("set containing NUL should not be empty")
	}
}

func TestSetHighBytes(t *testing.T) {
	var s Set
	for _, b := range []byte{0, 63, 64, 127, 128, 191, 192, 255} {
		s.Add(b)
		if !s.Contains(b) {
			t.Errorf("set should contain byte %d", b)
		}
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("Len() = %d, want 8", got)
	}
}

func TestSetUnionIntersectMinus(t *testing.T) {
	a := NewSet("abcd")
	b := NewSet("cdef")
	if got := a.Union(b); !got.Equal(NewSet("abcdef")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet("cd")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewSet("ab")) {
		t.Errorf("Minus = %v", got)
	}
}

func TestSetSubsetOf(t *testing.T) {
	a := NewSet("ab")
	b := NewSet("abc")
	if !a.SubsetOf(b) {
		t.Error("ab should be subset of abc")
	}
	if b.SubsetOf(a) {
		t.Error("abc should not be subset of ab")
	}
	var empty Set
	if !empty.SubsetOf(a) {
		t.Error("empty set should be subset of anything")
	}
}

func TestSetBytesSorted(t *testing.T) {
	s := NewSet("zax")
	got := s.Bytes()
	want := []byte{'a', 'x', 'z'}
	if string(got) != string(want) {
		t.Fatalf("Bytes() = %q, want %q", got, want)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(",\n")
	got := s.String()
	want := `{'\n', ','}`
	if got != want {
		t.Fatalf("String() = %s, want %s", got, want)
	}
}

func TestDefaultCandidates(t *testing.T) {
	c := DefaultCandidates()
	for _, b := range []byte{' ', ',', ':', '[', ']', '"', '\t', '|', '='} {
		if !c.Contains(b) {
			t.Errorf("DefaultCandidates should contain %q", b)
		}
	}
	for _, b := range []byte{'a', 'Z', '0', '\n', 0x80} {
		if c.Contains(b) {
			t.Errorf("DefaultCandidates should not contain %q", b)
		}
	}
}

func TestPresent(t *testing.T) {
	data := []byte("alpha, beta: 12\n")
	p := Present(DefaultCandidates(), data)
	if !p.Equal(NewSet(", :")) {
		t.Fatalf("Present = %v, want {' ', ',', ':'}", p)
	}
}

func TestPresentEmptyData(t *testing.T) {
	if p := Present(DefaultCandidates(), nil); !p.Empty() {
		t.Fatalf("Present of empty data = %v, want empty", p)
	}
}

func TestSubsetsCount(t *testing.T) {
	set := NewSet(",.:")
	n := 0
	Subsets(set, func(Set) bool { n++; return true })
	if n != 8 {
		t.Fatalf("Subsets enumerated %d sets, want 2^3 = 8", n)
	}
}

func TestSubsetsFirstIsFull(t *testing.T) {
	set := NewSet(",.:")
	var first Set
	called := false
	Subsets(set, func(s Set) bool {
		if !called {
			first = s
			called = true
		}
		return true
	})
	if !first.Equal(set) {
		t.Fatalf("first subset = %v, want full set %v", first, set)
	}
}

// TestSubsetsGrayAdjacency pins the Gray-code contract the generation
// engine's incremental exhaustive search rides: consecutive subsets
// differ by exactly one character, for every charset width up to the
// exhaustive cap's neighborhood.
func TestSubsetsGrayAdjacency(t *testing.T) {
	for _, members := range []string{"", ",", ",.", ",.:", " ,:;=|", ",.:;=|[]{}"} {
		set := NewSet(members)
		var prev Set
		first := true
		n := 0
		Subsets(set, func(s Set) bool {
			if !first {
				diff := s.Minus(prev).Union(prev.Minus(s))
				if diff.Len() != 1 {
					t.Fatalf("members %q: consecutive subsets %v -> %v differ by %d chars, want 1",
						members, prev, s, diff.Len())
				}
			}
			first = false
			prev = s
			n++
			return true
		})
		if want := 1 << set.Len(); n != want {
			t.Fatalf("members %q: enumerated %d subsets, want %d", members, n, want)
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	set := NewSet(",.:")
	n := 0
	Subsets(set, func(Set) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("enumerated %d subsets after early stop, want 3", n)
	}
}

func TestSubsetsAllAreSubsets(t *testing.T) {
	set := NewSet(" ,:[]")
	Subsets(set, func(s Set) bool {
		if !s.SubsetOf(set) {
			t.Fatalf("enumerated %v is not a subset of %v", s, set)
		}
		return true
	})
}

// Property: NewSet(s).Contains(b) iff b in s.
func TestQuickNewSetMembership(t *testing.T) {
	f := func(s []byte, b byte) bool {
		set := NewSet(string(s))
		want := false
		for _, c := range s {
			if c == b {
				want = true
			}
		}
		return set.Contains(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and contains both operands.
func TestQuickUnion(t *testing.T) {
	f := func(a, b []byte) bool {
		sa, sb := NewSet(string(a)), NewSet(string(b))
		u := sa.Union(sb)
		return u.Equal(sb.Union(sa)) && sa.SubsetOf(u) && sb.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Minus then Union restores a superset relationship:
// (a\b) ∪ (a∩b) == a.
func TestQuickMinusIntersectPartition(t *testing.T) {
	f := func(a, b []byte) bool {
		sa, sb := NewSet(string(a)), NewSet(string(b))
		return sa.Minus(sb).Union(sa.Intersect(sb)).Equal(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Len equals the number of distinct bytes.
func TestQuickLen(t *testing.T) {
	f := func(s []byte) bool {
		set := NewSet(string(s))
		distinct := map[byte]bool{}
		for _, b := range s {
			distinct[b] = true
		}
		return set.Len() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetsEnumeratesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	members := make([]byte, 0)
	cand := DefaultCandidates().Bytes()
	for len(members) < 5 {
		members = append(members, cand[rng.Intn(len(cand))])
	}
	set := NewSet(string(members))
	seen := map[string]bool{}
	Subsets(set, func(s Set) bool {
		k := string(s.Bytes())
		if seen[k] {
			t.Fatalf("subset %v enumerated twice", s)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 1<<set.Len() {
		t.Fatalf("enumerated %d distinct subsets, want %d", len(seen), 1<<set.Len())
	}
}

func TestLineIndexSetsAndPostings(t *testing.T) {
	lines := [][]byte{[]byte("a,b\n"), []byte("c|d\n"), []byte("e,f|g\n"), []byte("plain\n")}
	ix := BuildLineIndex(len(lines), func(i int) []byte { return lines[i] }, DefaultCandidates())
	if got, want := ix.LineSet(0), NewSet(","); !got.Equal(want) {
		t.Fatalf("line 0 set = %v, want %v", got, want)
	}
	if got, want := ix.LineSet(2), NewSet(",|"); !got.Equal(want) {
		t.Fatalf("line 2 set = %v, want %v", got, want)
	}
	if got := ix.LineSet(3); !got.Empty() {
		t.Fatalf("line 3 set = %v, want empty", got)
	}
	if got := ix.Lines(','); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("postings for ',' = %v, want [0 2]", got)
	}
	if got := ix.Lines('|'); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("postings for '|' = %v, want [1 2]", got)
	}
	if got := ix.Lines('x'); len(got) != 0 {
		t.Fatalf("postings for absent char = %v, want empty", got)
	}
}

func TestLineIndexIgnoresNonCandidates(t *testing.T) {
	// '\n' is never a candidate; characters outside the candidate set
	// must not be indexed even when present.
	lines := [][]byte{[]byte("a,b\n")}
	ix := BuildLineIndex(1, func(i int) []byte { return lines[i] }, NewSet(","))
	if got, want := ix.LineSet(0), NewSet(","); !got.Equal(want) {
		t.Fatalf("line set = %v, want %v", got, want)
	}
	if got := ix.Lines('a'); len(got) != 0 {
		t.Fatalf("postings for non-candidate = %v, want empty", got)
	}
	if got := ix.Lines('\n'); len(got) != 0 {
		t.Fatalf("postings for newline = %v, want empty", got)
	}
}

func TestLineIndexEmpty(t *testing.T) {
	ix := BuildLineIndex(0, func(i int) []byte { panic("no lines") }, DefaultCandidates())
	if got := ix.Lines(','); len(got) != 0 {
		t.Fatalf("empty index has postings: %v", got)
	}
}
