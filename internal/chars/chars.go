// Package chars implements character-set machinery for Datamaran.
//
// The non-overlapping assumption (Assumption 2 in the paper) splits every
// record into formatting characters (RT-CharSet, drawn from a predefined
// candidate set of special characters) and field-value characters. This
// package provides a compact bitset over byte values, the default
// RT-CharSet-Candidate collection, and helpers to enumerate candidate
// subsets during the generation step.
package chars

import (
	"math/bits"
	"strings"
)

// Set is a bitset over the 256 byte values. The zero value is the empty
// set, ready to use.
type Set struct {
	w [4]uint64
}

// NewSet returns a Set containing exactly the bytes of s.
func NewSet(s string) Set {
	var cs Set
	for i := 0; i < len(s); i++ {
		cs.Add(s[i])
	}
	return cs
}

// Add inserts b into the set.
func (s *Set) Add(b byte) { s.w[b>>6] |= 1 << (b & 63) }

// Remove deletes b from the set.
func (s *Set) Remove(b byte) { s.w[b>>6] &^= 1 << (b & 63) }

// Contains reports whether b is in the set.
func (s Set) Contains(b byte) bool { return s.w[b>>6]&(1<<(b&63)) != 0 }

// Len returns the number of bytes in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set contains no bytes.
func (s Set) Empty() bool { return s.w == [4]uint64{} }

// Union returns the union of s and t.
func (s Set) Union(t Set) Set {
	var u Set
	for i := range u.w {
		u.w[i] = s.w[i] | t.w[i]
	}
	return u
}

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set {
	var u Set
	for i := range u.w {
		u.w[i] = s.w[i] & t.w[i]
	}
	return u
}

// Minus returns the set difference s \ t.
func (s Set) Minus(t Set) Set {
	var u Set
	for i := range u.w {
		u.w[i] = s.w[i] &^ t.w[i]
	}
	return u
}

// Equal reports whether s and t contain the same bytes.
func (s Set) Equal(t Set) bool { return s.w == t.w }

// SubsetOf reports whether every byte of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i := range s.w {
		if s.w[i]&^t.w[i] != 0 {
			return false
		}
	}
	return true
}

// Bytes returns the members of the set in ascending order.
func (s Set) Bytes() []byte {
	out := make([]byte, 0, s.Len())
	for i := 0; i < 256; i++ {
		if s.Contains(byte(i)) {
			out = append(out, byte(i))
		}
	}
	return out
}

// String renders the set as a sorted, quoted list of characters, e.g.
// `{' ', ',', ':'}`. Intended for diagnostics and test failure messages.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, c := range s.Bytes() {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteByte('\'')
		switch c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case '\'':
			b.WriteString(`\'`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
		b.WriteByte('\'')
	}
	b.WriteByte('}')
	return b.String()
}

// DefaultCandidates is the predefined RT-CharSet-Candidate collection: the
// ASCII punctuation and whitespace characters that commonly serve as
// formatting characters in log files. The newline character is handled
// separately (it always delimits blocks, per Definition 2.4) and is not a
// member.
func DefaultCandidates() Set {
	return NewSet(" \t!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~")
}

// FieldPlaceholder is the field placeholder character 'F' from
// Definition 2.1. Templates are serialized with this byte standing for a
// field value.
const FieldPlaceholder byte = 'F'

// Present returns the subset of candidates that actually occur in data.
// The generation step only enumerates subsets of present characters
// (Table 2's parameter c is Present(...).Len()).
func Present(candidates Set, data []byte) Set {
	var seen Set
	for _, b := range data {
		if candidates.Contains(b) {
			seen.Add(b)
		}
	}
	return seen.Intersect(candidates)
}

// Subsets enumerates every subset of set (2^c of them, the exhaustive
// search of §9.1) and calls fn for each, starting with the full set, in a
// deterministic order where consecutive subsets differ by exactly one
// character (a reflected Gray code over the complement mask). The
// one-character adjacency is what lets the generation engine re-tokenize
// only a single character's postings between consecutive exhaustive
// trials, the same incremental path the greedy search rides. If fn
// returns false the enumeration stops early.
func Subsets(set Set, fn func(Set) bool) {
	members := set.Bytes()
	n := len(members)
	full := 1<<n - 1
	for k := 0; k <= full; k++ {
		// gray(k) and gray(k+1) differ in one bit; complementing
		// against the full mask starts the walk at the full set so
		// higher-coverage charsets (typically the larger ones) are
		// seen first.
		mask := full ^ (k ^ k>>1)
		var s Set
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s.Add(members[i])
			}
		}
		if !fn(s) {
			return
		}
	}
}

// MaxExhaustiveChars bounds the exhaustive charset search: beyond this many
// distinct present candidates, 2^c enumeration is intractable and callers
// should fall back to greedy search.
const MaxExhaustiveChars = 16

// LineIndex is a per-line character presence index: for every line of a
// dataset it records the set of candidate characters the line contains,
// and for every candidate character the ascending list of lines containing
// it (a postings list). The generation step uses it two ways: a line whose
// candidate-set intersection with an RT-CharSet is unchanged tokenizes to
// the same shape (so the tokenization can be skipped), and growing a
// greedy charset by one character only re-tokenizes that character's
// postings.
type LineIndex struct {
	sets     []Set
	postings [256][]int32
}

// BuildLineIndex indexes n lines, fetching each line's bytes through
// line(i) (the textio.Lines access pattern, kept as a callback so this
// package stays independent of the text layer). Only characters in
// candidates are indexed.
func BuildLineIndex(n int, line func(int) []byte, candidates Set) *LineIndex {
	ix := &LineIndex{sets: make([]Set, n)}
	for i := 0; i < n; i++ {
		var s Set
		for _, b := range line(i) {
			if candidates.Contains(b) {
				s.Add(b)
			}
		}
		ix.sets[i] = s
		for _, b := range s.Bytes() {
			ix.postings[b] = append(ix.postings[b], int32(i))
		}
	}
	return ix
}

// LineSet returns the candidate characters present in line i.
func (ix *LineIndex) LineSet(i int) Set { return ix.sets[i] }

// Lines returns the ascending indices of lines containing c. The returned
// slice is shared; callers must not modify it.
func (ix *LineIndex) Lines(c byte) []int32 { return ix.postings[c] }
