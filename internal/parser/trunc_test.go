package parser

import (
	"testing"

	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// TestMatchTruncDistinguishesFailures pins the contract the streaming
// engine depends on: a failure caused by running off the buffer is
// flagged (more bytes could flip it), a mismatch on resident bytes is
// not (no amount of extra data can).
func TestMatchTruncDistinguishesFailures(t *testing.T) {
	csv := NewMatcher(template.Struct(
		template.Field(), template.Lit(","), template.Field(), template.Lit("\n"),
	).Normalize())
	multi := NewMatcher(template.Struct(
		template.Lit("BEGIN "), template.Field(), template.Lit("\nEND;\n"),
	).Normalize())
	arr := NewMatcher(template.Array([]*template.Node{template.Field()}, ',', '\n'))
	arrLit := NewMatcher(template.Array(
		[]*template.Node{template.Field(), template.Lit(":")}, ',', '\n'))

	cases := []struct {
		name      string
		m         *Matcher
		data      string
		ok        bool
		truncated bool
	}{
		{"csv complete", csv, "a,b\n", true, false},
		{"csv cut mid-field", csv, "a,b", false, true},
		{"csv cut before comma", csv, "ab", false, true},
		{"csv definitive mismatch", csv, "ab\n", false, false},
		{"multi complete", multi, "BEGIN x\nEND;\n", true, false},
		{"multi cut inside literal", multi, "BEGIN x\nEN", false, true},
		{"multi literal mismatch", multi, "BEGIN x\nEXD;\n", false, false},
		{"multi cut at start", multi, "BEG", false, true},
		{"multi wrong head", multi, "BOGUS\n", false, false},
		{"array complete", arr, "a,b,c\n", true, false},
		{"array cut after sep", arr, "a,b", false, true},
		{"array bad delimiter", arrLit, "a:,b:x\n", false, false},
	}
	for _, c := range cases {
		_, _, ok, trunc := c.m.MatchTrunc([]byte(c.data), 0)
		if ok != c.ok || trunc != c.truncated {
			t.Errorf("%s: MatchTrunc(%q) = ok %v, truncated %v; want %v, %v",
				c.name, c.data, ok, trunc, c.ok, c.truncated)
		}
	}
}

// TestMatchTruncAgreesWithMatch: on any buffer, the ok/value/end results
// must be exactly Match's.
func TestMatchTruncAgreesWithMatch(t *testing.T) {
	m := NewMatcher(template.Struct(
		template.Field(), template.Lit(","), template.Field(), template.Lit("\n"),
	).Normalize())
	data := []byte("a,b\nxy\nc,d\ne,")
	for pos := 0; pos <= len(data); pos++ {
		v1, e1, ok1 := m.Match(data, pos)
		v2, e2, ok2, _ := m.MatchTrunc(data, pos)
		if ok1 != ok2 || e1 != e2 || (v1 == nil) != (v2 == nil) {
			t.Errorf("pos %d: Match=(%v,%d) MatchTrunc=(%v,%d)", pos, ok1, e1, ok2, e2)
		}
	}
}

// TestMatchCandidatesTruncatedFlag checks candidates near the buffer end
// carry the deferral flag while interior failures do not.
func TestMatchCandidatesTruncatedFlag(t *testing.T) {
	m := NewMatcher(template.Struct(
		template.Field(), template.Lit(","), template.Field(), template.Lit("\n"),
	).Normalize())
	lines := textio.NewLines([]byte("a,b\n~~noise~~\nc,d\ne,f"))
	cands := m.MatchCandidates(lines, 0, lines.N(), 2)
	if cands[0].Value == nil || cands[0].EndLine != 1 {
		t.Errorf("line 0: %+v, want match ending at line 1", cands[0])
	}
	if cands[1].Value != nil || cands[1].Truncated {
		t.Errorf("line 1 (interior noise): %+v, want definitive failure", cands[1])
	}
	if cands[2].Value == nil {
		t.Errorf("line 2: %+v, want match", cands[2])
	}
	if cands[3].Value != nil || !cands[3].Truncated {
		t.Errorf("line 3 (cut record): %+v, want truncated failure", cands[3])
	}
}
