package parser

import (
	"testing"
)

// TestNoiseRejectionZeroAllocs pins the validate pass's contract: deciding
// that a line starts no record performs zero heap allocations — both for a
// bare MatchEnds probe and for a whole steady-state scan of pure noise.
func TestNoiseRejectionZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	m := NewMatcher(benchTemplate())
	noise := []byte("!! unparseable noise line with spaces !!\n")
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok, _ := m.MatchEnds(noise, 0); ok {
			t.Fatal("noise line matched")
		}
	}); avg != 0 {
		t.Fatalf("MatchEnds on a noise line: %v allocs, want 0", avg)
	}

	lines := benchNoiseLines(2000)
	res := &ScanResult{}
	m.ScanInto(lines, res) // warm the reusable storage
	if avg := testing.AllocsPerRun(20, func() { m.ScanInto(lines, res) }); avg != 0 {
		t.Fatalf("steady-state all-noise ScanInto: %v allocs/scan, want 0 (%.4f allocs/line)",
			avg, avg/float64(lines.N()))
	}
}

// TestApplyPathAllocsPerRecord pins the extract pass's steady-state cost on
// the profile-apply workload (every line a record): with the arenas warm,
// a scan — and therefore each record — allocates nothing.
func TestApplyPathAllocsPerRecord(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	lines := benchLines(2000)
	m := NewMatcher(benchTemplate())
	res := &ScanResult{}
	m.ScanInto(lines, res) // warm the arenas
	records := len(res.Records)
	if records != 2000 {
		t.Fatalf("records = %d, want 2000", records)
	}
	avg := testing.AllocsPerRun(20, func() { m.ScanInto(lines, res) })
	if perRecord := avg / float64(records); perRecord != 0 {
		t.Fatalf("steady-state apply path: %v allocs/scan = %.4f allocs/record, want 0", avg, perRecord)
	}
}

// TestColdScanAllocsBounded pins the cold-path allocation count: a fresh
// scan may grow its arenas, but the count must stay far below one
// allocation per record (the old tree path allocated several per record).
func TestColdScanAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	lines := benchLines(2000)
	m := NewMatcher(benchTemplate())
	avg := testing.AllocsPerRun(5, func() { m.Scan(lines) })
	if perRecord := avg / 2000; perRecord > 0.05 {
		t.Fatalf("cold scan: %v allocs = %.4f allocs/record, want <= 0.05", avg, perRecord)
	}
}
