package parser

import (
	"fmt"
	"strings"

	"datamaran/internal/template"
)

// Grammar renders the LL(1) grammar equivalent to a structure template
// (the Remark of §3.3: the restricted regular-expression form rewrites to
// an LL(1) grammar, which is why extraction is a linear-time parse).
//
// Productions use S as the start symbol, Ai for array nonterminals and
// Ti for their tails; FIELD denotes a maximal run of non-RT-CharSet
// bytes, and quoted strings are literal terminals. The array
// ({body}x)*{body}y becomes
//
//	Ai → body Ti
//	Ti → "x" body Ti | "y"
//
// whose FIRST sets {x} and {y} are disjoint (the structural-form
// assumption requires x ≠ y), making the grammar LL(1).
func Grammar(st *template.Node) string {
	g := &grammarBuilder{}
	start := g.emit(st)
	var b strings.Builder
	fmt.Fprintf(&b, "S → %s\n", start)
	for _, p := range g.productions {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	return b.String()
}

type grammarBuilder struct {
	productions []string
	arrays      int
}

// emit returns the right-hand-side fragment for a node, appending helper
// productions for arrays.
func (g *grammarBuilder) emit(n *template.Node) string {
	switch n.Kind {
	case template.KField:
		return "FIELD"
	case template.KLiteral:
		return quoteLit(n.Lit)
	case template.KStruct:
		parts := make([]string, 0, len(n.Children))
		for _, c := range n.Children {
			parts = append(parts, g.emit(c))
		}
		return strings.Join(parts, " ")
	case template.KArray:
		g.arrays++
		id := g.arrays
		body := g.emit(&template.Node{Kind: template.KStruct, Children: n.Children})
		a := fmt.Sprintf("A%d", id)
		t := fmt.Sprintf("T%d", id)
		g.productions = append(g.productions,
			fmt.Sprintf("%s → %s %s", a, body, t),
			fmt.Sprintf("%s → %s %s %s | %s", t, quoteLit(string(n.Sep)), body, t, quoteLit(string(n.Term))),
		)
		return a
	}
	return ""
}

func quoteLit(s string) string {
	return fmt.Sprintf("%q", s) // %q renders newline as \n inside quotes
}
