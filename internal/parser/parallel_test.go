package parser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// scanEqual compares two scan results field by field.
func scanEqual(t *testing.T, a, b *ScanResult) {
	t.Helper()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("records: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.StartLine != rb.StartLine || ra.EndLine != rb.EndLine || ra.Start != rb.Start || ra.End != rb.End {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
	}
	if a.Coverage != b.Coverage || a.FieldBytes != b.FieldBytes {
		t.Fatalf("coverage %d/%d vs %d/%d", a.Coverage, a.FieldBytes, b.Coverage, b.FieldBytes)
	}
	if len(a.NoiseLines) != len(b.NoiseLines) {
		t.Fatalf("noise: %d vs %d", len(a.NoiseLines), len(b.NoiseLines))
	}
	for i := range a.NoiseLines {
		if a.NoiseLines[i] != b.NoiseLines[i] {
			t.Fatalf("noise %d differs", i)
		}
	}
}

func TestScanParallelMatchesSequentialSingleLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b strings.Builder
	for i := 0; i < 500; i++ {
		if rng.Intn(10) == 0 {
			b.WriteString("~~noise~~\n")
		}
		fmt.Fprintf(&b, "%d,%d\n", rng.Intn(1000), rng.Intn(1000))
	}
	lines := textio.NewLines([]byte(b.String()))
	tm := template.Struct(template.Field(), template.Lit(","), template.Field(), template.Lit("\n")).Normalize()
	m := NewMatcher(tm)
	seq := m.Scan(lines)
	for _, workers := range []int{2, 3, 7} {
		par := m.ScanParallel(lines, workers)
		scanEqual(t, seq, par)
	}
}

func TestScanParallelMatchesSequentialMultiLine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var b strings.Builder
	for i := 0; i < 300; i++ {
		if rng.Intn(8) == 0 {
			b.WriteString("## interruption ##\n")
		}
		fmt.Fprintf(&b, "BEGIN %d\nv= %d\nEND;\n", rng.Intn(10000), rng.Intn(100))
	}
	lines := textio.NewLines([]byte(b.String()))
	tm := template.Struct(
		template.Lit("BEGIN "), template.Field(), template.Lit("\nv= "),
		template.Field(), template.Lit("\nEND;\n"),
	).Normalize()
	m := NewMatcher(tm)
	seq := m.Scan(lines)
	for _, workers := range []int{2, 5} {
		par := m.ScanParallel(lines, workers)
		scanEqual(t, seq, par)
	}
}

func TestScanParallelFallbackSmallInput(t *testing.T) {
	lines := textio.NewLines([]byte("a,b\nc,d\n"))
	tm := template.Struct(template.Field(), template.Lit(","), template.Field(), template.Lit("\n")).Normalize()
	m := NewMatcher(tm)
	par := m.ScanParallel(lines, 8)
	if len(par.Records) != 2 {
		t.Fatalf("records = %d", len(par.Records))
	}
}

func TestScanParallelBoundaryStraddle(t *testing.T) {
	// Records of 3 lines with chunk boundaries guaranteed to cut
	// through records for small worker counts.
	var b strings.Builder
	for i := 0; i < 99; i++ {
		fmt.Fprintf(&b, "A%d:\nB%d:\nC%d:\n", i, i, i)
	}
	lines := textio.NewLines([]byte(b.String()))
	tm := template.Struct(
		template.Field(), template.Lit(":\n"),
		template.Field(), template.Lit(":\n"),
		template.Field(), template.Lit(":\n"),
	).Normalize()
	m := NewMatcher(tm)
	seq := m.Scan(lines)
	if len(seq.Records) != 99 {
		t.Fatalf("sequential records = %d", len(seq.Records))
	}
	for _, workers := range []int{2, 4, 9} {
		par := m.ScanParallel(lines, workers)
		scanEqual(t, seq, par)
	}
}
