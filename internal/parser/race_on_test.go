//go:build race

package parser

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip under it.
const raceEnabled = true
