package parser

import (
	"strings"
	"testing"

	"datamaran/internal/chars"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

func fld() *template.Node         { return template.Field() }
func lit(s string) *template.Node { return template.Lit(s) }
func st(c ...*template.Node) *template.Node {
	return template.Struct(c...).Normalize()
}

func TestMatchSimpleLine(t *testing.T) {
	// [F:F:F] F\n
	tm := st(lit("["), fld(), lit(":"), fld(), lit(":"), fld(), lit("] "), fld(), lit("\n"))
	m := NewMatcher(tm)
	data := []byte("[01:05:02] 192.168.0.1\n")
	v, end, ok := m.Match(data, 0)
	if !ok {
		t.Fatal("expected match")
	}
	if end != len(data) {
		t.Fatalf("end = %d, want %d", end, len(data))
	}
	occs := m.Flatten(v)
	if len(occs) != 4 {
		t.Fatalf("got %d field occurrences, want 4", len(occs))
	}
	vals := make([]string, len(occs))
	for i, o := range occs {
		vals[i] = string(data[o.Start:o.End])
	}
	want := []string{"01", "05", "02", "192.168.0.1"}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("field %d = %q, want %q", i, vals[i], want[i])
		}
	}
}

func TestMatchRejectsWrongLiteral(t *testing.T) {
	tm := st(lit("["), fld(), lit("]\n"))
	m := NewMatcher(tm)
	if _, _, ok := m.Match([]byte("(x)\n"), 0); ok {
		t.Fatal("should not match wrong bracket")
	}
}

func TestMatchFieldStopsAtRTChar(t *testing.T) {
	// F,F\n over "a,b\n": first field must stop at ','.
	tm := st(fld(), lit(","), fld(), lit("\n"))
	m := NewMatcher(tm)
	data := []byte("a,b\n")
	v, _, ok := m.Match(data, 0)
	if !ok {
		t.Fatal("expected match")
	}
	occs := m.Flatten(v)
	if got := string(data[occs[0].Start:occs[0].End]); got != "a" {
		t.Fatalf("field 0 = %q, want \"a\"", got)
	}
}

func TestMatchEmptyField(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	m := NewMatcher(tm)
	data := []byte(",b\n")
	v, _, ok := m.Match(data, 0)
	if !ok {
		t.Fatal("empty leading field should match")
	}
	occs := m.Flatten(v)
	if occs[0].Start != occs[0].End {
		t.Fatal("first field should be empty")
	}
}

func TestMatchArray(t *testing.T) {
	// (F,)*F\n over varying field counts.
	tm := template.Array([]*template.Node{fld()}, ',', '\n')
	m := NewMatcher(tm)
	for _, n := range []int{1, 2, 5} {
		line := strings.Repeat("x,", n-1) + "y\n"
		v, end, ok := m.Match([]byte(line), 0)
		if !ok {
			t.Fatalf("n=%d: expected match", n)
		}
		if end != len(line) {
			t.Fatalf("n=%d: end=%d want %d", n, end, len(line))
		}
		if len(v.Children) != n {
			t.Fatalf("n=%d: %d repetitions, want %d", n, len(v.Children), n)
		}
		occs := m.Flatten(v)
		for _, o := range occs {
			if o.Col != 0 {
				t.Fatalf("array field column = %d, want 0", o.Col)
			}
		}
		if occs[len(occs)-1].Rep != n-1 {
			t.Fatalf("last rep = %d, want %d", occs[len(occs)-1].Rep, n-1)
		}
	}
}

func TestMatchArrayForeignCharStaysInField(t *testing.T) {
	// ';' is not in the template's RT-CharSet, so under Assumption 2 it
	// is an ordinary field byte: "b;c" is one field value.
	tm := template.Array([]*template.Node{fld()}, ',', '\n')
	m := NewMatcher(tm)
	data := []byte("a,b;c\n")
	v, _, ok := m.Match(data, 0)
	if !ok {
		t.Fatal("expected match")
	}
	occs := m.Flatten(v)
	if len(occs) != 2 {
		t.Fatalf("fields = %d, want 2", len(occs))
	}
	if got := string(data[occs[1].Start:occs[1].End]); got != "b;c" {
		t.Fatalf("field 1 = %q, want \"b;c\"", got)
	}
}

func TestMatchFigure6Template(t *testing.T) {
	// F,F,"(F,)*F",F\n — quoted inner list.
	inner := template.Array([]*template.Node{fld()}, ',', '"')
	tm := st(fld(), lit(","), fld(), lit(`,"`), inner, lit(","), fld(), lit("\n"))
	m := NewMatcher(tm)
	data := []byte(`a,b,"1,2,3",z` + "\n")
	v, end, ok := m.Match(data, 0)
	if !ok {
		t.Fatal("expected match")
	}
	if end != len(data) {
		t.Fatalf("end = %d, want %d", end, len(data))
	}
	occs := m.Flatten(v)
	var got []string
	for _, o := range occs {
		got = append(got, string(data[o.Start:o.End]))
	}
	want := []string{"a", "b", "1", "2", "3", "z"}
	if len(got) != len(want) {
		t.Fatalf("fields = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("field %d = %q want %q", i, got[i], want[i])
		}
	}
	// Columns: a=0, b=1, inner list col=2 (shared), z=3.
	wantCols := []int{0, 1, 2, 2, 2, 3}
	for i, o := range occs {
		if o.Col != wantCols[i] {
			t.Errorf("occ %d col = %d, want %d", i, o.Col, wantCols[i])
		}
	}
}

func TestColumnsAfterArray(t *testing.T) {
	// F,(F;)*F:F\n — field after an array gets the next column id.
	arr := template.Array([]*template.Node{fld()}, ';', ':')
	tm := st(fld(), lit(","), arr, fld(), lit("\n"))
	m := NewMatcher(tm)
	if m.Columns() != 3 {
		t.Fatalf("Columns = %d, want 3", m.Columns())
	}
	data := []byte("a,x;y:z\n")
	v, _, ok := m.Match(data, 0)
	if !ok {
		t.Fatal("expected match")
	}
	occs := m.Flatten(v)
	wantCols := []int{0, 1, 1, 2}
	for i, o := range occs {
		if o.Col != wantCols[i] {
			t.Errorf("occ %d col = %d, want %d", i, o.Col, wantCols[i])
		}
	}
}

func TestMatchMultiLineRecord(t *testing.T) {
	// Name: F\nAge: F\n
	tm := st(lit("Name: "), fld(), lit("\nAge: "), fld(), lit("\n"))
	m := NewMatcher(tm)
	data := []byte("Name: bob\nAge: 42\n")
	_, end, ok := m.Match(data, 0)
	if !ok || end != len(data) {
		t.Fatalf("multi-line match failed: ok=%v end=%d", ok, end)
	}
}

func TestScanPartitionsRecordsAndNoise(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	data := []byte("a,b\n# comment line\nc,d\ne,f\njunk junk junk\n")
	lines := textio.NewLines(data)
	res := NewMatcher(tm).Scan(lines)
	if len(res.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(res.Records))
	}
	if len(res.NoiseLines) != 2 {
		t.Fatalf("noise lines = %v, want 2 lines", res.NoiseLines)
	}
	if res.NoiseLines[0] != 1 || res.NoiseLines[1] != 4 {
		t.Fatalf("noise lines = %v, want [1 4]", res.NoiseLines)
	}
	if res.Coverage != len("a,b\n")+len("c,d\n")+len("e,f\n") {
		t.Fatalf("coverage = %d", res.Coverage)
	}
}

func TestScanMultiLineRecords(t *testing.T) {
	tm := st(lit("BEGIN "), fld(), lit("\nv="), fld(), lit("\nEND\n"))
	data := []byte("BEGIN a\nv=1\nEND\nnoise\nBEGIN b\nv=2\nEND\n")
	res := NewMatcher(tm).Scan(textio.NewLines(data))
	if len(res.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(res.Records))
	}
	r0 := res.Records[0]
	if r0.StartLine != 0 || r0.EndLine != 3 {
		t.Fatalf("record 0 lines [%d,%d), want [0,3)", r0.StartLine, r0.EndLine)
	}
	if len(res.NoiseLines) != 1 || res.NoiseLines[0] != 3 {
		t.Fatalf("noise = %v, want [3]", res.NoiseLines)
	}
}

func TestScanFieldBytes(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	data := []byte("aa,bbb\nc,d\n")
	res := NewMatcher(tm).Scan(textio.NewLines(data))
	if res.FieldBytes != 5+2 {
		t.Fatalf("FieldBytes = %d, want 7", res.FieldBytes)
	}
	nonField := res.Coverage - res.FieldBytes
	if nonField != 4 { // two commas + two newlines
		t.Fatalf("non-field coverage = %d, want 4", nonField)
	}
}

func TestScanNoMatchAllNoise(t *testing.T) {
	tm := st(lit("ZZZ "), fld(), lit("\n"))
	data := []byte("a\nb\nc\n")
	res := NewMatcher(tm).Scan(textio.NewLines(data))
	if len(res.Records) != 0 {
		t.Fatal("expected no records")
	}
	if len(res.NoiseLines) != 3 {
		t.Fatalf("noise = %v, want 3 lines", res.NoiseLines)
	}
}

func TestScanGreedyDoesNotOverlap(t *testing.T) {
	// Template matches any single line; every line becomes exactly one
	// record, never overlapping.
	tm := st(fld(), lit("\n"))
	data := []byte("a\nb\nc\n")
	res := NewMatcher(tm).Scan(textio.NewLines(data))
	if len(res.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(res.Records))
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Start < res.Records[i-1].End {
			t.Fatal("records overlap")
		}
	}
}

func TestEndsWithNewline(t *testing.T) {
	cases := []struct {
		tm   *template.Node
		want bool
	}{
		{st(fld(), lit("\n")), true},
		{st(fld(), lit(",")), false},
		{template.Array([]*template.Node{fld()}, ',', '\n'), true},
		{template.Array([]*template.Node{fld()}, ',', ']'), false},
		{st(fld(), template.Array([]*template.Node{fld()}, ',', '\n')), true},
		{fld(), false},
	}
	for i, c := range cases {
		if got := EndsWithNewline(c.tm); got != c.want {
			t.Errorf("case %d (%v): EndsWithNewline = %v, want %v", i, c.tm, got, c.want)
		}
	}
}

func TestScanAlignedEndRequired(t *testing.T) {
	// Template without trailing newline can match mid-line; Scan must
	// not accept a record that ends mid-line.
	tm := st(fld(), lit(":"))
	data := []byte("a:b\n")
	res := NewMatcher(tm).Scan(textio.NewLines(data))
	if len(res.Records) != 0 {
		t.Fatal("mid-line match must not become a record")
	}
}

func TestRoundTripExtractMatch(t *testing.T) {
	// A template extracted from a record must match that record.
	recs := []string{
		"10-20-30 POST /x 200\n",
		"[a] [b] [c]\n",
		"k=v;k2=v2;k3=v3.\n",
	}
	for _, r := range recs {
		min, _ := template.MinimalFromRecord([]byte(r), chars.NewSet(" -=;[]./"))
		m := NewMatcher(min)
		_, end, ok := m.Match([]byte(r), 0)
		if !ok || end != len(r) {
			t.Errorf("template %v does not re-match its source %q (ok=%v end=%d)", min, r, ok, end)
		}
	}
}
