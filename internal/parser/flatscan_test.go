package parser

import (
	"fmt"
	"sort"
	"testing"

	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// refScan is the *Value-tree reference implementation of Scan: the
// pre-arena algorithm (offset map, tree Match, Flatten) kept verbatim as
// the oracle the two-phase matcher must reproduce byte-for-byte.
type refScan struct {
	records    []Record
	fields     [][]FieldOcc
	arrays     [][]ArrayOcc
	noiseLines []int
	coverage   int
	fieldBytes int
}

func scanTreeReference(m *Matcher, lines *textio.Lines) *refScan {
	res := &refScan{}
	data := lines.Data()
	n := lines.N()
	lineOf := make(map[int]int, n) // byte offset -> line index
	for i := 0; i <= n; i++ {
		lineOf[lines.Start(i)] = i
	}
	i := 0
	for i < n {
		pos := lines.Start(i)
		v, end, ok := m.Match(data, pos)
		if ok {
			if endLine, aligned := lineOf[end]; aligned && endLine > i {
				res.records = append(res.records, Record{
					StartLine: i, EndLine: endLine, Start: pos, End: end, Value: v,
				})
				res.coverage += end - pos
				occs := m.Flatten(v)
				for _, f := range occs {
					res.fieldBytes += f.End - f.Start
				}
				res.fields = append(res.fields, occs)
				res.arrays = append(res.arrays, collectTreeArrays(m, v))
				i = endLine
				continue
			}
		}
		res.noiseLines = append(res.noiseLines, i)
		i++
	}
	return res
}

// collectTreeArrays lists every array instantiation of a parse tree as
// (dense array index, repetition count) pairs.
func collectTreeArrays(m *Matcher, v *Value) []ArrayOcc {
	var out []ArrayOcc
	var walk func(v *Value)
	walk = func(v *Value) {
		if v.Node.Kind == template.KArray {
			out = append(out, ArrayOcc{Arr: m.arrays[v.Node].idx, Reps: len(v.Children)})
		}
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(v)
	return out
}

// sortedArrays orders array occurrences canonically: the arena emits an
// array when it terminates (inner before outer), the tree walk in
// pre-order (outer before inner) — the multiset must agree.
func sortedArrays(a []ArrayOcc) []ArrayOcc {
	out := append([]ArrayOcc(nil), a...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arr != out[j].Arr {
			return out[i].Arr < out[j].Arr
		}
		return out[i].Reps < out[j].Reps
	})
	return out
}

func checkScanAgainstReference(t *testing.T, label string, m *Matcher, lines *textio.Lines, got *ScanResult) {
	t.Helper()
	want := scanTreeReference(m, lines)
	if len(got.Records) != len(want.records) {
		t.Fatalf("%s: records = %d, want %d", label, len(got.Records), len(want.records))
	}
	for i := range want.records {
		g, w := got.Records[i], want.records[i]
		if g.StartLine != w.StartLine || g.EndLine != w.EndLine || g.Start != w.Start || g.End != w.End {
			t.Fatalf("%s: record %d = [%d,%d)@[%d,%d), want [%d,%d)@[%d,%d)", label, i,
				g.StartLine, g.EndLine, g.Start, g.End, w.StartLine, w.EndLine, w.Start, w.End)
		}
		gf, wf := got.Fields(i), want.fields[i]
		if len(gf) != len(wf) {
			t.Fatalf("%s: record %d fields = %d, want %d", label, i, len(gf), len(wf))
		}
		for j := range wf {
			if gf[j] != wf[j] {
				t.Fatalf("%s: record %d field %d = %+v, want %+v", label, i, j, gf[j], wf[j])
			}
		}
		ga, wa := sortedArrays(got.Arrays(i)), sortedArrays(want.arrays[i])
		if len(ga) != len(wa) {
			t.Fatalf("%s: record %d arrays = %d, want %d", label, i, len(ga), len(wa))
		}
		for j := range wa {
			if ga[j] != wa[j] {
				t.Fatalf("%s: record %d array %d = %+v, want %+v", label, i, j, ga[j], wa[j])
			}
		}
	}
	if len(got.NoiseLines) != len(want.noiseLines) {
		t.Fatalf("%s: noise = %v, want %v", label, got.NoiseLines, want.noiseLines)
	}
	for i := range want.noiseLines {
		if got.NoiseLines[i] != want.noiseLines[i] {
			t.Fatalf("%s: noise = %v, want %v", label, got.NoiseLines, want.noiseLines)
		}
	}
	if got.Coverage != want.coverage || got.FieldBytes != want.fieldBytes {
		t.Fatalf("%s: coverage/fieldBytes = %d/%d, want %d/%d", label,
			got.Coverage, got.FieldBytes, want.coverage, want.fieldBytes)
	}
}

// flatScanCases pairs templates with inputs exercising every template
// shape: flat structs, single and nested arrays, multi-line records,
// truncation-prone tails, noise interleavings, empty field values.
func flatScanCases() []struct {
	name string
	tm   *template.Node
	data string
} {
	arr := func(body []*template.Node, sep, term byte) *template.Node {
		return template.Array(body, sep, term)
	}
	return []struct {
		name string
		tm   *template.Node
		data string
	}{
		{"csv", st(fld(), lit(","), fld(), lit(","), fld(), lit("\n")),
			"a,b,c\nnoise line here\n1,2,3\n,,\nx,y,z\n"},
		{"array-line", arr([]*template.Node{fld()}, ',', '\n'),
			"a,b,c\nd\n,,,\n1,2\n"},
		{"array-mid", st(lit("["), arr([]*template.Node{fld()}, ' ', ']'), lit("\n")),
			"[a b c]\n[x]\njunk\n[1 2]\n"},
		{"nested-array", arr([]*template.Node{arr([]*template.Node{fld()}, ',', ';')}, ' ', '\n'),
			"a,b; c;\nx; y,z,w;\nnoise\n"},
		{"multi-line", st(lit("BEGIN "), fld(), lit("\nv="), fld(), lit("\nEND\n")),
			"BEGIN a\nv=1\nEND\nnoise\nBEGIN b\nv=2\nEND\nBEGIN c\nv=3\n"},
		{"kv-pairs", st(arr([]*template.Node{fld(), lit("="), fld()}, ';', '.'), lit("\n")),
			"k=v;k2=v2.\nnope\na=1.\n"},
		{"empty-fields", st(fld(), lit(":"), fld(), lit("\n")),
			":\na:\n:b\nplain\n"},
		{"unterminated-tail", st(fld(), lit(","), fld(), lit("\n")),
			"a,b\nc,d"},
		{"all-noise", st(lit("ZZZ"), fld(), lit("\n")),
			"a\nb\nc\n"},
	}
}

// TestScanMatchesTreeReference pins the two-phase arena scan — sequential
// and parallel at several worker counts — to the *Value-tree reference
// implementation across every template shape.
func TestScanMatchesTreeReference(t *testing.T) {
	for _, c := range flatScanCases() {
		tm := c.tm.Normalize()
		m := NewMatcher(tm)
		lines := textio.NewLines([]byte(c.data))
		checkScanAgainstReference(t, c.name+"/seq", m, lines, m.Scan(lines))
		for _, workers := range []int{1, 2, 8} {
			label := fmt.Sprintf("%s/par%d", c.name, workers)
			checkScanAgainstReference(t, label, m, lines, m.ScanParallel(lines, workers))
		}
	}
}

// TestScanIntoReuseIsClean pins that a reused ScanResult carries no state
// between datasets: scanning A, then B, must equal scanning B fresh.
func TestScanIntoReuseIsClean(t *testing.T) {
	cases := flatScanCases()
	res := &ScanResult{}
	for _, c := range cases {
		m := NewMatcher(c.tm.Normalize())
		lines := textio.NewLines([]byte(c.data))
		m.ScanInto(lines, res)
		checkScanAgainstReference(t, c.name+"/reused", m, lines, res)
	}
}

// TestMatchCandidatesTwoPhase pins the tree-carrying candidate API to the
// ends-only validate pass they now share.
func TestMatchCandidatesTwoPhase(t *testing.T) {
	for _, c := range flatScanCases() {
		tm := c.tm.Normalize()
		m := NewMatcher(tm)
		lines := textio.NewLines([]byte(c.data))
		n := lines.N()
		cands := m.MatchCandidates(lines, 0, n, 2)
		ends := m.MatchCandidateEnds(lines, 0, n, 2)
		for i := 0; i < n; i++ {
			if (cands[i].Value != nil) != (ends[i].EndLine != 0) {
				t.Fatalf("%s: line %d: tree/ends disagree on match", c.name, i)
			}
			if cands[i].EndLine != ends[i].EndLine || cands[i].Truncated != ends[i].Truncated {
				t.Fatalf("%s: line %d: cand %+v vs end %+v", c.name, i, cands[i], ends[i])
			}
			if cands[i].Value != nil && cands[i].End != ends[i].End {
				t.Fatalf("%s: line %d: end %d vs %d", c.name, i, cands[i].End, ends[i].End)
			}
		}
	}
}
