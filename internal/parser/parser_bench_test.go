package parser

import (
	"strings"
	"testing"

	"datamaran/internal/template"
	"datamaran/internal/textio"
)

func benchLines(rows int) *textio.Lines {
	var b strings.Builder
	for i := 0; i < rows; i++ {
		b.WriteString("12,alpha,3.5,OK\n")
	}
	return textio.NewLines([]byte(b.String()))
}

func benchTemplate() *template.Node {
	return template.Struct(
		template.Field(), template.Lit(","), template.Field(), template.Lit(","),
		template.Field(), template.Lit("."), template.Field(), template.Lit(","),
		template.Field(), template.Lit("\n"),
	).Normalize()
}

func BenchmarkScanSequential(b *testing.B) {
	lines := benchLines(5000)
	m := NewMatcher(benchTemplate())
	b.SetBytes(int64(len(lines.Data())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(lines)
	}
}

func BenchmarkScanParallel4(b *testing.B) {
	lines := benchLines(5000)
	m := NewMatcher(benchTemplate())
	b.SetBytes(int64(len(lines.Data())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanParallel(lines, 4)
	}
}

func BenchmarkMatchSingleRecord(b *testing.B) {
	data := []byte("12,alpha,3.5,OK\n")
	m := NewMatcher(benchTemplate())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.Match(data, 0); !ok {
			b.Fatal("no match")
		}
	}
}
