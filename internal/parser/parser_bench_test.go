package parser

import (
	"strings"
	"testing"

	"datamaran/internal/template"
	"datamaran/internal/textio"
)

func benchLines(rows int) *textio.Lines {
	var b strings.Builder
	for i := 0; i < rows; i++ {
		b.WriteString("12,alpha,3.5,OK\n")
	}
	return textio.NewLines([]byte(b.String()))
}

func benchTemplate() *template.Node {
	return template.Struct(
		template.Field(), template.Lit(","), template.Field(), template.Lit(","),
		template.Field(), template.Lit("."), template.Field(), template.Lit(","),
		template.Field(), template.Lit("\n"),
	).Normalize()
}

func BenchmarkScanSequential(b *testing.B) {
	lines := benchLines(5000)
	m := NewMatcher(benchTemplate())
	b.SetBytes(int64(len(lines.Data())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(lines)
	}
}

func BenchmarkScanParallel4(b *testing.B) {
	lines := benchLines(5000)
	m := NewMatcher(benchTemplate())
	b.SetBytes(int64(len(lines.Data())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanParallel(lines, 4)
	}
}

func BenchmarkMatchSingleRecord(b *testing.B) {
	data := []byte("12,alpha,3.5,OK\n")
	m := NewMatcher(benchTemplate())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.Match(data, 0); !ok {
			b.Fatal("no match")
		}
	}
}

// benchNoiseLines builds input no record of benchTemplate starts on.
func benchNoiseLines(rows int) *textio.Lines {
	var b strings.Builder
	for i := 0; i < rows; i++ {
		b.WriteString("!! unparseable noise line with spaces !!\n")
	}
	return textio.NewLines([]byte(b.String()))
}

// BenchmarkScanNoiseReject measures steady-state noise rejection through
// the reusable ScanInto — the allocs gate (scripts/bench_allocs.sh) pins
// its allocs/op to 0: rejecting a line must never touch the heap.
func BenchmarkScanNoiseReject(b *testing.B) {
	lines := benchNoiseLines(5000)
	m := NewMatcher(benchTemplate())
	res := &ScanResult{}
	m.ScanInto(lines, res) // warm the noise-line storage
	b.SetBytes(int64(len(lines.Data())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanInto(lines, res)
	}
}

// BenchmarkScanArenaReuse measures the steady-state apply path — every
// line a record — through the reusable ScanInto. The allocs gate pins its
// allocs/op to 0: arena reuse must make repeated scans allocation-free.
func BenchmarkScanArenaReuse(b *testing.B) {
	lines := benchLines(5000)
	m := NewMatcher(benchTemplate())
	res := &ScanResult{}
	m.ScanInto(lines, res) // warm the arenas
	b.SetBytes(int64(len(lines.Data())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanInto(lines, res)
	}
}
