package parser

import (
	"runtime"
	"sync"

	"datamaran/internal/textio"
)

// Cand is the outcome of one context-free match attempt: does a record of
// the template start at this line, and if so where does it end. EndLine is
// 0 (and Value nil) when no line-aligned match starts at the line.
type Cand struct {
	// EndLine is the exclusive end line of the match.
	EndLine int
	// End is the exclusive end byte offset.
	End int
	// Value is the parse tree of the match.
	Value *Value
	// Truncated reports that a failed attempt ran off the end of the
	// buffer: with more bytes the line could still start a record. Only
	// meaningful to callers whose buffer is a window of a longer stream.
	Truncated bool
}

// MatchCandidates computes, for every line in [from, to), whether a
// line-aligned record match starts there, fanning the lines out over
// worker goroutines. Matching at a line is context-free — it depends only
// on the template and the bytes — which is what makes the extraction pass
// "eminently parallelizable" (§1, §5.2.2 of the paper) and lets the
// streaming engine scan shards concurrently: any greedy walk over the
// returned candidates reproduces the sequential Scan exactly.
//
// Matches may extend past line to−1; they are resolved against the full
// buffer behind lines. workers <= 0 selects GOMAXPROCS; the slice is
// indexed by line−from.
func (m *Matcher) MatchCandidates(lines *textio.Lines, from, to, workers int) []Cand {
	if to > lines.N() {
		to = lines.N()
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := to - from
	cands := make([]Cand, n)
	data := lines.Data()

	matchRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := lines.Start(from + i)
			v, matchEnd, ok, trunc := m.MatchTrunc(data, pos)
			if !ok {
				cands[i] = Cand{Truncated: trunc}
				continue
			}
			if endLine, aligned := lines.AlignedLine(matchEnd); aligned && endLine > from+i {
				cands[i] = Cand{EndLine: endLine, End: matchEnd, Value: v}
			}
		}
	}

	if workers <= 1 || n < workers*4 {
		matchRange(0, n)
		return cands
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matchRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return cands
}

// ScanParallel computes the same partition as Scan using worker
// goroutines: a parallel per-line candidate pass (MatchCandidates)
// followed by the trivial greedy walk of Scan over the results — identical
// output, including on pathological inputs where record phases are
// ambiguous. workers <= 1 falls back to the sequential Scan.
func (m *Matcher) ScanParallel(lines *textio.Lines, workers int) *ScanResult {
	n := lines.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || n < workers*4 {
		return m.Scan(lines)
	}

	cands := m.MatchCandidates(lines, 0, n, workers)

	// Greedy walk (sequential, cheap).
	res := &ScanResult{}
	i := 0
	for i < n {
		c := cands[i]
		if c.Value == nil {
			res.NoiseLines = append(res.NoiseLines, i)
			i++
			continue
		}
		rec := Record{
			StartLine: i, EndLine: c.EndLine,
			Start: lines.Start(i), End: c.End, Value: c.Value,
		}
		res.Records = append(res.Records, rec)
		res.Coverage += rec.End - rec.Start
		for _, f := range m.Flatten(c.Value) {
			res.FieldBytes += f.End - f.Start
		}
		i = c.EndLine
	}
	return res
}
