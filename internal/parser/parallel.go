package parser

import (
	"runtime"
	"sync"

	"datamaran/internal/textio"
)

// ScanParallel computes the same partition as Scan using worker
// goroutines. The paper notes the extraction pass "is eminently
// parallelizable" (§1, §5.2.2) — this is that pass.
//
// Matching at a line is context-free (it depends only on the template and
// the bytes), so workers independently compute, for every line of their
// chunk, whether a record match starts there; a trivial greedy walk over
// the per-line results then reproduces the sequential Scan exactly —
// including on pathological inputs where record phases are ambiguous.
// workers <= 1 falls back to the sequential Scan.
func (m *Matcher) ScanParallel(lines *textio.Lines, maxSpan, workers int) *ScanResult {
	n := lines.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || n < workers*4 {
		return m.Scan(lines)
	}
	if maxSpan < 1 {
		maxSpan = 1
	}

	data := lines.Data()
	lineOf := make(map[int]int, n+1)
	for i := 0; i <= n; i++ {
		lineOf[lines.Start(i)] = i
	}

	// Phase 1 (parallel): per-line match results.
	type cand struct {
		endLine int
		end     int
		value   *Value
	}
	cands := make([]cand, n)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				pos := lines.Start(i)
				v, matchEnd, ok := m.Match(data, pos)
				if !ok {
					continue
				}
				if endLine, aligned := lineOf[matchEnd]; aligned && endLine > i {
					cands[i] = cand{endLine: endLine, end: matchEnd, value: v}
				}
			}
		}(start, end)
	}
	wg.Wait()

	// Phase 2 (sequential, cheap): the greedy walk of Scan.
	res := &ScanResult{}
	i := 0
	for i < n {
		c := cands[i]
		if c.value == nil {
			res.NoiseLines = append(res.NoiseLines, i)
			i++
			continue
		}
		rec := Record{
			StartLine: i, EndLine: c.endLine,
			Start: lines.Start(i), End: c.end, Value: c.value,
		}
		res.Records = append(res.Records, rec)
		res.Coverage += rec.End - rec.Start
		for _, f := range m.Flatten(c.value) {
			res.FieldBytes += f.End - f.Start
		}
		i = c.endLine
	}
	return res
}
