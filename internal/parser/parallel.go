package parser

import (
	"runtime"
	"sync"

	"datamaran/internal/textio"
)

// Cand is the outcome of one context-free match attempt: does a record of
// the template start at this line, and if so where does it end. EndLine is
// 0 (and Value nil) when no line-aligned match starts at the line.
type Cand struct {
	// EndLine is the exclusive end line of the match.
	EndLine int
	// End is the exclusive end byte offset.
	End int
	// Value is the parse tree of the match.
	Value *Value
	// Truncated reports that a failed attempt ran off the end of the
	// buffer: with more bytes the line could still start a record. Only
	// meaningful to callers whose buffer is a window of a longer stream.
	Truncated bool
}

// CandEnd is the allocation-free form of Cand produced by the validate
// pass alone: the match end without a parse tree. EndLine is 0 when no
// line-aligned match starts at the line.
type CandEnd struct {
	// EndLine is the exclusive end line of the match (0: no match).
	EndLine int
	// End is the exclusive end byte offset.
	End int
	// Truncated reports that a failed attempt ran off the buffer end.
	Truncated bool
}

// MatchCandidateEnds computes, for every line in [from, to), whether a
// line-aligned record match starts there and where it ends, fanning the
// lines out over worker goroutines. It is the validate phase only — no
// parse trees, no per-line heap allocations — which is what makes the
// extraction pass "eminently parallelizable" (§1, §5.2.2 of the paper):
// matching at a line is context-free, so any greedy walk over the
// returned candidates reproduces the sequential Scan exactly.
//
// Matches may extend past line to−1; they are resolved against the full
// buffer behind lines. workers <= 0 selects GOMAXPROCS; the slice is
// indexed by line−from.
func (m *Matcher) MatchCandidateEnds(lines *textio.Lines, from, to, workers int) []CandEnd {
	if to > lines.N() {
		to = lines.N()
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := to - from
	cands := make([]CandEnd, n)
	data := lines.Data()

	matchRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := lines.Start(from + i)
			matchEnd, ok, trunc := m.MatchEnds(data, pos)
			if !ok {
				cands[i] = CandEnd{Truncated: trunc}
				continue
			}
			if endLine, aligned := lines.AlignedLine(matchEnd); aligned && endLine > from+i {
				cands[i] = CandEnd{EndLine: endLine, End: matchEnd}
			}
		}
	}

	if workers <= 1 || n < workers*4 {
		matchRange(0, n)
		return cands
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matchRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return cands
}

// MatchCandidates is MatchCandidateEnds additionally building the parse
// tree of each successful candidate. It runs the zero-allocation validate
// pass first, so lines that start no record (the common case) still cost
// no heap allocations; only line-aligned matches pay for a tree.
func (m *Matcher) MatchCandidates(lines *textio.Lines, from, to, workers int) []Cand {
	if to > lines.N() {
		to = lines.N()
	}
	if from < 0 {
		from = 0
	}
	ends := m.MatchCandidateEnds(lines, from, to, workers)
	cands := make([]Cand, len(ends))
	data := lines.Data()
	for i, c := range ends {
		if c.EndLine == 0 {
			cands[i] = Cand{Truncated: c.Truncated}
			continue
		}
		v, end, _ := m.Match(data, lines.Start(from+i))
		cands[i] = Cand{EndLine: c.EndLine, End: end, Value: v}
	}
	return cands
}

// ScanParallel computes the same partition as Scan using worker
// goroutines: a parallel per-line validate pass (MatchCandidateEnds), the
// trivial greedy walk of Scan over the results (record/noise decisions
// only — no byte work), then a parallel extract pass fanning the accepted
// records out over per-worker arenas that are stitched back in record
// order. The stitched arena layout is byte-identical to the sequential
// ScanInto's, so the output — including Fields/Arrays slices — is
// identical for any worker count, even on pathological inputs where
// record phases are ambiguous. workers <= 1 falls back to the sequential
// Scan.
func (m *Matcher) ScanParallel(lines *textio.Lines, workers int) *ScanResult {
	n := lines.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || n < workers*4 {
		return m.Scan(lines)
	}

	cands := m.MatchCandidateEnds(lines, 0, n, workers)

	// Greedy walk — identical decisions to the sequential Scan.
	res := &ScanResult{}
	data := lines.Data()
	i := 0
	for i < n {
		c := cands[i]
		if c.EndLine == 0 {
			res.NoiseLines = append(res.NoiseLines, i)
			i++
			continue
		}
		res.Records = append(res.Records, Record{
			StartLine: i, EndLine: c.EndLine, Start: lines.Start(i), End: c.End,
		})
		res.Coverage += c.End - lines.Start(i)
		i = c.EndLine
		res.reserve(i, n) // pre-grow Records/NoiseLines (arenas still empty)
	}
	if len(res.Records) == 0 {
		return res
	}

	// Parallel extract: contiguous record ranges per worker, each into a
	// private arena (extraction touches only record bytes the validate
	// pass already vetted).
	if workers > len(res.Records) {
		workers = len(res.Records)
	}
	chunk := (len(res.Records) + workers - 1) / workers
	parts := make([]arena, workers)
	fieldBytes := make([]int, workers)
	var wg sync.WaitGroup
	forEachChunk := func(fn func(w, lo, hi int)) {
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(res.Records) {
				break
			}
			hi := lo + chunk
			if hi > len(res.Records) {
				hi = len(res.Records)
			}
			fn(w, lo, hi)
		}
	}
	forEachChunk(func(w, lo, hi int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := &parts[w]
			for r := lo; r < hi; r++ {
				rec := &res.Records[r]
				fieldLo, arrLo := len(a.occs), len(a.arrays)
				if _, _, ok := m.extract(m.st, data, rec.Start, 0, 0, a); !ok {
					// Unreachable after a successful validate pass;
					// drop the partial occurrences defensively.
					a.occs, a.arrays = a.occs[:fieldLo], a.arrays[:arrLo]
				}
				rec.fieldLo, rec.fieldHi = fieldLo, len(a.occs)
				rec.arrLo, rec.arrHi = arrLo, len(a.arrays)
				for _, f := range a.occs[fieldLo:] {
					fieldBytes[w] += f.End - f.Start
				}
			}
		}()
	})
	wg.Wait()

	// Stitch the per-worker arenas into the result's shared arenas in
	// record order — the same layout the sequential scan produces — and
	// rebase each record's occurrence ranges. The copies fan out over
	// the same worker chunks.
	occOff := make([]int, workers)
	arrOff := make([]int, workers)
	totOccs, totArrs := 0, 0
	for w := 0; w < workers; w++ {
		occOff[w], arrOff[w] = totOccs, totArrs
		totOccs += len(parts[w].occs)
		totArrs += len(parts[w].arrays)
		res.FieldBytes += fieldBytes[w]
	}
	res.ar.occs = make([]FieldOcc, totOccs)
	res.ar.arrays = make([]ArrayOcc, totArrs)
	forEachChunk(func(w, lo, hi int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			copy(res.ar.occs[occOff[w]:], parts[w].occs)
			copy(res.ar.arrays[arrOff[w]:], parts[w].arrays)
			for r := lo; r < hi; r++ {
				rec := &res.Records[r]
				rec.fieldLo += occOff[w]
				rec.fieldHi += occOff[w]
				rec.arrLo += arrOff[w]
				rec.arrHi += arrOff[w]
			}
		}()
	})
	wg.Wait()
	return res
}
