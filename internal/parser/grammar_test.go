package parser

import (
	"strings"
	"testing"

	"datamaran/internal/template"
)

func TestGrammarFlatTemplate(t *testing.T) {
	tm := st(fld(), lit(","), fld(), lit("\n"))
	g := Grammar(tm)
	if !strings.Contains(g, `S → FIELD "," FIELD "\n"`) {
		t.Fatalf("grammar = %s", g)
	}
	if strings.Contains(g, "A1") {
		t.Fatalf("flat template should have no array nonterminals:\n%s", g)
	}
}

func TestGrammarArray(t *testing.T) {
	tm := template.Array([]*template.Node{fld()}, ',', '\n')
	g := Grammar(tm)
	for _, want := range []string{
		"S → A1",
		"A1 → FIELD T1",
		`T1 → "," FIELD T1 | "\n"`,
	} {
		if !strings.Contains(g, want) {
			t.Fatalf("grammar missing %q:\n%s", want, g)
		}
	}
}

func TestGrammarNestedArrays(t *testing.T) {
	inner := template.Array([]*template.Node{fld()}, ',', '"')
	tm := st(fld(), lit(`,"`), inner, lit("\n"))
	g := Grammar(tm)
	if !strings.Contains(g, "A1") || strings.Count(g, "→") < 3 {
		t.Fatalf("nested grammar malformed:\n%s", g)
	}
}

func TestGrammarLL1Property(t *testing.T) {
	// The array tail's two alternatives start with sep and term, which
	// the structural-form assumption keeps distinct: verify the emitted
	// production quotes two different terminals.
	tm := template.Array([]*template.Node{fld()}, ';', ']')
	g := Grammar(tm)
	if !strings.Contains(g, `";"`) || !strings.Contains(g, `"]"`) {
		t.Fatalf("tail production missing distinct terminals:\n%s", g)
	}
}
