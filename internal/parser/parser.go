// Package parser implements LL(1) matching of structure templates against
// log text (§3.3 Remark of the paper): given a structure template, it
// partitions a dataset into instantiated records and noise blocks, and
// extracts every field value.
//
// Matching relies on the non-overlapping assumption (Assumption 2): the
// template's RT-CharSet is disjoint from field-value characters, so a
// field value is the maximal run of bytes outside the RT-CharSet and the
// grammar is LL(1) — at an array boundary the next byte is either the
// separator or the (distinct) terminator.
//
// The scan hot path is two-phase: a pointer-free validate pass
// (MatchEnds) answers ok/end/truncated with zero heap allocations — noise
// lines, the common case during candidate evaluation, cost nothing — and
// an extract pass writes field occurrences into a flat reusable arena
// held by the ScanResult instead of building a per-record *Value tree.
// The tree-building Match API remains for callers that need the parse
// tree (relational normalization walks nesting structure).
package parser

import (
	"datamaran/internal/chars"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// Value is the parse tree of one instantiated record against a template.
type Value struct {
	// Node is the template node this value instantiates.
	Node *template.Node
	// Start and End delimit the matched bytes (for all kinds).
	Start, End int
	// Children: for KStruct, one per template child; for KArray, one
	// group per repetition, each group being a KStruct-shaped Value
	// over the array body.
	Children []*Value
}

// arrInfo is the precomputed per-array state of a matcher.
type arrInfo struct {
	// body is the KStruct wrapper over the array's children, so the hot
	// match loop does not allocate one per attempt.
	body *template.Node
	// fields is the number of field columns in one repetition of body.
	fields int
	// idx is the array's dense index in DFS order (see ArrayNode).
	idx int
}

// Matcher matches one structure template. It precomputes the RT-CharSet
// and the per-array body nodes, and is safe for concurrent use.
type Matcher struct {
	st       *template.Node
	rtset    chars.Set
	cols     int
	arrays   map[*template.Node]arrInfo
	arrNodes []*template.Node
}

// NewMatcher builds a matcher for st.
func NewMatcher(st *template.Node) *Matcher {
	m := &Matcher{st: st, rtset: st.RTCharSet(), cols: st.NumFields(),
		arrays: map[*template.Node]arrInfo{}}
	var walk func(n *template.Node)
	walk = func(n *template.Node) {
		if n.Kind == template.KArray {
			body := &template.Node{Kind: template.KStruct, Children: n.Children}
			m.arrays[n] = arrInfo{body: body, fields: body.NumFields(), idx: len(m.arrNodes)}
			m.arrNodes = append(m.arrNodes, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(st)
	return m
}

// Template returns the matcher's structure template.
func (m *Matcher) Template() *template.Node { return m.st }

// Columns returns the number of field columns of the template (fields
// inside an array body count once).
func (m *Matcher) Columns() int { return m.cols }

// NumArrays returns the number of array nodes in the template.
func (m *Matcher) NumArrays() int { return len(m.arrNodes) }

// ArrayNode returns the array node with dense index i (DFS order over the
// template) — the inverse of ArrayOcc.Arr.
func (m *Matcher) ArrayNode(i int) *template.Node { return m.arrNodes[i] }

// Match attempts to match the template starting at data[pos]. On success
// it returns the parse tree and the end offset (exclusive).
func (m *Matcher) Match(data []byte, pos int) (*Value, int, bool) {
	v, end, ok, _ := m.match(m.st, data, pos)
	if !ok {
		return nil, 0, false
	}
	return v, end, true
}

// MatchTrunc is Match, additionally reporting whether a failed attempt ran
// off the end of data — i.e. whether appending more bytes could turn the
// failure into a match. The streaming engine uses this to defer decisions
// for lines near a shard boundary instead of finalizing them; on a full
// buffer the flag is irrelevant (no more bytes ever arrive).
func (m *Matcher) MatchTrunc(data []byte, pos int) (v *Value, end int, ok, truncated bool) {
	v, end, ok, truncated = m.match(m.st, data, pos)
	if !ok {
		return nil, 0, false, truncated
	}
	return v, end, true, false
}

// MatchEnds is the validate half of the two-phase matcher: it decides
// whether a record of the template starts at data[pos] and where it ends,
// without building a parse tree or touching the heap. truncated reports
// that a failed attempt ran off the end of data (see MatchTrunc).
func (m *Matcher) MatchEnds(data []byte, pos int) (end int, ok, truncated bool) {
	return m.matchEnds(m.st, data, pos)
}

func (m *Matcher) matchEnds(n *template.Node, data []byte, pos int) (int, bool, bool) {
	switch n.Kind {
	case template.KField:
		end := pos
		for end < len(data) && data[end] != '\n' && !m.rtset.Contains(data[end]) {
			end++
		}
		return end, true, false

	case template.KLiteral:
		lit := n.Lit
		avail := len(lit)
		if pos+avail > len(data) {
			avail = len(data) - pos
		}
		for i := 0; i < avail; i++ {
			if data[pos+i] != lit[i] {
				return 0, false, false
			}
		}
		if avail < len(lit) {
			// Running off the buffer after matching every resident
			// byte is not a definitive mismatch.
			return 0, false, true
		}
		return pos + len(lit), true, false

	case template.KStruct:
		cur := pos
		for _, c := range n.Children {
			end, ok, trunc := m.matchEnds(c, data, cur)
			if !ok {
				return 0, false, trunc
			}
			cur = end
		}
		return cur, true, false

	case template.KArray:
		cur := pos
		body := m.arrays[n].body
		for {
			end, ok, trunc := m.matchEnds(body, data, cur)
			if !ok {
				return 0, false, trunc
			}
			cur = end
			if cur >= len(data) {
				return 0, false, true
			}
			switch data[cur] {
			case n.Sep:
				cur++
			case n.Term:
				return cur + 1, true, false
			default:
				return 0, false, false
			}
		}
	}
	return 0, false, false
}

func (m *Matcher) match(n *template.Node, data []byte, pos int) (*Value, int, bool, bool) {
	switch n.Kind {
	case template.KField:
		end := pos
		for end < len(data) && data[end] != '\n' && !m.rtset.Contains(data[end]) {
			end++
		}
		return &Value{Node: n, Start: pos, End: end}, end, true, false

	case template.KLiteral:
		lit := n.Lit
		avail := len(lit)
		if pos+avail > len(data) {
			avail = len(data) - pos
		}
		for i := 0; i < avail; i++ {
			if data[pos+i] != lit[i] {
				return nil, 0, false, false
			}
		}
		if avail < len(lit) {
			return nil, 0, false, true
		}
		return &Value{Node: n, Start: pos, End: pos + len(lit)}, pos + len(lit), true, false

	case template.KStruct:
		v := &Value{Node: n, Start: pos, Children: make([]*Value, 0, len(n.Children))}
		cur := pos
		for _, c := range n.Children {
			cv, end, ok, trunc := m.match(c, data, cur)
			if !ok {
				return nil, 0, false, trunc
			}
			v.Children = append(v.Children, cv)
			cur = end
		}
		v.End = cur
		return v, cur, true, false

	case template.KArray:
		v := &Value{Node: n, Start: pos}
		cur := pos
		body := m.arrays[n].body
		for {
			gv, end, ok, trunc := m.match(body, data, cur)
			if !ok {
				return nil, 0, false, trunc
			}
			v.Children = append(v.Children, gv)
			cur = end
			if cur >= len(data) {
				return nil, 0, false, true
			}
			switch data[cur] {
			case n.Sep:
				cur++
			case n.Term:
				cur++
				v.End = cur
				return v, cur, true, false
			default:
				return nil, 0, false, false
			}
		}
	}
	return nil, 0, false, false
}

// FieldOcc is one field-value occurrence in a parsed record.
type FieldOcc struct {
	// Col is the column index of the field in the template (DFS order;
	// fields inside an array body share the column across repetitions).
	Col int
	// Rep is the repetition ordinal for fields inside arrays (0 for
	// fields outside any array; for nested arrays, the innermost
	// repetition index).
	Rep int
	// Start and End delimit the value bytes in the data.
	Start, End int
}

// ArrayOcc is one array instantiation inside a parsed record: which array
// of the template (dense DFS index, see Matcher.ArrayNode) and how many
// repetitions it matched. The MDL scorer and array unfolding consume
// these instead of walking parse trees.
type ArrayOcc struct {
	Arr, Reps int
}

// arena is the flat occurrence storage the extract pass appends into.
type arena struct {
	occs   []FieldOcc
	arrays []ArrayOcc
}

func (a *arena) reset() {
	a.occs = a.occs[:0]
	a.arrays = a.arrays[:0]
}

// extract is the second phase of the two-phase matcher: it re-walks a
// record already validated by matchEnds and appends its field and array
// occurrences to the arena. col is the column of the leftmost field under
// n; rep the enclosing repetition ordinal. It mirrors Flatten's column
// and repetition bookkeeping exactly.
func (m *Matcher) extract(n *template.Node, data []byte, pos, col, rep int, a *arena) (end, nextCol int, ok bool) {
	switch n.Kind {
	case template.KField:
		e := pos
		for e < len(data) && data[e] != '\n' && !m.rtset.Contains(data[e]) {
			e++
		}
		a.occs = append(a.occs, FieldOcc{Col: col, Rep: rep, Start: pos, End: e})
		return e, col + 1, true

	case template.KLiteral:
		lit := n.Lit
		if pos+len(lit) > len(data) {
			return 0, 0, false
		}
		for i := 0; i < len(lit); i++ {
			if data[pos+i] != lit[i] {
				return 0, 0, false
			}
		}
		return pos + len(lit), col, true

	case template.KStruct:
		cur := pos
		c := col
		for _, ch := range n.Children {
			e, nc, ok := m.extract(ch, data, cur, c, rep, a)
			if !ok {
				return 0, 0, false
			}
			cur, c = e, nc
		}
		return cur, c, true

	case template.KArray:
		info := m.arrays[n]
		cur := pos
		reps := 0
		for {
			e, _, ok := m.extract(info.body, data, cur, col, reps, a)
			if !ok {
				return 0, 0, false
			}
			cur = e
			reps++
			if cur >= len(data) {
				return 0, 0, false
			}
			switch data[cur] {
			case n.Sep:
				cur++
			case n.Term:
				a.arrays = append(a.arrays, ArrayOcc{Arr: info.idx, Reps: reps})
				return cur + 1, col + info.fields, true
			default:
				return 0, 0, false
			}
		}
	}
	return 0, 0, false
}

// AppendFields re-parses the record starting at pos — already located by a
// MatchEnds pass — and appends its field occurrences to occs, a caller-owned
// reusable arena. It returns the extended slice and the record's end
// offset. Occurrence order and contents are identical to Flatten over the
// Match parse tree.
func (m *Matcher) AppendFields(data []byte, pos int, occs []FieldOcc) ([]FieldOcc, int, bool) {
	a := arena{occs: occs}
	end, _, ok := m.extract(m.st, data, pos, 0, 0, &a)
	if !ok {
		return a.occs[:len(occs)], 0, false
	}
	return a.occs, end, true
}

// Flatten lists every field occurrence of a parsed record in left-to-right
// order, with template column indices.
func (m *Matcher) Flatten(v *Value) []FieldOcc {
	out := make([]FieldOcc, 0, m.cols*2)
	var walk func(n *template.Node, v *Value, col int, rep int) int
	walk = func(n *template.Node, v *Value, col int, rep int) int {
		switch n.Kind {
		case template.KField:
			out = append(out, FieldOcc{Col: col, Rep: rep, Start: v.Start, End: v.End})
			return col + 1
		case template.KLiteral:
			return col
		case template.KStruct:
			c := col
			for i, ch := range n.Children {
				c = walk(ch, v.Children[i], c, rep)
			}
			return c
		case template.KArray:
			end := col
			for r, group := range v.Children {
				c := col
				for i, ch := range n.Children {
					c = walk(ch, group.Children[i], c, r)
				}
				end = c
			}
			if len(v.Children) == 0 {
				// No repetitions: still advance the column
				// counter past the body's fields.
				end = col + m.arrays[n].fields
			}
			return end
		}
		return col
	}
	walk(m.st, v, 0, 0)
	return out
}

// Record is a matched record within a dataset.
type Record struct {
	// StartLine and EndLine delimit the record's lines [StartLine, EndLine).
	StartLine, EndLine int
	// Start and End delimit the record's bytes.
	Start, End int
	// Value is the parse tree when the record was built through the
	// tree API (Match); arena-based scans leave it nil and store the
	// field occurrences in the ScanResult instead (see Fields).
	Value *Value
	// fieldLo/fieldHi and arrLo/arrHi delimit the record's occurrence
	// ranges in the owning ScanResult's arenas.
	fieldLo, fieldHi int
	arrLo, arrHi     int
}

// ScanResult is the partition of a dataset into records and noise for one
// template. Field and array occurrences of all records live in two flat
// arenas owned by the result (reused across ScanInto calls), addressed
// per record through Fields and Arrays.
type ScanResult struct {
	Records []Record
	// NoiseLines lists the indices of lines not covered by any record.
	NoiseLines []int
	// Coverage is the total byte length of all matched records — the
	// Cov(T,S) quantity of §4.2.
	Coverage int
	// FieldBytes is the total byte length of all field values, so
	// Coverage − FieldBytes is the non-field coverage of §4.2.
	FieldBytes int
	ar         arena
}

// Fields returns the field occurrences of Records[i], in flatten
// (left-to-right) order. The slice aliases the result's arena.
func (s *ScanResult) Fields(i int) []FieldOcc {
	r := &s.Records[i]
	return s.ar.occs[r.fieldLo:r.fieldHi]
}

// Arrays returns the array instantiations of Records[i].
func (s *ScanResult) Arrays(i int) []ArrayOcc {
	r := &s.Records[i]
	return s.ar.arrays[r.arrLo:r.arrHi]
}

// AllFields returns every field occurrence of every record, in record
// order — the whole-dataset view the MDL scorer consumes.
func (s *ScanResult) AllFields() []FieldOcc { return s.ar.occs }

// AllArrays returns every array instantiation of every record.
func (s *ScanResult) AllArrays() []ArrayOcc { return s.ar.arrays }

// scanEst extrapolates a final slice length from the current length after
// done of total lines, with headroom so a slightly denser tail doesn't
// force another growth step. The multiply comes before the divide —
// n/done would truncate densities below one entry per line to zero and
// never reserve. The headroom is computed from the projected (not
// current) length: the projection is stable while density is, so cap
// stays ahead of the estimate and reserve does not regrow every record.
func scanEst(n, done, total int) int {
	projected := n * total / done
	return projected + projected/8 + 64
}

// reserveMinLines is the number of consumed lines required before reserve
// trusts its extrapolation: growing from a handful of lines would gamble
// hundreds of megabytes on one record's density, while the slices are
// still small enough that runtime growth below the threshold is cheap.
const reserveMinLines = 256

// reserve pre-grows the result's record slice and occurrence arenas to
// the footprint extrapolated from the fraction of lines already consumed.
// Without it, a full-dataset scan pays for the runtime's incremental
// large-slice growth: a 100 MB arena would be copied many times over in
// 1.25x steps, dwarfing the match work itself.
func (s *ScanResult) reserve(done, total int) {
	if done < reserveMinLines || done >= total {
		return
	}
	if est := scanEst(len(s.ar.occs), done, total); est > cap(s.ar.occs) {
		occs := make([]FieldOcc, len(s.ar.occs), est)
		copy(occs, s.ar.occs)
		s.ar.occs = occs
	}
	if est := scanEst(len(s.ar.arrays), done, total); est > cap(s.ar.arrays) {
		arrays := make([]ArrayOcc, len(s.ar.arrays), est)
		copy(arrays, s.ar.arrays)
		s.ar.arrays = arrays
	}
	if est := scanEst(len(s.Records), done, total); est > cap(s.Records) {
		recs := make([]Record, len(s.Records), est)
		copy(recs, s.Records)
		s.Records = recs
	}
	if est := scanEst(len(s.NoiseLines), done, total); est > cap(s.NoiseLines) {
		noise := make([]int, len(s.NoiseLines), est)
		copy(noise, s.NoiseLines)
		s.NoiseLines = noise
	}
}

// appendRecord extracts the record spanning lines [startLine, endLine)
// at byte pos into the result's arenas and accounts coverage.
func (m *Matcher) appendRecord(res *ScanResult, data []byte, startLine, endLine, pos int) {
	fieldLo, arrLo := len(res.ar.occs), len(res.ar.arrays)
	end, _, ok := m.extract(m.st, data, pos, 0, 0, &res.ar)
	if !ok {
		// Unreachable after a successful MatchEnds (both phases follow
		// the same LL(1) walk); drop the partial occurrences defensively.
		res.ar.occs = res.ar.occs[:fieldLo]
		res.ar.arrays = res.ar.arrays[:arrLo]
		return
	}
	res.Records = append(res.Records, Record{
		StartLine: startLine, EndLine: endLine, Start: pos, End: end,
		fieldLo: fieldLo, fieldHi: len(res.ar.occs),
		arrLo: arrLo, arrHi: len(res.ar.arrays),
	})
	res.Coverage += end - pos
	for _, f := range res.ar.occs[fieldLo:] {
		res.FieldBytes += f.End - f.Start
	}
}

// Scan greedily partitions the dataset into records and noise: at each
// line, the template is tried; on a match ending at a line boundary the
// covered lines become a record, otherwise the line is noise. This is the
// linear-time extraction pass of §4.4.1 (the O(Tdata) row of Table 3).
func (m *Matcher) Scan(lines *textio.Lines) *ScanResult {
	res := &ScanResult{}
	m.ScanInto(lines, res)
	return res
}

// ScanInto is Scan writing into a caller-owned result, reusing its record,
// noise and arena storage — the zero-steady-state-allocation form for
// callers that scan repeatedly (candidate evaluation, profile apply).
func (m *Matcher) ScanInto(lines *textio.Lines, res *ScanResult) {
	res.Records = res.Records[:0]
	res.NoiseLines = res.NoiseLines[:0]
	res.Coverage, res.FieldBytes = 0, 0
	res.ar.reset()
	data := lines.Data()
	n := lines.N()
	i := 0
	for i < n {
		pos := lines.Start(i)
		end, ok, _ := m.matchEnds(m.st, data, pos)
		if ok {
			if endLine, aligned := lines.AlignedLine(end); aligned && endLine > i {
				m.appendRecord(res, data, i, endLine, pos)
				i = endLine
				res.reserve(i, n)
				continue
			}
		}
		res.NoiseLines = append(res.NoiseLines, i)
		i++
	}
}

// EndsWithNewline reports whether every complete match of the template
// necessarily ends with '\n' — required for a template to describe
// newline-delimited blocks (Definition 2.4).
func EndsWithNewline(st *template.Node) bool {
	switch st.Kind {
	case template.KLiteral:
		return len(st.Lit) > 0 && st.Lit[len(st.Lit)-1] == '\n'
	case template.KArray:
		return st.Term == '\n'
	case template.KStruct:
		if len(st.Children) == 0 {
			return false
		}
		return EndsWithNewline(st.Children[len(st.Children)-1])
	}
	return false
}
