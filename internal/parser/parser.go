// Package parser implements LL(1) matching of structure templates against
// log text (§3.3 Remark of the paper): given a structure template, it
// partitions a dataset into instantiated records and noise blocks, and
// extracts every field value.
//
// Matching relies on the non-overlapping assumption (Assumption 2): the
// template's RT-CharSet is disjoint from field-value characters, so a
// field value is the maximal run of bytes outside the RT-CharSet and the
// grammar is LL(1) — at an array boundary the next byte is either the
// separator or the (distinct) terminator.
package parser

import (
	"datamaran/internal/chars"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// Value is the parse tree of one instantiated record against a template.
type Value struct {
	// Node is the template node this value instantiates.
	Node *template.Node
	// Start and End delimit the matched bytes (for all kinds).
	Start, End int
	// Children: for KStruct, one per template child; for KArray, one
	// group per repetition, each group being a KStruct-shaped Value
	// over the array body.
	Children []*Value
}

// Matcher matches one structure template. It precomputes the RT-CharSet
// and the per-array body nodes, and is safe for concurrent use.
type Matcher struct {
	st    *template.Node
	rtset chars.Set
	cols  int
	// bodies caches the KStruct wrapper over each array's children so
	// the hot match loop does not allocate one per attempt.
	bodies map[*template.Node]*template.Node
}

// NewMatcher builds a matcher for st.
func NewMatcher(st *template.Node) *Matcher {
	m := &Matcher{st: st, rtset: st.RTCharSet(), cols: st.NumFields(),
		bodies: map[*template.Node]*template.Node{}}
	var walk func(n *template.Node)
	walk = func(n *template.Node) {
		if n.Kind == template.KArray {
			m.bodies[n] = &template.Node{Kind: template.KStruct, Children: n.Children}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(st)
	return m
}

// Template returns the matcher's structure template.
func (m *Matcher) Template() *template.Node { return m.st }

// Columns returns the number of field columns of the template (fields
// inside an array body count once).
func (m *Matcher) Columns() int { return m.cols }

// Match attempts to match the template starting at data[pos]. On success
// it returns the parse tree and the end offset (exclusive).
func (m *Matcher) Match(data []byte, pos int) (*Value, int, bool) {
	v, end, ok, _ := m.match(m.st, data, pos)
	if !ok {
		return nil, 0, false
	}
	return v, end, true
}

// MatchTrunc is Match, additionally reporting whether a failed attempt ran
// off the end of data — i.e. whether appending more bytes could turn the
// failure into a match. The streaming engine uses this to defer decisions
// for lines near a shard boundary instead of finalizing them; on a full
// buffer the flag is irrelevant (no more bytes ever arrive).
func (m *Matcher) MatchTrunc(data []byte, pos int) (v *Value, end int, ok, truncated bool) {
	v, end, ok, truncated = m.match(m.st, data, pos)
	if !ok {
		return nil, 0, false, truncated
	}
	return v, end, true, false
}

func (m *Matcher) match(n *template.Node, data []byte, pos int) (*Value, int, bool, bool) {
	switch n.Kind {
	case template.KField:
		end := pos
		for end < len(data) && data[end] != '\n' && !m.rtset.Contains(data[end]) {
			end++
		}
		return &Value{Node: n, Start: pos, End: end}, end, true, false

	case template.KLiteral:
		lit := n.Lit
		avail := len(lit)
		if pos+avail > len(data) {
			avail = len(data) - pos
		}
		for i := 0; i < avail; i++ {
			if data[pos+i] != lit[i] {
				return nil, 0, false, false
			}
		}
		if avail < len(lit) {
			// Running off the buffer after matching every resident
			// byte is not a definitive mismatch.
			return nil, 0, false, true
		}
		return &Value{Node: n, Start: pos, End: pos + len(lit)}, pos + len(lit), true, false

	case template.KStruct:
		v := &Value{Node: n, Start: pos, Children: make([]*Value, 0, len(n.Children))}
		cur := pos
		for _, c := range n.Children {
			cv, end, ok, trunc := m.match(c, data, cur)
			if !ok {
				return nil, 0, false, trunc
			}
			v.Children = append(v.Children, cv)
			cur = end
		}
		v.End = cur
		return v, cur, true, false

	case template.KArray:
		v := &Value{Node: n, Start: pos}
		cur := pos
		body := m.bodies[n]
		for {
			gv, end, ok, trunc := m.match(body, data, cur)
			if !ok {
				return nil, 0, false, trunc
			}
			v.Children = append(v.Children, gv)
			cur = end
			if cur >= len(data) {
				return nil, 0, false, true
			}
			switch data[cur] {
			case n.Sep:
				cur++
			case n.Term:
				cur++
				v.End = cur
				return v, cur, true, false
			default:
				return nil, 0, false, false
			}
		}
	}
	return nil, 0, false, false
}

// FieldOcc is one field-value occurrence in a parsed record.
type FieldOcc struct {
	// Col is the column index of the field in the template (DFS order;
	// fields inside an array body share the column across repetitions).
	Col int
	// Rep is the repetition ordinal for fields inside arrays (0 for
	// fields outside any array; for nested arrays, the innermost
	// repetition index).
	Rep int
	// Start and End delimit the value bytes in the data.
	Start, End int
}

// Flatten lists every field occurrence of a parsed record in left-to-right
// order, with template column indices.
func (m *Matcher) Flatten(v *Value) []FieldOcc {
	out := make([]FieldOcc, 0, m.cols*2)
	var walk func(n *template.Node, v *Value, col int, rep int) int
	walk = func(n *template.Node, v *Value, col int, rep int) int {
		switch n.Kind {
		case template.KField:
			out = append(out, FieldOcc{Col: col, Rep: rep, Start: v.Start, End: v.End})
			return col + 1
		case template.KLiteral:
			return col
		case template.KStruct:
			c := col
			for i, ch := range n.Children {
				c = walk(ch, v.Children[i], c, rep)
			}
			return c
		case template.KArray:
			end := col
			for r, group := range v.Children {
				c := col
				for i, ch := range n.Children {
					c = walk(ch, group.Children[i], c, r)
				}
				end = c
			}
			if len(v.Children) == 0 {
				// No repetitions: still advance the column
				// counter past the body's fields.
				end = col + m.bodies[n].NumFields()
			}
			return end
		}
		return col
	}
	walk(m.st, v, 0, 0)
	return out
}

// Record is a matched record within a dataset.
type Record struct {
	// StartLine and EndLine delimit the record's lines [StartLine, EndLine).
	StartLine, EndLine int
	// Start and End delimit the record's bytes.
	Start, End int
	// Value is the parse tree.
	Value *Value
}

// ScanResult is the partition of a dataset into records and noise for one
// template.
type ScanResult struct {
	Records []Record
	// NoiseLines lists the indices of lines not covered by any record.
	NoiseLines []int
	// Coverage is the total byte length of all matched records — the
	// Cov(T,S) quantity of §4.2.
	Coverage int
	// FieldBytes is the total byte length of all field values, so
	// Coverage − FieldBytes is the non-field coverage of §4.2.
	FieldBytes int
}

// Scan greedily partitions the dataset into records and noise: at each
// line, the template is tried; on a match ending at a line boundary the
// covered lines become a record, otherwise the line is noise. This is the
// linear-time extraction pass of §4.4.1 (the O(Tdata) row of Table 3).
func (m *Matcher) Scan(lines *textio.Lines) *ScanResult {
	res := &ScanResult{}
	data := lines.Data()
	n := lines.N()
	lineOf := make(map[int]int, n) // byte offset -> line index
	for i := 0; i <= n; i++ {
		lineOf[lines.Start(i)] = i
	}
	i := 0
	for i < n {
		pos := lines.Start(i)
		v, end, ok := m.Match(data, pos)
		if ok {
			if endLine, aligned := lineOf[end]; aligned && endLine > i {
				rec := Record{StartLine: i, EndLine: endLine, Start: pos, End: end, Value: v}
				res.Records = append(res.Records, rec)
				res.Coverage += end - pos
				for _, f := range m.Flatten(v) {
					res.FieldBytes += f.End - f.Start
				}
				i = endLine
				continue
			}
		}
		res.NoiseLines = append(res.NoiseLines, i)
		i++
	}
	return res
}

// EndsWithNewline reports whether every complete match of the template
// necessarily ends with '\n' — required for a template to describe
// newline-delimited blocks (Definition 2.4).
func EndsWithNewline(st *template.Node) bool {
	switch st.Kind {
	case template.KLiteral:
		return len(st.Lit) > 0 && st.Lit[len(st.Lit)-1] == '\n'
	case template.KArray:
		return st.Term == '\n'
	case template.KStruct:
		if len(st.Children) == 0 {
			return false
		}
		return EndsWithNewline(st.Children[len(st.Children)-1])
	}
	return false
}
