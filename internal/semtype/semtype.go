// Package semtype implements the type-awareness extension the paper calls
// for in its §6.3 limitations: "for such domain-specific datatypes,
// Datamaran should be enhanced with type awareness (e.g., for phone
// numbers, IPs, URLs)".
//
// Datamaran's extraction is deliberately fine-grained — an IP address
// becomes four numeric columns split at the dots. The user study found
// the resulting Concatenate chains tedious. This package detects
// well-known semantic types over *runs of adjacent columns* (using the
// constant template literals between them) and proposes column merges,
// so "192.168.0.1" comes back as one ip column instead of four int
// columns.
package semtype

import (
	"strings"
)

// Kind is a recognized semantic type.
type Kind string

const (
	// KindIP is a dotted-quad IPv4 address.
	KindIP Kind = "ip"
	// KindTime is hh:mm or hh:mm:ss.
	KindTime Kind = "time"
	// KindDate is yyyy-mm-dd, dd/mm/yyyy or yyyy/mm/dd.
	KindDate Kind = "date"
	// KindVersion is a dotted version number (1.2 or 1.2.3...).
	KindVersion Kind = "version"
	// KindURLPath is a /-separated path.
	KindURLPath Kind = "urlpath"
	// KindEmail is local@domain.
	KindEmail Kind = "email"
	// KindUUID is 8-4-4-4-12 hex.
	KindUUID Kind = "uuid"
	// KindInt is a column of decimal integers (scalar classification).
	KindInt Kind = "int"
	// KindFloat is a column of decimal numbers, at least one fractional.
	KindFloat Kind = "float"
	// KindString is the scalar fallback: free text.
	KindString Kind = "string"
)

// Numeric reports whether values of this kind compare as numbers.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// ClassifyValues assigns one scalar kind to a column from its values —
// the per-column type surfaced into the record store's table schemas
// and used by the query engine to pick numeric vs lexicographic
// comparison. Unlike Detect (which reassembles runs of adjacent
// columns), this looks at a single column in isolation: int and float
// need every non-empty value to parse; the named single-column kinds
// (ip, time, date, uuid, ...) apply at the same ≥95% confidence bar as
// Detect; anything else is a string.
func ClassifyValues(values []string) Kind {
	nonEmpty := 0
	ints, floats := 0, 0
	for _, v := range values {
		if v == "" {
			continue
		}
		nonEmpty++
		switch classifyNumber(v) {
		case KindInt:
			ints++
		case KindFloat:
			floats++
		}
	}
	if nonEmpty == 0 {
		return KindString
	}
	if ints == nonEmpty {
		return KindInt
	}
	if ints+floats == nonEmpty {
		return KindFloat
	}
	for _, p := range []struct {
		kind  Kind
		valid func(string) bool
	}{
		{KindIP, validIPWhole},
		{KindUUID, validUUID},
		{KindTime, validTime},
		{KindDate, func(s string) bool { return validDateDash(s) || validDateSlash(s) }},
		{KindEmail, validEmail},
		{KindURLPath, validURLPath},
	} {
		if frac(values, p.valid) >= minConfidence {
			return p.kind
		}
	}
	return KindString
}

// MergeKinds combines the kinds of two value sets of one column (e.g.
// the segments of a table): equal kinds keep, int widens to float, and
// any other mix degrades to string.
func MergeKinds(a, b Kind) Kind {
	switch {
	case a == b:
		return a
	case a == KindInt && b == KindFloat, a == KindFloat && b == KindInt:
		return KindFloat
	default:
		return KindString
	}
}

// classifyNumber reports KindInt, KindFloat or KindString for one value.
func classifyNumber(s string) Kind {
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		s = s[1:]
	}
	if s == "" {
		return KindString
	}
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		if allDigits(s) && len(s) <= 18 {
			return KindInt
		}
		return KindString
	}
	intPart, fracPart := s[:dot], s[dot+1:]
	if intPart == "" && fracPart == "" {
		return KindString
	}
	if (intPart == "" || allDigits(intPart)) && (fracPart == "" || allDigits(fracPart)) &&
		len(intPart)+len(fracPart) <= 18 {
		return KindFloat
	}
	return KindString
}

// Column is one column's values as seen by the detector.
type Column struct {
	// Name is the column label.
	Name string
	// Values holds the cell values.
	Values []string
}

// Merge is a proposed reassembly of adjacent fine-grained columns into
// one semantic value.
type Merge struct {
	// Kind is the detected semantic type.
	Kind Kind
	// Columns are the adjacent column indices to merge, in order.
	Columns []int
	// Separators are the constant strings between merged columns
	// (len(Columns)-1 entries).
	Separators []string
	// Name suggests a column name for the merged value.
	Name string
	// Confidence is the fraction of rows whose merged value validates.
	Confidence float64
}

// minConfidence is the validation fraction required to propose a merge.
const minConfidence = 0.95

// Detect proposes merges over the table's columns, given the constant
// separator text between adjacent columns (from the structure template's
// literals; empty string when columns are not adjacent in the template).
func Detect(cols []Column, seps []string) []Merge {
	var out []Merge
	used := make([]bool, len(cols))
	// Try longer runs first so ip (4 cols) wins over version (2-3).
	type probe struct {
		kind  Kind
		width int
		sep   string
		valid func(string) bool
	}
	probes := []probe{
		{KindUUID, 5, "-", validUUID},
		{KindIP, 4, ".", validIP},
		{KindDate, 3, "-", validDateDash},
		{KindDate, 3, "/", validDateSlash},
		{KindTime, 3, ":", validTime},
		{KindVersion, 3, ".", validVersion},
		{KindEmail, 2, "@", validEmail},
		{KindTime, 2, ":", validTime},
		{KindVersion, 2, ".", validVersion},
	}
	for _, p := range probes {
		for start := 0; start+p.width <= len(cols); start++ {
			if anyUsed(used, start, p.width) {
				continue
			}
			if !sepsMatch(seps, start, p.width, p.sep) {
				continue
			}
			conf := validateRun(cols, start, p.width, p.sep, p.valid)
			if conf < minConfidence {
				continue
			}
			m := Merge{
				Kind:       p.kind,
				Confidence: conf,
				Name:       string(p.kind),
			}
			for i := 0; i < p.width; i++ {
				m.Columns = append(m.Columns, start+i)
				used[start+i] = true
				if i > 0 {
					m.Separators = append(m.Separators, p.sep)
				}
			}
			out = append(out, m)
		}
	}
	// Single-column detectors (no merge needed, but the type is named).
	for i, c := range cols {
		if used[i] || len(c.Values) == 0 {
			continue
		}
		if frac(c.Values, validIPWhole) >= minConfidence {
			out = append(out, Merge{Kind: KindIP, Columns: []int{i}, Name: "ip", Confidence: frac(c.Values, validIPWhole)})
			used[i] = true
			continue
		}
		if frac(c.Values, validURLPath) >= minConfidence {
			out = append(out, Merge{Kind: KindURLPath, Columns: []int{i}, Name: "urlpath", Confidence: frac(c.Values, validURLPath)})
			used[i] = true
		}
	}
	return out
}

// Apply merges the proposed runs in a table's rows, returning new column
// names and rows. Unmerged columns pass through unchanged.
func Apply(names []string, rows [][]string, merges []Merge) ([]string, [][]string) {
	merged := map[int]*Merge{} // leading column -> merge
	drop := map[int]bool{}
	for i := range merges {
		m := &merges[i]
		if len(m.Columns) < 2 {
			continue
		}
		merged[m.Columns[0]] = m
		for _, c := range m.Columns[1:] {
			drop[c] = true
		}
	}
	var outNames []string
	for i, n := range names {
		if drop[i] {
			continue
		}
		if m, ok := merged[i]; ok {
			outNames = append(outNames, m.Name)
		} else {
			outNames = append(outNames, n)
		}
	}
	outRows := make([][]string, len(rows))
	for r, row := range rows {
		var out []string
		for i := range row {
			if drop[i] {
				continue
			}
			if m, ok := merged[i]; ok {
				var b strings.Builder
				for j, c := range m.Columns {
					if j > 0 {
						b.WriteString(m.Separators[j-1])
					}
					b.WriteString(row[c])
				}
				out = append(out, b.String())
			} else {
				out = append(out, row[i])
			}
		}
		outRows[r] = out
	}
	return outNames, outRows
}

func anyUsed(used []bool, start, width int) bool {
	for i := 0; i < width; i++ {
		if used[start+i] {
			return true
		}
	}
	return false
}

// sepsMatch checks that the constant text between each adjacent pair of
// the run equals sep.
func sepsMatch(seps []string, start, width int, sep string) bool {
	for i := 0; i < width-1; i++ {
		idx := start + i
		if idx >= len(seps) || seps[idx] != sep {
			return false
		}
	}
	return true
}

// validateRun checks the joined values of the run against the validator.
func validateRun(cols []Column, start, width int, sep string, valid func(string) bool) float64 {
	n := len(cols[start].Values)
	if n == 0 {
		return 0
	}
	ok := 0
	for r := 0; r < n; r++ {
		var b strings.Builder
		for i := 0; i < width; i++ {
			if i > 0 {
				b.WriteString(sep)
			}
			if r >= len(cols[start+i].Values) {
				return 0
			}
			b.WriteString(cols[start+i].Values[r])
		}
		if valid(b.String()) {
			ok++
		}
	}
	return float64(ok) / float64(n)
}

func frac(values []string, valid func(string) bool) float64 {
	if len(values) == 0 {
		return 0
	}
	ok := 0
	for _, v := range values {
		if valid(v) {
			ok++
		}
	}
	return float64(ok) / float64(len(values))
}

// --- validators (hand-rolled; no regexp needed) ---

func splitParts(s string, sep byte, want int) ([]string, bool) {
	parts := strings.Split(s, string(sep))
	if len(parts) != want {
		return nil, false
	}
	return parts, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func digitsInRange(s string, lo, hi int) bool {
	if !allDigits(s) || len(s) > 4 {
		return false
	}
	v := 0
	for i := 0; i < len(s); i++ {
		v = v*10 + int(s[i]-'0')
	}
	return v >= lo && v <= hi
}

func validIP(s string) bool {
	parts, ok := splitParts(s, '.', 4)
	if !ok {
		return false
	}
	for _, p := range parts {
		if !digitsInRange(p, 0, 255) {
			return false
		}
	}
	return true
}

func validIPWhole(s string) bool { return validIP(s) }

func validTime(s string) bool {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return false
	}
	if !digitsInRange(parts[0], 0, 23) {
		return false
	}
	for _, p := range parts[1:] {
		if len(p) != 2 || !digitsInRange(p, 0, 59) {
			return false
		}
	}
	return true
}

func validDateDash(s string) bool {
	parts, ok := splitParts(s, '-', 3)
	if !ok {
		return false
	}
	return len(parts[0]) == 4 && allDigits(parts[0]) &&
		digitsInRange(parts[1], 1, 12) && digitsInRange(parts[2], 1, 31)
}

func validDateSlash(s string) bool {
	parts, ok := splitParts(s, '/', 3)
	if !ok {
		return false
	}
	// dd/mm/yyyy or yyyy/mm/dd
	if len(parts[0]) == 4 {
		return allDigits(parts[0]) && digitsInRange(parts[1], 1, 12) && digitsInRange(parts[2], 1, 31)
	}
	return digitsInRange(parts[0], 1, 31) && digitsInRange(parts[1], 1, 12) &&
		len(parts[2]) == 4 && allDigits(parts[2])
}

func validVersion(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) < 2 || len(parts) > 4 {
		return false
	}
	for _, p := range parts {
		if !allDigits(p) || len(p) > 4 {
			return false
		}
	}
	return true
}

func validEmail(s string) bool {
	at := strings.IndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return false
	}
	domain := s[at+1:]
	return strings.Contains(domain, ".") && !strings.ContainsAny(s, " \t")
}

func validUUID(s string) bool {
	parts := strings.Split(s, "-")
	if len(parts) != 5 {
		return false
	}
	want := []int{8, 4, 4, 4, 12}
	for i, p := range parts {
		if len(p) != want[i] || !allHex(p) {
			return false
		}
	}
	return true
}

func allHex(s string) bool {
	for i := 0; i < len(s); i++ {
		b := s[i]
		if !(b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F') {
			return false
		}
	}
	return len(s) > 0
}

func validURLPath(s string) bool {
	return len(s) > 1 && s[0] == '/' && !strings.ContainsAny(s, " \t") &&
		strings.Count(s, "/") >= 1
}
