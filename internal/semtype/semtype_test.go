package semtype

import (
	"fmt"
	"strings"
	"testing"
)

func TestValidIP(t *testing.T) {
	good := []string{"0.0.0.0", "192.168.0.1", "255.255.255.255"}
	bad := []string{"256.1.1.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "1..2.3", ""}
	for _, s := range good {
		if !validIP(s) {
			t.Errorf("validIP(%q) = false", s)
		}
	}
	for _, s := range bad {
		if validIP(s) {
			t.Errorf("validIP(%q) = true", s)
		}
	}
}

func TestValidTime(t *testing.T) {
	good := []string{"00:00", "23:59", "10:11:12", "9:05"}
	bad := []string{"24:00", "10:60", "10:1", "10", "aa:bb", "10:11:12:13"}
	for _, s := range good {
		if !validTime(s) {
			t.Errorf("validTime(%q) = false", s)
		}
	}
	for _, s := range bad {
		if validTime(s) {
			t.Errorf("validTime(%q) = true", s)
		}
	}
}

func TestValidDate(t *testing.T) {
	if !validDateDash("2016-03-05") || validDateDash("2016-13-05") || validDateDash("16-03-05") {
		t.Error("dash date validation wrong")
	}
	if !validDateSlash("05/03/2016") || !validDateSlash("2016/03/05") || validDateSlash("2016/33/05") {
		t.Error("slash date validation wrong")
	}
}

func TestValidVersionEmailUUIDPath(t *testing.T) {
	if !validVersion("1.2.3") || !validVersion("10.4") || validVersion("1") || validVersion("a.b") {
		t.Error("version validation wrong")
	}
	if !validEmail("a@b.com") || validEmail("@b.com") || validEmail("a@") || validEmail("a b@c.d") {
		t.Error("email validation wrong")
	}
	if !validUUID("12345678-1234-1234-1234-123456789abc") || validUUID("xyz") {
		t.Error("uuid validation wrong")
	}
	if !validURLPath("/a/b.html") || validURLPath("a/b") || validURLPath("/a b") {
		t.Error("urlpath validation wrong")
	}
}

// ipCols builds four adjacent int columns that join into IPs.
func ipCols(n int) ([]Column, []string) {
	cols := make([]Column, 4)
	for i := range cols {
		cols[i].Name = fmt.Sprintf("f%d", i)
	}
	for r := 0; r < n; r++ {
		cols[0].Values = append(cols[0].Values, fmt.Sprintf("%d", 10+r%200))
		cols[1].Values = append(cols[1].Values, fmt.Sprintf("%d", r%256))
		cols[2].Values = append(cols[2].Values, fmt.Sprintf("%d", (r*3)%256))
		cols[3].Values = append(cols[3].Values, fmt.Sprintf("%d", 1+r%250))
	}
	return cols, []string{".", ".", "."}
}

func TestDetectIPMerge(t *testing.T) {
	cols, seps := ipCols(50)
	merges := Detect(cols, seps)
	if len(merges) != 1 {
		t.Fatalf("merges = %d, want 1: %+v", len(merges), merges)
	}
	m := merges[0]
	if m.Kind != KindIP || len(m.Columns) != 4 {
		t.Fatalf("merge = %+v", m)
	}
	if m.Confidence < 0.99 {
		t.Fatalf("confidence = %v", m.Confidence)
	}
}

func TestDetectRejectsWrongSeparators(t *testing.T) {
	cols, _ := ipCols(50)
	merges := Detect(cols, []string{",", ",", ","})
	for _, m := range merges {
		if m.Kind == KindIP {
			t.Fatal("IP merge proposed despite comma separators")
		}
	}
}

func TestDetectRejectsOutOfRange(t *testing.T) {
	cols, seps := ipCols(50)
	// Corrupt one column: values above 255.
	for i := range cols[1].Values {
		cols[1].Values[i] = "999"
	}
	for _, m := range Detect(cols, seps) {
		if m.Kind == KindIP {
			t.Fatal("IP merge proposed for out-of-range octets")
		}
	}
}

func TestDetectTimeAndDate(t *testing.T) {
	cols := []Column{
		{Name: "h"}, {Name: "m"}, {Name: "s"},
		{Name: "y"}, {Name: "mo"}, {Name: "d"},
	}
	for r := 0; r < 40; r++ {
		cols[0].Values = append(cols[0].Values, fmt.Sprintf("%02d", r%24))
		cols[1].Values = append(cols[1].Values, fmt.Sprintf("%02d", r%60))
		cols[2].Values = append(cols[2].Values, fmt.Sprintf("%02d", (r*7)%60))
		cols[3].Values = append(cols[3].Values, "2016")
		cols[4].Values = append(cols[4].Values, fmt.Sprintf("%02d", 1+r%12))
		cols[5].Values = append(cols[5].Values, fmt.Sprintf("%02d", 1+r%28))
	}
	seps := []string{":", ":", "", "-", "-"}
	merges := Detect(cols, seps)
	kinds := map[Kind]bool{}
	for _, m := range merges {
		kinds[m.Kind] = true
	}
	if !kinds[KindTime] || !kinds[KindDate] {
		t.Fatalf("kinds = %v, want time and date", kinds)
	}
}

func TestDetectSingleColumnIP(t *testing.T) {
	cols := []Column{{Name: "addr"}}
	for r := 0; r < 30; r++ {
		cols[0].Values = append(cols[0].Values, fmt.Sprintf("10.0.%d.%d", r%256, 1+r%250))
	}
	merges := Detect(cols, nil)
	if len(merges) != 1 || merges[0].Kind != KindIP || len(merges[0].Columns) != 1 {
		t.Fatalf("merges = %+v", merges)
	}
}

func TestDetectNoFalsePositivesOnText(t *testing.T) {
	cols := []Column{{Name: "a"}, {Name: "b"}}
	for r := 0; r < 30; r++ {
		cols[0].Values = append(cols[0].Values, "hello")
		cols[1].Values = append(cols[1].Values, "world")
	}
	if merges := Detect(cols, []string{" "}); len(merges) != 0 {
		t.Fatalf("unexpected merges on text: %+v", merges)
	}
}

func TestApplyMergesRows(t *testing.T) {
	cols, seps := ipCols(5)
	merges := Detect(cols, seps)
	names := []string{"f0", "f1", "f2", "f3"}
	rows := make([][]string, 5)
	for r := 0; r < 5; r++ {
		rows[r] = []string{cols[0].Values[r], cols[1].Values[r], cols[2].Values[r], cols[3].Values[r]}
	}
	outNames, outRows := Apply(names, rows, merges)
	if len(outNames) != 1 || outNames[0] != "ip" {
		t.Fatalf("names = %v", outNames)
	}
	want := strings.Join(rows[0], ".")
	if outRows[0][0] != want {
		t.Fatalf("row 0 = %v, want %q", outRows[0], want)
	}
}

func TestApplyPreservesUnmerged(t *testing.T) {
	cols, seps := ipCols(5)
	cols = append(cols, Column{Name: "status", Values: []string{"a", "b", "c", "d", "e"}})
	seps = append(seps, " ")
	merges := Detect(cols, seps)
	names := []string{"f0", "f1", "f2", "f3", "status"}
	rows := make([][]string, 5)
	for r := 0; r < 5; r++ {
		rows[r] = []string{cols[0].Values[r], cols[1].Values[r], cols[2].Values[r], cols[3].Values[r], cols[4].Values[r]}
	}
	outNames, outRows := Apply(names, rows, merges)
	if len(outNames) != 2 || outNames[1] != "status" {
		t.Fatalf("names = %v", outNames)
	}
	if outRows[2][1] != "c" {
		t.Fatalf("rows = %v", outRows[2])
	}
}

func TestApplyNoMergesIdentity(t *testing.T) {
	names := []string{"a", "b"}
	rows := [][]string{{"1", "2"}}
	outNames, outRows := Apply(names, rows, nil)
	if len(outNames) != 2 || outRows[0][1] != "2" {
		t.Fatal("identity Apply broken")
	}
}

func TestUUIDMergeBeatsShorterProbes(t *testing.T) {
	cols := make([]Column, 5)
	widths := []int{8, 4, 4, 4, 12}
	for r := 0; r < 20; r++ {
		for i, w := range widths {
			cols[i].Values = append(cols[i].Values, strings.Repeat("a", w))
		}
	}
	seps := []string{"-", "-", "-", "-"}
	merges := Detect(cols, seps)
	if len(merges) != 1 || merges[0].Kind != KindUUID {
		t.Fatalf("merges = %+v, want one uuid", merges)
	}
}
