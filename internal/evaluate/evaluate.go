// Package evaluate implements the paper's extraction-success criteria
// (§5.1, formalized in §9.3): an extraction is successful iff
//
//	(a) all record boundaries and record types are correctly identified,
//	and
//	(b) every intended extraction target can be reconstructed by
//	    concatenating complete extracted field values (plus constant
//	    strings — the Append/Trim/Concat vocabulary of §9.3).
//
// Criterion (b) reduces to an alignment test: every extracted field that
// overlaps a target span must lie entirely within it, and at least one
// field must overlap (otherwise the varying target sits inside constant
// formatting and cannot be rebuilt). Targets "extracted together" with
// surrounding varying content fail, exactly as in Figure 13's
// unsuccessful example.
package evaluate

import (
	"fmt"

	"datamaran/internal/core"
)

// Span is a byte range [Start, End) in the original dataset.
type Span struct {
	Start, End int
}

// TruthRecord is one ground-truth record.
type TruthRecord struct {
	// Type is the ground-truth record type id.
	Type int
	// StartLine and EndLine delimit the record's lines [StartLine, EndLine).
	StartLine, EndLine int
	// Targets are the intended extraction targets (§5.1), as byte spans.
	Targets []Span
}

// ExtractedRecord is the neutral form of one extracted record, adaptable
// from Datamaran or any baseline.
type ExtractedRecord struct {
	Type               int
	StartLine, EndLine int
	// Fields are the byte spans of the extracted field values, in
	// record order.
	Fields []Span
}

// Extraction is a neutral extraction result.
type Extraction struct {
	Records []ExtractedRecord
}

// FromCore adapts a core.Result.
func FromCore(res *core.Result) Extraction {
	var ex Extraction
	for _, r := range res.Records {
		er := ExtractedRecord{Type: r.TypeID, StartLine: r.StartLine, EndLine: r.EndLine}
		for _, f := range r.Fields {
			er.Fields = append(er.Fields, Span{Start: f.Start, End: f.End})
		}
		ex.Records = append(ex.Records, er)
	}
	return ex
}

// Report is the outcome of evaluating one extraction.
type Report struct {
	// Success is the overall §5.1 verdict.
	Success bool
	// BoundariesOK: every truth record is matched by exactly one
	// extracted record with identical line span.
	BoundariesOK bool
	// TypesOK: the truth-type → extracted-type mapping is consistent
	// and injective.
	TypesOK bool
	// TargetsOK: every intended target passes the alignment test.
	TargetsOK bool
	// MatchedRecords counts truth records with correct boundaries.
	MatchedRecords int
	// TotalRecords counts truth records.
	TotalRecords int
	// FailedTargets counts targets failing the alignment test.
	FailedTargets int
	// Detail holds the first failure explanation, for diagnostics.
	Detail string
}

// Evaluate checks an extraction against ground truth.
func Evaluate(truth []TruthRecord, ex Extraction) Report {
	rep := Report{TotalRecords: len(truth), BoundariesOK: true, TypesOK: true, TargetsOK: true}
	// Index extracted records by start line.
	byStart := make(map[int]*ExtractedRecord, len(ex.Records))
	for i := range ex.Records {
		byStart[ex.Records[i].StartLine] = &ex.Records[i]
	}
	typeMap := map[int]int{}    // truth type -> extracted type
	typeMapRev := map[int]int{} // extracted type -> truth type

	for _, tr := range truth {
		er, ok := byStart[tr.StartLine]
		if !ok || er.EndLine != tr.EndLine {
			rep.BoundariesOK = false
			if rep.Detail == "" {
				rep.Detail = fmt.Sprintf("record at line %d: boundary not identified", tr.StartLine)
			}
			continue
		}
		rep.MatchedRecords++
		if mapped, seen := typeMap[tr.Type]; seen && mapped != er.Type {
			rep.TypesOK = false
			if rep.Detail == "" {
				rep.Detail = fmt.Sprintf("truth type %d split across extracted types %d and %d", tr.Type, mapped, er.Type)
			}
		} else if !seen {
			if rev, dup := typeMapRev[er.Type]; dup && rev != tr.Type {
				rep.TypesOK = false
				if rep.Detail == "" {
					rep.Detail = fmt.Sprintf("extracted type %d merges truth types %d and %d", er.Type, rev, tr.Type)
				}
			}
			typeMap[tr.Type] = er.Type
			typeMapRev[er.Type] = tr.Type
		}
		for _, tgt := range tr.Targets {
			if !targetAligned(tgt, er.Fields) {
				rep.TargetsOK = false
				rep.FailedTargets++
				if rep.Detail == "" {
					rep.Detail = fmt.Sprintf("target [%d,%d) not reconstructible", tgt.Start, tgt.End)
				}
			}
		}
	}
	if rep.MatchedRecords < rep.TotalRecords {
		rep.BoundariesOK = false
	}
	rep.Success = rep.BoundariesOK && rep.TypesOK && rep.TargetsOK && rep.TotalRecords > 0
	return rep
}

// targetAligned implements the §9.3 reconstruction test for one target:
// every overlapping field is contained in the target, and at least one
// field overlaps.
func targetAligned(tgt Span, fields []Span) bool {
	overlaps := 0
	for _, f := range fields {
		if f.End <= tgt.Start || f.Start >= tgt.End {
			continue // disjoint
		}
		if f.Start < tgt.Start || f.End > tgt.End {
			return false // field straddles the target boundary
		}
		overlaps++
	}
	return overlaps > 0
}

// Accuracy summarizes many dataset evaluations as the fraction successful.
func Accuracy(reports []Report) float64 {
	if len(reports) == 0 {
		return 0
	}
	ok := 0
	for _, r := range reports {
		if r.Success {
			ok++
		}
	}
	return float64(ok) / float64(len(reports))
}
