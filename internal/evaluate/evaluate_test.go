package evaluate

import (
	"fmt"
	"strings"
	"testing"

	"datamaran/internal/core"
)

func TestTargetAligned(t *testing.T) {
	cases := []struct {
		name   string
		tgt    Span
		fields []Span
		want   bool
	}{
		{"exact single field", Span{10, 20}, []Span{{10, 20}}, true},
		{"two fields inside", Span{10, 20}, []Span{{10, 14}, {15, 20}}, true},
		{"field straddles left edge", Span{10, 20}, []Span{{8, 14}}, false},
		{"field straddles right edge", Span{10, 20}, []Span{{15, 25}}, false},
		{"field swallows target", Span{10, 20}, []Span{{5, 25}}, false},
		{"no overlap at all", Span{10, 20}, []Span{{0, 5}, {25, 30}}, false},
		{"disjoint plus contained", Span{10, 20}, []Span{{0, 5}, {12, 18}}, true},
		{"field touching left boundary outside", Span{10, 20}, []Span{{5, 10}, {10, 20}}, true},
	}
	for _, c := range cases {
		if got := targetAligned(c.tgt, c.fields); got != c.want {
			t.Errorf("%s: targetAligned = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEvaluatePerfectExtraction(t *testing.T) {
	truth := []TruthRecord{
		{Type: 0, StartLine: 0, EndLine: 1, Targets: []Span{{0, 5}}},
		{Type: 0, StartLine: 1, EndLine: 2, Targets: []Span{{10, 15}}},
	}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1, Fields: []Span{{0, 5}, {6, 9}}},
		{Type: 0, StartLine: 1, EndLine: 2, Fields: []Span{{10, 15}, {16, 19}}},
	}}
	rep := Evaluate(truth, ex)
	if !rep.Success {
		t.Fatalf("expected success: %+v", rep)
	}
	if rep.MatchedRecords != 2 {
		t.Fatalf("MatchedRecords = %d", rep.MatchedRecords)
	}
}

func TestEvaluateMissedBoundary(t *testing.T) {
	truth := []TruthRecord{{Type: 0, StartLine: 0, EndLine: 2}}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1}, // split the 2-line record
	}}
	rep := Evaluate(truth, ex)
	if rep.Success || rep.BoundariesOK {
		t.Fatalf("expected boundary failure: %+v", rep)
	}
}

func TestEvaluateTypeSplit(t *testing.T) {
	// One truth type extracted as two different type ids.
	truth := []TruthRecord{
		{Type: 0, StartLine: 0, EndLine: 1},
		{Type: 0, StartLine: 1, EndLine: 2},
	}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1},
		{Type: 1, StartLine: 1, EndLine: 2},
	}}
	rep := Evaluate(truth, ex)
	if rep.TypesOK || rep.Success {
		t.Fatalf("expected type failure: %+v", rep)
	}
}

func TestEvaluateTypeMerge(t *testing.T) {
	// Two truth types extracted as one type id.
	truth := []TruthRecord{
		{Type: 0, StartLine: 0, EndLine: 1},
		{Type: 1, StartLine: 1, EndLine: 2},
	}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 5, StartLine: 0, EndLine: 1},
		{Type: 5, StartLine: 1, EndLine: 2},
	}}
	rep := Evaluate(truth, ex)
	if rep.TypesOK || rep.Success {
		t.Fatalf("expected type-merge failure: %+v", rep)
	}
}

func TestEvaluateTypeRelabelingAccepted(t *testing.T) {
	// Extracted ids need not equal truth ids — only the mapping must be
	// consistent and injective.
	truth := []TruthRecord{
		{Type: 0, StartLine: 0, EndLine: 1},
		{Type: 1, StartLine: 1, EndLine: 2},
		{Type: 0, StartLine: 2, EndLine: 3},
	}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 7, StartLine: 0, EndLine: 1},
		{Type: 3, StartLine: 1, EndLine: 2},
		{Type: 7, StartLine: 2, EndLine: 3},
	}}
	rep := Evaluate(truth, ex)
	if !rep.Success {
		t.Fatalf("relabeled types should pass: %+v", rep)
	}
}

func TestEvaluateTargetExtractedTogether(t *testing.T) {
	// Figure 13's unsuccessful case: time and IP extracted as one field.
	truth := []TruthRecord{{Type: 0, StartLine: 0, EndLine: 1,
		Targets: []Span{{1, 9}, {11, 20}}}}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1, Fields: []Span{{1, 20}}},
	}}
	rep := Evaluate(truth, ex)
	if rep.TargetsOK || rep.Success {
		t.Fatalf("merged-targets extraction should fail: %+v", rep)
	}
	if rep.FailedTargets != 2 {
		t.Fatalf("FailedTargets = %d, want 2", rep.FailedTargets)
	}
}

func TestEvaluateFineGrainedSplitAccepted(t *testing.T) {
	// Figure 13's successful case: targets split into several fields
	// reconstructible by concatenation.
	truth := []TruthRecord{{Type: 0, StartLine: 0, EndLine: 1,
		Targets: []Span{{1, 9}}}}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1,
			Fields: []Span{{1, 3}, {4, 6}, {7, 9}, {11, 14}}},
	}}
	rep := Evaluate(truth, ex)
	if !rep.Success {
		t.Fatalf("fine-grained extraction should pass: %+v", rep)
	}
}

func TestEvaluateEmptyTruthFails(t *testing.T) {
	rep := Evaluate(nil, Extraction{})
	if rep.Success {
		t.Fatal("no truth records should not count as success")
	}
}

func TestEvaluateExtraRecordsIgnored(t *testing.T) {
	// Extra extracted records (e.g. noise matched by accident) do not
	// break correctness as long as all truth records are found.
	truth := []TruthRecord{{Type: 0, StartLine: 0, EndLine: 1}}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1},
		{Type: 0, StartLine: 5, EndLine: 6},
	}}
	if rep := Evaluate(truth, ex); !rep.Success {
		t.Fatalf("extra records should be tolerated: %+v", rep)
	}
}

func TestAccuracy(t *testing.T) {
	reports := []Report{{Success: true}, {Success: false}, {Success: true}, {Success: true}}
	if got := Accuracy(reports); got != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
	if got := Accuracy(nil); got != 0 {
		t.Fatalf("Accuracy(nil) = %v", got)
	}
}

func TestFromCoreAndEndToEnd(t *testing.T) {
	// Full pipeline integration: build a dataset with known truth and
	// verify Evaluate passes on the real extraction.
	var b strings.Builder
	var truth []TruthRecord
	pos := 0
	for i := 0; i < 120; i++ {
		line := fmt.Sprintf("[%02d:%02d:%02d] %d.%d.%d.%d\n", i%24, i%60, (i*7)%60, i%256, (i*3)%256, (i*5)%256, (i*11)%256)
		// targets: the time (chars 1..9) and the IP (after "] ").
		timeSpan := Span{pos + 1, pos + 9}
		ipStart := pos + 11
		ipEnd := pos + len(line) - 1
		truth = append(truth, TruthRecord{
			Type: 0, StartLine: i, EndLine: i + 1,
			Targets: []Span{timeSpan, {ipStart, ipEnd}},
		})
		b.WriteString(line)
		pos += len(line)
	}
	res, err := core.Extract([]byte(b.String()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(truth, FromCore(res))
	if !rep.Success {
		t.Fatalf("end-to-end evaluation failed: %+v\nstructures: %v", rep, res.Structures[0].Template)
	}
}

func TestEvaluateDuplicateStartLinesLastWins(t *testing.T) {
	// Two extracted records claiming the same start line: the index
	// keeps one; evaluation must not panic and must judge consistently.
	truth := []TruthRecord{{Type: 0, StartLine: 0, EndLine: 1}}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1},
		{Type: 1, StartLine: 0, EndLine: 2},
	}}
	rep := Evaluate(truth, ex)
	_ = rep // either verdict is acceptable; the call must be total
}

func TestEvaluateTargetsWithEmptyFields(t *testing.T) {
	// Zero-length extracted fields must not satisfy target overlap.
	truth := []TruthRecord{{Type: 0, StartLine: 0, EndLine: 1,
		Targets: []Span{{5, 10}}}}
	ex := Extraction{Records: []ExtractedRecord{
		{Type: 0, StartLine: 0, EndLine: 1, Fields: []Span{{7, 7}, {5, 10}}},
	}}
	if rep := Evaluate(truth, ex); !rep.Success {
		t.Fatalf("empty field should not break containment: %+v", rep)
	}
}

func TestEvaluateManyTypesInjective(t *testing.T) {
	var truth []TruthRecord
	var ex Extraction
	for i := 0; i < 12; i++ {
		truth = append(truth, TruthRecord{Type: i % 4, StartLine: i, EndLine: i + 1})
		ex.Records = append(ex.Records, ExtractedRecord{Type: 10 + i%4, StartLine: i, EndLine: i + 1})
	}
	if rep := Evaluate(truth, ex); !rep.Success {
		t.Fatalf("4-type bijection should pass: %+v", rep)
	}
}
