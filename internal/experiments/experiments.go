// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and §6) on the synthetic dataset substrate. Each
// experiment prints rows in the shape the paper reports and returns
// structured results for programmatic checks.
//
// Absolute numbers differ from the paper (different hardware, language,
// and synthetic data); the comparisons that matter — who wins, by what
// rough factor, and where behavior changes — are the reproduction targets
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"time"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/evaluate"
	"datamaran/internal/generation"
	"datamaran/internal/recordbreaker"
)

// Outcome is the result of running one system on one dataset.
type Outcome struct {
	Dataset string
	Label   datagen.Label
	Success bool
	Detail  string
	Elapsed time.Duration
	Timing  core.Timing
	Types   int
}

// runDatamaran extracts with the given options and evaluates success.
func runDatamaran(d *datagen.Dataset, opts core.Options) Outcome {
	t0 := time.Now()
	res, err := core.Extract(d.Data, opts)
	out := Outcome{Dataset: d.Name, Label: d.Label, Elapsed: time.Since(t0)}
	if err != nil {
		out.Detail = err.Error()
		return out
	}
	out.Timing = res.Timing
	out.Types = len(res.Structures)
	rep := evaluate.Evaluate(d.Truth, evaluate.FromCore(res))
	out.Success = rep.Success
	out.Detail = rep.Detail
	return out
}

// runRecordBreaker runs the baseline and evaluates success.
func runRecordBreaker(d *datagen.Dataset) Outcome {
	t0 := time.Now()
	ex := recordbreaker.Extract(d.Data, recordbreaker.Config{})
	out := Outcome{Dataset: d.Name, Label: d.Label, Elapsed: time.Since(t0)}
	rep := evaluate.Evaluate(d.Truth, ex)
	out.Success = rep.Success
	out.Detail = rep.Detail
	return out
}

// Accuracy25 reproduces §5.2.1: Datamaran on the 25 manually collected
// dataset analogs with default parameters. The paper reports 25/25.
func Accuracy25(scale float64, w io.Writer) []Outcome {
	datasets := datagen.ManualDatasets(scale)
	outcomes := make([]Outcome, 0, len(datasets))
	ok := 0
	fmt.Fprintf(w, "== §5.2.1: extraction accuracy on the 25 manually collected datasets ==\n")
	fmt.Fprintf(w, "%-28s %-8s %-10s %s\n", "dataset", "result", "time", "detail")
	for _, d := range datasets {
		o := runDatamaran(d, core.Options{})
		outcomes = append(outcomes, o)
		status := "FAIL"
		if o.Success {
			status = "OK"
			ok++
		}
		fmt.Fprintf(w, "%-28s %-8s %-10s %s\n", o.Dataset, status, o.Elapsed.Round(time.Millisecond), o.Detail)
	}
	fmt.Fprintf(w, "successful: %d/%d (paper: 25/25)\n\n", ok, len(datasets))
	return outcomes
}

// CategoryStats aggregates success per corpus category.
type CategoryStats struct {
	OK, Total int
}

// Frac returns the success fraction.
func (c CategoryStats) Frac() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.OK) / float64(c.Total)
}

// Fig17Result holds the per-system, per-category accuracies of Fig 17b.
type Fig17Result struct {
	Exhaustive    map[datagen.Label]CategoryStats
	Greedy        map[datagen.Label]CategoryStats
	RecordBreaker map[datagen.Label]CategoryStats
}

// Overall returns a system's accuracy over structured categories.
func Overall(m map[datagen.Label]CategoryStats) float64 {
	ok, total := 0, 0
	for lbl, s := range m {
		if lbl == datagen.NS {
			continue
		}
		ok += s.OK
		total += s.Total
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// Fig17a reproduces the corpus-characteristics pie of Figure 17a.
func Fig17a(w io.Writer) map[datagen.Label]int {
	corpus := datagen.GitHubCorpus(42)
	counts := map[datagen.Label]int{}
	for _, d := range corpus {
		counts[d.Label]++
	}
	fmt.Fprintf(w, "== Fig 17a: GitHub corpus characteristics (n=%d) ==\n", len(corpus))
	fmt.Fprintf(w, "%-8s %5s   (paper)\n", "label", "count")
	paper := map[datagen.Label]int{datagen.SNI: 44, datagen.SI: 14, datagen.MNI: 13, datagen.MI: 18, datagen.NS: 11}
	for _, lbl := range []datagen.Label{datagen.SNI, datagen.SI, datagen.MNI, datagen.MI, datagen.NS} {
		fmt.Fprintf(w, "%-8s %5d   (%d)\n", lbl, counts[lbl], paper[lbl])
	}
	fmt.Fprintf(w, "multi-line: %d%% (paper 31%%), interleaved: %d%% (paper 32%%), structured: %d%% (paper 89%%)\n\n",
		counts[datagen.MNI]+counts[datagen.MI], counts[datagen.SI]+counts[datagen.MI], 100-counts[datagen.NS])
	return counts
}

// Fig17b reproduces the accuracy comparison of Figure 17b: Datamaran
// (exhaustive and greedy) versus RecordBreaker on the 100-file corpus.
// maxPerLabel limits datasets per category (0 = all) for quick runs.
func Fig17b(maxPerLabel int, w io.Writer) Fig17Result {
	corpus := datagen.GitHubCorpus(42)
	res := Fig17Result{
		Exhaustive:    map[datagen.Label]CategoryStats{},
		Greedy:        map[datagen.Label]CategoryStats{},
		RecordBreaker: map[datagen.Label]CategoryStats{},
	}
	perLabel := map[datagen.Label]int{}
	for _, d := range corpus {
		if d.Label == datagen.NS {
			continue // excluded from accuracy, as in the paper
		}
		if maxPerLabel > 0 && perLabel[d.Label] >= maxPerLabel {
			continue
		}
		perLabel[d.Label]++
		ex := runDatamaran(d, core.Options{Search: generation.Exhaustive})
		gr := runDatamaran(d, core.Options{Search: generation.Greedy})
		rb := runRecordBreaker(d)
		bump(res.Exhaustive, d.Label, ex.Success)
		bump(res.Greedy, d.Label, gr.Success)
		bump(res.RecordBreaker, d.Label, rb.Success)
	}
	fmt.Fprintf(w, "== Fig 17b: extraction accuracy on the GitHub corpus ==\n")
	fmt.Fprintf(w, "%-8s %-22s %-22s %-22s\n", "label", "Datamaran(exhaustive)", "Datamaran(greedy)", "RecordBreaker")
	paperEx := map[datagen.Label]string{datagen.SNI: "100%", datagen.SI: "85.7%", datagen.MNI: "92.3%", datagen.MI: "94.4%"}
	paperGr := map[datagen.Label]string{datagen.SNI: "100%", datagen.SI: "78.6%", datagen.MNI: "76.9%", datagen.MI: "83.3%"}
	paperRB := map[datagen.Label]string{datagen.SNI: "56.8%", datagen.SI: "7.1%", datagen.MNI: "0%", datagen.MI: "0%"}
	for _, lbl := range []datagen.Label{datagen.SNI, datagen.SI, datagen.MNI, datagen.MI} {
		fmt.Fprintf(w, "%-8s %5.1f%% (paper %-6s)  %5.1f%% (paper %-6s)  %5.1f%% (paper %-6s)\n",
			lbl,
			100*res.Exhaustive[lbl].Frac(), paperEx[lbl],
			100*res.Greedy[lbl].Frac(), paperGr[lbl],
			100*res.RecordBreaker[lbl].Frac(), paperRB[lbl])
	}
	fmt.Fprintf(w, "overall   %5.1f%% (paper 95.5%%)   %5.1f%% (paper 89.9%%)   %5.1f%% (paper 29.2%%)\n\n",
		100*Overall(res.Exhaustive), 100*Overall(res.Greedy), 100*Overall(res.RecordBreaker))
	return res
}

func bump(m map[datagen.Label]CategoryStats, lbl datagen.Label, ok bool) {
	s := m[lbl]
	s.Total++
	if ok {
		s.OK++
	}
	m[lbl] = s
}
