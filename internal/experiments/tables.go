package experiments

import (
	"fmt"
	"io"

	"datamaran/internal/datagen"
)

// Table1 prints the assumption-comparison chart of Table 1.
func Table1(w io.Writer) {
	fmt.Fprintf(w, "== Table 1: assumption comparison ==\n")
	fmt.Fprintf(w, "%-22s %-14s %-10s\n", "assumption", "RecordBreaker", "Datamaran")
	rows := [][3]string{
		{"Coverage Threshold", "No", "Yes"},
		{"Non-overlapping", "Yes", "Yes"},
		{"Structural Form", "Yes", "Yes"},
		{"Boundary", "Yes", "No"},
		{"Tokenization", "Yes", "No"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-14s %-10s\n", r[0], r[1], r[2])
	}
	fmt.Fprintf(w, "\n")
}

// Table5 prints the characteristics of the 25 manual dataset analogs.
func Table5(scale float64, w io.Writer) {
	fmt.Fprintf(w, "== Table 5: manually collected dataset analogs (scale %.2f) ==\n", scale)
	fmt.Fprintf(w, "%-28s %10s %12s %14s\n", "data source", "size (MB)", "# rec types", "max rec span")
	for _, d := range datagen.ManualDatasets(scale) {
		fmt.Fprintf(w, "%-28s %10.3f %12d %14d\n", d.Name, d.SizeMB(), d.NumRecTypes, d.MaxRecSpan)
	}
	fmt.Fprintf(w, "\n")
}
