package experiments

import (
	"fmt"
	"io"
	"time"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/generation"
	"datamaran/internal/parser"
	"datamaran/internal/refine"
	"datamaran/internal/score"
	"datamaran/internal/textio"
)

// SizePoint is one point of Figure 14a.
type SizePoint struct {
	MB         float64
	Exhaustive time.Duration
	Greedy     time.Duration
	// ExtractFrac is the fraction of exhaustive-run time spent in the
	// LL(1) extraction pass (the paper observes extraction dominating
	// for large datasets).
	ExtractFrac float64
}

// Fig14aSize reproduces Figure 14a: running time versus dataset size,
// for exhaustive and greedy search, on a VCF-shaped dataset scaled to the
// requested sizes (MB).
func Fig14aSize(sizesMB []float64, w io.Writer) []SizePoint {
	fmt.Fprintf(w, "== Fig 14a: running time vs dataset size ==\n")
	fmt.Fprintf(w, "%-8s %-14s %-14s %s\n", "size", "exhaustive", "greedy", "extraction share (exhaustive)")
	var out []SizePoint
	for _, mb := range sizesMB {
		// ~46 bytes per VCF-like row.
		rows := int(mb * float64(1<<20) / 46)
		d := datagen.VCFGenetic(rows, 77)
		ex := runDatamaran(d, core.Options{Search: generation.Exhaustive})
		gr := runDatamaran(d, core.Options{Search: generation.Greedy})
		p := SizePoint{
			MB:         d.SizeMB(),
			Exhaustive: ex.Elapsed,
			Greedy:     gr.Elapsed,
		}
		if t := ex.Timing.Total(); t > 0 {
			p.ExtractFrac = float64(ex.Timing.Extraction) / float64(t)
		}
		out = append(out, p)
		fmt.Fprintf(w, "%-8.2f %-14s %-14s %.0f%%\n", p.MB,
			p.Exhaustive.Round(time.Millisecond), p.Greedy.Round(time.Millisecond), 100*p.ExtractFrac)
	}
	fmt.Fprintf(w, "(paper: <50MB avg 17s greedy / 37s exhaustive; extraction dominates for large files)\n\n")
	return out
}

// ComplexityPoint is one point of Figure 14b.
type ComplexityPoint struct {
	Templates  int // structure templates with ≥10% coverage
	Exhaustive time.Duration
	Greedy     time.Duration
}

// Fig14bComplexity reproduces Figure 14b: running time versus structural
// complexity (number of record types interleaved in the dataset).
func Fig14bComplexity(types []int, rowsPerType int, w io.Writer) []ComplexityPoint {
	fmt.Fprintf(w, "== Fig 14b: running time vs structural complexity ==\n")
	fmt.Fprintf(w, "%-12s %-14s %-14s\n", "#templates", "exhaustive", "greedy")
	var out []ComplexityPoint
	for _, k := range types {
		d := interleavedK(k, rowsPerType, int64(500+k))
		ex := runDatamaran(d, core.Options{Search: generation.Exhaustive})
		gr := runDatamaran(d, core.Options{Search: generation.Greedy})
		p := ComplexityPoint{Templates: k, Exhaustive: ex.Elapsed, Greedy: gr.Elapsed}
		out = append(out, p)
		fmt.Fprintf(w, "%-12d %-14s %-14s\n", k,
			p.Exhaustive.Round(time.Millisecond), p.Greedy.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "(paper: time grows with complexity; greedy's advantage grows too)\n\n")
	return out
}

// ParamPoint is one point of Figure 15.
type ParamPoint struct {
	Name    string
	Elapsed time.Duration
}

// Fig15Params reproduces Figure 15: the impact of M (left) and of α and L
// (right) on running time, on a two-line-record dataset.
func Fig15Params(w io.Writer) []ParamPoint {
	d := datagen.LogFile2(1500, 91)
	var out []ParamPoint
	fmt.Fprintf(w, "== Fig 15: running time vs parameters (dataset: %s, %.2f MB) ==\n", d.Name, d.SizeMB())
	for _, m := range []int{10, 50, 100, 500, 1000} {
		o := runDatamaran(d, core.Options{TopM: m})
		out = append(out, ParamPoint{fmt.Sprintf("M=%d", m), o.Elapsed})
		fmt.Fprintf(w, "%-14s %s\n", fmt.Sprintf("M=%d", m), o.Elapsed.Round(time.Millisecond))
	}
	for _, alpha := range []float64{0.05, 0.10, 0.20} {
		for _, l := range []int{5, 10, 15} {
			o := runDatamaran(d, core.Options{Alpha: alpha, MaxSpan: l})
			name := fmt.Sprintf("α=%.2f L=%d", alpha, l)
			out = append(out, ParamPoint{name, o.Elapsed})
			fmt.Fprintf(w, "%-14s %s\n", name, o.Elapsed.Round(time.Millisecond))
		}
	}
	fmt.Fprintf(w, "(paper: M dominates; larger L and smaller α cost more)\n\n")
	return out
}

// Fig16Point is one parameter combination of Figure 16.
type Fig16Point struct {
	M            int
	FoundOptimal int
	Total        int
}

// Fig16Sensitivity reproduces Figure 16: on the 25 manual analogs, the
// fraction of datasets where Datamaran finds the optimal structure (the
// best-MDL template among all templates with ≥α% coverage, computed with
// pruning disabled) as M varies, plus the fraction where the optimal
// template also has the best assimilation score (M=1).
func Fig16Sensitivity(scale float64, ms []int, w io.Writer) []Fig16Point {
	datasets := datagen.ManualDatasets(scale)
	// Reference: best template with pruning disabled.
	optimal := make([]string, len(datasets))
	for i, d := range datasets {
		res, err := core.Extract(d.Data, core.Options{TopM: -1, MaxRecordTypes: 1})
		if err == nil && len(res.Structures) > 0 {
			optimal[i] = res.Structures[0].Template.Key()
		}
	}
	fmt.Fprintf(w, "== Fig 16: %% of datasets where the optimal structure is found ==\n")
	var out []Fig16Point
	for _, m := range ms {
		found, total := 0, 0
		for i, d := range datasets {
			if optimal[i] == "" {
				continue
			}
			total++
			res, err := core.Extract(d.Data, core.Options{TopM: m, MaxRecordTypes: 1})
			if err == nil && len(res.Structures) > 0 && res.Structures[0].Template.Key() == optimal[i] {
				found++
			}
		}
		out = append(out, Fig16Point{M: m, FoundOptimal: found, Total: total})
		fmt.Fprintf(w, "M=%-6d optimal found: %d/%d (%.0f%%)\n", m, found, total, 100*float64(found)/float64(total))
	}
	fmt.Fprintf(w, "(paper: robust to M; ~40%% of datasets have the optimal at the top assimilation rank)\n\n")
	return out
}

// Table3Complexity empirically checks the step complexities of Table 3:
// generation time should be roughly flat in total size once sampling caps
// Sdata, while extraction grows linearly with Tdata.
func Table3Complexity(w io.Writer) {
	fmt.Fprintf(w, "== Table 3: step time complexity (empirical scaling check) ==\n")
	fmt.Fprintf(w, "%-8s %-12s %-12s %-12s %-12s\n", "size", "generation", "pruning", "evaluation", "extraction")
	for _, rows := range []int{4000, 8000, 16000, 32000} {
		d := datagen.VCFGenetic(rows, 7)
		o := runDatamaran(d, core.Options{SampleBudget: 64 << 10, EvalBudget: 32 << 10})
		fmt.Fprintf(w, "%-8.2f %-12s %-12s %-12s %-12s\n", d.SizeMB(),
			o.Timing.Generation.Round(time.Millisecond), o.Timing.Pruning.Round(time.Microsecond),
			o.Timing.Evaluation.Round(time.Millisecond), o.Timing.Extraction.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "(paper: generation O(Sdata·L·2^c) capped by sampling, pruning O(K log K),\n")
	fmt.Fprintf(w, " evaluation O(M·Sdata), extraction O(Tdata) — the only size-dependent step)\n\n")
}

// AblationAssimilation compares pruning by the full assimilation score
// G = Cov × NonFieldCov against pruning by coverage alone (design choice
// 1 of DESIGN.md): coverage-only ranking keeps delimiter-demoting
// redundant templates ahead of the true one.
func AblationAssimilation(w io.Writer) (full, covOnly int) {
	datasets := datagen.ManualDatasets(0.15)
	fmt.Fprintf(w, "== Ablation: assimilation score vs coverage-only pruning (M=5) ==\n")
	for _, d := range datasets {
		oFull := runDatamaran(d, core.Options{TopM: 5})
		if oFull.Success {
			full++
		}
	}
	// Coverage-only: emulate by scoring candidates with FieldBytes
	// forced to zero — G degenerates to Cov². Achieved via a tiny local
	// pipeline re-run below using generation directly.
	for _, d := range datasets {
		if coverageOnlySucceeds(d) {
			covOnly++
		}
	}
	fmt.Fprintf(w, "success with G=Cov×NonFieldCov: %d/%d; with Cov only: %d/%d\n\n",
		full, len(datasets), covOnly, len(datasets))
	return full, covOnly
}

// coverageOnlySucceeds reruns a single discovery round ranking candidates
// by coverage alone, then evaluates like the normal pipeline.
func coverageOnlySucceeds(d *datagen.Dataset) bool {
	lines := textio.NewLines(d.Data)
	cands := generation.Generate(lines, generation.Config{})
	if len(cands) == 0 {
		return false
	}
	// Rank by coverage only and keep top 5.
	for i := range cands {
		cands[i].FieldBytes = 0 // G degenerates to Cov²
	}
	top := generation.Prune(cands, 5)
	best := top[0].Template
	bestRes := score.MDL{}.Score(parser.NewMatcher(best), lines)
	for _, c := range top {
		tpl, r := refine.Refine(c.Template, lines, score.MDL{})
		if r.Bits < bestRes.Bits {
			best, bestRes = tpl, r
		}
	}
	m := parser.NewMatcher(best)
	scan := m.Scan(lines)
	// Minimal success proxy: all truth records matched at their
	// boundaries.
	starts := map[int]int{}
	for _, rec := range scan.Records {
		starts[rec.StartLine] = rec.EndLine
	}
	for _, tr := range d.Truth {
		if starts[tr.StartLine] != tr.EndLine {
			return false
		}
	}
	return len(d.Truth) > 0
}

// interleavedK builds a dataset with k distinct single-line record types.
func interleavedK(k, rowsPerType int, seed int64) *datagen.Dataset {
	gens := []func(int, int64) *datagen.Dataset{}
	_ = gens
	return datagen.InterleavedTypes(k, rowsPerType, seed)
}
