package experiments

import (
	"fmt"
	"io"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/evaluate"
	"datamaran/internal/recordbreaker"
	"datamaran/internal/wrangler"
)

// StudyOutcome is one dataset row of the simulated user study.
type StudyOutcome struct {
	Dataset string
	A, B, R wrangler.Plan
}

// UserStudy reproduces §6 / Figure 18: the simulated wrangling effort to
// reach the target table from the raw file (R), the Datamaran extraction
// (A) and the RecordBreaker extraction (B) on the five study datasets
// (one single-line, two regular multi-line, two noisy multi-line).
func UserStudy(w io.Writer) []StudyOutcome {
	datasets := []*datagen.Dataset{
		datagen.WebServerLog(120, 61),
		datagen.ThailandDistricts(60, 62),
		datagen.BlogXML(50, 63),
		datagen.LogFile5(80, 64),
		datagen.LogFile2(100, 65),
	}
	names := []string{
		"1: web log (single-line)",
		"2: districts (multi-line)",
		"3: blog xml (multi-line)",
		"4: reports (noisy multi)",
		"5: jobs (noisy multi)",
	}
	fmt.Fprintf(w, "== Fig 18 / §6: simulated user study ==\n")
	var out []StudyOutcome
	var sumA, sumB, sumR float64
	for i, d := range datasets {
		res, err := core.Extract(d.Data, core.Options{})
		var exA evaluate.Extraction
		if err == nil {
			exA = evaluate.FromCore(res)
		}
		exB := recordbreaker.Extract(d.Data, recordbreaker.Config{})
		o := StudyOutcome{
			Dataset: names[i],
			A:       wrangler.PlanDatamaran(d, exA),
			B:       wrangler.PlanRecordBreaker(d, exB),
			R:       wrangler.PlanRaw(d),
		}
		out = append(out, o)
		sumA += o.A.Difficulty()
		sumB += o.B.Difficulty()
		sumR += o.R.Difficulty()
		for _, p := range []wrangler.Plan{o.A, o.B, o.R} {
			row := wrangler.StudyRow{Dataset: names[i], Plan: p}
			fmt.Fprintf(w, "%s\n", row)
		}
	}
	n := float64(len(datasets))
	fmt.Fprintf(w, "mean difficulty (1-10): A=%.1f  B=%.1f  R=%.1f   (paper: 1.8, 7.8, 9.3)\n\n",
		sumA/n, sumB/n, sumR/n)
	return out
}
