package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"datamaran/internal/datagen"
)

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	for _, want := range []string{"Coverage Threshold", "Boundary", "Tokenization", "Datamaran"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestTable5Output(t *testing.T) {
	var buf bytes.Buffer
	Table5(0.1, &buf)
	out := buf.String()
	if !strings.Contains(out, "Thailand district info") || !strings.Contains(out, "fastq genetic format") {
		t.Error("Table5 output missing dataset rows")
	}
	if strings.Count(out, "\n") < 26 {
		t.Errorf("Table5 should list 25 datasets, got:\n%s", out)
	}
}

func TestAccuracy25Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over 25 datasets")
	}
	var buf bytes.Buffer
	outcomes := Accuracy25(0.1, &buf)
	if len(outcomes) != 25 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	ok := 0
	for _, o := range outcomes {
		if o.Success {
			ok++
		}
	}
	// At the tiny test scale some datasets are harder (fewer records to
	// amortize template costs); require a strong majority rather than
	// the full-scale 25/25.
	if ok < 20 {
		t.Fatalf("only %d/25 successful at scale 0.1:\n%s", ok, buf.String())
	}
}

func TestFig17aCounts(t *testing.T) {
	var buf bytes.Buffer
	counts := Fig17a(&buf)
	if counts[datagen.SNI] != 44 || counts[datagen.NS] != 11 {
		t.Fatalf("counts = %v", counts)
	}
	if !strings.Contains(buf.String(), "multi-line: 31%") {
		t.Errorf("Fig17a output missing headline percentages:\n%s", buf.String())
	}
}

func TestFig17bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full extraction over corpus samples")
	}
	var buf bytes.Buffer
	res := Fig17b(2, &buf) // 2 datasets per category
	// Shape checks that must hold at any sample size:
	// RecordBreaker can never handle multi-line categories.
	if res.RecordBreaker[datagen.MNI].OK != 0 || res.RecordBreaker[datagen.MI].OK != 0 {
		t.Errorf("RecordBreaker succeeded on multi-line data: %+v", res.RecordBreaker)
	}
	// Datamaran must beat RecordBreaker overall.
	if Overall(res.Exhaustive) <= Overall(res.RecordBreaker) {
		t.Errorf("Datamaran %.2f <= RecordBreaker %.2f", Overall(res.Exhaustive), Overall(res.RecordBreaker))
	}
}

func TestFig14aSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	points := Fig14aSize([]float64{0.05, 0.1}, io.Discard)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Exhaustive <= 0 || p.Greedy <= 0 {
			t.Fatalf("missing timings: %+v", p)
		}
	}
}

func TestFig14bSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	points := Fig14bComplexity([]int{1, 2}, 80, io.Discard)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
}

func TestFig16Small(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep")
	}
	points := Fig16Sensitivity(0.05, []int{1, 50}, io.Discard)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Larger M can only help (the M=50 run includes the M=1 winner).
	if points[1].FoundOptimal < points[0].FoundOptimal {
		t.Errorf("M=50 found fewer optima (%d) than M=1 (%d)",
			points[1].FoundOptimal, points[0].FoundOptimal)
	}
	if points[1].FoundOptimal < points[1].Total/2 {
		t.Errorf("M=50 finds optimal on only %d/%d", points[1].FoundOptimal, points[1].Total)
	}
}

func TestUserStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over study datasets")
	}
	var buf bytes.Buffer
	rows := UserStudy(&buf)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.A.Failed {
			t.Errorf("%s: A failed", r.Dataset)
		}
	}
	// Noisy multi-line datasets (4 and 5) must fail from B and R.
	for _, i := range []int{3, 4} {
		if !rows[i].B.Failed || !rows[i].R.Failed {
			t.Errorf("%s: expected B and R failures", rows[i].Dataset)
		}
	}
}

func TestInterleavedKGenerator(t *testing.T) {
	d := datagen.InterleavedTypes(4, 50, 9)
	types := map[int]bool{}
	for _, tr := range d.Truth {
		types[tr.Type] = true
	}
	if len(types) != 4 {
		t.Fatalf("types = %d, want 4", len(types))
	}
}

func TestOverall(t *testing.T) {
	m := map[datagen.Label]CategoryStats{
		datagen.SNI: {OK: 3, Total: 4},
		datagen.MI:  {OK: 1, Total: 2},
		datagen.NS:  {OK: 0, Total: 5}, // excluded
	}
	if got := Overall(m); got != 4.0/6.0 {
		t.Fatalf("Overall = %v", got)
	}
}
