package recordbreaker

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"datamaran/internal/datagen"
	"datamaran/internal/evaluate"
)

func lexLine(s string) []Token {
	return Lex([]byte(s), 0, len(s))
}

func classes(toks []Token) []Class {
	out := make([]Class, len(toks))
	for i, t := range toks {
		out[i] = t.Class
	}
	return out
}

func TestLexBasicClasses(t *testing.T) {
	toks := lexLine("abc 42 4.5")
	want := []Class{CWord, CWS, CInt, CWS, CFloat}
	got := classes(toks)
	if len(got) != len(want) {
		t.Fatalf("classes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("classes = %v, want %v", got, want)
		}
	}
}

func TestLexCompositeClasses(t *testing.T) {
	cases := []struct {
		in   string
		want Class
	}{
		{"10:11:12", CTime},
		{"10:11", CTime},
		{"2016-03-05", CDate},
		{"1.2.3.4", CIP},
		{"192.168.0.254", CIP},
		{"3.14", CFloat},
		{"12345", CInt},
		{"hello_world9", CWord},
	}
	for _, c := range cases {
		toks := lexLine(c.in)
		if len(toks) != 1 || toks[0].Class != c.want {
			t.Errorf("Lex(%q) = %v, want single %v", c.in, classes(toks), c.want)
		}
	}
}

func TestLexPunct(t *testing.T) {
	toks := lexLine("[a]=b")
	want := []Class{CPunct, CWord, CPunct, CPunct, CWord}
	got := classes(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("classes = %v, want %v", got, want)
		}
	}
	if toks[0].Punct != '[' || toks[2].Punct != ']' || toks[3].Punct != '=' {
		t.Fatal("punct bytes wrong")
	}
}

func TestLexSpansCoverLine(t *testing.T) {
	line := "x=1, y=2.5 [ok] 1.2.3.4 10:11:12"
	toks := lexLine(line)
	pos := 0
	for _, tok := range toks {
		if tok.Start != pos {
			t.Fatalf("gap before token at %d (start %d)", pos, tok.Start)
		}
		pos = tok.End
	}
	if pos != len(line) {
		t.Fatalf("tokens end at %d, want %d", pos, len(line))
	}
}

func TestLexPartialTimeNotGreedy(t *testing.T) {
	// "123:45" — 123 is 3 digits, not a time prefix.
	toks := lexLine("123:45")
	if toks[0].Class != CInt {
		t.Fatalf("first token = %v, want INT", toks[0].Class)
	}
}

func TestExtractEveryLineIsARecord(t *testing.T) {
	data := []byte("a,1\nb,2\nnoise here\nc,3\n")
	ex := Extract(data, Config{})
	if len(ex.Records) != 4 {
		t.Fatalf("records = %d, want 4 (one per line)", len(ex.Records))
	}
	for i, r := range ex.Records {
		if r.StartLine != i || r.EndLine != i+1 {
			t.Fatalf("record %d spans [%d,%d)", i, r.StartLine, r.EndLine)
		}
	}
}

func TestExtractCleanCSVSucceeds(t *testing.T) {
	d := datagen.CommaSepRecords(200, 3)
	ex := Extract(d.Data, Config{})
	rep := evaluate.Evaluate(d.Truth, ex)
	if !rep.Success {
		t.Fatalf("RecordBreaker should handle clean CSV: %+v", rep)
	}
}

func TestExtractFailsOnMultiLine(t *testing.T) {
	// Line-by-line extraction can never identify multi-line record
	// boundaries (the paper's central criticism).
	d := datagen.CrashLog(100, 3)
	ex := Extract(d.Data, Config{})
	rep := evaluate.Evaluate(d.Truth, ex)
	if rep.Success || rep.BoundariesOK {
		t.Fatalf("RecordBreaker must fail multi-line boundaries: %+v", rep)
	}
}

func TestExtractFieldsFromStructuredLines(t *testing.T) {
	var b strings.Builder
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "id=%d status=%s\n", rng.Intn(10000), []string{"ok", "bad"}[rng.Intn(2)])
	}
	data := []byte(b.String())
	ex := Extract(data, Config{})
	// Every line should yield at least the id and status fields.
	for i, r := range ex.Records {
		if len(r.Fields) < 2 {
			t.Fatalf("line %d: %d fields extracted", i, len(r.Fields))
		}
	}
	// All lines share one type (uniform shape).
	types := map[int]bool{}
	for _, r := range ex.Records {
		types[r.Type] = true
	}
	if len(types) != 1 {
		t.Fatalf("uniform lines split into %d types", len(types))
	}
}

func TestExtractVariableTailSplitsTypes(t *testing.T) {
	// Free-text tails with varying word counts: the fixed-configuration
	// pipeline tends to split one truth type into several (the
	// weakness §5.3.2 attributes to RecordBreaker) — unless the array
	// rule absorbs it. Either way the extraction must not crash and
	// must emit one record per line.
	d := datagen.MacBootLog(150, 9)
	ex := Extract(d.Data, Config{})
	if len(ex.Records) != 150 {
		t.Fatalf("records = %d, want 150", len(ex.Records))
	}
}

func TestExtractDeterministic(t *testing.T) {
	d := datagen.NetstatOutput(120, 5)
	a := Extract(d.Data, Config{})
	b := Extract(d.Data, Config{})
	if len(a.Records) != len(b.Records) {
		t.Fatal("non-deterministic record count")
	}
	for i := range a.Records {
		if a.Records[i].Type != b.Records[i].Type || len(a.Records[i].Fields) != len(b.Records[i].Fields) {
			t.Fatalf("non-deterministic record %d", i)
		}
	}
}

func TestExtractEmptyInput(t *testing.T) {
	ex := Extract(nil, Config{})
	if len(ex.Records) != 0 {
		t.Fatalf("records = %d, want 0", len(ex.Records))
	}
}

func TestSplitAt(t *testing.T) {
	toks := lexLine("a,b,c")
	c := chunk{line: 0, toks: toks}
	segs, delims := splitAt(c, 256+int(','))
	if len(segs) != 3 || len(delims) != 2 {
		t.Fatalf("segs=%d delims=%d, want 3 and 2", len(segs), len(delims))
	}
}

func TestSignatureCollapsesValues(t *testing.T) {
	a := signature(lexLine("abc,123"))
	b := signature(lexLine("xyz,999"))
	if a != b {
		t.Fatalf("signatures differ for same shape: %q vs %q", a, b)
	}
	c := signature(lexLine("abc,1.5"))
	if a == c {
		t.Fatal("INT and FLOAT shapes should differ")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxMass != 0.9 || c.MinCoverage != 0.1 || c.MaxUnionBranches != 4 {
		t.Fatalf("defaults = %+v", c)
	}
}
