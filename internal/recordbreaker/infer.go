package recordbreaker

import (
	"fmt"
	"sort"

	"datamaran/internal/evaluate"
	"datamaran/internal/textio"
)

// Config holds RecordBreaker's two tuning parameters (§5.3.2 names them
// MaxMass and MinCoverage and notes that no setting works for all
// datasets).
type Config struct {
	// MaxMass is the fraction of chunks that must agree on a token
	// count for a struct split (default 0.9).
	MaxMass float64
	// MinCoverage is the minimum fraction of chunks containing a token
	// class for it to drive a split (default 0.1).
	MinCoverage float64
	// MaxUnionBranches caps leaf-level branching before falling back to
	// a single blob field (default 4).
	MaxUnionBranches int
	// MaxDepth bounds the recursion (default 12).
	MaxDepth int
}

func (c Config) withDefaults() Config {
	if c.MaxMass == 0 {
		c.MaxMass = 0.9
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.1
	}
	if c.MaxUnionBranches == 0 {
		c.MaxUnionBranches = 4
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	return c
}

// chunk is a token segment belonging to one line.
type chunk struct {
	line int
	toks []Token
}

// inferrer carries the per-line accumulation state.
type inferrer struct {
	cfg Config
	// fields[line] collects extracted field spans.
	fields [][]evaluate.Span
	// branch[line] accumulates the union-branch path defining the
	// line's record type.
	branch []string
}

// Extract runs RecordBreaker over a dataset: every line is a record; the
// histogram-based struct/array/union inference assigns each line a type
// (its union-branch path) and extracts its field values.
func Extract(data []byte, cfg Config) evaluate.Extraction {
	cfg = cfg.withDefaults()
	lines := textio.NewLines(data)
	n := lines.N()
	inf := &inferrer{
		cfg:    cfg,
		fields: make([][]evaluate.Span, n),
		branch: make([]string, n),
	}
	chunks := make([]chunk, 0, n)
	for i := 0; i < n; i++ {
		start := lines.Start(i)
		end := start + len(lines.Line(i))
		if end > start && data[end-1] == '\n' {
			end--
		}
		chunks = append(chunks, chunk{line: i, toks: Lex(data, start, end)})
	}
	inf.infer(chunks, 0)

	ex := evaluate.Extraction{}
	typeIDs := map[string]int{}
	for i := 0; i < n; i++ {
		tid, ok := typeIDs[inf.branch[i]]
		if !ok {
			tid = len(typeIDs)
			typeIDs[inf.branch[i]] = tid
		}
		ex.Records = append(ex.Records, evaluate.ExtractedRecord{
			Type:      tid,
			StartLine: i,
			EndLine:   i + 1,
			Fields:    inf.fields[i],
		})
	}
	return ex
}

// infer recursively splits a set of chunks following the LearnPADS
// histogram discipline: a token class whose per-chunk count is constant
// across at least MaxMass of the chunks drives a struct split; a class
// present in MaxMass of chunks with varying counts drives an array split;
// otherwise the chunks are partitioned into union branches by signature,
// falling back to one blob field when branching explodes.
func (inf *inferrer) infer(chunks []chunk, depth int) {
	if len(chunks) == 0 {
		return
	}
	if depth >= inf.cfg.MaxDepth {
		inf.leafBlob(chunks)
		return
	}

	if key, count, ok := inf.structCandidate(chunks); ok {
		inf.structSplit(chunks, key, count, depth)
		return
	}
	if key, ok := inf.arrayCandidate(chunks); ok {
		inf.arraySplit(chunks, key, depth)
		return
	}
	inf.unionSplit(chunks, depth)
}

// histogram computes, per token-class key, the map count→#chunks and the
// number of chunks containing the class at all.
func histogram(chunks []chunk) map[int]map[int]int {
	hist := map[int]map[int]int{}
	for _, c := range chunks {
		counts := map[int]int{}
		for _, t := range c.toks {
			counts[t.classKey()]++
		}
		for key, cnt := range counts {
			m := hist[key]
			if m == nil {
				m = map[int]int{}
				hist[key] = m
			}
			m[cnt]++
		}
	}
	return hist
}

// structCandidate finds the best (key, count) where count occurrences per
// chunk hold for ≥ MaxMass of the chunks. Whitespace is never a struct
// driver on its own (matching RecordBreaker's lexer discipline where
// whitespace separates tokens but rarely forms the record skeleton).
func (inf *inferrer) structCandidate(chunks []chunk) (key, count int, ok bool) {
	total := float64(len(chunks))
	bestFrac := 0.0
	hist := histogram(chunks)
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic iteration
	for _, k := range keys {
		if k == int(CWS) {
			continue
		}
		for cnt, n := range hist[k] {
			frac := float64(n) / total
			if frac >= inf.cfg.MaxMass && float64(n)/total >= inf.cfg.MinCoverage {
				if frac > bestFrac || (frac == bestFrac && k > key) {
					bestFrac, key, count = frac, k, cnt
					ok = true
				}
			}
		}
	}
	return key, count, ok
}

// arrayCandidate finds a class present in ≥ MaxMass of chunks with varying
// counts.
func (inf *inferrer) arrayCandidate(chunks []chunk) (key int, ok bool) {
	total := float64(len(chunks))
	hist := histogram(chunks)
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	bestPresent := 0.0
	for _, k := range keys {
		if k == int(CWS) {
			continue
		}
		present := 0
		for _, n := range hist[k] {
			present += n
		}
		frac := float64(present) / total
		if frac >= inf.cfg.MaxMass && len(hist[k]) > 1 && frac > bestPresent {
			bestPresent, key, ok = frac, k, true
		}
	}
	return key, ok
}

// structSplit partitions each conforming chunk at the count occurrences of
// key and recurses on each column; non-conforming chunks go to a union
// branch.
func (inf *inferrer) structSplit(chunks []chunk, key, count, depth int) {
	cols := make([][]chunk, count+1)
	var others []chunk
	for _, c := range chunks {
		segs, delims := splitAt(c, key)
		if len(segs) != count+1 {
			others = append(others, c)
			continue
		}
		// A value-class driver (e.g. a DATE appearing exactly once
		// per line) is itself a field, not formatting.
		inf.emitValueDelims(c.line, delims)
		for j, s := range segs {
			cols[j] = append(cols[j], s)
		}
	}
	for _, col := range cols {
		inf.infer(col, depth+1)
	}
	if len(others) > 0 {
		for _, c := range others {
			inf.branch[c.line] += fmt.Sprintf("|u%d@%d", key, depth)
		}
		inf.infer(others, depth+1)
	}
}

// arraySplit splits every chunk at all occurrences of key and pools the
// segments; chunks lacking the class go to a union branch.
func (inf *inferrer) arraySplit(chunks []chunk, key, depth int) {
	var pool []chunk
	var others []chunk
	for _, c := range chunks {
		segs, delims := splitAt(c, key)
		if len(segs) == 1 {
			others = append(others, c)
			continue
		}
		inf.emitValueDelims(c.line, delims)
		pool = append(pool, segs...)
	}
	inf.infer(pool, depth+1)
	if len(others) > 0 {
		for _, c := range others {
			inf.branch[c.line] += fmt.Sprintf("|a%d@%d", key, depth)
		}
		inf.infer(others, depth+1)
	}
}

// unionSplit partitions chunks by their token-class signature. Within the
// branch cap each signature becomes a union branch (a distinct record
// type); beyond it the chunks collapse to a blob field — RecordBreaker's
// fixed-configuration failure mode on irregular data.
func (inf *inferrer) unionSplit(chunks []chunk, depth int) {
	groups := map[string][]chunk{}
	var order []string
	for _, c := range chunks {
		sig := signature(c.toks)
		if _, ok := groups[sig]; !ok {
			order = append(order, sig)
		}
		groups[sig] = append(groups[sig], c)
	}
	if len(groups) == 1 {
		// Uniform: emit value tokens as fields.
		for _, c := range chunks {
			for _, t := range c.toks {
				if t.IsValue() {
					inf.fields[c.line] = append(inf.fields[c.line], evaluate.Span{Start: t.Start, End: t.End})
				}
			}
		}
		return
	}
	if len(groups) > inf.cfg.MaxUnionBranches {
		inf.leafBlob(chunks)
		return
	}
	sort.Strings(order)
	for bi, sig := range order {
		for _, c := range groups[sig] {
			inf.branch[c.line] += fmt.Sprintf("|b%d@%d", bi, depth)
		}
		inf.infer(groups[sig], depth+1)
	}
}

// leafBlob emits each chunk's whole extent as a single string field.
func (inf *inferrer) leafBlob(chunks []chunk) {
	for _, c := range chunks {
		if len(c.toks) == 0 {
			continue
		}
		inf.fields[c.line] = append(inf.fields[c.line], evaluate.Span{
			Start: c.toks[0].Start,
			End:   c.toks[len(c.toks)-1].End,
		})
	}
}

// splitAt cuts a chunk at every occurrence of the class key, returning the
// segments and the delimiter tokens.
func splitAt(c chunk, key int) ([]chunk, []Token) {
	var out []chunk
	var delims []Token
	cur := chunk{line: c.line}
	for _, t := range c.toks {
		if t.classKey() == key {
			out = append(out, cur)
			cur = chunk{line: c.line}
			delims = append(delims, t)
			continue
		}
		cur.toks = append(cur.toks, t)
	}
	out = append(out, cur)
	return out, delims
}

// emitValueDelims records value-class split drivers as fields.
func (inf *inferrer) emitValueDelims(line int, delims []Token) {
	for _, t := range delims {
		if t.IsValue() {
			inf.fields[line] = append(inf.fields[line], evaluate.Span{Start: t.Start, End: t.End})
		}
	}
}

// signature renders a chunk's token-class sequence (whitespace collapsed).
func signature(toks []Token) string {
	out := make([]byte, 0, len(toks))
	for _, t := range toks {
		if t.Class == CPunct {
			out = append(out, t.Punct)
		} else {
			out = append(out, byte('A'+t.Class))
		}
	}
	return string(out)
}
