// Package recordbreaker reimplements the RecordBreaker baseline (§1, §3.4,
// §5.3.2 of the Datamaran paper): a line-by-line unsupervised adaptation
// of Fisher et al.'s LearnPADS. It assumes every record occupies exactly
// one line (Assumption 4, "Boundary") and tokenizes each line with a
// fixed, dataset-independent lexer (Assumption 5, "Tokenization") — the
// two assumptions Datamaran drops.
//
// The paper reimplemented RecordBreaker in C++ over Flex; here the Flex
// role is played by a hand-written maximal-munch lexer with the usual
// default token classes (timestamp, date, IP, float, int, word,
// whitespace, punctuation). As in the original, there is no per-dataset
// configuration — which is precisely the weakness the paper documents.
package recordbreaker

// Class is a lexer token class.
type Class uint8

const (
	// CWS is a whitespace run.
	CWS Class = iota
	// CInt is a decimal integer.
	CInt
	// CFloat is a decimal number with a fractional part.
	CFloat
	// CTime is hh:mm or hh:mm:ss.
	CTime
	// CDate is yyyy-mm-dd.
	CDate
	// CIP is a dotted quad.
	CIP
	// CWord is an identifier-like run.
	CWord
	// CPunct is a single punctuation byte; the byte value distinguishes
	// punctuation tokens from each other.
	CPunct
)

func (c Class) String() string {
	switch c {
	case CWS:
		return "WS"
	case CInt:
		return "INT"
	case CFloat:
		return "FLOAT"
	case CTime:
		return "TIME"
	case CDate:
		return "DATE"
	case CIP:
		return "IP"
	case CWord:
		return "WORD"
	case CPunct:
		return "PUNCT"
	}
	return "?"
}

// Token is one lexed token. Start/End are offsets into the line's
// underlying buffer (global offsets when lexing a whole dataset).
type Token struct {
	Class Class
	// Punct holds the byte of a CPunct token.
	Punct      byte
	Start, End int
}

// IsValue reports whether the token carries field content (as opposed to
// formatting).
func (t Token) IsValue() bool {
	return t.Class != CWS && t.Class != CPunct
}

// classKey returns a small integer identifying the token's class for
// histogramming; punctuation bytes get distinct keys.
func (t Token) classKey() int {
	if t.Class == CPunct {
		return 256 + int(t.Punct)
	}
	return int(t.Class)
}

func isDigit(b byte) bool  { return b >= '0' && b <= '9' }
func isLetter(b byte) bool { return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_' }

// Lex tokenizes data[start:end] (one line, excluding the newline) with the
// fixed default configuration, maximal-munch with class priority:
// IP > date > time > float > int > word > whitespace > punct.
func Lex(data []byte, start, end int) []Token {
	var out []Token
	i := start
	for i < end {
		b := data[i]
		switch {
		case b == ' ' || b == '\t':
			j := i
			for j < end && (data[j] == ' ' || data[j] == '\t') {
				j++
			}
			out = append(out, Token{Class: CWS, Start: i, End: j})
			i = j
		case isDigit(b):
			tok := lexNumeric(data, i, end)
			out = append(out, tok)
			i = tok.End
		case isLetter(b):
			j := i
			for j < end && (isLetter(data[j]) || isDigit(data[j])) {
				j++
			}
			out = append(out, Token{Class: CWord, Start: i, End: j})
			i = j
		default:
			out = append(out, Token{Class: CPunct, Punct: b, Start: i, End: i + 1})
			i++
		}
	}
	return out
}

// lexNumeric greedily recognizes IP, date, time, float or int starting at
// a digit.
func lexNumeric(data []byte, i, end int) Token {
	run := func(j int) int {
		for j < end && isDigit(data[j]) {
			j++
		}
		return j
	}
	d1 := run(i)
	// IP: d.d.d.d
	if j := d1; j < end && data[j] == '.' {
		d2 := run(j + 1)
		if d2 > j+1 && d2 < end && data[d2] == '.' {
			d3 := run(d2 + 1)
			if d3 > d2+1 && d3 < end && data[d3] == '.' {
				d4 := run(d3 + 1)
				if d4 > d3+1 {
					return Token{Class: CIP, Start: i, End: d4}
				}
			}
		}
	}
	// Date: dddd-dd-dd
	if d1-i == 4 && d1 < end && data[d1] == '-' {
		d2 := run(d1 + 1)
		if d2 == d1+3 && d2 < end && data[d2] == '-' {
			d3 := run(d2 + 1)
			if d3 == d2+3 {
				return Token{Class: CDate, Start: i, End: d3}
			}
		}
	}
	// Time: dd:dd or dd:dd:dd
	if d1-i <= 2 && d1 < end && data[d1] == ':' {
		d2 := run(d1 + 1)
		if d2 == d1+3 {
			if d2 < end && data[d2] == ':' {
				d3 := run(d2 + 1)
				if d3 == d2+3 {
					return Token{Class: CTime, Start: i, End: d3}
				}
			}
			return Token{Class: CTime, Start: i, End: d2}
		}
	}
	// Float: d.d
	if d1 < end && data[d1] == '.' {
		d2 := run(d1 + 1)
		if d2 > d1+1 {
			return Token{Class: CFloat, Start: i, End: d2}
		}
	}
	return Token{Class: CInt, Start: i, End: d1}
}
