package template

import (
	"math/rand"
	"strings"
	"testing"

	"datamaran/internal/chars"
)

// tpl is shorthand for a normalized struct tree.
func tpl(children ...*Node) *Node { return Struct(children...).Normalize() }

func TestStringNotation(t *testing.T) {
	// F,F,F\n
	n := tpl(Field(), Lit(","), Field(), Lit(","), Field(), Lit("\n"))
	if got := n.String(); got != `F,F,F\n` {
		t.Fatalf("String() = %q", got)
	}
}

func TestStringArrayNotation(t *testing.T) {
	// (F,)*F\n
	n := Array([]*Node{Field()}, ',', '\n')
	if got := n.String(); got != `(F,)*F\n` {
		t.Fatalf("String() = %q", got)
	}
}

func TestNestedArrayString(t *testing.T) {
	// F,F,"(F,)*F",F\n  — the paper's Figure 6 template shape.
	inner := Array([]*Node{Field()}, ',', '"')
	n := tpl(Field(), Lit(","), Field(), Lit(`,"`), inner, Lit(","), Field(), Lit("\n"))
	want := `F,F,"(F,)*F",F\n`
	if got := n.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := tpl(Field(), Lit(": "), Field(), Lit("\n"))
	b := tpl(Field(), Lit(": "), Field(), Lit("\n"))
	if !a.Equal(b) {
		t.Fatal("identical trees should be Equal")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone should be Equal to original")
	}
	c.Children[1] = Lit("; ")
	if a.Equal(c) {
		t.Fatal("mutated clone should not be Equal")
	}
	if a.Children[1].Lit != ": " {
		t.Fatal("mutating clone must not affect original")
	}
}

func TestEqualDistinguishesArrayChars(t *testing.T) {
	a := Array([]*Node{Field()}, ',', '\n')
	b := Array([]*Node{Field()}, ';', '\n')
	c := Array([]*Node{Field()}, ',', ']')
	if a.Equal(b) || a.Equal(c) {
		t.Fatal("arrays with different sep/term must differ")
	}
}

func TestNormalizeMergesLiterals(t *testing.T) {
	n := Struct(Lit("a"), Lit("b"), Field(), Lit(""), Lit("c")).Normalize()
	want := tpl(Lit("ab"), Field(), Lit("c"))
	if !n.Equal(want) {
		t.Fatalf("Normalize = %v, want %v", n, want)
	}
}

func TestNormalizeFlattensStructs(t *testing.T) {
	n := Struct(Struct(Field(), Lit(",")), Struct(Field())).Normalize()
	want := tpl(Field(), Lit(","), Field())
	if !n.Equal(want) {
		t.Fatalf("Normalize = %v, want %v", n, want)
	}
}

func TestNormalizeSingleChildCollapse(t *testing.T) {
	n := Struct(Struct(Field())).Normalize()
	if n.Kind != KField {
		t.Fatalf("Normalize of nested single field = %v, want bare field", n)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	n := Struct(Lit("x"), Struct(Field(), Lit("a"), Lit("b")), Array([]*Node{Field()}, ',', '\n'))
	once := n.Normalize()
	twice := once.Normalize()
	if !once.Equal(twice) {
		t.Fatalf("Normalize not idempotent: %v vs %v", once, twice)
	}
}

func TestKeyDistinguishesLiteralParens(t *testing.T) {
	// A literal "(F,)*F" string must not collide with an actual array.
	arr := Array([]*Node{Field()}, ',', '\n')
	lit := tpl(Lit("("), Field(), Lit(",)*"), Field(), Lit("\n")) // same display
	if arr.Key() == lit.Key() {
		t.Fatal("Key must distinguish array from literal parens")
	}
}

func TestKeyEqualIffEqual(t *testing.T) {
	trees := []*Node{
		tpl(Field(), Lit(","), Field(), Lit("\n")),
		tpl(Field(), Lit(";"), Field(), Lit("\n")),
		Array([]*Node{Field()}, ',', '\n'),
		Array([]*Node{Field()}, ',', ';'),
		tpl(Lit("["), Field(), Lit("] "), Field(), Lit("\n")),
		tpl(Field(), Lit("\n")),
		Field(),
	}
	for i, a := range trees {
		for j, b := range trees {
			sameKey := a.Key() == b.Key()
			if sameKey != a.Equal(b) {
				t.Errorf("trees %d,%d: Key equality %v but Equal %v", i, j, sameKey, a.Equal(b))
			}
		}
	}
}

func TestNumFields(t *testing.T) {
	n := tpl(Field(), Lit(","), Array([]*Node{Field(), Lit(":"), Field()}, ',', '\n'))
	if got := n.NumFields(); got != 3 {
		t.Fatalf("NumFields = %d, want 3", got)
	}
}

func TestHasArrayAndDepth(t *testing.T) {
	flat := tpl(Field(), Lit("\n"))
	if flat.HasArray() {
		t.Error("flat template should not HasArray")
	}
	nested := tpl(Lit("["), Array([]*Node{Field()}, ',', ']'), Lit("\n"))
	if !nested.HasArray() {
		t.Error("nested template should HasArray")
	}
	if flat.Depth() >= nested.Depth() {
		t.Errorf("depth(flat)=%d should be < depth(nested)=%d", flat.Depth(), nested.Depth())
	}
}

func TestRTCharSet(t *testing.T) {
	n := tpl(Lit("["), Field(), Lit("] "), Array([]*Node{Field()}, ',', '\n'))
	got := n.RTCharSet()
	want := chars.NewSet("[] ,\n")
	if !got.Equal(want) {
		t.Fatalf("RTCharSet = %v, want %v", got, want)
	}
}

func TestLen(t *testing.T) {
	// "F,F\n" has length 4.
	n := tpl(Field(), Lit(","), Field(), Lit("\n"))
	if got := n.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	// "(F,)*F\n" has length 7: ( F , ) * F \n.
	arr := Array([]*Node{Field()}, ',', '\n')
	if got := arr.Len(); got != 7 {
		t.Fatalf("array Len = %d, want 7", got)
	}
}

func TestExtractRecordTemplate(t *testing.T) {
	rec := []byte("192.168.0.1, 200\n")
	toks, fb := ExtractRecordTemplate(rec, chars.NewSet(". ,"))
	got := Struct(toks...).Normalize().String()
	want := `F.F.F.F, F\n`
	if got != want {
		t.Fatalf("template = %q, want %q", got, want)
	}
	// field bytes: 3+3+1+1+3 = 11
	if fb != 11 {
		t.Fatalf("fieldBytes = %d, want 11", fb)
	}
}

func TestExtractRecordTemplateNewlineAlwaysStructural(t *testing.T) {
	toks, _ := ExtractRecordTemplate([]byte("ab\ncd\n"), chars.Set{})
	got := Struct(toks...).Normalize().String()
	if got != `F\nF\n` {
		t.Fatalf("template = %q, want F\\nF\\n", got)
	}
}

func TestExtractRecordTemplateEmptyCharset(t *testing.T) {
	toks, fb := ExtractRecordTemplate([]byte("hello world"), chars.Set{})
	if len(toks) != 1 || toks[0].Kind != KField {
		t.Fatalf("tokens = %v, want single field", toks)
	}
	if fb != 11 {
		t.Fatalf("fieldBytes = %d, want 11", fb)
	}
}

func TestExtractRecordTemplateAdjacentDelims(t *testing.T) {
	toks, _ := ExtractRecordTemplate([]byte("a,,b\n"), chars.NewSet(","))
	got := Struct(toks...).Normalize().String()
	if got != `F,,F\n` {
		t.Fatalf("template = %q, want F,,F\\n", got)
	}
}

func TestReduceCSV(t *testing.T) {
	// The paper's example: F,F,F,...,F\n reduces to (F,)*F\n.
	for _, fields := range []int{2, 3, 5, 10} {
		rec := strings.Repeat("x,", fields-1) + "x\n"
		toks, _ := ExtractRecordTemplate([]byte(rec), chars.NewSet(","))
		got := Reduce(toks)
		want := Array([]*Node{Field()}, ',', '\n')
		if !got.Equal(want) {
			t.Fatalf("%d fields: Reduce = %v, want %v", fields, got, want)
		}
	}
}

func TestReduceSingleFieldNoFold(t *testing.T) {
	toks, _ := ExtractRecordTemplate([]byte("x\n"), chars.NewSet(","))
	got := Reduce(toks)
	want := tpl(Field(), Lit("\n"))
	if !got.Equal(want) {
		t.Fatalf("Reduce = %v, want %v", got, want)
	}
}

func TestReduceDifferentCommaCountsSameTemplate(t *testing.T) {
	// Assumption 2 justification: F,"F",F with commas inside quotes
	// yields the same structure template regardless of comma count.
	cs := chars.NewSet(`,"`)
	keys := map[string]bool{}
	for _, rec := range []string{
		"a,\"b,c\",d\n",
		"a,\"b,c,e\",d\n",
		"a,\"b,c,e,f\",d\n",
	} {
		toks, _ := ExtractRecordTemplate([]byte(rec), cs)
		keys[Reduce(toks).Key()] = true
	}
	if len(keys) != 1 {
		t.Fatalf("got %d distinct templates, want 1", len(keys))
	}
}

func TestReduceMultiLineRepeats(t *testing.T) {
	// Two-line unit repeated: "k: v\n" lines fold into an array over
	// the line unit when followed by a distinct terminator line shape.
	rec := "a: 1\nb: 2\nc: 3\nend;\n"
	toks, _ := ExtractRecordTemplate([]byte(rec), chars.NewSet(": ;"))
	got := Reduce(toks)
	// Unit "F: F" separated by '\n'... the terminator line "end;\n"
	// begins with a field, so the fold is (F: F\n)*F;\n — the final
	// unit must still match "F: F". It does not ("end;" has no colon),
	// so the minimal template keeps the repeated lines folded only if
	// a valid (U sep)*U term decomposition exists. Verify the result
	// is stable and contains an array.
	if !got.HasArray() {
		t.Fatalf("Reduce = %v, expected an array fold somewhere", got)
	}
}

func TestReduceKeyValueLines(t *testing.T) {
	// "F: F\n" repeated 3 times with a distinct last line:
	// (F: F\n)*F: F}\n style. Build it explicitly so the unit is clean.
	rec := "a: 1\nb: 2\nc: 3\nd: 4}\n"
	toks, _ := ExtractRecordTemplate([]byte(rec), chars.NewSet(": }"))
	got := Reduce(toks)
	if !got.HasArray() {
		t.Fatalf("Reduce = %v, want an array", got)
	}
}

func TestReduceFoldsAtSingleSeparator(t *testing.T) {
	// Minimality means maximal folding (§4.3.1: syslog's minimum
	// structure template is (F )*F\n even for a fixed field count).
	// F,F;F\n therefore folds the comma pair: (F,)*F;F\n. The array
	// unfolding refinement recovers the struct form when MDL prefers it.
	toks, _ := ExtractRecordTemplate([]byte("a,b;c\n"), chars.NewSet(",;"))
	got := Reduce(toks)
	want := tpl(Array([]*Node{Field()}, ',', ';'), Field(), Lit("\n"))
	if !got.Equal(want) {
		t.Fatalf("Reduce = %v, want %v", got, want)
	}
}

func TestReduceSyslogToMinimal(t *testing.T) {
	// §4.3.1's example: space-separated words reduce to (F )*F\n.
	toks, _ := ExtractRecordTemplate(
		[]byte("Apr 24 04:02:24 srv7 snort shutdown succeeded\n"),
		chars.NewSet(" "))
	got := Reduce(toks)
	want := Array([]*Node{Field()}, ' ', '\n')
	if !got.Equal(want) {
		t.Fatalf("Reduce = %v, want %v", got, want)
	}
}

func TestReduceIdempotentOnMinimal(t *testing.T) {
	toks, _ := ExtractRecordTemplate([]byte("a,b,c,d\n"), chars.NewSet(","))
	min := Reduce(toks)
	again := Reduce(Tokens(min))
	if !min.Equal(again) {
		t.Fatalf("Reduce not idempotent: %v then %v", min, again)
	}
}

func TestReduceNestedList(t *testing.T) {
	// Records like "1,2,3|4,5|6;\n": groups separated by '|', items by
	// ','. Reduction should discover nesting (inner arrays over ',',
	// outer over '|').
	rec := "1,2,3|4,5,9|6,7,8;\n"
	toks, _ := ExtractRecordTemplate([]byte(rec), chars.NewSet(",|;"))
	got := Reduce(toks)
	inner := Array([]*Node{Field()}, ',', '|')
	_ = inner
	if !got.HasArray() {
		t.Fatalf("Reduce = %v, want arrays", got)
	}
	if got.Depth() < 3 {
		t.Fatalf("Reduce = %v, want nested arrays (depth>=3, got %d)", got, got.Depth())
	}
}

func TestTokensRoundTrip(t *testing.T) {
	n := tpl(Lit("["), Field(), Lit(":"), Field(), Lit("] "), Array([]*Node{Field()}, '.', '\n'))
	back := Struct(Tokens(n)...).Normalize()
	if !back.Equal(n) {
		t.Fatalf("Tokens round trip = %v, want %v", back, n)
	}
}

func TestMinimalFromRecord(t *testing.T) {
	min, fb := MinimalFromRecord([]byte("[01:05:02] 1.2.3.4\n"), chars.NewSet("[]: ."))
	if fb != 10 {
		t.Fatalf("fieldBytes = %d, want 10", fb)
	}
	if min.String() == "" || !strings.Contains(min.String(), "F") {
		t.Fatalf("unexpected minimal template %v", min)
	}
}

// randTemplate builds a random record-template token sequence.
func randTokens(rng *rand.Rand) []*Node {
	n := 1 + rng.Intn(30)
	toks := make([]*Node, 0, n)
	seps := ",;: |"
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			toks = append(toks, Field())
		} else {
			toks = append(toks, Lit(string(seps[rng.Intn(len(seps))])))
		}
	}
	toks = append(toks, Lit("\n"))
	return toks
}

// Property: Reduce always terminates and is idempotent.
func TestQuickReduceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		toks := randTokens(rng)
		r1 := Reduce(toks)
		r2 := Reduce(Tokens(r1))
		if !r1.Equal(r2) {
			t.Fatalf("case %d: Reduce not idempotent\ntoks=%v\nr1=%v\nr2=%v",
				i, Struct(toks...).Normalize(), r1, r2)
		}
	}
}

// Property: reduction preserves the RT-CharSet.
func TestQuickReducePreservesCharset(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		toks := randTokens(rng)
		orig := Struct(toks...).Normalize().RTCharSet()
		red := Reduce(toks).RTCharSet()
		if !red.Equal(orig) {
			t.Fatalf("case %d: charset changed %v -> %v", i, orig, red)
		}
	}
}

// Property: Key/Equal agree on random trees.
func TestQuickKeyEqualAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	trees := make([]*Node, 60)
	for i := range trees {
		trees[i] = Reduce(randTokens(rng))
	}
	for i, a := range trees {
		for j, b := range trees {
			if (a.Key() == b.Key()) != a.Equal(b) {
				t.Fatalf("trees %d,%d disagree: %v vs %v", i, j, a, b)
			}
		}
	}
}

// Property: normalization preserves display string.
func TestQuickNormalizePreservesString(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 200; i++ {
		toks := randTokens(rng)
		raw := Struct(toks...)
		if raw.String() != raw.Normalize().String() {
			t.Fatalf("case %d: %q != %q", i, raw.String(), raw.Normalize().String())
		}
	}
}

func TestIsPeriodicStack(t *testing.T) {
	line := func() []*Node {
		return []*Node{Field(), Lit(","), Field(), Lit("\n")}
	}
	single := tpl(line()...)
	if IsPeriodicStack(single) {
		t.Error("single-line template flagged periodic")
	}
	double := tpl(append(line(), line()...)...)
	if !IsPeriodicStack(double) {
		t.Error("2-stack not flagged periodic")
	}
	triple := tpl(append(append(line(), line()...), line()...)...)
	if !IsPeriodicStack(triple) {
		t.Error("3-stack not flagged periodic")
	}
	// Two different lines: not periodic.
	mixed := tpl(Field(), Lit(":"), Field(), Lit("\n"), Field(), Lit("="), Field(), Lit("\n"))
	if IsPeriodicStack(mixed) {
		t.Error("heterogeneous 2-line template flagged periodic")
	}
	// ABAB is periodic with period 2.
	abab := tpl(
		Field(), Lit(":"), Field(), Lit("\n"), Field(), Lit("="), Field(), Lit("\n"),
		Field(), Lit(":"), Field(), Lit("\n"), Field(), Lit("="), Field(), Lit("\n"))
	if !IsPeriodicStack(abab) {
		t.Error("ABAB stack not flagged periodic")
	}
}

func TestIsPeriodicStackWithArraySegments(t *testing.T) {
	// Two identical array-terminated lines: periodic.
	arrLine := func() *Node { return Array([]*Node{Field()}, ',', '\n') }
	double := tpl(arrLine(), arrLine())
	if !IsPeriodicStack(double) {
		t.Error("stack of array lines not flagged periodic")
	}
}

func TestHasFreeLineArray(t *testing.T) {
	free := Array([]*Node{Field()}, '\n', ',')
	if !HasFreeLineArray(tpl(free, Field(), Lit("\n"))) {
		t.Error("free-line array not detected")
	}
	// (F )*F\n is NOT free-line (separator is space).
	syslog := Array([]*Node{Field()}, ' ', '\n')
	if HasFreeLineArray(tpl(syslog)) {
		t.Error("syslog array wrongly flagged")
	}
	// Structured body with '\n' separator is NOT free-line.
	kv := Array([]*Node{Field(), Lit(": "), Field()}, '\n', '}')
	if HasFreeLineArray(tpl(Lit("{"), kv)) {
		t.Error("structured cross-line array wrongly flagged")
	}
	if HasFreeLineArray(tpl(Field(), Lit(","), Field(), Lit("\n"))) {
		t.Error("plain template wrongly flagged")
	}
}

func TestHasFreeLineArrayNested(t *testing.T) {
	inner := Array([]*Node{Field()}, '\n', ';')
	outer := Array([]*Node{inner, Lit(",")}, '|', '\n')
	if !HasFreeLineArray(tpl(outer)) {
		t.Error("nested free-line array not detected")
	}
}

func TestJSONRoundTripExamples(t *testing.T) {
	trees := []*Node{
		tpl(Field(), Lit(","), Field(), Lit("\n")),
		Array([]*Node{Field()}, ',', '\n'),
		tpl(Lit("["), Array([]*Node{Field(), Lit(":"), Field()}, ';', ']'), Lit("\n")),
		tpl(Lit(`{"`), Field(), Lit(`"}`), Lit("\n")),
	}
	for i, tr := range trees {
		raw, err := tr.MarshalJSON()
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		back, err := UnmarshalNode(raw)
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if !back.Normalize().Equal(tr.Normalize()) {
			t.Fatalf("tree %d round trip: %v vs %v", i, back, tr)
		}
	}
}

// Property: random reduced templates survive JSON round trips.
func TestQuickJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		tr := Reduce(randTokens(rng))
		raw, err := tr.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalNode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Normalize().Equal(tr) {
			t.Fatalf("case %d: %v vs %v", i, back.Normalize(), tr)
		}
	}
}

func TestUnmarshalNodeRejectsBadInput(t *testing.T) {
	bad := []string{
		`{"kind":"array","sep":"","term":"x","children":[{"kind":"field"}]}`,
		`{"kind":"array","sep":"ab","term":"x","children":[{"kind":"field"}]}`,
		`{"kind":"array","sep":",","term":",","children":[{"kind":"field"}]}`,
		`{"kind":"array","sep":",","term":";"}`,
		`{"kind":"lit"}`,
		`{"kind":"nope"}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := UnmarshalNode([]byte(s)); err == nil {
			t.Errorf("UnmarshalNode(%s) should fail", s)
		}
	}
}

func TestAppendFlatTokensMatchesExtract(t *testing.T) {
	cases := []struct {
		rec string
		set string
	}{
		{"192.168.0.1, 200\n", ". ,"},
		{"a,,b\n", ","},
		{"hello world", ""},
		{"ab\ncd\n", ""},
		{"", ",."},
	}
	for _, c := range cases {
		toks, fb := ExtractRecordTemplate([]byte(c.rec), chars.NewSet(c.set))
		flat, flatFB := AppendFlatTokens(nil, []byte(c.rec), chars.NewSet(c.set))
		if fb != flatFB {
			t.Fatalf("%q: field bytes %d vs flat %d", c.rec, fb, flatFB)
		}
		if len(toks) != len(flat) {
			t.Fatalf("%q: %d tokens vs flat %d", c.rec, len(toks), len(flat))
		}
		for i, tok := range toks {
			if tok.Kind == KField {
				if flat[i] != TokField {
					t.Fatalf("%q token %d: want field, got %d", c.rec, i, flat[i])
				}
			} else if flat[i] != uint16(tok.Lit[0]) {
				t.Fatalf("%q token %d: want %q, got %d", c.rec, i, tok.Lit, flat[i])
			}
		}
	}
}

func TestFlatReducerMatchesReduce(t *testing.T) {
	records := []string{
		"a,b,c,d\n",
		"k=v k=v k=v\n",
		"x\n",
		"1;2;3\n4;5;6\n",
		"--\n",
	}
	var fr FlatReducer
	for _, rec := range records {
		set := chars.NewSet(",=; ")
		toks, _ := ExtractRecordTemplate([]byte(rec), set)
		want := Reduce(toks)
		flat, _ := AppendFlatTokens(nil, []byte(rec), set)
		// The same warm reducer across all records: interner reuse must
		// not leak state between reductions.
		if got := fr.Reduce(flat); !got.Equal(want) {
			t.Fatalf("%q: FlatReducer %v, Reduce %v", rec, got, want)
		}
		if got := ReduceFlat(flat); !got.Equal(want) {
			t.Fatalf("%q: ReduceFlat %v, Reduce %v", rec, got, want)
		}
	}
}

func TestAppendFlatTokensAppends(t *testing.T) {
	set := chars.NewSet(",")
	dst, _ := AppendFlatTokens(nil, []byte("a,b\n"), set)
	n := len(dst)
	dst, _ = AppendFlatTokens(dst, []byte("c,d\n"), set)
	if len(dst) != 2*n {
		t.Fatalf("append grew %d -> %d, want %d", n, len(dst), 2*n)
	}
	if dst[0] != TokField || dst[n] != TokField {
		t.Fatalf("windows not concatenated: %v", dst)
	}
}
