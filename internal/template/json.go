package template

import (
	"encoding/json"
	"fmt"
)

// jsonNode is the serialized form of a template tree. Kind is one of
// "field", "lit", "struct", "array".
type jsonNode struct {
	Kind     string     `json:"kind"`
	Text     string     `json:"text,omitempty"`
	Sep      string     `json:"sep,omitempty"`
	Term     string     `json:"term,omitempty"`
	Children []jsonNode `json:"children,omitempty"`
}

// MarshalJSON serializes the template tree; it round-trips through
// UnmarshalNode. Templates serialize structurally (not via the display
// string, which is ambiguous for literal parentheses).
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSON(n))
}

func toJSON(n *Node) jsonNode {
	switch n.Kind {
	case KField:
		return jsonNode{Kind: "field"}
	case KLiteral:
		return jsonNode{Kind: "lit", Text: n.Lit}
	case KStruct:
		out := jsonNode{Kind: "struct"}
		for _, c := range n.Children {
			out.Children = append(out.Children, toJSON(c))
		}
		return out
	case KArray:
		out := jsonNode{Kind: "array", Sep: string(n.Sep), Term: string(n.Term)}
		for _, c := range n.Children {
			out.Children = append(out.Children, toJSON(c))
		}
		return out
	}
	return jsonNode{}
}

// UnmarshalNode parses a template serialized by MarshalJSON.
func UnmarshalNode(data []byte) (*Node, error) {
	var jn jsonNode
	if err := json.Unmarshal(data, &jn); err != nil {
		return nil, fmt.Errorf("template: %w", err)
	}
	return fromJSON(jn)
}

func fromJSON(jn jsonNode) (*Node, error) {
	switch jn.Kind {
	case "field":
		return Field(), nil
	case "lit":
		if jn.Text == "" {
			return nil, fmt.Errorf("template: empty literal")
		}
		return Lit(jn.Text), nil
	case "struct":
		children := make([]*Node, 0, len(jn.Children))
		for _, c := range jn.Children {
			n, err := fromJSON(c)
			if err != nil {
				return nil, err
			}
			children = append(children, n)
		}
		return Struct(children...), nil
	case "array":
		if len(jn.Sep) != 1 || len(jn.Term) != 1 {
			return nil, fmt.Errorf("template: array sep/term must be single characters")
		}
		if jn.Sep == jn.Term {
			return nil, fmt.Errorf("template: array sep and term must differ")
		}
		if len(jn.Children) == 0 {
			return nil, fmt.Errorf("template: array with empty body")
		}
		body := make([]*Node, 0, len(jn.Children))
		for _, c := range jn.Children {
			n, err := fromJSON(c)
			if err != nil {
				return nil, err
			}
			body = append(body, n)
		}
		return Array(body, jn.Sep[0], jn.Term[0]), nil
	default:
		return nil, fmt.Errorf("template: unknown node kind %q", jn.Kind)
	}
}
