// Package template implements the record/structure template language of
// Datamaran (§2 and §3.3 of the paper).
//
// A record template is a string over ordinary characters plus the field
// placeholder 'F' (Definition 2.1). A structure template is a restricted
// regular expression over record templates (Definition 2.3) whose form is
// constrained by Assumption 3: every template is a tree of
//
//	Struct: a fixed sequence  {A}{B}{C}...
//	Array:  ({A}x)*{A}y   — body A repeated, separated by character x,
//	        terminated by the distinct character y
//	Field:  the placeholder 'F'
//	Literal: a run of formatting characters
//
// The package provides construction, canonical serialization (used as the
// hash key in the generation step), structural equality, extraction of a
// record template from an instantiated record given an RT-CharSet
// (Assumption 2), and reduction of a record template to its minimal
// structure template (step 4 of the generation step, §9.1).
package template

import (
	"fmt"
	"strings"

	"datamaran/internal/chars"
)

// Kind discriminates template tree nodes.
type Kind uint8

const (
	// KField is the field placeholder 'F'.
	KField Kind = iota
	// KLiteral is a run of formatting characters.
	KLiteral
	// KStruct is a fixed sequence of children.
	KStruct
	// KArray is ({body}sep)*{body}term with sep != term.
	KArray
)

func (k Kind) String() string {
	switch k {
	case KField:
		return "Field"
	case KLiteral:
		return "Literal"
	case KStruct:
		return "Struct"
	case KArray:
		return "Array"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Node is a node of a structure-template tree. Nodes are immutable once
// built; transforms return new trees.
type Node struct {
	Kind Kind
	// Lit holds the text of a KLiteral node.
	Lit string
	// Children holds the sequence for KStruct, or the array body for
	// KArray (the body is the concatenation of Children).
	Children []*Node
	// Sep and Term are the separator and terminator characters of a
	// KArray node. The structural-form assumption requires Sep != Term.
	Sep, Term byte
}

// Field returns a field placeholder node.
func Field() *Node { return &Node{Kind: KField} }

// Lit returns a literal node holding text.
func Lit(text string) *Node { return &Node{Kind: KLiteral, Lit: text} }

// Struct returns a struct node over children. Adjacent literals are not
// merged here; use Normalize for canonical form.
func Struct(children ...*Node) *Node {
	return &Node{Kind: KStruct, Children: children}
}

// Array returns an array node ({body}sep)*{body}term.
func Array(body []*Node, sep, term byte) *Node {
	return &Node{Kind: KArray, Children: body, Sep: sep, Term: term}
}

// Clone returns a deep copy of the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Lit: n.Lit, Sep: n.Sep, Term: n.Term}
	if n.Children != nil {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Equal reports deep structural equality.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Lit != m.Lit || n.Sep != m.Sep || n.Term != m.Term {
		return false
	}
	if len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// NumFields returns the number of field placeholders in the tree. Fields
// inside an array body are counted once (they correspond to columns of a
// child table, not to per-record value counts).
func (n *Node) NumFields() int {
	switch n.Kind {
	case KField:
		return 1
	case KLiteral:
		return 0
	default:
		t := 0
		for _, c := range n.Children {
			t += c.NumFields()
		}
		return t
	}
}

// HasArray reports whether the tree contains an array node.
func (n *Node) HasArray() bool {
	if n.Kind == KArray {
		return true
	}
	for _, c := range n.Children {
		if c.HasArray() {
			return true
		}
	}
	return false
}

// Depth returns the nesting depth of the tree (a bare field or literal has
// depth 1).
func (n *Node) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// RTCharSet returns the set of formatting characters appearing in the
// template (literal text plus array separators/terminators).
func (n *Node) RTCharSet() chars.Set {
	var s chars.Set
	n.addChars(&s)
	return s
}

func (n *Node) addChars(s *chars.Set) {
	switch n.Kind {
	case KLiteral:
		for i := 0; i < len(n.Lit); i++ {
			s.Add(n.Lit[i])
		}
	case KArray:
		s.Add(n.Sep)
		s.Add(n.Term)
	}
	for _, c := range n.Children {
		c.addChars(s)
	}
}

// String renders the template in the paper's notation: fields as 'F',
// literals verbatim (with \n, \t escaped for display), arrays as
// "({body}sep)*{body}term".
func (n *Node) String() string {
	var b strings.Builder
	n.display(&b)
	return b.String()
}

func (n *Node) display(b *strings.Builder) {
	switch n.Kind {
	case KField:
		b.WriteByte('F')
	case KLiteral:
		for i := 0; i < len(n.Lit); i++ {
			writeDisplayByte(b, n.Lit[i])
		}
	case KStruct:
		for _, c := range n.Children {
			c.display(b)
		}
	case KArray:
		b.WriteByte('(')
		for _, c := range n.Children {
			c.display(b)
		}
		writeDisplayByte(b, n.Sep)
		b.WriteString(")*")
		for _, c := range n.Children {
			c.display(b)
		}
		writeDisplayByte(b, n.Term)
	}
}

func writeDisplayByte(b *strings.Builder, c byte) {
	switch c {
	case '\n':
		b.WriteString(`\n`)
	case '\t':
		b.WriteString(`\t`)
	case '\r':
		b.WriteString(`\r`)
	default:
		b.WriteByte(c)
	}
}

// Key returns a canonical serialization usable as a hash-table key in the
// generation step. Unlike String it is unambiguous: structural markers are
// escaped so literal parentheses cannot collide with array syntax.
func (n *Node) Key() string {
	var b strings.Builder
	n.key(&b)
	return b.String()
}

func (n *Node) key(b *strings.Builder) {
	switch n.Kind {
	case KField:
		b.WriteString("\x01F")
	case KLiteral:
		b.WriteString("\x01L")
		b.WriteString(n.Lit)
		b.WriteByte('\x02')
	case KStruct:
		b.WriteString("\x01S")
		for _, c := range n.Children {
			c.key(b)
		}
		b.WriteByte('\x02')
	case KArray:
		b.WriteString("\x01A")
		b.WriteByte(n.Sep)
		b.WriteByte(n.Term)
		for _, c := range n.Children {
			c.key(b)
		}
		b.WriteByte('\x02')
	}
}

// Len returns the serialized length of the template in characters, the
// len(ST) quantity of the MDL score (§9.2). Fields count 1, literals their
// length, arrays the body plus separator, repetition marker, body and
// terminator — matching the paper's regular-expression string form.
func (n *Node) Len() int {
	switch n.Kind {
	case KField:
		return 1
	case KLiteral:
		return len(n.Lit)
	case KStruct:
		t := 0
		for _, c := range n.Children {
			t += c.Len()
		}
		return t
	case KArray:
		body := 0
		for _, c := range n.Children {
			body += c.Len()
		}
		// "(" body sep ")*" body term
		return 1 + body + 1 + 2 + body + 1
	}
	return 0
}

// Normalize returns a canonical form: nested structs are flattened,
// adjacent literals merged, empty literals and single-child structs
// collapsed. Equal templates normalize to equal trees.
func (n *Node) Normalize() *Node {
	switch n.Kind {
	case KField:
		return Field()
	case KLiteral:
		if n.Lit == "" {
			return nil
		}
		return Lit(n.Lit)
	case KArray:
		body := normalizeSeq(n.Children)
		return Array(body, n.Sep, n.Term)
	case KStruct:
		out := normalizeSeq(n.Children)
		if len(out) == 1 {
			return out[0]
		}
		return Struct(out...)
	}
	return nil
}

func normalizeSeq(children []*Node) []*Node {
	var out []*Node
	var push func(c *Node)
	push = func(c *Node) {
		c = c.Normalize()
		if c == nil {
			return
		}
		if c.Kind == KStruct {
			for _, g := range c.Children {
				push(g)
			}
			return
		}
		if c.Kind == KLiteral && len(out) > 0 && out[len(out)-1].Kind == KLiteral {
			out[len(out)-1] = Lit(out[len(out)-1].Lit + c.Lit)
			return
		}
		out = append(out, c)
	}
	for _, c := range children {
		push(c)
	}
	return out
}

// IsPeriodicStack reports whether the template's newline-delimited
// segments repeat with a period shorter than the whole — i.e. the
// template is a k-fold stack of a shorter template. Stacks describe the
// same records as their 1-period form but with wrong boundaries, and they
// flood candidate pools with near-duplicates.
func IsPeriodicStack(st *Node) bool {
	var segs []string
	var buf strings.Builder
	for _, t := range Tokens(st) {
		buf.WriteString(t.Key())
		if (t.Kind == KLiteral && t.Lit == "\n") ||
			(t.Kind == KArray && t.Term == '\n') {
			segs = append(segs, buf.String())
			buf.Reset()
		}
	}
	if buf.Len() > 0 {
		segs = append(segs, buf.String())
	}
	n := len(segs)
	for p := 1; p <= n/2; p++ {
		if n%p != 0 {
			continue
		}
		periodic := true
		for i := p; i < n && periodic; i++ {
			periodic = segs[i] == segs[i%p]
		}
		if periodic {
			return true
		}
	}
	return false
}

// HasFreeLineArray reports whether the template contains an array of the
// form (F\n)* — a single bare field repeated with the newline separator.
// Such an array absorbs arbitrary whole lines, imposing no structure on
// them; like the bare template F\n it can "explain" anything (including
// the other record types of an interleaved dataset) and must be excluded
// from candidate structures.
func HasFreeLineArray(st *Node) bool {
	if st.Kind == KArray && st.Sep == '\n' &&
		len(st.Children) == 1 && st.Children[0].Kind == KField {
		return true
	}
	for _, c := range st.Children {
		if HasFreeLineArray(c) {
			return true
		}
	}
	return false
}
