package template

import (
	"testing"

	"datamaran/internal/chars"
)

// FuzzReduce cross-checks the two reduction entry points — the tree-token
// Reduce over ExtractRecordTemplate and the flat-token FlatReducer over
// AppendFlatTokens — on arbitrary records and charsets, and asserts the
// reduction invariants: the result is normalized (idempotent under
// Normalize), canonical keys agree with structural equality, and field
// byte counts agree between the extraction paths.
func FuzzReduce(f *testing.F) {
	f.Add([]byte("a,b,c,d\n"), ",")
	f.Add([]byte("k=v k=v k=v\n"), "= ")
	f.Add([]byte("BEGIN 1\nv=7\nEND\n"), "= ")
	f.Add([]byte("[12:08] (a,b) x\n[12:09] (c,d) y\n"), "[]:(), ")
	f.Add([]byte("no specials at all"), "")
	f.Add([]byte(""), ",;")

	f.Fuzz(func(t *testing.T, record []byte, charset string) {
		if len(record) > 4096 {
			t.Skip("bounded so the quadratic repeat search stays fast")
		}
		// Restrict the charset to the candidate alphabet real charsets
		// are drawn from (rtsets are always subsets of it).
		rtset := chars.NewSet(charset).Intersect(chars.DefaultCandidates())

		toks, fb := ExtractRecordTemplate(record, rtset)
		tree := Reduce(toks)

		flat, flatFB := AppendFlatTokens(nil, record, rtset)
		if fb != flatFB {
			t.Fatalf("field bytes diverge: tree %d, flat %d", fb, flatFB)
		}
		if len(flat) != len(toks) {
			t.Fatalf("token counts diverge: tree %d, flat %d", len(toks), len(flat))
		}
		var fr FlatReducer
		viaFlat := fr.Reduce(flat)
		if !tree.Equal(viaFlat) {
			t.Fatalf("reductions diverge:\n tree: %v\n flat: %v", tree, viaFlat)
		}
		// A second reduction through the same FlatReducer (warm interner)
		// must not change the result.
		if again := fr.Reduce(flat); !tree.Equal(again) {
			t.Fatalf("warm FlatReducer diverges: %v vs %v", tree, again)
		}

		if norm := tree.Normalize(); norm != nil && !tree.Equal(norm) {
			t.Fatalf("Reduce result not normalized: %v vs %v", tree, norm)
		}
		if tree.Key() != viaFlat.Key() {
			t.Fatalf("equal trees with different keys: %q vs %q", tree.Key(), viaFlat.Key())
		}
		if nf := tree.NumFields(); nf < 0 || (fb > 0 && nf == 0) {
			t.Fatalf("field bytes %d but %d fields in %v", fb, nf, tree)
		}
	})
}
