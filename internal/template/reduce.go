package template

import "datamaran/internal/chars"

// ExtractRecordTemplate extracts the record template from an instantiated
// record, given the RT-CharSet (step 3 of the generation step). Under
// Assumption 2 this is deterministic: every maximal run of bytes outside
// rtset becomes a single field placeholder, every byte inside rtset (plus
// '\n', which is always structural per Definition 2.4) becomes a one-byte
// literal token.
//
// The result is a flat token sequence: KField and single-character
// KLiteral nodes. It also returns the total number of bytes replaced by
// field placeholders (the field coverage used by the assimilation score).
func ExtractRecordTemplate(record []byte, rtset chars.Set) (tokens []*Node, fieldBytes int) {
	tokens = make([]*Node, 0, len(record)/2+1)
	i := 0
	for i < len(record) {
		b := record[i]
		if b == '\n' || rtset.Contains(b) {
			tokens = append(tokens, Lit(string(b)))
			i++
			continue
		}
		j := i
		for j < len(record) && record[j] != '\n' && !rtset.Contains(record[j]) {
			j++
		}
		tokens = append(tokens, Field())
		fieldBytes += j - i
		i = j
	}
	return tokens, fieldBytes
}

// maxUnitTokens bounds the repeated-unit length considered during
// reduction. Units longer than this (entire repeated paragraphs of over a
// hundred tokens) are outside any realistic log structure and searching
// for them is quadratic.
const maxUnitTokens = 160

// TokField is the flat-token encoding of the field placeholder. Flat
// tokens are uint16 values: 0..255 is a one-byte literal, TokField is 'F'.
// The flat form carries exactly the information ExtractRecordTemplate
// produces (fields and single-character literals) without a heap node per
// token, so the generation step can keep whole tokenized datasets in one
// arena slice.
const TokField uint16 = 256

// AppendFlatTokens is ExtractRecordTemplate in flat-token form: it appends
// the record template of record under rtset to dst (one uint16 per token)
// and returns the extended slice plus the field byte count. The token
// sequence is identical, token for token, to ExtractRecordTemplate's.
func AppendFlatTokens(dst []uint16, record []byte, rtset chars.Set) ([]uint16, int) {
	fieldBytes := 0
	i := 0
	for i < len(record) {
		b := record[i]
		if b == '\n' || rtset.Contains(b) {
			dst = append(dst, uint16(b))
			i++
			continue
		}
		j := i
		for j < len(record) && record[j] != '\n' && !rtset.Contains(record[j]) {
			j++
		}
		dst = append(dst, TokField)
		fieldBytes += j - i
		i = j
	}
	return dst, fieldBytes
}

// Reduce reduces a token sequence to its minimal structure template
// (step 4 of the generation step): repeated patterns of the form
// U sep U sep ... U term (sep != term, at least two occurrences of U) are
// folded into Array(U, sep, term), innermost-first, until no reduction
// applies. The result is a normalized tree.
//
// The choice among conflicting reductions is deterministic (shortest unit,
// leftmost position first), matching the paper's "choose one arbitrarily".
//
// Tokens are interned to integer ids so the quadratic repeat search
// compares ints rather than recursing over trees — the generation step
// calls Reduce on every distinct candidate window, making this the
// pipeline's hottest loop.
func Reduce(tokens []*Node) *Node {
	r := reducer{byKey: map[string]int32{}}
	seq := make([]int32, len(tokens))
	for i, t := range tokens {
		seq[i] = r.intern(t)
	}
	return r.reduceSeq(seq)
}

// reduceSeq runs the fold loop to fixpoint and builds the normalized tree.
func (r *reducer) reduceSeq(seq []int32) *Node {
	for {
		next, ok := r.reduceOnce(seq)
		if !ok {
			break
		}
		seq = next
	}
	nodes := make([]*Node, len(seq))
	for i, id := range seq {
		nodes[i] = r.nodes[id]
	}
	return Struct(nodes...).Normalize()
}

// FlatReducer reduces flat token sequences (see TokField) to minimal
// structure templates, keeping its token-interning tables alive across
// calls. Interned nodes are immutable and ids are compared only for
// equality, so reusing the tables across windows changes no result — it
// only makes the per-window cost proportional to the window, not to the
// interner. The zero value is ready to use. Not safe for concurrent use.
type FlatReducer struct {
	r   reducer
	seq []int32
}

// Reduce reduces a flat token sequence to its minimal structure template.
// The result is identical to Reduce over the equivalent []*Node tokens.
func (fr *FlatReducer) Reduce(toks []uint16) *Node {
	if fr.r.byKey == nil {
		fr.r.byKey = map[string]int32{}
	}
	if cap(fr.seq) < len(toks) {
		fr.seq = make([]int32, 0, len(toks)*2)
	}
	seq := fr.seq[:len(toks)]
	for i, t := range toks {
		seq[i] = fr.r.internTok(t)
	}
	return fr.r.reduceSeq(seq)
}

// ReduceFlat reduces a flat token sequence with a throwaway reducer; use a
// FlatReducer to amortize interning across many sequences.
func ReduceFlat(toks []uint16) *Node {
	var fr FlatReducer
	return fr.Reduce(toks)
}

// reducer interns template tokens: equal tokens (deep equality) share one
// id. charOf[id] holds the byte of single-char literal tokens, or -1.
type reducer struct {
	byKey  map[string]int32
	nodes  []*Node
	charOf []int16
	// fast paths: ids+1 for the field token and single-char literals
	// (0 means unassigned).
	fieldID int32
	charIDs [256]int32
}

func (r *reducer) intern(n *Node) int32 {
	// Fast paths for the two token kinds that dominate generation.
	if n.Kind == KField {
		if r.fieldID != 0 {
			return r.fieldID - 1
		}
	} else if n.Kind == KLiteral && len(n.Lit) == 1 {
		if id := r.charIDs[n.Lit[0]]; id != 0 {
			return id - 1
		}
	}
	key := n.Key()
	if id, ok := r.byKey[key]; ok {
		return id
	}
	id := int32(len(r.nodes))
	r.byKey[key] = id
	r.nodes = append(r.nodes, n)
	c := int16(-1)
	if n.Kind == KField {
		r.fieldID = id + 1
	} else if n.Kind == KLiteral && len(n.Lit) == 1 {
		c = int16(n.Lit[0])
		r.charIDs[n.Lit[0]] = id + 1
	}
	r.charOf = append(r.charOf, c)
	return id
}

// internTok interns a flat token, building the backing Node only the
// first time a token value is seen.
func (r *reducer) internTok(t uint16) int32 {
	if t == TokField {
		if r.fieldID != 0 {
			return r.fieldID - 1
		}
		return r.intern(Field())
	}
	if id := r.charIDs[byte(t)]; id != 0 {
		return id - 1
	}
	return r.intern(Lit(string([]byte{byte(t)})))
}

// reduceOnce applies the first applicable fold and reports whether one was
// found.
func (r *reducer) reduceOnce(seq []int32) ([]int32, bool) {
	n := len(seq)
	maxL := n / 2
	if maxL > maxUnitTokens {
		maxL = maxUnitTokens
	}
	// l is the unit length in tokens (the repeated body U), so the
	// repeated block [U sep] has l+1 tokens. We need at least
	// [U sep][U term] = 2l+2 tokens.
	for l := 1; 2*l+2 <= n && l <= maxL; l++ {
		for i := 0; i+2*l+2 <= n; i++ {
			sep := r.charOf[seq[i+l]]
			if sep < 0 {
				continue
			}
			if !eqRun(seq, i, i+l+1, l) {
				continue
			}
			// Count consecutive [U sep] blocks starting at i.
			j := i
			for j+l < n && seq[j+l] == seq[i+l] && eqRun(seq, i, j, l) {
				j += l + 1
			}
			// Expect a final U followed by a distinct terminator.
			if j == i || j+l >= n {
				continue
			}
			if !eqRun(seq, i, j, l) {
				continue
			}
			term := r.charOf[seq[j+l]]
			if term < 0 || term == sep {
				continue
			}
			body := make([]*Node, l)
			for k := 0; k < l; k++ {
				body[k] = r.nodes[seq[i+k]]
			}
			arr := r.intern(Array(body, byte(sep), byte(term)))
			out := make([]int32, 0, n-(j+l+1-i)+1)
			out = append(out, seq[:i]...)
			out = append(out, arr)
			out = append(out, seq[j+l+1:]...)
			return out, true
		}
	}
	return seq, false
}

// eqRun reports whether seq[a:a+l] equals seq[b:b+l].
func eqRun(seq []int32, a, b, l int) bool {
	if a == b {
		return true
	}
	for k := 0; k < l; k++ {
		if seq[a+k] != seq[b+k] {
			return false
		}
	}
	return true
}

// Tokens flattens a template tree back into the token sequence form used
// by Reduce: fields, single-char literals, and array nodes as atomic
// tokens. Multi-character literals are split into chars.
func Tokens(n *Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case KField, KArray:
			out = append(out, n)
		case KLiteral:
			for i := 0; i < len(n.Lit); i++ {
				out = append(out, Lit(n.Lit[i:i+1]))
			}
		case KStruct:
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	walk(n)
	return out
}

// MinimalFromRecord extracts and reduces in one call: the minimal
// structure template of an instantiated record under rtset, plus the field
// byte count.
func MinimalFromRecord(record []byte, rtset chars.Set) (*Node, int) {
	toks, fb := ExtractRecordTemplate(record, rtset)
	return Reduce(toks), fb
}
