package query

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"datamaran/internal/semtype"
)

// The executor. Plans are trees of pull iterators over a "wide row":
// one cell slot per column of every FROM table (block per table, in
// FROM order), so predicate and projection offsets are stable no matter
// which join order the planner picks. Scans fill their table's block;
// hash joins merge a streamed probe row with the matching build rows.
//
// Comparison semantics: equality is exact string match (hash-join
// compatible); ordering operators compare numerically when the column's
// kind is numeric and both values parse, lexicographically otherwise.

// iter is the internal pull iterator: Next returns io.EOF after the
// last row.
type iter interface {
	Next() ([]string, error)
	Close() error
}

// Rows is an open query result stream.
type Rows struct {
	columns []string
	kinds   []semtype.Kind
	it      iter
	scans   []*scanIter // base-table scans, for Stats()
}

// Columns returns the output column names (the SELECT list as
// written).
func (r *Rows) Columns() []string { return r.columns }

// Kinds returns the output columns' scalar kinds.
func (r *Rows) Kinds() []semtype.Kind { return r.kinds }

// Next returns the next result row, or io.EOF after the last.
func (r *Rows) Next() ([]string, error) { return r.it.Next() }

// Close releases the underlying scans.
func (r *Rows) Close() error { return r.it.Close() }

// plannedTable is one FROM table with its selectivity signals.
type plannedTable struct {
	item   FromItem
	meta   TableMeta
	offset int // block start in the wide row
	// eqLit and otherLit count the table's literal predicates — the
	// tie-breaking signal when cardinality estimates collide.
	eqLit, otherLit int
}

// compiledPred is a resolved predicate: absolute wide-row offsets plus
// comparison semantics.
type compiledPred struct {
	src     Predicate
	lOff    int
	isLit   bool
	lit     string
	rOff    int
	op      string
	numeric bool
	lTab    int
	rTab    int // -1 for literals
	applied bool
}

type planner struct {
	cat    Catalog
	push   PushCatalog // non-nil when cat supports scan pushdown
	q      *Query
	tables []plannedTable
	width  int
	preds  []compiledPred
	need   [][]bool    // per table, per column: referenced by the query
	mode   ExplainMode // ExplainAnalyze wraps operators with recorders
	scans  []*scanIter // every base-table scan opened by this plan
}

// Run plans q against the catalog and opens its result stream. The
// stream is pull-based — selection, projection and join probing are
// row-at-a-time (hash-join build sides, group-by and order-by
// materialize only what they must) — and ctx cancels it mid-stream.
func Run(ctx context.Context, cat Catalog, q *Query) (*Rows, error) {
	return RunWith(ctx, cat, q, Options{})
}

// compilePred resolves one predicate's references.
func (pl *planner) compilePred(p Predicate) (compiledPred, error) {
	lt, lc, err := pl.resolveRef(p.Left)
	if err != nil {
		return compiledPred{}, err
	}
	cp := compiledPred{
		src:  p,
		lOff: pl.tables[lt].offset + lc,
		op:   p.Op,
		lTab: lt,
		rTab: -1,
	}
	lKind := pl.tables[lt].meta.Kinds[lc]
	if p.IsLit {
		cp.isLit = true
		cp.lit = p.Lit
		cp.numeric = lKind.Numeric()
		return cp, nil
	}
	rt, rc, err := pl.resolveRef(p.Right)
	if err != nil {
		return compiledPred{}, err
	}
	cp.rOff = pl.tables[rt].offset + rc
	cp.rTab = rt
	cp.numeric = lKind.Numeric() && pl.tables[rt].meta.Kinds[rc].Numeric()
	return cp, nil
}

// resolveRef maps a column reference to (table index, column index).
// Unqualified names must be unique across the FROM tables.
func (pl *planner) resolveRef(ref ColRef) (int, int, error) {
	ti := -1
	if ref.Table != "" {
		for i := range pl.tables {
			if pl.tables[i].item.Alias == ref.Table {
				ti = i
				break
			}
		}
		if ti < 0 {
			return 0, 0, fmt.Errorf("query: unknown table alias %q in %s", ref.Table, ref)
		}
		for ci, name := range pl.tables[ti].meta.Columns {
			if name == ref.Col {
				return ti, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("query: table %s has no column %q (columns: %s)",
			pl.tables[ti].item.Alias, ref.Col, strings.Join(pl.tables[ti].meta.Columns, ", "))
	}
	found := -1
	foundCol := -1
	for i := range pl.tables {
		for ci, name := range pl.tables[i].meta.Columns {
			if name == ref.Col {
				if found >= 0 {
					return 0, 0, fmt.Errorf("query: column %q is ambiguous (in %s and %s) — qualify it",
						ref.Col, pl.tables[found].item.Alias, pl.tables[i].item.Alias)
				}
				found, foundCol = i, ci
			}
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("query: no table has column %q", ref.Col)
	}
	return found, foundCol, nil
}

// computeNeeded marks, per table, every column the query references —
// select outputs, grouping keys, predicate sides, join keys (ORDER BY
// names output columns, so it adds nothing). Unmarked columns are
// never decoded by a pushed scan.
func (pl *planner) computeNeeded() error {
	pl.need = make([][]bool, len(pl.tables))
	for i := range pl.tables {
		pl.need[i] = make([]bool, len(pl.tables[i].meta.Columns))
	}
	q := pl.q
	if q.Star {
		for i := range pl.need {
			for c := range pl.need[i] {
				pl.need[i][c] = true
			}
		}
	}
	mark := func(ref ColRef) error {
		ti, ci, err := pl.resolveRef(ref)
		if err != nil {
			return err
		}
		pl.need[ti][ci] = true
		return nil
	}
	for _, e := range q.Select {
		if e.Star { // count(*)
			continue
		}
		if err := mark(e.Col); err != nil {
			return err
		}
	}
	for _, ref := range q.GroupBy {
		if err := mark(ref); err != nil {
			return err
		}
	}
	for i := range pl.preds {
		cp := &pl.preds[i]
		pl.need[cp.lTab][cp.lOff-pl.tables[cp.lTab].offset] = true
		if cp.rTab >= 0 {
			pl.need[cp.rTab][cp.rOff-pl.tables[cp.rTab].offset] = true
		}
	}
	return nil
}

// defaultEqSelectivity applies to an equality literal when the store
// recorded no distinct estimate for the column.
const defaultEqSelectivity = 0.1

// card estimates a table's post-filter cardinality: the stored row
// count times each literal predicate's selectivity — 1/distinct for an
// equality when the catalog carries a distinct estimate, a coarse
// default otherwise, 1/3 for range comparisons, and near-1 for !=.
func (pl *planner) card(ti int) float64 {
	t := &pl.tables[ti]
	card := float64(t.meta.Rows)
	if card < 1 {
		card = 1
	}
	for i := range pl.preds {
		cp := &pl.preds[i]
		if !cp.isLit || cp.lTab != ti {
			continue
		}
		sel := 0.9 // !=
		switch cp.op {
		case "=":
			sel = defaultEqSelectivity
			if ci := cp.lOff - t.offset; ci < len(t.meta.Distincts) && t.meta.Distincts[ci] > 0 {
				sel = 1 / float64(t.meta.Distincts[ci])
			}
		case "<", "<=", ">", ">=":
			sel = 1.0 / 3
		}
		card *= sel
	}
	return card
}

// greedyOrder picks the join order by estimated cardinality: start at
// the table with the smallest post-filter estimate (stored row counts
// times predicate selectivities; literal-predicate counts and FROM
// order break ties, so plans stay deterministic when statistics are
// absent or equal), and repeatedly extend along join-connected tables,
// preferring more connections and then smaller estimates. Disconnected
// tables join last as cross products.
func (pl *planner) greedyOrder() []int {
	n := len(pl.tables)
	order := make([]int, 0, n)
	used := make([]bool, n)
	cards := make([]float64, n)
	for i := range cards {
		cards[i] = pl.card(i)
	}
	better := func(a, b int) bool { // a strictly cheaper than b
		if cards[a] != cards[b] {
			return cards[a] < cards[b]
		}
		ta, tb := &pl.tables[a], &pl.tables[b]
		if ta.eqLit != tb.eqLit {
			return ta.eqLit > tb.eqLit
		}
		if ta.otherLit != tb.otherLit {
			return ta.otherLit > tb.otherLit
		}
		return a < b // FROM order
	}
	first := 0
	for i := 1; i < n; i++ {
		if better(i, first) {
			first = i
		}
	}
	order = append(order, first)
	used[first] = true
	inSet := func(t int) bool { return t >= 0 && used[t] }
	for len(order) < n {
		best, bestConn := -1, -1
		for cand := 0; cand < n; cand++ {
			if used[cand] {
				continue
			}
			conn := 0
			for _, cp := range pl.preds {
				if cp.op != "=" || cp.isLit {
					continue
				}
				if (cp.lTab == cand && inSet(cp.rTab)) || (cp.rTab == cand && inSet(cp.lTab)) {
					conn++
				}
			}
			if best < 0 || conn > bestConn || (conn == bestConn && better(cand, best)) {
				best, bestConn = cand, conn
			}
		}
		order = append(order, best)
		used[best] = true
	}
	return order
}

// buildJoinTree assembles scans and hash joins along the chosen order,
// applying each predicate at the earliest point all its tables are
// present. The returned PlanNode mirrors the iterator tree for
// EXPLAIN.
func (pl *planner) buildJoinTree(ctx context.Context, order []int) (iter, *PlanNode, error) {
	joined := make([]bool, len(pl.tables))
	covered := func(cp *compiledPred) bool {
		return joined[cp.lTab] && (cp.rTab < 0 || joined[cp.rTab])
	}
	takePreds := func() []*compiledPred {
		var out []*compiledPred
		for i := range pl.preds {
			if !pl.preds[i].applied && covered(&pl.preds[i]) {
				pl.preds[i].applied = true
				out = append(out, &pl.preds[i])
			}
		}
		return out
	}

	joined[order[0]] = true
	cur, node, err := pl.scan(ctx, order[0])
	if err != nil {
		return nil, nil, err
	}
	if preds := takePreds(); len(preds) > 0 {
		node = &PlanNode{op: "filter", detail: predsDetail(preds), children: []*PlanNode{node}}
		cur = pl.attach(&filterIter{src: cur, preds: preds}, node)
	}
	for _, next := range order[1:] {
		// Equality predicates connecting next to the joined set become
		// the composite hash key; everything else newly covered is a
		// residual filter on the join output.
		var keys []*compiledPred
		for i := range pl.preds {
			cp := &pl.preds[i]
			if cp.applied || cp.op != "=" || cp.isLit || cp.rTab < 0 {
				continue
			}
			if (cp.lTab == next && joined[cp.rTab]) || (cp.rTab == next && joined[cp.lTab]) {
				cp.applied = true
				keys = append(keys, cp)
			}
		}
		joined[next] = true
		build, bnode, err := pl.scan(ctx, next)
		if err != nil {
			cur.Close()
			return nil, nil, err
		}
		// Single-table predicates on the build side filter before the
		// hash table is built.
		var buildPreds []*compiledPred
		var residual []*compiledPred
		for _, cp := range takePreds() {
			if cp.lTab == next && (cp.rTab < 0 || cp.rTab == next) {
				buildPreds = append(buildPreds, cp)
			} else {
				residual = append(residual, cp)
			}
		}
		if len(buildPreds) > 0 {
			bnode = &PlanNode{op: "filter", detail: predsDetail(buildPreds), children: []*PlanNode{bnode}}
			build = pl.attach(&filterIter{src: build, preds: buildPreds}, bnode)
		}
		var probeOffs, buildOffs []int
		for _, k := range keys {
			if k.lTab == next {
				buildOffs = append(buildOffs, k.lOff)
				probeOffs = append(probeOffs, k.rOff)
			} else {
				buildOffs = append(buildOffs, k.rOff)
				probeOffs = append(probeOffs, k.lOff)
			}
		}
		jnode := &PlanNode{op: "cross join", children: []*PlanNode{node, bnode}}
		if len(keys) > 0 {
			jnode.op = "hash join"
			jnode.detail = "on " + predsDetail(keys)
		}
		cur = pl.attach(&hashJoinIter{
			probe:      cur,
			build:      build,
			probeOffs:  probeOffs,
			buildOffs:  buildOffs,
			buildBlock: [2]int{pl.tables[next].offset, pl.tables[next].offset + len(pl.tables[next].meta.Columns)},
			width:      pl.width,
		}, jnode)
		node = jnode
		if len(residual) > 0 {
			node = &PlanNode{op: "filter", detail: predsDetail(residual), children: []*PlanNode{node}}
			cur = pl.attach(&filterIter{src: cur, preds: residual}, node)
		}
	}
	return cur, node, nil
}

// scan opens one table's scan, widened to the plan's row layout, with
// cancellation checks. Against a pushdown-capable catalog it hands the
// scan the query's needed columns for the table plus its single-table
// literal predicates, marking those predicates applied so no filter
// re-evaluates them above the scan.
func (pl *planner) scan(ctx context.Context, ti int) (iter, *PlanNode, error) {
	t := &pl.tables[ti]
	detail := "table=" + t.meta.Name
	if t.item.Alias != t.meta.Name {
		detail += " alias=" + t.item.Alias
	}
	var rows RowIter
	var err error
	if pl.push != nil {
		push := ScanPushdown{Columns: make([]int, 0, len(t.meta.Columns))}
		var cols []string
		for c, ok := range pl.need[ti] {
			if ok {
				push.Columns = append(push.Columns, c)
				cols = append(cols, t.meta.Columns[c])
			}
		}
		detail += " columns=" + strings.Join(cols, ",")
		var pushed []*compiledPred
		for i := range pl.preds {
			cp := &pl.preds[i]
			if cp.applied || !cp.isLit || cp.lTab != ti {
				continue
			}
			push.Preds = append(push.Preds, PushPred{
				Col: cp.lOff - t.offset, Op: cp.op, Lit: cp.lit, Numeric: cp.numeric,
			})
			cp.applied = true
			pushed = append(pushed, cp)
		}
		if len(pushed) > 0 {
			detail += " push=(" + predsDetail(pushed) + ")"
		}
		rows, err = pl.push.ScanPushed(t.meta.Name, push)
	} else {
		detail += " columns=*"
		rows, err = pl.cat.Scan(t.meta.Name)
	}
	if err != nil {
		return nil, nil, err
	}
	si := &scanIter{
		ctx:    ctx,
		rows:   rows,
		offset: t.offset,
		ncols:  len(t.meta.Columns),
		width:  pl.width,
	}
	pl.scans = append(pl.scans, si)
	node := &PlanNode{op: "scan", detail: detail, scan: si}
	return pl.attach(si, node), node, nil
}

// buildHead attaches projection/aggregation, ordering and limit,
// extending the plan tree above child.
func (pl *planner) buildHead(it iter, node *PlanNode) (*Rows, *PlanNode, error) {
	q := pl.q
	hasAgg := false
	for _, e := range q.Select {
		if e.Agg != "" {
			hasAgg = true
		}
	}

	var columns []string
	var kinds []semtype.Kind
	if hasAgg || len(q.GroupBy) > 0 {
		g := &groupIter{src: it}
		for _, ref := range q.GroupBy {
			ti, ci, err := pl.resolveRef(ref)
			if err != nil {
				it.Close()
				return nil, nil, err
			}
			g.groupOffs = append(g.groupOffs, pl.tables[ti].offset+ci)
			g.groupKinds = append(g.groupKinds, pl.tables[ti].meta.Kinds[ci])
		}
		for _, e := range q.Select {
			columns = append(columns, e.String())
			if e.Agg == "" {
				// Validated: a grouping column. Locate its key slot.
				ti, ci, err := pl.resolveRef(e.Col)
				if err != nil {
					it.Close()
					return nil, nil, err
				}
				off := pl.tables[ti].offset + ci
				slot := -1
				for k, goff := range g.groupOffs {
					if goff == off {
						slot = k
					}
				}
				if slot < 0 {
					it.Close()
					return nil, nil, fmt.Errorf("query: column %s must appear in GROUP BY", e.Col)
				}
				g.outs = append(g.outs, groupOut{slot: slot})
				kinds = append(kinds, pl.tables[ti].meta.Kinds[ci])
				continue
			}
			spec := aggSpec{agg: e.Agg, off: -1}
			kind := semtype.KindInt // count
			if !e.Star {
				ti, ci, err := pl.resolveRef(e.Col)
				if err != nil {
					it.Close()
					return nil, nil, err
				}
				spec.off = pl.tables[ti].offset + ci
				colKind := pl.tables[ti].meta.Kinds[ci]
				spec.numeric = colKind.Numeric()
				spec.isInt = colKind == semtype.KindInt
				switch e.Agg {
				case "count":
					kind = semtype.KindInt
				case "sum":
					kind = colKind
					if !colKind.Numeric() {
						it.Close()
						return nil, nil, fmt.Errorf("query: sum(%s) needs a numeric column (kind %s)", e.Col, colKind)
					}
				case "avg":
					kind = semtype.KindFloat
					if !colKind.Numeric() {
						it.Close()
						return nil, nil, fmt.Errorf("query: avg(%s) needs a numeric column (kind %s)", e.Col, colKind)
					}
				case "min", "max":
					kind = colKind
				}
			}
			g.outs = append(g.outs, groupOut{isAgg: true, slot: len(g.aggSpecs)})
			g.aggSpecs = append(g.aggSpecs, spec)
			kinds = append(kinds, kind)
		}
		node = &PlanNode{op: "group", detail: groupDetail(q), children: []*PlanNode{node}}
		it = pl.attach(g, node)
	} else {
		var offs []int
		if q.Star {
			multi := len(pl.tables) > 1
			for i := range pl.tables {
				for ci, name := range pl.tables[i].meta.Columns {
					if multi {
						columns = append(columns, pl.tables[i].item.Alias+"."+name)
					} else {
						columns = append(columns, name)
					}
					kinds = append(kinds, pl.tables[i].meta.Kinds[ci])
					offs = append(offs, pl.tables[i].offset+ci)
				}
			}
		} else {
			for _, e := range q.Select {
				ti, ci, err := pl.resolveRef(e.Col)
				if err != nil {
					it.Close()
					return nil, nil, err
				}
				columns = append(columns, e.String())
				kinds = append(kinds, pl.tables[ti].meta.Kinds[ci])
				offs = append(offs, pl.tables[ti].offset+ci)
			}
		}
		node = &PlanNode{op: "project", detail: strings.Join(columns, ", "), children: []*PlanNode{node}}
		it = pl.attach(&projectIter{src: it, offs: offs}, node)
	}

	if len(q.OrderBy) > 0 {
		var keys []sortKey
		for _, key := range q.OrderBy {
			col, err := findOutputCol(columns, key.Expr)
			if err != nil {
				it.Close()
				return nil, nil, err
			}
			keys = append(keys, sortKey{col: col, desc: key.Desc, numeric: kinds[col].Numeric()})
		}
		if q.Limit >= 0 {
			// ORDER BY + LIMIT: a bounded heap holds the best k rows
			// instead of materializing and sorting the whole input.
			node = &PlanNode{op: "top-k", detail: fmt.Sprintf("by %s limit %d", orderDetail(q), q.Limit), children: []*PlanNode{node}}
			it = pl.attach(&topKIter{src: it, h: topKHeap{keys: keys}, k: q.Limit}, node)
		} else {
			node = &PlanNode{op: "sort", detail: "by " + orderDetail(q), children: []*PlanNode{node}}
			it = pl.attach(&sortIter{src: it, keys: keys}, node)
		}
	} else if q.Limit >= 0 {
		node = &PlanNode{op: "limit", detail: strconv.Itoa(q.Limit), children: []*PlanNode{node}}
		it = pl.attach(&limitIter{src: it, left: q.Limit}, node)
	}
	return &Rows{columns: columns, kinds: kinds, it: it}, node, nil
}

// groupDetail renders the group node: grouping keys as written plus
// the aggregate expressions from the SELECT list.
func groupDetail(q *Query) string {
	var refs []string
	for _, r := range q.GroupBy {
		refs = append(refs, r.String())
	}
	var aggs []string
	for _, e := range q.Select {
		if e.Agg != "" {
			aggs = append(aggs, e.String())
		}
	}
	switch {
	case len(refs) > 0 && len(aggs) > 0:
		return "by " + strings.Join(refs, ", ") + " aggregate " + strings.Join(aggs, ", ")
	case len(refs) > 0:
		return "by " + strings.Join(refs, ", ")
	default:
		return "aggregate " + strings.Join(aggs, ", ")
	}
}

// findOutputCol matches an ORDER BY expression to an output column: the
// rendered name exactly, or — for a plain unqualified column — the
// unique output whose unqualified name matches.
func findOutputCol(columns []string, e SelectExpr) (int, error) {
	name := e.String()
	for i, c := range columns {
		if c == name {
			return i, nil
		}
	}
	if e.Agg == "" && e.Col.Table == "" {
		found := -1
		for i, c := range columns {
			if c == e.Col.Col || strings.HasSuffix(c, "."+e.Col.Col) {
				if found >= 0 {
					return 0, fmt.Errorf("query: ORDER BY %s is ambiguous among output columns %s",
						name, strings.Join(columns, ", "))
				}
				found = i
			}
		}
		if found >= 0 {
			return found, nil
		}
	}
	return 0, fmt.Errorf("query: ORDER BY %s does not name an output column (have %s)",
		name, strings.Join(columns, ", "))
}

// compareVals orders two cell values: numerically when asked and both
// parse, lexicographically otherwise.
func compareVals(l, r string, numeric bool) int {
	if numeric {
		lf, lerr := strconv.ParseFloat(l, 64)
		rf, rerr := strconv.ParseFloat(r, 64)
		if lerr == nil && rerr == nil {
			switch {
			case lf < rf:
				return -1
			case lf > rf:
				return 1
			default:
				return 0
			}
		}
	}
	return strings.Compare(l, r)
}

// eval applies one compiled predicate to a wide row.
func (cp *compiledPred) eval(row []string) bool {
	l := row[cp.lOff]
	r := cp.lit
	if !cp.isLit {
		r = row[cp.rOff]
	}
	switch cp.op {
	case "=":
		return l == r
	case "!=":
		return l != r
	}
	c := compareVals(l, r, cp.numeric)
	switch cp.op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

// scanIter adapts a catalog RowIter into the wide-row layout, checking
// cancellation between rows.
type scanIter struct {
	ctx      context.Context
	rows     RowIter
	offset   int
	ncols    int
	width    int
	n        int
	produced int // rows successfully returned, for Rows.Stats
}

func (s *scanIter) Next() ([]string, error) {
	if s.n++; s.n&63 == 0 {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
	}
	row, err := s.rows.Next()
	if err != nil {
		return nil, err
	}
	s.produced++
	wide := make([]string, s.width)
	copy(wide[s.offset:s.offset+s.ncols], row)
	return wide, nil
}

func (s *scanIter) Close() error { return s.rows.Close() }

// filterIter drops rows failing any predicate.
type filterIter struct {
	src   iter
	preds []*compiledPred
}

func (f *filterIter) Next() ([]string, error) {
	for {
		row, err := f.src.Next()
		if err != nil {
			return nil, err
		}
		ok := true
		for _, cp := range f.preds {
			if !cp.eval(row) {
				ok = false
				break
			}
		}
		if ok {
			return row, nil
		}
	}
}

func (f *filterIter) Close() error { return f.src.Close() }

// hashJoinIter materializes the (filtered) build side into a hash table
// and streams the probe side through it. With no keys it degenerates to
// a cross product. Empty intermediates terminate early on both sides:
// the build runs only after the first probe row arrives (an empty probe
// never scans the build table), and an empty build stops the probe
// after that one row.
type hashJoinIter struct {
	probe      iter
	build      iter
	probeOffs  []int
	buildOffs  []int
	buildBlock [2]int // [start, end) of the build table's cells
	width      int

	started bool
	built   bool
	ht      map[string][][]string // key → build blocks
	all     [][]string            // cross product: every build block
	cur     []string              // current probe row
	matches [][]string
	mi      int
	done    bool
}

// joinKey renders the composite key (length-prefixed, so ("a","bc") and
// ("ab","c") differ).
func joinKey(row []string, offs []int) string {
	var b strings.Builder
	for _, off := range offs {
		fmt.Fprintf(&b, "%d:", len(row[off]))
		b.WriteString(row[off])
	}
	return b.String()
}

func (h *hashJoinIter) buildTable() error {
	h.built = true
	h.ht = map[string][][]string{}
	for {
		row, err := h.build.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		block := make([]string, h.buildBlock[1]-h.buildBlock[0])
		copy(block, row[h.buildBlock[0]:h.buildBlock[1]])
		if len(h.buildOffs) == 0 {
			h.all = append(h.all, block)
			continue
		}
		key := joinKey(row, h.buildOffs)
		h.ht[key] = append(h.ht[key], block)
	}
	h.build.Close()
	if len(h.ht) == 0 && len(h.all) == 0 {
		// Empty intermediate: the whole join is empty, skip the probe.
		h.done = true
	}
	return nil
}

// lookup sets the match list for the current probe row.
func (h *hashJoinIter) lookup() {
	if len(h.buildOffs) == 0 {
		h.matches = h.all
	} else {
		h.matches = h.ht[joinKey(h.cur, h.probeOffs)]
	}
	h.mi = 0
}

func (h *hashJoinIter) Next() ([]string, error) {
	if !h.started {
		h.started = true
		row, err := h.probe.Next()
		if err == io.EOF {
			// Empty intermediate: never scan the build table.
			h.done = true
			h.built = true
			h.build.Close()
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		h.cur = row
		if err := h.buildTable(); err != nil {
			return nil, err
		}
		h.lookup()
	}
	for {
		if h.done {
			return nil, io.EOF
		}
		if h.mi < len(h.matches) {
			block := h.matches[h.mi]
			h.mi++
			out := make([]string, h.width)
			copy(out, h.cur)
			copy(out[h.buildBlock[0]:h.buildBlock[1]], block)
			return out, nil
		}
		row, err := h.probe.Next()
		if err == io.EOF {
			h.done = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		h.cur = row
		h.lookup()
	}
}

func (h *hashJoinIter) Close() error {
	err := h.probe.Close()
	if !h.built {
		h.build.Close()
	}
	return err
}

// projectIter narrows wide rows to the selected offsets.
type projectIter struct {
	src  iter
	offs []int
}

func (p *projectIter) Next() ([]string, error) {
	row, err := p.src.Next()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(p.offs))
	for i, off := range p.offs {
		out[i] = row[off]
	}
	return out, nil
}

func (p *projectIter) Close() error { return p.src.Close() }

// aggSpec is one aggregate output.
type aggSpec struct {
	agg     string // count, sum, avg, min, max
	off     int    // source offset (-1 for count(*))
	numeric bool
	isInt   bool
}

// groupOut maps one output column to a group-key slot or an aggregate.
type groupOut struct {
	isAgg bool
	slot  int // index into keyVals or aggSpecs
}

// groupAcc accumulates one group.
type groupAcc struct {
	keyVals []string
	count   []int64
	sumI    []int64
	sumF    []float64
	minMax  []string
	seen    []bool
}

// groupIter hash-aggregates the input, emitting groups in first-seen
// order (deterministic: the input order is deterministic). A query with
// aggregates but no GROUP BY emits exactly one row, even over empty
// input.
type groupIter struct {
	src        iter
	groupOffs  []int
	groupKinds []semtype.Kind
	aggSpecs   []aggSpec
	outs       []groupOut

	built  bool
	groups []*groupAcc
	pos    int
}

func (g *groupIter) run() error {
	g.built = true
	index := map[string]*groupAcc{}
	for {
		row, err := g.src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		key := joinKey(row, g.groupOffs)
		acc := index[key]
		if acc == nil {
			acc = &groupAcc{
				keyVals: make([]string, len(g.groupOffs)),
				count:   make([]int64, len(g.aggSpecs)),
				sumI:    make([]int64, len(g.aggSpecs)),
				sumF:    make([]float64, len(g.aggSpecs)),
				minMax:  make([]string, len(g.aggSpecs)),
				seen:    make([]bool, len(g.aggSpecs)),
			}
			for i, off := range g.groupOffs {
				acc.keyVals[i] = row[off]
			}
			index[key] = acc
			g.groups = append(g.groups, acc)
		}
		for i, spec := range g.aggSpecs {
			g.accumulate(acc, i, spec, row)
		}
	}
	if len(g.groupOffs) == 0 && len(g.groups) == 0 {
		// Global aggregate over empty input: one all-defaults group.
		g.groups = append(g.groups, &groupAcc{
			count:  make([]int64, len(g.aggSpecs)),
			sumI:   make([]int64, len(g.aggSpecs)),
			sumF:   make([]float64, len(g.aggSpecs)),
			minMax: make([]string, len(g.aggSpecs)),
			seen:   make([]bool, len(g.aggSpecs)),
		})
	}
	return nil
}

func (g *groupIter) accumulate(acc *groupAcc, i int, spec aggSpec, row []string) {
	if spec.agg == "count" && spec.off < 0 { // count(*)
		acc.count[i]++
		return
	}
	v := row[spec.off]
	if v == "" {
		return // empty cells don't feed aggregates
	}
	switch spec.agg {
	case "count":
		acc.count[i]++
	case "sum", "avg":
		if spec.isInt {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				acc.sumI[i] += n
				acc.count[i]++
			}
		} else if f, err := strconv.ParseFloat(v, 64); err == nil {
			acc.sumF[i] += f
			acc.count[i]++
		}
	case "min":
		if !acc.seen[i] || compareVals(v, acc.minMax[i], spec.numeric) < 0 {
			acc.minMax[i] = v
		}
		acc.seen[i] = true
	case "max":
		if !acc.seen[i] || compareVals(v, acc.minMax[i], spec.numeric) > 0 {
			acc.minMax[i] = v
		}
		acc.seen[i] = true
	}
}

// render formats one aggregate's final value.
func (g *groupIter) render(acc *groupAcc, i int) string {
	spec := g.aggSpecs[i]
	switch spec.agg {
	case "count":
		return strconv.FormatInt(acc.count[i], 10)
	case "sum":
		if acc.count[i] == 0 {
			return ""
		}
		if spec.isInt {
			return strconv.FormatInt(acc.sumI[i], 10)
		}
		return strconv.FormatFloat(acc.sumF[i], 'g', -1, 64)
	case "avg":
		if acc.count[i] == 0 {
			return ""
		}
		total := acc.sumF[i]
		if spec.isInt {
			total = float64(acc.sumI[i])
		}
		return strconv.FormatFloat(total/float64(acc.count[i]), 'g', -1, 64)
	default: // min, max
		return acc.minMax[i]
	}
}

func (g *groupIter) Next() ([]string, error) {
	if !g.built {
		if err := g.run(); err != nil {
			return nil, err
		}
	}
	if g.pos >= len(g.groups) {
		return nil, io.EOF
	}
	acc := g.groups[g.pos]
	g.pos++
	out := make([]string, len(g.outs))
	for i, o := range g.outs {
		if o.isAgg {
			out[i] = g.render(acc, o.slot)
		} else {
			out[i] = acc.keyVals[o.slot]
		}
	}
	return out, nil
}

func (g *groupIter) Close() error { return g.src.Close() }

// sortKey is one ORDER BY key over output columns.
type sortKey struct {
	col     int
	desc    bool
	numeric bool
}

// sortIter materializes and stably sorts the input.
type sortIter struct {
	src   iter
	keys  []sortKey
	built bool
	rows  [][]string
	pos   int
}

func (s *sortIter) Next() ([]string, error) {
	if !s.built {
		s.built = true
		for {
			row, err := s.src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			s.rows = append(s.rows, row)
		}
		sort.SliceStable(s.rows, func(a, b int) bool {
			for _, k := range s.keys {
				c := compareVals(s.rows[a][k.col], s.rows[b][k.col], k.numeric)
				if k.desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

func (s *sortIter) Close() error { return s.src.Close() }

// topKRow is one heap entry: the row plus its input sequence number,
// the final ordering key that reproduces a stable sort's tie handling.
type topKRow struct {
	row []string
	seq int
}

// topKHeap is a max-heap under (sort keys, input sequence): the root
// is the worst retained row, the one a better arrival evicts.
type topKHeap struct {
	rows []topKRow
	keys []sortKey
}

func (h *topKHeap) Len() int { return len(h.rows) }

// after reports a ordering strictly after b.
func (h *topKHeap) after(a, b topKRow) bool {
	for _, k := range h.keys {
		c := compareVals(a.row[k.col], b.row[k.col], k.numeric)
		if k.desc {
			c = -c
		}
		if c != 0 {
			return c > 0
		}
	}
	return a.seq > b.seq
}

func (h *topKHeap) Less(a, b int) bool { return h.after(h.rows[a], h.rows[b]) }
func (h *topKHeap) Swap(a, b int)      { h.rows[a], h.rows[b] = h.rows[b], h.rows[a] }
func (h *topKHeap) Push(x any)         { h.rows = append(h.rows, x.(topKRow)) }
func (h *topKHeap) Pop() any {
	last := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return last
}

// topKIter keeps the k first rows of the sorted output using a bounded
// heap — ORDER BY + LIMIT without materializing the input. The input
// sequence number is the last ordering key, so the emitted rows are
// exactly a stable full sort's first k.
type topKIter struct {
	src   iter
	h     topKHeap
	k     int
	built bool
	rows  [][]string
	pos   int
}

func (t *topKIter) run() error {
	t.built = true
	seq := 0
	for {
		row, err := t.src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if t.k <= 0 {
			continue
		}
		tr := topKRow{row: row, seq: seq}
		seq++
		if len(t.h.rows) < t.k {
			heap.Push(&t.h, tr)
		} else if t.h.after(t.h.rows[0], tr) {
			t.h.rows[0] = tr
			heap.Fix(&t.h, 0)
		}
	}
	t.rows = make([][]string, len(t.h.rows))
	for i := len(t.rows) - 1; i >= 0; i-- {
		t.rows[i] = heap.Pop(&t.h).(topKRow).row
	}
	return nil
}

func (t *topKIter) Next() ([]string, error) {
	if !t.built {
		if err := t.run(); err != nil {
			return nil, err
		}
	}
	if t.pos >= len(t.rows) {
		return nil, io.EOF
	}
	row := t.rows[t.pos]
	t.pos++
	return row, nil
}

func (t *topKIter) Close() error { return t.src.Close() }

// limitIter stops after n rows.
type limitIter struct {
	src  iter
	left int
}

func (l *limitIter) Next() ([]string, error) {
	if l.left <= 0 {
		return nil, io.EOF
	}
	row, err := l.src.Next()
	if err != nil {
		return nil, err
	}
	l.left--
	return row, nil
}

func (l *limitIter) Close() error { return l.src.Close() }
