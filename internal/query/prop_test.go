package query

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"datamaran/internal/semtype"
)

// The join-order property: whatever greedy order the planner picks, the
// result row-set equals the canonical nested-loop reference (cross
// product in FROM order, every predicate applied at the end) — and is
// stable under permutations of the FROM list.

// randomCatalog builds 2–4 small tables with overlapping value pools so
// joins actually match.
func randomCatalog(rng *rand.Rand) (memCatalog, []string) {
	words := []string{"east", "west", "north", "q1", "q2", "db01", "web01", ""}
	ntab := 2 + rng.Intn(3)
	cat := memCatalog{}
	var names []string
	for t := 0; t < ntab; t++ {
		name := fmt.Sprintf("t%d", t)
		ncols := 1 + rng.Intn(3)
		cols := make([]string, ncols)
		kinds := make([]semtype.Kind, ncols)
		for c := range cols {
			cols[c] = fmt.Sprintf("f%d", c)
			if rng.Intn(2) == 0 {
				kinds[c] = semtype.KindInt
			} else {
				kinds[c] = semtype.KindString
			}
		}
		nrows := rng.Intn(25)
		rows := make([][]string, nrows)
		for r := range rows {
			row := make([]string, ncols)
			for c := range row {
				if kinds[c] == semtype.KindInt {
					row[c] = strconv.Itoa(rng.Intn(12))
				} else {
					row[c] = words[rng.Intn(len(words))]
				}
			}
			rows[r] = row
		}
		cat[name] = &memTable{
			meta: TableMeta{Name: name, Columns: cols, Kinds: kinds, Rows: nrows},
			rows: rows,
		}
		names = append(names, name)
	}
	return cat, names
}

// randomQuery selects every column of every table (qualified, so the
// output is comparable across FROM permutations) with random literal
// and join predicates.
func randomQuery(rng *rand.Rand, cat memCatalog, names []string) *Query {
	q := &Query{Limit: -1}
	for i, name := range names {
		alias := fmt.Sprintf("a%d", i)
		q.From = append(q.From, FromItem{Table: name, Alias: alias})
		for _, col := range cat[name].meta.Columns {
			q.Select = append(q.Select, SelectExpr{Col: ColRef{Table: alias, Col: col}})
		}
	}
	randRef := func() (ColRef, semtype.Kind) {
		ti := rng.Intn(len(names))
		meta := cat[names[ti]].meta
		ci := rng.Intn(len(meta.Columns))
		return ColRef{Table: fmt.Sprintf("a%d", ti), Col: meta.Columns[ci]}, meta.Kinds[ci]
	}
	npred := rng.Intn(5)
	for p := 0; p < npred; p++ {
		left, kind := randRef()
		switch rng.Intn(3) {
		case 0: // equality literal
			lit := strconv.Itoa(rng.Intn(12))
			if kind == semtype.KindString {
				lit = []string{"east", "q1", "db01"}[rng.Intn(3)]
			}
			q.Where = append(q.Where, Predicate{Left: left, Op: "=", IsLit: true, Lit: lit})
		case 1: // ordering literal
			op := []string{"<", "<=", ">", ">=", "!="}[rng.Intn(5)]
			q.Where = append(q.Where, Predicate{Left: left, Op: op, IsLit: true, Lit: strconv.Itoa(rng.Intn(12))})
		default: // column = column (a join when tables differ)
			right, _ := randRef()
			q.Where = append(q.Where, Predicate{Left: left, Op: "=", Right: right})
		}
	}
	return q
}

// nestedLoopRef evaluates q the slow, obviously-correct way.
func nestedLoopRef(cat memCatalog, q *Query) [][]string {
	type binding struct {
		meta TableMeta
		rows [][]string
	}
	var tabs []binding
	aliasIdx := map[string]int{}
	for i, f := range q.From {
		t := cat[f.Table]
		tabs = append(tabs, binding{meta: t.meta, rows: t.rows})
		aliasIdx[f.Alias] = i
	}
	lookup := func(row [][]string, ref ColRef) (string, semtype.Kind) {
		ti := aliasIdx[ref.Table]
		for ci, name := range tabs[ti].meta.Columns {
			if name == ref.Col {
				return row[ti][ci], tabs[ti].meta.Kinds[ci]
			}
		}
		panic("unresolved ref " + ref.String())
	}
	evalPred := func(row [][]string, p Predicate) bool {
		l, lk := lookup(row, p.Left)
		var r string
		numeric := lk.Numeric()
		if p.IsLit {
			r = p.Lit
		} else {
			var rk semtype.Kind
			r, rk = lookup(row, p.Right)
			numeric = numeric && rk.Numeric()
		}
		switch p.Op {
		case "=":
			return l == r
		case "!=":
			return l != r
		}
		c := compareVals(l, r, numeric)
		switch p.Op {
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		default:
			return c >= 0
		}
	}
	var out [][]string
	current := make([][]string, len(tabs))
	var walk func(depth int)
	walk = func(depth int) {
		if depth == len(tabs) {
			for _, p := range q.Where {
				if !evalPred(current, p) {
					return
				}
			}
			var row []string
			for _, e := range q.Select {
				v, _ := lookup(current, e.Col)
				row = append(row, v)
			}
			out = append(out, row)
			return
		}
		for _, r := range tabs[depth].rows {
			current[depth] = r
			walk(depth + 1)
		}
	}
	walk(0)
	return out
}

// multiset renders rows as a sorted multiset for order-insensitive
// comparison.
func multiset(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x00")
	}
	sort.Strings(out)
	return out
}

func runEngine(t *testing.T, cat Catalog, q *Query) [][]string {
	t.Helper()
	rows, err := Run(context.Background(), cat, q)
	if err != nil {
		t.Fatalf("run: %v (query %+v)", err, q)
	}
	defer rows.Close()
	var out [][]string
	for {
		row, err := rows.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		out = append(out, row)
	}
}

func TestJoinOrderMatchesNestedLoopReference(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cat, names := randomCatalog(rng)
		q := randomQuery(rng, cat, names)
		want := multiset(nestedLoopRef(cat, q))
		got := multiset(runEngine(t, cat, q))
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("seed %d: engine disagrees with nested-loop reference\nquery: %+v\ngot %d rows, want %d",
				seed, q, len(got), len(want))
		}

		// The row-set is also invariant under FROM permutations (the
		// SELECT list is fixed, so outputs stay comparable).
		perm := rng.Perm(len(q.From))
		q2 := *q
		q2.From = make([]FromItem, len(q.From))
		for i, p := range perm {
			q2.From[i] = q.From[p]
		}
		got2 := multiset(runEngine(t, cat, &q2))
		if strings.Join(got2, "\n") != strings.Join(want, "\n") {
			t.Fatalf("seed %d: permuted FROM changed the row-set\nquery: %+v", seed, q2)
		}
	}
}
