package query

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"datamaran/internal/semtype"
)

// memCatalog is an in-memory Catalog for tests.
type memCatalog map[string]*memTable

type memTable struct {
	meta TableMeta
	rows [][]string
}

func (c memCatalog) Resolve(name string) (TableMeta, error) {
	t, ok := c[name]
	if !ok {
		return TableMeta{}, fmt.Errorf("no table %q", name)
	}
	return t.meta, nil
}

func (c memCatalog) Scan(name string) (RowIter, error) {
	t, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return &memIter{rows: t.rows}, nil
}

type memIter struct {
	rows  [][]string
	pos   int
	reads int
}

func (m *memIter) Next() ([]string, error) {
	if m.pos >= len(m.rows) {
		return nil, io.EOF
	}
	row := m.rows[m.pos]
	m.pos++
	m.reads++
	return append([]string(nil), row...), nil
}

func (m *memIter) Close() error { return nil }

func mkTable(name string, cols []string, kinds []semtype.Kind, rows ...[]string) *memTable {
	return &memTable{
		meta: TableMeta{Name: name, Columns: cols, Kinds: kinds, Rows: len(rows)},
		rows: rows,
	}
}

// fixture: jobs (id, queue, state) and hosts (host, rack).
func fixtureCatalog() memCatalog {
	return memCatalog{
		"jobs": mkTable("jobs",
			[]string{"f0", "f1", "f2"},
			[]semtype.Kind{semtype.KindInt, semtype.KindString, semtype.KindString},
			[]string{"1", "q1", "DONE"},
			[]string{"2", "q2", "FAILED"},
			[]string{"3", "q1", "DONE"},
			[]string{"4", "q3", "RUNNING"},
			[]string{"10", "q1", "DONE"},
		),
		"hosts": mkTable("hosts",
			[]string{"f0", "f1"},
			[]semtype.Kind{semtype.KindString, semtype.KindString},
			[]string{"q1", "east"},
			[]string{"q2", "west"},
		),
	}
}

// collect drains a query into row slices.
func collect(t *testing.T, cat Catalog, text string) ([]string, [][]string) {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	rows, err := Run(context.Background(), cat, q)
	if err != nil {
		t.Fatalf("run %q: %v", text, err)
	}
	defer rows.Close()
	var out [][]string
	for {
		row, err := rows.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next %q: %v", text, err)
		}
		out = append(out, row)
	}
	return rows.Columns(), out
}

func rowsEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if strings.Join(a[i], "\x00") != strings.Join(b[i], "\x00") {
			return false
		}
	}
	return true
}

func TestParseBasics(t *testing.T) {
	q, err := Parse("SELECT j.f1, count(*) FROM 42f99400 AS j, 570eebfb m WHERE j.f2 = 'DONE' AND j.f1 = m.f0 GROUP BY j.f1 ORDER BY count(*) DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0].String() != "j.f1" || q.Select[1].String() != "count(*)" {
		t.Fatalf("select: %+v", q.Select)
	}
	if len(q.From) != 2 || q.From[0].Alias != "j" || q.From[1].Alias != "m" || q.From[1].Table != "570eebfb" {
		t.Fatalf("from: %+v", q.From)
	}
	if len(q.Where) != 2 || !q.Where[0].IsLit || q.Where[0].Lit != "DONE" || q.Where[1].IsLit {
		t.Fatalf("where: %+v", q.Where)
	}
	if len(q.GroupBy) != 1 || len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.Limit != 5 {
		t.Fatalf("tail: %+v", q)
	}
}

func TestParseHexTableNames(t *testing.T) {
	// Digit-led fingerprints must lex as one token.
	q, err := Parse("select * from 42f99400cddeb649")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Table != "42f99400cddeb649" {
		t.Fatalf("table: %+v", q.From)
	}
	// And the "_<k>" record-type suffix.
	q, err = Parse("select * from 42f99400cddeb649_1")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Table != "42f99400cddeb649_1" {
		t.Fatalf("table: %+v", q.From)
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT f0 FROM t GROUP BY f1",            // f0 not grouped
		"SELECT *, count(*) FROM t",               // star + agg
		"SELECT sum(*) FROM t",                    // sum(*)
		"SELECT f0 FROM t a, u a",                 // duplicate alias
		"SELECT f0 FROM t WHERE f0 ~ 'x'",         // bad operator
		"SELECT f0 FROM t WHERE f0 = 'unclosed",   // unterminated string
		"SELECT f0 FROM t extra tokens here okay", // trailing garbage
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestSelectionProjection(t *testing.T) {
	cat := fixtureCatalog()
	cols, rows := collect(t, cat, "SELECT f0, f2 FROM jobs WHERE f1 = 'q1'")
	if strings.Join(cols, ",") != "f0,f2" {
		t.Fatalf("columns: %v", cols)
	}
	want := [][]string{{"1", "DONE"}, {"3", "DONE"}, {"10", "DONE"}}
	if !rowsEqual(rows, want) {
		t.Fatalf("rows: %v, want %v", rows, want)
	}
}

func TestNumericComparison(t *testing.T) {
	cat := fixtureCatalog()
	// f0 is an int column: 10 > 3 numerically (lexicographically "10" < "3").
	_, rows := collect(t, cat, "SELECT f0 FROM jobs WHERE f0 > 3")
	want := [][]string{{"4"}, {"10"}}
	if !rowsEqual(rows, want) {
		t.Fatalf("numeric compare rows: %v, want %v", rows, want)
	}
	// A string column compares lexicographically.
	_, rows = collect(t, cat, "SELECT f2 FROM jobs WHERE f2 < 'E'")
	want = [][]string{{"DONE"}, {"DONE"}, {"DONE"}}
	if !rowsEqual(rows, want) {
		t.Fatalf("lexicographic rows: %v, want %v", rows, want)
	}
}

func TestEquiJoin(t *testing.T) {
	cat := fixtureCatalog()
	cols, rows := collect(t, cat,
		"SELECT j.f0, h.f1 FROM jobs AS j, hosts AS h WHERE j.f1 = h.f0 AND j.f2 = 'DONE'")
	if strings.Join(cols, ",") != "j.f0,h.f1" {
		t.Fatalf("columns: %v", cols)
	}
	want := [][]string{{"1", "east"}, {"3", "east"}, {"10", "east"}}
	if !rowsEqual(rows, want) {
		t.Fatalf("join rows: %v, want %v", rows, want)
	}
}

func TestSelectStarJoin(t *testing.T) {
	cat := fixtureCatalog()
	cols, rows := collect(t, cat,
		"SELECT * FROM jobs AS j, hosts AS h WHERE j.f1 = h.f0 AND j.f0 = 2")
	if strings.Join(cols, ",") != "j.f0,j.f1,j.f2,h.f0,h.f1" {
		t.Fatalf("columns: %v", cols)
	}
	want := [][]string{{"2", "q2", "FAILED", "q2", "west"}}
	if !rowsEqual(rows, want) {
		t.Fatalf("rows: %v, want %v", rows, want)
	}
}

func TestGroupByAggregates(t *testing.T) {
	cat := fixtureCatalog()
	cols, rows := collect(t, cat,
		"SELECT f1, count(*), sum(f0), min(f0), max(f0), avg(f0) FROM jobs GROUP BY f1")
	if strings.Join(cols, ",") != "f1,count(*),sum(f0),min(f0),max(f0),avg(f0)" {
		t.Fatalf("columns: %v", cols)
	}
	// Groups in first-seen order: q1, q2, q3.
	want := [][]string{
		{"q1", "3", "14", "1", "10", "4.666666666666667"},
		{"q2", "1", "2", "2", "2", "2"},
		{"q3", "1", "4", "4", "4", "4"},
	}
	if !rowsEqual(rows, want) {
		t.Fatalf("rows: %v, want %v", rows, want)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	cat := fixtureCatalog()
	_, rows := collect(t, cat, "SELECT count(*) FROM jobs WHERE f1 = 'nope'")
	if !rowsEqual(rows, [][]string{{"0"}}) {
		t.Fatalf("rows: %v", rows)
	}
}

func TestOrderByLimit(t *testing.T) {
	cat := fixtureCatalog()
	_, rows := collect(t, cat, "SELECT f0 FROM jobs ORDER BY f0 DESC LIMIT 2")
	want := [][]string{{"10"}, {"4"}}
	if !rowsEqual(rows, want) {
		t.Fatalf("rows: %v, want %v", rows, want)
	}
	_, rows = collect(t, cat,
		"SELECT f1, count(*) FROM jobs GROUP BY f1 ORDER BY count(*) DESC, f1")
	want = [][]string{{"q1", "3"}, {"q2", "1"}, {"q3", "1"}}
	if !rowsEqual(rows, want) {
		t.Fatalf("rows: %v, want %v", rows, want)
	}
}

func TestEmptyBuildSideSkipsProbe(t *testing.T) {
	// The planner starts at hosts (most selective: 1 eq-lit pred after
	// the impossible filter is on hosts)… regardless of order, when one
	// join side is empty the other side must not be drained.
	cat := fixtureCatalog()
	probe := cat["jobs"]
	it := &memIter{rows: probe.rows}
	tracked := memCatalog{
		"jobs":  probe,
		"hosts": cat["hosts"],
	}
	// Wrap jobs' scan to count reads.
	wrapped := trackingCatalog{inner: tracked, track: map[string]*memIter{"jobs": it}}
	q, err := Parse("SELECT j.f0 FROM jobs AS j, hosts AS h WHERE j.f1 = h.f0 AND h.f1 = 'nowhere'")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(context.Background(), wrapped, q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if _, err := rows.Next(); err != io.EOF {
		t.Fatalf("expected empty result, got %v", err)
	}
	if it.reads > 0 {
		t.Fatalf("probe side read %d rows despite empty build side", it.reads)
	}
}

type trackingCatalog struct {
	inner memCatalog
	track map[string]*memIter
}

func (c trackingCatalog) Resolve(name string) (TableMeta, error) { return c.inner.Resolve(name) }

func (c trackingCatalog) Scan(name string) (RowIter, error) {
	if it, ok := c.track[name]; ok {
		return it, nil
	}
	return c.inner.Scan(name)
}

func TestContextCancellation(t *testing.T) {
	// A big single-table scan with a cancelled context must error out.
	rows := make([][]string, 10000)
	for i := range rows {
		rows[i] = []string{fmt.Sprint(i)}
	}
	cat := memCatalog{"big": mkTable("big", []string{"f0"}, []semtype.Kind{semtype.KindInt}, rows...)}
	ctx, cancel := context.WithCancel(context.Background())
	q, err := Parse("SELECT f0 FROM big")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(ctx, cat, q)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := out.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	sawErr := false
	for i := 0; i < 10000; i++ {
		if _, err := out.Next(); err != nil {
			if err == io.EOF {
				t.Fatal("scan completed despite cancellation")
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("cancelled scan kept going")
	}
}

func TestWriters(t *testing.T) {
	cat := fixtureCatalog()
	q, err := Parse("SELECT f1, count(*) FROM jobs GROUP BY f1")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Rows {
		rows, err := Run(context.Background(), cat, q)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, run(), nil); err != nil {
		t.Fatal(err)
	}
	wantCSV := "f1,count(*)\nq1,3\nq2,1\nq3,1\n"
	if csv.String() != wantCSV {
		t.Fatalf("csv: %q, want %q", csv.String(), wantCSV)
	}
	var nd bytes.Buffer
	if err := WriteNDJSON(&nd, run(), nil); err != nil {
		t.Fatal(err)
	}
	wantND := `{"columns":["f1","count(*)"],"kinds":["string","int"]}
{"values":["q1","3"]}
{"values":["q2","1"]}
{"values":["q3","1"]}
`
	if nd.String() != wantND {
		t.Fatalf("ndjson: %q, want %q", nd.String(), wantND)
	}
}

func TestCSVQuoting(t *testing.T) {
	cat := memCatalog{"t": mkTable("t",
		[]string{"f0"}, []semtype.Kind{semtype.KindString},
		[]string{`a,"b`}, []string{"line\nbreak"})}
	q, err := Parse("SELECT f0 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(context.Background(), cat, q)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, rows, nil); err != nil {
		t.Fatal(err)
	}
	want := "f0\n\"a,\"\"b\"\n\"line\nbreak\"\n"
	if csv.String() != want {
		t.Fatalf("csv: %q, want %q", csv.String(), want)
	}
}
