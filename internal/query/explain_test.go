package query

import (
	"context"
	"io"
	"strings"
	"testing"
)

// drainPlan runs q with the given explain mode and returns the plan
// lines.
func drainPlan(t *testing.T, cat Catalog, text string, mode ExplainMode) []string {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunWith(context.Background(), cat, q, Options{Explain: mode})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 1 || got[0] != "plan" {
		t.Fatalf("explain columns = %v, want [plan]", got)
	}
	var lines []string
	for {
		row, err := rows.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, row[0])
	}
	return lines
}

// TestExplainPlan: the plan-only tree names every operator, carries no
// timings, and is deterministic across runs.
func TestExplainPlan(t *testing.T) {
	cat := fixtureCatalog()
	text := "SELECT jobs.f1, count(*) FROM jobs, hosts WHERE jobs.f1 = hosts.f0 AND jobs.f2 = 'DONE' GROUP BY jobs.f1 ORDER BY jobs.f1 LIMIT 5"
	lines := drainPlan(t, cat, text, ExplainPlan)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"scan table=jobs", "scan table=hosts", "hash join on", "group by", "top-k by"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
	for _, leak := range []string{"time=", "rows=", "total:"} {
		if strings.Contains(joined, leak) {
			t.Errorf("plan-only explain leaks %q:\n%s", leak, joined)
		}
	}
	again := drainPlan(t, cat, text, ExplainPlan)
	if joined != strings.Join(again, "\n") {
		t.Error("plan output not deterministic")
	}
	// Indentation: the root has none, leaves are nested.
	if strings.HasPrefix(lines[0], " ") {
		t.Errorf("root line indented: %q", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "  ") {
		t.Errorf("leaf line not indented: %q", lines[len(lines)-1])
	}
}

// TestExplainAnalyze: the analyzed tree reports per-operator rows and
// wall time plus a total line, and the row counts are real.
func TestExplainAnalyze(t *testing.T) {
	cat := fixtureCatalog()
	lines := drainPlan(t, cat, "SELECT f0, f1 FROM jobs WHERE f2 = 'DONE'", ExplainAnalyze)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"rows=", "time=", "total: rows=3 "} {
		if !strings.Contains(joined, want) {
			t.Errorf("analyze missing %q:\n%s", want, joined)
		}
	}
	// The scan saw all 5 job rows; the filter and projection pass 3.
	var scanLine, projLine string
	for _, l := range lines {
		switch {
		case strings.Contains(l, "scan table=jobs"):
			scanLine = l
		case strings.Contains(l, "project"):
			projLine = l
		}
	}
	if !strings.Contains(scanLine, "rows=5") {
		t.Errorf("scan row count wrong: %q", scanLine)
	}
	if !strings.Contains(projLine, "rows=3") {
		t.Errorf("project row count wrong: %q", projLine)
	}
}

// TestExplainDoesNotChangeResults: a query run normally after an
// explain of the same text produces data rows, and RunWith with
// ExplainNone is Run.
func TestExplainDoesNotChangeResults(t *testing.T) {
	cat := fixtureCatalog()
	q, err := Parse("SELECT f0 FROM jobs WHERE f2 = 'DONE'")
	if err != nil {
		t.Fatal(err)
	}
	_ = drainPlan(t, cat, "SELECT f0 FROM jobs WHERE f2 = 'DONE'", ExplainPlan)
	rows, err := RunWith(context.Background(), cat, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for {
		row, err := rows.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(row[0], "scan") {
			t.Fatalf("plan line leaked into data output: %q", row)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("rows = %d, want 3", n)
	}
	if st := rows.Stats(); st.RowsScanned != 5 {
		t.Errorf("Stats().RowsScanned = %d, want 5", st.RowsScanned)
	}
}

// TestParseExplainMode: the user-facing spellings.
func TestParseExplainMode(t *testing.T) {
	for s, want := range map[string]ExplainMode{"": ExplainNone, "none": ExplainNone, "plan": ExplainPlan, "analyze": ExplainAnalyze} {
		got, err := ParseExplainMode(s)
		if err != nil || got != want {
			t.Errorf("ParseExplainMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseExplainMode("verbose"); err == nil {
		t.Error("bad mode accepted")
	}
}
