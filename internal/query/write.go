package query

import (
	"encoding/json"
	"io"

	"datamaran/internal/lake"
	"datamaran/internal/relational"
	"datamaran/internal/semtype"
)

// The output writers. Every query surface — the in-process API, the
// CLI, the daemon's /v1/query — streams results through these, so the
// three are byte-identical by construction.

// WriteCSV streams the result as CSV: header line, then one line per
// row, quoted exactly like the relational package's table dumps. flush
// (optional) runs after the header and then periodically, so a daemon
// can push partial results.
func WriteCSV(w io.Writer, rows *Rows, flush func()) error {
	if err := relational.WriteCSVRow(w, rows.Columns()); err != nil {
		return err
	}
	n := 0
	for {
		row, err := rows.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := relational.WriteCSVRow(w, row); err != nil {
			return err
		}
		if n++; flush != nil && n&63 == 0 {
			flush()
		}
	}
}

// ndjsonHeader is the first NDJSON line: the column schema.
type ndjsonHeader struct {
	Columns []string       `json:"columns"`
	Kinds   []semtype.Kind `json:"kinds"`
}

// ndjsonRow is one result row.
type ndjsonRow struct {
	Values []string `json:"values"`
}

// WriteNDJSON streams the result as NDJSON: a {"columns":…,"kinds":…}
// schema line, then one {"values":…} object per row.
func WriteNDJSON(w io.Writer, rows *Rows, flush func()) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ndjsonHeader{Columns: rows.Columns(), Kinds: rows.Kinds()}); err != nil {
		return err
	}
	if flush != nil {
		flush()
	}
	n := 0
	for {
		row, err := rows.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(ndjsonRow{Values: row}); err != nil {
			return err
		}
		if n++; flush != nil && n&63 == 0 {
			flush()
		}
	}
}

// storeCatalog adapts the lake's segment store to the engine's Catalog.
type storeCatalog struct {
	s *lake.SegmentStore
}

// StoreCatalog makes the record store queryable.
func StoreCatalog(s *lake.SegmentStore) Catalog {
	return storeCatalog{s: s}
}

func (c storeCatalog) Resolve(name string) (TableMeta, error) {
	ti, err := c.s.Resolve(name)
	if err != nil {
		return TableMeta{}, err
	}
	return TableMeta{Name: ti.Name, Columns: ti.Columns, Kinds: ti.Kinds, Rows: ti.Rows}, nil
}

func (c storeCatalog) Scan(name string) (RowIter, error) {
	return c.s.Scan(name)
}
