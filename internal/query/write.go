package query

import (
	"encoding/json"
	"io"

	"datamaran/internal/lake"
	"datamaran/internal/relational"
	"datamaran/internal/semtype"
)

// The output writers. Every query surface — the in-process API, the
// CLI, the daemon's /v1/query — streams results through these, so the
// three are byte-identical by construction.

// WriteCSV streams the result as CSV: header line, then one line per
// row, quoted exactly like the relational package's table dumps. flush
// (optional) runs after the header and then periodically, so a daemon
// can push partial results.
func WriteCSV(w io.Writer, rows *Rows, flush func()) error {
	if err := relational.WriteCSVRow(w, rows.Columns()); err != nil {
		return err
	}
	n := 0
	for {
		row, err := rows.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := relational.WriteCSVRow(w, row); err != nil {
			return err
		}
		if n++; flush != nil && n&63 == 0 {
			flush()
		}
	}
}

// ndjsonHeader is the first NDJSON line: the column schema.
type ndjsonHeader struct {
	Columns []string       `json:"columns"`
	Kinds   []semtype.Kind `json:"kinds"`
}

// ndjsonRow is one result row.
type ndjsonRow struct {
	Values []string `json:"values"`
}

// WriteNDJSON streams the result as NDJSON: a {"columns":…,"kinds":…}
// schema line, then one {"values":…} object per row.
func WriteNDJSON(w io.Writer, rows *Rows, flush func()) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ndjsonHeader{Columns: rows.Columns(), Kinds: rows.Kinds()}); err != nil {
		return err
	}
	if flush != nil {
		flush()
	}
	n := 0
	for {
		row, err := rows.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(ndjsonRow{Values: row}); err != nil {
			return err
		}
		if n++; flush != nil && n&63 == 0 {
			flush()
		}
	}
}

// storeLike is what the store catalog needs: the live SegmentStore or
// a pinned StoreView both qualify.
type storeLike interface {
	Resolve(name string) (lake.TableInfo, error)
	Scan(name string) (*lake.SegmentScan, error)
	ScanWith(name string, opts lake.ScanOptions) (*lake.SegmentScan, error)
}

// storeCatalog adapts the lake's segment store to the engine's Catalog.
type storeCatalog struct {
	s storeLike
}

// StoreCatalog makes the record store queryable. Each table resolves
// against the store's manifest at access time; for a multi-table query
// that must see one consistent store state across commits, pin a view
// first and use ViewCatalog.
func StoreCatalog(s *lake.SegmentStore) Catalog {
	return storeCatalog{s: s}
}

// ViewCatalog makes a pinned store view queryable: every Resolve and
// Scan answers from the view's one manifest snapshot, so joins never
// mix store states. Run opens all of a plan's scans before returning,
// so a query that planned against a view holds every byte it needs —
// a concurrent reindex commit can no longer change (or tear) its
// result. A lake.ErrStaleView from Run means a commit deleted a
// superseded segment in the tiny pin-to-open window; take a fresh view
// and re-plan.
func ViewCatalog(v *lake.StoreView) Catalog {
	return storeCatalog{s: v}
}

func (c storeCatalog) Resolve(name string) (TableMeta, error) {
	ti, err := c.s.Resolve(name)
	if err != nil {
		return TableMeta{}, err
	}
	return TableMeta{Name: ti.Name, Columns: ti.Columns, Kinds: ti.Kinds, Rows: ti.Rows, Distincts: ti.Distincts}, nil
}

func (c storeCatalog) Scan(name string) (RowIter, error) {
	return c.s.Scan(name)
}

// ScanPushed implements PushCatalog: the planner's projection and
// predicates translate onto the segment scan, which decodes only the
// pushed columns and skips blocks via zone maps.
func (c storeCatalog) ScanPushed(name string, push ScanPushdown) (RowIter, error) {
	opts := lake.ScanOptions{Columns: push.Columns}
	for _, p := range push.Preds {
		opts.Preds = append(opts.Preds, lake.ScanPred{Col: p.Col, Op: p.Op, Lit: p.Lit, Numeric: p.Numeric})
	}
	return c.s.ScanWith(name, opts)
}
