package query

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"datamaran/internal/semtype"
)

// EXPLAIN / EXPLAIN ANALYZE. The planner builds a PlanNode tree in
// lockstep with the iterator tree; under ExplainPlan the iterators are
// closed unread and the rendered tree streams back as ordinary result
// rows (a single "plan" column, one row per line), so all three query
// surfaces — the Go API, the CLI and /v1/query — emit byte-identical,
// golden-pinnable plans through the existing CSV/NDJSON writers. Under
// ExplainAnalyze every operator is wrapped with a row/wall-time
// recorder, the query drains fully, and the same tree renders with
// per-operator rows, wall time and — for scans — blocks decoded vs
// zone-map-pruned. Timings appear only in analyze output, never in a
// plan-only explain and never in normal results.

// ExplainMode selects normal execution, plan-only explain, or full
// explain-analyze.
type ExplainMode int

const (
	// ExplainNone executes the query and streams its rows.
	ExplainNone ExplainMode = iota
	// ExplainPlan returns the plan tree without executing (scans open
	// and close, but no rows are read). Output is deterministic.
	ExplainPlan
	// ExplainAnalyze executes the query to completion and returns the
	// plan tree annotated with per-operator rows, timings and scan
	// block counters. Output contains wall times and is not golden.
	ExplainAnalyze
)

// ParseExplainMode maps the user-facing spelling ("", "plan",
// "analyze") to an ExplainMode.
func ParseExplainMode(s string) (ExplainMode, error) {
	switch s {
	case "", "none":
		return ExplainNone, nil
	case "plan":
		return ExplainPlan, nil
	case "analyze":
		return ExplainAnalyze, nil
	}
	return ExplainNone, fmt.Errorf("query: unknown explain mode %q (want plan or analyze)", s)
}

// Options tunes Run beyond the query text.
type Options struct {
	Explain ExplainMode
}

// PlanNode is one operator in the rendered plan tree.
type PlanNode struct {
	op       string
	detail   string
	children []*PlanNode

	// analyze-time stats, filled by statIter wrappers
	rows int
	wall time.Duration
	scan *scanIter // scan nodes only: source of block counters
}

// blockStatser is implemented by scan backends that can report block
// decode/prune counters (the lake's SegmentScan).
type blockStatser interface {
	BlockStats() (decoded, pruned, rows int)
}

// label renders one plan line (without indentation).
func (n *PlanNode) label(analyze bool) string {
	s := n.op
	if n.detail != "" {
		s += " " + n.detail
	}
	if analyze {
		s += fmt.Sprintf(" rows=%d", n.rows)
		if n.scan != nil {
			if bs, ok := n.scan.rows.(blockStatser); ok {
				d, p, _ := bs.BlockStats()
				s += fmt.Sprintf(" blocks=%d pruned=%d", d, p)
			}
		}
		s += " time=" + fmtDur(n.wall)
	}
	return s
}

// renderPlan flattens the tree depth-first, two spaces per level.
func renderPlan(root *PlanNode, analyze bool) []string {
	var lines []string
	var walk func(n *PlanNode, depth int)
	walk = func(n *PlanNode, depth int) {
		lines = append(lines, strings.Repeat("  ", depth)+n.label(analyze))
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return lines
}

// fmtDur renders analyze wall times at microsecond precision.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// statIter wraps an operator under ExplainAnalyze, accumulating rows
// produced and inclusive wall time into its plan node.
type statIter struct {
	src  iter
	node *PlanNode
}

func (s *statIter) Next() ([]string, error) {
	t0 := time.Now()
	row, err := s.src.Next()
	s.node.wall += time.Since(t0)
	if err == nil {
		s.node.rows++
	}
	return row, err
}

func (s *statIter) Close() error { return s.src.Close() }

// attach wraps it with a stat recorder when analyzing; otherwise the
// iterator passes through untouched (zero overhead on the normal
// path).
func (pl *planner) attach(it iter, n *PlanNode) iter {
	if pl.mode == ExplainAnalyze {
		return &statIter{src: it, node: n}
	}
	return it
}

// predsDetail renders predicates as written, joined with AND.
func predsDetail(preds []*compiledPred) string {
	parts := make([]string, len(preds))
	for i, cp := range preds {
		parts[i] = cp.src.String()
	}
	return strings.Join(parts, " AND ")
}

// orderDetail renders the ORDER BY keys.
func orderDetail(q *Query) string {
	parts := make([]string, len(q.OrderBy))
	for i, k := range q.OrderBy {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " desc"
		}
	}
	return strings.Join(parts, ", ")
}

// sliceIter streams pre-rendered single-column rows (plan output).
type sliceIter struct {
	rows []string
	pos  int
}

func (s *sliceIter) Next() ([]string, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	row := []string{s.rows[s.pos]}
	s.pos++
	return row, nil
}

func (s *sliceIter) Close() error { return nil }

// planRows packages rendered plan lines as a result stream with a
// single "plan" column, so explain output flows through the same
// CSV/NDJSON writers as data.
func planRows(lines []string) *Rows {
	return &Rows{
		columns: []string{"plan"},
		kinds:   []semtype.Kind{semtype.KindString},
		it:      &sliceIter{rows: lines},
	}
}

// ExecStats aggregates a finished (or in-flight) query's scan-side
// work: rows pulled out of base tables and — against a zone-mapped
// store — blocks decoded vs pruned. Cheap to collect (plain per-scan
// counters), so callers can record it on every query.
type ExecStats struct {
	RowsScanned   int
	BlocksDecoded int
	BlocksPruned  int
}

// Stats sums the scan counters across the query's base-table scans.
// Valid any time; typically read after draining, before Close.
func (r *Rows) Stats() ExecStats {
	var st ExecStats
	for _, s := range r.scans {
		st.RowsScanned += s.produced
		if bs, ok := s.rows.(blockStatser); ok {
			d, p, _ := bs.BlockStats()
			st.BlocksDecoded += d
			st.BlocksPruned += p
		}
	}
	return st
}

// RunWith is Run with options: explain modes reuse the identical
// planning path (join order, predicate placement, pushdown marking),
// so the plan shown is exactly the plan run.
func RunWith(ctx context.Context, cat Catalog, q *Query, opts Options) (*Rows, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("query: no FROM tables")
	}
	pl := &planner{cat: cat, q: q, mode: opts.Explain}
	for _, item := range q.From {
		meta, err := cat.Resolve(item.Table)
		if err != nil {
			return nil, err
		}
		pl.tables = append(pl.tables, plannedTable{item: item, meta: meta, offset: pl.width})
		pl.width += len(meta.Columns)
	}
	for _, p := range q.Where {
		cp, err := pl.compilePred(p)
		if err != nil {
			return nil, err
		}
		pl.preds = append(pl.preds, cp)
	}
	for i := range pl.preds {
		cp := &pl.preds[i]
		if cp.isLit {
			if cp.op == "=" {
				pl.tables[cp.lTab].eqLit++
			} else {
				pl.tables[cp.lTab].otherLit++
			}
		}
	}
	if push, ok := cat.(PushCatalog); ok {
		pl.push = push
		if err := pl.computeNeeded(); err != nil {
			return nil, err
		}
	}

	order := pl.greedyOrder()
	it, node, err := pl.buildJoinTree(ctx, order)
	if err != nil {
		return nil, err
	}
	rows, root, err := pl.buildHead(it, node)
	if err != nil {
		return nil, err
	}
	rows.scans = pl.scans

	switch opts.Explain {
	case ExplainPlan:
		rows.Close()
		return planRows(renderPlan(root, false)), nil
	case ExplainAnalyze:
		t0 := time.Now()
		n := 0
		for {
			if _, err := rows.Next(); err != nil {
				if err == io.EOF {
					break
				}
				rows.Close()
				return nil, err
			}
			n++
		}
		total := time.Since(t0)
		lines := renderPlan(root, true)
		lines = append(lines, fmt.Sprintf("total: rows=%d time=%s", n, fmtDur(total)))
		rows.Close()
		out := planRows(lines)
		// The scan counters survive Close, so the plan stream still
		// reports the drained execution's Stats.
		out.scans = pl.scans
		return out, nil
	}
	return rows, nil
}
