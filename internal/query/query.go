// Package query is a streaming relational query engine over the lake's
// columnar record store: selection, projection, equi-join, group-by
// and top-k as composable pull-based iterators, with cost-based greedy
// join ordering (stored row counts × predicate selectivities from
// per-column distinct estimates, natural-join paths through shared
// columns, early termination on empty intermediates). Against a
// pushdown-capable catalog (see PushCatalog) the planner pushes each
// table's needed columns and single-table literal predicates into the
// scan itself.
//
// Queries are written in a minimal SELECT-like text form:
//
//	SELECT j.f1, count(*) FROM 42f99400 AS j, 570eebfb AS m
//	WHERE j.f3 = 'DONE' AND j.f1 = m.f2
//	GROUP BY j.f1 ORDER BY count(*) DESC LIMIT 10
//
// Tables are format fingerprints (unique prefixes accepted, "_<k>"
// suffix for record types beyond the first); columns are the
// denormalized f0..fN. Quoted strings and numbers are literals;
// everything else is a column reference.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"datamaran/internal/semtype"
)

// ColRef names a column, optionally qualified by a FROM alias.
type ColRef struct {
	Table string // alias ("" when unqualified)
	Col   string
}

// String renders the reference as written.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// SelectExpr is one output expression: a column, or an aggregate over a
// column (or over * for count).
type SelectExpr struct {
	// Agg is "" for a plain column, else count/sum/avg/min/max.
	Agg string
	// Star marks count(*).
	Star bool
	// Col is the referenced column (unused for count(*)).
	Col ColRef
}

// String renders the expression as written — the output column name.
func (e SelectExpr) String() string {
	if e.Agg == "" {
		return e.Col.String()
	}
	if e.Star {
		return e.Agg + "(*)"
	}
	return e.Agg + "(" + e.Col.String() + ")"
}

// FromItem is one table of the FROM list.
type FromItem struct {
	Table string // table name as written (fingerprint or prefix)
	Alias string // alias; defaults to Table
}

// Predicate is one WHERE conjunct: ref op literal, or ref = ref (the
// join form; non-equality ref-ref comparisons are filters).
type Predicate struct {
	Left  ColRef
	Op    string // = != < <= > >=
	IsLit bool
	Lit   string // literal right side when IsLit
	Right ColRef // column right side otherwise
}

// String renders the predicate as written.
func (p Predicate) String() string {
	rhs := p.Right.String()
	if p.IsLit {
		rhs = "'" + p.Lit + "'"
	}
	return p.Left.String() + " " + p.Op + " " + rhs
}

// OrderKey is one ORDER BY key, named by output column.
type OrderKey struct {
	Expr SelectExpr
	Desc bool
}

// Query is the parsed form.
type Query struct {
	// Star marks SELECT * (Select empty).
	Star bool
	// Select lists the output expressions.
	Select []SelectExpr
	// From lists the tables (cross product before predicates).
	From []FromItem
	// Where lists the conjuncts.
	Where []Predicate
	// GroupBy lists the grouping columns.
	GroupBy []ColRef
	// OrderBy lists the sort keys.
	OrderBy []OrderKey
	// Limit caps the row count (-1: none).
	Limit int
}

var aggs = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

// tokenizer

type token struct {
	kind string // ident, number, string, punct, end
	text string
}

type lexer struct {
	in  string
	pos int
	tok token
}

func (l *lexer) next() error {
	for l.pos < len(l.in) && (l.in[l.pos] == ' ' || l.in[l.pos] == '\t' || l.in[l.pos] == '\n' || l.in[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.in) {
		l.tok = token{kind: "end"}
		return nil
	}
	c := l.in[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: "ident", text: l.in[start:l.pos]}
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9':
		// Digit-led tokens absorb trailing letters too: table names are
		// hex fingerprints, which may start with a digit (42f99400…).
		// A purely numeric token (with optional fraction) is a number;
		// anything else digit-led is an identifier.
		start := l.pos
		l.pos++
		digitsOnly := true
		for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
			if l.in[l.pos] < '0' || l.in[l.pos] > '9' {
				digitsOnly = false
			}
			l.pos++
		}
		if digitsOnly && l.pos+1 < len(l.in) && l.in[l.pos] == '.' &&
			l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
			l.pos += 2
			for l.pos < len(l.in) && l.in[l.pos] >= '0' && l.in[l.pos] <= '9' {
				l.pos++
			}
		}
		kind := "number"
		if !digitsOnly {
			kind = "ident"
		}
		l.tok = token{kind: kind, text: l.in[start:l.pos]}
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.in) {
				return fmt.Errorf("query: unterminated string at offset %d", l.pos)
			}
			if l.in[l.pos] == quote {
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == quote {
					b.WriteByte(quote) // doubled quote escapes itself
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.in[l.pos])
			l.pos++
		}
		l.tok = token{kind: "string", text: b.String()}
	case c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			op += "="
			l.pos++
		}
		l.tok = token{kind: "punct", text: op}
	case c == '!':
		if l.pos+1 >= len(l.in) || l.in[l.pos+1] != '=' {
			return fmt.Errorf("query: stray '!' at offset %d", l.pos)
		}
		l.pos += 2
		l.tok = token{kind: "punct", text: "!="}
	case c == '=' || c == ',' || c == '(' || c == ')' || c == '*' || c == '.':
		l.pos++
		l.tok = token{kind: "punct", text: string(c)}
	default:
		return fmt.Errorf("query: unexpected character %q at offset %d", c, l.pos)
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// keyword reports whether the current token is the given keyword
// (case-insensitive identifier).
func (l *lexer) keyword(kw string) bool {
	return l.tok.kind == "ident" && strings.EqualFold(l.tok.text, kw)
}

// parser

type parser struct {
	lex *lexer
}

func (p *parser) advance() error { return p.lex.next() }

func (p *parser) expectKeyword(kw string) error {
	if !p.lex.keyword(kw) {
		return fmt.Errorf("query: expected %s, got %q", strings.ToUpper(kw), p.lex.tok.text)
	}
	return p.advance()
}

func (p *parser) expectPunct(text string) error {
	if p.lex.tok.kind != "punct" || p.lex.tok.text != text {
		return fmt.Errorf("query: expected %q, got %q", text, p.lex.tok.text)
	}
	return p.advance()
}

// Parse parses the SELECT-like text form.
func Parse(text string) (*Query, error) {
	p := &parser{lex: &lexer{in: text}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if p.lex.tok.kind == "punct" && p.lex.tok.text == "*" {
		q.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			e, err := p.selectExpr()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, e)
			if p.lex.tok.kind == "punct" && p.lex.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		item, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, item)
		if p.lex.tok.kind == "punct" && p.lex.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.lex.keyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.lex.keyword("and") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.lex.keyword("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, ref)
			if p.lex.tok.kind == "punct" && p.lex.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.lex.keyword("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.orderKey()
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, key)
			if p.lex.tok.kind == "punct" && p.lex.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.lex.keyword("limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.lex.tok.kind != "number" {
			return nil, fmt.Errorf("query: LIMIT needs a number, got %q", p.lex.tok.text)
		}
		n, err := strconv.Atoi(p.lex.tok.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: bad LIMIT %q", p.lex.tok.text)
		}
		q.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.lex.tok.kind != "end" {
		return nil, fmt.Errorf("query: trailing input at %q", p.lex.tok.text)
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// selectExpr parses `agg(ref|*)` or `ref`.
func (p *parser) selectExpr() (SelectExpr, error) {
	if p.lex.tok.kind == "ident" && aggs[strings.ToLower(p.lex.tok.text)] {
		agg := strings.ToLower(p.lex.tok.text)
		save := *p.lex
		if err := p.advance(); err != nil {
			return SelectExpr{}, err
		}
		if p.lex.tok.kind == "punct" && p.lex.tok.text == "(" {
			if err := p.advance(); err != nil {
				return SelectExpr{}, err
			}
			e := SelectExpr{Agg: agg}
			if p.lex.tok.kind == "punct" && p.lex.tok.text == "*" {
				if agg != "count" {
					return SelectExpr{}, fmt.Errorf("query: %s(*) is not a thing; only count(*)", agg)
				}
				e.Star = true
				if err := p.advance(); err != nil {
					return SelectExpr{}, err
				}
			} else {
				ref, err := p.colRef()
				if err != nil {
					return SelectExpr{}, err
				}
				e.Col = ref
			}
			if err := p.expectPunct(")"); err != nil {
				return SelectExpr{}, err
			}
			return e, nil
		}
		// An aggregate name not followed by "(" is a plain identifier
		// (e.g. a table aliased "count"): rewind.
		*p.lex = save
	}
	ref, err := p.colRef()
	if err != nil {
		return SelectExpr{}, err
	}
	return SelectExpr{Col: ref}, nil
}

// colRef parses `ident` or `ident.ident`.
func (p *parser) colRef() (ColRef, error) {
	if p.lex.tok.kind != "ident" {
		return ColRef{}, fmt.Errorf("query: expected column, got %q", p.lex.tok.text)
	}
	first := p.lex.tok.text
	if err := p.advance(); err != nil {
		return ColRef{}, err
	}
	if p.lex.tok.kind == "punct" && p.lex.tok.text == "." {
		if err := p.advance(); err != nil {
			return ColRef{}, err
		}
		if p.lex.tok.kind != "ident" {
			return ColRef{}, fmt.Errorf("query: expected column after %q., got %q", first, p.lex.tok.text)
		}
		ref := ColRef{Table: first, Col: p.lex.tok.text}
		return ref, p.advance()
	}
	return ColRef{Col: first}, nil
}

// fromItem parses `table [AS] [alias]`. Table names may be identifiers
// or start with a digit (fingerprints are hex), so numbers are accepted
// too.
func (p *parser) fromItem() (FromItem, error) {
	if p.lex.tok.kind != "ident" && p.lex.tok.kind != "number" {
		return FromItem{}, fmt.Errorf("query: expected table name, got %q", p.lex.tok.text)
	}
	item := FromItem{Table: p.lex.tok.text}
	if err := p.advance(); err != nil {
		return FromItem{}, err
	}
	if p.lex.keyword("as") {
		if err := p.advance(); err != nil {
			return FromItem{}, err
		}
		if p.lex.tok.kind != "ident" {
			return FromItem{}, fmt.Errorf("query: expected alias after AS, got %q", p.lex.tok.text)
		}
		item.Alias = p.lex.tok.text
		return item, p.advance()
	}
	// Bare alias (no AS) — but not a keyword that ends the FROM list.
	if p.lex.tok.kind == "ident" && !p.lex.keyword("where") && !p.lex.keyword("group") &&
		!p.lex.keyword("order") && !p.lex.keyword("limit") {
		item.Alias = p.lex.tok.text
		return item, p.advance()
	}
	item.Alias = item.Table
	return item, nil
}

// predicate parses `ref op (literal | ref)`.
func (p *parser) predicate() (Predicate, error) {
	left, err := p.colRef()
	if err != nil {
		return Predicate{}, err
	}
	if p.lex.tok.kind != "punct" {
		return Predicate{}, fmt.Errorf("query: expected comparison after %s, got %q", left, p.lex.tok.text)
	}
	op := p.lex.tok.text
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return Predicate{}, fmt.Errorf("query: unsupported operator %q", op)
	}
	if err := p.advance(); err != nil {
		return Predicate{}, err
	}
	pred := Predicate{Left: left, Op: op}
	switch p.lex.tok.kind {
	case "string", "number":
		pred.IsLit = true
		pred.Lit = p.lex.tok.text
		return pred, p.advance()
	case "ident":
		right, err := p.colRef()
		if err != nil {
			return Predicate{}, err
		}
		pred.Right = right
		return pred, nil
	}
	return Predicate{}, fmt.Errorf("query: expected literal or column after %s %s, got %q", left, op, p.lex.tok.text)
}

// orderKey parses `expr [ASC|DESC]`.
func (p *parser) orderKey() (OrderKey, error) {
	e, err := p.selectExpr()
	if err != nil {
		return OrderKey{}, err
	}
	key := OrderKey{Expr: e}
	if p.lex.keyword("desc") {
		key.Desc = true
		return key, p.advance()
	}
	if p.lex.keyword("asc") {
		return key, p.advance()
	}
	return key, nil
}

// validate applies the structural rules that do not need a catalog.
func validate(q *Query) error {
	hasAgg := false
	for _, e := range q.Select {
		if e.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg || len(q.GroupBy) > 0 {
		if q.Star {
			return fmt.Errorf("query: SELECT * cannot be combined with GROUP BY or aggregates")
		}
		// Every non-aggregate output must be a grouping column.
		for _, e := range q.Select {
			if e.Agg != "" {
				continue
			}
			found := false
			for _, g := range q.GroupBy {
				if g == e.Col {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("query: column %s must appear in GROUP BY or inside an aggregate", e.Col)
			}
		}
	}
	seen := map[string]bool{}
	for _, f := range q.From {
		if seen[f.Alias] {
			return fmt.Errorf("query: duplicate table alias %q", f.Alias)
		}
		seen[f.Alias] = true
	}
	return nil
}

// TableMeta is the catalog's view of one table.
type TableMeta struct {
	// Name is the resolved table name.
	Name string
	// Columns are the column names.
	Columns []string
	// Kinds are the per-column scalar kinds driving comparison
	// semantics (numeric vs lexicographic).
	Kinds []semtype.Kind
	// Rows is the table's total row count (a visibility hint only).
	Rows int
	// Distincts are per-column distinct-count estimates the planner's
	// cost model uses for equality-literal selectivity; nil or 0 means
	// unknown (a default selectivity applies).
	Distincts []int
}

// RowIter streams rows; Next returns io.EOF after the last row.
type RowIter interface {
	Next() ([]string, error)
	Close() error
}

// Catalog resolves and scans tables — the record store in production,
// in-memory tables in tests.
type Catalog interface {
	// Resolve maps a written table name (possibly a unique prefix) to
	// its metadata.
	Resolve(name string) (TableMeta, error)
	// Scan opens a row stream over the resolved table name.
	Scan(name string) (RowIter, error)
}

// PushPred is one single-table literal predicate the planner pushes
// into a scan: column index Op literal, with the executor's comparison
// semantics (Numeric mirrors compareVals — ordering is numeric only
// when the column kind is numeric and both sides parse).
type PushPred struct {
	Col     int
	Op      string
	Lit     string
	Numeric bool
}

// ScanPushdown narrows a pushed scan. Columns lists the column indexes
// the executor will read (nil means all; rows still come back at full
// table width, with unrequested columns empty); Preds filter rows
// inside the scan, before they materialize.
type ScanPushdown struct {
	Columns []int
	Preds   []PushPred
}

// PushCatalog is the optional pushdown-capable catalog: a catalog that
// also implements ScanPushed receives each table's needed-column set
// and single-table literal predicates inside the scan (the record
// store decodes only the pushed columns and skips blocks via zone
// maps). The planner type-asserts; plain Catalogs keep the
// filter-above-scan path, byte-identical results either way.
type PushCatalog interface {
	Catalog
	// ScanPushed opens a row stream with the pushdown applied: only
	// rows passing every pushed predicate, at full table width.
	ScanPushed(name string, push ScanPushdown) (RowIter, error)
}

// noPushdown embeds only the Catalog interface, so the planner's
// PushCatalog assertion fails even when the wrapped catalog supports
// pushdown.
type noPushdown struct{ Catalog }

// NoPushdown strips a catalog's pushdown capability: every scan
// decodes full rows and predicates run above the scan — the reference
// path the pushdown benchmarks and property tests compare against.
func NoPushdown(cat Catalog) Catalog { return noPushdown{cat} }
