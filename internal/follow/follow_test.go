package follow

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"datamaran/internal/core"
	"datamaran/internal/datagen"
	"datamaran/internal/pipeline"
	"datamaran/internal/template"
)

// learn discovers the template set of data.
func learn(t *testing.T, data []byte) []*template.Node {
	t.Helper()
	disc, err := core.Extract(data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(disc.Structures) == 0 {
		t.Fatal("test is vacuous: no structures discovered")
	}
	var tpls []*template.Node
	for _, s := range disc.Structures {
		tpls = append(tpls, s.Template)
	}
	return tpls
}

// oneShot is the oracle: profile extraction of the whole file in one
// pass.
func oneShot(t *testing.T, data []byte, tpls []*template.Node) *core.Result {
	t.Helper()
	res, err := pipeline.Run(bytes.NewReader(data), pipeline.Config{Templates: tpls})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// incrementalRuns grows path through the given cut points and extracts
// incrementally at each step, stitching the per-run deltas into the
// whole-file record/noise streams the way a consumer of the subsystem
// does: each run's output below its successor checkpoint is final; the
// tail beyond it is replaced by the next run's re-emission.
func incrementalRuns(t *testing.T, dir string, data []byte, cuts []int, tpls []*template.Node, cfg Config) ([]core.RecordOut, []int, *Checkpoint) {
	t.Helper()
	path := filepath.Join(dir, "grow.log")
	var finalRecs, tailRecs []core.RecordOut
	var finalNoise, tailNoise []int
	var cp *Checkpoint
	for _, cut := range append(cuts, len(data)) {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		plan, err := PlanFile(path, cp)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Action == ActionUnchanged {
			continue
		}
		if cp != nil && plan.Action != ActionResume {
			t.Fatalf("cut %d: plan = %v (%s), want resume", cut, plan.Action, plan.Reason)
		}
		res, ncp, err := Extract(context.Background(), path, "grow.log", tpls, "fp", cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tailRecs, tailNoise = tailRecs[:0], tailNoise[:0]
		for _, r := range res.Records {
			if r.StartLine < ncp.Line {
				finalRecs = append(finalRecs, r)
			} else {
				tailRecs = append(tailRecs, r)
			}
		}
		for _, n := range res.NoiseLines {
			if n < ncp.Line {
				finalNoise = append(finalNoise, n)
			} else {
				tailNoise = append(tailNoise, n)
			}
		}
		cp = ncp
	}
	return append(finalRecs, tailRecs...), append(finalNoise, tailNoise...), cp
}

// sortByStart orders stitched records the way the one-shot result lays
// them out: grouped by type, in input order within a type.
func sortByType(recs []core.RecordOut) []core.RecordOut {
	out := make([]core.RecordOut, 0, len(recs))
	maxType := 0
	for _, r := range recs {
		if r.TypeID > maxType {
			maxType = r.TypeID
		}
	}
	for ty := 0; ty <= maxType; ty++ {
		for _, r := range recs {
			if r.TypeID == ty {
				out = append(out, r)
			}
		}
	}
	return out
}

func sortInts(ns []int) []int {
	out := append([]int(nil), ns...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestResumeEquivalence is the subsystem's core property: growing a file
// through arbitrary cut points (including mid-line and mid-record) and
// extracting incrementally yields exactly the records and noise of a
// one-shot extraction of the final file.
func TestResumeEquivalence(t *testing.T) {
	datasets := map[string][]byte{
		"single-line": datagen.CommaSepRecords(300, 5).Data,
		"multi-line":  datagen.BlogXML(60, 9).Data,
		"interleaved": datagen.InterleavedTypes(2, 120, 4).Data,
	}
	for name, data := range datasets {
		t.Run(name, func(t *testing.T) {
			tpls := learn(t, data)
			want := oneShot(t, data, tpls)
			// Cut points stress every boundary kind: mid-line,
			// mid-record, and whole-record growth.
			cuts := []int{
				len(data) / 7,
				len(data)/7 + 3,
				len(data) / 3,
				len(data)/2 + 11,
				len(data) - 5,
			}
			for _, workers := range []int{1, 2, 8} {
				dir := t.TempDir()
				gotRecs, gotNoise, cp := incrementalRuns(t, dir, data, cuts, tpls,
					Config{ShardSize: 512, Workers: workers})
				if !reflect.DeepEqual(sortByType(gotRecs), want.Records) {
					t.Fatalf("workers=%d: stitched records (%d) != one-shot (%d)",
						workers, len(gotRecs), len(want.Records))
				}
				if !reflect.DeepEqual(sortInts(gotNoise), want.NoiseLines) {
					t.Fatalf("workers=%d: stitched noise %v != one-shot %v",
						workers, gotNoise, want.NoiseLines)
				}
				if cp.TotalRecords != len(want.Records) || cp.TotalNoise != len(want.NoiseLines) {
					t.Fatalf("workers=%d: checkpoint totals %d/%d, want %d/%d",
						workers, cp.TotalRecords, cp.TotalNoise, len(want.Records), len(want.NoiseLines))
				}
			}
		})
	}
}

// TestPlanFile covers the rotation/truncation/unchanged heuristics.
func TestPlanFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.log")
	data := datagen.CommaSepRecords(100, 1).Data
	tpls := learn(t, data)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Action != ActionFull || plan.Reason != "new" {
		t.Fatalf("no checkpoint: plan = %+v, want full/new", plan)
	}

	_, cp, err := Extract(context.Background(), path, "f.log", tpls, "fp", nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Offset <= 0 || cp.Line <= 0 {
		t.Fatalf("checkpoint did not advance: %+v", cp)
	}

	// Unchanged.
	if plan, err = PlanFile(path, cp); err != nil {
		t.Fatal(err)
	}
	if plan.Action != ActionUnchanged {
		t.Fatalf("unchanged file: plan = %+v", plan)
	}

	// Append → resume.
	if err := os.WriteFile(path, append(append([]byte{}, data...), []byte("1,2,3\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if plan, err = PlanFile(path, cp); err != nil {
		t.Fatal(err)
	}
	if plan.Action != ActionResume {
		t.Fatalf("grown file: plan = %+v, want resume", plan)
	}

	// Truncation → full.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if plan, err = PlanFile(path, cp); err != nil {
		t.Fatal(err)
	}
	if plan.Action != ActionFull || plan.Reason != "truncated" {
		t.Fatalf("truncated file: plan = %+v, want full/truncated", plan)
	}

	// Rotation (same or larger size, different content) → full.
	rot := datagen.WebServerLog(400, 2).Data
	for int64(len(rot)) < cp.Size {
		rot = append(rot, rot...)
	}
	if err := os.WriteFile(path, rot, 0o644); err != nil {
		t.Fatal(err)
	}
	if plan, err = PlanFile(path, cp); err != nil {
		t.Fatal(err)
	}
	if plan.Action != ActionFull || plan.Reason != "rotated" {
		t.Fatalf("rotated file: plan = %+v, want full/rotated", plan)
	}
}

// TestStoreRoundTrip pins the persistence discipline: deterministic
// bytes, atomic save, version validation.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoints.json")
	s := NewStore()
	s.Put(&Checkpoint{Path: "b/two.log", Fingerprint: "beef", Offset: 10, Line: 2, Size: 20, PrefixLen: 20, PrefixSHA: "aa", Records: 3, Noise: 1, TotalRecords: 4, TotalNoise: 1})
	s.Put(&Checkpoint{Path: "a/one.log", Fingerprint: "cafe", Offset: 5, Line: 1, Size: 9, PrefixLen: 9, PrefixSHA: "bb"})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	raw1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(path)
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("save is not deterministic")
	}
	// Paths must serialize sorted regardless of insertion order.
	if a, b := bytes.Index(raw1, []byte("a/one.log")), bytes.Index(raw1, []byte("b/two.log")); a < 0 || b < 0 || a > b {
		t.Fatalf("paths not in sorted order: %s", raw1)
	}

	got, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !reflect.DeepEqual(got.Get("a/one.log"), s.Get("a/one.log")) ||
		!reflect.DeepEqual(got.Get("b/two.log"), s.Get("b/two.log")) {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// Missing file → empty store.
	empty, err := LoadStore(filepath.Join(dir, "nope.json"))
	if err != nil || empty.Len() != 0 {
		t.Fatalf("missing store: %v / %d", err, empty.Len())
	}

	// Version discipline.
	for name, bad := range map[string]string{
		"missing": `{"files":[]}`,
		"wrong":   `{"version":99,"files":[]}`,
		"type":    `{"version":"1","files":[]}`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadStore(path); err == nil {
			t.Fatalf("%s version accepted", name)
		}
	}
}

// TestRetainPrunes checks the stale-checkpoint prune.
func TestRetainPrunes(t *testing.T) {
	s := NewStore()
	s.Put(&Checkpoint{Path: "keep.log"})
	s.Put(&Checkpoint{Path: "gone.log"})
	s.Retain(func(p string) bool { return p == "keep.log" })
	if s.Len() != 1 || s.Get("keep.log") == nil || s.Get("gone.log") != nil {
		t.Fatalf("retain kept wrong set: %v", s.Paths())
	}
}
