package follow

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"datamaran/internal/core"
	"datamaran/internal/pipeline"
	"datamaran/internal/template"
)

// maxPrefixBytes caps the identity-hash prefix. Hashing more buys
// little: rotation replaces the whole head of the file, so the first
// bytes diverge immediately, while a short cap keeps the per-file
// planning cost constant.
const maxPrefixBytes = 64 << 10

// Action classifies how a re-index should handle a checkpointed file.
type Action int

const (
	// ActionFull means extract from byte 0 (no usable checkpoint).
	ActionFull Action = iota
	// ActionResume means extract from the checkpoint offset.
	ActionResume
	// ActionUnchanged means the file has not changed since the
	// checkpoint; no extraction is needed.
	ActionUnchanged
)

// String names the action for reports.
func (a Action) String() string {
	switch a {
	case ActionFull:
		return "full"
	case ActionResume:
		return "resumed"
	case ActionUnchanged:
		return "unchanged"
	}
	return "unknown"
}

// Plan is a planning decision for one file.
type Plan struct {
	// Action says how to extract the file.
	Action Action
	// Reason explains a full re-extraction ("new", "rotated",
	// "truncated"); empty for resume/unchanged.
	Reason string
	// Size is the file size observed while planning.
	Size int64
}

// PlanFile decides how to re-index path given its checkpoint (nil means
// never seen). Rotation and truncation are detected by size and
// prefix-hash heuristics — the same identity tests log shippers use —
// and demote the file to full re-extraction rather than producing a
// corrupt resume.
func PlanFile(path string, cp *Checkpoint) (Plan, error) {
	info, err := os.Stat(path)
	if err != nil {
		return Plan{}, err
	}
	size := info.Size()
	if cp == nil {
		return Plan{Action: ActionFull, Reason: "new", Size: size}, nil
	}
	if size < cp.Size {
		// The file shrank: either truncated in place or rotated to a
		// shorter file. Both invalidate every offset we hold.
		return Plan{Action: ActionFull, Reason: "truncated", Size: size}, nil
	}
	sha, err := hashPrefix(path, cp.PrefixLen)
	if err != nil {
		return Plan{}, err
	}
	if sha != cp.PrefixSHA {
		return Plan{Action: ActionFull, Reason: "rotated", Size: size}, nil
	}
	if size == cp.Size {
		return Plan{Action: ActionUnchanged, Size: size}, nil
	}
	return Plan{Action: ActionResume, Size: size}, nil
}

// hashPrefix returns the hex SHA-256 of the file's first n bytes.
func hashPrefix(path string, n int64) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return hashPrefixAt(f, n)
}

// hashPrefixAt hashes the first n bytes through an already-open handle
// — the checkpoint writer uses the same handle it extracted from, so a
// rotation racing the extraction cannot pair one file's geometry with
// another file's identity hash.
func hashPrefixAt(f *os.File, n int64) (string, error) {
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, n)); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Config parameterizes an incremental extraction.
type Config struct {
	// ShardSize is the streaming engine's shard granularity (0 means
	// the pipeline default).
	ShardSize int
	// Workers is the per-shard matching parallelism (0 means all
	// cores). Worker count never changes any output.
	Workers int
}

// Extract applies templates to the file at path, resuming at cp when
// given (nil extracts from byte 0). It returns the delta result — the
// extraction of [cp.Offset, EOF) in whole-file coordinates — and the
// successor checkpoint for relPath.
//
// The equivalence contract: the records and noise of the previous runs
// restricted to [0, cp.Offset), concatenated with this delta, are
// exactly the one-shot extraction of the whole file. The checkpoint's
// cumulative counters track the finalized region so reports can state
// whole-file totals without re-reading finalized bytes.
func Extract(ctx context.Context, path, relPath string, templates []*template.Node, fingerprint string, cp *Checkpoint, cfg Config) (*core.Result, *Checkpoint, error) {
	var baseOff int64
	var baseLine, baseRecords, baseNoise int
	if cp != nil {
		baseOff, baseLine = cp.Offset, cp.Line
		baseRecords, baseNoise = cp.Records, cp.Noise
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := info.Size()
	if size < baseOff {
		return nil, nil, fmt.Errorf("follow: %s shrank below checkpoint offset %d (size %d); replan required", relPath, baseOff, size)
	}
	if size == baseOff {
		// Nothing beyond the checkpoint: the delta is empty and the
		// checkpoint only refreshes its size observation.
		ncp := *checkpointOrZero(cp, relPath, fingerprint)
		ncp.Size = size
		return &core.Result{}, &ncp, nil
	}
	if _, err := f.Seek(baseOff, io.SeekStart); err != nil {
		return nil, nil, err
	}
	var boundary pipeline.Boundary
	// Bound the read at the size observed above: a writer appending
	// mid-run cannot move the region under us, and a partial trailing
	// line simply stays beyond the next checkpoint.
	res, err := pipeline.RunContext(ctx, io.LimitReader(f, size-baseOff), pipeline.Config{
		Templates: templates,
		ShardSize: cfg.ShardSize,
		Workers:   cfg.Workers,
		BaseLine:  baseLine,
		BaseByte:  int(baseOff),
		Boundary:  &boundary,
	})
	if err != nil {
		return nil, nil, err
	}

	recordsBelow, noiseBelow := 0, 0
	for _, r := range res.Records {
		if r.StartLine < boundary.Line {
			recordsBelow++
		}
	}
	for _, n := range res.NoiseLines {
		if n < boundary.Line {
			noiseBelow++
		}
	}
	ncp := &Checkpoint{
		Path:         relPath,
		Fingerprint:  fingerprint,
		Offset:       int64(boundary.Byte),
		Line:         boundary.Line,
		Size:         size,
		Records:      baseRecords + recordsBelow,
		Noise:        baseNoise + noiseBelow,
		TotalRecords: baseRecords + len(res.Records),
		TotalNoise:   baseNoise + len(res.NoiseLines),
	}
	ncp.PrefixLen = size
	if ncp.PrefixLen > maxPrefixBytes {
		ncp.PrefixLen = maxPrefixBytes
	}
	// Hash through the extraction handle, not the path: a rotation
	// between the extraction and the hash must not bind the old file's
	// offsets to the new file's identity.
	if ncp.PrefixSHA, err = hashPrefixAt(f, ncp.PrefixLen); err != nil {
		return nil, nil, err
	}
	return res, ncp, nil
}

// Observe returns an identity-only checkpoint (no profile, no offsets)
// for a file with no extractable structure. It lets an incremental
// crawl skip the discovery attempt on unchanged unstructured files —
// only a grown, rotated or truncated file is reclassified.
func Observe(path, relPath string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Stat and hash through one handle so a rotation cannot interleave.
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{Path: relPath, Size: info.Size(), PrefixLen: info.Size()}
	if cp.PrefixLen > maxPrefixBytes {
		cp.PrefixLen = maxPrefixBytes
	}
	if cp.PrefixSHA, err = hashPrefixAt(f, cp.PrefixLen); err != nil {
		return nil, err
	}
	return cp, nil
}

// checkpointOrZero returns a copy of cp, or a zero checkpoint for the
// path when cp is nil.
func checkpointOrZero(cp *Checkpoint, relPath, fingerprint string) *Checkpoint {
	if cp != nil {
		c := *cp
		return &c
	}
	return &Checkpoint{Path: relPath, Fingerprint: fingerprint}
}
