// Package follow implements checkpointed incremental extraction — the
// ingestion half of a continuously-growing data lake. A file whose
// format is already known (a registered profile fingerprint) is
// extracted once, and a per-file checkpoint records how far extraction
// is final: a line-aligned byte offset below which every record and
// noise decision can never change, plus file-identity heuristics (size
// and a prefix hash) that detect rotation and truncation. Re-indexing a
// grown file then resumes extraction at the checkpoint instead of byte
// 0; a rotated or truncated file falls back to full re-extraction.
//
// Checkpoints live next to the lake profile registry and follow the
// same persistence discipline: versioned JSON, deterministic bytes
// (files sorted by path, no timestamps), atomic save via temp file +
// rename.
package follow

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// storeVersion is the on-disk checkpoint format version this package
// reads and writes.
const storeVersion = 1

// Checkpoint is the resume state of one lake file. All coordinates are
// whole-file: Offset/Line locate the stable boundary (everything below
// is final), Records/Noise count the finalized region, and
// TotalRecords/TotalNoise count the whole file as of the last run.
// Treat a Checkpoint held by a Store as immutable; replace it with Put.
type Checkpoint struct {
	// Path is the file's slash-separated path relative to the lake
	// root — the store key.
	Path string `json:"path"`
	// Fingerprint names the profile the file was extracted with. A
	// claim change (reclassification, registry edit) invalidates the
	// checkpoint.
	Fingerprint string `json:"fingerprint"`
	// Offset is the stable resume byte offset. It falls on a line
	// start, and no record of any record type crosses it.
	Offset int64 `json:"offset"`
	// Line is the line index at Offset.
	Line int `json:"line"`
	// Size is the file size when the checkpoint was taken. A smaller
	// current size means truncation; an equal size (with matching
	// prefix) means nothing changed.
	Size int64 `json:"size"`
	// PrefixLen and PrefixSHA fingerprint the file's identity: the
	// SHA-256 of its first PrefixLen bytes. A mismatch means the path
	// was rotated to different content.
	PrefixLen int64  `json:"prefix_len"`
	PrefixSHA string `json:"prefix_sha256"`
	// Records and Noise count records and noise lines finalized in
	// [0, Offset) — the region a resumed run does not re-emit.
	Records int `json:"records"`
	Noise   int `json:"noise"`
	// TotalRecords and TotalNoise count the whole file at the last
	// run, so an unchanged file can be reported without re-extraction.
	TotalRecords int `json:"total_records"`
	TotalNoise   int `json:"total_noise"`
}

// Store holds the checkpoints of one lake, keyed by relative path. The
// zero value is not usable; call NewStore or LoadStore. A Store is safe
// for concurrent use — the extraction phase of a crawl checkpoints
// files from a worker pool while the serve daemon reads.
type Store struct {
	mu     sync.RWMutex
	byPath map[string]*Checkpoint
}

// NewStore returns an empty checkpoint store.
func NewStore() *Store {
	return &Store{byPath: map[string]*Checkpoint{}}
}

// Get returns the checkpoint for the given relative path, or nil.
func (s *Store) Get(path string) *Checkpoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byPath[path]
}

// Put inserts or replaces the checkpoint for cp.Path.
func (s *Store) Put(cp *Checkpoint) {
	s.mu.Lock()
	s.byPath[cp.Path] = cp
	s.mu.Unlock()
}

// Delete removes the checkpoint for the given path, if any.
func (s *Store) Delete(path string) {
	s.mu.Lock()
	delete(s.byPath, path)
	s.mu.Unlock()
}

// Len reports the number of checkpointed files.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byPath)
}

// Paths lists the checkpointed paths in sorted order.
func (s *Store) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byPath))
	for p := range s.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Retain drops every checkpoint whose path keep rejects — the
// post-crawl prune of files that no longer exist in the lake.
func (s *Store) Retain(keep func(path string) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for p := range s.byPath {
		if !keep(p) {
			delete(s.byPath, p)
		}
	}
}

// storeJSON is the serialized store.
type storeJSON struct {
	Version int           `json:"version"`
	Files   []*Checkpoint `json:"files"`
}

// MarshalJSON serializes the store deterministically: checkpoints in
// sorted path order, no timestamps or host state.
func (s *Store) MarshalJSON() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sj := storeJSON{Version: storeVersion, Files: []*Checkpoint{}}
	paths := make([]string, 0, len(s.byPath))
	for p := range s.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		sj.Files = append(sj.Files, s.byPath[p])
	}
	return json.Marshal(sj)
}

// UnmarshalJSON parses a store serialized by MarshalJSON, rejecting
// missing, non-integer or unknown version values rather than guessing
// at future formats.
func (s *Store) UnmarshalJSON(data []byte) error {
	var ver struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &ver); err != nil {
		return fmt.Errorf("follow: bad checkpoint version field (supported: %d): %w", storeVersion, err)
	}
	if ver.Version == nil {
		return fmt.Errorf("follow: checkpoint store missing version field (supported: %d)", storeVersion)
	}
	if *ver.Version != storeVersion {
		return fmt.Errorf("follow: unsupported checkpoint version %d (supported: %d)", *ver.Version, storeVersion)
	}
	var sj storeJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return fmt.Errorf("follow: bad checkpoint store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byPath = map[string]*Checkpoint{}
	for _, cp := range sj.Files {
		if cp.Path == "" {
			return fmt.Errorf("follow: checkpoint with empty path")
		}
		if _, ok := s.byPath[cp.Path]; ok {
			return fmt.Errorf("follow: duplicate checkpoint path %q", cp.Path)
		}
		if cp.Offset < 0 || cp.Line < 0 || cp.Size < cp.Offset {
			return fmt.Errorf("follow: checkpoint %q has inconsistent geometry (offset=%d line=%d size=%d)",
				cp.Path, cp.Offset, cp.Line, cp.Size)
		}
		s.byPath[cp.Path] = cp
	}
	return nil
}

// LoadStore reads a checkpoint file. A missing file yields an empty
// store, so first runs need no setup.
func LoadStore(path string) (*Store, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewStore(), nil
	}
	if err != nil {
		return nil, err
	}
	s := NewStore()
	if err := json.Unmarshal(raw, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Save writes the store atomically (temp file + rename in the target
// directory), indented for human inspection — the same discipline as
// the lake registry it lives next to.
func (s *Store) Save(path string) error {
	compact, err := json.Marshal(s)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, compact, "", "  "); err != nil {
		return err
	}
	raw := append(buf.Bytes(), '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoints-*")
	if err != nil {
		return err
	}
	// CreateTemp's 0600 would make shared checkpoints unreadable to
	// other users; match the 0644 of every other artifact we write.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
