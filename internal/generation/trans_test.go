package generation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"datamaran/internal/chars"
	"datamaran/internal/textio"
)

// TestCapCharsetTieBreak: characters with equal frequency straddling the
// MaxExhaustive boundary must be cut deterministically (by byte value),
// not by whatever order sort.Slice's unstable internals leave equal
// elements in. ',' ':' and ';' all appear twice; only one fits next to
// '=' under MaxExhaustive=2, and it must be ',' (the smallest byte).
func TestCapCharsetTieBreak(t *testing.T) {
	lines := textio.NewLines([]byte(",,::;;===\n"))
	cfg := Config{MaxExhaustive: 2}.withDefaults()
	present := chars.Present(cfg.Candidates, lines.Data())
	if present.Len() != 4 {
		t.Fatalf("present = %v, want 4 members", present)
	}
	capped := capCharset(lines, cfg, present)
	if want := chars.NewSet("=,"); !capped.Equal(want) {
		t.Fatalf("capCharset = %v, want %v", capped, want)
	}
}

// TestTransTableMatchesMapReference drives random (prev, shape) window
// extensions through lookupTrans/insertTrans and checks every lookup
// against a plain map — the structure the transition tables replaced.
// The small-budget runs force rows to stop growing mid-stream so
// insertions spill to the overflow map and dense -1 slots shadow spilled
// entries, the exact interleavings a real trace rarely produces.
func TestTransTableMatchesMapReference(t *testing.T) {
	for _, budget := range []int{succEntryBudget, 64, 8, 0} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(budget) + 1))
			const shapes = 12
			g := &generator{succBudget: budget, succ: make([][]int32, shapes)}
			ref := make(map[winExt]int32)
			next := int32(0)
			for op := 0; op < 5000; op++ {
				prev := int32(rng.Intn(int(next)+2)) - 1 // -1 (root) .. next
				shape := int32(rng.Intn(shapes))
				e := winExt{prev: prev, shape: shape}
				want, ok := ref[e]
				if !ok {
					want = -1
				}
				if got := g.lookupTrans(prev, shape); got != want {
					t.Fatalf("op %d: lookupTrans(%d, %d) = %d, want %d", op, prev, shape, got, want)
				}
				if want < 0 {
					g.insertTrans(prev, shape, next)
					ref[e] = next
					next++
				}
			}
			if g.succLen > budget {
				t.Fatalf("dense entries %d exceed budget %d", g.succLen, budget)
			}
			// Re-check every extension ever interned at the end: row
			// growth after a spill must not shadow spilled entries.
			for e, want := range ref {
				if got := g.lookupTrans(e.prev, e.shape); got != want {
					t.Fatalf("final lookupTrans(%d, %d) = %d, want %d", e.prev, e.shape, got, want)
				}
			}
		})
	}
}

// TestTransTableRandomShapeSequences exercises the tables through the
// real engine: random shape sequences (few distinct line forms, many
// windows) must produce identical candidates from the transition-table
// engine and the frozen map-based reference.
func TestTransTableRandomShapeSequences(t *testing.T) {
	forms := []string{"%d,%d\n", "x=%d\n", "%d|%d|%d\n", "## %d\n"}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < 200; i++ {
			form := forms[rng.Intn(len(forms))]
			n := strings.Count(form, "%d")
			args := make([]interface{}, n)
			for j := range args {
				args[j] = rng.Intn(1000)
			}
			fmt.Fprintf(&b, form, args...)
		}
		lines := textio.NewLines([]byte(b.String()))
		for _, cfg := range []Config{{}, {Search: Greedy}} {
			got := Generate(lines, cfg)
			want := generateReference(lines, cfg)
			if err := sameCandidates(got, want); err != nil {
				t.Fatalf("seed %d, %v search: %v", seed, cfg.Search, err)
			}
		}
	}
}

func sameCandidates(got, want []Candidate) error {
	if len(got) != len(want) {
		return fmt.Errorf("candidate count = %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Template.Key() != w.Template.Key() || !g.CharSet.Equal(w.CharSet) ||
			g.Coverage != w.Coverage || g.FieldBytes != w.FieldBytes {
			return fmt.Errorf("candidate %d differs: got {%s %v %d %d}, want {%s %v %d %d}",
				i, g.Template.Key(), g.CharSet, g.Coverage, g.FieldBytes,
				w.Template.Key(), w.CharSet, w.Coverage, w.FieldBytes)
		}
	}
	return nil
}

// BenchmarkGenSTSteadyState is the CI allocation gate over the window
// accumulation loop (scripts/bench_allocs.sh pins it at 0 allocs/op):
// with shapes, window identities and templates interned by a warm-up
// trial, repeated genST calls are pure transition-table and chain-cache
// traversal — they must never touch the heap.
func BenchmarkGenSTSteadyState(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d\nstatus=%d ok\n", i, i*2, i*3, i%7)
	}
	lines := textio.NewLines([]byte(sb.String()))
	g := newGenerator(lines, Config{})
	rtset := chars.NewSet(",= ")
	g.genST(rtset) // warm: interns shapes/windows/templates, sizes the bins
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.genST(rtset)
	}
}
