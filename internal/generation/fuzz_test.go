package generation_test

import (
	"strings"
	"testing"

	"datamaran/internal/datagen"
	"datamaran/internal/generation"
	"datamaran/internal/textio"
)

// FuzzGenerate drives the shape-interned engine against the frozen
// reference on arbitrary inputs and configs: beyond not panicking, the
// candidate lists must be identical (the oracle property of the
// equivalence suite, extended by the fuzzer to adversarial inputs), and
// every candidate must be a well-formed record template — at least one
// field, newline-terminated, coverage within the input length.
func FuzzGenerate(f *testing.F) {
	for i, d := range datagen.GitHubCorpus(42) {
		if i%25 != 0 {
			continue
		}
		lines := strings.SplitAfter(string(d.Data), "\n")
		n := 12
		if n > len(lines) {
			n = len(lines)
		}
		f.Add([]byte(strings.Join(lines[:n], "")), byte(0), byte(0))
		f.Add([]byte(strings.Join(lines[:n], "")), byte(1), byte(4))
	}
	f.Add([]byte("a,b\nc,d\ne,f\n"), byte(1), byte(1))
	f.Add([]byte("x=1\ny:2\nx=3\ny:4\n"), byte(0), byte(10))
	f.Add([]byte(""), byte(0), byte(0))
	f.Add([]byte("no trailing newline"), byte(1), byte(3))

	f.Fuzz(func(t *testing.T, data []byte, mode, span byte) {
		if len(data) > 2048 {
			t.Skip("large inputs are the bench's job; fuzz explores shapes")
		}
		cfg := generation.Config{
			MaxSpan: int(span%12) + 1,
			Search:  generation.SearchMode(mode % 2),
		}
		lines := textio.NewLines(data)
		got := generation.Generate(lines, cfg)
		want := generation.GenerateReference(lines, cfg)
		if len(got) != len(want) {
			t.Fatalf("engine returned %d candidates, reference %d (cfg %+v)", len(got), len(want), cfg)
		}
		for i := range got {
			g, w := got[i], want[i]
			if !g.Template.Equal(w.Template) || !g.CharSet.Equal(w.CharSet) ||
				g.Coverage != w.Coverage || g.FieldBytes != w.FieldBytes {
				t.Fatalf("candidate %d diverges: engine {%v %v %d %d} reference {%v %v %d %d}",
					i, g.Template, g.CharSet, g.Coverage, g.FieldBytes,
					w.Template, w.CharSet, w.Coverage, w.FieldBytes)
			}
			if g.Template.NumFields() == 0 {
				t.Fatalf("candidate %d has no fields: %v", i, g.Template)
			}
			if s := g.Template.String(); !strings.HasSuffix(s, `\n`) {
				t.Fatalf("candidate %d not newline-terminated: %v", i, g.Template)
			}
			if g.Coverage <= 0 || g.Coverage > len(data) {
				t.Fatalf("candidate %d coverage %d outside (0, %d]", i, g.Coverage, len(data))
			}
			if g.FieldBytes < 0 || g.FieldBytes > g.Coverage {
				t.Fatalf("candidate %d field bytes %d outside [0, coverage %d]", i, g.FieldBytes, g.Coverage)
			}
		}
	})
}
