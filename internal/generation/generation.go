// Package generation implements the generation and pruning steps of
// Datamaran (§4.1, §4.2, Algorithm 1).
//
// The generation step finds structure-template candidates with at least α%
// coverage without knowing record boundaries: it enumerates RT-CharSet
// values (exhaustively, 2^c subsets, or greedily, O(c²) subsets), treats
// every pair of line boundaries at most L lines apart as a potential
// record, extracts and reduces each potential record to its minimal
// structure template, and accumulates per-template coverage in a hash
// table.
//
// The pruning step orders the surviving candidates by the assimilation
// score G(T,S) = Cov × NonFieldCov and keeps the top M.
package generation

import (
	"sort"
	"strings"

	"datamaran/internal/chars"
	"datamaran/internal/score"
	"datamaran/internal/template"
	"datamaran/internal/textio"
)

// SearchMode selects how RT-CharSet values are enumerated (§9.1).
type SearchMode int

const (
	// Exhaustive enumerates all 2^c subsets of the present special
	// characters.
	Exhaustive SearchMode = iota
	// Greedy grows the charset one character at a time, keeping the
	// character whose charset produced the highest assimilation score
	// (O(c²) subsets).
	Greedy
)

func (m SearchMode) String() string {
	if m == Greedy {
		return "greedy"
	}
	return "exhaustive"
}

// Config holds the generation-step parameters (Table 2).
type Config struct {
	// Alpha is the minimum coverage threshold as a fraction of the
	// dataset bytes (the paper's α%, default 0.10).
	Alpha float64
	// MaxSpan is L, the maximum number of lines a record may span
	// (default 10).
	MaxSpan int
	// Search selects exhaustive or greedy charset enumeration.
	Search SearchMode
	// Candidates is RT-CharSet-Candidate. Zero value means
	// chars.DefaultCandidates().
	Candidates chars.Set
	// MaxExhaustive caps the number of distinct present special
	// characters enumerated exhaustively; beyond it, the most frequent
	// MaxExhaustive characters are used. Default 10.
	MaxExhaustive int
	// MaxCandidates caps the number of candidates returned (K).
	// Default 4096.
	MaxCandidates int
	// MaxRecordBytes skips potential records longer than this many
	// bytes (guards pathological spans). Default 1 << 14.
	MaxRecordBytes int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.10
	}
	if c.MaxSpan == 0 {
		c.MaxSpan = 10
	}
	if c.Candidates.Empty() {
		c.Candidates = chars.DefaultCandidates()
	}
	if c.MaxExhaustive == 0 {
		c.MaxExhaustive = 10
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 4096
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = 1 << 14
	}
	return c
}

// Candidate is a structure template surviving the coverage threshold, with
// the coverage statistics estimated during generation.
type Candidate struct {
	Template *template.Node
	// CharSet is the RT-CharSet under which the template was generated.
	CharSet chars.Set
	// Coverage is the total byte length of potential records reducing
	// to this template (an overlap-inflated estimate; exact coverage is
	// recomputed in the evaluation step).
	Coverage int
	// FieldBytes is the byte total of field values in those records.
	FieldBytes int
}

// Assimilation returns G(T,S) for the candidate from the generation-step
// estimates.
func (c Candidate) Assimilation() float64 {
	return score.Assimilation(c.Coverage, c.FieldBytes)
}

// Generate runs the generation step over lines and returns all candidates
// with at least α% coverage, ordered by assimilation score (best first)
// and capped at MaxCandidates.
func Generate(lines *textio.Lines, cfg Config) []Candidate {
	cfg = cfg.withDefaults()
	present := chars.Present(cfg.Candidates, lines.Data())
	g := &generator{lines: lines, cfg: cfg, bins: map[string]*Candidate{}}
	switch cfg.Search {
	case Greedy:
		g.greedySearch(present)
	default:
		g.exhaustiveSearch(present)
	}
	return g.results()
}

// Prune is the pruning step: it keeps the topM candidates by assimilation
// score (§4.2). cands must already be sorted by Generate; Prune re-sorts
// defensively so it can be used on merged candidate lists.
func Prune(cands []Candidate, topM int) []Candidate {
	sortCandidates(cands)
	if topM > 0 && len(cands) > topM {
		cands = cands[:topM]
	}
	return cands
}

type generator struct {
	lines *textio.Lines
	cfg   Config
	bins  map[string]*Candidate
	// charsetsTried counts GenST invocations (for complexity tests).
	charsetsTried int
}

// exhaustiveSearch enumerates all subsets of the present candidates
// (restricted to the MaxExhaustive most frequent characters when there are
// too many).
func (g *generator) exhaustiveSearch(present chars.Set) {
	present = g.capCharset(present)
	chars.Subsets(present, func(s chars.Set) bool {
		g.genST(s)
		return true
	})
}

// greedySearch implements Algorithm 1's GreedySearch: starting from the
// empty charset, repeatedly add the character whose charset yields the
// best assimilation score, until a round produces no template with α%
// coverage.
func (g *generator) greedySearch(present chars.Set) {
	var cur chars.Set
	g.genST(cur) // the empty charset still yields line templates F\n etc.
	remaining := present.Bytes()
	for len(remaining) > 0 {
		bestScore := -1.0
		bestIdx := -1
		for i, c := range remaining {
			trial := cur
			trial.Add(c)
			found := g.genST(trial)
			for _, cand := range found {
				if a := cand.Assimilation(); a > bestScore {
					bestScore = a
					bestIdx = i
				}
			}
		}
		if bestIdx < 0 {
			break // no charset this round produced an α%-coverage template
		}
		cur.Add(remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
}

// capCharset restricts an oversized charset to the most frequent
// MaxExhaustive characters in the data.
func (g *generator) capCharset(present chars.Set) chars.Set {
	if present.Len() <= g.cfg.MaxExhaustive {
		return present
	}
	var freq [256]int
	for _, b := range g.lines.Data() {
		if present.Contains(b) {
			freq[b]++
		}
	}
	members := present.Bytes()
	sort.Slice(members, func(i, j int) bool { return freq[members[i]] > freq[members[j]] })
	var capped chars.Set
	for _, b := range members[:g.cfg.MaxExhaustive] {
		capped.Add(b)
	}
	return capped
}

// genST is Algorithm 1's GenST: for one RT-CharSet value, enumerate all
// potential records (line-boundary pairs at most L apart), reduce each to
// its minimal structure template, and accumulate coverage in the shared
// hash table. It returns the candidates from this charset that meet the
// coverage threshold.
func (g *generator) genST(rtset chars.Set) []Candidate {
	g.charsetsTried++
	lines := g.lines
	n := lines.N()
	data := lines.Data()
	total := len(data)
	if total == 0 {
		return nil
	}
	threshold := int(g.cfg.Alpha * float64(total))

	// Tokenize each line once under this charset, interning line shapes
	// to small integers. Expensive work (building raw keys, reducing to
	// minimal templates) happens once per DISTINCT shape; the 10·n
	// window loop below touches only integer-keyed maps.
	lineToks := make([][]*template.Node, n)
	lineFB := make([]int, n)
	lineShape := make([]int32, n)
	shapeIDs := map[string]int32{}
	for i := 0; i < n; i++ {
		toks, fb := template.ExtractRecordTemplate(lines.Line(i), rtset)
		lineToks[i] = toks
		lineFB[i] = fb
		raw := rawKey(toks)
		id, ok := shapeIDs[raw]
		if !ok {
			id = int32(len(shapeIDs))
			shapeIDs[raw] = id
		}
		lineShape[i] = id
	}

	// Window identities are interned incrementally: the window of lines
	// [i, i+s) extends the window [i, i+s-1) by one line shape.
	type winExt struct {
		prev  int32 // window id of the s-1 prefix (-1 for s=1)
		shape int32 // shape of the added line
	}
	winIDs := map[winExt]int32{}
	// winBin[w] is the bin index for window id w (-1 = invalid window).
	var winBin []int32

	// binAcc accumulates one hash bin. Coverage counts greedily
	// non-overlapping windows only (windows arrive in ascending start
	// order), approximating Assumption 1's definition — the total
	// length of instantiated records — rather than the overlap-inflated
	// sum, which would let stacked multi-line repetitions of a one-line
	// template dominate every true multi-line template.
	type binAcc struct {
		cand    Candidate
		lastEnd int
	}
	var binList []*binAcc
	binIdx := map[string]int32{}

	resolveWindow := func(i, j int) int32 {
		// Build the window's template and map it to a bin, once per
		// distinct window identity.
		tokCount := 0
		for k := i; k < j; k++ {
			tokCount += len(lineToks[k])
		}
		toks := make([]*template.Node, 0, tokCount)
		for k := i; k < j; k++ {
			toks = append(toks, lineToks[k]...)
		}
		tpl := template.Reduce(toks)
		if tpl.NumFields() == 0 || !endsWithNewline(tpl) {
			return -1
		}
		key := tpl.Key()
		bi, ok := binIdx[key]
		if !ok {
			bi = int32(len(binList))
			binIdx[key] = bi
			binList = append(binList, &binAcc{cand: Candidate{Template: tpl, CharSet: rtset}})
		}
		return bi
	}

	for i := 0; i < n; i++ {
		prev := int32(-1)
		fb := 0
		for s := 1; s <= g.cfg.MaxSpan && i+s <= n; s++ {
			j := i + s
			fb += lineFB[j-1]
			blockLen := lines.Start(j) - lines.Start(i)
			if blockLen > g.cfg.MaxRecordBytes {
				break
			}
			ext := winExt{prev: prev, shape: lineShape[j-1]}
			wid, ok := winIDs[ext]
			if !ok {
				wid = int32(len(winBin))
				winIDs[ext] = wid
				if data[lines.Start(j)-1] != '\n' {
					winBin = append(winBin, -1)
				} else {
					winBin = append(winBin, resolveWindow(i, j))
				}
			}
			prev = wid
			bi := winBin[wid]
			if bi < 0 {
				continue
			}
			b := binList[bi]
			if i >= b.lastEnd {
				b.cand.Coverage += blockLen
				b.cand.FieldBytes += fb
				b.lastEnd = j
			}
		}
	}
	local := map[string]*binAcc{}
	for key, bi := range binIdx {
		local[key] = binList[bi]
	}

	// Keep templates meeting the coverage threshold; merge into the
	// global bins (same template from different charsets keeps the
	// higher-coverage estimate).
	var kept []Candidate
	for key, b := range local {
		if b.cand.Coverage < threshold {
			continue
		}
		kept = append(kept, b.cand)
		if prev, ok := g.bins[key]; !ok || b.cand.Coverage > prev.Coverage {
			cc := b.cand
			g.bins[key] = &cc
		}
	}
	return kept
}

func (g *generator) results() []Candidate {
	out := make([]Candidate, 0, len(g.bins))
	for _, c := range g.bins {
		if template.IsPeriodicStack(c.Template) {
			// A k-fold stack of a shorter template (its 1-period
			// form is a separate bin with at least the same
			// coverage). Stacks flood the top-M pool with
			// near-duplicates of every popular one-record shape.
			continue
		}
		out = append(out, *c)
	}
	sortCandidates(out)
	if len(out) > g.cfg.MaxCandidates {
		out = out[:g.cfg.MaxCandidates]
	}
	return out
}

func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		ai, aj := cands[i].Assimilation(), cands[j].Assimilation()
		if ai != aj {
			return ai > aj
		}
		// Deterministic tie-break: the shorter template wins (a
		// k-fold stack of a true multi-line template ties its
		// coverage but is k times longer), then key order.
		li, lj := cands[i].Template.Len(), cands[j].Template.Len()
		if li != lj {
			return li < lj
		}
		return cands[i].Template.Key() < cands[j].Template.Key()
	})
}

// rawKey builds a cheap pre-reduction key for a token run: 'F' for fields,
// the character for literals.
func rawKey(toks []*template.Node) string {
	var b strings.Builder
	b.Grow(len(toks))
	for _, t := range toks {
		if t.Kind == template.KField {
			b.WriteByte(0x01)
		} else {
			b.WriteString(t.Lit)
		}
	}
	return b.String()
}

func endsWithNewline(st *template.Node) bool {
	switch st.Kind {
	case template.KLiteral:
		return len(st.Lit) > 0 && st.Lit[len(st.Lit)-1] == '\n'
	case template.KArray:
		return st.Term == '\n'
	case template.KStruct:
		if len(st.Children) == 0 {
			return false
		}
		return endsWithNewline(st.Children[len(st.Children)-1])
	}
	return false
}

// CharsetsTried is exposed for the step-complexity experiment (Table 3):
// it runs a generation and reports how many RT-CharSet values were
// enumerated.
func CharsetsTried(lines *textio.Lines, cfg Config) int {
	cfg = cfg.withDefaults()
	present := chars.Present(cfg.Candidates, lines.Data())
	g := &generator{lines: lines, cfg: cfg, bins: map[string]*Candidate{}}
	switch cfg.Search {
	case Greedy:
		g.greedySearch(present)
	default:
		g.exhaustiveSearch(present)
	}
	return g.charsetsTried
}
